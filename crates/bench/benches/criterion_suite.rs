//! Criterion micro-benchmarks: star-query latency per layout (Fig. 3 in
//! statistical form), optimizer planning cost, bulk-load throughput, and
//! relational-engine primitives.
//!
//! The suite is gated behind the non-default `criterion` feature because the
//! `criterion` crate cannot be fetched in the offline build environment. To
//! run it: re-add `criterion = "0.5"` under `[dev-dependencies]` in
//! `crates/bench/Cargo.toml`, then `cargo bench --features criterion`.
//! For offline thread-scaling numbers use the dependency-free
//! `exec_scaling` binary instead (`cargo run --release --bin exec_scaling`).

#[cfg(not(feature = "criterion"))]
fn main() {
    eprintln!(
        "criterion suite disabled (offline build). Re-add the criterion \
         dev-dependency and run with --features criterion, or use the \
         exec_scaling binary for an offline bench."
    );
}

#[cfg(feature = "criterion")]
fn main() {
    suite::benches();
}

#[cfg(feature = "criterion")]
mod suite {
    use criterion::{criterion_group, BatchSize, Criterion};
    use db2rdf::{naive, Layout, RdfStore, StoreConfig};
    use relstore::{Database, Value};
    use sparql::parse_sparql;

    fn star_queries(c: &mut Criterion) {
        let triples = datagen::micro::generate(8_000, 42);
        let queries = datagen::micro::queries();
        let mut group = c.benchmark_group("fig3_star_queries");
        for layout in [Layout::Entity, Layout::TripleStore, Layout::Vertical] {
            let mut store = RdfStore::new(StoreConfig::with_layout(layout));
            store.load(&triples).unwrap();
            for q in [&queries[0], &queries[5], &queries[9]] {
                group.bench_function(format!("{:?}/{}", layout, q.name), |b| {
                    b.iter(|| store.query(&q.sparql).unwrap().len())
                });
            }
        }
        group.finish();
    }

    fn optimizer_planning(c: &mut Criterion) {
        // Translation cost only (parse → flow → plan → SQL), on the 100-branch
        // UNION — the paper notes exhaustive search is hopeless here.
        let triples = datagen::prbench::generate(300, 42);
        let mut store = RdfStore::entity();
        store.load(&triples).unwrap();
        let pq26 =
            datagen::prbench::queries().into_iter().find(|q| q.name == "PQ26").unwrap();
        c.bench_function("plan_pq26_100_branch_union", |b| {
            b.iter(|| store.translate(&pq26.sparql).unwrap().len())
        });
        let fig6 = "SELECT * WHERE { ?x <e:a> 'v' . { ?x <e:b> ?y } UNION { ?x <e:c> ?y } \
                    OPTIONAL { ?y <e:d> ?m } }";
        c.bench_function("plan_running_example", |b| {
            b.iter(|| store.translate(fig6).unwrap().len())
        });
    }

    fn bulk_load(c: &mut Criterion) {
        let triples = datagen::lubm::generate(1, 42);
        let mut group = c.benchmark_group("bulk_load_lubm1");
        group.sample_size(10);
        for layout in [Layout::Entity, Layout::TripleStore, Layout::Vertical] {
            group.bench_function(format!("{layout:?}"), |b| {
                b.iter_batched(
                    || triples.clone(),
                    |t| {
                        let mut store = RdfStore::new(StoreConfig::with_layout(layout));
                        store.load(&t).unwrap();
                        store.load_report().triples
                    },
                    BatchSize::LargeInput,
                )
            });
        }
        group.finish();
    }

    fn engine_primitives(c: &mut Criterion) {
        let mut db = Database::new();
        db.execute("CREATE TABLE t (k TEXT, v INT)").unwrap();
        let rows: Vec<Vec<Value>> = (0..50_000)
            .map(|i| vec![Value::str(format!("key{}", i % 10_000)), Value::Int(i)])
            .collect();
        db.insert_rows("t", rows).unwrap();
        db.execute("CREATE INDEX ON t(k)").unwrap();
        c.bench_function("engine/index_probe", |b| {
            b.iter(|| db.query("SELECT v FROM t WHERE k = 'key77'").unwrap().rows.len())
        });
        c.bench_function("engine/hash_join_selfjoin", |b| {
            b.iter(|| {
                db.query(
                    "SELECT COUNT(*) AS n FROM (SELECT k FROM t WHERE v < 1000) AS a \
                     JOIN (SELECT k FROM t WHERE v < 1000) AS b ON a.k = b.k",
                )
                .unwrap()
                .rows
                .len()
            })
        });
    }

    fn naive_reference(c: &mut Criterion) {
        // Useful to show how far the relational pipeline is from brute force.
        let triples = datagen::lubm::generate(1, 42);
        let q = parse_sparql(&datagen::lubm::queries()[0].sparql).unwrap();
        let mut store = RdfStore::entity();
        store.load(&triples).unwrap();
        let mut group = c.benchmark_group("lq1_store_vs_naive");
        group.bench_function("entity_store", |b| {
            b.iter(|| store.query(&datagen::lubm::queries()[0].sparql).unwrap().len())
        });
        group.sample_size(10);
        group.bench_function("naive_reference", |b| {
            b.iter(|| naive::evaluate(&triples, &q).len())
        });
        group.finish();
    }

    criterion_group!(
        benches,
        star_queries,
        optimizer_planning,
        bulk_load,
        engine_primitives,
        naive_reference
    );
}
