//! Run every experiment at a reduced default scale and print the full
//! paper-vs-measured record (the source of EXPERIMENTS.md).
//!
//! Usage: `cargo run -p bench --release --bin all_experiments`
//! Set `FULL=1` for the larger per-binary default scales.

use std::process::Command;

fn main() {
    let full = std::env::var("FULL").is_ok();
    // Reduced scales keep the whole suite within a few minutes.
    let small: &[(&str, &str)] = &[
        ("MICRO_SUBJECTS", "30000"),
        ("LUBM_UNIVS", "4"),
        ("SP2B_DOCS", "4000"),
        ("DBPEDIA_ENTITIES", "5000"),
        ("DBPEDIA_PREDS", "1500"),
        ("PRBENCH_BUGS", "1500"),
        ("NULLS_SUBJECTS", "60000"),
        ("ROW_BUDGET", "20000000"),
    ];
    let bins = [
        "show_sql",
        "micro_bench",
        "coloring_table",
        "nulls",
        "optimizer_effect",
        "lubm_queries",
        "prbench_queries",
        "summary_table",
    ];
    for bin in bins {
        println!("\n################################################################");
        println!("### {bin}");
        println!("################################################################\n");
        let exe = std::env::current_exe().unwrap();
        let path = exe.parent().unwrap().join(bin);
        let mut cmd = Command::new(path);
        if !full {
            for (k, v) in small {
                cmd.env(k, v);
            }
        }
        let status = cmd.status().expect("run experiment binary");
        if !status.success() {
            eprintln!("experiment {bin} failed: {status}");
            std::process::exit(1);
        }
    }
}
