//! Analytic-workload benchmark: SPARQL 1.1 aggregates, BIND/VALUES and
//! subqueries over the SP²Bench-shaped dataset (DESIGN.md §4.13).
//!
//! Eight AQ queries exercise the analytic surface the translator lowers
//! onto the CTE machinery: GROUP BY + COUNT/SUM/AVG/MIN/MAX, HAVING,
//! COUNT(DISTINCT), BIND with a deferred value-domain FILTER, inline
//! VALUES, and an aggregating subquery re-aggregated by the outer query.
//!
//! Before any timing, every query's answer on every layout is checked
//! against the naive reference evaluator — row-for-row when the query has
//! an ORDER BY, as an order-insensitive multiset otherwise. A benchmark
//! that reports fast wrong answers is worse than no benchmark; the run
//! aborts on the first disagreement.
//!
//! Writes `BENCH_analytics.json`. Knobs: `ANALYTICS_SMOKE=1` (CI profile:
//! small dataset, single timed run), `ANALYTICS_DOCS` (document count).

use bench::{fmt_time, run_workload, scale_from_env, Outcome, System};
use datagen::BenchQuery;
use db2rdf::{naive, oracle};
use sparql::parse_sparql;

const NS: &str = "http://sp2b.bench/";
const RDF_TYPE: &str = "http://www.w3.org/1999/02/22-rdf-syntax-ns#type";

fn queries() -> Vec<BenchQuery> {
    vec![
        BenchQuery::new(
            "AQ1",
            format!(
                "SELECT ?y (COUNT(?d) AS ?n) WHERE {{ ?d <{NS}issued> ?y }} \
                 GROUP BY ?y ORDER BY ?y"
            ),
        ),
        // The acceptance shape: GROUP BY + COUNT + HAVING + ORDER BY.
        BenchQuery::new(
            "AQ2",
            format!(
                "SELECT ?a (COUNT(?d) AS ?n) WHERE {{ ?d <{NS}creator> ?a }} \
                 GROUP BY ?a HAVING(COUNT(?d) > 10) ORDER BY ?a"
            ),
        ),
        BenchQuery::new(
            "AQ3",
            format!(
                "SELECT (AVG(?v) AS ?avg) (MIN(?v) AS ?mn) (MAX(?v) AS ?mx) \
                 (SUM(?v) AS ?total) WHERE {{ ?d <{NS}volume> ?v }}"
            ),
        ),
        BenchQuery::new(
            "AQ4",
            format!(
                "SELECT ?t (COUNT(DISTINCT ?a) AS ?n) WHERE {{ \
                 ?d <{RDF_TYPE}> ?t . ?d <{NS}creator> ?a }} \
                 GROUP BY ?t ORDER BY ?t"
            ),
        ),
        BenchQuery::new(
            "AQ5",
            format!(
                "SELECT (COUNT(*) AS ?n) (SUM(?age) AS ?total) WHERE {{ \
                 ?d <{NS}issued> ?y . BIND(2026 - ?y AS ?age) FILTER(?age > 50) }}"
            ),
        ),
        BenchQuery::new(
            "AQ6",
            format!(
                "SELECT ?y (COUNT(?d) AS ?n) WHERE {{ \
                 VALUES ?y {{ 1955 1965 1975 }} ?d <{NS}issued> ?y }} \
                 GROUP BY ?y ORDER BY ?y"
            ),
        ),
        BenchQuery::new(
            "AQ7",
            format!(
                "SELECT (MAX(?n) AS ?busiest) WHERE {{ \
                 {{ SELECT ?a (COUNT(?d) AS ?n) WHERE {{ ?d <{NS}creator> ?a }} \
                 GROUP BY ?a }} }}"
            ),
        ),
        BenchQuery::new(
            "AQ8",
            format!(
                "SELECT ?d (COUNT(?c) AS ?n) WHERE {{ ?d <{NS}cites> ?c }} \
                 GROUP BY ?d HAVING(COUNT(?c) >= 3)"
            ),
        ),
    ]
}

/// Assert one store agrees with the naive reference on one query. Ordered
/// queries compare rows in order (all AQ ORDER BY keys are unique group
/// keys, so the order is total); unordered ones compare sorted multisets.
fn assert_agreement(
    system: &System,
    store: &db2rdf::RdfStore,
    q: &BenchQuery,
    triples: &[rdf::Triple],
) -> usize {
    let parsed = parse_sparql(&q.sparql).unwrap_or_else(|e| panic!("{}: parse: {e}", q.name));
    let reference = naive::evaluate(triples, &parsed);
    let got = store
        .query(&q.sparql)
        .unwrap_or_else(|e| panic!("{} on {}: {e}", q.name, system.name()));
    let ordered = !parsed.order_by.is_empty();
    let (want_rows, got_rows) = if ordered {
        (encode_rows(&reference), encode_rows(&got))
    } else {
        (oracle::canon(&reference), oracle::canon(&got))
    };
    assert_eq!(
        got_rows,
        want_rows,
        "{} on {} diverges from the naive reference ({} vs {} rows, ordered={ordered})",
        q.name,
        system.name(),
        got_rows.len(),
        want_rows.len()
    );
    reference.len()
}

fn encode_rows(sols: &db2rdf::Solutions) -> Vec<Vec<String>> {
    sols.rows
        .iter()
        .map(|row| {
            row.iter().map(|t| t.as_ref().map(|t| t.encode()).unwrap_or_default()).collect()
        })
        .collect()
}

fn main() {
    let smoke = std::env::var("ANALYTICS_SMOKE").map(|v| v == "1").unwrap_or(false);
    let docs = scale_from_env("ANALYTICS_DOCS", if smoke { 400 } else { 10_000 });
    let runs = if smoke { 1 } else { 3 };
    let triples = datagen::sp2b::generate(docs, 42);
    println!("== Analytic workload (SPARQL 1.1 aggregates / BIND / VALUES / subqueries) ==");
    println!(
        "{docs} documents, {} triples{}\n",
        triples.len(),
        if smoke { "; SMOKE mode" } else { "" }
    );

    let systems = [System::Db2Rdf, System::TripleStore, System::Vertical];
    let stores: Vec<_> = systems
        .iter()
        .map(|s| {
            let t0 = std::time::Instant::now();
            let store = s.build(&triples, None);
            eprintln!("loaded {} in {:?}", s.name(), t0.elapsed());
            store
        })
        .collect();

    // Correctness gate first: every layout × every query vs the reference.
    let queries = queries();
    let mut reference_rows = Vec::with_capacity(queries.len());
    for q in &queries {
        let mut rows = 0;
        for (sys, store) in systems.iter().zip(stores.iter()) {
            rows = assert_agreement(sys, store, q, &triples);
        }
        reference_rows.push(rows);
    }
    println!("verified: all {} queries agree with the naive reference on all 3 layouts\n", queries.len());

    let results: Vec<Vec<(String, Outcome)>> =
        stores.iter().map(|s| run_workload(s, &queries, runs)).collect();

    println!(
        "{:<5} {:>8} | {:>12} {:>12} {:>12}",
        "query", "results", "Entity", "TripleStore", "Vertical"
    );
    for (qi, q) in queries.iter().enumerate() {
        println!(
            "{:<5} {:>8} | {:>12} {:>12} {:>12}",
            q.name,
            reference_rows[qi],
            fmt_time(&results[0][qi].1),
            fmt_time(&results[1][qi].1),
            fmt_time(&results[2][qi].1),
        );
    }

    let query_json: Vec<String> = queries
        .iter()
        .enumerate()
        .map(|(qi, q)| {
            let times: Vec<String> = systems
                .iter()
                .enumerate()
                .map(|(si, sys)| {
                    let ms = results[si][qi]
                        .1
                        .time_secs()
                        .map_or("null".to_string(), |s| format!("{:.3}", s * 1e3));
                    format!("\"{}\": {ms}", sys.name())
                })
                .collect();
            format!(
                "{{\"name\": \"{}\", \"results\": {}, \"ms\": {{{}}}}}",
                q.name,
                reference_rows[qi],
                times.join(", ")
            )
        })
        .collect();
    let json = format!(
        "{{\"smoke\": {smoke}, \"documents\": {docs}, \"triples\": {}, \
         \"verified_against_naive\": true, \"runs\": {runs}, \"queries\": [{}]}}\n",
        triples.len(),
        query_json.join(", ")
    );
    std::fs::write("BENCH_analytics.json", &json).expect("write BENCH_analytics.json");
    println!("\nwrote BENCH_analytics.json");
}
