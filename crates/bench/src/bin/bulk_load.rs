//! Bulk-load throughput and memory benchmark (DESIGN.md §4.11).
//!
//! Measures the streaming parallel bulk loader against the legacy
//! materialized `RdfStore::load` path on LUBM data and writes
//! `BENCH_load.json`:
//!
//! 1. **Scale run** — loads `BULK_LOAD_TRIPLES` (default 10M) LUBM triples
//!    through `bulk_load_triples` fed straight from `datagen::lubm::stream`
//!    (no materialized triple vector), recording triples/s, per-phase
//!    times, peak RSS (`VmHWM` from `/proc/self/status`), and post-load
//!    latency for a subset of the LUBM query mix.
//! 2. **1M comparison** — loads the same 1M-triple dataset once through
//!    the legacy `load()` path and once through the bulk path and reports
//!    the throughput ratio. The full profile *gates* on bulk ≥ 2x legacy:
//!    the sort-based pipeline must beat the per-triple hash-map path or
//!    the run exits non-zero.
//!
//! `BULK_LOAD_SMOKE=1` switches to the CI profile: ~100k triples in the
//! scale run, a 50k-triple comparison (same ≥2x gate — the measured
//! margin is ~3.6x, far above ratio noise even on one core), and a hard
//! peak-RSS ceiling (`BULK_LOAD_RSS_CEILING_MB`, default 1024) that fails
//! the run if the streaming pipeline ever buffers the dataset wholesale.
//!
//! Dependency-free: `std::time::Instant` timing, hand-rolled JSON. Run
//! with `cargo run --release -p bench --bin bulk_load`.

use std::time::Instant;

use datagen::lubm;
use db2rdf::{BulkLoadOptions, RdfStore};

/// Peak resident-set size of this process in bytes (`VmHWM`, Linux
/// best-effort — `None` elsewhere). Monotonic for the process lifetime, so
/// the scale run executes *first* and owns the high-water mark.
fn peak_rss_bytes() -> Option<u64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    let line = status.lines().find(|l| l.starts_with("VmHWM:"))?;
    let kb: u64 = line.split_whitespace().nth(1)?.parse().ok()?;
    Some(kb * 1024)
}

fn env_u64(name: &str, default: u64) -> u64 {
    std::env::var(name).ok().and_then(|v| v.parse().ok()).unwrap_or(default)
}

struct QueryLatency {
    name: String,
    rows: usize,
    secs: f64,
}

/// Time a subset of the LUBM mix post-load (one warm-up, then the timed
/// run — plan-cache effects are part of what a warm store serves).
fn query_latencies(store: &RdfStore, names: &[&str]) -> Vec<QueryLatency> {
    lubm::queries()
        .into_iter()
        .filter(|q| names.contains(&q.name.as_str()))
        .map(|q| {
            let _ = store.query(&q.sparql).expect("warm-up query");
            let t = Instant::now();
            let sols = store.query(&q.sparql).expect("timed query");
            QueryLatency { name: q.name, rows: sols.len(), secs: t.elapsed().as_secs_f64() }
        })
        .collect()
}

fn latency_json(lat: &[QueryLatency]) -> String {
    let items: Vec<String> = lat
        .iter()
        .map(|l| {
            format!(
                "{{\"name\":\"{}\",\"rows\":{},\"ms\":{:.3}}}",
                l.name,
                l.rows,
                l.secs * 1e3
            )
        })
        .collect();
    format!("[{}]", items.join(","))
}

fn main() {
    let smoke = std::env::var("BULK_LOAD_SMOKE").is_ok_and(|v| v == "1");
    let scale_triples =
        env_u64("BULK_LOAD_TRIPLES", if smoke { 100_000 } else { 10_000_000 });
    let seed = 42u64;

    // --- Scale run: stream → bulk loader, no materialized triple vector.
    println!(
        "bulk_load: scale run, {} triples ({})",
        scale_triples,
        if smoke { "smoke profile" } else { "full profile" }
    );
    let opts = BulkLoadOptions::default();
    let mut store = RdfStore::entity();
    let t = Instant::now();
    let stats = store
        .bulk_load_triples(
            lubm::stream(u32::MAX as usize, seed).take(scale_triples as usize),
            &opts,
        )
        .expect("bulk load");
    let scale_secs = t.elapsed().as_secs_f64();
    let scale_rate = stats.triples as f64 / scale_secs;
    let peak_rss = peak_rss_bytes();
    println!(
        "  {} triples ({} raw) in {scale_secs:.1}s = {:.0} triples/s \
         (parse {:.1}s, sort {:.1}s, insert {:.1}s)",
        stats.triples, stats.raw_triples, scale_rate, stats.parse_secs, stats.sort_secs,
        stats.insert_secs
    );
    println!(
        "  dict: {} entries, {:.1} MB raw -> {:.1} MB front-coded; peak RSS {}",
        stats.dict.entries,
        stats.dict.raw_bytes as f64 / 1e6,
        stats.dict.compressed_bytes as f64 / 1e6,
        peak_rss.map_or("n/a".into(), |b| format!("{:.0} MB", b as f64 / 1e6)),
    );

    let queries = query_latencies(&store, &["LQ1", "LQ4", "LQ6", "LQ13"]);
    for l in &queries {
        println!("  {}: {} rows in {:.1} ms", l.name, l.rows, l.secs * 1e3);
    }
    drop(store);

    // --- 1M comparison: legacy materialized load vs the bulk pipeline on
    // the identical dataset (materialized once, outside both timings).
    let cmp_triples = if smoke { 50_000usize } else { 1_000_000 };
    println!("bulk_load: legacy-vs-bulk comparison at {cmp_triples} triples");
    // Deduplicate up front: the bulk loader reports *distinct* triples
    // while the legacy report counts its input, so both paths must be fed
    // an exact-duplicate-free dataset for the counts (and the work) to be
    // comparable.
    let mut seen = std::collections::HashSet::new();
    let dataset: Vec<rdf::Triple> = lubm::stream(u32::MAX as usize, seed)
        .take(cmp_triples)
        .filter(|t| {
            seen.insert(format!(
                "{} {} {}",
                t.subject.encode(),
                t.predicate.encode(),
                t.object.encode()
            ))
        })
        .collect();

    let mut legacy_store = RdfStore::entity();
    let t = Instant::now();
    legacy_store.load(&dataset).expect("legacy load");
    let legacy_secs = t.elapsed().as_secs_f64();
    let legacy_triples = legacy_store.load_report().triples;
    drop(legacy_store);

    let mut bulk_store = RdfStore::entity();
    let t = Instant::now();
    let cmp_stats =
        bulk_store.bulk_load_triples(dataset.iter().cloned(), &opts).expect("bulk load");
    let bulk_secs = t.elapsed().as_secs_f64();
    assert_eq!(
        cmp_stats.triples, legacy_triples,
        "bulk and legacy load disagree on the triple count"
    );
    drop(bulk_store);

    let legacy_rate = legacy_triples as f64 / legacy_secs;
    let bulk_rate = cmp_stats.triples as f64 / bulk_secs;
    let speedup = bulk_rate / legacy_rate;
    println!(
        "  legacy {legacy_secs:.1}s ({legacy_rate:.0}/s), bulk {bulk_secs:.1}s \
         ({bulk_rate:.0}/s): {speedup:.2}x"
    );

    // --- Gates.
    let rss_ceiling_mb = env_u64("BULK_LOAD_RSS_CEILING_MB", 1024);
    if smoke {
        if let Some(b) = peak_rss {
            assert!(
                b <= rss_ceiling_mb * 1024 * 1024,
                "peak RSS {:.0} MB exceeds the {} MB smoke ceiling — the \
                 streaming pipeline buffered the dataset",
                b as f64 / 1e6,
                rss_ceiling_mb
            );
        }
    }
    assert!(
        speedup >= 2.0,
        "bulk load is only {speedup:.2}x the legacy path at {cmp_triples} \
         triples; the acceptance gate is 2x"
    );

    let json = format!(
        "{{\"smoke\":{smoke},\"seed\":{seed},\
         \"scale\":{{\"triples\":{},\"raw_triples\":{},\"secs\":{scale_secs:.3},\
         \"triples_per_sec\":{scale_rate:.0},\"parse_secs\":{:.3},\"sort_secs\":{:.3},\
         \"insert_secs\":{:.3},\"segments\":{},\"checkpoints\":{},\
         \"dict\":{{\"entries\":{},\"raw_bytes\":{},\"compressed_bytes\":{}}},\
         \"peak_rss_bytes\":{},\"queries\":{}}},\
         \"compare_1m\":{{\"triples\":{},\"legacy_secs\":{legacy_secs:.3},\
         \"bulk_secs\":{bulk_secs:.3},\"legacy_triples_per_sec\":{legacy_rate:.0},\
         \"bulk_triples_per_sec\":{bulk_rate:.0},\"speedup\":{speedup:.3}}}}}\n",
        stats.triples,
        stats.raw_triples,
        stats.parse_secs,
        stats.sort_secs,
        stats.insert_secs,
        stats.segments,
        stats.checkpoints,
        stats.dict.entries,
        stats.dict.raw_bytes,
        stats.dict.compressed_bytes,
        peak_rss.map_or("null".into(), |b| b.to_string()),
        latency_json(&queries),
        cmp_stats.triples,
    );
    std::fs::write("BENCH_load.json", &json).expect("write BENCH_load.json");
    println!("wrote BENCH_load.json");
}
