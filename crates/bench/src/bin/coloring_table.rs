//! Table 4 + the §2.3 spill experiments: graph-coloring results for all
//! four datasets, plus full-coloring vs 10%-sample-coloring spill counts
//! and NULL fractions.
//!
//! Usage: `cargo run -p bench --release --bin coloring_table`
//! Scales: `LUBM_UNIVS`, `SP2B_DOCS`, `DBPEDIA_ENTITIES`, `DBPEDIA_PREDS`,
//! `PRBENCH_BUGS` env vars.

use bench::scale_from_env;
use db2rdf::{ColoringMode, RdfStore, StoreConfig};
use rdf::Triple;

fn dataset(name: &str) -> Vec<Triple> {
    match name {
        "LUBM" => datagen::lubm::generate(scale_from_env("LUBM_UNIVS", 10), 42),
        "SP2Bench" => datagen::sp2b::generate(scale_from_env("SP2B_DOCS", 10_000), 42),
        "DBpedia" => datagen::dbpedia::generate(
            scale_from_env("DBPEDIA_ENTITIES", 12_000),
            scale_from_env("DBPEDIA_PREDS", 3_000),
            42,
        ),
        "PRBench" => datagen::prbench::generate(scale_from_env("PRBENCH_BUGS", 4_000), 42),
        _ => unreachable!(),
    }
}

fn load(triples: &[Triple], coloring: ColoringMode, max_cols: usize) -> db2rdf::LoadReport {
    let mut cfg = StoreConfig::default();
    cfg.entity.coloring = coloring;
    cfg.entity.max_cols = max_cols;
    let mut store = RdfStore::new(cfg);
    store.load(triples).unwrap().clone()
}

fn main() {
    println!("== Table 4: Graph Coloring Results (scaled datasets) ==\n");
    println!(
        "{:<10} {:>9} {:>7} | {:>8} {:>8} | {:>8} {:>8} | {:>11} {:>10}",
        "dataset", "triples", "preds", "DPH cols", "covered", "RPH cols", "covered", "DPH spills", "RPH spills"
    );
    let mut rows = Vec::new();
    for name in ["SP2Bench", "PRBench", "LUBM", "DBpedia"] {
        let triples = dataset(name);
        let max_cols = if name == "DBpedia" { 75 } else { 100 };
        let full = load(&triples, ColoringMode::Full, max_cols);
        println!(
            "{:<10} {:>9} {:>7} | {:>8} {:>7.1}% | {:>8} {:>7.1}% | {:>11} {:>10}",
            name,
            full.triples,
            full.predicates,
            full.dph_cols,
            100.0 * full.dph_coverage,
            full.rph_cols,
            100.0 * full.rph_coverage,
            full.dph_spill_rows,
            full.rph_spill_rows,
        );
        rows.push((name, triples, full));
    }
    println!(
        "\nPaper's Table 4: LUBM 18 preds → 10 DPH / 3 RPH cols at 100%;\n\
         SP2Bench 78 → 54/53 at 100%; PRBench 51 → 35/9 at 100%;\n\
         DBpedia 53,976 preds → 75 cols at 94% / 51 at 99%.\n"
    );

    println!("== §2.3: coloring from a 10% sample vs the full dataset ==\n");
    println!(
        "{:<10} | {:>13} {:>13} | {:>13} {:>13}",
        "dataset", "full DPH sp.", "10% DPH sp.", "full RPH sp.", "10% RPH sp."
    );
    for (name, triples, full) in &rows {
        let sampled = load(triples, ColoringMode::Sample(0.10), if *name == "DBpedia" { 75 } else { 100 });
        println!(
            "{:<10} | {:>13} {:>13} | {:>13} {:>13}",
            name, full.dph_spill_rows, sampled.dph_spill_rows, full.rph_spill_rows, sampled.rph_spill_rows
        );
    }
    println!(
        "\nPaper: 10% sampling added no LUBM spills, 139+666 SP2B spills, and\n\
         ~0.9%/0.3% extra DBpedia spills — sample coloring stays close to full.\n"
    );

    println!("== §2.3: NULL fractions under coloring ==\n");
    for (name, _, full) in &rows {
        println!(
            "{:<10} DPH {:>5.1}% NULL cells, RPH {:>5.1}% (paper: LUBM 64.67%/94.77%, DBpedia 93%/97.6%)",
            name,
            100.0 * full.dph_null_fraction,
            100.0 * full.rph_null_fraction
        );
    }
}
