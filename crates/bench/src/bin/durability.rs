//! Durability-overhead benchmark: what does the WAL cost?
//!
//! Loads the same LUBM-style dataset into (a) a purely in-memory store and
//! (b) a durable store (WAL + snapshot directory), then measures load time,
//! checkpoint time, reopen time (snapshot load vs full WAL replay), and the
//! on-disk footprint. Prints a table and writes `BENCH_durability.json`.
//!
//! Dependency-free by design: `std::time::Instant` timing, hand-rolled
//! JSON. Run with `cargo run --release -p bench --bin durability`; scale
//! with `DURABILITY_UNIV=<universities>` (default 8, ~5.1k triples each).

use std::time::Instant;

use datagen::lubm;
use db2rdf::{RdfStore, StoreConfig};

fn ms(from: Instant) -> f64 {
    from.elapsed().as_secs_f64() * 1e3
}

fn dir_bytes(dir: &std::path::Path) -> u64 {
    std::fs::read_dir(dir)
        .map(|rd| rd.flatten().filter_map(|e| e.metadata().ok()).map(|m| m.len()).sum())
        .unwrap_or(0)
}

fn main() {
    let univ: usize = std::env::var("DURABILITY_UNIV")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(8);
    let triples = lubm::generate(univ, 1);
    println!("dataset: {} LUBM universities, {} triples", univ, triples.len());

    let dir = std::env::temp_dir().join(format!("relstore-durability-bench-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);

    // In-memory baseline.
    let t0 = Instant::now();
    let mut mem = RdfStore::new(StoreConfig::default());
    mem.load(&triples).expect("in-memory load");
    let mem_load_ms = ms(t0);
    let check = mem.query("SELECT ?s WHERE { ?s ?p ?o } LIMIT 5").expect("query").len();

    // Durable load (one WAL transaction).
    let t0 = Instant::now();
    let mut dur = RdfStore::open(&dir, StoreConfig::default()).expect("open");
    dur.load(&triples).expect("durable load");
    let dur_load_ms = ms(t0);
    let wal_bytes = dir_bytes(&dir);

    // Reopen with WAL replay only (no snapshot yet).
    drop(dur);
    let t0 = Instant::now();
    let mut dur = RdfStore::open(&dir, StoreConfig::default()).expect("reopen (replay)");
    let replay_open_ms = ms(t0);
    assert_eq!(
        dur.query("SELECT ?s WHERE { ?s ?p ?o } LIMIT 5").expect("query after replay").len(),
        check
    );

    // Checkpoint, then reopen from the snapshot.
    let t0 = Instant::now();
    dur.checkpoint().expect("checkpoint");
    let checkpoint_ms = ms(t0);
    let snapshot_bytes = dir_bytes(&dir);
    drop(dur);
    let t0 = Instant::now();
    let dur = RdfStore::open(&dir, StoreConfig::default()).expect("reopen (snapshot)");
    let snapshot_open_ms = ms(t0);
    assert_eq!(
        dur.query("SELECT ?s WHERE { ?s ?p ?o } LIMIT 5").expect("query after snapshot").len(),
        check
    );
    drop(dur);

    let overhead = if mem_load_ms > 0.0 { dur_load_ms / mem_load_ms } else { f64::NAN };
    println!();
    println!("{:<28} {:>12}", "metric", "value");
    println!("{:<28} {:>9.1} ms", "load (in-memory)", mem_load_ms);
    println!("{:<28} {:>9.1} ms", "load (durable, WAL)", dur_load_ms);
    println!("{:<28} {:>11.2}x", "durable-load overhead", overhead);
    println!("{:<28} {:>9.1} ms", "reopen via WAL replay", replay_open_ms);
    println!("{:<28} {:>9.1} ms", "checkpoint", checkpoint_ms);
    println!("{:<28} {:>9.1} ms", "reopen via snapshot", snapshot_open_ms);
    println!("{:<28} {:>8.1} KiB", "WAL size after load", wal_bytes as f64 / 1024.0);
    println!("{:<28} {:>8.1} KiB", "dir size after checkpoint", snapshot_bytes as f64 / 1024.0);

    let json = format!(
        "{{\n  \"triples\": {},\n  \"mem_load_ms\": {mem_load_ms:.3},\n  \"durable_load_ms\": {dur_load_ms:.3},\n  \"overhead\": {overhead:.4},\n  \"replay_open_ms\": {replay_open_ms:.3},\n  \"checkpoint_ms\": {checkpoint_ms:.3},\n  \"snapshot_open_ms\": {snapshot_open_ms:.3},\n  \"wal_bytes\": {wal_bytes},\n  \"dir_bytes_after_checkpoint\": {snapshot_bytes}\n}}\n",
        triples.len(),
    );
    std::fs::write("BENCH_durability.json", &json).expect("write BENCH_durability.json");
    println!("\nwrote BENCH_durability.json");

    let _ = std::fs::remove_dir_all(&dir);
}
