//! Thread-scaling and dictionary-encoding benchmark for the executor.
//!
//! Loads ≥100k LUBM-style triples into a single `spo(s,p,o)` relation (the
//! triple-store layout, scan- and hash-join-heavy by construction: no
//! indexes, so every FROM item is a full parallel scan and every join is a
//! build-once/probe-parallel hash join), then:
//!
//! 1. times the suite against a dictionary-encoded `spo_enc(s,p,o)`
//!    BIGINT relation (constants become interned IDs; the LIKE filter
//!    materializes strings through `RDF_STR`), asserts the decoded results
//!    are identical to the string run, and writes the per-query
//!    string-vs-encoded comparison to `BENCH_dict.json`;
//! 2. *calibrates* the dataset — doubling the university count until every
//!    query takes ≥1s single-threaded, so per-point noise cannot manufacture
//!    a scaling story — then times the suite at 1/2/4/8 worker threads,
//!    asserting the result rows (including order) are identical at every
//!    width, and writes wall-clock plus per-phase (scan/build/probe/agg)
//!    timings to `BENCH_exec.json`.
//!
//! Dependency-free by design: `std::time::Instant` timing, hand-rolled
//! JSON. Run with `cargo run --release -p bench --bin exec_scaling`; the
//! starting scale is `EXEC_SCALING_UNIV=<universities>` (default 24, ~5.1k
//! triples each) and calibration stops at `EXEC_SCALING_MAX_UNIV` (default
//! 1536). `EXEC_SCALING_SMOKE=1` switches to a CI smoke profile: a small
//! uncalibrated dataset, one run per point, 1/2/4 threads — a
//! panic-freedom and determinism check, not a measurement. Speedup is
//! relative to the 1-thread run on the same machine. The honesty rules: the
//! JSON records `cores` and `single_thread_min_secs`; the scaling gates
//! (≥2.5x geomean at 4 threads full profile, ≥1.5x minimum in smoke) only
//! arm when the host actually has ≥4 cores — on fewer cores wall-clock
//! speedup >1 is physically impossible and the run reports that instead of
//! pretending.

use std::time::Instant;

use bench::scale_from_env;
use datagen::lubm::{self, NS, RDF_TYPE};
use db2rdf::translate::functions::register_rdf_functions;
use db2rdf::{Dict, SharedDict};
use relstore::{quote_str, Database, PhaseTimings, Rel, Value};

fn iri(local: &str) -> String {
    rdf::Term::iri(format!("{NS}{local}")).encode()
}

/// One benchmark query in both dialects. `term_cols` lists the output
/// columns that hold RDF terms (IDs in the encoded run); the rest are plain
/// values (e.g. COUNT results) that must match bit-for-bit.
struct BenchQuery {
    name: &'static str,
    string_sql: String,
    encoded_sql: String,
    term_cols: Vec<usize>,
}

fn queries(dict: &Dict) -> Vec<BenchQuery> {
    let typ_t = rdf::Term::iri(RDF_TYPE).encode();
    let sq = |enc: &str| quote_str(enc);
    let id = |enc: &str| dict.lookup(enc).expect("benchmark constant interned").to_string();
    let triangle = |typ: &str, grad: &str, advisor: &str, teacher: &str, takes: &str| {
        format!(
            "SELECT t1.s, t2.o AS prof, t3.o AS course \
             FROM {{T}} AS t1, {{T}} AS t2, {{T}} AS t3, {{T}} AS t4 \
             WHERE t1.p = {typ} AND t1.o = {grad} \
             AND t2.s = t1.s AND t2.p = {advisor} \
             AND t3.s = t2.o AND t3.p = {teacher} \
             AND t4.s = t1.s AND t4.p = {takes} AND t4.o = t3.o"
        )
    };
    let star = |typ: &str, grad: &str, name: &str, member: &str, o_expr: &str| {
        format!(
            "SELECT t1.s, t2.o AS name, t3.o AS dept \
             FROM {{T}} AS t1, {{T}} AS t2, {{T}} AS t3 \
             WHERE t1.p = {typ} AND t1.o = {grad} \
             AND t2.s = t1.s AND t2.p = {name} AND {o_expr} LIKE '%Grad 1%' \
             AND t3.s = t1.s AND t3.p = {member}"
        )
    };
    let chain = |advisor: &str, member: &str| {
        format!(
            "SELECT t2.o AS dept, COUNT(*) AS n \
             FROM {{T}} AS t1, {{T}} AS t2 \
             WHERE t1.p = {advisor} AND t2.s = t1.s AND t2.p = {member} \
             GROUP BY t2.o ORDER BY 2 DESC, 1"
        )
    };
    let consts: Vec<String> =
        ["GraduateStudent", "advisor", "teacherOf", "takesCourse", "name", "memberOf"]
            .iter()
            .map(|l| iri(l))
            .collect();
    let [grad, advisor, teacher, takes, name, member] = &consts[..] else { unreachable!() };
    vec![
        BenchQuery {
            // LUBM Q9-style triangle: student → advisor → course the
            // advisor teaches and the student takes. Three hash joins, the
            // last on a composite (s, o) key.
            name: "triangle",
            string_sql: triangle(&sq(&typ_t), &sq(grad), &sq(advisor), &sq(teacher), &sq(takes)),
            encoded_sql: triangle(&id(&typ_t), &id(grad), &id(advisor), &id(teacher), &id(takes)),
            term_cols: vec![0, 1, 2],
        },
        BenchQuery {
            // Star with a LIKE filter: expression-heavy parallel scans. The
            // encoded run must materialize the name through the dictionary
            // (`RDF_STR`) before the substring match — the one place where
            // late materialization pays its cost inside the engine.
            name: "star_like",
            string_sql: star(&sq(&typ_t), &sq(grad), &sq(name), &sq(member), "t2.o"),
            encoded_sql: star(&id(&typ_t), &id(grad), &id(name), &id(member), "RDF_STR(t2.o)"),
            term_cols: vec![0, 1, 2],
        },
        BenchQuery {
            // Chain ending in an aggregation over a parallel scan.
            name: "chain_agg",
            string_sql: chain(&sq(advisor), &sq(member)),
            encoded_sql: chain(&id(advisor), &id(member)),
            term_cols: vec![0],
        },
    ]
}

/// Median wall-clock seconds over `runs` repetitions, with the per-phase
/// breakdown of the median run. Tracing costs two `Instant` reads per
/// operator region — noise next to the regions themselves — so the traced
/// wall clock *is* the measurement, not an approximation of it.
fn traced_median(db: &Database, sql: &str, runs: usize) -> (f64, PhaseTimings, Rel) {
    let (warm, _) = db.query_traced(sql).expect("query");
    let mut samples: Vec<(f64, PhaseTimings)> = (0..runs)
        .map(|_| {
            let t0 = Instant::now();
            let (_, phases) = db.query_traced(sql).expect("query");
            (t0.elapsed().as_secs_f64(), phases)
        })
        .collect();
    samples.sort_by(|a, b| f64::total_cmp(&a.0, &b.0));
    let (secs, phases) = samples[samples.len() / 2];
    (secs, phases, warm)
}

/// Build a fresh string-table database at the given scale.
fn string_db(universities: usize) -> (Database, usize) {
    let triples = lubm::generate(universities, 42);
    let mut db = Database::new();
    db.execute("CREATE TABLE spo (s TEXT, p TEXT, o TEXT)").unwrap();
    db.insert_rows(
        "spo",
        triples.iter().map(|t| {
            vec![
                Value::str(t.subject.encode()),
                Value::str(t.predicate.encode()),
                Value::str(t.object.encode()),
            ]
        }),
    )
    .unwrap();
    (db, triples.len())
}

/// Time the two dialects of one query *interleaved*: each repetition runs
/// the string query then the encoded query, and each side keeps its minimum.
/// The minimum is the noise-free estimator for a deterministic computation
/// (every slowdown source is additive), and interleaving makes both sides
/// sample the same window of machine conditions, so a load spike or
/// frequency shift cannot land entirely on one dialect.
fn minned_pair(db: &Database, str_sql: &str, enc_sql: &str, runs: usize) -> (f64, f64, Rel, Rel) {
    let str_warm = db.query(str_sql).expect("query");
    let enc_warm = db.query(enc_sql).expect("query");
    let (mut str_secs, mut enc_secs) = (f64::INFINITY, f64::INFINITY);
    for _ in 0..runs {
        let t0 = Instant::now();
        db.query(str_sql).expect("query");
        str_secs = str_secs.min(t0.elapsed().as_secs_f64());
        let t0 = Instant::now();
        db.query(enc_sql).expect("query");
        enc_secs = enc_secs.min(t0.elapsed().as_secs_f64());
    }
    (str_secs, enc_secs, str_warm, enc_warm)
}

/// Canonical string form of a result set: term columns resolved through the
/// dictionary when one is given, rows sorted (the two dialects order
/// differently where ties break on term columns).
fn canon(rel: &Rel, term_cols: &[usize], dict: Option<&Dict>) -> Vec<Vec<String>> {
    let cell = |i: usize, v: &Value| -> String {
        if let (Value::Int(id), Some(d)) = (v, dict) {
            if term_cols.contains(&i) {
                return d.resolve(*id).expect("result ID resolves").to_string();
            }
        }
        match v {
            Value::Null => "∅".into(),
            Value::Str(s) => s.to_string(),
            Value::Int(n) => n.to_string(),
            Value::Double(x) => x.to_string(),
            Value::Bool(b) => b.to_string(),
        }
    };
    let mut rows: Vec<Vec<String>> = rel
        .rows
        .iter()
        .map(|r| r.iter().enumerate().map(|(i, v)| cell(i, v)).collect())
        .collect();
    rows.sort();
    rows
}

fn main() {
    let smoke = std::env::var("EXEC_SCALING_SMOKE").map(|v| v == "1").unwrap_or(false);
    let universities = scale_from_env("EXEC_SCALING_UNIV", if smoke { 2 } else { 24 });
    let runs = if smoke { 1 } else { 3 };
    let thread_counts: &[usize] = if smoke { &[1, 2, 4] } else { &[1, 2, 4, 8] };
    let triples = lubm::generate(universities, 42);
    if !smoke {
        assert!(triples.len() >= 100_000, "need ≥100k triples, got {}", triples.len());
    }
    let cores = std::thread::available_parallelism().map(usize::from).unwrap_or(1);
    eprintln!(
        "loaded {} LUBM triples ({universities} universities); {cores} core(s) available{}",
        triples.len(),
        if smoke { "; SMOKE mode" } else { "" }
    );

    let mut db = Database::new();
    db.execute("CREATE TABLE spo (s TEXT, p TEXT, o TEXT)").unwrap();
    db.insert_rows(
        "spo",
        triples.iter().map(|t| {
            vec![
                Value::str(t.subject.encode()),
                Value::str(t.predicate.encode()),
                Value::str(t.object.encode()),
            ]
        }),
    )
    .unwrap();

    // Dictionary-encoded copy: every term interned to a dense BIGINT.
    let shared = SharedDict::new();
    let enc_rows: Vec<Vec<Value>> = {
        let mut d = shared.write();
        triples
            .iter()
            .map(|t| {
                vec![
                    Value::Int(d.intern(&t.subject.encode())),
                    Value::Int(d.intern(&t.predicate.encode())),
                    Value::Int(d.intern(&t.object.encode())),
                ]
            })
            .collect()
    };
    register_rdf_functions(&mut db, &shared);
    db.execute("CREATE TABLE spo_enc (s BIGINT, p BIGINT, o BIGINT)").unwrap();
    db.insert_rows("spo_enc", enc_rows).unwrap();

    let dict_guard = shared.read();
    let suite = queries(&dict_guard);

    // ---- Phase A: string vs dictionary-encoded → BENCH_dict.json
    // Runs first: the thread-scaling phase oversubscribes small machines for
    // minutes, and the comparison is fairest on a quiet core.
    let dict_threads = if smoke { 1 } else { 4.min(cores) };
    let dict_runs = if smoke { 1 } else { 9 };
    db.set_threads(Some(dict_threads));
    println!(
        "{:<10} {:>10} {:>12} {:>13} {:>9}  ({dict_threads} thread(s))",
        "query", "rows", "string_secs", "encoded_secs", "speedup"
    );
    let mut dict_json = Vec::new();
    let mut log_sum = 0.0f64;
    for q in &suite {
        let (str_secs, enc_secs, str_rel, enc_rel) = minned_pair(
            &db,
            &q.string_sql.replace("{T}", "spo"),
            &q.encoded_sql.replace("{T}", "spo_enc"),
            dict_runs,
        );
        assert_eq!(
            canon(&str_rel, &q.term_cols, None),
            canon(&enc_rel, &q.term_cols, Some(&dict_guard)),
            "{}: encoded run decoded to different solutions",
            q.name
        );
        let speedup = str_secs / enc_secs;
        log_sum += speedup.ln();
        println!(
            "{:<10} {:>10} {:>12.4} {:>13.4} {:>8.2}x",
            q.name,
            str_rel.rows.len(),
            str_secs,
            enc_secs,
            speedup
        );
        dict_json.push(format!(
            "{{\"name\": \"{}\", \"rows\": {}, \"string_secs\": {str_secs:.6}, \
             \"encoded_secs\": {enc_secs:.6}, \"speedup\": {speedup:.3}}}",
            q.name,
            str_rel.rows.len()
        ));
    }
    let geomean = (log_sum / suite.len() as f64).exp();
    let json = format!(
        "{{\n  \"bench\": \"exec_scaling_dict\",\n  \"triples\": {},\n  \"universities\": {},\n  \
         \"cores\": {cores},\n  \"threads\": {dict_threads},\n  \"runs_per_point\": {},\n  \
         \"smoke\": {},\n  \"geomean_speedup\": {:.3},\n  \"queries\": [\n    {}\n  ]\n}}\n",
        triples.len(),
        universities,
        dict_runs,
        smoke,
        geomean,
        dict_json.join(",\n    ")
    );
    std::fs::write("BENCH_dict.json", &json).expect("write BENCH_dict.json");
    eprintln!("dictionary-encoding geometric-mean speedup: {geomean:.2}x (wrote BENCH_dict.json)");

    // ---- Phase B: thread scaling at a calibrated size → BENCH_exec.json
    // Free the comparison tables first: the calibrated dataset can be two
    // orders of magnitude larger than the Phase A one.
    drop(dict_guard);
    drop(db);

    // Calibrate: double the dataset until every query takes ≥1s on one
    // thread. Sub-second points measure scheduler jitter, not scaling — a
    // flat curve at 30ms and a flat curve at 3s mean different things, and
    // only the second is allowed to count against (or for) the executor.
    let max_univ = scale_from_env("EXEC_SCALING_MAX_UNIV", 1536);
    let mut bench_univ = universities;
    let (mut scale_db, mut bench_triples) = string_db(bench_univ);
    let mut single_min;
    loop {
        scale_db.set_threads(Some(1));
        single_min = f64::INFINITY;
        for q in &suite {
            let sql = q.string_sql.replace("{T}", "spo");
            let t0 = Instant::now();
            scale_db.query(&sql).expect("query");
            single_min = single_min.min(t0.elapsed().as_secs_f64());
        }
        if smoke || single_min >= 1.0 || bench_univ * 2 > max_univ {
            break;
        }
        bench_univ *= 2;
        eprintln!(
            "calibrating: fastest query {single_min:.3}s single-threaded at \
             {bench_univ_prev} universities — doubling to {bench_univ}",
            bench_univ_prev = bench_univ / 2
        );
        (scale_db, bench_triples) = string_db(bench_univ);
    }
    let calibrated = single_min >= 1.0;
    eprintln!(
        "scaling phase: {bench_triples} triples ({bench_univ} universities), fastest query \
         {single_min:.3}s single-threaded{}",
        if calibrated { "" } else { " — BELOW the 1s calibration bar" }
    );

    let mut json_queries = Vec::new();
    let mut speedups_at_4: Vec<f64> = Vec::new();
    println!();
    println!(
        "{:<10} {:>8} {:>10} {:>10} {:>9}  {:>8} {:>8} {:>8} {:>8}",
        "query", "threads", "rows", "secs", "speedup", "scan", "build", "probe", "agg"
    );
    for q in &suite {
        let sql = q.string_sql.replace("{T}", "spo");
        let mut base_secs = 0.0;
        let mut reference: Option<Rel> = None;
        let mut runs_json = Vec::new();
        for &threads in thread_counts {
            scale_db.set_threads(Some(threads));
            let (secs, ph, rel) = traced_median(&scale_db, &sql, runs);
            match &reference {
                None => {
                    base_secs = secs;
                    reference = Some(rel);
                }
                Some(r) => assert_eq!(
                    r.rows, rel.rows,
                    "{}: result rows (or their order) changed at {threads} threads",
                    q.name
                ),
            }
            let speedup = base_secs / secs;
            if threads == 4 {
                speedups_at_4.push(speedup);
            }
            let rows = reference.as_ref().unwrap().rows.len();
            println!(
                "{:<10} {threads:>8} {rows:>10} {secs:>10.4} {speedup:>8.2}x  \
                 {:>8.4} {:>8.4} {:>8.4} {:>8.4}",
                q.name, ph.scan_secs, ph.build_secs, ph.probe_secs, ph.agg_secs
            );
            runs_json.push(format!(
                "{{\"threads\": {threads}, \"secs\": {secs:.6}, \"speedup\": {speedup:.3}, \
                 \"phases\": {{\"scan_secs\": {:.6}, \"build_secs\": {:.6}, \
                 \"probe_secs\": {:.6}, \"agg_secs\": {:.6}}}}}",
                ph.scan_secs, ph.build_secs, ph.probe_secs, ph.agg_secs
            ));
        }
        json_queries.push(format!(
            "{{\"name\": \"{}\", \"rows\": {}, \"runs\": [{}]}}",
            q.name,
            reference.unwrap().rows.len(),
            runs_json.join(", ")
        ));
    }

    // No 4-thread point → null, not an invalid `inf`/`nan`.
    let min_at_4 = speedups_at_4.iter().copied().fold(f64::INFINITY, f64::min);
    let geo_at_4 = if speedups_at_4.is_empty() {
        f64::NAN
    } else {
        (speedups_at_4.iter().map(|s| s.ln()).sum::<f64>() / speedups_at_4.len() as f64).exp()
    };
    let opt_json = |v: f64| if v.is_finite() { format!("{v:.3}") } else { "null".to_string() };
    let json = format!(
        "{{\n  \"bench\": \"exec_scaling\",\n  \"triples\": {bench_triples},\n  \
         \"universities\": {bench_univ},\n  \"cores\": {cores},\n  \
         \"runs_per_point\": {runs},\n  \"smoke\": {smoke},\n  \
         \"single_thread_min_secs\": {single_min:.3},\n  \"calibrated\": {calibrated},\n  \
         \"min_speedup_at_4_threads\": {},\n  \"geomean_speedup_at_4_threads\": {},\n  \
         \"queries\": [\n    {}\n  ]\n}}\n",
        opt_json(min_at_4),
        opt_json(geo_at_4),
        json_queries.join(",\n    ")
    );
    std::fs::write("BENCH_exec.json", &json).expect("write BENCH_exec.json");
    if min_at_4.is_finite() {
        eprintln!(
            "speedup at 4 threads: min {min_at_4:.2}x, geomean {geo_at_4:.2}x (wrote BENCH_exec.json)"
        );
    } else {
        eprintln!("no 4-thread point in this profile (wrote BENCH_exec.json)");
    }

    // The scaling gates. Armed only when ≥4 physical cores exist: with
    // fewer, a 4-thread wall-clock speedup >1.0 is physically impossible
    // and asserting it would reward machines for lying about core counts.
    if cores >= 4 {
        if smoke {
            assert!(
                min_at_4 >= 1.5,
                "scaling gate: min 4-thread speedup {min_at_4:.2}x < 1.5x on {cores} cores"
            );
        } else {
            assert!(
                geo_at_4 >= 2.5,
                "scaling gate: geomean 4-thread speedup {geo_at_4:.2}x < 2.5x on {cores} cores"
            );
        }
        eprintln!("scaling gate: PASS");
    } else {
        eprintln!(
            "scaling gate: SKIPPED — only {cores} core(s) available, wall-clock speedup \
             cannot exceed 1.0 here; run on a ≥4-core machine to evaluate the claim"
        );
    }
}
