//! Thread-scaling and dictionary-encoding benchmark for the executor.
//!
//! Loads ≥100k LUBM-style triples into a single `spo(s,p,o)` relation (the
//! triple-store layout, scan- and hash-join-heavy by construction: no
//! indexes, so every FROM item is a full parallel scan and every join is a
//! build-once/probe-parallel hash join), then:
//!
//! 1. times a multi-join query suite at 1/2/4/8 worker threads, asserting
//!    the result rows — including their order — are identical at every
//!    width, and writes the measurements to `BENCH_exec.json`;
//! 2. times the same suite against a dictionary-encoded `spo_enc(s,p,o)`
//!    BIGINT relation (constants become interned IDs; the LIKE filter
//!    materializes strings through `RDF_STR`), asserts the decoded results
//!    are identical to the string run, and writes the per-query
//!    string-vs-encoded comparison to `BENCH_dict.json`.
//!
//! Dependency-free by design: `std::time::Instant` timing, hand-rolled
//! JSON. Run with `cargo run --release -p bench --bin exec_scaling`; scale
//! with `EXEC_SCALING_UNIV=<universities>` (default 24, ~5.1k triples
//! each). `EXEC_SCALING_SMOKE=1` switches to a CI smoke profile: a small
//! dataset, one run per point, 1/2 threads only — a panic-freedom check,
//! not a measurement. Speedup is relative to the 1-thread run on the same
//! machine; on a single-core host the wall-clock curve is flat and the run
//! degrades to a determinism check (the JSON records `cores`).

use std::time::Instant;

use bench::scale_from_env;
use datagen::lubm::{self, NS, RDF_TYPE};
use db2rdf::translate::functions::register_rdf_functions;
use db2rdf::{Dict, SharedDict};
use relstore::{quote_str, Database, Rel, Value};

fn iri(local: &str) -> String {
    rdf::Term::iri(format!("{NS}{local}")).encode()
}

/// One benchmark query in both dialects. `term_cols` lists the output
/// columns that hold RDF terms (IDs in the encoded run); the rest are plain
/// values (e.g. COUNT results) that must match bit-for-bit.
struct BenchQuery {
    name: &'static str,
    string_sql: String,
    encoded_sql: String,
    term_cols: Vec<usize>,
}

fn queries(dict: &Dict) -> Vec<BenchQuery> {
    let typ_t = rdf::Term::iri(RDF_TYPE).encode();
    let sq = |enc: &str| quote_str(enc);
    let id = |enc: &str| dict.lookup(enc).expect("benchmark constant interned").to_string();
    let triangle = |typ: &str, grad: &str, advisor: &str, teacher: &str, takes: &str| {
        format!(
            "SELECT t1.s, t2.o AS prof, t3.o AS course \
             FROM {{T}} AS t1, {{T}} AS t2, {{T}} AS t3, {{T}} AS t4 \
             WHERE t1.p = {typ} AND t1.o = {grad} \
             AND t2.s = t1.s AND t2.p = {advisor} \
             AND t3.s = t2.o AND t3.p = {teacher} \
             AND t4.s = t1.s AND t4.p = {takes} AND t4.o = t3.o"
        )
    };
    let star = |typ: &str, grad: &str, name: &str, member: &str, o_expr: &str| {
        format!(
            "SELECT t1.s, t2.o AS name, t3.o AS dept \
             FROM {{T}} AS t1, {{T}} AS t2, {{T}} AS t3 \
             WHERE t1.p = {typ} AND t1.o = {grad} \
             AND t2.s = t1.s AND t2.p = {name} AND {o_expr} LIKE '%Grad 1%' \
             AND t3.s = t1.s AND t3.p = {member}"
        )
    };
    let chain = |advisor: &str, member: &str| {
        format!(
            "SELECT t2.o AS dept, COUNT(*) AS n \
             FROM {{T}} AS t1, {{T}} AS t2 \
             WHERE t1.p = {advisor} AND t2.s = t1.s AND t2.p = {member} \
             GROUP BY t2.o ORDER BY 2 DESC, 1"
        )
    };
    let consts: Vec<String> =
        ["GraduateStudent", "advisor", "teacherOf", "takesCourse", "name", "memberOf"]
            .iter()
            .map(|l| iri(l))
            .collect();
    let [grad, advisor, teacher, takes, name, member] = &consts[..] else { unreachable!() };
    vec![
        BenchQuery {
            // LUBM Q9-style triangle: student → advisor → course the
            // advisor teaches and the student takes. Three hash joins, the
            // last on a composite (s, o) key.
            name: "triangle",
            string_sql: triangle(&sq(&typ_t), &sq(grad), &sq(advisor), &sq(teacher), &sq(takes)),
            encoded_sql: triangle(&id(&typ_t), &id(grad), &id(advisor), &id(teacher), &id(takes)),
            term_cols: vec![0, 1, 2],
        },
        BenchQuery {
            // Star with a LIKE filter: expression-heavy parallel scans. The
            // encoded run must materialize the name through the dictionary
            // (`RDF_STR`) before the substring match — the one place where
            // late materialization pays its cost inside the engine.
            name: "star_like",
            string_sql: star(&sq(&typ_t), &sq(grad), &sq(name), &sq(member), "t2.o"),
            encoded_sql: star(&id(&typ_t), &id(grad), &id(name), &id(member), "RDF_STR(t2.o)"),
            term_cols: vec![0, 1, 2],
        },
        BenchQuery {
            // Chain ending in an aggregation over a parallel scan.
            name: "chain_agg",
            string_sql: chain(&sq(advisor), &sq(member)),
            encoded_sql: chain(&id(advisor), &id(member)),
            term_cols: vec![0],
        },
    ]
}

fn median_secs(db: &Database, sql: &str, runs: usize) -> (f64, Rel) {
    let warm = db.query(sql).expect("query");
    let mut times: Vec<f64> = (0..runs)
        .map(|_| {
            let t0 = Instant::now();
            db.query(sql).expect("query");
            t0.elapsed().as_secs_f64()
        })
        .collect();
    times.sort_by(f64::total_cmp);
    (times[times.len() / 2], warm)
}

/// Time the two dialects of one query *interleaved*: each repetition runs
/// the string query then the encoded query, and each side keeps its minimum.
/// The minimum is the noise-free estimator for a deterministic computation
/// (every slowdown source is additive), and interleaving makes both sides
/// sample the same window of machine conditions, so a load spike or
/// frequency shift cannot land entirely on one dialect.
fn minned_pair(db: &Database, str_sql: &str, enc_sql: &str, runs: usize) -> (f64, f64, Rel, Rel) {
    let str_warm = db.query(str_sql).expect("query");
    let enc_warm = db.query(enc_sql).expect("query");
    let (mut str_secs, mut enc_secs) = (f64::INFINITY, f64::INFINITY);
    for _ in 0..runs {
        let t0 = Instant::now();
        db.query(str_sql).expect("query");
        str_secs = str_secs.min(t0.elapsed().as_secs_f64());
        let t0 = Instant::now();
        db.query(enc_sql).expect("query");
        enc_secs = enc_secs.min(t0.elapsed().as_secs_f64());
    }
    (str_secs, enc_secs, str_warm, enc_warm)
}

/// Canonical string form of a result set: term columns resolved through the
/// dictionary when one is given, rows sorted (the two dialects order
/// differently where ties break on term columns).
fn canon(rel: &Rel, term_cols: &[usize], dict: Option<&Dict>) -> Vec<Vec<String>> {
    let cell = |i: usize, v: &Value| -> String {
        if let (Value::Int(id), Some(d)) = (v, dict) {
            if term_cols.contains(&i) {
                return d.resolve(*id).expect("result ID resolves").to_string();
            }
        }
        match v {
            Value::Null => "∅".into(),
            Value::Str(s) => s.to_string(),
            Value::Int(n) => n.to_string(),
            Value::Double(x) => x.to_string(),
            Value::Bool(b) => b.to_string(),
        }
    };
    let mut rows: Vec<Vec<String>> = rel
        .rows
        .iter()
        .map(|r| r.iter().enumerate().map(|(i, v)| cell(i, v)).collect())
        .collect();
    rows.sort();
    rows
}

fn main() {
    let smoke = std::env::var("EXEC_SCALING_SMOKE").map(|v| v == "1").unwrap_or(false);
    let universities = scale_from_env("EXEC_SCALING_UNIV", if smoke { 2 } else { 24 });
    let runs = if smoke { 1 } else { 3 };
    let thread_counts: &[usize] = if smoke { &[1, 2] } else { &[1, 2, 4, 8] };
    let triples = lubm::generate(universities, 42);
    if !smoke {
        assert!(triples.len() >= 100_000, "need ≥100k triples, got {}", triples.len());
    }
    let cores = std::thread::available_parallelism().map(usize::from).unwrap_or(1);
    eprintln!(
        "loaded {} LUBM triples ({universities} universities); {cores} core(s) available{}",
        triples.len(),
        if smoke { "; SMOKE mode" } else { "" }
    );

    let mut db = Database::new();
    db.execute("CREATE TABLE spo (s TEXT, p TEXT, o TEXT)").unwrap();
    db.insert_rows(
        "spo",
        triples.iter().map(|t| {
            vec![
                Value::str(t.subject.encode()),
                Value::str(t.predicate.encode()),
                Value::str(t.object.encode()),
            ]
        }),
    )
    .unwrap();

    // Dictionary-encoded copy: every term interned to a dense BIGINT.
    let shared = SharedDict::new();
    let enc_rows: Vec<Vec<Value>> = {
        let mut d = shared.write();
        triples
            .iter()
            .map(|t| {
                vec![
                    Value::Int(d.intern(&t.subject.encode())),
                    Value::Int(d.intern(&t.predicate.encode())),
                    Value::Int(d.intern(&t.object.encode())),
                ]
            })
            .collect()
    };
    register_rdf_functions(&mut db, &shared);
    db.execute("CREATE TABLE spo_enc (s BIGINT, p BIGINT, o BIGINT)").unwrap();
    db.insert_rows("spo_enc", enc_rows).unwrap();

    let dict_guard = shared.read();
    let suite = queries(&dict_guard);

    // ---- Phase A: string vs dictionary-encoded → BENCH_dict.json
    // Runs first: the thread-scaling phase oversubscribes small machines for
    // minutes, and the comparison is fairest on a quiet core.
    let dict_threads = if smoke { 1 } else { 4.min(cores) };
    let dict_runs = if smoke { 1 } else { 9 };
    db.set_threads(Some(dict_threads));
    println!(
        "{:<10} {:>10} {:>12} {:>13} {:>9}  ({dict_threads} thread(s))",
        "query", "rows", "string_secs", "encoded_secs", "speedup"
    );
    let mut dict_json = Vec::new();
    let mut log_sum = 0.0f64;
    for q in &suite {
        let (str_secs, enc_secs, str_rel, enc_rel) = minned_pair(
            &db,
            &q.string_sql.replace("{T}", "spo"),
            &q.encoded_sql.replace("{T}", "spo_enc"),
            dict_runs,
        );
        assert_eq!(
            canon(&str_rel, &q.term_cols, None),
            canon(&enc_rel, &q.term_cols, Some(&dict_guard)),
            "{}: encoded run decoded to different solutions",
            q.name
        );
        let speedup = str_secs / enc_secs;
        log_sum += speedup.ln();
        println!(
            "{:<10} {:>10} {:>12.4} {:>13.4} {:>8.2}x",
            q.name,
            str_rel.rows.len(),
            str_secs,
            enc_secs,
            speedup
        );
        dict_json.push(format!(
            "{{\"name\": \"{}\", \"rows\": {}, \"string_secs\": {str_secs:.6}, \
             \"encoded_secs\": {enc_secs:.6}, \"speedup\": {speedup:.3}}}",
            q.name,
            str_rel.rows.len()
        ));
    }
    let geomean = (log_sum / suite.len() as f64).exp();
    let json = format!(
        "{{\n  \"bench\": \"exec_scaling_dict\",\n  \"triples\": {},\n  \"universities\": {},\n  \
         \"cores\": {cores},\n  \"threads\": {dict_threads},\n  \"runs_per_point\": {},\n  \
         \"smoke\": {},\n  \"geomean_speedup\": {:.3},\n  \"queries\": [\n    {}\n  ]\n}}\n",
        triples.len(),
        universities,
        dict_runs,
        smoke,
        geomean,
        dict_json.join(",\n    ")
    );
    std::fs::write("BENCH_dict.json", &json).expect("write BENCH_dict.json");
    eprintln!("dictionary-encoding geometric-mean speedup: {geomean:.2}x (wrote BENCH_dict.json)");

    // ---- Phase B: thread scaling over the string table → BENCH_exec.json
    let mut json_queries = Vec::new();
    let mut speedup_at_4 = f64::INFINITY;
    println!();

    println!("{:<10} {:>8} {:>10} {:>10} {:>9}", "query", "threads", "rows", "secs", "speedup");
    for q in &suite {
        let sql = q.string_sql.replace("{T}", "spo");
        let mut base_secs = 0.0;
        let mut reference: Option<Rel> = None;
        let mut runs_json = Vec::new();
        for &threads in thread_counts {
            db.set_threads(Some(threads));
            let (secs, rel) = median_secs(&db, &sql, runs);
            match &reference {
                None => {
                    base_secs = secs;
                    reference = Some(rel);
                }
                Some(r) => assert_eq!(
                    r.rows, rel.rows,
                    "{}: result rows (or their order) changed at {threads} threads",
                    q.name
                ),
            }
            let speedup = base_secs / secs;
            if threads == 4 {
                speedup_at_4 = speedup_at_4.min(speedup);
            }
            let rows = reference.as_ref().unwrap().rows.len();
            println!("{:<10} {threads:>8} {rows:>10} {secs:>10.4} {speedup:>8.2}x", q.name);
            runs_json.push(format!(
                "{{\"threads\": {threads}, \"secs\": {secs:.6}, \"speedup\": {speedup:.3}}}"
            ));
        }
        json_queries.push(format!(
            "{{\"name\": \"{}\", \"rows\": {}, \"runs\": [{}]}}",
            q.name,
            reference.unwrap().rows.len(),
            runs_json.join(", ")
        ));
    }

    // No 4-thread point in smoke mode: emit null, not an invalid `inf`.
    let speedup_at_4_json = if speedup_at_4.is_finite() {
        format!("{speedup_at_4:.3}")
    } else {
        "null".to_string()
    };
    let json = format!(
        "{{\n  \"bench\": \"exec_scaling\",\n  \"triples\": {},\n  \"universities\": {},\n  \
         \"cores\": {cores},\n  \
         \"runs_per_point\": {},\n  \"min_speedup_at_4_threads\": {speedup_at_4_json},\n  \"queries\": [\n    {}\n  ]\n}}\n",
        triples.len(),
        universities,
        runs,
        json_queries.join(",\n    ")
    );
    std::fs::write("BENCH_exec.json", &json).expect("write BENCH_exec.json");
    if speedup_at_4.is_finite() {
        eprintln!("minimum speedup at 4 threads: {speedup_at_4:.2}x (wrote BENCH_exec.json)");
    } else {
        eprintln!("no 4-thread point in this profile (wrote BENCH_exec.json)");
    }
    if cores < 4 {
        eprintln!(
            "note: only {cores} core(s) available — speedup cannot exceed 1.0 here; \
             run on a ≥4-core machine for the scaling claim"
        );
    }
}
