//! Thread-scaling benchmark for the morsel-parallel executor.
//!
//! Loads ≥100k LUBM-style triples into a single `spo(s,p,o)` relation (the
//! triple-store layout, scan- and hash-join-heavy by construction: no
//! indexes, so every FROM item is a full parallel scan and every join is a
//! build-once/probe-parallel hash join), then times a multi-join query
//! suite at 1/2/4/8 worker threads. Asserts the result rows — including
//! their order — are identical at every width, prints a scaling table, and
//! writes the measurements to `BENCH_exec.json`.
//!
//! Dependency-free by design: `std::time::Instant` timing, hand-rolled
//! JSON. Run with `cargo run --release -p bench --bin exec_scaling`; scale
//! with `EXEC_SCALING_UNIV=<universities>` (default 24, ~5.1k triples
//! each). Speedup is relative to the 1-thread run on the same machine; on a
//! single-core host the wall-clock curve is flat and the run degrades to a
//! determinism check (the JSON records `cores` so readers can tell).

use std::time::Instant;

use bench::scale_from_env;
use datagen::lubm::{self, NS, RDF_TYPE};
use relstore::{quote_str, Database, Rel, Value};

const THREAD_COUNTS: [usize; 4] = [1, 2, 4, 8];
const RUNS: usize = 3;

fn iri(local: &str) -> String {
    rdf::Term::iri(format!("{NS}{local}")).encode()
}

fn queries() -> Vec<(&'static str, String)> {
    let typ = quote_str(&rdf::Term::iri(RDF_TYPE).encode());
    let grad = quote_str(&iri("GraduateStudent"));
    let cls = |l: &str| quote_str(&iri(l));
    vec![
        (
            // LUBM Q9-style triangle: student → advisor → course the
            // advisor teaches and the student takes. Three hash joins, the
            // last on a composite (s, o) key.
            "triangle",
            format!(
                "SELECT t1.s, t2.o AS prof, t3.o AS course \
                 FROM spo AS t1, spo AS t2, spo AS t3, spo AS t4 \
                 WHERE t1.p = {typ} AND t1.o = {grad} \
                 AND t2.s = t1.s AND t2.p = {advisor} \
                 AND t3.s = t2.o AND t3.p = {teacher} \
                 AND t4.s = t1.s AND t4.p = {takes} AND t4.o = t3.o",
                advisor = cls("advisor"),
                teacher = cls("teacherOf"),
                takes = cls("takesCourse"),
            ),
        ),
        (
            // Star with a LIKE filter: expression-heavy parallel scans.
            "star_like",
            format!(
                "SELECT t1.s, t2.o AS name, t3.o AS dept \
                 FROM spo AS t1, spo AS t2, spo AS t3 \
                 WHERE t1.p = {typ} AND t1.o = {grad} \
                 AND t2.s = t1.s AND t2.p = {name} AND t2.o LIKE '%Grad 1%' \
                 AND t3.s = t1.s AND t3.p = {member}",
                name = cls("name"),
                member = cls("memberOf"),
            ),
        ),
        (
            // Chain ending in an aggregation over a parallel scan.
            "chain_agg",
            format!(
                "SELECT t2.o AS dept, COUNT(*) AS n \
                 FROM spo AS t1, spo AS t2 \
                 WHERE t1.p = {advisor} AND t2.s = t1.s AND t2.p = {member} \
                 GROUP BY t2.o ORDER BY 2 DESC, 1",
                advisor = cls("advisor"),
                member = cls("memberOf"),
            ),
        ),
    ]
}

fn median_secs(db: &Database, sql: &str) -> (f64, Rel) {
    let warm = db.query(sql).expect("query");
    let mut times: Vec<f64> = (0..RUNS)
        .map(|_| {
            let t0 = Instant::now();
            db.query(sql).expect("query");
            t0.elapsed().as_secs_f64()
        })
        .collect();
    times.sort_by(f64::total_cmp);
    (times[times.len() / 2], warm)
}

fn main() {
    let universities = scale_from_env("EXEC_SCALING_UNIV", 24);
    let triples = lubm::generate(universities, 42);
    assert!(triples.len() >= 100_000, "need ≥100k triples, got {}", triples.len());
    let cores = std::thread::available_parallelism().map(usize::from).unwrap_or(1);
    eprintln!(
        "loaded {} LUBM triples ({universities} universities); {cores} core(s) available",
        triples.len()
    );

    let mut db = Database::new();
    db.execute("CREATE TABLE spo (s TEXT, p TEXT, o TEXT)").unwrap();
    db.insert_rows(
        "spo",
        triples.iter().map(|t| {
            vec![
                Value::str(t.subject.encode()),
                Value::str(t.predicate.encode()),
                Value::str(t.object.encode()),
            ]
        }),
    )
    .unwrap();

    let suite = queries();
    let mut json_queries = Vec::new();
    let mut speedup_at_4 = f64::INFINITY;

    println!("{:<10} {:>8} {:>10} {:>10} {:>9}", "query", "threads", "rows", "secs", "speedup");
    for (name, sql) in &suite {
        let mut base_secs = 0.0;
        let mut reference: Option<Rel> = None;
        let mut runs_json = Vec::new();
        for &threads in &THREAD_COUNTS {
            db.set_threads(Some(threads));
            let (secs, rel) = median_secs(&db, sql);
            match &reference {
                None => {
                    base_secs = secs;
                    reference = Some(rel);
                }
                Some(r) => assert_eq!(
                    r.rows, rel.rows,
                    "{name}: result rows (or their order) changed at {threads} threads"
                ),
            }
            let speedup = base_secs / secs;
            if threads == 4 {
                speedup_at_4 = speedup_at_4.min(speedup);
            }
            let rows = reference.as_ref().unwrap().rows.len();
            println!("{name:<10} {threads:>8} {rows:>10} {secs:>10.4} {speedup:>8.2}x");
            runs_json.push(format!(
                "{{\"threads\": {threads}, \"secs\": {secs:.6}, \"speedup\": {speedup:.3}}}"
            ));
        }
        json_queries.push(format!(
            "{{\"name\": \"{name}\", \"rows\": {}, \"runs\": [{}]}}",
            reference.unwrap().rows.len(),
            runs_json.join(", ")
        ));
    }

    let json = format!(
        "{{\n  \"bench\": \"exec_scaling\",\n  \"triples\": {},\n  \"universities\": {},\n  \
         \"cores\": {cores},\n  \
         \"runs_per_point\": {},\n  \"min_speedup_at_4_threads\": {:.3},\n  \"queries\": [\n    {}\n  ]\n}}\n",
        triples.len(),
        universities,
        RUNS,
        speedup_at_4,
        json_queries.join(",\n    ")
    );
    std::fs::write("BENCH_exec.json", &json).expect("write BENCH_exec.json");
    eprintln!("minimum speedup at 4 threads: {speedup_at_4:.2}x (wrote BENCH_exec.json)");
    if cores < 4 {
        eprintln!(
            "note: only {cores} core(s) available — speedup cannot exceed 1.0 here; \
             run on a ≥4-core machine for the scaling claim"
        );
    }
}
