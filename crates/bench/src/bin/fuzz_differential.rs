//! Adversarial correctness harness: grammar-fuzzed differential oracle plus
//! crash-point recovery fuzzing under fault injection (DESIGN.md §4.10).
//!
//! Phase 1 — differential fuzzing: seeded `datagen::queryfuzz` cases are
//! checked with `db2rdf::oracle::check_case` (naive reference vs all three
//! layouts × plan-cache on/off × 1/4 threads). A divergence is greedily
//! shrunk and written to `tests/corpus/` as a permanent regression case.
//!
//! Phase 1b — update fuzzing: seeded SPARQL 1.1 Update requests
//! (`queryfuzz::gen_update_case`) run through the real applier on all three
//! layouts and are checked against `oracle::naive_apply_update`'s
//! set-semantic reference (`check_update_case`): effect counts and final
//! store contents must both match. Divergences shrink to `.ucase` repros.
//!
//! Phase 2 — crash points, three sweeps per workload seed:
//!   * truncation: run a randomized load/insert/delete workload on a durable
//!     store, recording `(wal_len, shadow state)` after every acked op; then
//!     for many byte offsets, physically truncate the WAL there, reopen, and
//!     assert the recovered state is *exactly* the shadow of the longest
//!     recorded prefix — then re-run the differential oracle on it;
//!   * write faults: replay the workload with an injected write/sync failure
//!     at every write index, asserting acked-ops durability on reopen, an
//!     explicit read-only degrade (never a silent success), and clean
//!     recovery afterwards;
//!   * read faults: reopen a crashed store with injected short/failed reads,
//!     asserting recovery lands on a previously-observed state or fails
//!     explicitly — never a silently wrong answer.
//!
//! Deterministic by construction: every decision flows from `FUZZ_SEED`
//! (default 1). Knobs: `FUZZ_SMOKE=1` (CI profile, ~200 queries + bounded
//! crash sweep, <2 min), `FUZZ_CASES`, `FUZZ_CRASH_SEEDS`, `FUZZ_CORPUS`.
//! Exits nonzero on any divergence.

use std::path::{Path, PathBuf};
use std::time::Instant;

use datagen::queryfuzz;
use datagen::rng::SplitMix64;
use db2rdf::oracle::{self, Divergence};
use db2rdf::{Layout, RdfStore, StoreConfig, StoreError};
use rdf::Triple;
use relstore::ScriptedFaults;

struct Profile {
    cases: u64,
    update_cases: u64,
    seed: u64,
    crash_seeds: u64,
    workload_ops: usize,
    max_cuts: usize,
    max_write_plans: usize,
    max_read_plans: usize,
    corpus: PathBuf,
}

fn env_u64(name: &str, default: u64) -> u64 {
    std::env::var(name).ok().and_then(|v| v.parse().ok()).unwrap_or(default)
}

impl Profile {
    fn from_env() -> Profile {
        let smoke = std::env::var("FUZZ_SMOKE").map(|v| v == "1").unwrap_or(false);
        let corpus = std::env::var("FUZZ_CORPUS").map(PathBuf::from).unwrap_or_else(|_| {
            Path::new(env!("CARGO_MANIFEST_DIR")).join("../../tests/corpus")
        });
        Profile {
            cases: env_u64("FUZZ_CASES", if smoke { 200 } else { 2000 }),
            update_cases: env_u64("FUZZ_UPDATE_CASES", if smoke { 150 } else { 1500 }),
            seed: env_u64("FUZZ_SEED", 1),
            crash_seeds: env_u64("FUZZ_CRASH_SEEDS", if smoke { 2 } else { 6 }),
            workload_ops: if smoke { 24 } else { 48 },
            max_cuts: if smoke { 80 } else { 400 },
            max_write_plans: if smoke { 12 } else { 60 },
            max_read_plans: if smoke { 12 } else { 48 },
            corpus,
        }
    }
}

fn main() {
    let profile = Profile::from_env();
    let t0 = Instant::now();
    let mut failures = 0usize;

    failures += differential_phase(&profile);
    failures += update_phase(&profile);
    failures += crash_phase(&profile);

    println!(
        "\nfuzz_differential: {} query cases, {} update cases, {} crash seeds, {} failure(s) \
         in {:.1}s",
        profile.cases,
        profile.update_cases,
        profile.crash_seeds,
        failures,
        t0.elapsed().as_secs_f64()
    );
    if failures > 0 {
        std::process::exit(1);
    }
}

// ---------------------------------------------------------------------------
// Phase 1: grammar-fuzzed differential oracle
// ---------------------------------------------------------------------------

fn differential_phase(profile: &Profile) -> usize {
    println!(
        "phase 1: differential oracle over {} seeded cases (base seed {})",
        profile.cases, profile.seed
    );
    let mut failures = 0;
    for i in 0..profile.cases {
        let seed = profile.seed.wrapping_add(i);
        let case = queryfuzz::gen_case(seed);
        if let Err(div) = oracle::check_case(&case.triples, &case.query) {
            failures += 1;
            report_divergence(profile, seed, &case.triples, &case.query, &div);
        }
        if (i + 1) % 500 == 0 {
            println!("  ... {} cases checked", i + 1);
        }
    }
    println!("  {} cases, {} divergence(s)", profile.cases, failures);
    failures
}

/// Shrink a diverging case and persist it to the regression corpus.
fn report_divergence(
    profile: &Profile,
    seed: u64,
    triples: &[Triple],
    query: &str,
    div: &Divergence,
) {
    println!("  DIVERGENCE seed {seed}: {div}");
    let (min_triples, min_query) = oracle::shrink(triples, query);
    let min_div = oracle::check_case(&min_triples, &min_query)
        .err()
        .map(|d| d.to_string())
        .unwrap_or_else(|| div.to_string());
    println!(
        "    shrunk to {} triple(s), query: {}",
        min_triples.len(),
        min_query
    );
    let note = format!("seed: {seed}\ninvariant: {min_div}");
    match oracle::write_case(
        &profile.corpus,
        &format!("fuzz-seed-{seed}"),
        &min_triples,
        &min_query,
        &note,
    ) {
        Ok(path) => println!("    minimized repro written to {}", path.display()),
        Err(e) => println!("    FAILED to write repro: {e}"),
    }
}

// ---------------------------------------------------------------------------
// Phase 1b: update-request differential oracle
// ---------------------------------------------------------------------------

fn update_phase(profile: &Profile) -> usize {
    println!(
        "\nphase 1b: update oracle over {} seeded cases (base seed {})",
        profile.update_cases, profile.seed
    );
    let mut failures = 0;
    for i in 0..profile.update_cases {
        let seed = profile.seed.wrapping_add(i);
        let case = queryfuzz::gen_update_case(seed);
        if let Err(div) = oracle::check_update_case(&case.triples, &case.update) {
            failures += 1;
            println!("  DIVERGENCE update seed {seed}: {div}");
            let (min_triples, min_update) = oracle::shrink_update(&case.triples, &case.update);
            let min_div = oracle::check_update_case(&min_triples, &min_update)
                .err()
                .map(|d| d.to_string())
                .unwrap_or_else(|| div.to_string());
            println!(
                "    shrunk to {} triple(s), update: {}",
                min_triples.len(),
                min_update
            );
            let note = format!("seed: {seed}\ninvariant: {min_div}");
            match oracle::write_update_case(
                &profile.corpus,
                &format!("fuzz-update-seed-{seed}"),
                &min_triples,
                &min_update,
                &note,
            ) {
                Ok(path) => println!("    minimized repro written to {}", path.display()),
                Err(e) => println!("    FAILED to write repro: {e}"),
            }
        }
        if (i + 1) % 500 == 0 {
            println!("  ... {} update cases checked", i + 1);
        }
    }
    println!("  {} update cases, {} divergence(s)", profile.update_cases, failures);
    failures
}

// ---------------------------------------------------------------------------
// Phase 2: crash-point recovery fuzzing
// ---------------------------------------------------------------------------

/// A durable-store workload op, generated deterministically per seed.
enum Op {
    Load(Vec<Triple>),
    Insert(Triple),
    Delete(usize), // index into the shadow state
}

/// Shadow state: the exact triple set an honest store must contain.
#[derive(Clone, Default)]
struct Shadow(Vec<Triple>);

impl Shadow {
    fn apply(&mut self, op: &Op) {
        match op {
            Op::Load(ts) => {
                for t in ts {
                    if !self.0.contains(t) {
                        self.0.push(t.clone());
                    }
                }
            }
            Op::Insert(t) => {
                if !self.0.contains(t) {
                    self.0.push(t.clone());
                }
            }
            Op::Delete(i) => {
                if !self.0.is_empty() {
                    self.0.remove(i % self.0.len());
                }
            }
        }
    }

    fn canon(&self) -> Vec<Vec<String>> {
        let mut rows: Vec<Vec<String>> = self
            .0
            .iter()
            .map(|t| {
                vec![t.subject.encode(), t.predicate.encode(), t.object.encode()]
            })
            .collect();
        rows.sort();
        rows
    }
}

fn gen_workload(seed: u64, ops: usize) -> Vec<Op> {
    let mut rng = SplitMix64::seed_from_u64(seed ^ 0xC4A5_CADE_0FF0_0D00);
    let mut out = vec![Op::Load(queryfuzz::gen_dataset(&mut rng))];
    let pool = queryfuzz::gen_dataset(&mut rng); // extra triples to insert
    for _ in 1..ops {
        if rng.gen_ratio(1, 4) {
            out.push(Op::Delete(rng.gen_range(0usize..1024)));
        } else {
            let t = pool[rng.gen_range(0usize..pool.len())].clone();
            out.push(Op::Insert(t));
        }
    }
    out
}

/// Apply one op; `Ok(true)` means the store's state actually changed
/// (duplicate inserts and misses are no-ops the WAL never sees).
fn apply_op(store: &mut RdfStore, shadow: &Shadow, op: &Op) -> db2rdf::Result<bool> {
    match op {
        Op::Load(ts) => store.load(ts).map(|_| true),
        Op::Insert(t) => store.insert(t),
        Op::Delete(i) => {
            if shadow.0.is_empty() {
                return Ok(false);
            }
            let victim = shadow.0[i % shadow.0.len()].clone();
            store.delete(&victim)
        }
    }
}

/// Dump a store's full triple set in canonical form. An "empty; load data
/// first" refusal counts as the empty state.
fn dump(store: &RdfStore) -> Result<Vec<Vec<String>>, String> {
    match store.query("SELECT ?s ?p ?o WHERE { ?s ?p ?o }") {
        Ok(sols) => Ok(oracle::canon(&sols)),
        Err(StoreError::Unsupported(m)) if m.contains("empty") => Ok(Vec::new()),
        Err(e) => Err(format!("full scan failed: {e}")),
    }
}

fn fresh_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir()
        .join(format!("db2rdf-fuzz-{}-{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn entity() -> StoreConfig {
    StoreConfig::with_layout(Layout::Entity)
}

fn crash_phase(profile: &Profile) -> usize {
    println!("\nphase 2: crash-point recovery fuzzing ({} seeds)", profile.crash_seeds);
    let mut failures = 0;
    for i in 0..profile.crash_seeds {
        let seed = profile.seed.wrapping_add(0x5EED_0000).wrapping_add(i);
        let ops = gen_workload(seed, profile.workload_ops);
        let queries = gen_oracle_queries(seed);
        failures += truncation_sweep(profile, seed, &ops, &queries);
        failures += write_fault_sweep(profile, seed, &ops, &queries);
        failures += read_fault_sweep(profile, seed, &ops, &queries);
    }
    failures
}

fn gen_oracle_queries(seed: u64) -> Vec<String> {
    let mut rng = SplitMix64::seed_from_u64(seed ^ 0x0DD5_0BAC_1E50);
    (0..6).map(|_| queryfuzz::gen_query(&mut rng)).collect()
}

/// Run the workload, recording `(wal_len, shadow)` after every acked op.
/// Returns the boundaries and the directory (caller removes it).
fn record_history(
    dir: &Path,
    ops: &[Op],
    checkpoints: usize,
) -> Result<Vec<(u64, Shadow)>, String> {
    let mut store =
        RdfStore::open(dir, entity()).map_err(|e| format!("open: {e}"))?;
    let mut shadow = Shadow::default();
    let mut boundaries =
        vec![(store.wal_len().ok_or("store not durable")?, shadow.clone())];
    let ckpt_every = if checkpoints > 0 { ops.len() / (checkpoints + 1) } else { usize::MAX };
    for (i, op) in ops.iter().enumerate() {
        apply_op(&mut store, &shadow, op).map_err(|e| format!("op {i}: {e}"))?;
        shadow.apply(op);
        if checkpoints > 0 && i > 0 && i % ckpt_every == 0 {
            store.checkpoint().map_err(|e| format!("checkpoint at op {i}: {e}"))?;
        }
        boundaries.push((store.wal_len().ok_or("store not durable")?, shadow.clone()));
    }
    drop(store); // crash: no close/checkpoint
    Ok(boundaries)
}

fn wal_file(dir: &Path) -> Option<PathBuf> {
    let mut wals: Vec<PathBuf> = std::fs::read_dir(dir)
        .ok()?
        .flatten()
        .map(|e| e.path())
        .filter(|p| {
            p.file_name()
                .and_then(|n| n.to_str())
                .is_some_and(|n| n.starts_with("wal."))
        })
        .collect();
    wals.sort();
    wals.pop()
}

/// Sweep WAL truncation points, asserting exact-prefix recovery at each.
fn truncation_sweep(
    profile: &Profile,
    seed: u64,
    ops: &[Op],
    queries: &[String],
) -> usize {
    let dir = fresh_dir(&format!("trunc-{seed}"));
    let boundaries = match record_history(&dir, ops, 0) {
        Ok(b) => b,
        Err(e) => {
            println!("  FAIL [truncation seed {seed}]: workload: {e}");
            let _ = std::fs::remove_dir_all(&dir);
            return 1;
        }
    };
    let wal = wal_file(&dir).expect("durable store has a WAL");
    let bytes = std::fs::read(&wal).expect("read WAL");
    let total = bytes.len() as u64;

    // Every acked-op boundary, plus evenly spaced mid-record cuts.
    let mut cuts: Vec<u64> = boundaries.iter().map(|(len, _)| *len).collect();
    let step = (total.max(1) / profile.max_cuts.max(1) as u64).max(1);
    cuts.extend((0..=total).step_by(step as usize));
    cuts.sort_unstable();
    cuts.dedup();

    let mut failures = 0;
    let work = fresh_dir(&format!("trunc-work-{seed}"));
    for &cut in &cuts {
        let _ = std::fs::remove_dir_all(&work);
        std::fs::create_dir_all(&work).expect("mkdir");
        std::fs::write(work.join(wal.file_name().unwrap()), &bytes[..cut as usize])
            .expect("write truncated WAL");
        let expected = boundaries
            .iter()
            .rev()
            .find(|(len, _)| *len <= cut)
            .map(|(_, s)| s.clone())
            .unwrap_or_default();
        match RdfStore::open(&work, entity()) {
            Err(e) => {
                // Truncation must look like a torn tail, which recovery heals.
                println!("  FAIL [truncation seed {seed} cut {cut}/{total}]: open errored: {e}");
                failures += 1;
            }
            Ok(store) => {
                match dump(&store) {
                    Err(e) => {
                        println!("  FAIL [truncation seed {seed} cut {cut}/{total}]: {e}");
                        failures += 1;
                    }
                    Ok(got) if got != expected.canon() => {
                        println!(
                            "  FAIL [truncation seed {seed} cut {cut}/{total}]: recovered {} \
                             triples, expected exact prefix of {}",
                            got.len(),
                            expected.0.len()
                        );
                        failures += 1;
                    }
                    Ok(_) => {
                        // Exact prefix recovered; at acked boundaries also
                        // re-run the differential oracle on the store.
                        let at_boundary = boundaries.iter().any(|(len, _)| *len == cut);
                        if at_boundary && !expected.0.is_empty() {
                            if let Err(div) =
                                oracle::check_store_against(&store, &expected.0, queries)
                            {
                                println!(
                                    "  FAIL [truncation seed {seed} cut {cut}/{total}]: \
                                     recovered store diverges: {div}"
                                );
                                failures += 1;
                            }
                        }
                    }
                }
            }
        }
    }
    let _ = std::fs::remove_dir_all(&dir);
    let _ = std::fs::remove_dir_all(&work);
    println!(
        "  truncation seed {seed}: {} cuts over {} WAL bytes, {} failure(s)",
        cuts.len(),
        total,
        failures
    );
    failures
}

/// Inject a write/sync fault at every write index; assert acked-ops
/// durability, an explicit degrade, and clean recovery.
fn write_fault_sweep(
    profile: &Profile,
    seed: u64,
    ops: &[Op],
    queries: &[String],
) -> usize {
    let mut failures = 0;
    let mut plans: Vec<(String, ScriptedFaults)> = Vec::new();
    let mut rng = SplitMix64::seed_from_u64(seed ^ 0xFA17_F0CA_1BAD_CAFE);
    for n in 0..profile.max_write_plans {
        plans.push(match n % 3 {
            0 => (format!("fail_write({n})"), ScriptedFaults::new().fail_write(n)),
            1 => {
                let keep = rng.gen_range(0usize..64);
                (format!("short_write({n},{keep})"), ScriptedFaults::new().short_write(n, keep))
            }
            _ => (format!("fail_sync({n})"), ScriptedFaults::new().fail_sync(n)),
        });
    }

    for (name, faults) in plans {
        let dir = fresh_dir(&format!("wfault-{seed}"));
        let tag = format!("write-fault seed {seed} {name}");
        let fail = |msg: String| {
            println!("  FAIL [{tag}]: {msg}");
        };
        let mut store = match RdfStore::open_with_faults(&dir, entity(), faults.into_handle()) {
            Ok(s) => s,
            Err(e) => {
                // Opening a fresh durable store writes the WAL header; a
                // fault there must surface explicitly, which this is.
                println!("  write-fault seed {seed} {name}: open refused explicitly ({e})");
                let _ = std::fs::remove_dir_all(&dir);
                continue;
            }
        };
        let mut shadow = Shadow::default();
        // States recovery may legitimately land on: the last acked state, or
        // last-acked + the faulted op (a sync fault can leave a fully
        // written, fsync-refused record that still replays).
        let mut acceptable: Vec<Shadow> = vec![shadow.clone()];
        let mut faulted = false;
        for op in ops {
            match apply_op(&mut store, &shadow, op) {
                Ok(changed) => {
                    if faulted {
                        // No-op mutations (duplicate insert, delete miss)
                        // may succeed on a degraded store — they never
                        // touch the WAL. A state change must not.
                        if changed {
                            fail("state-changing mutation succeeded after degrade".into());
                            failures += 1;
                            break;
                        }
                        continue;
                    }
                    shadow.apply(op);
                    acceptable = vec![shadow.clone()];
                }
                Err(e) => {
                    if !faulted {
                        // First failure: must be the injected fault, and the
                        // store must degrade explicitly, not limp along.
                        faulted = true;
                        let mut with_op = shadow.clone();
                        with_op.apply(op);
                        acceptable = vec![shadow.clone(), with_op];
                        if !store.is_read_only() {
                            fail(format!(
                                "op failed ({e}) but the store did not degrade to read-only"
                            ));
                            failures += 1;
                            break;
                        }
                    } else if !e.is_read_only() {
                        fail(format!("post-degrade mutation failed with {e}, not ReadOnly"));
                        failures += 1;
                        break;
                    }
                }
            }
        }
        // Reads must still work on the degraded store (no silent wrongness).
        if let Err(e) = dump(&store) {
            fail(format!("degraded store refused reads: {e}"));
            failures += 1;
        }
        drop(store);

        // Clean reopen: acked-ops durability.
        match RdfStore::open(&dir, entity()) {
            Err(e) => {
                fail(format!("clean reopen failed: {e}"));
                failures += 1;
            }
            Ok(recovered) => match dump(&recovered) {
                Err(e) => {
                    fail(format!("recovered store: {e}"));
                    failures += 1;
                }
                Ok(got) => {
                    if !acceptable.iter().any(|s| s.canon() == got) {
                        fail(format!(
                            "recovered {} triples; neither the acked state ({}) nor \
                             acked+faulted-op matches",
                            got.len(),
                            acceptable[0].0.len()
                        ));
                        failures += 1;
                    } else {
                        let state = acceptable
                            .iter()
                            .find(|s| s.canon() == got)
                            .unwrap();
                        if !state.0.is_empty() {
                            if let Err(div) =
                                oracle::check_store_against(&recovered, &state.0, queries)
                            {
                                fail(format!("recovered store diverges: {div}"));
                                failures += 1;
                            }
                        }
                    }
                }
            },
        }
        let _ = std::fs::remove_dir_all(&dir);
    }
    println!(
        "  write-fault seed {seed}: {} plans, {} failure(s)",
        profile.max_write_plans, failures
    );
    failures
}

/// Reopen a crashed store under injected read faults: recovery must land on
/// a previously observed state or refuse explicitly — never silently wrong.
fn read_fault_sweep(
    profile: &Profile,
    seed: u64,
    ops: &[Op],
    queries: &[String],
) -> usize {
    let dir = fresh_dir(&format!("rfault-{seed}"));
    // Two mid-workload checkpoints so read faults also exercise the
    // snapshot fallback path, not just WAL replay.
    let boundaries = match record_history(&dir, ops, 2) {
        Ok(b) => b,
        Err(e) => {
            println!("  FAIL [read-fault seed {seed}]: workload: {e}");
            let _ = std::fs::remove_dir_all(&dir);
            return 1;
        }
    };
    let states: Vec<Vec<Vec<String>>> =
        boundaries.iter().map(|(_, s)| s.canon()).collect();
    let pristine: Vec<(PathBuf, Vec<u8>)> = std::fs::read_dir(&dir)
        .expect("read store dir")
        .flatten()
        .map(|e| (e.path(), std::fs::read(e.path()).expect("read store file")))
        .collect();

    let mut rng = SplitMix64::seed_from_u64(seed ^ 0x05EE_FAD5);
    let mut failures = 0;
    let work = fresh_dir(&format!("rfault-work-{seed}"));
    for n in 0..profile.max_read_plans {
        // Restore the pristine on-disk state (recovery may rewrite files).
        let _ = std::fs::remove_dir_all(&work);
        std::fs::create_dir_all(&work).expect("mkdir");
        for (path, bytes) in &pristine {
            std::fs::write(work.join(path.file_name().unwrap()), bytes).expect("copy");
        }
        let read_idx = n / 2;
        let (name, faults) = if n % 2 == 0 {
            (format!("fail_read({read_idx})"), ScriptedFaults::new().fail_read(read_idx))
        } else {
            let keep = rng.gen_range(0usize..2048);
            (
                format!("short_read({read_idx},{keep})"),
                ScriptedFaults::new().short_read(read_idx, keep),
            )
        };
        match RdfStore::open_with_faults(&work, entity(), faults.into_handle()) {
            Err(_) => {} // explicit refusal is a valid outcome
            Ok(store) => match dump(&store) {
                Err(e) => {
                    println!("  FAIL [read-fault seed {seed} {name}]: {e}");
                    failures += 1;
                }
                Ok(got) => {
                    let Some(pos) = states.iter().position(|s| *s == got) else {
                        println!(
                            "  FAIL [read-fault seed {seed} {name}]: recovered {} triples — \
                             not any state this store ever acked",
                            got.len()
                        );
                        failures += 1;
                        continue;
                    };
                    let state = &boundaries[pos].1;
                    if !state.0.is_empty() {
                        if let Err(div) = oracle::check_store_against(&store, &state.0, queries)
                        {
                            println!(
                                "  FAIL [read-fault seed {seed} {name}]: recovered store \
                                 diverges: {div}"
                            );
                            failures += 1;
                        }
                    }
                }
            },
        }
    }
    let _ = std::fs::remove_dir_all(&dir);
    let _ = std::fs::remove_dir_all(&work);
    println!(
        "  read-fault seed {seed}: {} plans, {} failure(s)",
        profile.max_read_plans, failures
    );
    failures
}
