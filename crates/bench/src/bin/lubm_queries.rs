//! Fig. 16: per-query LUBM results across systems (log-scale bar chart in
//! the paper; a table here).
//!
//! Usage: `cargo run -p bench --release --bin lubm_queries`

use bench::{fmt_time, run_workload, scale_from_env, Outcome, System};

fn main() {
    let univs = scale_from_env("LUBM_UNIVS", 10);
    let triples = datagen::lubm::generate(univs, 42);
    println!("== Fig. 16: LUBM per-query times ({} universities, {} triples) ==\n", univs, triples.len());
    let queries = datagen::lubm::queries();
    let systems = [System::Db2Rdf, System::TripleStore, System::Vertical, System::Db2RdfNoOpt];
    let results: Vec<Vec<(String, Outcome)>> = systems
        .iter()
        .map(|s| {
            let store = s.build(&triples, Some(100_000_000));
            run_workload(&store, &queries, 3)
        })
        .collect();
    print!("{:<6} {:>9}", "query", "results");
    for s in &systems {
        print!(" {:>14}", s.name());
    }
    println!();
    for (qi, q) in queries.iter().enumerate() {
        let nres = match &results[0][qi].1 {
            Outcome::Complete { results, .. } => results.to_string(),
            _ => "-".into(),
        };
        print!("{:<6} {:>9}", q.name, nres);
        for r in &results {
            print!(" {:>14}", fmt_time(&r[qi].1));
        }
        println!();
    }
    println!(
        "\nPaper's Fig. 16 shape: DB2RDF wins the long/complex queries (LQ6, LQ8,\n\
         LQ9, LQ13, LQ14 — e.g. LQ14 4.6s vs Virtuoso 53s, Jena 94s) and is within\n\
         a few ms on the sub-second lookups (LQ1, LQ3)."
    );
}
