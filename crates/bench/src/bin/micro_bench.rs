//! §2.1 micro-benchmark — reproduces Tables 1 & 2 and Figure 3.
//!
//! Usage: `cargo run -p bench --release --bin micro_bench`
//! Scale: `MICRO_SUBJECTS` env var (default 84_000 ≈ the paper's 1M triples).

use bench::{fmt_time, run_workload, scale_from_env, Outcome, System};

fn main() {
    let n = scale_from_env("MICRO_SUBJECTS", 84_000);
    let triples = datagen::micro::generate(n, 42);
    println!("== Micro-benchmark (paper §2.1, Tables 1-2, Fig. 3) ==");
    println!("{n} subjects, {} triples (paper: 1M)\n", triples.len());
    println!("Table 1 predicate-set mix: .01 / .24 / .25 / .25 / .24 / .01 (by construction)\n");

    let systems = [System::Db2Rdf, System::TripleStore, System::Vertical];
    let stores: Vec<_> = systems
        .iter()
        .map(|s| {
            let t0 = std::time::Instant::now();
            let store = s.build(&triples, Some(500_000_000));
            eprintln!("loaded {} in {:?}", s.name(), t0.elapsed());
            store
        })
        .collect();

    let queries = datagen::micro::queries();
    let results: Vec<Vec<(String, Outcome)>> =
        stores.iter().map(|s| run_workload(s, &queries, 3)).collect();

    println!(
        "{:<6} {:>9} | {:>14} {:>14} {:>14}   (Fig. 3: entity vs triple vs predicate)",
        "query", "results", "Entity", "TripleStore", "Vertical"
    );
    for (qi, q) in queries.iter().enumerate() {
        let nres = match &results[0][qi].1 {
            Outcome::Complete { results, .. } => results.to_string(),
            _ => "-".to_string(),
        };
        println!(
            "{:<6} {:>9} | {:>14} {:>14} {:>14}",
            q.name,
            nres,
            fmt_time(&results[0][qi].1),
            fmt_time(&results[1][qi].1),
            fmt_time(&results[2][qi].1),
        );
    }
    println!(
        "\nPaper's Fig. 3 shape: entity flat (~70-140ms) across Q1-Q6; triple-store\n\
         degrades with conjunct count (940-1850ms); predicate-oriented in between\n\
         (237-614ms) but wins Q7-Q10 (2-6ms) where every star predicate is selective."
    );
}
