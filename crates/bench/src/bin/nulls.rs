//! §2.3 NULL-storage experiment: a 1M-triple dataset where every subject has
//! the same 5 predicates, then the DPH relation is widened with 5 / 45 / 95
//! all-NULL predicate/value column pairs. The paper reports 10.1MB growing
//! only to 10.4 / 10.65 / 11.4MB (≈10% for 20× the columns) thanks to value
//! compression, with query impact from 10% up to 2× on the fastest queries.
//!
//! Usage: `cargo run -p bench --release --bin nulls`
//! Scale: `NULLS_SUBJECTS` (default 200_000 subjects = 1M triples).

use std::time::Instant;

use bench::scale_from_env;
use db2rdf::{ColoringMode, RdfStore, StoreConfig};
use rdf::{Term, Triple};

fn main() {
    let n = scale_from_env("NULLS_SUBJECTS", 200_000);
    // Uniform 5-predicate dataset (1M triples at the default scale).
    let mut triples = Vec::with_capacity(n * 5);
    for i in 0..n {
        let s = Term::iri(format!("e:s{i}"));
        for p in 0..5 {
            triples.push(Triple::new(
                s.clone(),
                Term::iri(format!("e:p{p}")),
                Term::lit(format!("v{}_{}", p, i % 997)),
            ));
        }
    }
    println!("== §2.3 NULL storage & query impact ({} triples, 5 predicates) ==\n", triples.len());

    let fast_query = "SELECT ?v WHERE { <e:s17> <e:p0> ?v }";
    let long_query = "SELECT ?s ?a ?b WHERE { ?s <e:p0> ?a . ?s <e:p1> ?b }";

    println!(
        "{:>10} | {:>12} {:>10} | {:>12} {:>12}",
        "extra cols", "DPH bytes", "growth", "fast query", "long query"
    );
    let mut base_bytes = 0usize;
    for extra in [0usize, 5, 45, 95] {
        // Fresh store per step, then ALTER TABLE-style widening + rewrite.
        let mut cfg = StoreConfig::default();
        cfg.entity.coloring = ColoringMode::Full;
        let mut store = RdfStore::new(cfg);
        store.load(&triples).unwrap();
        if extra > 0 {
            store.widen_dph_for_experiment(extra);
        }
        let dph_bytes = store.database().table("dph").unwrap().storage_bytes();
        if extra == 0 {
            base_bytes = dph_bytes;
        }
        // Warm + median of 5.
        let time = |q: &str| {
            let _ = store.query(q).unwrap();
            let mut ts: Vec<_> = (0..5)
                .map(|_| {
                    let t0 = Instant::now();
                    let _ = store.query(q).unwrap();
                    t0.elapsed()
                })
                .collect();
            ts.sort();
            ts[2]
        };
        println!(
            "{:>10} | {:>12} {:>9.1}% | {:>12.2?} {:>12.2?}",
            extra,
            dph_bytes,
            100.0 * (dph_bytes as f64 - base_bytes as f64) / base_bytes as f64,
            time(fast_query),
            time(long_query),
        );
    }
    println!(
        "\nPaper: 10.1MB → 10.4 / 10.65 / 11.4MB (+10% for 20x columns); query\n\
         slowdowns from 10% to 2x on the fastest queries."
    );
}
