//! §3.3 / Fig. 14: the hybrid optimizer vs a sub-optimal data flow.
//!
//! The micro-benchmark carries two constants: `O1` on SV1 with frequency
//! .75 and `O2` on SV2 with frequency .01. The query
//! `?s SV1 O1 . ?s SV2 O2` can anchor at either constant; the cost-based
//! flow starts at the rare `O2`, the sub-optimal one at the frequent `O1`
//! (paper: 13ms vs 65ms = 5×). A PRBench PQ1-style query shows the larger
//! gap the paper reports (4ms vs 22.66s).
//!
//! Usage: `cargo run -p bench --release --bin optimizer_effect`

use bench::{fmt_time, scale_from_env, time_query, System};

fn main() {
    let n = scale_from_env("MICRO_SUBJECTS", 84_000);
    let triples = datagen::micro::generate(n, 42);
    println!("== Fig. 14 / §3.3: optimizer effect (micro, {} triples) ==\n", triples.len());

    let optimized = System::Db2Rdf.build(&triples, None);
    let naive = System::Db2RdfNoOpt.build(&triples, None);
    let q = datagen::micro::fig14_query();
    // In the naive flow the textual order anchors at SV1/O1 (frequent);
    // the optimizer anchors at SV2/O2 (rare).
    println!("query: {}\n", q.sparql);
    println!("optimized flow:   {:?}", optimized.explain(&q.sparql).unwrap().flow);
    println!("sub-optimal flow: {:?}\n", naive.explain(&q.sparql).unwrap().flow);
    let a = time_query(&optimized, &q.sparql, 5);
    let b = time_query(&naive, &q.sparql, 5);
    println!("optimized:   {}", fmt_time(&a));
    println!("sub-optimal: {}", fmt_time(&b));
    if let (Some(x), Some(y)) = (a.time_secs(), b.time_secs()) {
        println!("speedup: {:.1}x (paper: 5x — 13ms vs 65ms)\n", y / x);
    }

    // The PRBench PQ1 anecdote.
    let bugs = scale_from_env("PRBENCH_BUGS", 4_000);
    let triples = datagen::prbench::generate(bugs, 42);
    println!("== PQ1 anecdote (PRBench, {} triples) ==\n", triples.len());
    let optimized = System::Db2Rdf.build(&triples, None);
    let naive = System::Db2RdfNoOpt.build(&triples, None);
    let pq1 = datagen::prbench::queries().into_iter().find(|q| q.name == "PQ1").unwrap();
    let pq10 = datagen::prbench::queries().into_iter().find(|q| q.name == "PQ10").unwrap();
    for q in [pq1, pq10] {
        let a = time_query(&optimized, &q.sparql, 5);
        let b = time_query(&naive, &q.sparql, 5);
        let ratio = match (a.time_secs(), b.time_secs()) {
            (Some(x), Some(y)) if x > 0.0 => format!("{:.1}x", y / x),
            _ => "-".into(),
        };
        println!("{}: optimized {} vs sub-optimal {} ({ratio})", q.name, fmt_time(&a), fmt_time(&b));
    }
    println!("\nPaper: PQ1 evaluated in 4ms optimized vs 22.66s with a sub-optimal flow.");
}
