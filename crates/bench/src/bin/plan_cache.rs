//! Plan-cache benchmark: cold vs warm planning over the LUBM query mix.
//!
//! Measures the *plan phase only* — parse → flow-tree optimization → SQL
//! generation — by calling `RdfStore::translate` on an entity-layout LUBM
//! store, first with the plan cache disabled (every call replans) and then
//! with the cache enabled and primed (every call is a hit that clones the
//! cached SQL). The query mix is the triangle/star/chain trio that
//! `server_throughput` serves over HTTP, so the warm numbers predict what
//! a server answering a repetitive workload saves per request.
//!
//! Prints per-query ns/plan and speedup, writes `BENCH_plancache.json`,
//! and exits non-zero unless the geometric-mean warm speedup is >= 2x
//! (the PR's acceptance bar). Run with
//! `cargo run --release -p bench --bin plan_cache`; scale with
//! `PLAN_CACHE_UNIV=<universities>` (default 3) and
//! `PLAN_CACHE_ITERS=<n>` (default 2000). `PLAN_CACHE_SMOKE=1` switches
//! to the CI profile (1 university, 200 iterations) — still asserting the
//! speedup bar, which holds at any scale because a cache hit does no
//! parsing at all.

use std::time::Instant;

use bench::scale_from_env;
use datagen::lubm::{NS, RDF_TYPE};
use db2rdf::{RdfStore, StoreConfig};

fn query_mix() -> Vec<(&'static str, String)> {
    let t = |l: &str| format!("<{NS}{l}>");
    let typ = format!("<{RDF_TYPE}>");
    let (grad, advisor, teacher, takes, name, member) = (
        t("GraduateStudent"),
        t("advisor"),
        t("teacherOf"),
        t("takesCourse"),
        t("name"),
        t("memberOf"),
    );
    vec![
        (
            "triangle",
            format!(
                "SELECT ?x ?y ?z WHERE {{ ?x {typ} {grad} . ?x {advisor} ?y . \
                 ?y {teacher} ?z . ?x {takes} ?z }}"
            ),
        ),
        (
            "star",
            format!(
                "SELECT ?x ?n ?d WHERE {{ ?x {typ} {grad} . ?x {name} ?n . \
                 ?x {member} ?d . FILTER regex(?n, 'Grad 1') }}"
            ),
        ),
        (
            "chain",
            format!("SELECT ?x ?d WHERE {{ ?x {advisor} ?y . ?x {member} ?d }}"),
        ),
    ]
}

/// Time `iters` translate() calls and return mean ns per plan.
fn time_plans(store: &RdfStore, sparql: &str, iters: usize) -> f64 {
    let t0 = Instant::now();
    for _ in 0..iters {
        let sql = store.translate(sparql).expect("translate");
        std::hint::black_box(sql);
    }
    t0.elapsed().as_nanos() as f64 / iters as f64
}

fn main() {
    let smoke = std::env::var("PLAN_CACHE_SMOKE").map(|v| v == "1").unwrap_or(false);
    let universities = scale_from_env("PLAN_CACHE_UNIV", if smoke { 1 } else { 3 });
    let iters = scale_from_env("PLAN_CACHE_ITERS", if smoke { 200 } else { 2000 });

    let triples = datagen::lubm::generate(universities, 42);
    let mut store = RdfStore::new(StoreConfig { plan_cache_entries: 0, ..Default::default() });
    store.load(&triples).expect("bulk load");
    eprintln!(
        "loaded {} LUBM triples ({universities} universities); {iters} plans per \
         query per phase{}",
        triples.len(),
        if smoke { "; SMOKE mode" } else { "" }
    );

    let mix = query_mix();

    // Cold phase: every translate() reruns the full §3 pipeline.
    let cold: Vec<f64> =
        mix.iter().map(|(_, sparql)| time_plans(&store, sparql, iters)).collect();

    // Warm phase: enable the cache, prime it, then every call is a hit.
    store.set_plan_cache(512);
    for (_, sparql) in &mix {
        store.translate(sparql).expect("prime");
    }
    let warm: Vec<f64> =
        mix.iter().map(|(_, sparql)| time_plans(&store, sparql, iters)).collect();

    let stats = store.plan_cache_stats().expect("cache enabled");
    assert_eq!(stats.misses, mix.len() as u64, "warm phase replanned: {stats:?}");
    assert!(stats.hits >= (iters * mix.len()) as u64, "{stats:?}");

    println!(
        "{:<10} {:>14} {:>14} {:>9}",
        "query", "cold_ns/plan", "warm_ns/plan", "speedup"
    );
    let mut rows = Vec::new();
    let mut log_sum = 0.0;
    for (i, (name, _)) in mix.iter().enumerate() {
        let speedup = cold[i] / warm[i];
        log_sum += speedup.ln();
        println!("{name:<10} {:>14.0} {:>14.0} {speedup:>8.1}x", cold[i], warm[i]);
        rows.push(format!(
            "{{\"name\": \"{name}\", \"cold_ns_per_plan\": {:.0}, \
             \"warm_ns_per_plan\": {:.0}, \"speedup\": {speedup:.2}}}",
            cold[i], warm[i]
        ));
    }
    let geomean = (log_sum / mix.len() as f64).exp();
    println!("geomean speedup: {geomean:.1}x");

    let json = format!(
        "{{\n  \"bench\": \"plan_cache\",\n  \"triples\": {},\n  \
         \"universities\": {universities},\n  \"iters\": {iters},\n  \
         \"smoke\": {smoke},\n  \"cache_stats\": {{\"hits\": {}, \"misses\": {}}},\n  \
         \"queries\": [\n    {}\n  ],\n  \"geomean_speedup\": {geomean:.2}\n}}\n",
        triples.len(),
        stats.hits,
        stats.misses,
        rows.join(",\n    ")
    );
    std::fs::write("BENCH_plancache.json", &json).expect("write BENCH_plancache.json");
    eprintln!("wrote BENCH_plancache.json");

    assert!(
        geomean >= 2.0,
        "warm planning is only {geomean:.2}x faster than cold; the cache is not earning \
         its keep"
    );
}
