//! Figs. 17 & 18: PRBench long-running (PQ10, PQ26–PQ28) and medium
//! (PQ14–PQ17, PQ24, PQ29) query times across systems.
//!
//! Usage: `cargo run -p bench --release --bin prbench_queries`

use bench::{fmt_time, scale_from_env, time_query, System};

fn main() {
    let bugs = scale_from_env("PRBENCH_BUGS", 4_000);
    let triples = datagen::prbench::generate(bugs, 42);
    println!("== Figs. 17/18: PRBench per-query times ({} triples) ==\n", triples.len());
    let systems = [System::Db2Rdf, System::TripleStore, System::Vertical, System::Db2RdfNoOpt];
    let stores: Vec<_> = systems.iter().map(|s| s.build(&triples, Some(100_000_000))).collect();
    let queries = datagen::prbench::queries();

    for (title, names) in [
        ("Fig. 17 (long-running)", vec!["PQ10", "PQ26", "PQ27", "PQ28"]),
        ("Fig. 18 (medium)", vec!["PQ14", "PQ15", "PQ16", "PQ17", "PQ24", "PQ29"]),
    ] {
        println!("{title}:");
        print!("{:<6}", "query");
        for s in &systems {
            print!(" {:>14}", s.name());
        }
        println!();
        for name in names {
            let q = queries.iter().find(|q| q.name == name).unwrap();
            print!("{:<6}", q.name);
            for store in &stores {
                let o = time_query(store, &q.sparql, 3);
                print!(" {:>14}", fmt_time(&o));
            }
            println!();
        }
        println!();
    }
    println!(
        "Paper: PQ10 — DB2RDF 3ms vs Jena 27s / Virtuoso 39s; PQ26–28 — DB2RDF\n\
         ~4.8s vs Jena ≥32s / Virtuoso ≥11s; on the medium queries DB2RDF\n\
         consistently leads (Fig. 18)."
    );
}
