//! Concurrent-throughput benchmark for the SPARQL Protocol server.
//!
//! Boots `server::Server` on an ephemeral loopback port over an
//! entity-layout LUBM store, then drives it with keep-alive HTTP clients
//! at 1/4/16 concurrency over the triangle/star/chain query mix (the same
//! shapes as `exec_scaling`, phrased in SPARQL). Every response is
//! validated against the row count measured in-process before the run —
//! throughput with wrong answers is not throughput. Writes req/s and
//! p50/p99 latency per level to `BENCH_server.json`.
//!
//! Dependency-free: `std::net` clients, `std::time::Instant`, hand-rolled
//! JSON. Run with `cargo run --release -p bench --bin server_throughput`;
//! scale with `SERVER_THROUGHPUT_UNIV=<universities>` (default 6).
//! `SERVER_THROUGHPUT_SMOKE=1` switches to the CI profile: a tiny dataset,
//! 1/2 concurrency, a handful of requests — a correctness/panic check, not
//! a measurement.

use std::time::Instant;

use bench::scale_from_env;
use datagen::lubm::{NS, RDF_TYPE};
use db2rdf::{RdfStore, SharedStore};
use server::client::Client;
use server::http::percent_encode;
use server::{Server, ServerConfig};

struct MixQuery {
    name: &'static str,
    sparql: String,
    /// Row count measured in-process before the HTTP run.
    expect_rows: usize,
}

fn query_mix() -> Vec<(&'static str, String)> {
    let t = |l: &str| format!("<{NS}{l}>");
    let typ = format!("<{RDF_TYPE}>");
    let (grad, advisor, teacher, takes, name, member) = (
        t("GraduateStudent"),
        t("advisor"),
        t("teacherOf"),
        t("takesCourse"),
        t("name"),
        t("memberOf"),
    );
    vec![
        (
            // LUBM Q9-style triangle: student → advisor → course the
            // advisor teaches and the student takes.
            "triangle",
            format!(
                "SELECT ?x ?y ?z WHERE {{ ?x {typ} {grad} . ?x {advisor} ?y . \
                 ?y {teacher} ?z . ?x {takes} ?z }}"
            ),
        ),
        (
            // Star with a REGEX filter — the expression-heavy scan.
            "star",
            format!(
                "SELECT ?x ?n ?d WHERE {{ ?x {typ} {grad} . ?x {name} ?n . \
                 ?x {member} ?d . FILTER regex(?n, 'Grad 1') }}"
            ),
        ),
        (
            // Advised students joined to their department (the
            // `exec_scaling` chain_agg shape, minus the aggregation the
            // SPARQL 1.0 front end doesn't speak).
            "chain",
            format!("SELECT ?x ?d WHERE {{ ?x {advisor} ?y . ?x {member} ?d }}"),
        ),
    ]
}

/// Sorted-percentile in milliseconds.
fn pct_ms(sorted: &[f64], q: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let idx = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len()) - 1;
    sorted[idx] * 1e3
}

fn main() {
    let smoke = std::env::var("SERVER_THROUGHPUT_SMOKE").map(|v| v == "1").unwrap_or(false);
    let universities = scale_from_env("SERVER_THROUGHPUT_UNIV", if smoke { 1 } else { 6 });
    let per_client = if smoke { 4 } else { 60 };
    let levels: &[usize] = if smoke { &[1, 2] } else { &[1, 4, 16] };
    let cores = std::thread::available_parallelism().map(usize::from).unwrap_or(1);

    let triples = datagen::lubm::generate(universities, 42);
    let mut store = RdfStore::entity();
    store.load(&triples).expect("bulk load");
    eprintln!(
        "loaded {} LUBM triples ({universities} universities); {cores} core(s){}",
        triples.len(),
        if smoke { "; SMOKE mode" } else { "" }
    );

    // Reference row counts, measured in-process before serving.
    let mix: Vec<MixQuery> = query_mix()
        .into_iter()
        .map(|(name, sparql)| {
            let expect_rows = store.query(&sparql).expect("reference run").len();
            eprintln!("  {name}: {expect_rows} rows");
            MixQuery { name, sparql, expect_rows }
        })
        .collect();

    // Deliberately oversubscribed (workers > cores): each worker's queries
    // also run on the store's executor pool, so this measures the server
    // under the contention it will actually see, not a one-request-per-core
    // idealization. Override with SERVER_THROUGHPUT_WORKERS.
    let workers = scale_from_env("SERVER_THROUGHPUT_WORKERS", (cores + 2).min(8));
    let cfg = ServerConfig {
        workers,
        max_in_flight: 64, // a throughput run must not shed
        ..ServerConfig::default()
    };
    let server =
        Server::start(SharedStore::new(store), "127.0.0.1:0", cfg).expect("bind server");
    let addr = server.local_addr();

    println!(
        "{:<12} {:>10} {:>10} {:>9} {:>9}",
        "concurrency", "requests", "req/s", "p50_ms", "p99_ms"
    );
    let mut level_json = Vec::new();
    for &concurrency in levels {
        let t0 = Instant::now();
        let handles: Vec<_> = (0..concurrency)
            .map(|ci| {
                let mix: Vec<(String, usize)> = mix
                    .iter()
                    .map(|q| {
                        (
                            format!(
                                "/sparql?query={}&format=tsv",
                                percent_encode(&q.sparql)
                            ),
                            q.expect_rows,
                        )
                    })
                    .collect();
                std::thread::spawn(move || {
                    let mut client = Client::connect(addr).expect("connect");
                    let mut latencies = Vec::with_capacity(per_client);
                    for r in 0..per_client {
                        let (path, expect_rows) = &mix[(ci + r) % mix.len()];
                        let t = Instant::now();
                        let resp =
                            client.request("GET", path, &[], b"").expect("response");
                        latencies.push(t.elapsed().as_secs_f64());
                        assert_eq!(resp.status, 200, "{}", resp.text());
                        let rows = resp.text().lines().count() - 1; // minus header
                        assert_eq!(
                            rows, *expect_rows,
                            "client {ci} request {r}: wrong result cardinality"
                        );
                    }
                    latencies
                })
            })
            .collect();
        let mut latencies: Vec<f64> = Vec::new();
        for h in handles {
            latencies.extend(h.join().expect("client thread"));
        }
        let wall = t0.elapsed().as_secs_f64();
        latencies.sort_by(f64::total_cmp);
        let requests = latencies.len();
        let rps = requests as f64 / wall;
        let (p50, p99) = (pct_ms(&latencies, 0.50), pct_ms(&latencies, 0.99));
        println!(
            "{concurrency:<12} {requests:>10} {rps:>10.1} {p50:>9.2} {p99:>9.2}"
        );
        level_json.push(format!(
            "{{\"concurrency\": {concurrency}, \"requests\": {requests}, \
             \"reqs_per_sec\": {rps:.2}, \"p50_ms\": {p50:.3}, \"p99_ms\": {p99:.3}}}"
        ));
    }

    // The mix names + row counts document what was measured.
    let mix_json: Vec<String> = mix
        .iter()
        .map(|q| format!("{{\"name\": \"{}\", \"rows\": {}}}", q.name, q.expect_rows))
        .collect();
    let json = format!(
        "{{\n  \"bench\": \"server_throughput\",\n  \"triples\": {},\n  \
         \"universities\": {universities},\n  \"cores\": {cores},\n  \
         \"workers\": {workers},\n  \"smoke\": {smoke},\n  \
         \"queries\": [{}],\n  \"levels\": [\n    {}\n  ]\n}}\n",
        triples.len(),
        mix_json.join(", "),
        level_json.join(",\n    ")
    );
    std::fs::write("BENCH_server.json", &json).expect("write BENCH_server.json");
    eprintln!("wrote BENCH_server.json");

    server.shutdown();
}
