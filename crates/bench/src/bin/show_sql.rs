//! Figs. 2, 12 & 13: the generated SQL, side by side per layout for the
//! micro-benchmark's Q1 (Fig. 2) and for the paper's running example on the
//! entity layout (Fig. 13).
//!
//! Usage: `cargo run -p bench --release --bin show_sql`

use bench::System;
use rdf::{Term, Triple};

fn main() {
    let triples = datagen::micro::generate(500, 42);
    let q1 = &datagen::micro::queries()[0];
    println!("== Fig. 2: SQL for micro-benchmark Q1 per layout ==\n");
    println!("SPARQL:\n{}\n", q1.sparql);
    for sys in [System::Db2Rdf, System::TripleStore, System::Vertical] {
        let store = sys.build(&triples, None);
        println!("--- {} ---", sys.name());
        println!("{}\n", store.translate(&q1.sparql).unwrap());
    }

    println!("== Fig. 13: running example (Fig. 6a) on the entity layout ==\n");
    let t = |s: &str, p: &str, o: Term| Triple::new(Term::iri(s), Term::iri(p), o);
    let sample = vec![
        t("Flint", "born", Term::lit("1850")),
        t("Flint", "founder", Term::iri("IBM")),
        t("Page", "founder", Term::iri("Google")),
        t("Page", "board", Term::iri("Google")),
        t("Page", "home", Term::lit("Palo Alto")),
        t("Android", "developer", Term::iri("Google")),
        t("Google", "industry", Term::lit("Software")),
        t("Google", "industry", Term::lit("Internet")),
        t("Google", "employees", Term::lit("54604")),
        t("Google", "revenue", Term::lit("37905")),
        t("IBM", "industry", Term::lit("Software")),
        t("IBM", "revenue", Term::lit("106916")),
        t("Watson", "developer", Term::iri("IBM")),
    ];
    let store = System::Db2Rdf.build(&sample, None);
    let fig6 = "SELECT ?x ?y ?z ?n ?m WHERE {
        ?x <home> 'Palo Alto' .
        { ?x <founder> ?y } UNION { ?x <board> ?y }
        { ?y <industry> 'Software' .
          ?z <developer> ?y .
          ?y <revenue> ?n .
          OPTIONAL { ?y <employees> ?m } }
      }";
    let e = store.explain(fig6).unwrap();
    println!("Optimal flow (Fig. 8): {:?}\n", e.flow);
    println!("Generated SQL (compare Fig. 13):\n{}", e.sql);
}
