//! Fig. 15: the headline evaluation — four datasets × four systems, with
//! complete/timeout/error counts and mean time per query. Substitution note
//! (DESIGN.md §2): the closed-source comparison systems are replaced by the
//! baseline layouts and the no-optimizer variant over the same substrate.
//!
//! Usage: `cargo run -p bench --release --bin summary_table`
//! Scales: `LUBM_UNIVS`, `SP2B_DOCS`, `DBPEDIA_ENTITIES`, `PRBENCH_BUGS`;
//! `ROW_BUDGET` (default 50M rows ≈ the paper's 10-minute timeout).

use bench::{run_workload, scale_from_env, Summary, System};
use datagen::BenchQuery;
use rdf::Triple;

fn benchmarks() -> Vec<(&'static str, Vec<Triple>, Vec<BenchQuery>)> {
    vec![
        (
            "LUBM",
            datagen::lubm::generate(scale_from_env("LUBM_UNIVS", 10), 42),
            datagen::lubm::queries(),
        ),
        (
            "SP2Bench",
            datagen::sp2b::generate(scale_from_env("SP2B_DOCS", 10_000), 42),
            datagen::sp2b::queries(),
        ),
        (
            "DBpedia",
            datagen::dbpedia::generate(
                scale_from_env("DBPEDIA_ENTITIES", 12_000),
                scale_from_env("DBPEDIA_PREDS", 3_000),
                42,
            ),
            datagen::dbpedia::queries(),
        ),
        (
            "PRBench",
            datagen::prbench::generate(scale_from_env("PRBENCH_BUGS", 4_000), 42),
            datagen::prbench::queries(),
        ),
    ]
}

fn main() {
    let budget = scale_from_env("ROW_BUDGET", 50_000_000) as u64;
    println!("== Fig. 15: summary over all datasets and systems ==");
    println!("(row budget {budget} rows stands in for the 10-minute timeout)\n");
    println!(
        "{:<10} {:<13} | {:>9} {:>8} {:>6} {:>6} | {:>10}",
        "dataset", "system", "complete", "timeout", "error", "unsup", "mean (s)"
    );
    for (name, triples, queries) in benchmarks() {
        for sys in System::ALL {
            let store = sys.build(&triples, Some(budget));
            let outcomes = run_workload(&store, &queries, 3);
            let mut summary = Summary::default();
            for (_, o) in &outcomes {
                summary.add(o);
            }
            println!(
                "{:<10} {:<13} | {:>9} {:>8} {:>6} {:>6} | {:>10.3}",
                name,
                sys.name(),
                summary.complete,
                summary.timeout,
                summary.error,
                summary.unsupported,
                summary.mean_secs()
            );
        }
        println!();
    }
    println!(
        "Paper's Fig. 15 shape: DB2RDF completes 77/78 queries (all but SQ4, which\n\
         times out everywhere) and posts the best or near-best mean time on every\n\
         dataset; the baselines lose queries to timeouts and run slower on average."
    );
}
