//! Mixed read/write throughput for the group-committed update subsystem
//! (DESIGN.md §4.12).
//!
//! Opens a *durable* entity-layout LUBM store (group commit only means
//! something when there is an fsync to amortize), wraps it in
//! `SharedStore`, and measures three things:
//!
//! 1. **reader baseline** — p50/p99 SPARQL query latency with no writers;
//! 2. **update throughput** — 1/4/16 writer threads each issuing a mix of
//!    INSERT DATA / DELETE DATA / DELETE-INSERT requests through
//!    `SharedStore::update`, with 2 reader threads querying throughout:
//!    updates/s per level plus the group-commit batch-size histogram
//!    (requests coalesced per fsync) taken from `update_stats()` deltas;
//! 3. **reader p99 under the storm** — the same reader loop timed while the
//!    widest writer level runs: snapshot-per-reader means the storm must
//!    not block reads, so the bench records how far p99 actually drifts.
//!
//! Every acked update is verified against the stats counters (applied ==
//! issued, failed == 0, histogram sums to groups) — throughput with lost
//! writes is not throughput. Writes `BENCH_update.json`. Knobs:
//! `UPDATE_SMOKE=1` (CI profile: tiny dataset, 1/2 writers, seconds),
//! `UPDATE_THROUGHPUT_UNIV`, `UPDATE_THROUGHPUT_PER_WRITER`.

use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::Instant;

use bench::scale_from_env;
use db2rdf::{RdfStore, SharedStore, StoreConfig, UpdateStats, BATCH_BUCKET_LABELS};

/// Sorted-percentile in milliseconds.
fn pct_ms(sorted: &[f64], q: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let idx = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len()) - 1;
    sorted[idx] * 1e3
}

/// The request a writer issues at step `i`: mostly fresh inserts, with
/// periodic deletes of its own earlier triples and a DELETE/INSERT rewrite,
/// so all three op kinds hit the group-commit path and the store does not
/// grow without bound.
fn writer_request(level: usize, writer: usize, i: usize) -> String {
    let s = format!("<http://bench/u{level}-{writer}-{i}>");
    let p = format!("<http://bench/p{}>", i % 4);
    if i % 7 == 6 {
        let old = format!("<http://bench/u{level}-{writer}-{}>", i - 3);
        format!("DELETE {{ {old} ?p ?o }} INSERT {{ {s} {p} {i} }} WHERE {{ {old} ?p ?o }}")
    } else if i % 5 == 4 {
        let old = format!("<http://bench/u{level}-{writer}-{}>", i - 2);
        format!("DELETE WHERE {{ {old} ?p ?o }}")
    } else {
        format!("INSERT DATA {{ {s} {p} {i} }}")
    }
}

/// Run `readers` query threads until `stop` flips; returns all latencies.
fn reader_loop(
    shared: &SharedStore,
    query: &str,
    readers: usize,
    stop: &AtomicBool,
) -> Vec<f64> {
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..readers)
            .map(|_| {
                scope.spawn(|| {
                    let mut lat = Vec::new();
                    while !stop.load(Ordering::Relaxed) {
                        let t = Instant::now();
                        shared.query(query).expect("reader query");
                        lat.push(t.elapsed().as_secs_f64());
                    }
                    lat
                })
            })
            .collect();
        let mut all = Vec::new();
        for h in handles {
            all.extend(h.join().expect("reader thread"));
        }
        all
    })
}

fn hist_delta(before: &UpdateStats, after: &UpdateStats) -> Vec<u64> {
    before.batch_sizes.iter().zip(after.batch_sizes.iter()).map(|(b, a)| a - b).collect()
}

fn hist_json(hist: &[u64]) -> String {
    let parts: Vec<String> = BATCH_BUCKET_LABELS
        .iter()
        .zip(hist.iter())
        .map(|(label, n)| format!("\"{label}\": {n}"))
        .collect();
    format!("{{{}}}", parts.join(", "))
}

fn main() {
    let smoke = std::env::var("UPDATE_SMOKE").map(|v| v == "1").unwrap_or(false);
    let universities = scale_from_env("UPDATE_THROUGHPUT_UNIV", if smoke { 1 } else { 3 });
    let per_writer = scale_from_env("UPDATE_THROUGHPUT_PER_WRITER", if smoke { 40 } else { 250 });
    let levels: &[usize] = if smoke { &[1, 2] } else { &[1, 4, 16] };
    let readers = 2usize;
    let cores = std::thread::available_parallelism().map(usize::from).unwrap_or(1);

    let dir: PathBuf = std::env::temp_dir()
        .join(format!("db2rdf-update-throughput-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let triples = datagen::lubm::generate(universities, 42);
    let mut store = RdfStore::open(&dir, StoreConfig::default()).expect("open durable store");
    store.load(&triples).expect("bulk load");
    store.checkpoint().expect("checkpoint after load");
    let shared = SharedStore::new(store);
    eprintln!(
        "loaded {} LUBM triples ({universities} universities) into a durable store; \
         {cores} core(s){}",
        triples.len(),
        if smoke { "; SMOKE mode" } else { "" }
    );

    let reader_query = format!(
        "SELECT ?x ?d WHERE {{ ?x <{ns}advisor> ?y . ?x <{ns}memberOf> ?d }}",
        ns = datagen::lubm::NS
    );
    shared.query(&reader_query).expect("reader query sanity");

    // Phase 1: reader baseline, no writers. Bounded by request count so the
    // smoke profile stays fast: run the loop for a fixed number of queries
    // per reader by flipping `stop` from a timer thread.
    let baseline = {
        let stop = AtomicBool::new(false);
        std::thread::scope(|scope| {
            let lat_handle = scope.spawn(|| reader_loop(&shared, &reader_query, readers, &stop));
            let budget = if smoke { 0.5 } else { 3.0 };
            std::thread::sleep(std::time::Duration::from_secs_f64(budget));
            stop.store(true, Ordering::Relaxed);
            lat_handle.join().expect("baseline readers")
        })
    };
    let mut baseline_sorted = baseline.clone();
    baseline_sorted.sort_by(f64::total_cmp);
    let (base_p50, base_p99) = (pct_ms(&baseline_sorted, 0.50), pct_ms(&baseline_sorted, 0.99));
    println!(
        "reader baseline: {} queries, p50 {base_p50:.2} ms, p99 {base_p99:.2} ms",
        baseline.len()
    );

    // Phase 2: write storm per level, readers running throughout.
    println!(
        "{:<8} {:>9} {:>11} {:>10} {:>12} {:>12}  batch histogram",
        "writers", "updates", "updates/s", "groups", "rd_p50_ms", "rd_p99_ms"
    );
    let mut level_json = Vec::new();
    let mut storm_p99 = base_p99;
    for &writers in levels {
        let before = shared.update_stats();
        let stop = AtomicBool::new(false);
        let (wall, reader_lat) = std::thread::scope(|scope| {
            let reader_handle =
                scope.spawn(|| reader_loop(&shared, &reader_query, readers, &stop));
            let t0 = Instant::now();
            let writer_handles: Vec<_> = (0..writers)
                .map(|w| {
                    let shared = shared.clone();
                    scope.spawn(move || {
                        for i in 0..per_writer {
                            let req = writer_request(writers, w, i);
                            shared
                                .update(&req)
                                .unwrap_or_else(|e| panic!("writer {w} step {i}: {e}"));
                        }
                    })
                })
                .collect();
            for h in writer_handles {
                h.join().expect("writer thread");
            }
            let wall = t0.elapsed().as_secs_f64();
            stop.store(true, Ordering::Relaxed);
            (wall, reader_handle.join().expect("storm readers"))
        });
        let after = shared.update_stats();

        let issued = (writers * per_writer) as u64;
        assert_eq!(after.applied - before.applied, issued, "every update must ack");
        assert_eq!(after.failed, before.failed, "no update may fail");
        let groups = after.groups - before.groups;
        let hist = hist_delta(&before, &after);
        assert_eq!(hist.iter().sum::<u64>(), groups, "histogram covers every group");

        let ups = issued as f64 / wall;
        let mut lat = reader_lat;
        lat.sort_by(f64::total_cmp);
        let (p50, p99) = (pct_ms(&lat, 0.50), pct_ms(&lat, 0.99));
        if writers == *levels.last().unwrap() {
            storm_p99 = p99;
        }
        let hist_str: Vec<String> = BATCH_BUCKET_LABELS
            .iter()
            .zip(hist.iter())
            .filter(|(_, n)| **n > 0)
            .map(|(l, n)| format!("{l}:{n}"))
            .collect();
        println!(
            "{writers:<8} {issued:>9} {ups:>11.1} {groups:>10} {p50:>12.2} {p99:>12.2}  [{}]",
            hist_str.join(" ")
        );
        level_json.push(format!(
            "{{\"writers\": {writers}, \"updates\": {issued}, \"updates_per_sec\": {ups:.2}, \
             \"group_commits\": {groups}, \"reader_p50_ms\": {p50:.3}, \
             \"reader_p99_ms\": {p99:.3}, \"batch_sizes\": {}}}",
            hist_json(&hist)
        ));
    }

    let final_stats = shared.update_stats();
    println!(
        "totals: {} groups for {} updates ({:.2} updates/group); reader p99 {:.2} ms idle \
         vs {:.2} ms under the widest storm",
        final_stats.groups,
        final_stats.applied,
        final_stats.applied as f64 / final_stats.groups.max(1) as f64,
        base_p99,
        storm_p99
    );

    let json = format!(
        "{{\n  \"bench\": \"update_throughput\",\n  \"triples\": {},\n  \
         \"universities\": {universities},\n  \"cores\": {cores},\n  \"smoke\": {smoke},\n  \
         \"per_writer\": {per_writer},\n  \"readers\": {readers},\n  \
         \"reader_baseline\": {{\"queries\": {}, \"p50_ms\": {base_p50:.3}, \
         \"p99_ms\": {base_p99:.3}}},\n  \"total_groups\": {},\n  \
         \"total_batch_sizes\": {},\n  \"levels\": [\n    {}\n  ]\n}}\n",
        triples.len(),
        baseline.len(),
        final_stats.groups,
        hist_json(&final_stats.batch_sizes),
        level_json.join(",\n    ")
    );
    std::fs::write("BENCH_update.json", &json).expect("write BENCH_update.json");
    eprintln!("wrote BENCH_update.json");
    let _ = std::fs::remove_dir_all(&dir);
}
