//! Shared harness for the experiment binaries: store construction per
//! layout/"system", warm-cache timing, and paper-style result tables.
//!
//! Every table and figure of the paper has a binary in `src/bin/`; see
//! DESIGN.md §5 for the experiment index and EXPERIMENTS.md for recorded
//! paper-vs-measured results.

use std::time::{Duration, Instant};

use datagen::BenchQuery;
use db2rdf::{Layout, OptimizerMode, RdfStore, StoreConfig, StoreError};
use rdf::Triple;

/// The "systems" compared in the Fig. 15/16/17/18 analogues. The paper
/// compares against Jena, Virtuoso, Sesame and RDF-3X; those cannot be
/// rebuilt here, so the comparison isolates the two levers the paper argues
/// drive the differences: the relational layout and the SPARQL-level
/// optimizer (see DESIGN.md §2).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum System {
    /// Entity-oriented layout + hybrid optimizer (the paper's system).
    Db2Rdf,
    /// Entity-oriented layout, naive textual-order flow.
    Db2RdfNoOpt,
    /// Triple-store layout + hybrid optimizer.
    TripleStore,
    /// Predicate-oriented (vertical) layout + hybrid optimizer.
    Vertical,
}

impl System {
    pub const ALL: [System; 4] =
        [System::Db2Rdf, System::TripleStore, System::Vertical, System::Db2RdfNoOpt];

    pub fn name(&self) -> &'static str {
        match self {
            System::Db2Rdf => "DB2RDF",
            System::Db2RdfNoOpt => "DB2RDF-noopt",
            System::TripleStore => "TripleStore",
            System::Vertical => "Vertical",
        }
    }

    pub fn config(&self, row_budget: Option<u64>) -> StoreConfig {
        let mut cfg = match self {
            System::Db2Rdf | System::Db2RdfNoOpt => StoreConfig::with_layout(Layout::Entity),
            System::TripleStore => StoreConfig::with_layout(Layout::TripleStore),
            System::Vertical => StoreConfig::with_layout(Layout::Vertical),
        };
        if *self == System::Db2RdfNoOpt {
            cfg.optimizer = OptimizerMode::Naive;
        }
        cfg.row_budget = row_budget;
        cfg
    }

    pub fn build(&self, triples: &[Triple], row_budget: Option<u64>) -> RdfStore {
        let mut store = RdfStore::new(self.config(row_budget));
        store.load(triples).expect("bulk load");
        store
    }
}

/// Outcome of one timed query, mirroring the paper's Fig. 15 classes.
#[derive(Debug, Clone)]
pub enum Outcome {
    Complete { time: Duration, results: usize },
    /// Evaluation budget exceeded (the paper's 10-minute timeout analogue).
    Timeout { time: Duration },
    /// Query rejected by the translator (paper: "unsupported").
    Unsupported(String),
    /// Execution error.
    Error(String),
}

impl Outcome {
    pub fn time_secs(&self) -> Option<f64> {
        match self {
            Outcome::Complete { time, .. } | Outcome::Timeout { time } => {
                Some(time.as_secs_f64())
            }
            _ => None,
        }
    }
}

/// Warm-cache timing: one warm-up run, then the median of `runs`
/// measurements (the paper discards the first run and averages seven; the
/// median of three is a sturdier small-sample statistic).
pub fn time_query(store: &RdfStore, sparql: &str, runs: usize) -> Outcome {
    match store.query(sparql) {
        Err(e) if e.is_timeout() => {
            return Outcome::Timeout { time: Duration::from_secs(0) };
        }
        Err(StoreError::Unsupported(m)) => return Outcome::Unsupported(m),
        Err(e) => return Outcome::Error(e.to_string()),
        Ok(_) => {}
    }
    let mut times = Vec::with_capacity(runs);
    let mut results = 0;
    for _ in 0..runs.max(1) {
        let t0 = Instant::now();
        match store.query(sparql) {
            Ok(sols) => {
                results = sols.len().max(usize::from(sols.boolean.is_some()));
                times.push(t0.elapsed());
            }
            Err(e) if e.is_timeout() => return Outcome::Timeout { time: t0.elapsed() },
            Err(e) => return Outcome::Error(e.to_string()),
        }
    }
    times.sort();
    Outcome::Complete { time: times[times.len() / 2], results }
}

/// Per-system summary over a workload (one row of the Fig. 15 table).
#[derive(Debug, Default, Clone)]
pub struct Summary {
    pub complete: usize,
    pub timeout: usize,
    pub error: usize,
    pub unsupported: usize,
    pub total_time: f64,
}

impl Summary {
    pub fn add(&mut self, o: &Outcome) {
        match o {
            Outcome::Complete { time, .. } => {
                self.complete += 1;
                self.total_time += time.as_secs_f64();
            }
            Outcome::Timeout { .. } => {
                self.timeout += 1;
                // Paper: timeouts count as the full timeout budget.
                self.total_time += TIMEOUT_CHARGE_SECS;
            }
            Outcome::Error(_) => self.error += 1,
            Outcome::Unsupported(_) => self.unsupported += 1,
        }
    }

    pub fn mean_secs(&self) -> f64 {
        let n = self.complete + self.timeout;
        if n == 0 {
            0.0
        } else {
            self.total_time / n as f64
        }
    }
}

/// Seconds charged for a timed-out query in mean-time summaries (the paper
/// charges its full 10-minute limit; we scale to our budgets).
pub const TIMEOUT_CHARGE_SECS: f64 = 60.0;

/// Run a whole workload on one system.
pub fn run_workload(
    store: &RdfStore,
    queries: &[BenchQuery],
    runs: usize,
) -> Vec<(String, Outcome)> {
    queries
        .iter()
        .map(|q| (q.name.clone(), time_query(store, &q.sparql, runs)))
        .collect()
}

/// Format a duration like the paper's figures (ms with sub-ms precision).
pub fn fmt_time(o: &Outcome) -> String {
    match o {
        Outcome::Complete { time, .. } => format!("{:.2}ms", time.as_secs_f64() * 1e3),
        Outcome::Timeout { .. } => "TIMEOUT".to_string(),
        Outcome::Unsupported(_) => "unsup".to_string(),
        Outcome::Error(_) => "ERROR".to_string(),
    }
}

/// Environment-variable override helper for experiment scales.
pub fn scale_from_env(var: &str, default: usize) -> usize {
    std::env::var(var).ok().and_then(|v| v.parse().ok()).unwrap_or(default)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn systems_build_and_answer() {
        let triples = datagen::micro::generate(200, 1);
        for sys in System::ALL {
            let store = sys.build(&triples, None);
            let q = &datagen::micro::queries()[0];
            match time_query(&store, &q.sparql, 1) {
                Outcome::Complete { results, .. } => {
                    assert!(results <= 200, "{}", sys.name());
                }
                other => panic!("{}: {other:?}", sys.name()),
            }
        }
    }

    #[test]
    fn budget_produces_timeout_outcome() {
        let triples = datagen::micro::generate(500, 1);
        let store = System::TripleStore.build(&triples, Some(1_000));
        // Q6 is an 8-way self-join: the tiny budget trips immediately.
        let q = &datagen::micro::queries()[5];
        assert!(matches!(time_query(&store, &q.sparql, 1), Outcome::Timeout { .. }));
    }

    #[test]
    fn summary_accumulates() {
        let mut s = Summary::default();
        s.add(&Outcome::Complete { time: Duration::from_millis(10), results: 5 });
        s.add(&Outcome::Timeout { time: Duration::from_secs(1) });
        s.add(&Outcome::Error("x".into()));
        assert_eq!(s.complete, 1);
        assert_eq!(s.timeout, 1);
        assert_eq!(s.error, 1);
        assert!(s.mean_secs() > 0.0);
    }
}
