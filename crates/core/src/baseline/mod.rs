//! Baseline relational RDF layouts (paper §2, Fig. 2): the triple-store and
//! the predicate-oriented (vertically partitioned) schema, each with its own
//! SPARQL→SQL star generation. Both share the hybrid optimizer and the
//! generic CTE-chain translator — only the per-triple access SQL differs.

use std::collections::BTreeMap;

use rdf::Triple;
use relstore::{quote_str, Database, IndexKind, SqlType, TableSchema, Value};
use sparql::TermPattern;

use crate::error::{Result, StoreError};
use crate::optimizer::{PTree, StarNode, StarSem};
use crate::translate::{GenState, StarGen};

// ---------------------------------------------------------------------------
// Triple-store layout
// ---------------------------------------------------------------------------

/// Load the single three-column TRIPLES relation (indexes on subject and
/// object; no predicate index, matching the paper's setup).
pub fn load_triple_store(db: &mut Database, triples: &[Triple]) -> relstore::Result<()> {
    db.create_table(TableSchema::new(
        "triples",
        vec![
            ("subj".into(), SqlType::Text),
            ("pred".into(), SqlType::Text),
            ("obj".into(), SqlType::Text),
        ],
    ))?;
    db.insert_rows(
        "triples",
        triples.iter().map(|t| {
            vec![
                Value::str(t.subject.encode()),
                Value::str(t.predicate.encode()),
                Value::str(t.object.encode()),
            ]
        }),
    )?;
    db.create_index("triples", "subj", IndexKind::Hash)?;
    db.create_index("triples", "obj", IndexKind::Hash)?;
    Ok(())
}

/// Insert one triple unless already present (RDF graphs are sets); returns
/// whether a row was actually added. Presence is checked through the subject
/// hash index, so the probe is O(rows-per-subject), not a table scan.
pub fn insert_triple_store(db: &mut Database, t: &Triple) -> relstore::Result<bool> {
    let s = Value::str(t.subject.encode());
    let p = Value::str(t.predicate.encode());
    let o = Value::str(t.object.encode());
    if find_triple_row(db, &s, &p, &o).is_some() {
        return Ok(false);
    }
    db.insert_rows("triples", [vec![s, p, o]])?;
    Ok(true)
}

/// Row id of `(s, p, o)` in the TRIPLES relation, if present.
fn find_triple_row(db: &Database, s: &Value, p: &Value, o: &Value) -> Option<u32> {
    let table = db.table("triples")?;
    let idx = table.index_on("subj")?;
    idx.lookup(s).iter().copied().find(|&rid| {
        let row = table.row_values(rid);
        &row[1] == p && &row[2] == o
    })
}

/// Delete every row matching `t`; returns whether anything was removed.
/// `delete_row` is swap-remove, so the index is re-probed after each delete
/// rather than trusting previously collected row ids.
pub fn delete_triple_store(db: &mut Database, t: &Triple) -> relstore::Result<bool> {
    let s = Value::str(t.subject.encode());
    let p = Value::str(t.predicate.encode());
    let o = Value::str(t.object.encode());
    let mut removed = false;
    while let Some(rid) = find_triple_row(db, &s, &p, &o) {
        db.delete_row("triples", rid)?;
        removed = true;
    }
    Ok(removed)
}

pub struct TripleGen<'a> {
    pub tree: &'a PTree,
}

impl TripleGen<'_> {
    fn gen_one(&self, ti: usize, state: &mut GenState) -> Result<()> {
        let tp = &self.tree.triples[ti];
        let name = state.fresh();
        let prior = state.last.clone();
        let mut from: Vec<String> = Vec::new();
        if let Some(p) = &prior {
            from.push(format!("{p} AS P"));
        }
        from.push("triples AS T".to_string());
        let mut select: Vec<String> =
            if prior.is_some() { state.prior_projection("P") } else { Vec::new() };
        let mut wheres: Vec<String> = Vec::new();
        let mut new_bound = state.bound.clone();
        let mut local: BTreeMap<String, String> = BTreeMap::new();
        for (tpat, col) in
            [(&tp.subject, "T.subj"), (&tp.predicate, "T.pred"), (&tp.object, "T.obj")]
        {
            match tpat {
                TermPattern::Term(t) => wheres.push(format!("{col} = {}", quote_str(&t.encode()))),
                TermPattern::Var(v) => {
                    if let Some(expr) = local.get(v) {
                        wheres.push(format!("{col} = {expr}"));
                    } else if state.bound.contains_key(v) {
                        let cond = state.join_bound(v, col, &mut select);
                        wheres.push(cond);
                        local.insert(v.clone(), col.to_string());
                    } else {
                        let out = state.col(v);
                        select.push(format!("{col} AS {out}"));
                        new_bound.insert(v.clone(), out);
                        local.insert(v.clone(), col.to_string());
                    }
                }
            }
        }
        if select.is_empty() {
            select.push("1 AS one".to_string());
        }
        let mut body = format!("SELECT {} FROM {}", select.join(", "), from.join(", "));
        if !wheres.is_empty() {
            body.push_str(" WHERE ");
            body.push_str(&wheres.join(" AND "));
        }
        state.bound = new_bound;
        state.push_cte(name, body);
        Ok(())
    }
}

impl StarGen for TripleGen<'_> {
    fn gen_star(&self, star: &StarNode, state: &mut GenState) -> Result<()> {
        if star.sem != StarSem::And {
            return Err(StoreError::Unsupported(
                "merged stars are an entity-layout feature".into(),
            ));
        }
        for &ti in &star.triples {
            self.gen_one(ti, state)?;
        }
        Ok(())
    }
}

// ---------------------------------------------------------------------------
// Predicate-oriented (vertical partitioning) layout
// ---------------------------------------------------------------------------

/// Predicate → table-name map for the vertical layout.
#[derive(Debug, Clone, Default)]
pub struct VerticalLayout {
    pub tables: BTreeMap<String, String>,
}

/// One two-column table per predicate, both columns indexed (the classic
/// column-store emulation of Abadi et al. that the paper compares against).
pub fn load_vertical(
    db: &mut Database,
    triples: &[Triple],
) -> relstore::Result<VerticalLayout> {
    let mut layout = VerticalLayout::default();
    let mut grouped: BTreeMap<String, Vec<(String, String)>> = BTreeMap::new();
    for t in triples {
        grouped
            .entry(t.predicate.encode())
            .or_default()
            .push((t.subject.encode(), t.object.encode()));
    }
    for (i, (pred, rows)) in grouped.into_iter().enumerate() {
        let table = format!("vp{i}");
        db.create_table(TableSchema::new(
            &table,
            vec![("entry".into(), SqlType::Text), ("val".into(), SqlType::Text)],
        ))?;
        db.insert_rows(&table, rows.into_iter().map(|(s, o)| vec![Value::str(s), Value::str(o)]))?;
        db.create_index(&table, "entry", IndexKind::Hash)?;
        db.create_index(&table, "val", IndexKind::Hash)?;
        layout.tables.insert(pred, table);
    }
    Ok(layout)
}

/// Insert one triple unless already present; returns whether a row was
/// added. Unseen predicates need a schema change (the dynamic-schema
/// weakness the paper points out — a new table per new predicate).
pub fn insert_vertical(
    db: &mut Database,
    layout: &mut VerticalLayout,
    t: &Triple,
) -> relstore::Result<bool> {
    let pred = t.predicate.encode();
    let table = match layout.tables.get(&pred) {
        Some(t) => t.clone(),
        None => {
            let table = format!("vp{}", layout.tables.len());
            db.create_table(TableSchema::new(
                &table,
                vec![("entry".into(), SqlType::Text), ("val".into(), SqlType::Text)],
            ))?;
            db.create_index(&table, "entry", IndexKind::Hash)?;
            db.create_index(&table, "val", IndexKind::Hash)?;
            layout.tables.insert(pred.clone(), table.clone());
            table
        }
    };
    let s = Value::str(t.subject.encode());
    let o = Value::str(t.object.encode());
    if find_vertical_row(db, &table, &s, &o).is_some() {
        return Ok(false);
    }
    db.insert_rows(&table, [vec![s, o]])?;
    Ok(true)
}

/// Row id of `(entry, val)` in a predicate table, if present.
fn find_vertical_row(db: &Database, table: &str, s: &Value, o: &Value) -> Option<u32> {
    let t = db.table(table)?;
    let idx = t.index_on("entry")?;
    idx.lookup(s).iter().copied().find(|&rid| &t.row_values(rid)[1] == o)
}

/// Delete every row matching `t`; returns whether anything was removed.
/// The predicate table itself is never dropped — layouts only grow, which is
/// what lets deletes skip plan-cache invalidation.
pub fn delete_vertical(
    db: &mut Database,
    layout: &VerticalLayout,
    t: &Triple,
) -> relstore::Result<bool> {
    let Some(table) = layout.tables.get(&t.predicate.encode()) else {
        return Ok(false);
    };
    let s = Value::str(t.subject.encode());
    let o = Value::str(t.object.encode());
    let mut removed = false;
    while let Some(rid) = find_vertical_row(db, table, &s, &o) {
        db.delete_row(table, rid)?;
        removed = true;
    }
    Ok(removed)
}

pub struct VerticalGen<'a> {
    pub tree: &'a PTree,
    pub layout: &'a VerticalLayout,
    /// Refuse variable-predicate queries when the union would span more
    /// tables than this (documented vertical-partitioning weakness).
    pub max_union_tables: usize,
}

impl VerticalGen<'_> {
    fn gen_one(&self, ti: usize, state: &mut GenState) -> Result<()> {
        let tp = &self.tree.triples[ti];
        // Resolve the relation: a predicate table, or a UNION view for
        // variable predicates.
        let (rel_sql, pred_var): (String, Option<&str>) = match &tp.predicate {
            TermPattern::Term(p) => {
                let pe = p.encode();
                match self.layout.tables.get(&pe) {
                    Some(t) => (t.clone(), None),
                    None => {
                        // Unknown predicate: provably empty.
                        let name = state.fresh();
                        let mut select: Vec<String> = state
                            .bound
                            .values()
                            .map(|c| format!("NULL AS {c}"))
                            .collect();
                        let mut new_bound = state.bound.clone();
                        for pos in [&tp.subject, &tp.object] {
                            if let TermPattern::Var(v) = pos {
                                if !new_bound.contains_key(v) {
                                    let col = state.col(v);
                                    select.push(format!("NULL AS {col}"));
                                    new_bound.insert(v.clone(), col);
                                }
                            }
                        }
                        if select.is_empty() {
                            select.push("1 AS one".into());
                        }
                        let body =
                            format!("SELECT {} WHERE FALSE", select.join(", "));
                        state.bound = new_bound;
                        state.push_cte(name, body);
                        return Ok(());
                    }
                }
            }
            TermPattern::Var(v) => {
                if self.layout.tables.len() > self.max_union_tables {
                    return Err(StoreError::Unsupported(format!(
                        "variable predicate over {} vertical tables",
                        self.layout.tables.len()
                    )));
                }
                // Materialize an all-predicates union as its own CTE.
                let name = state.fresh();
                let selects: Vec<String> = self
                    .layout
                    .tables
                    .iter()
                    .map(|(p, t)| {
                        format!("SELECT entry, val, {} AS pred FROM {t}", quote_str(p))
                    })
                    .collect();
                state.ctes.push((name.clone(), selects.join(" UNION ALL ")));
                (name, Some(v.as_str()))
            }
        };

        let name = state.fresh();
        let prior = state.last.clone();
        let mut from: Vec<String> = Vec::new();
        if let Some(p) = &prior {
            from.push(format!("{p} AS P"));
        }
        from.push(format!("{rel_sql} AS T"));
        let mut select: Vec<String> =
            if prior.is_some() { state.prior_projection("P") } else { Vec::new() };
        let mut wheres: Vec<String> = Vec::new();
        let mut new_bound = state.bound.clone();
        let mut local: BTreeMap<String, String> = BTreeMap::new();
        let positions: Vec<(&TermPattern, &str)> =
            vec![(&tp.subject, "T.entry"), (&tp.object, "T.val")];
        if let Some(pv) = pred_var {
            if state.bound.contains_key(pv) {
                let cond = state.join_bound(pv, "T.pred", &mut select);
                wheres.push(cond);
            } else {
                let out = state.col(pv);
                select.push(format!("T.pred AS {out}"));
                new_bound.insert(pv.to_string(), out);
                // The same variable may reappear in subject/object position
                // (`?s ?p ?p`): record it so those join on T.pred instead of
                // re-projecting the alias (ambiguous column).
                local.insert(pv.to_string(), "T.pred".to_string());
            }
        }
        for (tpat, col) in positions {
            match tpat {
                TermPattern::Term(t) => wheres.push(format!("{col} = {}", quote_str(&t.encode()))),
                TermPattern::Var(v) => {
                    if let Some(expr) = local.get(v) {
                        wheres.push(format!("{col} = {expr}"));
                    } else if state.bound.contains_key(v) {
                        let cond = state.join_bound(v, col, &mut select);
                        wheres.push(cond);
                        local.insert(v.clone(), col.to_string());
                    } else {
                        let out = state.col(v);
                        select.push(format!("{col} AS {out}"));
                        new_bound.insert(v.clone(), out);
                        local.insert(v.clone(), col.to_string());
                    }
                }
            }
        }
        if select.is_empty() {
            select.push("1 AS one".to_string());
        }
        let mut body = format!("SELECT {} FROM {}", select.join(", "), from.join(", "));
        if !wheres.is_empty() {
            body.push_str(" WHERE ");
            body.push_str(&wheres.join(" AND "));
        }
        state.bound = new_bound;
        state.push_cte(name, body);
        Ok(())
    }
}

impl StarGen for VerticalGen<'_> {
    fn gen_star(&self, star: &StarNode, state: &mut GenState) -> Result<()> {
        if star.sem != StarSem::And {
            return Err(StoreError::Unsupported(
                "merged stars are an entity-layout feature".into(),
            ));
        }
        for &ti in &star.triples {
            self.gen_one(ti, state)?;
        }
        Ok(())
    }
}
