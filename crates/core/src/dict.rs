//! Term dictionary: canonical RDF term encodings ↔ dense integer IDs.
//!
//! Every RDF engine surveyed for the ROADMAP dictionary-encodes terms so the
//! relational layer joins, hashes and sorts 8-byte integers instead of string
//! bytes. Here terms are interned at load/insert time to IDs assigned densely
//! from 1 upward in first-appearance order, and the DPH/DS/RPH/RS tables
//! store only those IDs; lexical forms are materialized exactly once, in
//! `results::decode_value`, when rows become `Solutions`.
//!
//! ## ID space
//!
//! * `0` is never assigned — a zero in a term column is corruption.
//! * Term IDs are **positive** (`1..=n`, dense, append-only).
//! * Multi-valued list IDs (lids) in DPH/RPH value cells are **negative**
//!   (`-1, -2, …`, see `loader::next_lid`), so a single-valued term ID can
//!   never accidentally equi-join against `ds.l_id`/`rs.l_id` through the
//!   `LEFT OUTER JOIN … COALESCE` fall-through path, and insert/delete logic
//!   can tell the two cell kinds apart by sign alone.
//!
//! ## Recovery invariant
//!
//! The dictionary persists as the `sys_dict` table, appended inside the same
//! WAL batch as the rows that introduced its entries (`RdfStore::persist_*`).
//! After any crash + replay, every ID stored in a data table has exactly one
//! `sys_dict` row, and that row carries the encoding the ID had when the
//! batch committed — an ID can never resolve to the wrong string, because
//! IDs are append-only and entries are immutable once written.

use std::collections::HashMap;
use std::sync::{Arc, RwLock, RwLockReadGuard, RwLockWriteGuard};

/// An append-only intern table: canonical term encoding ↔ dense positive ID.
#[derive(Debug, Default)]
pub struct Dict {
    /// `terms[id - 1]` is the encoding of `id`.
    terms: Vec<Arc<str>>,
    ids: HashMap<Arc<str>, i64>,
}

impl Dict {
    pub fn new() -> Dict {
        Dict::default()
    }

    /// Number of interned terms (also the highest assigned ID).
    pub fn len(&self) -> usize {
        self.terms.len()
    }

    pub fn is_empty(&self) -> bool {
        self.terms.is_empty()
    }

    /// Intern a canonical encoding, returning its ID (new or existing).
    pub fn intern(&mut self, term: &str) -> i64 {
        if let Some(&id) = self.ids.get(term) {
            return id;
        }
        let arc: Arc<str> = term.into();
        self.terms.push(arc.clone());
        let id = self.terms.len() as i64;
        self.ids.insert(arc, id);
        id
    }

    /// Look up the ID of an encoding without interning it.
    pub fn lookup(&self, term: &str) -> Option<i64> {
        self.ids.get(term).copied()
    }

    /// Resolve an ID back to its encoding. Negative and zero IDs (lids,
    /// corruption) resolve to nothing.
    pub fn resolve(&self, id: i64) -> Option<&str> {
        if id < 1 {
            return None;
        }
        self.terms.get(id as usize - 1).map(Arc::as_ref)
    }

    /// Entries with IDs above `watermark`, in ID order — the tail that a
    /// persistence pass has not yet written out.
    pub fn entries_from(&self, watermark: usize) -> impl Iterator<Item = (i64, &str)> {
        self.terms
            .iter()
            .enumerate()
            .skip(watermark)
            .map(|(i, t)| (i as i64 + 1, t.as_ref()))
    }

    /// Restore one entry from storage. Entries must arrive in ID order with
    /// no gaps (`sys_dict` is written append-only, so a sorted scan of it
    /// satisfies this); anything else is corruption.
    pub fn restore(&mut self, id: i64, term: &str) -> std::result::Result<(), String> {
        if id != self.terms.len() as i64 + 1 {
            return Err(format!(
                "sys_dict gap: expected id {}, found {id}",
                self.terms.len() + 1
            ));
        }
        let arc: Arc<str> = term.into();
        if self.ids.insert(arc.clone(), id).is_some() {
            return Err(format!("sys_dict duplicate term for id {id}"));
        }
        self.terms.push(arc);
        Ok(())
    }
}

/// A dictionary shared between the store (which interns during load/insert)
/// and the registered `RDF_*` scalar functions (which resolve IDs during
/// query execution, possibly from several worker threads at once). The dict
/// is append-only, so an ID never remaps while the process lives.
#[derive(Debug, Clone, Default)]
pub struct SharedDict(Arc<RwLock<Dict>>);

impl SharedDict {
    pub fn new() -> SharedDict {
        SharedDict::default()
    }

    pub fn read(&self) -> RwLockReadGuard<'_, Dict> {
        self.0.read().unwrap_or_else(|e| e.into_inner())
    }

    pub fn write(&self) -> RwLockWriteGuard<'_, Dict> {
        self.0.write().unwrap_or_else(|e| e.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rdf::{decode_term, Term};

    #[test]
    fn intern_is_idempotent_and_dense() {
        let mut d = Dict::new();
        let a = d.intern("<http://a>");
        let b = d.intern("<http://b>");
        assert_eq!((a, b), (1, 2));
        assert_eq!(d.intern("<http://a>"), 1);
        assert_eq!(d.len(), 2);
        assert_eq!(d.lookup("<http://b>"), Some(2));
        assert_eq!(d.lookup("<http://c>"), None);
        assert_eq!(d.resolve(1), Some("<http://a>"));
        assert_eq!(d.resolve(0), None);
        assert_eq!(d.resolve(-1), None);
        assert_eq!(d.resolve(3), None);
    }

    #[test]
    fn restore_rejects_gaps_and_duplicates() {
        let mut d = Dict::new();
        d.restore(1, "<a>").unwrap();
        assert!(d.restore(3, "<c>").is_err());
        assert!(d.restore(2, "<a>").is_err());
        d.restore(2, "<b>").unwrap();
        assert_eq!(d.resolve(2), Some("<b>"));
    }

    /// Deterministic PRNG (SplitMix64) — the workspace builds offline, so no
    /// external property-testing crate; this generates the term corpus.
    struct Rng(u64);
    impl Rng {
        fn next(&mut self) -> u64 {
            self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.0;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    /// Round-trip property: for generated terms — IRIs, plain/lang/typed
    /// literals with multi-byte UTF-8, escapes and blanks — interning the
    /// canonical encoding and resolving the ID back yields a string that
    /// decodes to the original term.
    #[test]
    fn round_trip_property_over_generated_terms() {
        let alphabets = ["ab", "héllo wörld", "日本語テキスト", "émoji 🦀 σ∑", "a\"b\\c\nd\te"];
        let mut rng = Rng(42);
        let mut dict = Dict::new();
        let mut terms: Vec<Term> = Vec::new();
        for i in 0..500 {
            let alpha: Vec<char> =
                alphabets[rng.next() as usize % alphabets.len()].chars().collect();
            let len = 1 + rng.next() as usize % 12;
            let s: String =
                (0..len).map(|_| alpha[rng.next() as usize % alpha.len()]).collect();
            let t = match rng.next() % 6 {
                0 => Term::iri(format!("http://example.org/{i}/{s}")),
                1 => Term::blank(format!("b{i}")),
                2 => Term::lit(s),
                3 => Term::lang_lit(s, "ja"),
                4 => Term::typed_lit(s, "http://example.org/dt"),
                _ => Term::int_lit(rng.next() as i64),
            };
            terms.push(t);
        }
        let ids: Vec<i64> = terms.iter().map(|t| dict.intern(&t.encode())).collect();
        for (t, id) in terms.iter().zip(&ids) {
            assert!(*id > 0);
            let enc = dict.resolve(*id).expect("interned id must resolve");
            assert_eq!(enc, t.encode(), "resolved encoding differs");
            assert_eq!(decode_term(enc).as_ref(), Some(t), "decode(resolve(id)) != term");
        }
        // Distinct terms got distinct IDs; equal terms collapsed.
        for (i, a) in terms.iter().enumerate() {
            for (j, b) in terms.iter().enumerate() {
                if ids[i] == ids[j] {
                    assert_eq!(a, b, "id collision between distinct terms");
                } else {
                    assert_ne!(a, b, "duplicate term got two ids");
                }
            }
        }
    }
}
