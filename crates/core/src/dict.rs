//! Term dictionary: canonical RDF term encodings ↔ dense integer IDs.
//!
//! Every RDF engine surveyed for the ROADMAP dictionary-encodes terms so the
//! relational layer joins, hashes and sorts 8-byte integers instead of string
//! bytes. Here terms are interned at load/insert time to IDs assigned densely
//! from 1 upward in first-appearance order, and the DPH/DS/RPH/RS tables
//! store only those IDs; lexical forms are materialized in
//! `results::decode_value` when rows become `Solutions`.
//!
//! ## Front-coded storage
//!
//! Canonical encodings share long prefixes — IRIs repeat namespaces
//! (`http://www.Department3.University0.edu/...`), typed literals repeat
//! datatype suffix-free prefixes — so storing every term verbatim (as two
//! `Arc<str>` copies, pre-PR 8) wastes most of the dictionary's footprint at
//! paper scale. Terms are now stored **front-coded** in insertion order:
//! each entry records the byte length of the prefix it shares with the
//! previous entry plus its fresh suffix, and every [`PAGE`]-th entry is a
//! full restart so resolving an ID decodes at most one page. Prefix lengths
//! are clamped to UTF-8 character boundaries, so every stored suffix is
//! itself valid UTF-8. The term → ID index keeps only a 64-bit hash per
//! entry (collisions are verified by decoding), so no second copy of the
//! lexical space exists.
//!
//! ## ID space
//!
//! * `0` is never assigned — a zero in a term column is corruption.
//! * Term IDs are **positive** (`1..=n`, dense, append-only).
//! * Multi-valued list IDs (lids) in DPH/RPH value cells are **negative**
//!   (`-1, -2, …`, see `loader::next_lid`), so a single-valued term ID can
//!   never accidentally equi-join against `ds.l_id`/`rs.l_id` through the
//!   `LEFT OUTER JOIN … COALESCE` fall-through path, and insert/delete logic
//!   can tell the two cell kinds apart by sign alone.
//!
//! ## Recovery invariant
//!
//! The dictionary persists as the `sys_dict` table, appended inside the same
//! WAL batch as the rows that introduced its entries (`RdfStore::persist_*`).
//! After any crash + replay, every ID stored in a data table has exactly one
//! `sys_dict` entry, and that entry carries the encoding the ID had when the
//! batch committed — an ID can never resolve to the wrong string, because
//! IDs are append-only and entries are immutable once written.

use std::collections::HashMap;
use std::hash::{BuildHasherDefault, Hasher};
use std::sync::{Arc, RwLock, RwLockReadGuard, RwLockWriteGuard};

/// Entries per front-coding restart: entry `i` stores a full term whenever
/// `i % PAGE == 0`, so resolving an ID decodes at most `PAGE` suffixes.
pub const PAGE: usize = 8;

/// Memory accounting for `/stats` and `BENCH_load.json`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct DictMemStats {
    /// Interned terms (highest assigned ID).
    pub entries: usize,
    /// Total bytes of all term encodings, uncompressed.
    pub raw_bytes: u64,
    /// Bytes actually held: front-coded suffix bytes + per-entry offsets.
    pub compressed_bytes: u64,
}

/// 64-bit FNV-1a with a SplitMix64 finalizer: the index key for a term. The
/// finalizer mixes FNV's weak low bits so the map can use the key directly
/// as its hash (see [`IdentityHasher`]).
fn term_hash(term: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in term.as_bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h = (h ^ (h >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    h = (h ^ (h >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    h ^ (h >> 31)
}

/// Pass-through hasher for keys that are already well-mixed 64-bit hashes.
#[derive(Default)]
struct IdentityHasher(u64);

impl Hasher for IdentityHasher {
    fn finish(&self) -> u64 {
        self.0
    }
    fn write(&mut self, _bytes: &[u8]) {
        unreachable!("IdentityHasher is only used with u64 keys")
    }
    fn write_u64(&mut self, n: u64) {
        self.0 = n;
    }
}

type HashIndex = HashMap<u64, i64, BuildHasherDefault<IdentityHasher>>;

/// An append-only intern table: canonical term encoding ↔ dense positive ID.
#[derive(Debug, Default)]
pub struct Dict {
    /// Concatenated front-coded suffix bytes, in insertion order.
    data: Vec<u8>,
    /// `offs[i]` is where entry `i`'s suffix starts in `data`; its end is
    /// the next entry's start (or `data.len()` for the last entry).
    offs: Vec<u64>,
    /// Shared-prefix length with the previous entry (0 at page restarts).
    lcps: Vec<u32>,
    /// term-hash → ID for the first entry with that hash; the rare extra
    /// IDs whose terms collide on the hash live in `collisions`.
    index: HashIndex,
    collisions: Vec<(u64, i64)>,
    /// The most recently appended term, cached so the next append can
    /// compute its shared prefix without decoding.
    last: String,
    raw_bytes: u64,
}

impl Dict {
    pub fn new() -> Dict {
        Dict::default()
    }

    /// Number of interned terms (also the highest assigned ID).
    pub fn len(&self) -> usize {
        self.offs.len()
    }

    pub fn is_empty(&self) -> bool {
        self.offs.is_empty()
    }

    /// Memory accounting: entries, raw vs front-coded bytes.
    pub fn mem_stats(&self) -> DictMemStats {
        DictMemStats {
            entries: self.len(),
            raw_bytes: self.raw_bytes,
            compressed_bytes: self.data.len() as u64 + (self.len() * 12) as u64,
        }
    }

    /// Intern a canonical encoding, returning its ID (new or existing).
    pub fn intern(&mut self, term: &str) -> i64 {
        let h = term_hash(term);
        if let Some(id) = self.find(h, term) {
            return id;
        }
        let id = self.append(term);
        match self.index.entry(h) {
            std::collections::hash_map::Entry::Vacant(v) => {
                v.insert(id);
            }
            std::collections::hash_map::Entry::Occupied(_) => self.collisions.push((h, id)),
        }
        id
    }

    /// Look up the ID of an encoding without interning it.
    pub fn lookup(&self, term: &str) -> Option<i64> {
        self.find(term_hash(term), term)
    }

    fn find(&self, h: u64, term: &str) -> Option<i64> {
        if let Some(&id) = self.index.get(&h) {
            if self.entry_eq(id, term) {
                return Some(id);
            }
            return self
                .collisions
                .iter()
                .filter(|&&(ch, _)| ch == h)
                .map(|&(_, cid)| cid)
                .find(|&cid| self.entry_eq(cid, term));
        }
        None
    }

    fn entry_eq(&self, id: i64, term: &str) -> bool {
        // Cheap length gate before decoding: suffix lengths alone bound the
        // decoded length from below only, so compare decoded bytes.
        let mut buf = String::new();
        self.decode_into(id as usize - 1, &mut buf);
        buf == term
    }

    /// Resolve an ID back to its encoding. Negative and zero IDs (lids,
    /// corruption) resolve to nothing.
    pub fn resolve(&self, id: i64) -> Option<String> {
        let mut out = String::new();
        self.resolve_into(id, &mut out).then_some(out)
    }

    /// Resolve an ID into a caller-provided buffer (cleared first), so hot
    /// loops can reuse one allocation. Returns `false` for unknown IDs.
    pub fn resolve_into(&self, id: i64, out: &mut String) -> bool {
        out.clear();
        if id < 1 || id as usize > self.len() {
            return false;
        }
        self.decode_into(id as usize - 1, out);
        true
    }

    /// Decode entry `i` (0-based) by replaying its page from the restart.
    fn decode_into(&self, i: usize, out: &mut String) {
        let start = i - i % PAGE;
        out.push_str(self.suffix(start));
        for k in start + 1..=i {
            out.truncate(self.lcps[k] as usize);
            out.push_str(self.suffix(k));
        }
    }

    fn suffix(&self, i: usize) -> &str {
        let lo = self.offs[i] as usize;
        let hi = self.offs.get(i + 1).map(|&o| o as usize).unwrap_or(self.data.len());
        std::str::from_utf8(&self.data[lo..hi]).expect("front-coded suffix is valid UTF-8")
    }

    /// Append a new entry, returning its ID. Does not touch the hash index.
    fn append(&mut self, term: &str) -> i64 {
        let i = self.len();
        let lcp = if i.is_multiple_of(PAGE) { 0 } else { char_lcp(&self.last, term) };
        self.offs.push(self.data.len() as u64);
        self.lcps.push(lcp as u32);
        self.data.extend_from_slice(&term.as_bytes()[lcp..]);
        self.raw_bytes += term.len() as u64;
        self.last.clear();
        self.last.push_str(term);
        (i + 1) as i64
    }

    /// Entries with IDs above `watermark`, in ID order — the tail that a
    /// persistence pass has not yet written out.
    pub fn entries_from(&self, watermark: usize) -> impl Iterator<Item = (i64, String)> + '_ {
        let mut buf = String::new();
        (watermark..self.len()).map(move |i| {
            // Sequential decode: each entry extends the previous one, so
            // replay the front-coding incrementally instead of per-page.
            if i % PAGE == 0 || buf.is_empty() {
                buf.clear();
                self.decode_into(i, &mut buf);
            } else {
                buf.truncate(self.lcps[i] as usize);
                buf.push_str(self.suffix(i));
            }
            (i as i64 + 1, buf.clone())
        })
    }

    /// Restore one entry from storage. Entries must arrive in ID order with
    /// no gaps (`sys_dict` is written append-only, so a sorted scan of it
    /// satisfies this); anything else is corruption.
    pub fn restore(&mut self, id: i64, term: &str) -> std::result::Result<(), String> {
        if id != self.len() as i64 + 1 {
            return Err(format!("sys_dict gap: expected id {}, found {id}", self.len() + 1));
        }
        let h = term_hash(term);
        if self.find(h, term).is_some() {
            return Err(format!("sys_dict duplicate term for id {id}"));
        }
        let got = self.append(term);
        debug_assert_eq!(got, id);
        match self.index.entry(h) {
            std::collections::hash_map::Entry::Vacant(v) => {
                v.insert(id);
            }
            std::collections::hash_map::Entry::Occupied(_) => self.collisions.push((h, id)),
        }
        Ok(())
    }
}

/// Byte length of the longest common prefix of `a` and `b` that ends on a
/// character boundary of both (equal bytes ⇒ a boundary of one is a boundary
/// of the other). Shared with the `sys_dict` page codec in `persist`.
pub(crate) fn char_lcp(a: &str, b: &str) -> usize {
    let mut n = a.as_bytes().iter().zip(b.as_bytes()).take_while(|(x, y)| x == y).count();
    while !b.is_char_boundary(n) {
        n -= 1;
    }
    n
}

/// A dictionary shared between the store (which interns during load/insert)
/// and the registered `RDF_*` scalar functions (which resolve IDs during
/// query execution, possibly from several worker threads at once). The dict
/// is append-only, so an ID never remaps while the process lives.
#[derive(Debug, Clone, Default)]
pub struct SharedDict(Arc<RwLock<Dict>>);

impl SharedDict {
    pub fn new() -> SharedDict {
        SharedDict::default()
    }

    pub fn read(&self) -> RwLockReadGuard<'_, Dict> {
        self.0.read().unwrap_or_else(|e| e.into_inner())
    }

    pub fn write(&self) -> RwLockWriteGuard<'_, Dict> {
        self.0.write().unwrap_or_else(|e| e.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rdf::{decode_term, Term};

    #[test]
    fn intern_is_idempotent_and_dense() {
        let mut d = Dict::new();
        let a = d.intern("<http://a>");
        let b = d.intern("<http://b>");
        assert_eq!((a, b), (1, 2));
        assert_eq!(d.intern("<http://a>"), 1);
        assert_eq!(d.len(), 2);
        assert_eq!(d.lookup("<http://b>"), Some(2));
        assert_eq!(d.lookup("<http://c>"), None);
        assert_eq!(d.resolve(1).as_deref(), Some("<http://a>"));
        assert_eq!(d.resolve(0), None);
        assert_eq!(d.resolve(-1), None);
        assert_eq!(d.resolve(3), None);
    }

    #[test]
    fn restore_rejects_gaps_and_duplicates() {
        let mut d = Dict::new();
        d.restore(1, "<a>").unwrap();
        assert!(d.restore(3, "<c>").is_err());
        assert!(d.restore(2, "<a>").is_err());
        d.restore(2, "<b>").unwrap();
        assert_eq!(d.resolve(2).as_deref(), Some("<b>"));
    }

    #[test]
    fn front_coding_actually_shares_prefixes() {
        let mut d = Dict::new();
        for i in 0..1000 {
            d.intern(&format!("<http://www.Department3.University0.edu/Student{i}>"));
        }
        let stats = d.mem_stats();
        assert_eq!(stats.entries, 1000);
        assert!(
            stats.compressed_bytes < stats.raw_bytes / 2,
            "front-coding saved too little: {} vs {} raw",
            stats.compressed_bytes,
            stats.raw_bytes
        );
    }

    /// Deterministic PRNG (SplitMix64) — the workspace builds offline, so no
    /// external property-testing crate; this generates the term corpus.
    struct Rng(u64);
    impl Rng {
        fn next(&mut self) -> u64 {
            self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.0;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    fn generated_terms(seed: u64, n: usize) -> Vec<Term> {
        let alphabets = ["ab", "héllo wörld", "日本語テキスト", "émoji 🦀 σ∑", "a\"b\\c\nd\te"];
        let mut rng = Rng(seed);
        (0..n)
            .map(|i| {
                let alpha: Vec<char> =
                    alphabets[rng.next() as usize % alphabets.len()].chars().collect();
                let len = 1 + rng.next() as usize % 12;
                let s: String =
                    (0..len).map(|_| alpha[rng.next() as usize % alpha.len()]).collect();
                match rng.next() % 6 {
                    0 => Term::iri(format!("http://example.org/{i}/{s}")),
                    1 => Term::blank(format!("b{i}")),
                    2 => Term::lit(s),
                    3 => Term::lang_lit(s, "ja"),
                    4 => Term::typed_lit(s, "http://example.org/dt"),
                    _ => Term::int_lit(rng.next() as i64),
                }
            })
            .collect()
    }

    /// Round-trip property: for generated terms — IRIs, plain/lang/typed
    /// literals with multi-byte UTF-8, escapes and blanks — interning the
    /// canonical encoding and resolving the ID back through the front-coded
    /// pages yields a string that decodes to the original term.
    #[test]
    fn round_trip_property_over_generated_terms() {
        let mut dict = Dict::new();
        let terms = generated_terms(42, 500);
        let ids: Vec<i64> = terms.iter().map(|t| dict.intern(&t.encode())).collect();
        for (t, id) in terms.iter().zip(&ids) {
            assert!(*id > 0);
            let enc = dict.resolve(*id).expect("interned id must resolve");
            assert_eq!(enc, t.encode(), "resolved encoding differs");
            assert_eq!(decode_term(&enc).as_ref(), Some(t), "decode(resolve(id)) != term");
        }
        // Distinct terms got distinct IDs; equal terms collapsed.
        for (i, a) in terms.iter().enumerate() {
            for (j, b) in terms.iter().enumerate() {
                if ids[i] == ids[j] {
                    assert_eq!(a, b, "id collision between distinct terms");
                } else {
                    assert_ne!(a, b, "duplicate term got two ids");
                }
            }
        }
    }

    /// Restore property: replaying `entries_from(0)` into a fresh dict (the
    /// recovery path) reproduces IDs, lookups, and resolutions exactly.
    #[test]
    fn restore_property_reproduces_dict() {
        for seed in [7u64, 99, 4242] {
            let mut dict = Dict::new();
            for t in generated_terms(seed, 300) {
                dict.intern(&t.encode());
            }
            let mut restored = Dict::new();
            for (id, term) in dict.entries_from(0) {
                restored.restore(id, &term).unwrap();
            }
            assert_eq!(restored.len(), dict.len());
            for id in 1..=dict.len() as i64 {
                let term = dict.resolve(id).unwrap();
                assert_eq!(restored.resolve(id).as_deref(), Some(term.as_str()));
                assert_eq!(restored.lookup(&term), Some(id));
            }
            assert_eq!(restored.mem_stats(), dict.mem_stats());
        }
    }

    /// Multi-byte characters straddling a shared prefix must clamp the
    /// prefix length to a character boundary.
    #[test]
    fn lcp_respects_char_boundaries() {
        let mut d = Dict::new();
        // "日本語" and "日本酒" share 6 bytes ("日本") then diverge mid-
        // sequence at byte 7 of the 3-byte third character.
        let a = d.intern("\"日本語\"");
        let b = d.intern("\"日本酒\"");
        assert_eq!(d.resolve(a).as_deref(), Some("\"日本語\""));
        assert_eq!(d.resolve(b).as_deref(), Some("\"日本酒\""));
    }

    #[test]
    fn entries_from_watermark_matches_resolve() {
        let mut d = Dict::new();
        for i in 0..50 {
            d.intern(&format!("<http://e/{i}>"));
        }
        let tail: Vec<(i64, String)> = d.entries_from(17).collect();
        assert_eq!(tail.len(), 33);
        for (id, term) in tail {
            assert_eq!(d.resolve(id), Some(term));
        }
    }
}
