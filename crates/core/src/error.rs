use std::fmt;

/// Errors surfaced by the RDF store.
#[derive(Debug, Clone, PartialEq)]
pub enum StoreError {
    /// SPARQL parse failure.
    Sparql(sparql::SparqlError),
    /// Relational back-end failure (including the row-budget "timeout").
    Sql(relstore::Error),
    /// Query shape not supported by the selected layout/translator.
    Unsupported(String),
}

impl StoreError {
    /// True when the error is the evaluation-budget guard or the wall-clock
    /// deadline — the analogues of the paper's 10-minute query timeout.
    pub fn is_timeout(&self) -> bool {
        matches!(
            self,
            StoreError::Sql(relstore::Error::LimitExceeded)
                | StoreError::Sql(relstore::Error::Timeout)
        )
    }

    /// True when a mutation was refused because the durability layer
    /// degraded to read-only after an I/O failure. The server maps this to
    /// `503 Service Unavailable` with a `Retry-After` header.
    pub fn is_read_only(&self) -> bool {
        matches!(self, StoreError::Sql(relstore::Error::ReadOnly))
    }
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::Sparql(e) => write!(f, "{e}"),
            StoreError::Sql(e) => write!(f, "{e}"),
            StoreError::Unsupported(m) => write!(f, "unsupported query: {m}"),
        }
    }
}

impl std::error::Error for StoreError {}

impl From<sparql::SparqlError> for StoreError {
    fn from(e: sparql::SparqlError) -> Self {
        StoreError::Sparql(e)
    }
}

impl From<relstore::Error> for StoreError {
    fn from(e: relstore::Error) -> Self {
        StoreError::Sql(e)
    }
}

pub type Result<T> = std::result::Result<T, StoreError>;
