//! Predicate-to-column assignment by interference-graph coloring (paper
//! §2.2, Defs. 2.3 and the `c(D⊗P, m)` subset construction).
//!
//! Two predicates *interfere* when they co-occur on some entity; interfering
//! predicates must live in different columns or they force spill rows. A
//! greedy coloring (largest-degree-first, the classic Welsh–Powell order —
//! the paper calls its greedy approximation "Floyd-Warshall") assigns each
//! predicate one column. When the data needs more than `m` colors (DBpedia),
//! the most frequent predicates covering the bulk of the data are colored
//! with `m - 1` colors and the tail is composed with a hash function.

use std::collections::{HashMap, HashSet};

/// Interference graph over predicates.
#[derive(Debug, Default, Clone)]
pub struct InterferenceGraph {
    /// Predicate → dense node id.
    ids: HashMap<String, usize>,
    names: Vec<String>,
    adj: Vec<HashSet<usize>>,
    /// Number of triples per predicate (used to pick the colored subset).
    freq: Vec<u64>,
}

impl InterferenceGraph {
    pub fn new() -> Self {
        Self::default()
    }

    fn node(&mut self, p: &str) -> usize {
        if let Some(&i) = self.ids.get(p) {
            return i;
        }
        let i = self.names.len();
        self.ids.insert(p.to_string(), i);
        self.names.push(p.to_string());
        self.adj.push(HashSet::new());
        self.freq.push(0);
        i
    }

    /// Record one entity's predicate set (with per-predicate triple counts):
    /// every pair of co-occurring predicates interferes.
    pub fn add_entity<'a>(&mut self, preds: impl IntoIterator<Item = (&'a str, u64)>) {
        let nodes: Vec<usize> = preds
            .into_iter()
            .map(|(p, n)| {
                let i = self.node(p);
                self.freq[i] += n;
                i
            })
            .collect();
        for (k, &a) in nodes.iter().enumerate() {
            for &b in &nodes[k + 1..] {
                if a != b {
                    self.adj[a].insert(b);
                    self.adj[b].insert(a);
                }
            }
        }
    }

    pub fn predicate_count(&self) -> usize {
        self.names.len()
    }

    pub fn edge_count(&self) -> usize {
        self.adj.iter().map(HashSet::len).sum::<usize>() / 2
    }

    /// Greedy coloring in descending-degree order. Always succeeds; the
    /// number of colors used is at most max-degree + 1.
    pub fn color(&self) -> Coloring {
        let n = self.names.len();
        let mut order: Vec<usize> = (0..n).collect();
        order.sort_by_key(|&i| (std::cmp::Reverse(self.adj[i].len()), i));
        let mut color = vec![usize::MAX; n];
        let mut max_color = 0usize;
        for &i in &order {
            let used: HashSet<usize> =
                self.adj[i].iter().filter_map(|&j| (color[j] != usize::MAX).then_some(color[j])).collect();
            let mut c = 0;
            while used.contains(&c) {
                c += 1;
            }
            color[i] = c;
            max_color = max_color.max(c + 1);
        }
        Coloring {
            assignment: self
                .names
                .iter()
                .enumerate()
                .map(|(i, p)| (p.clone(), color[i]))
                .collect(),
            colors_used: max_color,
        }
    }

    /// Color at most `m` columns. When the full greedy coloring fits in `m`,
    /// every predicate is covered. Otherwise predicates are dropped from the
    /// colored subset in ascending frequency order until the remainder can be
    /// colored with `m - 1` colors (the last "column budget" is left to the
    /// composed hash tail, per the paper's `c(D⊗P,m) ⊕ h(m)` construction).
    pub fn color_bounded(&self, m: usize) -> BoundedColoring {
        assert!(m >= 2, "need at least two columns to bound a coloring");
        let full = self.color();
        if full.colors_used <= m {
            let covered_triples: u64 = self.freq.iter().sum();
            return BoundedColoring {
                assignment: full.assignment,
                colors_used: full.colors_used,
                uncolored: Vec::new(),
                covered_triples,
                total_triples: covered_triples,
            };
        }
        // Drop least-frequent predicates until the induced subgraph colors
        // with m - 1 colors.
        let mut by_freq: Vec<usize> = (0..self.names.len()).collect();
        by_freq.sort_by_key(|&i| (self.freq[i], std::cmp::Reverse(self.adj[i].len())));
        let mut dropped: HashSet<usize> = HashSet::new();
        let mut drop_iter = by_freq.into_iter();
        loop {
            let sub = self.induced_coloring(&dropped, m - 1);
            if let Some(coloring) = sub {
                let covered_triples: u64 = (0..self.names.len())
                    .filter(|i| !dropped.contains(i))
                    .map(|i| self.freq[i])
                    .sum();
                let total_triples: u64 = self.freq.iter().sum();
                return BoundedColoring {
                    colors_used: coloring.colors_used,
                    assignment: coloring.assignment,
                    uncolored: dropped.iter().map(|&i| self.names[i].clone()).collect(),
                    covered_triples,
                    total_triples,
                };
            }
            match drop_iter.next() {
                Some(i) => {
                    dropped.insert(i);
                }
                None => unreachable!("empty graph always colors"),
            }
        }
    }

    /// Greedy-color the subgraph without `dropped`; `None` if it needs more
    /// than `max_colors`.
    fn induced_coloring(&self, dropped: &HashSet<usize>, max_colors: usize) -> Option<Coloring> {
        let n = self.names.len();
        let mut order: Vec<usize> = (0..n).filter(|i| !dropped.contains(i)).collect();
        order.sort_by_key(|&i| (std::cmp::Reverse(self.adj[i].len()), i));
        let mut color = vec![usize::MAX; n];
        let mut max_used = 0usize;
        for &i in &order {
            let used: HashSet<usize> = self.adj[i]
                .iter()
                .filter(|j| !dropped.contains(j))
                .filter_map(|&j| (color[j] != usize::MAX).then_some(color[j]))
                .collect();
            let mut c = 0;
            while used.contains(&c) {
                c += 1;
            }
            if c >= max_colors {
                return None;
            }
            color[i] = c;
            max_used = max_used.max(c + 1);
        }
        Some(Coloring {
            assignment: order.iter().map(|&i| (self.names[i].clone(), color[i])).collect(),
            colors_used: max_used,
        })
    }
}

/// A complete coloring: predicate → column.
#[derive(Debug, Clone)]
pub struct Coloring {
    pub assignment: HashMap<String, usize>,
    pub colors_used: usize,
}

/// A bounded coloring with a possibly-uncolored tail (handled by hashing).
#[derive(Debug, Clone)]
pub struct BoundedColoring {
    pub assignment: HashMap<String, usize>,
    pub colors_used: usize,
    /// Predicates left to the hash tail.
    pub uncolored: Vec<String>,
    /// Triples whose predicate is colored.
    pub covered_triples: u64,
    pub total_triples: u64,
}

impl BoundedColoring {
    /// Fraction of triples covered by the coloring (Table 4's "Percent
    /// Covered").
    pub fn coverage(&self) -> f64 {
        if self.total_triples == 0 {
            1.0
        } else {
            self.covered_triples as f64 / self.total_triples as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The paper's Fig. 1(a)/Fig. 4 running example.
    fn running_example() -> InterferenceGraph {
        let mut g = InterferenceGraph::new();
        g.add_entity([("died", 1), ("born", 1), ("founder", 1)]);
        g.add_entity([("born", 1), ("founder", 1), ("board", 1), ("home", 1)]);
        g.add_entity([
            ("developer", 1),
            ("version", 1),
            ("kernel", 1),
            ("preceded", 1),
            ("graphics", 1),
        ]);
        g.add_entity([("industry", 2), ("employees", 1), ("headquarters", 1)]);
        g.add_entity([("industry", 3), ("employees", 1), ("headquarters", 1)]);
        g
    }

    fn assert_proper(g: &InterferenceGraph, assignment: &HashMap<String, usize>) {
        for (p, &i) in &g.ids {
            for &j in &g.adj[i] {
                let q = &g.names[j];
                if let (Some(&cp), Some(&cq)) = (assignment.get(p), assignment.get(q)) {
                    assert_ne!(cp, cq, "{p} and {q} interfere but share column {cp}");
                }
            }
        }
    }

    #[test]
    fn running_example_colors_with_five_columns() {
        // Paper Fig. 4: "for the 13 predicates, we only need 5 colors."
        let g = running_example();
        assert_eq!(g.predicate_count(), 13);
        let c = g.color();
        assert_proper(&g, &c.assignment);
        assert_eq!(c.colors_used, 5);
    }

    #[test]
    fn board_and_died_may_share_a_color() {
        // They never co-occur, so nothing forces them apart; at minimum the
        // coloring must be proper.
        let g = running_example();
        let c = g.color();
        assert_proper(&g, &c.assignment);
    }

    #[test]
    fn bounded_coloring_full_coverage_when_it_fits() {
        let g = running_example();
        let b = g.color_bounded(10);
        assert_eq!(b.uncolored.len(), 0);
        assert!((b.coverage() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn bounded_coloring_drops_rare_predicates_first() {
        // A clique of 5 predicates cannot fit 4 columns (3 colors + hash
        // tail); the two rarest must fall to the hash tail.
        let mut g = InterferenceGraph::new();
        g.add_entity([
            ("common1", 100),
            ("common2", 100),
            ("common3", 100),
            ("rare1", 1),
            ("rare2", 1),
        ]);
        let b = g.color_bounded(4);
        assert_proper(&g, &b.assignment);
        assert!(b.colors_used <= 3);
        assert!(b.uncolored.contains(&"rare1".to_string()));
        assert!(b.uncolored.contains(&"rare2".to_string()));
        assert!(!b.uncolored.iter().any(|p| p.starts_with("common")));
        assert!(b.coverage() > 0.98);
    }

    #[test]
    fn disjoint_entities_share_columns() {
        let mut g = InterferenceGraph::new();
        g.add_entity([("a", 1), ("b", 1)]);
        g.add_entity([("c", 1), ("d", 1)]);
        let c = g.color();
        assert_eq!(c.colors_used, 2, "two disjoint pairs need only two columns");
    }

    #[test]
    fn empty_graph() {
        let g = InterferenceGraph::new();
        let c = g.color();
        assert_eq!(c.colors_used, 0);
        let b = g.color_bounded(4);
        assert_eq!(b.colors_used, 0);
        assert!((b.coverage() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn self_loops_never_created() {
        let mut g = InterferenceGraph::new();
        // same predicate twice for one entity (multi-valued)
        g.add_entity([("p", 1), ("p", 1)]);
        assert_eq!(g.edge_count(), 0);
    }
}
