//! Predicate mapping by hash-function composition (paper Def. 2.1/2.2).
//!
//! When no data sample is available, predicates map to columns through `n`
//! independent string hashes restricted to the column range: the first hash
//! gives the preferred column, later hashes give fallbacks that reduce
//! assignment conflicts (and therefore spills).

/// One seeded FNV-1a string hash restricted to `[0, m)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HashFn {
    seed: u64,
    m: usize,
}

impl HashFn {
    pub fn new(seed: u64, m: usize) -> Self {
        assert!(m > 0, "hash range must be non-empty");
        HashFn { seed, m }
    }

    pub fn apply(&self, s: &str) -> usize {
        let mut h = 0xcbf29ce484222325u64 ^ self.seed.wrapping_mul(0x9e3779b97f4a7c15);
        for b in s.as_bytes() {
            h ^= u64::from(*b);
            h = h.wrapping_mul(0x100000001b3);
        }
        // final avalanche to decorrelate seeds
        h ^= h >> 33;
        h = h.wrapping_mul(0xff51afd7ed558ccd);
        h ^= h >> 33;
        (h % self.m as u64) as usize
    }
}

/// A composition `h1 ⊕ h2 ⊕ ... ⊕ hn`: the candidate column sequence for a
/// predicate (duplicates removed, order preserved).
#[derive(Debug, Clone)]
pub struct HashComposition {
    fns: Vec<HashFn>,
}

impl HashComposition {
    /// `n` independent hash functions over `m` columns.
    pub fn new(n: usize, m: usize) -> Self {
        assert!(n > 0);
        HashComposition { fns: (0..n).map(|i| HashFn::new(0x5eed + i as u64, m)).collect() }
    }

    pub fn candidates(&self, predicate: &str) -> Vec<usize> {
        let mut out = Vec::with_capacity(self.fns.len());
        for f in &self.fns {
            let c = f.apply(predicate);
            if !out.contains(&c) {
                out.push(c);
            }
        }
        out
    }

    pub fn range(&self) -> usize {
        self.fns[0].m
    }

    /// Number of composed hash functions. Together with [`range`], this
    /// fully determines the composition (seeds are fixed), which is what
    /// lets a persisted layout rebuild it from two integers.
    ///
    /// [`range`]: HashComposition::range
    pub fn fn_count(&self) -> usize {
        self.fns.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_and_in_range() {
        let h = HashFn::new(7, 10);
        for p in ["born", "died", "founder", "industry"] {
            let c = h.apply(p);
            assert!(c < 10);
            assert_eq!(c, h.apply(p));
        }
    }

    #[test]
    fn different_seeds_differ_somewhere() {
        let a = HashFn::new(1, 50);
        let b = HashFn::new(2, 50);
        let preds: Vec<String> = (0..100).map(|i| format!("pred{i}")).collect();
        assert!(preds.iter().any(|p| a.apply(p) != b.apply(p)));
    }

    #[test]
    fn composition_dedupes_and_preserves_order() {
        let comp = HashComposition::new(3, 8);
        for p in ["alpha", "beta", "gamma"] {
            let cs = comp.candidates(p);
            assert!(!cs.is_empty() && cs.len() <= 3);
            let mut sorted = cs.clone();
            sorted.dedup();
            assert_eq!(sorted.len(), cs.len(), "no duplicates");
            assert!(cs.iter().all(|&c| c < 8));
        }
    }

    #[test]
    fn composition_reduces_conflicts_like_table3() {
        // Mirror of the paper's Table 3 walk-through: with two hash functions
        // a second candidate column resolves first-choice collisions.
        let comp = HashComposition::new(2, 5);
        let preds = ["developer", "version", "kernel", "preceded", "graphics"];
        // Simulate inserting all predicates for one subject.
        let mut occupied = [false; 5];
        let mut spills = 0;
        for p in preds {
            let mut placed = false;
            for c in comp.candidates(p) {
                if !occupied[c] {
                    occupied[c] = true;
                    placed = true;
                    break;
                }
            }
            if !placed {
                spills += 1;
            }
        }
        // 5 predicates into 5 columns with 2 hashes: at most a couple spill.
        assert!(spills <= 2, "unexpected spill count {spills}");
    }
}
