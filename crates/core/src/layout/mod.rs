//! Predicate-to-column assignment (paper §2.2).

pub mod coloring;
pub mod hashing;

use std::collections::{HashMap, HashSet};

pub use coloring::{BoundedColoring, Coloring, InterferenceGraph};
pub use hashing::{HashComposition, HashFn};

/// A concrete predicate mapping: either pure hashing (no data sample) or a
/// coloring composed with a hash tail (`c(D⊗P,m) ⊕ h(m)`).
#[derive(Debug, Clone)]
pub enum PredMapping {
    Hashed(HashComposition),
    Colored {
        colors: HashMap<String, usize>,
        /// Hash tail over the full column range, used for predicates outside
        /// the colored subset (including predicates first seen after load).
        tail: HashComposition,
    },
}

impl PredMapping {
    /// Candidate column sequence for a predicate (canonical string); the
    /// loader tries them in order, the translator checks all of them.
    pub fn candidates(&self, predicate: &str) -> Vec<usize> {
        match self {
            PredMapping::Hashed(h) => h.candidates(predicate),
            PredMapping::Colored { colors, tail } => match colors.get(predicate) {
                Some(&c) => vec![c],
                None => tail.candidates(predicate),
            },
        }
    }

    /// Number of physical predicate/value column pairs needed.
    pub fn column_count(&self) -> usize {
        match self {
            PredMapping::Hashed(h) => h.range(),
            PredMapping::Colored { colors, tail } => {
                let colored_max = colors.values().max().map(|&c| c + 1).unwrap_or(0);
                colored_max.max(tail.range())
            }
        }
    }
}

/// Everything the translator needs to know about one side (direct =
/// outgoing/DPH, reverse = incoming/RPH) of the entity layout.
#[derive(Debug, Clone)]
pub struct SideLayout {
    pub mapping: PredMapping,
    /// Physical predicate/value column pairs in the table.
    pub ncols: usize,
    /// Predicates (canonical) with at least one multi-valued instance on
    /// this side; their accesses require the DS/RS secondary join.
    pub multivalued: HashSet<String>,
    /// Predicates involved in spills on this side (veto star merging).
    pub spill_preds: HashSet<String>,
}

impl SideLayout {
    pub fn candidates(&self, predicate: &str) -> Vec<usize> {
        self.mapping
            .candidates(predicate)
            .into_iter()
            .filter(|&c| c < self.ncols)
            .collect()
    }

    pub fn is_multivalued(&self, predicate: &str) -> bool {
        self.multivalued.contains(predicate)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn colored_mapping_prefers_color_then_tail() {
        let mut colors = HashMap::new();
        colors.insert("<p>".to_string(), 3);
        let m = PredMapping::Colored { colors, tail: HashComposition::new(2, 8) };
        assert_eq!(m.candidates("<p>"), vec![3]);
        let tail_cand = m.candidates("<unknown>");
        assert!(!tail_cand.is_empty());
        assert!(tail_cand.iter().all(|&c| c < 8));
        assert_eq!(m.column_count(), 8);
    }

    #[test]
    fn column_count_covers_colored_range() {
        let mut colors = HashMap::new();
        colors.insert("<p>".to_string(), 11);
        let m = PredMapping::Colored { colors, tail: HashComposition::new(1, 4) };
        assert_eq!(m.column_count(), 12);
    }

    #[test]
    fn side_layout_filters_out_of_range_candidates() {
        let mut colors = HashMap::new();
        colors.insert("<p>".to_string(), 9);
        let layout = SideLayout {
            mapping: PredMapping::Colored { colors, tail: HashComposition::new(1, 4) },
            ncols: 4,
            multivalued: HashSet::new(),
            spill_preds: HashSet::new(),
        };
        assert!(layout.candidates("<p>").is_empty());
        assert!(layout.candidates("<q>").iter().all(|&c| c < 4));
    }
}
