//! `db2rdf` — a complete reproduction of the SIGMOD'13 paper *"Building an
//! Efficient RDF Store Over a Relational Database"* (Bornea et al.).
//!
//! The crate implements the paper's entity-oriented relational RDF schema
//! (DPH/DS/RPH/RS with spills and multi-valued lids — §2.1), predicate-to-
//! column assignment by hash composition and interference-graph coloring
//! (§2.2), dataset statistics, the hybrid SPARQL optimizer (data-flow graph,
//! greedy optimal flow tree, execution-tree builder with late fusing —
//! §3.1), star merging (§3.2.1), SPARQL→SQL translation with CTE templates
//! (§3.2.2), and the two baseline layouts of §2 (triple-store and
//! predicate-oriented vertical partitioning) over the same embedded
//! relational engine.
//!
//! ```
//! use db2rdf::{RdfStore, StoreConfig};
//! use rdf::{Term, Triple};
//!
//! let mut store = RdfStore::entity();
//! store.load(&[
//!     Triple::new(Term::iri("e:Page"), Term::iri("e:founder"), Term::iri("e:Google")),
//!     Triple::new(Term::iri("e:Page"), Term::iri("e:home"), Term::lit("Palo Alto")),
//! ]).unwrap();
//! let sols = store.query("SELECT ?who WHERE { ?who <e:home> 'Palo Alto' }").unwrap();
//! assert_eq!(sols.len(), 1);
//! ```

pub mod baseline;
pub mod dict;
mod error;
pub mod layout;
pub mod loader;
pub mod naive;
pub mod optimizer;
pub mod oracle;
pub mod persist;
pub mod plancache;
pub mod results;
pub mod shared;
pub mod stats;
mod store;
pub mod translate;
pub mod update;

pub use dict::{Dict, DictMemStats, SharedDict};
pub use error::{Result, StoreError};
pub use loader::{ColoringMode, EntityConfig, LoadReport};
pub use optimizer::OptimizerMode;
pub use plancache::{CachedPlan, PlanCache, PlanCacheStats};
pub use results::Solutions;
pub use shared::{SharedStore, UpdateStats, WriteGuard, BATCH_BUCKETS, BATCH_BUCKET_LABELS};
pub use stats::Stats;
pub use store::{
    layout_name, BulkLoadOptions, BulkLoadStats, Explanation, Layout, RdfStore, StoreConfig,
};
pub use update::UpdateOutcome;
