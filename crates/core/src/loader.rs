//! Bulk loading and incremental insertion into the DB2RDF schema (§2.1):
//! the DPH/DS (direct) and RPH/RS (reverse) relations, predicate-to-column
//! assignment, spill rows, and multi-valued lids.

use std::collections::{HashMap, HashSet};
use std::sync::Arc;

use rdf::Triple;
use relstore::{Database, IndexKind, SqlType, TableSchema, Value};

use crate::dict::Dict;
use crate::layout::{HashComposition, InterferenceGraph, PredMapping, SideLayout};

/// How predicates are assigned to columns at bulk load (§2.2).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ColoringMode {
    /// No data sample assumed: composed hashing only.
    HashOnly,
    /// Color the full dataset's interference graph.
    Full,
    /// Color a random sample of entities (the paper's 10% experiment);
    /// the value is the sample fraction in (0, 1].
    Sample(f64),
}

/// Loader configuration for the entity layout.
#[derive(Debug, Clone)]
pub struct EntityConfig {
    /// Maximum predicate/value column pairs per table (the paper's `m`).
    pub max_cols: usize,
    /// Number of composed hash functions.
    pub hash_fns: usize,
    pub coloring: ColoringMode,
}

impl Default for EntityConfig {
    fn default() -> Self {
        EntityConfig { max_cols: 100, hash_fns: 2, coloring: ColoringMode::Full }
    }
}

/// Load-time report: the quantities Table 4 and §2.3 of the paper discuss.
#[derive(Debug, Clone, Default)]
pub struct LoadReport {
    pub triples: u64,
    pub dph_rows: u64,
    pub rph_rows: u64,
    /// Rows beyond the first for some entity (spill tuples).
    pub dph_spill_rows: u64,
    pub rph_spill_rows: u64,
    /// Predicate/value column pairs in each table.
    pub dph_cols: usize,
    pub rph_cols: usize,
    /// Distinct predicates seen on each side.
    pub predicates: usize,
    /// Fraction of triples whose predicate was covered by coloring.
    pub dph_coverage: f64,
    pub rph_coverage: f64,
    /// NULL fraction of the predicate/value cells.
    pub dph_null_fraction: f64,
    pub rph_null_fraction: f64,
    /// Approximate storage footprint of DPH+DS+RPH+RS (value-compressed).
    pub storage_bytes: u64,
}

/// One packed hash-table cell: the predicate that landed in the column and
/// its value (`None` for an empty column). The build state keeps canonical
/// strings — the layout (candidates, multivalued, spill_preds) is keyed on
/// them — and `insert_side` interns them to dictionary IDs at table-write
/// time; a `Value::Int` here is already a (negative) lid.
type Cell = Option<(Arc<str>, Value)>;

/// One side's in-memory build state before table insertion.
struct SideBuild {
    layout: SideLayout,
    /// Rows: entry, spill flag, and one cell per column.
    rows: Vec<(Arc<str>, bool, Vec<Cell>)>,
    secondary: Vec<(i64, Arc<str>)>,
    spill_rows: u64,
    covered_triples: u64,
    total_triples: u64,
}

/// (pred, value) pairs attached to one entity.
type PredVals = Vec<(Arc<str>, Arc<str>)>;

/// Encode and group triples by entity for one side.
/// Returns entities in first-appearance order with their (pred, value) lists.
type Grouped = Vec<(Arc<str>, PredVals)>;

fn group_by<'a>(
    triples: impl Iterator<Item = &'a Triple>,
    direct: bool,
) -> Grouped {
    let mut order: Vec<Arc<str>> = Vec::new();
    let mut map: HashMap<Arc<str>, PredVals> = HashMap::new();
    for t in triples {
        let (entity, value) = if direct {
            (t.subject.encode(), t.object.encode())
        } else {
            (t.object.encode(), t.subject.encode())
        };
        let entity: Arc<str> = entity.into();
        let pred: Arc<str> = t.predicate.encode().into();
        let value: Arc<str> = value.into();
        match map.get_mut(&entity) {
            Some(v) => v.push((pred, value)),
            None => {
                order.push(entity.clone());
                map.insert(entity, vec![(pred, value)]);
            }
        }
    }
    order.into_iter().map(|e| {
        let v = map.remove(&e).unwrap();
        (e, v)
    }).collect()
}

/// Composed-hashing-only mapping (no data sample assumed).
pub(crate) fn hash_only_mapping(cfg: &EntityConfig) -> (PredMapping, usize, f64) {
    let comp = HashComposition::new(cfg.hash_fns, cfg.max_cols);
    (PredMapping::Hashed(comp), cfg.max_cols, 1.0)
}

/// Deterministic entity-sampling stride for a coloring mode, or `None` when
/// no interference graph is needed (hash-only).
pub(crate) fn coloring_stride(mode: ColoringMode) -> Option<usize> {
    match mode {
        ColoringMode::HashOnly => None,
        ColoringMode::Full => Some(1),
        ColoringMode::Sample(f) => {
            let frac = f.clamp(0.0, 1.0);
            Some(if frac >= 1.0 { 1 } else { (1.0 / frac).ceil().max(1.0) as usize })
        }
    }
}

/// Color a populated interference graph into a bounded predicate mapping —
/// shared by the materialized loader below and the streaming bulk loader
/// (`store::bulk`).
pub(crate) fn mapping_from_graph(
    graph: &InterferenceGraph,
    cfg: &EntityConfig,
) -> (PredMapping, usize, f64) {
    let bounded = graph.color_bounded(cfg.max_cols.max(2));
    let ncols =
        if bounded.uncolored.is_empty() { bounded.colors_used.max(1) } else { cfg.max_cols };
    let tail = HashComposition::new(cfg.hash_fns, ncols);
    // Coverage over the *loaded* data is recomputed by the caller;
    // here we report the sample-based estimate.
    let coverage = bounded.coverage();
    (PredMapping::Colored { colors: bounded.assignment, tail }, ncols, coverage)
}

fn build_mapping(grouped: &Grouped, cfg: &EntityConfig) -> (PredMapping, usize, f64) {
    let Some(stride) = coloring_stride(cfg.coloring) else {
        return hash_only_mapping(cfg);
    };
    let mut graph = InterferenceGraph::new();
    for (i, (_entity, pvs)) in grouped.iter().enumerate() {
        // Deterministic sampling: every stride-th entity.
        if i % stride != 0 {
            continue;
        }
        let mut counts: HashMap<&str, u64> = HashMap::new();
        for (p, _) in pvs {
            *counts.entry(p.as_ref()).or_default() += 1;
        }
        graph.add_entity(counts);
    }
    mapping_from_graph(&graph, cfg)
}

fn build_side(grouped: &Grouped, cfg: &EntityConfig) -> SideBuild {
    let (mapping, ncols, _est_cov) = build_mapping(grouped, cfg);
    let mut layout = SideLayout {
        mapping,
        ncols,
        multivalued: HashSet::new(),
        spill_preds: HashSet::new(),
    };
    let mut rows = Vec::with_capacity(grouped.len());
    let mut secondary = Vec::new();
    // Lids are negative (term IDs are positive): the two can never collide
    // in a value cell, so the DS/RS COALESCE fall-through stays unambiguous.
    let mut next_lid: i64 = -1;
    let mut spill_rows = 0u64;
    let mut covered = 0u64;
    let mut total = 0u64;

    for (entity, pvs) in grouped {
        // Gather distinct predicates in first appearance order with values.
        let mut pred_order: Vec<&Arc<str>> = Vec::new();
        let mut values: HashMap<&str, Vec<&Arc<str>>> = HashMap::new();
        for (p, v) in pvs {
            match values.get_mut(p.as_ref()) {
                Some(list) => list.push(v),
                None => {
                    pred_order.push(p);
                    values.insert(p.as_ref(), vec![v]);
                }
            }
        }
        total += pvs.len() as u64;
        if let PredMapping::Colored { colors, .. } = &layout.mapping {
            covered += pvs.iter().filter(|(p, _)| colors.contains_key(p.as_ref())).count() as u64;
        } else {
            covered += pvs.len() as u64;
        }

        // Pack predicates into rows.
        let mut entity_rows: Vec<Vec<Cell>> = vec![vec![None; ncols]];
        for p in pred_order {
            let vals = &values[p.as_ref()];
            let cell = if vals.len() == 1 {
                Value::str(vals[0].clone())
            } else {
                layout.multivalued.insert(p.to_string());
                let lid = next_lid;
                next_lid -= 1;
                for v in vals {
                    secondary.push((lid, (*v).clone()));
                }
                Value::Int(lid)
            };
            let candidates = layout.candidates(p);
            let mut placed = false;
            'rows: for row in entity_rows.iter_mut() {
                for &c in &candidates {
                    if row[c].is_none() {
                        row[c] = Some((p.clone(), cell.clone()));
                        placed = true;
                        break 'rows;
                    }
                }
            }
            if !placed {
                // Spill: open a new row for this entity.
                let mut row = vec![None; ncols];
                let c = candidates.first().copied().unwrap_or(0);
                row[c] = Some((p.clone(), cell.clone()));
                entity_rows.push(row);
            }
        }
        let spilled = entity_rows.len() > 1;
        if spilled {
            spill_rows += (entity_rows.len() - 1) as u64;
            for (p, _) in pvs {
                layout.spill_preds.insert(p.to_string());
            }
        }
        for row in entity_rows {
            rows.push((entity.clone(), spilled, row));
        }
    }

    SideBuild {
        layout,
        rows,
        secondary,
        spill_rows,
        covered_triples: covered,
        total_triples: total,
    }
}

/// All term-bearing columns are BIGINT dictionary IDs (positive), with
/// multi-valued value cells holding negative lids into the secondary table.
pub(crate) fn phys_schema(table: &str, ncols: usize) -> TableSchema {
    let mut cols: Vec<(String, SqlType)> =
        vec![("entry".into(), SqlType::Int), ("spill".into(), SqlType::Int)];
    for i in 0..ncols {
        cols.push((format!("pred{i}"), SqlType::Int));
        cols.push((format!("val{i}"), SqlType::Int));
    }
    TableSchema::new(table, cols)
}

fn insert_side(
    db: &mut Database,
    build: &SideBuild,
    primary: &str,
    secondary: &str,
    dict: &mut Dict,
) -> relstore::Result<()> {
    db.create_table(phys_schema(primary, build.layout.ncols))?;
    db.create_table(TableSchema::new(
        secondary,
        vec![("l_id".into(), SqlType::Int), ("elm".into(), SqlType::Int)],
    ))?;
    let ncols = build.layout.ncols;
    let rows: Vec<Vec<Value>> = build
        .rows
        .iter()
        .map(|(entity, spilled, cells)| {
            let mut row: Vec<Value> = Vec::with_capacity(2 + 2 * ncols);
            row.push(Value::Int(dict.intern(entity)));
            row.push(Value::Int(*spilled as i64));
            for cell in cells {
                match cell {
                    Some((p, v)) => {
                        row.push(Value::Int(dict.intern(p)));
                        row.push(match v {
                            Value::Str(s) => Value::Int(dict.intern(s)),
                            lid => lid.clone(),
                        });
                    }
                    None => {
                        row.push(Value::Null);
                        row.push(Value::Null);
                    }
                }
            }
            row
        })
        .collect();
    db.insert_rows(primary, rows)?;
    let sec_rows: Vec<Vec<Value>> = build
        .secondary
        .iter()
        .map(|(lid, v)| vec![Value::Int(*lid), Value::Int(dict.intern(v))])
        .collect();
    db.insert_rows(secondary, sec_rows)?;
    db.create_index(primary, "entry", IndexKind::Hash)?;
    db.create_index(secondary, "l_id", IndexKind::Hash)?;
    Ok(())
}

/// Bulk-load triples into a fresh database using the entity layout.
/// Returns the per-side layouts and the load report.
pub fn bulk_load_entity(
    db: &mut Database,
    triples: &[Triple],
    cfg: &EntityConfig,
    dict: &mut Dict,
) -> relstore::Result<(SideLayout, SideLayout, LoadReport)> {
    let direct = group_by(triples.iter(), true);
    let reverse = group_by(triples.iter(), false);
    let dbuild = build_side(&direct, cfg);
    let rbuild = build_side(&reverse, cfg);
    insert_side(db, &dbuild, "dph", "ds", dict)?;
    insert_side(db, &rbuild, "rph", "rs", dict)?;

    let preds: HashSet<&str> = triples.iter().map(|t| t.predicate.lexical()).collect();
    let storage: usize = ["dph", "ds", "rph", "rs"]
        .iter()
        .map(|t| db.table(t).map(|t| t.storage_bytes()).unwrap_or(0))
        .sum();
    let nulls = |t: &str| db.table(t).map(|t| t.null_fraction()).unwrap_or(0.0);
    let report = LoadReport {
        triples: triples.len() as u64,
        dph_rows: dbuild.rows.len() as u64,
        rph_rows: rbuild.rows.len() as u64,
        dph_spill_rows: dbuild.spill_rows,
        rph_spill_rows: rbuild.spill_rows,
        dph_cols: dbuild.layout.ncols,
        rph_cols: rbuild.layout.ncols,
        predicates: preds.len(),
        dph_coverage: ratio(dbuild.covered_triples, dbuild.total_triples),
        rph_coverage: ratio(rbuild.covered_triples, rbuild.total_triples),
        dph_null_fraction: nulls("dph"),
        rph_null_fraction: nulls("rph"),
        storage_bytes: storage as u64,
    };
    Ok((dbuild.layout, rbuild.layout, report))
}

pub(crate) fn ratio(a: u64, b: u64) -> f64 {
    if b == 0 {
        1.0
    } else {
        a as f64 / b as f64
    }
}

/// Incrementally insert one triple into a loaded entity-layout database.
/// Predicates unseen at load time fall through to the hash tail of the
/// mapping (the paper's dynamic-schema story). Returns true if the triple
/// was new.
pub fn insert_entity(
    db: &mut Database,
    direct: &mut SideLayout,
    reverse: &mut SideLayout,
    triple: &Triple,
    report: &mut LoadReport,
    dict: &mut Dict,
) -> relstore::Result<bool> {
    let s = triple.subject.encode();
    let p = triple.predicate.encode();
    let o = triple.object.encode();
    let added_d = insert_one_side(db, direct, "dph", "ds", &s, &p, &o, &mut report.dph_spill_rows, &mut report.dph_rows, dict)?;
    if added_d {
        insert_one_side(db, reverse, "rph", "rs", &o, &p, &s, &mut report.rph_spill_rows, &mut report.rph_rows, dict)?;
        report.triples += 1;
    }
    Ok(added_d)
}

#[allow(clippy::too_many_arguments)]
fn insert_one_side(
    db: &mut Database,
    layout: &mut SideLayout,
    primary: &str,
    secondary: &str,
    entity: &str,
    pred: &str,
    value: &str,
    spill_rows: &mut u64,
    row_count: &mut u64,
    dict: &mut Dict,
) -> relstore::Result<bool> {
    let candidates = layout.candidates(pred);
    let entity_id = dict.intern(entity);
    let pred_id = dict.intern(pred);
    let value_id = dict.intern(value);
    let entity_v = Value::Int(entity_id);

    // Locate existing rows for the entity.
    let row_ids: Vec<u32> = {
        let table = db
            .table(primary)
            .ok_or_else(|| relstore::Error::Plan(format!("missing table {primary}")))?;
        let idx = table
            .index_on("entry")
            .ok_or_else(|| relstore::Error::Plan("missing entry index".into()))?;
        idx.lookup(&entity_v).to_vec()
    };

    // Does this predicate already exist on some row?
    let mut existing: Option<(u32, usize, Value)> = None;
    if let Some(table) = db.table(primary) {
        'outer: for &rid in &row_ids {
            let row = table.row_values(rid);
            for &c in &candidates {
                let pcol = 2 + 2 * c;
                if row[pcol] == Value::Int(pred_id) {
                    existing = Some((rid, c, row[pcol + 1].clone()));
                    break 'outer;
                }
            }
        }
    }

    // Value cells distinguish their two kinds by sign: positive = term ID
    // (single-valued), negative = lid into the secondary table.
    match existing {
        Some((rid, c, Value::Int(lid))) if lid < 0 => {
            // Already multi-valued: append to the secondary table unless dup.
            let dup = db
                .table(secondary)
                .map(|t| {
                    t.index_on("l_id")
                        .map(|i| {
                            i.lookup(&Value::Int(lid))
                                .iter()
                                .any(|&r| t.row_values(r)[1] == Value::Int(value_id))
                        })
                        .unwrap_or(false)
                })
                .unwrap_or(false);
            if dup {
                return Ok(false);
            }
            let _ = (rid, c);
            db.insert_rows(secondary, [vec![Value::Int(lid), Value::Int(value_id)]])?;
            Ok(true)
        }
        Some((rid, c, Value::Int(existing_id))) => {
            if existing_id == value_id {
                return Ok(false); // duplicate triple
            }
            // Promote to multi-valued: allocate a fresh lid.
            let lid = next_lid(db, secondary);
            db.insert_rows(
                secondary,
                [
                    vec![Value::Int(lid), Value::Int(existing_id)],
                    vec![Value::Int(lid), Value::Int(value_id)],
                ],
            )?;
            db.update_cell(primary, rid, 2 + 2 * c + 1, Value::Int(lid))?;
            layout.multivalued.insert(pred.to_string());
            Ok(true)
        }
        Some((_, _, other)) => Err(relstore::Error::Exec(format!(
            "corrupt cell for predicate {pred}: {other:?}"
        ))),
        None => {
            // Find a free candidate column on an existing row.
            let mut slot: Option<(u32, usize)> = None;
            if let Some(table) = db.table(primary) {
                'outer: for &rid in &row_ids {
                    let row = table.row_values(rid);
                    for &c in &candidates {
                        if row[2 + 2 * c].is_null() {
                            slot = Some((rid, c));
                            break 'outer;
                        }
                    }
                }
            }
            match slot {
                Some((rid, c)) => {
                    db.update_cell(primary, rid, 2 + 2 * c, Value::Int(pred_id))?;
                    db.update_cell(primary, rid, 2 + 2 * c + 1, Value::Int(value_id))?;
                    if row_ids.len() > 1 {
                        layout.spill_preds.insert(pred.to_string());
                    }
                    Ok(true)
                }
                None => {
                    // New row; spill if the entity already exists.
                    let spilled = !row_ids.is_empty();
                    let ncols = layout.ncols;
                    let mut row = vec![Value::Null; 2 + 2 * ncols];
                    row[0] = entity_v.clone();
                    row[1] = Value::Int(spilled as i64);
                    let c = candidates.first().copied().unwrap_or(0);
                    row[2 + 2 * c] = Value::Int(pred_id);
                    row[2 + 2 * c + 1] = Value::Int(value_id);
                    db.insert_rows(primary, [row])?;
                    *row_count += 1;
                    if spilled {
                        *spill_rows += 1;
                        // Mark the whole entity's predicates as spill-involved.
                        for &rid in &row_ids {
                            db.update_cell(primary, rid, 1, Value::Int(1))?;
                        }
                        let table = db
                            .table(primary)
                            .ok_or_else(|| relstore::Error::Plan(format!("missing table {primary}")))?;
                        let mut preds = vec![pred.to_string()];
                        for &rid in &row_ids {
                            let row = table.row_values(rid);
                            for c in 0..ncols {
                                if let Value::Int(pid) = &row[2 + 2 * c] {
                                    if let Some(pn) = dict.resolve(*pid) {
                                        preds.push(pn);
                                    }
                                }
                            }
                        }
                        layout.spill_preds.extend(preds);
                    }
                    Ok(true)
                }
            }
        }
    }
}

/// Delete one triple from a loaded entity-layout database (both sides).
/// Returns true if the triple existed. Multi-valued cells shrink their
/// DS/RS value list; a list reduced to one value is demoted back to a
/// direct value (the inverse of the insert-time promotion).
pub fn delete_entity(
    db: &mut Database,
    direct: &SideLayout,
    reverse: &SideLayout,
    triple: &Triple,
    report: &mut LoadReport,
    dict: &Dict,
) -> relstore::Result<bool> {
    let s = triple.subject.encode();
    let p = triple.predicate.encode();
    let o = triple.object.encode();
    let removed = delete_one_side(db, direct, "dph", "ds", &s, &p, &o, dict)?;
    if removed {
        delete_one_side(db, reverse, "rph", "rs", &o, &p, &s, dict)?;
        report.triples = report.triples.saturating_sub(1);
    }
    Ok(removed)
}

#[allow(clippy::too_many_arguments)]
fn delete_one_side(
    db: &mut Database,
    layout: &SideLayout,
    primary: &str,
    secondary: &str,
    entity: &str,
    pred: &str,
    value: &str,
    dict: &Dict,
) -> relstore::Result<bool> {
    // A term absent from the dictionary has never been stored: the triple
    // cannot exist, and deletion must not grow the dictionary.
    let (Some(entity_id), Some(pred_id), Some(value_id)) =
        (dict.lookup(entity), dict.lookup(pred), dict.lookup(value))
    else {
        return Ok(false);
    };
    let candidates = layout.candidates(pred);
    let entity_v = Value::Int(entity_id);
    let row_ids: Vec<u32> = {
        let table = db
            .table(primary)
            .ok_or_else(|| relstore::Error::Plan(format!("missing table {primary}")))?;
        let idx = table
            .index_on("entry")
            .ok_or_else(|| relstore::Error::Plan("missing entry index".into()))?;
        idx.lookup(&entity_v).to_vec()
    };
    // Locate the cell holding this predicate.
    let mut cell: Option<(u32, usize, Value)> = None;
    if let Some(table) = db.table(primary) {
        'outer: for &rid in &row_ids {
            let row = table.row_values(rid);
            for &c in &candidates {
                if row[2 + 2 * c] == Value::Int(pred_id) {
                    cell = Some((rid, c, row[2 + 2 * c + 1].clone()));
                    break 'outer;
                }
            }
        }
    }
    let Some((rid, c, stored)) = cell else {
        return Ok(false);
    };
    match stored {
        Value::Int(v) if v > 0 => {
            if v != value_id {
                return Ok(false);
            }
            // Direct single value: clear the predicate/value pair.
            db.update_cell(primary, rid, 2 + 2 * c, Value::Null)?;
            db.update_cell(primary, rid, 2 + 2 * c + 1, Value::Null)?;
            Ok(true)
        }
        Value::Int(lid) if lid < 0 => {
            // Multi-valued: drop the matching element from the secondary
            // list by rebuilding the lid's rows (the secondary table has no
            // tombstones; lists are short).
            let missing_sec =
                || relstore::Error::Plan(format!("missing table {secondary}"));
            let remaining: Vec<i64> = {
                let sec = db.table(secondary).ok_or_else(missing_sec)?;
                let rids = sec
                    .index_on("l_id")
                    .map(|i| i.lookup(&Value::Int(lid)).to_vec())
                    .unwrap_or_default();
                rids.iter()
                    .filter_map(|&r| match sec.row_values(r)[1] {
                        Value::Int(id) => Some(id),
                        _ => None,
                    })
                    .collect()
            };
            if !remaining.contains(&value_id) {
                return Ok(false);
            }
            let kept: Vec<i64> = remaining.into_iter().filter(|&v| v != value_id).collect();
            // Null out the old lid entries in place.
            let rids = {
                let sec = db.table(secondary).ok_or_else(missing_sec)?;
                sec.index_on("l_id")
                    .map(|i| i.lookup(&Value::Int(lid)).to_vec())
                    .unwrap_or_default()
            };
            for &r in &rids {
                db.update_cell(secondary, r, 0, Value::Null)?;
                db.update_cell(secondary, r, 1, Value::Null)?;
            }
            match kept.len() {
                0 => {
                    db.update_cell(primary, rid, 2 + 2 * c, Value::Null)?;
                    db.update_cell(primary, rid, 2 + 2 * c + 1, Value::Null)?;
                }
                1 => {
                    // Demote to a direct value.
                    db.update_cell(primary, rid, 2 + 2 * c + 1, Value::Int(kept[0]))?;
                }
                _ => {
                    db.insert_rows(
                        secondary,
                        kept.into_iter().map(|v| vec![Value::Int(lid), Value::Int(v)]),
                    )?;
                }
            }
            Ok(true)
        }
        other => Err(relstore::Error::Exec(format!(
            "corrupt cell for predicate {pred}: {other:?}"
        ))),
    }
}

/// Next multi-valued list ID: lids are negative and decrease, disjoint from
/// the positive term-ID space.
fn next_lid(db: &Database, secondary: &str) -> i64 {
    db.table(secondary)
        .map(|t| {
            t.rows()
                .iter()
                .filter_map(|r| match r.get(0) {
                    Value::Int(i) if i < 0 => Some(i),
                    _ => None,
                })
                .min()
                .unwrap_or(0)
                - 1
        })
        .unwrap_or(-1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rdf::Term;

    fn t(s: &str, p: &str, o: &str) -> Triple {
        Triple::new(Term::iri(s), Term::iri(p), Term::lit(o))
    }

    /// The paper's Fig. 1(a) sample.
    fn dbpedia_sample() -> Vec<Triple> {
        vec![
            t("Flint", "born", "1850"),
            t("Flint", "died", "1934"),
            t("Flint", "founder", "IBM"),
            t("Page", "born", "1973"),
            t("Page", "founder", "Google"),
            t("Page", "board", "Google"),
            t("Page", "home", "Palo Alto"),
            t("Android", "developer", "Google"),
            t("Android", "version", "4.1"),
            t("Android", "kernel", "Linux"),
            t("Android", "preceded", "4.0"),
            t("Android", "graphics", "OpenGL"),
            t("Google", "industry", "Software"),
            t("Google", "industry", "Internet"),
            t("Google", "employees", "54604"),
            t("Google", "HQ", "Mountain View"),
            t("IBM", "industry", "Software"),
            t("IBM", "industry", "Hardware"),
            t("IBM", "industry", "Services"),
            t("IBM", "employees", "433362"),
            t("IBM", "HQ", "Armonk"),
        ]
    }

    #[test]
    fn bulk_load_fig1_sample() {
        let mut db = Database::new();
        let mut dict = Dict::new();
        let (direct, _reverse, report) =
            bulk_load_entity(&mut db, &dbpedia_sample(), &EntityConfig::default(), &mut dict)
                .unwrap();
        assert_eq!(report.triples, 21);
        // 5 subjects, colored with no spills → 5 DPH rows.
        assert_eq!(report.dph_rows, 5);
        assert_eq!(report.dph_spill_rows, 0);
        // industry is multi-valued on the direct side (Google, IBM).
        assert!(direct.is_multivalued("<industry>"));
        assert!(!direct.is_multivalued("<born>"));
        // DS has 5 rows: lid1 → {Software, Internet}, lid2 → {Software,
        // Hardware, Services}.
        assert_eq!(db.table("ds").unwrap().row_count(), 5);
        // Coloring covers everything on this tiny sample.
        assert!((report.dph_coverage - 1.0).abs() < 1e-12);
        // 13 distinct predicates, at most 5 columns needed (Fig. 4).
        assert_eq!(report.predicates, 13);
        assert!(report.dph_cols <= 6, "needed {} cols", report.dph_cols);
    }

    #[test]
    fn bulk_load_hash_only_spills_when_columns_exhaust() {
        // 1 subject with 8 predicates into 2 columns with 1 hash fn: spills
        // are inevitable.
        let triples: Vec<Triple> =
            (0..8).map(|i| t("s", &format!("p{i}"), &format!("v{i}"))).collect();
        let mut db = Database::new();
        let cfg = EntityConfig { max_cols: 2, hash_fns: 1, coloring: ColoringMode::HashOnly };
        let (direct, _, report) =
            bulk_load_entity(&mut db, &triples, &cfg, &mut Dict::new()).unwrap();
        assert!(report.dph_spill_rows > 0);
        assert!(!direct.spill_preds.is_empty());
        // All rows of the spilled entity are flagged.
        let dph = db.table("dph").unwrap();
        for r in 0..dph.row_count() {
            assert_eq!(dph.row_values(r as u32)[1], Value::Int(1));
        }
    }

    #[test]
    fn reverse_side_multivalued_objects() {
        // Software ← {Google, IBM}: on the reverse side 'industry' is
        // multi-valued for entry Software.
        let mut db = Database::new();
        let (_, reverse, _) = bulk_load_entity(
            &mut db,
            &dbpedia_sample(),
            &EntityConfig::default(),
            &mut Dict::new(),
        )
        .unwrap();
        assert!(reverse.is_multivalued("<industry>"));
        let rs = db.table("rs").unwrap();
        assert!(rs.row_count() >= 2);
    }

    #[test]
    fn incremental_insert_new_subject_and_duplicate() {
        let mut db = Database::new();
        let mut dict = Dict::new();
        let (mut d, mut r, mut report) =
            bulk_load_entity(&mut db, &dbpedia_sample(), &EntityConfig::default(), &mut dict)
                .unwrap();
        let nt = t("Bell", "founder", "AT&T");
        assert!(insert_entity(&mut db, &mut d, &mut r, &nt, &mut report, &mut dict).unwrap());
        assert!(!insert_entity(&mut db, &mut d, &mut r, &nt, &mut report, &mut dict).unwrap());
        assert_eq!(report.triples, 22);
        assert_eq!(db.table("dph").unwrap().row_count(), 6);
    }

    #[test]
    fn incremental_insert_promotes_to_multivalued() {
        let mut db = Database::new();
        let mut dict = Dict::new();
        let (mut d, mut r, mut report) =
            bulk_load_entity(&mut db, &dbpedia_sample(), &EntityConfig::default(), &mut dict)
                .unwrap();
        assert!(!d.is_multivalued("<founder>"));
        // Page founds a second company.
        let nt = t("Page", "founder", "Alphabet");
        assert!(insert_entity(&mut db, &mut d, &mut r, &nt, &mut report, &mut dict).unwrap());
        assert!(d.is_multivalued("<founder>"));
        // DS gained two rows (Google + Alphabet under a fresh lid).
        assert_eq!(db.table("ds").unwrap().row_count(), 7);
        // Appending a third value extends the same lid.
        let nt2 = t("Page", "founder", "OtherCo");
        assert!(insert_entity(&mut db, &mut d, &mut r, &nt2, &mut report, &mut dict).unwrap());
        assert_eq!(db.table("ds").unwrap().row_count(), 8);
    }

    #[test]
    fn incremental_insert_unknown_predicate_uses_hash_tail() {
        let mut db = Database::new();
        let mut dict = Dict::new();
        let (mut d, mut r, mut report) =
            bulk_load_entity(&mut db, &dbpedia_sample(), &EntityConfig::default(), &mut dict)
                .unwrap();
        let nt = t("Page", "brandNewPredicate", "value");
        assert!(insert_entity(&mut db, &mut d, &mut r, &nt, &mut report, &mut dict).unwrap());
        // Find it back on Page's row(s), by dictionary ID.
        let page = dict.lookup("<Page>").unwrap();
        let pid = dict.lookup("<brandNewPredicate>").unwrap();
        let dph = db.table("dph").unwrap();
        let ids = dph.index_on("entry").unwrap().lookup(&Value::Int(page)).to_vec();
        let found = ids.iter().any(|&rid| {
            let row = dph.row_values(rid);
            row.iter().any(|v| v == &Value::Int(pid))
        });
        assert!(found);
    }

    #[test]
    fn lids_stay_negative_and_disjoint_from_term_ids() {
        let mut db = Database::new();
        let mut dict = Dict::new();
        let (mut d, mut r, mut report) =
            bulk_load_entity(&mut db, &dbpedia_sample(), &EntityConfig::default(), &mut dict)
                .unwrap();
        // Bulk-load lids (industry on Google/IBM) and insert-time lids
        // (promotion) are all negative; every elm is a positive term ID.
        let nt = t("Page", "founder", "Alphabet");
        assert!(insert_entity(&mut db, &mut d, &mut r, &nt, &mut report, &mut dict).unwrap());
        let ds = db.table("ds").unwrap();
        for rid in 0..ds.row_count() {
            let row = ds.row_values(rid as u32);
            match (&row[0], &row[1]) {
                (Value::Int(lid), Value::Int(elm)) => {
                    assert!(*lid < 0, "lid {lid} not negative");
                    assert!(*elm > 0 && dict.resolve(*elm).is_some(), "bad elm {elm}");
                }
                other => panic!("unexpected ds row {other:?}"),
            }
        }
    }

    #[test]
    fn delete_demotes_multivalued_back_to_direct() {
        let mut db = Database::new();
        let mut dict = Dict::new();
        let (d, r, mut report) =
            bulk_load_entity(&mut db, &dbpedia_sample(), &EntityConfig::default(), &mut dict)
                .unwrap();
        // Google's industry list {Software, Internet} shrinks to a direct
        // value, then disappears.
        let before = dict.len();
        let t1 = t("Google", "industry", "Internet");
        assert!(delete_entity(&mut db, &d, &r, &t1, &mut report, &dict).unwrap());
        assert_eq!(dict.len(), before, "delete must not grow the dictionary");
        let google = dict.lookup("<Google>").unwrap();
        let industry = dict.lookup("<industry>").unwrap();
        let software = dict.lookup("\"Software\"").unwrap();
        let dph = db.table("dph").unwrap();
        let rid = dph.index_on("entry").unwrap().lookup(&Value::Int(google))[0];
        let row = dph.row_values(rid);
        let c = (0..d.ncols)
            .find(|c| row[2 + 2 * c] == Value::Int(industry))
            .expect("industry cell");
        assert_eq!(row[2 + 2 * c + 1], Value::Int(software));
        // Deleting a never-present triple is a no-op.
        let missing = t("Google", "industry", "Farming");
        assert!(!delete_entity(&mut db, &d, &r, &missing, &mut report, &dict).unwrap());
    }

    #[test]
    fn sample_coloring_still_loads_everything() {
        let mut triples = Vec::new();
        for i in 0..200 {
            let s = format!("s{i}");
            triples.push(t(&s, "type", "T"));
            triples.push(t(&s, &format!("attr{}", i % 7), "v"));
        }
        let mut db = Database::new();
        let cfg = EntityConfig {
            max_cols: 50,
            hash_fns: 2,
            coloring: ColoringMode::Sample(0.1),
        };
        let (_, _, report) =
            bulk_load_entity(&mut db, &triples, &cfg, &mut Dict::new()).unwrap();
        assert_eq!(report.triples, 400);
        assert_eq!(db.table("dph").unwrap().row_count() as u64, report.dph_rows);
        // Unsampled entities still load (possibly via the hash tail).
        assert!(report.dph_rows >= 200);
    }

    #[test]
    fn storage_accounts_nulls_cheaply() {
        let mut db = Database::new();
        let (_, _, report) = bulk_load_entity(
            &mut db,
            &dbpedia_sample(),
            &EntityConfig::default(),
            &mut Dict::new(),
        )
        .unwrap();
        assert!(report.storage_bytes > 0);
        assert!(report.dph_null_fraction > 0.0 && report.dph_null_fraction < 1.0);
    }
}
