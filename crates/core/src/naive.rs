//! A deliberately simple, independent reference SPARQL evaluator over an
//! in-memory triple list. It shares no code with the relational pipeline —
//! no SQL, no layouts, no optimizer — so agreement between the two is strong
//! evidence of correctness. Used by integration and property tests, and by
//! nothing else (it is O(|data| · |pattern|) per triple pattern).
//!
//! The evaluator mirrors the engine's *documented* semantics, including its
//! deliberate deviations from the W3C recommendation (see DESIGN.md): each
//! SELECT level evaluates its core pattern first (triples / UNION /
//! OPTIONAL plus filters not mentioning extension variables), then BIND /
//! VALUES / subqueries in syntactic order, then the deferred filters, then
//! the aggregation or computed-projection layer. Aggregate, BIND and
//! select-expression outputs live in the *value domain* (actual numbers, or
//! canonical term strings for non-numerics) with the same numeric rules as
//! the relational engine: integer-preserving SUM, non-truncating AVG,
//! `Sum(∅) = Avg(∅) = 0`, MIN/MAX preferring the Int representative on an
//! Int-vs-Double tie, and `1`/`1.0` unified by grouping and DISTINCT.

use std::collections::{BTreeMap, HashMap, HashSet};

use rdf::{decode_term, Term, Triple};
use sparql::{
    AggFunc, ArithOp, CompareOp, Expression, GroupPattern, Pattern, Query, QueryForm,
    TermPattern, ValuesBlock,
};

use crate::results::Solutions;

type Binding = BTreeMap<String, Term>;

/// Triples grouped by predicate — a pure lookup accelerator; constant-
/// predicate patterns scan only their predicate's triples.
struct Indexed<'a> {
    all: &'a [Triple],
    by_pred: std::collections::HashMap<&'a Term, Vec<&'a Triple>>,
}

impl<'a> Indexed<'a> {
    fn new(all: &'a [Triple]) -> Indexed<'a> {
        let mut by_pred: std::collections::HashMap<&Term, Vec<&Triple>> =
            std::collections::HashMap::new();
        for t in all {
            by_pred.entry(&t.predicate).or_default().push(t);
        }
        Indexed { all, by_pred }
    }

    fn candidates(&self, tp: &sparql::TriplePattern) -> Vec<&'a Triple> {
        match &tp.predicate {
            TermPattern::Term(p) => self.by_pred.get(p).cloned().unwrap_or_default(),
            TermPattern::Var(_) => self.all.iter().collect(),
        }
    }
}

/// Evaluate a parsed query over the triples.
pub fn evaluate(triples: &[Triple], query: &Query) -> Solutions {
    let data = Indexed::new(triples);
    let (bindings, plain) = eval_level(&data, query);
    match &query.form {
        QueryForm::Ask => Solutions::from_ask(!bindings.is_empty()),
        QueryForm::Select { .. } => {
            let vars = query.projected_variables();
            let mut rows: Vec<Vec<Option<Term>>> = bindings
                .iter()
                .map(|b| vars.iter().map(|v| b.get(v).cloned()).collect())
                .collect();
            if query.is_distinct() {
                let mut seen = std::collections::HashSet::new();
                rows.retain(|r| {
                    let key: Vec<Option<NKey>> = vars
                        .iter()
                        .zip(r.iter())
                        .map(|(v, t)| t.as_ref().map(|t| distinct_key(t, plain.contains(v))))
                        .collect();
                    seen.insert(key)
                });
            }
            if !query.order_by.is_empty() {
                let conds = query.order_by.clone();
                let col_of = |b: &Vec<Option<Term>>, e: &Expression| -> (Option<f64>, String) {
                    // Build a temp binding view for expression evaluation.
                    let binding: Binding = vars
                        .iter()
                        .zip(b.iter())
                        .filter_map(|(v, t)| t.clone().map(|t| (v.clone(), t)))
                        .collect();
                    match eval_expr(e, &binding) {
                        // Lexical form, not encode(): the engine sorts by
                        // RDF_NUM then RDF_STR, and RDF_STR strips the
                        // angle brackets / quotes — `<ns/a>` must order
                        // before `<ns/ab>` even though '>' > 'b'.
                        Some(Val::Term(t)) => (t.numeric_value(), t.lexical().to_string()),
                        Some(Val::Num(n)) => (Some(n), String::new()),
                        Some(Val::Str(s)) => (None, s),
                        Some(Val::Bool(x)) => (None, x.to_string()),
                        None => (None, String::new()),
                    }
                };
                let plain_val = |r: &Vec<Option<Term>>, v: &str| -> Option<NVal> {
                    vars.iter()
                        .position(|x| x == v)
                        .and_then(|i| r[i].as_ref())
                        .map(val_of_term)
                };
                rows.sort_by(|a, b| {
                    for c in &conds {
                        let o = match &c.expr {
                            // A value-domain column sorts by the engine's
                            // total order: NULLs, then numerics (Int and
                            // Double interleaved), then strings. DESC flips
                            // the whole order, putting NULLs last.
                            Expression::Var(v) if plain.contains(v) => {
                                nval_total_cmp_opt(&plain_val(a, v), &plain_val(b, v))
                            }
                            e => {
                                let (na, sa) = col_of(a, e);
                                let (nb, sb) = col_of(b, e);
                                match (na, nb) {
                                    (Some(x), Some(y)) => x.total_cmp(&y),
                                    _ => sa.cmp(&sb),
                                }
                            }
                        };
                        let o = if c.ascending { o } else { o.reverse() };
                        if o != std::cmp::Ordering::Equal {
                            return o;
                        }
                    }
                    std::cmp::Ordering::Equal
                });
            }
            if let Some(off) = query.offset {
                let off = (off as usize).min(rows.len());
                rows.drain(..off);
            }
            if let Some(lim) = query.limit {
                rows.truncate(lim as usize);
            }
            Solutions { vars, rows, boolean: None }
        }
    }
}

fn is_extension(p: &Pattern) -> bool {
    matches!(p, Pattern::Bind { .. } | Pattern::Values(_) | Pattern::SubSelect(_))
}

/// Evaluate one SELECT level (the outer query or a subquery body) in the
/// engine's documented order; returns the solution bindings plus the set of
/// value-domain variables.
fn eval_level(data: &Indexed<'_>, query: &Query) -> (Vec<Binding>, HashSet<String>) {
    let mut plain: HashSet<String> = HashSet::new();

    // 1. Core pattern: non-extension children, in syntactic order.
    let mut bindings = vec![Binding::new()];
    let mut core_triples = 0usize;
    for child in &query.pattern.children {
        if !is_extension(child) {
            core_triples += child.triples().len();
            bindings = eval_pattern(data, child, bindings);
        }
    }

    // 2. Filters not mentioning extension variables attach to the core; the
    //    rest (and all filters when the core is empty) are deferred until
    //    after the extensions — same partition as the translator.
    let ext_vars: HashSet<String> = query
        .pattern
        .children
        .iter()
        .flat_map(|c| match c {
            Pattern::Bind { var, .. } => vec![var.clone()],
            Pattern::Values(vb) => vb.vars.clone(),
            Pattern::SubSelect(q) => q.projected_variables(),
            _ => Vec::new(),
        })
        .collect();
    let mut deferred: Vec<&Expression> = Vec::new();
    for f in &query.pattern.filters {
        let mentions_ext = f.variables().iter().any(|v| ext_vars.contains(*v));
        if mentions_ext || core_triples == 0 {
            deferred.push(f);
        } else {
            bindings.retain(|b| truthy(eval_expr(f, b)));
        }
    }

    // 3. Extensions in syntactic order. A BIND expression only sees
    //    variables bound by syntactically preceding group elements.
    let mut seen: HashSet<String> = HashSet::new();
    for child in &query.pattern.children {
        match child {
            Pattern::Bind { expr, var } => {
                apply_bind(expr, var, Some(&seen), &mut bindings, &mut plain);
                seen.insert(var.clone());
            }
            Pattern::Values(vb) => {
                bindings = join_values(&bindings, vb);
                seen.extend(vb.vars.iter().cloned());
            }
            Pattern::SubSelect(sub) => {
                let (sub_rows, sub_plain) = eval_subquery(data, sub);
                bindings = join_rows(&bindings, &sub_rows);
                plain.extend(sub_plain);
                seen.extend(sub.projected_variables());
            }
            other => seen.extend(other.variables()),
        }
    }

    // 4. Deferred filters, value-domain aware.
    bindings.retain(|b| deferred.iter().all(|f| eval_filter(f, b, &plain) == Some(true)));

    // 5. Aggregation or computed projection.
    if query.is_aggregate() {
        aggregate_level(query, bindings, &plain)
    } else {
        if let Some(items) = query.select_items() {
            for item in items {
                if let Some(expr) = &item.expr {
                    apply_bind(expr, &item.var, None, &mut bindings, &mut plain);
                }
            }
        }
        (bindings, plain)
    }
}

/// Extend every binding with `expr AS var`. `visible` restricts which
/// variables the expression may read (BIND scoping); `None` means all. A
/// bare-variable copy keeps the source's domain; any other expression
/// produces a value-domain binding (or leaves the variable unbound on a
/// type error, mirroring SQL NULL).
fn apply_bind(
    expr: &Expression,
    var: &str,
    visible: Option<&HashSet<String>>,
    bindings: &mut [Binding],
    plain: &mut HashSet<String>,
) {
    match expr {
        Expression::Var(src) => {
            if visible.is_none_or(|s| s.contains(src)) {
                for b in bindings.iter_mut() {
                    if let Some(t) = b.get(src).cloned() {
                        b.insert(var.to_string(), t);
                    }
                }
                if plain.contains(src) {
                    plain.insert(var.to_string());
                }
            }
        }
        _ => {
            for b in bindings.iter_mut() {
                let view: Binding = match visible {
                    None => b.clone(),
                    Some(s) => {
                        b.iter().filter(|(k, _)| s.contains(*k)).map(|(k, v)| (k.clone(), v.clone())).collect()
                    }
                };
                if let Some(v) = eval_val(expr, &view) {
                    b.insert(var.to_string(), nval_to_term(&v));
                }
            }
            plain.insert(var.to_string());
        }
    }
}

/// Inline VALUES join: strict sameTerm compatibility, with `UNDEF` cells
/// and unbound binding variables compatible with anything (the defined side
/// wins in the merged binding).
fn join_values(bindings: &[Binding], vb: &ValuesBlock) -> Vec<Binding> {
    let mut out = Vec::new();
    for b in bindings {
        'rows: for row in &vb.rows {
            let mut ext = b.clone();
            for (var, cell) in vb.vars.iter().zip(row) {
                match (b.get(var), cell) {
                    (Some(t), Some(c)) => {
                        if t != c {
                            continue 'rows;
                        }
                    }
                    (None, Some(c)) => {
                        ext.insert(var.clone(), c.clone());
                    }
                    (_, None) => {}
                }
            }
            out.push(ext);
        }
    }
    out
}

/// Evaluate a subquery body and restrict it to its projection (applying
/// the subquery's DISTINCT); only projected variables escape.
fn eval_subquery(data: &Indexed<'_>, sub: &Query) -> (Vec<Binding>, HashSet<String>) {
    let (sub_bindings, sub_plain) = eval_level(data, sub);
    let projected = sub.projected_variables();
    let proj_set: HashSet<&str> = projected.iter().map(String::as_str).collect();
    let plain: HashSet<String> =
        sub_plain.into_iter().filter(|v| proj_set.contains(v.as_str())).collect();
    let mut rows: Vec<Binding> = sub_bindings
        .into_iter()
        .map(|b| {
            projected
                .iter()
                .filter_map(|v| b.get(v).map(|t| (v.clone(), t.clone())))
                .collect()
        })
        .collect();
    if sub.is_distinct() {
        let mut seen = HashSet::new();
        rows.retain(|b| {
            let key: Vec<Option<NKey>> = projected
                .iter()
                .map(|v| b.get(v).map(|t| distinct_key(t, plain.contains(v))))
                .collect();
            seen.insert(key)
        });
    }
    (rows, plain)
}

/// Join the outer bindings with a subquery's restricted rows: shared
/// variables must agree (term identity), unbound sides are compatible and
/// take the other side's value.
fn join_rows(bindings: &[Binding], rows: &[Binding]) -> Vec<Binding> {
    let mut out = Vec::new();
    for b in bindings {
        'rows: for r in rows {
            let mut ext = b.clone();
            for (v, t) in r {
                match b.get(v) {
                    Some(bt) => {
                        if bt != t {
                            continue 'rows;
                        }
                    }
                    None => {
                        ext.insert(v.clone(), t.clone());
                    }
                }
            }
            out.push(ext);
        }
    }
    out
}

/// The aggregation layer: group the solutions, compute the projected items
/// per group, filter by HAVING. Mirrors the relational engine: grouping
/// unifies `1`/`1.0` for value-domain keys but keeps distinct terms
/// distinct; a global aggregate over the empty input still yields one row.
fn aggregate_level(
    query: &Query,
    bindings: Vec<Binding>,
    plain: &HashSet<String>,
) -> (Vec<Binding>, HashSet<String>) {
    let item_list: Vec<(Option<&Expression>, String)> = match query.select_items() {
        Some(items) => items.iter().map(|i| (i.expr.as_ref(), i.var.clone())).collect(),
        None => query.projected_variables().into_iter().map(|v| (None, v)).collect(),
    };
    let mut order: Vec<Vec<Option<NKey>>> = Vec::new();
    let mut groups: HashMap<Vec<Option<NKey>>, Vec<Binding>> = HashMap::new();
    for b in bindings {
        let key: Vec<Option<NKey>> = query
            .group_by
            .iter()
            .map(|g| b.get(g).map(|t| distinct_key(t, plain.contains(g))))
            .collect();
        if !groups.contains_key(&key) {
            order.push(key.clone());
        }
        groups.entry(key).or_default().push(b);
    }
    if query.group_by.is_empty() && order.is_empty() {
        order.push(Vec::new());
        groups.insert(Vec::new(), Vec::new());
    }

    let mut new_plain: HashSet<String> = HashSet::new();
    for g in &query.group_by {
        if plain.contains(g) {
            new_plain.insert(g.clone());
        }
    }
    let mut out = Vec::new();
    'groups: for key in &order {
        let rows = &groups[key];
        let rep = rows.first();
        let mut nb = Binding::new();
        for g in &query.group_by {
            if let Some(t) = rep.and_then(|r| r.get(g)) {
                nb.insert(g.clone(), t.clone());
            }
        }
        for h in &query.having {
            if eval_having(h, rows, &nb, plain) != Some(true) {
                continue 'groups;
            }
        }
        for (expr, var) in &item_list {
            match expr {
                // A plain projected variable is a grouping key — already in
                // the binding.
                None => {}
                Some(Expression::Var(src)) => {
                    if let Some(t) = rep.and_then(|r| r.get(src)) {
                        nb.insert(var.clone(), t.clone());
                    }
                    if plain.contains(src) {
                        new_plain.insert(var.clone());
                    }
                }
                Some(e) => {
                    if let Some(v) = eval_group_expr(e, rows, &nb) {
                        nb.insert(var.clone(), nval_to_term(&v));
                    }
                    new_plain.insert(var.clone());
                }
            }
        }
        out.push(nb);
    }
    (out, new_plain)
}

fn eval_pattern(data: &Indexed<'_>, pattern: &Pattern, input: Vec<Binding>) -> Vec<Binding> {
    match pattern {
        Pattern::Triple(tp) => {
            let cands = data.candidates(tp);
            let mut out = Vec::new();
            for b in &input {
                for t in &cands {
                    if let Some(ext) = match_triple(tp, t, b) {
                        out.push(ext);
                    }
                }
            }
            out
        }
        Pattern::Group(g) => eval_group(data, g, input),
        Pattern::Union(alts) => {
            let mut out = Vec::new();
            for alt in alts {
                out.extend(eval_pattern(data, alt, input.clone()));
            }
            out
        }
        Pattern::Optional(inner) => {
            let mut out = Vec::new();
            for b in input {
                let matched = eval_pattern(data, inner, vec![b.clone()]);
                if matched.is_empty() {
                    out.push(b);
                } else {
                    out.extend(matched);
                }
            }
            out
        }
        // Nested extension operators are rejected by the translator; these
        // arms keep the naive evaluator total for standalone use.
        Pattern::Bind { expr, var } => {
            let mut bindings = input;
            let mut plain = HashSet::new();
            apply_bind(expr, var, None, &mut bindings, &mut plain);
            bindings
        }
        Pattern::Values(vb) => join_values(&input, vb),
        Pattern::SubSelect(sub) => {
            let (rows, _plain) = eval_subquery(data, sub);
            join_rows(&input, &rows)
        }
    }
}

fn eval_group(data: &Indexed<'_>, g: &GroupPattern, input: Vec<Binding>) -> Vec<Binding> {
    // SPARQL group semantics: join the children in syntactic order, then
    // apply FILTERs over the group's solutions.
    let mut bindings = input;
    for child in &g.children {
        bindings = eval_pattern(data, child, bindings);
        if bindings.is_empty() {
            break;
        }
    }
    bindings
        .into_iter()
        .filter(|b| g.filters.iter().all(|f| truthy(eval_expr(f, b))))
        .collect()
}

fn match_term(tp: &TermPattern, t: &Term, b: &Binding) -> Option<Option<(String, Term)>> {
    match tp {
        TermPattern::Term(c) => (c == t).then_some(None),
        TermPattern::Var(v) => match b.get(v) {
            Some(bound) => (bound == t).then_some(None),
            None => Some(Some((v.clone(), t.clone()))),
        },
    }
}

fn match_triple(tp: &sparql::TriplePattern, t: &Triple, b: &Binding) -> Option<Binding> {
    let mut ext = b.clone();
    for (pat, term) in
        [(&tp.subject, &t.subject), (&tp.predicate, &t.predicate), (&tp.object, &t.object)]
    {
        if let Some((v, val)) = match_term(pat, term, &ext)? {
            // A variable may repeat within the pattern.
            if let Some(prev) = ext.get(&v) {
                if prev != &val {
                    return None;
                }
            } else {
                ext.insert(v, val);
            }
        }
    }
    Some(ext)
}

// ---------------------------------------------------------------------------
// The value domain (independent mirror of the engine's RDF_VAL + SQL Value
// semantics)
// ---------------------------------------------------------------------------

/// A value-domain datum: an actual number, or the canonical term encoding
/// for non-numerics. Absence (`None` in `Option<NVal>`) mirrors SQL NULL.
#[derive(Clone, Debug)]
enum NVal {
    I(i64),
    D(f64),
    S(String),
}

/// Identity key mirroring the engine's Value equality/hash: Int and Double
/// unify through their f64 value (`1` groups with `1.0`), strings by text.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
enum NKey {
    Num(u64),
    Str(String),
}

fn nval_key(v: &NVal) -> NKey {
    match v {
        NVal::I(i) => NKey::Num((*i as f64).to_bits()),
        NVal::D(d) => NKey::Num(d.to_bits()),
        NVal::S(s) => NKey::Str(s.clone()),
    }
}

/// Grouping/DISTINCT key for a bound term: value-domain variables unify by
/// value, term-domain variables by term identity.
fn distinct_key(t: &Term, is_plain: bool) -> NKey {
    if is_plain {
        nval_key(&val_of_term(t))
    } else {
        NKey::Str(t.encode())
    }
}

const XSD: &str = "http://www.w3.org/2001/XMLSchema#";

/// Term → value domain (mirror of the engine's `RDF_VAL`): integer-family
/// literals that fit an `i64` become integers, other numeric-typed literals
/// become doubles, everything else keeps its canonical encoding.
fn val_of_term(t: &Term) -> NVal {
    if let Term::Literal { lexical, lang: None, datatype: Some(dt) } = t {
        if let Some(suffix) = dt.strip_prefix(XSD) {
            match suffix {
                "integer" | "int" | "long" => {
                    if let Ok(i) = lexical.trim().parse::<i64>() {
                        return NVal::I(i);
                    }
                }
                "double" | "decimal" | "float" => {
                    if let Some(x) = t.numeric_value() {
                        return NVal::D(x);
                    }
                }
                _ => {}
            }
        }
    }
    NVal::S(t.encode())
}

/// Value → term (mirror of the engine's result decoding).
fn nval_to_term(v: &NVal) -> Term {
    match v {
        NVal::I(i) => Term::int_lit(*i),
        NVal::D(d) => Term::double_lit(*d),
        NVal::S(s) => decode_term(s).unwrap_or_else(|| Term::lit(s.clone())),
    }
}

fn nval_f64(v: &NVal) -> Option<f64> {
    match v {
        NVal::I(i) => Some(*i as f64),
        NVal::D(d) => Some(*d),
        NVal::S(_) => None,
    }
}

/// Value-domain scalar evaluation, mirroring the translator's `value_sql`
/// lowering under the engine's arithmetic: integer ops are checked (NULL on
/// overflow), a non-numeric operand yields NULL, division always takes the
/// float path and yields NULL on a zero divisor.
fn eval_val(e: &Expression, b: &Binding) -> Option<NVal> {
    match e {
        Expression::Var(v) => b.get(v).map(val_of_term),
        Expression::Term(t) => Some(val_of_term(t)),
        Expression::Arith { op, left, right } => {
            nval_arith(op, eval_val(left, b), eval_val(right, b))
        }
        Expression::Neg(x) => nval_neg(eval_val(x, b)),
        _ => None,
    }
}

fn nval_arith(op: &ArithOp, l: Option<NVal>, r: Option<NVal>) -> Option<NVal> {
    let (l, r) = (l?, r?);
    match op {
        ArithOp::Add | ArithOp::Sub | ArithOp::Mul => {
            if let (NVal::I(a), NVal::I(b)) = (&l, &r) {
                return match op {
                    ArithOp::Add => a.checked_add(*b),
                    ArithOp::Sub => a.checked_sub(*b),
                    ArithOp::Mul => a.checked_mul(*b),
                    ArithOp::Div => unreachable!(),
                }
                .map(NVal::I);
            }
            let (a, b) = (nval_f64(&l)?, nval_f64(&r)?);
            Some(NVal::D(match op {
                ArithOp::Add => a + b,
                ArithOp::Sub => a - b,
                ArithOp::Mul => a * b,
                ArithOp::Div => unreachable!(),
            }))
        }
        // The engine lowers `l / r` as `((1.0 * l) / r)` — always the float
        // path, never integer division.
        ArithOp::Div => {
            let a = nval_f64(&l)?;
            let b = nval_f64(&r)?;
            if b == 0.0 {
                None
            } else {
                Some(NVal::D(a / b))
            }
        }
    }
}

// The engine lowers unary minus as `(0 - x)`.
fn nval_neg(x: Option<NVal>) -> Option<NVal> {
    match x? {
        NVal::I(i) => 0i64.checked_sub(i).map(NVal::I),
        NVal::D(d) => Some(NVal::D(0.0 - d)),
        NVal::S(_) => None,
    }
}

/// SQL `=` mirror with three-valued logic: numerics by value across
/// Int/Double, strings by text, string-vs-number simply unequal.
fn nval_sql_eq(l: Option<NVal>, r: Option<NVal>) -> Option<bool> {
    let (l, r) = (l?, r?);
    match (&l, &r) {
        (NVal::S(a), NVal::S(b)) => Some(a == b),
        (a, b) => match (nval_f64(a), nval_f64(b)) {
            (Some(x), Some(y)) => Some(x == y),
            _ => Some(false),
        },
    }
}

/// SQL ordering mirror: `None` when a side is NULL or the types are
/// incomparable (string vs number).
fn nval_sql_cmp(l: Option<NVal>, r: Option<NVal>) -> Option<std::cmp::Ordering> {
    let (l, r) = (l?, r?);
    match (&l, &r) {
        (NVal::S(a), NVal::S(b)) => Some(a.cmp(b)),
        (a, b) => match (nval_f64(a), nval_f64(b)) {
            (Some(x), Some(y)) => x.partial_cmp(&y),
            _ => None,
        },
    }
}

fn nval_compare(op: &CompareOp, l: Option<NVal>, r: Option<NVal>) -> Option<bool> {
    match op {
        CompareOp::Eq => nval_sql_eq(l, r),
        CompareOp::NotEq => nval_sql_eq(l, r).map(|b| !b),
        _ => nval_sql_cmp(l, r).map(|o| match op {
            CompareOp::Lt => o.is_lt(),
            CompareOp::LtEq => o.is_le(),
            CompareOp::Gt => o.is_gt(),
            CompareOp::GtEq => o.is_ge(),
            CompareOp::Eq | CompareOp::NotEq => unreachable!(),
        }),
    }
}

/// Total order mirror of the engine's `Value::total_cmp` over value-domain
/// data: NULLs first, numerics (Int/Double interleaved), then strings.
fn nval_total_cmp_opt(a: &Option<NVal>, b: &Option<NVal>) -> std::cmp::Ordering {
    use std::cmp::Ordering;
    fn rank(v: &Option<NVal>) -> u8 {
        match v {
            None => 0,
            Some(NVal::I(_)) | Some(NVal::D(_)) => 2,
            Some(NVal::S(_)) => 3,
        }
    }
    match rank(a).cmp(&rank(b)) {
        Ordering::Equal => match (a, b) {
            (Some(NVal::S(x)), Some(NVal::S(y))) => x.cmp(y),
            (Some(x), Some(y)) => nval_f64(x).unwrap().total_cmp(&nval_f64(y).unwrap()),
            _ => Ordering::Equal,
        },
        o => o,
    }
}

/// Should candidate `v` replace the current MIN/MAX representative `m`? On
/// a total-order tie (an Int and a Double of equal value) prefer the Int —
/// same rule as the engine, making the representative order-independent.
fn nval_replaces(v: &NVal, m: &NVal, want_less: bool) -> bool {
    use std::cmp::Ordering;
    match nval_total_cmp_opt(&Some(v.clone()), &Some(m.clone())) {
        Ordering::Equal => matches!(v, NVal::I(_)) && matches!(m, NVal::D(_)),
        Ordering::Less => want_less,
        Ordering::Greater => !want_less,
    }
}

/// One aggregate call over a group's rows, mirroring the engine's
/// accumulator: COUNT skips unbound/error rows, SUM stays integer until a
/// double or non-numeric appears (wrapping i64, like the engine), AVG never
/// truncates, `Sum(∅) = Avg(∅) = 0`, MIN/MAX of an empty (or all-unbound)
/// group are unbound. DISTINCT dedups by value identity in first-occurrence
/// order before accumulation.
fn compute_agg(
    func: AggFunc,
    distinct: bool,
    arg: Option<&Expression>,
    rows: &[Binding],
) -> Option<NVal> {
    let Some(arg) = arg else {
        return Some(NVal::I(rows.len() as i64)); // COUNT(*)
    };
    let mut vals: Vec<NVal> = rows.iter().filter_map(|b| eval_val(arg, b)).collect();
    if distinct {
        let mut seen: HashSet<NKey> = HashSet::new();
        vals.retain(|v| seen.insert(nval_key(v)));
    }
    match func {
        AggFunc::Count => Some(NVal::I(vals.len() as i64)),
        AggFunc::Sum | AggFunc::Avg => {
            if vals.is_empty() {
                return Some(NVal::I(0)); // COALESCE(SUM/AVG(…), 0)
            }
            let mut sum_f = 0.0f64;
            let mut sum_i = 0i64;
            let mut is_int = true;
            for v in &vals {
                match v {
                    NVal::I(i) => {
                        sum_f += *i as f64;
                        sum_i = sum_i.wrapping_add(*i);
                    }
                    NVal::D(d) => {
                        sum_f += d;
                        is_int = false;
                    }
                    NVal::S(_) => is_int = false,
                }
            }
            match func {
                AggFunc::Sum => {
                    Some(if is_int { NVal::I(sum_i) } else { NVal::D(sum_f) })
                }
                _ => Some(NVal::D(sum_f / vals.len() as f64)),
            }
        }
        AggFunc::Min | AggFunc::Max => {
            let want_less = matches!(func, AggFunc::Min);
            let mut m: Option<NVal> = None;
            for v in &vals {
                if m.as_ref().map(|c| nval_replaces(v, c, want_less)).unwrap_or(true) {
                    m = Some(v.clone());
                }
            }
            m
        }
    }
}

/// A select/HAVING expression over one group: aggregate calls evaluate over
/// the group's rows, everything else over the group-key binding.
fn eval_group_expr(e: &Expression, rows: &[Binding], gb: &Binding) -> Option<NVal> {
    match e {
        Expression::Aggregate { func, distinct, arg } => {
            compute_agg(*func, *distinct, arg.as_deref(), rows)
        }
        Expression::Arith { op, left, right } => nval_arith(
            op,
            eval_group_expr(left, rows, gb),
            eval_group_expr(right, rows, gb),
        ),
        Expression::Neg(x) => nval_neg(eval_group_expr(x, rows, gb)),
        other => eval_val(other, gb),
    }
}

/// HAVING over one group: boolean combinations of value-domain comparisons,
/// three-valued like the engine's SQL lowering.
fn eval_having(
    e: &Expression,
    rows: &[Binding],
    gb: &Binding,
    _plain: &HashSet<String>,
) -> Option<bool> {
    match e {
        Expression::Or(x, y) => {
            match (eval_having(x, rows, gb, _plain), eval_having(y, rows, gb, _plain)) {
                (Some(true), _) | (_, Some(true)) => Some(true),
                (Some(false), Some(false)) => Some(false),
                _ => None,
            }
        }
        Expression::And(x, y) => {
            match (eval_having(x, rows, gb, _plain), eval_having(y, rows, gb, _plain)) {
                (Some(false), _) | (_, Some(false)) => Some(false),
                (Some(true), Some(true)) => Some(true),
                _ => None,
            }
        }
        Expression::Not(x) => eval_having(x, rows, gb, _plain).map(|v| !v),
        Expression::Bound(v) => Some(gb.contains_key(v)),
        Expression::Compare { op, left, right } => {
            nval_compare(op, eval_group_expr(left, rows, gb), eval_group_expr(right, rows, gb))
        }
        _ => None,
    }
}

/// A deferred FILTER (one that mentions extension variables), mirroring the
/// translator: a comparison touching a value-domain variable moves wholly
/// into the value domain; everything else keeps term-domain semantics.
fn eval_filter(e: &Expression, b: &Binding, plain: &HashSet<String>) -> Option<bool> {
    match e {
        Expression::Or(x, y) => match (eval_filter(x, b, plain), eval_filter(y, b, plain)) {
            (Some(true), _) | (_, Some(true)) => Some(true),
            (Some(false), Some(false)) => Some(false),
            _ => None,
        },
        Expression::And(x, y) => match (eval_filter(x, b, plain), eval_filter(y, b, plain)) {
            (Some(false), _) | (_, Some(false)) => Some(false),
            (Some(true), Some(true)) => Some(true),
            _ => None,
        },
        Expression::Not(x) => eval_filter(x, b, plain).map(|v| !v),
        Expression::Compare { op, left, right }
            if references_plain(left, plain) || references_plain(right, plain) =>
        {
            nval_compare(op, eval_val(left, b), eval_val(right, b))
        }
        other => match eval_expr(other, b) {
            Some(Val::Bool(x)) => Some(x),
            Some(_) => Some(false),
            None => None,
        },
    }
}

fn references_plain(e: &Expression, plain: &HashSet<String>) -> bool {
    e.variables().iter().any(|v| plain.contains(*v))
}

// ---------------------------------------------------------------------------
// FILTER expression evaluation (SPARQL value semantics, independent impl)
// ---------------------------------------------------------------------------

enum Val {
    Term(Term),
    Num(f64),
    Str(String),
    Bool(bool),
}

fn truthy(v: Option<Val>) -> bool {
    matches!(v, Some(Val::Bool(true)))
}

fn as_num(v: &Val) -> Option<f64> {
    match v {
        Val::Num(n) => Some(*n),
        Val::Term(t) => t.numeric_value(),
        Val::Str(s) => s.trim().parse().ok(),
        Val::Bool(_) => None,
    }
}

fn as_str(v: &Val) -> String {
    match v {
        Val::Str(s) => s.clone(),
        Val::Term(t) => t.lexical().to_string(),
        Val::Num(n) => n.to_string(),
        Val::Bool(b) => b.to_string(),
    }
}

fn eval_expr(e: &Expression, b: &Binding) -> Option<Val> {
    Some(match e {
        Expression::Var(v) => Val::Term(b.get(v)?.clone()),
        Expression::Term(t) => Val::Term(t.clone()),
        Expression::Or(x, y) => {
            let (a, c) = (eval_expr(x, b), eval_expr(y, b));
            match (a.map(|v| truthy(Some(v))), c.map(|v| truthy(Some(v)))) {
                (Some(true), _) | (_, Some(true)) => Val::Bool(true),
                (Some(false), Some(false)) => Val::Bool(false),
                _ => return None,
            }
        }
        Expression::And(x, y) => {
            let (a, c) = (eval_expr(x, b), eval_expr(y, b));
            match (a.map(|v| truthy(Some(v))), c.map(|v| truthy(Some(v)))) {
                (Some(false), _) | (_, Some(false)) => Val::Bool(false),
                (Some(true), Some(true)) => Val::Bool(true),
                _ => return None,
            }
        }
        // An evaluation error in the operand propagates through `!` (W3C
        // EBV semantics): `!REGEX(STR(?unbound), ..)` is an error, not true,
        // so the FILTER rejects — matching the SQL translation.
        Expression::Not(x) => Val::Bool(!truthy(Some(eval_expr(x, b)?))),
        Expression::Bound(v) => Val::Bool(b.contains_key(v)),
        Expression::Compare { op, left, right } => {
            let l = eval_expr(left, b)?;
            let r = eval_expr(right, b)?;
            let ord = if numeric_shaped(left, b) || numeric_shaped(right, b) {
                // Numeric comparison; a non-numeric operand is a type error
                // (the filter then rejects), matching the SQL translation.
                as_num(&l)?.partial_cmp(&as_num(&r)?)?
            } else {
                match (&l, &r) {
                    // Term equality first for Eq/NotEq on two terms.
                    (Val::Term(a), Val::Term(c))
                        if matches!(op, CompareOp::Eq | CompareOp::NotEq) =>
                    {
                        match (a.numeric_value(), c.numeric_value()) {
                            (Some(x), Some(y)) if a.is_literal() && c.is_literal() => {
                                x.partial_cmp(&y)?
                            }
                            _ => a.encode().cmp(&c.encode()),
                        }
                    }
                    _ => match (as_num(&l), as_num(&r)) {
                        (Some(x), Some(y)) => x.partial_cmp(&y)?,
                        _ => as_str(&l).cmp(&as_str(&r)),
                    },
                }
            };
            Val::Bool(match op {
                CompareOp::Eq => ord.is_eq(),
                CompareOp::NotEq => !ord.is_eq(),
                CompareOp::Lt => ord.is_lt(),
                CompareOp::LtEq => ord.is_le(),
                CompareOp::Gt => ord.is_gt(),
                CompareOp::GtEq => ord.is_ge(),
            })
        }
        Expression::Arith { op, left, right } => {
            let l = as_num(&eval_expr(left, b)?)?;
            let r = as_num(&eval_expr(right, b)?)?;
            Val::Num(match op {
                ArithOp::Add => l + r,
                ArithOp::Sub => l - r,
                ArithOp::Mul => l * r,
                ArithOp::Div => {
                    if r == 0.0 {
                        return None;
                    }
                    l / r
                }
            })
        }
        Expression::Neg(x) => Val::Num(-as_num(&eval_expr(x, b)?)?),
        Expression::Regex { expr, pattern, case_insensitive } => {
            let text = as_str(&eval_expr(expr, b)?);
            Val::Bool(regex_like(&text, pattern, *case_insensitive))
        }
        Expression::Str(x) => Val::Str(as_str(&eval_expr(x, b)?)),
        Expression::Lang(x) => match eval_expr(x, b)? {
            Val::Term(Term::Literal { lang: Some(l), .. }) => Val::Str(l.to_string()),
            Val::Term(Term::Literal { .. }) => Val::Str(String::new()),
            _ => return None,
        },
        Expression::Datatype(x) => match eval_expr(x, b)? {
            Val::Term(Term::Literal { datatype: Some(dt), .. }) => Val::Str(dt.to_string()),
            Val::Term(Term::Literal { lang: Some(_), .. }) => {
                Val::Str("http://www.w3.org/1999/02/22-rdf-syntax-ns#langString".into())
            }
            Val::Term(Term::Literal { .. }) => {
                Val::Str("http://www.w3.org/2001/XMLSchema#string".into())
            }
            _ => return None,
        },
        Expression::IsIri(x) => Val::Bool(matches!(eval_expr(x, b)?, Val::Term(Term::Iri(_)))),
        Expression::IsLiteral(x) => {
            Val::Bool(matches!(eval_expr(x, b)?, Val::Term(Term::Literal { .. })))
        }
        Expression::IsBlank(x) => {
            Val::Bool(matches!(eval_expr(x, b)?, Val::Term(Term::Blank(_))))
        }
        // Aggregates never appear in FILTERs (the translator rejects them);
        // in any other context they are evaluated by `eval_group_expr`.
        Expression::Aggregate { .. } => return None,
    })
}

/// Matches the translator's numeric-comparison trigger (DESIGN.md).
fn numeric_shaped(e: &Expression, _b: &Binding) -> bool {
    match e {
        Expression::Arith { .. } | Expression::Neg(_) => true,
        Expression::Term(t) => t.is_literal() && t.numeric_value().is_some(),
        _ => false,
    }
}

/// Same mini-regex semantics as `translate::functions::rdf_regex`.
fn regex_like(text: &str, pattern: &str, ci: bool) -> bool {
    let (mut pat, mut start, mut end) = (pattern, false, false);
    if let Some(p) = pat.strip_prefix('^') {
        pat = p;
        start = true;
    }
    if let Some(p) = pat.strip_suffix('$') {
        pat = p;
        end = true;
    }
    let (t, p) =
        if ci { (text.to_lowercase(), pat.to_lowercase()) } else { (text.into(), pat.into()) };
    let (t, p): (String, String) = (t, p);
    match (start, end) {
        (true, true) => t == p,
        (true, false) => t.starts_with(&p),
        (false, true) => t.ends_with(&p),
        (false, false) => t.contains(&p),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sparql::parse_sparql;

    fn data() -> Vec<Triple> {
        vec![
            Triple::new(Term::iri("a"), Term::iri("p"), Term::iri("b")),
            Triple::new(Term::iri("a"), Term::iri("q"), Term::lit("5")),
            Triple::new(Term::iri("b"), Term::iri("p"), Term::iri("c")),
        ]
    }

    fn int_data() -> Vec<Triple> {
        vec![
            Triple::new(Term::iri("a"), Term::iri("v"), Term::int_lit(1)),
            Triple::new(Term::iri("a"), Term::iri("v"), Term::int_lit(2)),
            Triple::new(Term::iri("b"), Term::iri("v"), Term::int_lit(5)),
        ]
    }

    #[test]
    fn basic_join() {
        let q = parse_sparql("SELECT ?x ?z WHERE { ?x <p> ?y . ?y <p> ?z }").unwrap();
        let s = evaluate(&data(), &q);
        assert_eq!(s.len(), 1);
        assert_eq!(s.get(0, "x"), Some(&Term::iri("a")));
        assert_eq!(s.get(0, "z"), Some(&Term::iri("c")));
    }

    #[test]
    fn optional_preserves_unmatched() {
        let q = parse_sparql("SELECT ?x ?v WHERE { ?x <p> ?y . OPTIONAL { ?x <q> ?v } }").unwrap();
        let s = evaluate(&data(), &q);
        assert_eq!(s.len(), 2);
    }

    #[test]
    fn filters_and_union() {
        let q = parse_sparql(
            "SELECT ?x WHERE { { ?x <q> ?v . FILTER(?v > 4) } UNION { ?x <p> <c> } }",
        )
        .unwrap();
        let s = evaluate(&data(), &q);
        assert_eq!(s.len(), 2);
    }

    #[test]
    fn repeated_variable_in_pattern() {
        let mut d = data();
        d.push(Triple::new(Term::iri("x"), Term::iri("p"), Term::iri("x")));
        let q = parse_sparql("SELECT ?s WHERE { ?s <p> ?s }").unwrap();
        let s = evaluate(&d, &q);
        assert_eq!(s.len(), 1);
        assert_eq!(s.get(0, "s"), Some(&Term::iri("x")));
    }

    #[test]
    fn grouped_count_and_having() {
        let q = parse_sparql(
            "SELECT ?s (COUNT(?o) AS ?n) WHERE { ?s <v> ?o } GROUP BY ?s HAVING(COUNT(?o) > 1)",
        )
        .unwrap();
        let s = evaluate(&int_data(), &q);
        assert_eq!(s.len(), 1);
        assert_eq!(s.get(0, "s"), Some(&Term::iri("a")));
        assert_eq!(s.get(0, "n"), Some(&Term::int_lit(2)));
    }

    #[test]
    fn sum_stays_integer_and_avg_does_not_truncate() {
        let q = parse_sparql(
            "SELECT (SUM(?o) AS ?sum) (AVG(?o) AS ?avg) WHERE { ?s <v> ?o }",
        )
        .unwrap();
        let s = evaluate(&int_data(), &q);
        assert_eq!(s.get(0, "sum"), Some(&Term::int_lit(8)));
        assert_eq!(s.get(0, "avg"), Some(&Term::double_lit(8.0 / 3.0)));
    }

    #[test]
    fn global_aggregate_over_empty_input_yields_one_row() {
        let q = parse_sparql(
            "SELECT (COUNT(?o) AS ?n) (SUM(?o) AS ?sum) WHERE { ?s <nope> ?o }",
        )
        .unwrap();
        let s = evaluate(&int_data(), &q);
        assert_eq!(s.len(), 1);
        assert_eq!(s.get(0, "n"), Some(&Term::int_lit(0)));
        assert_eq!(s.get(0, "sum"), Some(&Term::int_lit(0)));
    }

    #[test]
    fn bind_and_values_extend_solutions() {
        let q = parse_sparql(
            "SELECT ?s ?d WHERE { ?s <v> ?o . BIND(?o + 10 AS ?d) FILTER(?d > 11) }",
        )
        .unwrap();
        let s = evaluate(&int_data(), &q);
        assert_eq!(s.len(), 2);

        let q = parse_sparql("SELECT ?s WHERE { ?s <v> ?o . VALUES ?s { <a> } }").unwrap();
        let s = evaluate(&int_data(), &q);
        assert_eq!(s.len(), 2);
    }

    #[test]
    fn subquery_restricts_to_projection() {
        let q = parse_sparql(
            "SELECT ?s ?m WHERE { ?s <v> ?o . { SELECT (MAX(?x) AS ?m) WHERE { ?y <v> ?x } } }",
        )
        .unwrap();
        let s = evaluate(&int_data(), &q);
        assert_eq!(s.len(), 3);
        assert_eq!(s.get(0, "m"), Some(&Term::int_lit(5)));
    }

    #[test]
    fn min_prefers_int_representative_on_tie() {
        let d = vec![
            Triple::new(Term::iri("a"), Term::iri("v"), Term::double_lit(1.0)),
            Triple::new(Term::iri("a"), Term::iri("v"), Term::int_lit(1)),
        ];
        let q = parse_sparql("SELECT (MIN(?o) AS ?m) WHERE { ?s <v> ?o }").unwrap();
        let s = evaluate(&d, &q);
        assert_eq!(s.get(0, "m"), Some(&Term::int_lit(1)));
    }

    #[test]
    fn order_by_iri_sorts_by_lexical_form_not_encoding() {
        // `<ns/a>` must precede `<ns/ab>`: on the encoded form the closing
        // '>' (0x3E) compares above 'b' only by accident of ASCII — the
        // engine's RDF_STR sort key strips the brackets, so the naive
        // mirror must too.
        let d = vec![
            Triple::new(Term::iri("ns/ab"), Term::iri("p"), Term::int_lit(1)),
            Triple::new(Term::iri("ns/a"), Term::iri("p"), Term::int_lit(2)),
        ];
        let q = parse_sparql("SELECT ?s WHERE { ?s <p> ?o } ORDER BY ?s").unwrap();
        let s = evaluate(&d, &q);
        assert_eq!(s.get(0, "s"), Some(&Term::iri("ns/a")));
        assert_eq!(s.get(1, "s"), Some(&Term::iri("ns/ab")));
    }
}
