//! A deliberately simple, independent reference SPARQL evaluator over an
//! in-memory triple list. It shares no code with the relational pipeline —
//! no SQL, no layouts, no optimizer — so agreement between the two is strong
//! evidence of correctness. Used by integration and property tests, and by
//! nothing else (it is O(|data| · |pattern|) per triple pattern).

use std::collections::BTreeMap;

use rdf::{Term, Triple};
use sparql::{
    ArithOp, CompareOp, Expression, GroupPattern, Pattern, Query, QueryForm, TermPattern,
};

use crate::results::Solutions;

type Binding = BTreeMap<String, Term>;

/// Triples grouped by predicate — a pure lookup accelerator; constant-
/// predicate patterns scan only their predicate's triples.
struct Indexed<'a> {
    all: &'a [Triple],
    by_pred: std::collections::HashMap<&'a Term, Vec<&'a Triple>>,
}

impl<'a> Indexed<'a> {
    fn new(all: &'a [Triple]) -> Indexed<'a> {
        let mut by_pred: std::collections::HashMap<&Term, Vec<&Triple>> =
            std::collections::HashMap::new();
        for t in all {
            by_pred.entry(&t.predicate).or_default().push(t);
        }
        Indexed { all, by_pred }
    }

    fn candidates(&self, tp: &sparql::TriplePattern) -> Vec<&'a Triple> {
        match &tp.predicate {
            TermPattern::Term(p) => self.by_pred.get(p).cloned().unwrap_or_default(),
            TermPattern::Var(_) => self.all.iter().collect(),
        }
    }
}

/// Evaluate a parsed query over the triples.
pub fn evaluate(triples: &[Triple], query: &Query) -> Solutions {
    let root = Pattern::Group(query.pattern.clone());
    let data = Indexed::new(triples);
    let bindings = eval_pattern(&data, &root, vec![Binding::new()]);
    match &query.form {
        QueryForm::Ask => Solutions::from_ask(!bindings.is_empty()),
        QueryForm::Select { .. } => {
            let vars = query.projected_variables();
            let mut rows: Vec<Vec<Option<Term>>> = bindings
                .iter()
                .map(|b| vars.iter().map(|v| b.get(v).cloned()).collect())
                .collect();
            if query.is_distinct() {
                let mut seen = std::collections::HashSet::new();
                rows.retain(|r| {
                    let key: Vec<Option<String>> =
                        r.iter().map(|t| t.as_ref().map(Term::encode)).collect();
                    seen.insert(key)
                });
            }
            if !query.order_by.is_empty() {
                let conds = query.order_by.clone();
                let col_of = |b: &Vec<Option<Term>>, e: &Expression| -> (Option<f64>, String) {
                    // Build a temp binding view for expression evaluation.
                    let binding: Binding = vars
                        .iter()
                        .zip(b.iter())
                        .filter_map(|(v, t)| t.clone().map(|t| (v.clone(), t)))
                        .collect();
                    match eval_expr(e, &binding) {
                        Some(Val::Term(t)) => (t.numeric_value(), t.encode()),
                        Some(Val::Num(n)) => (Some(n), String::new()),
                        Some(Val::Str(s)) => (None, s),
                        Some(Val::Bool(x)) => (None, x.to_string()),
                        None => (None, String::new()),
                    }
                };
                rows.sort_by(|a, b| {
                    for c in &conds {
                        let (na, sa) = col_of(a, &c.expr);
                        let (nb, sb) = col_of(b, &c.expr);
                        let o = match (na, nb) {
                            (Some(x), Some(y)) => x.total_cmp(&y),
                            _ => sa.cmp(&sb),
                        };
                        let o = if c.ascending { o } else { o.reverse() };
                        if o != std::cmp::Ordering::Equal {
                            return o;
                        }
                    }
                    std::cmp::Ordering::Equal
                });
            }
            if let Some(off) = query.offset {
                let off = (off as usize).min(rows.len());
                rows.drain(..off);
            }
            if let Some(lim) = query.limit {
                rows.truncate(lim as usize);
            }
            Solutions { vars, rows, boolean: None }
        }
    }
}

fn eval_pattern(data: &Indexed<'_>, pattern: &Pattern, input: Vec<Binding>) -> Vec<Binding> {
    match pattern {
        Pattern::Triple(tp) => {
            let cands = data.candidates(tp);
            let mut out = Vec::new();
            for b in &input {
                for t in &cands {
                    if let Some(ext) = match_triple(tp, t, b) {
                        out.push(ext);
                    }
                }
            }
            out
        }
        Pattern::Group(g) => eval_group(data, g, input),
        Pattern::Union(alts) => {
            let mut out = Vec::new();
            for alt in alts {
                out.extend(eval_pattern(data, alt, input.clone()));
            }
            out
        }
        Pattern::Optional(inner) => {
            let mut out = Vec::new();
            for b in input {
                let matched = eval_pattern(data, inner, vec![b.clone()]);
                if matched.is_empty() {
                    out.push(b);
                } else {
                    out.extend(matched);
                }
            }
            out
        }
    }
}

fn eval_group(data: &Indexed<'_>, g: &GroupPattern, input: Vec<Binding>) -> Vec<Binding> {
    // SPARQL group semantics: join the children in syntactic order, then
    // apply FILTERs over the group's solutions.
    let mut bindings = input;
    for child in &g.children {
        bindings = eval_pattern(data, child, bindings);
        if bindings.is_empty() {
            break;
        }
    }
    bindings
        .into_iter()
        .filter(|b| g.filters.iter().all(|f| truthy(eval_expr(f, b))))
        .collect()
}

fn match_term(tp: &TermPattern, t: &Term, b: &Binding) -> Option<Option<(String, Term)>> {
    match tp {
        TermPattern::Term(c) => (c == t).then_some(None),
        TermPattern::Var(v) => match b.get(v) {
            Some(bound) => (bound == t).then_some(None),
            None => Some(Some((v.clone(), t.clone()))),
        },
    }
}

fn match_triple(tp: &sparql::TriplePattern, t: &Triple, b: &Binding) -> Option<Binding> {
    let mut ext = b.clone();
    for (pat, term) in
        [(&tp.subject, &t.subject), (&tp.predicate, &t.predicate), (&tp.object, &t.object)]
    {
        if let Some((v, val)) = match_term(pat, term, &ext)? {
            // A variable may repeat within the pattern.
            if let Some(prev) = ext.get(&v) {
                if prev != &val {
                    return None;
                }
            } else {
                ext.insert(v, val);
            }
        }
    }
    Some(ext)
}

// ---------------------------------------------------------------------------
// FILTER expression evaluation (SPARQL value semantics, independent impl)
// ---------------------------------------------------------------------------

enum Val {
    Term(Term),
    Num(f64),
    Str(String),
    Bool(bool),
}

fn truthy(v: Option<Val>) -> bool {
    matches!(v, Some(Val::Bool(true)))
}

fn as_num(v: &Val) -> Option<f64> {
    match v {
        Val::Num(n) => Some(*n),
        Val::Term(t) => t.numeric_value(),
        Val::Str(s) => s.trim().parse().ok(),
        Val::Bool(_) => None,
    }
}

fn as_str(v: &Val) -> String {
    match v {
        Val::Str(s) => s.clone(),
        Val::Term(t) => t.lexical().to_string(),
        Val::Num(n) => n.to_string(),
        Val::Bool(b) => b.to_string(),
    }
}

fn eval_expr(e: &Expression, b: &Binding) -> Option<Val> {
    Some(match e {
        Expression::Var(v) => Val::Term(b.get(v)?.clone()),
        Expression::Term(t) => Val::Term(t.clone()),
        Expression::Or(x, y) => {
            let (a, c) = (eval_expr(x, b), eval_expr(y, b));
            match (a.map(|v| truthy(Some(v))), c.map(|v| truthy(Some(v)))) {
                (Some(true), _) | (_, Some(true)) => Val::Bool(true),
                (Some(false), Some(false)) => Val::Bool(false),
                _ => return None,
            }
        }
        Expression::And(x, y) => {
            let (a, c) = (eval_expr(x, b), eval_expr(y, b));
            match (a.map(|v| truthy(Some(v))), c.map(|v| truthy(Some(v)))) {
                (Some(false), _) | (_, Some(false)) => Val::Bool(false),
                (Some(true), Some(true)) => Val::Bool(true),
                _ => return None,
            }
        }
        // An evaluation error in the operand propagates through `!` (W3C
        // EBV semantics): `!REGEX(STR(?unbound), ..)` is an error, not true,
        // so the FILTER rejects — matching the SQL translation.
        Expression::Not(x) => Val::Bool(!truthy(Some(eval_expr(x, b)?))),
        Expression::Bound(v) => Val::Bool(b.contains_key(v)),
        Expression::Compare { op, left, right } => {
            let l = eval_expr(left, b)?;
            let r = eval_expr(right, b)?;
            let ord = if numeric_shaped(left, b) || numeric_shaped(right, b) {
                // Numeric comparison; a non-numeric operand is a type error
                // (the filter then rejects), matching the SQL translation.
                as_num(&l)?.partial_cmp(&as_num(&r)?)?
            } else {
                match (&l, &r) {
                    // Term equality first for Eq/NotEq on two terms.
                    (Val::Term(a), Val::Term(c))
                        if matches!(op, CompareOp::Eq | CompareOp::NotEq) =>
                    {
                        match (a.numeric_value(), c.numeric_value()) {
                            (Some(x), Some(y)) if a.is_literal() && c.is_literal() => {
                                x.partial_cmp(&y)?
                            }
                            _ => a.encode().cmp(&c.encode()),
                        }
                    }
                    _ => match (as_num(&l), as_num(&r)) {
                        (Some(x), Some(y)) => x.partial_cmp(&y)?,
                        _ => as_str(&l).cmp(&as_str(&r)),
                    },
                }
            };
            Val::Bool(match op {
                CompareOp::Eq => ord.is_eq(),
                CompareOp::NotEq => !ord.is_eq(),
                CompareOp::Lt => ord.is_lt(),
                CompareOp::LtEq => ord.is_le(),
                CompareOp::Gt => ord.is_gt(),
                CompareOp::GtEq => ord.is_ge(),
            })
        }
        Expression::Arith { op, left, right } => {
            let l = as_num(&eval_expr(left, b)?)?;
            let r = as_num(&eval_expr(right, b)?)?;
            Val::Num(match op {
                ArithOp::Add => l + r,
                ArithOp::Sub => l - r,
                ArithOp::Mul => l * r,
                ArithOp::Div => {
                    if r == 0.0 {
                        return None;
                    }
                    l / r
                }
            })
        }
        Expression::Neg(x) => Val::Num(-as_num(&eval_expr(x, b)?)?),
        Expression::Regex { expr, pattern, case_insensitive } => {
            let text = as_str(&eval_expr(expr, b)?);
            Val::Bool(regex_like(&text, pattern, *case_insensitive))
        }
        Expression::Str(x) => Val::Str(as_str(&eval_expr(x, b)?)),
        Expression::Lang(x) => match eval_expr(x, b)? {
            Val::Term(Term::Literal { lang: Some(l), .. }) => Val::Str(l.to_string()),
            Val::Term(Term::Literal { .. }) => Val::Str(String::new()),
            _ => return None,
        },
        Expression::Datatype(x) => match eval_expr(x, b)? {
            Val::Term(Term::Literal { datatype: Some(dt), .. }) => Val::Str(dt.to_string()),
            Val::Term(Term::Literal { lang: Some(_), .. }) => {
                Val::Str("http://www.w3.org/1999/02/22-rdf-syntax-ns#langString".into())
            }
            Val::Term(Term::Literal { .. }) => {
                Val::Str("http://www.w3.org/2001/XMLSchema#string".into())
            }
            _ => return None,
        },
        Expression::IsIri(x) => Val::Bool(matches!(eval_expr(x, b)?, Val::Term(Term::Iri(_)))),
        Expression::IsLiteral(x) => {
            Val::Bool(matches!(eval_expr(x, b)?, Val::Term(Term::Literal { .. })))
        }
        Expression::IsBlank(x) => {
            Val::Bool(matches!(eval_expr(x, b)?, Val::Term(Term::Blank(_))))
        }
    })
}

/// Matches the translator's numeric-comparison trigger (DESIGN.md).
fn numeric_shaped(e: &Expression, _b: &Binding) -> bool {
    match e {
        Expression::Arith { .. } | Expression::Neg(_) => true,
        Expression::Term(t) => t.is_literal() && t.numeric_value().is_some(),
        _ => false,
    }
}

/// Same mini-regex semantics as `translate::functions::rdf_regex`.
fn regex_like(text: &str, pattern: &str, ci: bool) -> bool {
    let (mut pat, mut start, mut end) = (pattern, false, false);
    if let Some(p) = pat.strip_prefix('^') {
        pat = p;
        start = true;
    }
    if let Some(p) = pat.strip_suffix('$') {
        pat = p;
        end = true;
    }
    let (t, p) =
        if ci { (text.to_lowercase(), pat.to_lowercase()) } else { (text.into(), pat.into()) };
    let (t, p): (String, String) = (t, p);
    match (start, end) {
        (true, true) => t == p,
        (true, false) => t.starts_with(&p),
        (false, true) => t.ends_with(&p),
        (false, false) => t.contains(&p),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sparql::parse_sparql;

    fn data() -> Vec<Triple> {
        vec![
            Triple::new(Term::iri("a"), Term::iri("p"), Term::iri("b")),
            Triple::new(Term::iri("a"), Term::iri("q"), Term::lit("5")),
            Triple::new(Term::iri("b"), Term::iri("p"), Term::iri("c")),
        ]
    }

    #[test]
    fn basic_join() {
        let q = parse_sparql("SELECT ?x ?z WHERE { ?x <p> ?y . ?y <p> ?z }").unwrap();
        let s = evaluate(&data(), &q);
        assert_eq!(s.len(), 1);
        assert_eq!(s.get(0, "x"), Some(&Term::iri("a")));
        assert_eq!(s.get(0, "z"), Some(&Term::iri("c")));
    }

    #[test]
    fn optional_preserves_unmatched() {
        let q = parse_sparql("SELECT ?x ?v WHERE { ?x <p> ?y . OPTIONAL { ?x <q> ?v } }").unwrap();
        let s = evaluate(&data(), &q);
        assert_eq!(s.len(), 2);
    }

    #[test]
    fn filters_and_union() {
        let q = parse_sparql(
            "SELECT ?x WHERE { { ?x <q> ?v . FILTER(?v > 4) } UNION { ?x <p> <c> } }",
        )
        .unwrap();
        let s = evaluate(&data(), &q);
        assert_eq!(s.len(), 2);
    }

    #[test]
    fn repeated_variable_in_pattern() {
        let mut d = data();
        d.push(Triple::new(Term::iri("x"), Term::iri("p"), Term::iri("x")));
        let q = parse_sparql("SELECT ?s WHERE { ?s <p> ?s }").unwrap();
        let s = evaluate(&d, &q);
        assert_eq!(s.len(), 1);
        assert_eq!(s.get(0, "s"), Some(&Term::iri("x")));
    }
}
