//! Access methods and the triple-method cost function TMC (Def. 3.1).

use sparql::{TermPattern, TriplePattern};

use crate::stats::Stats;

/// Access methods `M` (paper §3.1): full scan, access-by-subject,
/// access-by-object. DB2RDF indexes only the `entry` columns of DPH/RPH, so
/// these are the exact alternatives available.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Method {
    Scan,
    Acs,
    Aco,
}

impl Method {
    pub const ALL: [Method; 3] = [Method::Acs, Method::Aco, Method::Scan];

    pub fn name(&self) -> &'static str {
        match self {
            Method::Scan => "sc",
            Method::Acs => "acs",
            Method::Aco => "aco",
        }
    }
}

/// R(t, m) — variables that must already be bound for the lookup (Def. 3.3).
pub fn required_vars(t: &TriplePattern, m: Method) -> Vec<String> {
    match m {
        Method::Scan => Vec::new(),
        Method::Acs => t.subject.as_var().map(str::to_string).into_iter().collect(),
        Method::Aco => t.object.as_var().map(str::to_string).into_iter().collect(),
    }
}

/// P(t, m) — variables bound after the lookup (Def. 3.2): every variable of
/// the triple that is not required by the method.
pub fn produced_vars(t: &TriplePattern, m: Method) -> Vec<String> {
    let req = required_vars(t, m);
    let mut out = Vec::new();
    for tp in [&t.subject, &t.predicate, &t.object] {
        if let Some(v) = tp.as_var() {
            if !req.iter().any(|r| r == v) && !out.iter().any(|o| o == v) {
                out.push(v.to_string());
            }
        }
    }
    out
}

/// TMC(t, m, S) — estimated cost of evaluating `t` with method `m`
/// (Def. 3.1). Follows the paper's example: exact counts for top-k
/// constants, per-subject/per-object averages for bound variables, and the
/// dataset size for scans.
pub fn tmc(t: &TriplePattern, m: Method, stats: &Stats) -> f64 {
    match m {
        // Paper §3.1.1: TMC(t, sc, S) is the total number of triples — the
        // entity layout has no predicate index, so a scan always reads the
        // whole relation.
        Method::Scan => stats.total_triples.max(1) as f64,
        Method::Acs => {
            let pred = t.predicate.as_term().map(|p| p.encode());
            match &t.subject {
                TermPattern::Term(s) => stats.subject_count(&s.encode()),
                // Bound variable subject: per-predicate fan-out when the
                // predicate is known (an implementation-chosen refinement of
                // S, which the paper leaves open).
                TermPattern::Var(_) => stats.subject_fanout(pred.as_deref()),
            }
        }
        Method::Aco => {
            let pred = t.predicate.as_term().map(|p| p.encode());
            match &t.object {
                TermPattern::Term(o) => stats.object_count(&o.encode()),
                TermPattern::Var(_) => stats.object_fanout(pred.as_deref()),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rdf::{Term, Triple};

    fn tp(s: TermPattern, p: TermPattern, o: TermPattern) -> TriplePattern {
        TriplePattern { id: 1, subject: s, predicate: p, object: o }
    }

    fn v(name: &str) -> TermPattern {
        TermPattern::Var(name.into())
    }

    fn c(iri: &str) -> TermPattern {
        TermPattern::Term(Term::iri(iri))
    }

    #[test]
    fn required_and_produced() {
        let t = tp(v("x"), c("founder"), v("y"));
        assert_eq!(required_vars(&t, Method::Acs), vec!["x"]);
        assert_eq!(produced_vars(&t, Method::Acs), vec!["y"]);
        assert_eq!(required_vars(&t, Method::Aco), vec!["y"]);
        assert_eq!(produced_vars(&t, Method::Aco), vec!["x"]);
        assert!(required_vars(&t, Method::Scan).is_empty());
        assert_eq!(produced_vars(&t, Method::Scan), vec!["x", "y"]);
    }

    #[test]
    fn constant_positions_require_nothing() {
        let t = tp(c("s"), c("p"), v("o"));
        assert!(required_vars(&t, Method::Acs).is_empty());
        assert_eq!(produced_vars(&t, Method::Acs), vec!["o"]);
    }

    #[test]
    fn repeated_variable_not_produced_twice() {
        let t = tp(v("x"), v("p"), v("x"));
        assert_eq!(produced_vars(&t, Method::Scan), vec!["x", "p"]);
        assert_eq!(produced_vars(&t, Method::Acs), vec!["p"]);
    }

    #[test]
    fn tmc_matches_paper_example() {
        // Paper §3.1.1: TMC(t4, aco) = 2 (exact count for 'Software'),
        // TMC(t4, sc) = 26 (total triples), TMC(t4, acs) = 5 (avg/subject).
        let mut triples = Vec::new();
        let soft = Term::lit("Software");
        for i in 0..2 {
            triples.push(Triple::new(
                Term::iri(format!("c{i}")),
                Term::iri("industry"),
                soft.clone(),
            ));
        }
        for i in 0..24 {
            triples.push(Triple::new(
                Term::iri(format!("s{}", i % 5)),
                Term::iri(format!("p{i}")),
                Term::iri(format!("o{i}")),
            ));
        }
        let stats = Stats::collect(&triples, 5);
        assert_eq!(stats.total_triples, 26);
        let t4 = tp(v("y"), c("industry"), TermPattern::Term(soft));
        assert_eq!(tmc(&t4, Method::Aco, &stats), 2.0);
        assert_eq!(tmc(&t4, Method::Scan, &stats), 26.0);
        // With a constant predicate, acs uses the per-predicate subject
        // fan-out (our refinement of S — the paper's example would use the
        // global avg 5): each of the two 'industry' subjects has one triple.
        assert_eq!(tmc(&t4, Method::Acs, &stats), 1.0);
        // With a variable predicate the global average applies.
        let t_anypred = tp(v("y"), v("p"), v("o"));
        assert!((tmc(&t_anypred, Method::Acs, &stats) - stats.avg_per_subject).abs() < 1e-12);
    }
}
