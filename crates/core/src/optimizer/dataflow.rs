//! The Data Flow Builder (paper §3.1.1): the data-flow graph over
//! (triple, method) pairs (Def. 3.8) and the greedy optimal-flow-tree
//! algorithm of Fig. 9.

use std::collections::HashSet;

use crate::optimizer::cost::{produced_vars, required_vars, tmc, Method};
use crate::optimizer::ptree::PTree;
use crate::stats::Stats;

/// Node of the data-flow graph: a triple index paired with an access method.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct FlowNode {
    pub triple: usize,
    pub method: Method,
}

/// Weighted edge; `from == None` marks the synthetic root.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FlowEdge {
    pub from: Option<FlowNode>,
    pub to: FlowNode,
    pub weight: f64,
}

/// The data-flow graph of Def. 3.8.
#[derive(Debug, Clone)]
pub struct DataFlow {
    pub nodes: Vec<FlowNode>,
    pub edges: Vec<FlowEdge>,
}

impl DataFlow {
    /// Build the graph: an edge (t,m) → (t′,m′) exists when P(t,m) ⊇
    /// R(t′,m′), the triples differ, they are not OR-alternatives
    /// (¬∪(t,t′)), and the *source* is not OPTIONAL-guarded relative to the
    /// target (¬∩(t′,t)) — bindings may flow into an OPTIONAL but never out
    /// of one. Root edges reach every node with R = ∅. Edge weight is the
    /// TMC of the target (the paper's "simple implementation" of W).
    pub fn build(tree: &PTree, stats: &Stats) -> DataFlow {
        let nt = tree.triple_count();
        let mut nodes = Vec::with_capacity(nt * Method::ALL.len());
        for triple in 0..nt {
            for method in Method::ALL {
                nodes.push(FlowNode { triple, method });
            }
        }
        let mut edges = Vec::new();
        // Precompute produced/required sets.
        let req: Vec<Vec<String>> = nodes
            .iter()
            .map(|n| required_vars(&tree.triples[n.triple], n.method))
            .collect();
        let produced: Vec<Vec<String>> = nodes
            .iter()
            .map(|n| produced_vars(&tree.triples[n.triple], n.method))
            .collect();

        let costs: Vec<f64> =
            nodes.iter().map(|n| tmc(&tree.triples[n.triple], n.method, stats)).collect();

        for (j, to) in nodes.iter().enumerate() {
            if req[j].is_empty() {
                edges.push(FlowEdge { from: None, to: *to, weight: costs[j] });
            }
            for (i, from) in nodes.iter().enumerate() {
                if from.triple == to.triple {
                    continue;
                }
                let covers = req[j].iter().all(|r| produced[i].contains(r));
                if !covers || req[j].is_empty() {
                    continue;
                }
                if tree.or_connected(from.triple, to.triple) {
                    continue;
                }
                // ∩(t′, t): the source is optional-guarded relative to the
                // target — forbidden.
                if tree.optional_guarded(to.triple, from.triple) {
                    continue;
                }
                edges.push(FlowEdge { from: Some(*from), to: *to, weight: costs[j] });
            }
        }
        DataFlow { nodes, edges }
    }
}

/// The optimal flow tree (Fig. 8's blue nodes), computed by the greedy
/// algorithm of Fig. 9.
#[derive(Debug, Clone)]
pub struct FlowTree {
    /// Chosen (triple, method) in insertion order.
    pub order: Vec<FlowNode>,
    /// Per triple index: chosen method.
    pub method_of: Vec<Method>,
    /// Per triple index: position in `order`.
    pub position: Vec<usize>,
    /// Per triple index: the flow parent (None = fed from the root).
    pub parent: Vec<Option<FlowNode>>,
}

impl FlowTree {
    /// Fig. 9: sort edges by weight, repeatedly add the cheapest edge from
    /// the tree to a node whose triple is not yet covered.
    pub fn compute(tree: &PTree, flow: &DataFlow) -> FlowTree {
        let nt = tree.triple_count();
        let mut edges: Vec<&FlowEdge> = flow.edges.iter().collect();
        // Deterministic: weight, then target triple id, then method rank.
        let mrank = |m: Method| match m {
            Method::Acs => 0,
            Method::Aco => 1,
            Method::Scan => 2,
        };
        edges.sort_by(|a, b| {
            a.weight
                .total_cmp(&b.weight)
                .then_with(|| a.to.triple.cmp(&b.to.triple))
                .then_with(|| mrank(a.to.method).cmp(&mrank(b.to.method)))
        });

        let mut in_tree: HashSet<FlowNode> = HashSet::new();
        let mut covered: HashSet<usize> = HashSet::new();
        let mut order = Vec::with_capacity(nt);
        let mut method_of = vec![Method::Scan; nt];
        let mut position = vec![usize::MAX; nt];
        let mut parent: Vec<Option<FlowNode>> = vec![None; nt];

        while covered.len() < nt {
            let mut advanced = false;
            for e in &edges {
                let from_ok = match e.from {
                    None => true,
                    Some(f) => in_tree.contains(&f),
                };
                if from_ok && !covered.contains(&e.to.triple) {
                    in_tree.insert(e.to);
                    covered.insert(e.to.triple);
                    method_of[e.to.triple] = e.to.method;
                    position[e.to.triple] = order.len();
                    parent[e.to.triple] = e.from;
                    order.push(e.to);
                    advanced = true;
                    break;
                }
            }
            debug_assert!(advanced, "root scan edges guarantee progress");
            if !advanced {
                break;
            }
        }
        FlowTree { order, method_of, position, parent }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::Stats;
    use rdf::Term;
    use sparql::parse_sparql;

    /// Statistics shaped after the paper's Fig. 6(b): total 26, avg 5 per
    /// subject, avg 1 per object, 'Software' known-cheap (2), 'Palo Alto'
    /// known-expensive (20), so the flow starts at t4 as in Fig. 8.
    fn example_stats() -> Stats {
        let mut s = Stats {
            total_triples: 26,
            distinct_subjects: 5,
            distinct_objects: 26,
            avg_per_subject: 5.0,
            avg_per_object: 1.0,
            ..Stats::default()
        };
        s.register_top_object(1, &Term::lit("Software").encode(), 2);
        s.register_top_object(2, &Term::lit("Palo Alto").encode(), 20);
        s
    }

    fn example_tree() -> PTree {
        let q = parse_sparql(
            "SELECT * WHERE {
               ?x <http://home> 'Palo Alto' .
               { ?x <http://founder> ?y } UNION { ?x <http://member> ?y }
               { ?y <http://industry> 'Software' .
                 ?z <http://developer> ?y .
                 ?y <http://revenue> ?n .
                 OPTIONAL { ?y <http://employees> ?m } }
             }",
        )
        .unwrap();
        PTree::build(&q)
    }

    #[test]
    fn graph_has_root_edge_to_t4_aco() {
        let tree = example_tree();
        let flow = DataFlow::build(&tree, &example_stats());
        // t4 = triple index 3 (industry 'Software'): constant object ⇒ R=∅.
        assert!(flow
            .edges
            .iter()
            .any(|e| e.from.is_none()
                && e.to == FlowNode { triple: 3, method: Method::Aco }
                && (e.weight - 2.0).abs() < 1e-9));
    }

    #[test]
    fn no_edges_between_or_alternatives() {
        let tree = example_tree();
        let flow = DataFlow::build(&tree, &example_stats());
        // t2 (index 1) and t3 (index 2) are UNION alternatives.
        assert!(!flow.edges.iter().any(|e| matches!(
            (e.from, e.to),
            (Some(f), t) if (f.triple == 1 && t.triple == 2) || (f.triple == 2 && t.triple == 1)
        )));
    }

    #[test]
    fn no_edges_out_of_optional() {
        let tree = example_tree();
        let flow = DataFlow::build(&tree, &example_stats());
        // t7 (index 6, employees) is OPTIONAL: nothing may flow from it.
        assert!(!flow
            .edges
            .iter()
            .any(|e| matches!(e.from, Some(f) if f.triple == 6)));
        // ... but flow INTO it is allowed.
        assert!(flow
            .edges
            .iter()
            .any(|e| matches!(e.from, Some(f) if f.triple == 3) && e.to.triple == 6));
    }

    #[test]
    fn flow_tree_starts_at_t4_and_covers_all() {
        let tree = example_tree();
        let flow = DataFlow::build(&tree, &example_stats());
        let ft = FlowTree::compute(&tree, &flow);
        assert_eq!(ft.order.len(), 7);
        // Cheapest root edge is (t4, aco) with weight 2 (Fig. 8).
        assert_eq!(ft.order[0], FlowNode { triple: 3, method: Method::Aco });
        // All triples covered exactly once.
        let mut seen: Vec<usize> = ft.order.iter().map(|n| n.triple).collect();
        seen.sort_unstable();
        assert_eq!(seen, (0..7).collect::<Vec<_>>());
        // t1 (home 'Palo Alto') is reached by subject from t2/t3 (acs).
        assert_eq!(ft.method_of[0], Method::Acs);
    }

    #[test]
    fn disconnected_triple_falls_back_to_scan() {
        let q = parse_sparql("SELECT * WHERE { ?a <http://p> ?b . ?c <http://q> ?d }").unwrap();
        let tree = PTree::build(&q);
        let stats = example_stats();
        let flow = DataFlow::build(&tree, &stats);
        let ft = FlowTree::compute(&tree, &flow);
        assert_eq!(ft.order.len(), 2);
        // The second star shares no variables: it can only enter via a
        // root-reachable method (scan or a var-entry access with R=∅ — only
        // scan qualifies here).
        let second = ft.order.iter().find(|n| n.triple == 1).unwrap();
        assert_eq!(second.method, Method::Scan);
    }
}
