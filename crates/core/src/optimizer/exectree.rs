//! The Query Plan Builder (paper §3.1.2) and star-merging (§3.2.1).
//!
//! `ExecTree` turns the optimal flow tree into a structure-respecting
//! execution tree. The paper's Fig. 10 algorithm threads a set `L` of
//! *late-fused* subtrees upward and fuses each one as late as the flow
//! allows; we implement the same contract as an eligibility-ordered
//! assembly: within every AND scope, subtrees are fused in optimal-flow
//! order subject to their required variables being available, which
//! reproduces the paper's running example exactly (see tests). OR and
//! OPTIONAL subtrees stay opaque so the operator structure of the query is
//! preserved.

use std::collections::HashSet;

use sparql::Expression;

use crate::optimizer::cost::{required_vars, Method};
use crate::optimizer::dataflow::FlowTree;
use crate::optimizer::ptree::{PKind, PTree};

/// Merge semantics of a star access (paper Defs. 3.9–3.11).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StarSem {
    /// All predicates must be present (single-row conjunctive star).
    And,
    /// At least one predicate present (`UNION` merged into one access).
    Or,
    /// Required predicates plus optional ones projected as NULLable.
    Opt,
}

/// One access against DPH/RPH: one or more triple patterns sharing an entity
/// and an access method.
#[derive(Debug, Clone, PartialEq)]
pub struct StarNode {
    pub method: Method,
    pub sem: StarSem,
    /// Triple indexes; for `Opt` semantics the first `n_required` are
    /// mandatory and the rest optional.
    pub triples: Vec<usize>,
    pub n_required: usize,
}

impl StarNode {
    pub fn single(triple: usize, method: Method) -> StarNode {
        StarNode { method, sem: StarSem::And, triples: vec![triple], n_required: 1 }
    }
}

/// A storage-independent execution tree (the paper's Fig. 10 output).
#[derive(Debug, Clone, PartialEq)]
pub enum ExecNode {
    Star(StarNode),
    /// Ordered conjunctive evaluation with group-scoped FILTERs.
    Seq { children: Vec<ExecNode>, filters: Vec<Expression> },
    Union(Vec<ExecNode>),
    Optional(Box<ExecNode>),
}

impl ExecNode {
    /// Triple indexes in evaluation order.
    pub fn triples_in_order(&self) -> Vec<usize> {
        let mut out = Vec::new();
        fn walk(n: &ExecNode, out: &mut Vec<usize>) {
            match n {
                ExecNode::Star(s) => out.extend(&s.triples),
                ExecNode::Seq { children, .. } => children.iter().for_each(|c| walk(c, out)),
                ExecNode::Union(cs) => cs.iter().for_each(|c| walk(c, out)),
                ExecNode::Optional(c) => walk(c, out),
            }
        }
        walk(self, &mut out);
        out
    }
}

struct Unit {
    node: ExecNode,
    flow_min: usize,
    req: Vec<String>,
    prod: Vec<String>,
    /// OPTIONAL units fuse after every mandatory sibling (LeftJoin is the
    /// outermost operator of its group for well-designed patterns).
    optional: bool,
}

/// Build the execution tree for the whole query.
pub fn build_exec_tree(tree: &PTree, flow: &FlowTree) -> ExecNode {
    let (units, filters) = build_units(tree, tree.root, flow);
    assemble(units, filters)
}

fn triple_vars(tree: &PTree, t: usize) -> Vec<String> {
    tree.triples[t].variables().into_iter().map(str::to_string).collect()
}

fn build_units(tree: &PTree, node: usize, flow: &FlowTree) -> (Vec<Unit>, Vec<Expression>) {
    match &tree.nodes[node].kind {
        PKind::Triple(t) => {
            let method = flow.method_of[*t];
            let unit = Unit {
                node: ExecNode::Star(StarNode::single(*t, method)),
                flow_min: flow.position[*t],
                req: required_vars(&tree.triples[*t], method),
                prod: triple_vars(tree, *t),
                optional: false,
            };
            (vec![unit], Vec::new())
        }
        PKind::And => {
            let mut units = Vec::new();
            let mut filters: Vec<Expression> = tree
                .filters
                .iter()
                .filter(|(n, _)| *n == node)
                .map(|(_, f)| f.clone())
                .collect();
            for &child in &tree.nodes[node].children {
                let (u, f) = build_units(tree, child, flow);
                units.extend(u);
                filters.extend(f);
            }
            (units, filters)
        }
        PKind::Or => {
            let mut branches = Vec::new();
            let mut flow_min = usize::MAX;
            let mut req: Vec<String> = Vec::new();
            let mut prod: Vec<String> = Vec::new();
            for &child in &tree.nodes[node].children {
                let (u, f) = build_units(tree, child, flow);
                flow_min = flow_min.min(u.iter().map(|x| x.flow_min).min().unwrap_or(usize::MAX));
                let assembled = assemble_with_head(u, f, &mut req, &mut prod);
                branches.push(assembled);
            }
            let unit =
                Unit { node: ExecNode::Union(branches), flow_min, req, prod, optional: false };
            (vec![unit], Vec::new())
        }
        PKind::Optional => {
            // An OPTIONAL node has exactly one child pattern.
            let child = tree.nodes[node].children[0];
            let (u, f) = build_units(tree, child, flow);
            let flow_min = u.iter().map(|x| x.flow_min).min().unwrap_or(usize::MAX);
            let mut req = Vec::new();
            let mut prod = Vec::new();
            let assembled = assemble_with_head(u, f, &mut req, &mut prod);
            let unit = Unit {
                node: ExecNode::Optional(Box::new(assembled)),
                flow_min,
                req,
                prod,
                optional: true,
            };
            (vec![unit], Vec::new())
        }
    }
}

/// Assemble a branch and accumulate its externally-required head variables
/// and produced variables into `req`/`prod`.
fn assemble_with_head(
    units: Vec<Unit>,
    filters: Vec<Expression>,
    req: &mut Vec<String>,
    prod: &mut Vec<String>,
) -> ExecNode {
    // Head requirement: the requirement of the first unit in flow order
    // (what this branch needs from the outside before it can start).
    if let Some(first) = units.iter().min_by_key(|u| u.flow_min) {
        for r in &first.req {
            if !req.contains(r) {
                req.push(r.clone());
            }
        }
    }
    for u in &units {
        for p in &u.prod {
            if !prod.contains(p) {
                prod.push(p.clone());
            }
        }
    }
    assemble(units, filters)
}

/// Order units by optimal-flow position subject to variable availability —
/// the late-fusing assembly (paper §3.1.2).
///
/// Among the units whose required variables are available, the next one
/// fused is chosen by category, then flow position:
///   0. *producers* — units binding a variable some pending unit still
///      requires (they unblock the flow);
///   1. *reducers* — units all of whose variables are already bound (pure
///      selections like `t1` in the running example: fusing them early
///      shrinks intermediate results);
///   2. everything else stays pending as late as possible (`t5`, `t6`,
///      `OPTIONAL t7`: their variables are needed by nobody downstream).
///
/// When nothing is eligible the earliest-flow unit is taken anyway and the
/// SQL generator degrades its head access gracefully.
fn assemble(mut units: Vec<Unit>, filters: Vec<Expression>) -> ExecNode {
    units.sort_by_key(|u| u.flow_min);
    let mut bound: HashSet<String> = HashSet::new();
    let mut children = Vec::with_capacity(units.len());
    while !units.is_empty() {
        let idx = {
            let mut best: Option<(usize, (u8, usize))> = None;
            for (i, u) in units.iter().enumerate() {
                if !u.req.iter().all(|r| bound.contains(r)) {
                    continue;
                }
                let enables_other = units.iter().enumerate().any(|(j, other)| {
                    j != i && other.req.iter().any(|r| u.prod.contains(r) && !bound.contains(r))
                });
                let category = if u.optional {
                    3
                } else if enables_other {
                    0
                } else if u.prod.iter().all(|p| bound.contains(p)) {
                    1
                } else {
                    2
                };
                let key = (category, u.flow_min);
                if best.map(|(_, k)| key < k).unwrap_or(true) {
                    best = Some((i, key));
                }
            }
            best.map(|(i, _)| i).unwrap_or(0)
        };
        let u = units.remove(idx);
        bound.extend(u.prod.iter().cloned());
        children.push(u.node);
    }
    if children.len() == 1 && filters.is_empty() {
        return children.pop().unwrap();
    }
    ExecNode::Seq { children, filters }
}

// ---------------------------------------------------------------------------
// Star merging (paper §3.2.1, Defs. 3.9-3.11)
// ---------------------------------------------------------------------------

/// Layout facts the merger must respect: predicates involved in spills (per
/// side) may not participate in merged stars, because a merged star reads a
/// single DPH/RPH row.
pub struct MergeInfo<'a> {
    pub spill_direct: &'a HashSet<String>,
    pub spill_reverse: &'a HashSet<String>,
    /// Multi-valued predicates per side: their DS/RS joins would cross-
    /// multiply the branches of an OR-merged star, so OR merging skips them.
    pub multi_direct: &'a HashSet<String>,
    pub multi_reverse: &'a HashSet<String>,
}

/// The entity position a star accesses: subject for `acs`, object for `aco`.
fn star_entity<'a>(tree: &'a PTree, star: &StarNode) -> Option<&'a sparql::TermPattern> {
    let t = &tree.triples[star.triples[0]];
    match star.method {
        Method::Acs => Some(&t.subject),
        Method::Aco => Some(&t.object),
        Method::Scan => None,
    }
}

/// A triple may participate in a merged star only if its predicate is a
/// constant and not involved in spills on the accessed side.
fn merge_ok(tree: &PTree, t: usize, method: Method, info: &MergeInfo<'_>) -> bool {
    let tp = &tree.triples[t];
    let Some(pred) = tp.predicate.as_term() else {
        return false;
    };
    let spills = match method {
        Method::Acs => info.spill_direct,
        Method::Aco => info.spill_reverse,
        Method::Scan => return false,
    };
    !spills.contains(&pred.encode())
}

fn or_multivalued(tree: &PTree, star: &StarNode, info: &MergeInfo<'_>) -> bool {
    let multi = match star.method {
        Method::Acs | Method::Scan => info.multi_direct,
        Method::Aco => info.multi_reverse,
    };
    star.triples.iter().any(|&t| {
        tree.triples[t]
            .predicate
            .as_term()
            .map(|p| multi.contains(&p.encode()))
            .unwrap_or(true)
    })
}

fn star_merge_ok(tree: &PTree, star: &StarNode, info: &MergeInfo<'_>) -> bool {
    star.sem == StarSem::And
        && star.triples.iter().all(|&t| merge_ok(tree, t, star.method, info))
}

/// Unwrap `Seq { [single], no filters }` produced by assembly.
fn unwrap_single(node: ExecNode) -> ExecNode {
    match node {
        ExecNode::Seq { mut children, filters } if children.len() == 1 && filters.is_empty() => {
            unwrap_single(children.pop().unwrap())
        }
        other => other,
    }
}

/// The variable-name signature of a single-triple star: (subject var?,
/// object var?). OR-merged branches must bind identical variables so the
/// post-merge UNNEST flip produces a uniform row shape.
fn var_signature(tree: &PTree, t: usize) -> (Option<String>, Option<String>) {
    let tp = &tree.triples[t];
    (
        tp.subject.as_var().map(str::to_string),
        tp.object.as_var().map(str::to_string),
    )
}

/// In the entity layout a full scan over DPH that binds a variable subject
/// is the same physical access as an `acs` whose entity is still unbound
/// (the generator omits the entry probe). Normalizing Scan → Acs lets
/// all-variable star queries collapse into the single-row access of the
/// paper's Fig. 2(b).
fn normalize_scans(node: ExecNode) -> ExecNode {
    match node {
        ExecNode::Star(mut s) => {
            if s.method == Method::Scan {
                s.method = Method::Acs;
            }
            ExecNode::Star(s)
        }
        ExecNode::Seq { children, filters } => ExecNode::Seq {
            children: children.into_iter().map(normalize_scans).collect(),
            filters,
        },
        ExecNode::Union(cs) => ExecNode::Union(cs.into_iter().map(normalize_scans).collect()),
        ExecNode::Optional(c) => ExecNode::Optional(Box::new(normalize_scans(*c))),
    }
}

/// Apply the merging rules bottom-up (entity layout only).
pub fn merge_exec_tree(tree: &PTree, node: ExecNode, info: &MergeInfo<'_>) -> ExecNode {
    merge_rules(tree, normalize_scans(node), info)
}

fn merge_rules(tree: &PTree, node: ExecNode, info: &MergeInfo<'_>) -> ExecNode {
    match node {
        ExecNode::Star(_) => node,
        ExecNode::Union(branches) => {
            let branches: Vec<ExecNode> = branches
                .into_iter()
                .map(|b| unwrap_single(merge_exec_tree(tree, b, info)))
                .collect();
            // ORMergeable: every branch is a single-triple AND star over the
            // same entity and method with the same variable signature.
            let mut stars = Vec::new();
            for b in &branches {
                match b {
                    ExecNode::Star(s)
                        if s.triples.len() == 1
                            && star_merge_ok(tree, s, info)
                            && !or_multivalued(tree, s, info) =>
                    {
                        stars.push(s.clone())
                    }
                    _ => return ExecNode::Union(branches),
                }
            }
            let head = &stars[0];
            let entity = star_entity(tree, head).cloned();
            let sig = var_signature(tree, head.triples[0]);
            let uniform = entity.is_some()
                && stars.iter().all(|s| {
                    s.method == head.method
                        && star_entity(tree, s).cloned() == entity
                        && var_signature(tree, s.triples[0]) == sig
                });
            if uniform {
                ExecNode::Star(StarNode {
                    method: head.method,
                    sem: StarSem::Or,
                    triples: stars.iter().map(|s| s.triples[0]).collect(),
                    n_required: 0,
                })
            } else {
                ExecNode::Union(branches)
            }
        }
        ExecNode::Optional(inner) => {
            ExecNode::Optional(Box::new(merge_exec_tree(tree, *inner, info)))
        }
        ExecNode::Seq { children, filters } => {
            let children: Vec<ExecNode> = children
                .into_iter()
                .map(|c| merge_exec_tree(tree, c, info))
                .collect();
            let mut out: Vec<ExecNode> = Vec::with_capacity(children.len());
            for child in children {
                match child {
                    // ANDMergeable: same-entity same-method AND stars merge
                    // into one access — but only with the *immediately
                    // preceding* plan node: merging across intermediate
                    // nodes would override the optimal flow's evaluation
                    // order (e.g. pulling a large multi-valued reverse
                    // predicate ahead of the selective join meant to filter
                    // it first).
                    ExecNode::Star(s)
                        if star_merge_ok(tree, &s, info) && star_entity(tree, &s).is_some() =>
                    {
                        let entity = star_entity(tree, &s).cloned();
                        let mut merged = false;
                        if let Some(ExecNode::Star(p)) = out.last_mut() {
                            if p.sem == StarSem::And
                                && p.method == s.method
                                && star_merge_ok(tree, p, info)
                                && star_entity(tree, p).cloned() == entity
                            {
                                p.triples.extend(&s.triples);
                                p.n_required = p.triples.len();
                                merged = true;
                            }
                        }
                        if !merged {
                            out.push(ExecNode::Star(s));
                        }
                    }
                    // OPTMergeable: `OPTIONAL { single star }` folds into a
                    // preceding same-entity star as optional predicates.
                    ExecNode::Optional(inner) => {
                        let inner = unwrap_single(*inner);
                        let mut folded = false;
                        if let ExecNode::Star(s) = &inner {
                            // Only a *single* optional triple folds into a
                            // star (Def. 3.11); a multi-triple optional group
                            // has all-or-nothing semantics that a flat CASE
                            // projection cannot express.
                            if s.triples.len() == 1 && star_merge_ok(tree, s, info) {
                                let entity = star_entity(tree, s).cloned();
                                if entity.is_some() {
                                    // Adjacent-only, as for AND merging.
                                    if let Some(ExecNode::Star(p)) = out.last_mut() {
                                        let p_req_ok = (p.sem == StarSem::And
                                            && star_merge_ok(tree, p, info))
                                            || p.sem == StarSem::Opt;
                                        if p_req_ok
                                            && p.method == s.method
                                            && star_entity(tree, p).cloned() == entity
                                        {
                                            p.triples.extend(&s.triples);
                                            p.sem = StarSem::Opt;
                                            folded = true;
                                        }
                                    }
                                }
                            }
                        }
                        if !folded {
                            out.push(ExecNode::Optional(Box::new(inner)));
                        }
                    }
                    other => out.push(other),
                }
            }
            ExecNode::Seq { children: out, filters }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::optimizer::dataflow::DataFlow;
    use crate::stats::Stats;
    use rdf::Term;
    use sparql::parse_sparql;

    /// Statistics shaped after the paper's Fig. 6(b): total 26 triples, avg
    /// 5 per subject and 1 per object, 'Software' a known cheap constant (2)
    /// and 'Palo Alto' a known expensive one — so the optimal flow starts at
    /// t4 exactly as in Fig. 8.
    fn example_stats() -> Stats {
        let mut s = Stats {
            total_triples: 26,
            distinct_subjects: 5,
            distinct_objects: 26,
            avg_per_subject: 5.0,
            avg_per_object: 1.0,
            ..Stats::default()
        };
        s.register_top_object(1, &Term::lit("Software").encode(), 2);
        s.register_top_object(2, &Term::lit("Palo Alto").encode(), 20);
        s
    }

    fn pipeline(query: &str) -> (PTree, ExecNode) {
        let q = parse_sparql(query).unwrap();
        let tree = PTree::build(&q);
        let stats = example_stats();
        let flow = DataFlow::build(&tree, &stats);
        let ft = FlowTree::compute(&tree, &flow);
        let exec = build_exec_tree(&tree, &ft);
        (tree, exec)
    }

    const RUNNING_EXAMPLE: &str = "SELECT * WHERE {
        ?x <http://home> 'Palo Alto' .
        { ?x <http://founder> ?y } UNION { ?x <http://member> ?y }
        { ?y <http://industry> 'Software' .
          ?z <http://developer> ?y .
          ?y <http://revenue> ?n .
          OPTIONAL { ?y <http://employees> ?m } }
      }";

    #[test]
    fn running_example_matches_figure_10() {
        let (_tree, exec) = pipeline(RUNNING_EXAMPLE);
        // Paper Fig. 10 evaluation order: t4, {t2|t3}, t1, t5, t6, opt t7.
        // Triple indexes are 0-based: 3, {1,2}, 0, 4, 5, 6.
        assert_eq!(exec.triples_in_order(), vec![3, 1, 2, 0, 4, 5, 6]);
        match &exec {
            ExecNode::Seq { children, .. } => {
                assert!(matches!(&children[0], ExecNode::Star(s) if s.triples == vec![3]));
                assert!(matches!(&children[1], ExecNode::Union(b) if b.len() == 2));
                assert!(matches!(&children[2], ExecNode::Star(s) if s.triples == vec![0]));
                assert!(matches!(children.last().unwrap(), ExecNode::Optional(_)));
            }
            other => panic!("expected Seq, got {other:?}"),
        }
    }

    #[test]
    fn running_example_merges_like_figure_11() {
        let (tree, exec) = pipeline(RUNNING_EXAMPLE);
        let empty = HashSet::new();
        let info = MergeInfo { spill_direct: &empty, spill_reverse: &empty, multi_direct: &empty, multi_reverse: &empty };
        let merged = merge_exec_tree(&tree, exec, &info);
        let ExecNode::Seq { children, .. } = &merged else { panic!() };
        // Fig. 11: t4 stays alone (entity y via aco) — wait: t4, t2/t3 and
        // t5 all access entity ?y by object... t4's entity is the CONSTANT
        // 'Software' (aco on a constant), t2/t3's entity is ?y. The merged
        // plan has: (t4,aco), ({t2,t3},aco) OR-merged, (t1,acs), (t5,aco),
        // ({t6,t7},acs) OPT-merged.
        assert_eq!(children.len(), 5);
        assert!(matches!(&children[1], ExecNode::Star(s)
            if s.sem == StarSem::Or && s.triples == vec![1, 2]));
        assert!(matches!(children.last().unwrap(), ExecNode::Star(s)
            if s.sem == StarSem::Opt && s.triples == vec![5, 6] && s.n_required == 1));
    }

    #[test]
    fn and_merge_collapses_subject_stars() {
        // Q1 of the micro-benchmark (Fig. 2a): an all-variable star must
        // become one single-row DPH access (Fig. 2b) — the first triple's
        // scan normalizes to an entity access and the rest merge into it.
        let (tree, exec) = pipeline(
            "SELECT ?s WHERE { ?s <http://p1> ?a . ?s <http://p2> ?b . ?s <http://p3> ?c }",
        );
        let empty = HashSet::new();
        let info = MergeInfo { spill_direct: &empty, spill_reverse: &empty, multi_direct: &empty, multi_reverse: &empty };
        let merged = merge_exec_tree(&tree, exec, &info);
        match &merged {
            ExecNode::Star(s) => assert_eq!(s.triples.len(), 3),
            ExecNode::Seq { children, .. } => {
                assert_eq!(children.len(), 1, "one star access: {children:?}");
                assert!(matches!(&children[0], ExecNode::Star(s) if s.triples.len() == 3));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn anchored_star_keeps_constant_access_separate() {
        // With a constant object the anchor is an RPH probe; the remaining
        // subject predicates merge into one DPH star joined to it.
        let (tree, exec) = pipeline(
            "SELECT ?s WHERE { ?s <http://p1> ?a . ?s <http://p2> ?b . ?s <http://p3> 'x' }",
        );
        let empty = HashSet::new();
        let info = MergeInfo { spill_direct: &empty, spill_reverse: &empty, multi_direct: &empty, multi_reverse: &empty };
        let merged = merge_exec_tree(&tree, exec, &info);
        let ExecNode::Seq { children, .. } = &merged else { panic!() };
        assert_eq!(children.len(), 2, "{children:?}");
        assert!(children.iter().any(|c| matches!(c, ExecNode::Star(s) if s.triples.len() == 2)));
    }

    #[test]
    fn spill_predicates_block_merging() {
        let (tree, exec) = pipeline("SELECT ?s WHERE { ?s <http://p1> ?a . ?s <http://p2> ?b }");
        let mut spill = HashSet::new();
        spill.insert("<http://p2>".to_string());
        let empty = HashSet::new();
        let info = MergeInfo { spill_direct: &spill, spill_reverse: &empty, multi_direct: &empty, multi_reverse: &empty };
        let merged = merge_exec_tree(&tree, exec, &info);
        let ExecNode::Seq { children, .. } = &merged else { panic!() };
        assert_eq!(children.len(), 2, "spill predicate must not merge");
    }

    #[test]
    fn union_with_different_vars_not_merged() {
        let (tree, exec) = pipeline(
            "SELECT * WHERE { { ?a <http://p> ?y } UNION { ?b <http://q> ?y } }",
        );
        let empty = HashSet::new();
        let info = MergeInfo { spill_direct: &empty, spill_reverse: &empty, multi_direct: &empty, multi_reverse: &empty };
        let merged = merge_exec_tree(&tree, unwrap_single(exec), &info);
        assert!(matches!(merged, ExecNode::Union(_)));
    }

    #[test]
    fn variable_predicate_never_merges() {
        let (tree, exec) =
            pipeline("SELECT * WHERE { ?s <http://p1> ?a . ?s ?p ?b }");
        let empty = HashSet::new();
        let info = MergeInfo { spill_direct: &empty, spill_reverse: &empty, multi_direct: &empty, multi_reverse: &empty };
        let merged = merge_exec_tree(&tree, exec, &info);
        let ExecNode::Seq { children, .. } = &merged else { panic!() };
        assert_eq!(children.len(), 2);
    }
}
