//! The hybrid SPARQL optimizer (paper §3.1): Data Flow Builder + Query Plan
//! Builder. Storage-independent — native stores could reuse it, per the
//! paper's claim.

pub mod cost;
pub mod dataflow;
pub mod exectree;
pub mod ptree;

use crate::stats::Stats;
pub use cost::{produced_vars, required_vars, tmc, Method};
pub use dataflow::{DataFlow, FlowEdge, FlowNode, FlowTree};
pub use exectree::{build_exec_tree, merge_exec_tree, ExecNode, MergeInfo, StarNode, StarSem};
pub use ptree::{PKind, PNode, PTree};

/// How the optimizer orders triple accesses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OptimizerMode {
    /// The paper's cost-based data-flow optimization.
    CostBased,
    /// Naive textual-order flow (the "sub-optimal flow" comparator of §3.3):
    /// triples are taken in parse order; each picks the cheapest method whose
    /// required variables are available.
    Naive,
}

/// Run the full optimization pipeline: parse tree → data flow → optimal flow
/// tree → execution tree (unmerged; merging is layout-specific).
pub fn optimize(tree: &PTree, stats: &Stats, mode: OptimizerMode) -> (FlowTree, ExecNode) {
    let flow_tree = match mode {
        OptimizerMode::CostBased => {
            let flow = DataFlow::build(tree, stats);
            FlowTree::compute(tree, &flow)
        }
        OptimizerMode::Naive => naive_flow(tree, stats),
    };
    let exec = build_exec_tree(tree, &flow_tree);
    (flow_tree, exec)
}

/// Textual-order flow: walk triples in parse order; choose, per triple, the
/// first of acs/aco/scan whose required variables are already bound.
pub fn naive_flow(tree: &PTree, _stats: &Stats) -> FlowTree {
    let nt = tree.triple_count();
    let mut bound: std::collections::HashSet<String> = std::collections::HashSet::new();
    let mut order = Vec::with_capacity(nt);
    let mut method_of = vec![Method::Scan; nt];
    let mut position = vec![usize::MAX; nt];
    let parent = vec![None; nt];
    for t in 0..nt {
        let method = [Method::Acs, Method::Aco, Method::Scan]
            .into_iter()
            .find(|&m| {
                cost::required_vars(&tree.triples[t], m).iter().all(|v| bound.contains(v))
            })
            .unwrap_or(Method::Scan);
        method_of[t] = method;
        position[t] = order.len();
        order.push(FlowNode { triple: t, method });
        for v in tree.triples[t].variables() {
            bound.insert(v.to_string());
        }
    }
    FlowTree { order, method_of, position, parent }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sparql::parse_sparql;

    #[test]
    fn naive_flow_follows_parse_order() {
        let q = parse_sparql(
            "SELECT * WHERE { ?s <http://p> ?o . ?o <http://q> 'x' . ?s <http://r> ?z }",
        )
        .unwrap();
        let tree = PTree::build(&q);
        let stats = Stats::default();
        let ft = naive_flow(&tree, &stats);
        assert_eq!(ft.order.iter().map(|n| n.triple).collect::<Vec<_>>(), vec![0, 1, 2]);
        // First triple has nothing bound: acs requires s → not available;
        // aco requires o → not available; falls to scan.
        assert_eq!(ft.method_of[0], Method::Scan);
        // Second: subject var o is now bound → acs.
        assert_eq!(ft.method_of[1], Method::Acs);
        assert_eq!(ft.method_of[2], Method::Acs);
    }

    #[test]
    fn optimize_cost_based_and_naive_cover_all_triples() {
        let q = parse_sparql(
            "SELECT * WHERE { ?s <http://p> 'anchor' . OPTIONAL { ?s <http://q> ?o } }",
        )
        .unwrap();
        let tree = PTree::build(&q);
        let stats = Stats { total_triples: 100, avg_per_subject: 3.0, avg_per_object: 2.0, ..Default::default() };
        for mode in [OptimizerMode::CostBased, OptimizerMode::Naive] {
            let (ft, exec) = optimize(&tree, &stats, mode);
            assert_eq!(ft.order.len(), 2);
            let mut ts = exec.triples_in_order();
            ts.sort_unstable();
            assert_eq!(ts, vec![0, 1]);
        }
    }
}
