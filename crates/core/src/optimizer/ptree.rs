//! Flattened query parse tree (paper Fig. 7) with the ancestor machinery of
//! Defs. 3.4–3.7: LCA, ancestors-to-LCA, OR-connected (∪) and
//! OPTIONAL-connected (∩) predicates over triple patterns.

use sparql::{Expression, GroupPattern, Pattern, Query, TriplePattern};

/// Node kinds of the parse tree.
#[derive(Debug, Clone, PartialEq)]
pub enum PKind {
    And,
    Or,
    Optional,
    /// Leaf: index into [`PTree::triples`].
    Triple(usize),
}

#[derive(Debug, Clone)]
pub struct PNode {
    pub kind: PKind,
    pub parent: Option<usize>,
    pub children: Vec<usize>,
}

/// The flattened parse tree of one query.
#[derive(Debug, Clone)]
pub struct PTree {
    pub nodes: Vec<PNode>,
    pub root: usize,
    /// All triple patterns, in parse order (index = "triple index").
    pub triples: Vec<TriplePattern>,
    /// Triple index → its leaf node.
    pub triple_nodes: Vec<usize>,
    /// FILTER expressions with the AND node (group) they are scoped to.
    pub filters: Vec<(usize, Expression)>,
}

impl PTree {
    pub fn build(query: &Query) -> PTree {
        let mut tree = PTree {
            nodes: Vec::new(),
            root: 0,
            triples: Vec::new(),
            triple_nodes: Vec::new(),
            filters: Vec::new(),
        };
        let root = tree.add_group(&query.pattern, None);
        tree.root = root;
        tree
    }

    fn add_node(&mut self, kind: PKind, parent: Option<usize>) -> usize {
        let idx = self.nodes.len();
        self.nodes.push(PNode { kind, parent, children: Vec::new() });
        if let Some(p) = parent {
            self.nodes[p].children.push(idx);
        }
        idx
    }

    fn add_group(&mut self, group: &GroupPattern, parent: Option<usize>) -> usize {
        let and = self.add_node(PKind::And, parent);
        for child in &group.children {
            self.add_pattern(child, and);
        }
        for f in &group.filters {
            self.filters.push((and, f.clone()));
        }
        and
    }

    fn add_pattern(&mut self, pattern: &Pattern, parent: usize) {
        match pattern {
            Pattern::Triple(t) => {
                let ti = self.triples.len();
                self.triples.push(t.clone());
                let node = self.add_node(PKind::Triple(ti), Some(parent));
                self.triple_nodes.push(node);
            }
            Pattern::Group(g) => {
                self.add_group(g, Some(parent));
            }
            Pattern::Union(alts) => {
                let or = self.add_node(PKind::Or, Some(parent));
                for alt in alts {
                    self.add_pattern(alt, or);
                }
            }
            Pattern::Optional(inner) => {
                let opt = self.add_node(PKind::Optional, Some(parent));
                self.add_pattern(inner, opt);
            }
            // Extension operators carry no triple patterns at this level:
            // they are lowered after the pattern chain (subquery bodies get
            // their own plan), so the join-order optimizer ignores them.
            Pattern::Bind { .. } | Pattern::Values(_) | Pattern::SubSelect(_) => {}
        }
    }

    /// Node chain from `node` (inclusive) to the root.
    pub fn ancestors(&self, node: usize) -> Vec<usize> {
        let mut out = vec![node];
        let mut cur = node;
        while let Some(p) = self.nodes[cur].parent {
            out.push(p);
            cur = p;
        }
        out
    }

    /// Least common ancestor of two nodes (Def. 3.4).
    pub fn lca(&self, a: usize, b: usize) -> usize {
        let aa = self.ancestors(a);
        let bb: std::collections::HashSet<usize> = self.ancestors(b).into_iter().collect();
        *aa.iter().find(|n| bb.contains(n)).expect("single tree always has an LCA")
    }

    /// Ancestors of `node` strictly below `lca` — ↑↑ of Def. 3.5 (includes
    /// `node` itself when `node != lca`).
    pub fn ancestors_to_lca(&self, node: usize, lca: usize) -> Vec<usize> {
        let mut out = Vec::new();
        let mut cur = node;
        while cur != lca {
            out.push(cur);
            cur = self.nodes[cur].parent.expect("lca must be an ancestor");
        }
        out
    }

    fn tnode(&self, triple: usize) -> usize {
        self.triple_nodes[triple]
    }

    /// ∪(t, t′): the two triples are alternatives of an OR (Def. 3.6).
    pub fn or_connected(&self, t1: usize, t2: usize) -> bool {
        let l = self.lca(self.tnode(t1), self.tnode(t2));
        self.nodes[l].kind == PKind::Or
    }

    /// ∩(t, t′): t′ is OPTIONAL-guarded relative to t (Def. 3.7) — an
    /// OPTIONAL node lies on t′'s path up to their LCA.
    pub fn optional_guarded(&self, t: usize, t_prime: usize) -> bool {
        let l = self.lca(self.tnode(t), self.tnode(t_prime));
        self.ancestors_to_lca(self.tnode(t_prime), l)
            .iter()
            .any(|&n| self.nodes[n].kind == PKind::Optional)
    }

    /// All intermediate ancestors of both triples up to (excluding) their
    /// LCA, *plus* the LCA itself — the node set quantified over by the
    /// mergeability definitions 3.9–3.11.
    pub fn merge_path(&self, t1: usize, t2: usize) -> (usize, Vec<usize>) {
        let l = self.lca(self.tnode(t1), self.tnode(t2));
        let mut path: Vec<usize> = Vec::new();
        for &n in self
            .ancestors_to_lca(self.tnode(t1), l)
            .iter()
            .chain(self.ancestors_to_lca(self.tnode(t2), l).iter())
        {
            // skip the triple leaves themselves
            if !matches!(self.nodes[n].kind, PKind::Triple(_)) {
                path.push(n);
            }
        }
        (l, path)
    }

    pub fn triple_count(&self) -> usize {
        self.triples.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sparql::parse_sparql;

    /// The paper's running example (Fig. 6a / Fig. 7).
    pub(crate) fn running_example() -> PTree {
        let q = parse_sparql(
            "SELECT * WHERE {
               ?x <http://home> 'Palo Alto' .
               { ?x <http://founder> ?y } UNION { ?x <http://member> ?y }
               { ?y <http://industry> 'Software' .
                 ?z <http://developer> ?y .
                 ?y <http://revenue> ?n .
                 OPTIONAL { ?y <http://employees> ?m } }
             }",
        )
        .unwrap();
        PTree::build(&q)
    }

    #[test]
    fn structure_matches_figure_7() {
        let t = running_example();
        assert_eq!(t.triple_count(), 7);
        assert_eq!(t.nodes[t.root].kind, PKind::And);
        // root has: t1 leaf, OR node, nested AND node
        assert_eq!(t.nodes[t.root].children.len(), 3);
        let or = t.nodes[t.root].children[1];
        assert_eq!(t.nodes[or].kind, PKind::Or);
    }

    #[test]
    fn or_connected_t2_t3() {
        let t = running_example();
        // triples are 0-indexed: t2 = index 1, t3 = index 2
        assert!(t.or_connected(1, 2));
        assert!(!t.or_connected(1, 4));
        assert!(!t.or_connected(0, 3));
    }

    #[test]
    fn optional_guards_t7_wrt_t6() {
        let t = running_example();
        // t6 = index 5 (revenue), t7 = index 6 (employees)
        assert!(t.optional_guarded(5, 6));
        assert!(!t.optional_guarded(6, 5));
        assert!(t.optional_guarded(0, 6));
        assert!(!t.optional_guarded(0, 4));
    }

    #[test]
    fn lca_of_t1_and_t2_is_root() {
        let t = running_example();
        let l = t.lca(t.triple_nodes[0], t.triple_nodes[1]);
        assert_eq!(l, t.root);
        // ↑↑(t1, LCA) = {t1 leaf} since t1 hangs directly off the root AND;
        // ↑↑(t2, LCA) contains the OR and the branch group.
        let up2 = t.ancestors_to_lca(t.triple_nodes[1], l);
        assert!(up2.iter().any(|&n| t.nodes[n].kind == PKind::Or));
    }

    #[test]
    fn filters_attach_to_their_group() {
        let q = parse_sparql(
            "SELECT * WHERE { ?x <http://p> ?y { ?y <http://q> ?z . FILTER(?z > 3) } }",
        )
        .unwrap();
        let t = PTree::build(&q);
        assert_eq!(t.filters.len(), 1);
        let (scope, _) = t.filters[0];
        assert_ne!(scope, t.root, "filter is scoped to the inner group");
    }
}
