//! The differential correctness oracle (DESIGN.md §4.10).
//!
//! Every store refactor in this workspace rides on one claim: the three
//! schema layouts, the plan cache, the parallel executor and the durability
//! layer are all *transparent* — none of them may change a query's answer.
//! This module turns that claim into a checkable function. [`check_case`]
//! evaluates one (dataset, query) pair against the [`crate::naive`]
//! reference evaluator and cross-checks the real engine over every layout ×
//! plan-cache on/off × thread widths {1, 4}, reporting the first violated
//! invariant:
//!
//! - **reference-equivalence** — the engine's solution multiset equals the
//!   naive evaluator's (canonically encoded, order-insensitive);
//! - **layout-agreement** — Entity, TripleStore and Vertical layouts agree;
//! - **cache-transparency** — a warm plan-cache hit and a cache-disabled run
//!   are byte-identical to the cold run on the same store;
//! - **thread-invariance** — 1-thread and 4-thread executions are
//!   byte-identical on the same store.
//!
//! Queries with LIMIT/OFFSET have no total order over candidate rows unless
//! ORDER BY pins one, so *which* window survives is implementation-defined.
//! For those the oracle checks the window rule instead: the result must be
//! a multiset subset of the naive evaluator's un-windowed rows with exactly
//! `clamp(total − offset, 0, limit)` rows. (Cross-path row equality is
//! deliberately not asserted there — it would be unsound.)
//!
//! [`shrink`] greedily minimizes a diverging case (drop triples ddmin-style,
//! then prune the query AST via `sparql::to_sparql` round-trips) and
//! [`write_case`]/[`read_case`] persist repros in `tests/corpus/`, which the
//! `fuzz_regressions` tier-1 test replays forever after.
//!
//! SPARQL 1.1 Update requests get the same treatment: [`check_update_case`]
//! runs a request through `crate::update::apply_update` on every layout and
//! compares both the reported effect counts and the final store contents
//! against [`naive_apply_update`], an independent set-semantic reference
//! that grounds WHERE clauses with the naive evaluator. [`shrink_update`]
//! minimizes diverging update cases and
//! [`write_update_case`]/[`read_update_case`] persist them as `.ucase`
//! files next to the query corpus.

use std::collections::HashMap;
use std::fmt;
use std::path::{Path, PathBuf};

use rdf::{Term, Triple};
use sparql::{
    parse_sparql, parse_update, to_sparql, to_sparql_update, GroupPattern, Pattern, Query,
    QueryForm, SelectVars, TermPattern, TriplePattern, Update, UpdateOp,
};

use crate::naive;
use crate::results::Solutions;
use crate::store::{Layout, RdfStore, StoreConfig};

/// All layouts the oracle cross-checks.
pub const LAYOUTS: [Layout; 3] = [Layout::Entity, Layout::TripleStore, Layout::Vertical];

/// The thread widths the oracle cross-checks on every store.
pub const THREAD_WIDTHS: [usize; 2] = [1, 4];

/// One violated oracle invariant, with enough context to reproduce.
#[derive(Debug, Clone)]
pub struct Divergence {
    /// Which invariant broke: `parse`, `load`, `evaluation`,
    /// `reference-equivalence`, `layout-agreement`, `cache-transparency`,
    /// `thread-invariance` or `recover-or-degrade`.
    pub invariant: &'static str,
    pub detail: String,
}

impl Divergence {
    fn new(invariant: &'static str, detail: impl Into<String>) -> Divergence {
        Divergence { invariant, detail: detail.into() }
    }
}

impl fmt::Display for Divergence {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}] {}", self.invariant, self.detail)
    }
}

/// Check every oracle invariant for one (dataset, query) pair.
pub fn check_case(triples: &[Triple], query: &str) -> Result<(), Divergence> {
    let parsed = match parse_sparql(query) {
        Ok(q) => q,
        Err(e) => {
            return Err(Divergence::new("parse", format!("reference parser rejected: {e}")))
        }
    };
    let windowed = parsed.limit.is_some() || parsed.offset.is_some();
    let reference = Reference::build(triples, &parsed);

    let mut layout_canons: Vec<(Layout, Vec<Vec<String>>)> = Vec::new();
    for layout in LAYOUTS {
        let base = check_one_store_transparency(layout, triples, query)?;
        check_against_reference(&format!("{layout:?}"), &base, &reference)?;
        layout_canons.push((layout, canon(&base)));
    }

    // Layout agreement, asserted directly for a sharper message than two
    // reference failures. Windowed queries agree on cardinality only (each
    // layout may legitimately pick a different window).
    let (first_layout, first) = &layout_canons[0];
    for (layout, rows) in &layout_canons[1..] {
        if windowed {
            if rows.len() != first.len() {
                return Err(Divergence::new(
                    "layout-agreement",
                    format!(
                        "{layout:?} returned {} rows but {first_layout:?} returned {}",
                        rows.len(),
                        first.len()
                    ),
                ));
            }
        } else if rows != first {
            return Err(Divergence::new(
                "layout-agreement",
                format!("{layout:?} and {first_layout:?} returned different solution multisets"),
            ));
        }
    }
    Ok(())
}

/// Run `query` on one layout's store under all four cache × thread configs,
/// asserting byte-identical `Solutions`; returns the baseline result.
fn check_one_store_transparency(
    layout: Layout,
    triples: &[Triple],
    query: &str,
) -> Result<Solutions, Divergence> {
    let mut store = RdfStore::new(StoreConfig::with_layout(layout));
    store
        .load(triples)
        .map_err(|e| Divergence::new("load", format!("{layout:?}: load failed: {e}")))?;
    store.set_threads(Some(THREAD_WIDTHS[0]));

    let run = |store: &RdfStore, config: &str| {
        store
            .query(query)
            .map_err(|e| Divergence::new("evaluation", format!("{layout:?} [{config}]: {e}")))
    };
    let byte_check = |got: &Solutions, base: &Solutions, config: &str| {
        if got != base || got.to_json() != base.to_json() {
            let inv = if config.contains("threads=4") {
                "thread-invariance"
            } else {
                "cache-transparency"
            };
            return Err(Divergence::new(
                inv,
                format!(
                    "{layout:?} [{config}] drifted from the cold 1-thread run: \
                     {} vs {} rows",
                    got.len(),
                    base.len()
                ),
            ));
        }
        Ok(())
    };

    let base = run(&store, "threads=1 cache=cold")?;
    let warm = run(&store, "threads=1 cache=warm")?;
    byte_check(&warm, &base, "threads=1 cache=warm")?;
    store.set_plan_cache(0);
    let uncached = run(&store, "threads=1 cache=off")?;
    byte_check(&uncached, &base, "threads=1 cache=off")?;
    store.set_threads(Some(THREAD_WIDTHS[1]));
    let wide = run(&store, "threads=4 cache=off")?;
    byte_check(&wide, &base, "threads=4 cache=off")?;
    store.set_plan_cache(512);
    let wide_cached = run(&store, "threads=4 cache=cold")?;
    byte_check(&wide_cached, &base, "threads=4 cache=cold")?;
    Ok(base)
}

/// The naive evaluator's verdicts for one parsed query.
struct Reference {
    /// Exact evaluation of the query as written.
    exact: Solutions,
    /// Evaluation with LIMIT/OFFSET stripped (equals `exact` when the query
    /// has no window).
    full_rows: HashMap<Vec<String>, usize>,
    full_len: usize,
    limit: Option<usize>,
    offset: usize,
    windowed: bool,
}

impl Reference {
    fn build(triples: &[Triple], parsed: &Query) -> Reference {
        let windowed = parsed.limit.is_some() || parsed.offset.is_some();
        let exact = naive::evaluate(triples, parsed);
        let full = if windowed {
            let mut unwindowed = parsed.clone();
            unwindowed.limit = None;
            unwindowed.offset = None;
            naive::evaluate(triples, &unwindowed)
        } else {
            exact.clone()
        };
        let full_len = full.len();
        let mut full_rows = HashMap::new();
        for row in canon(&full) {
            *full_rows.entry(row).or_insert(0) += 1;
        }
        Reference {
            exact,
            full_rows,
            full_len,
            limit: parsed.limit.map(|l| l as usize),
            offset: parsed.offset.unwrap_or(0) as usize,
            windowed,
        }
    }

    fn expected_window_len(&self) -> usize {
        let after_offset = self.full_len.saturating_sub(self.offset);
        match self.limit {
            Some(l) => after_offset.min(l),
            None => after_offset,
        }
    }
}

fn check_against_reference(
    path: &str,
    got: &Solutions,
    reference: &Reference,
) -> Result<(), Divergence> {
    let fail = |detail: String| Err(Divergence::new("reference-equivalence", detail));

    if let Some(expect) = reference.exact.boolean {
        return match got.boolean {
            Some(b) if b == expect => Ok(()),
            other => fail(format!("{path}: ASK returned {other:?}, reference says {expect}")),
        };
    }
    if got.boolean.is_some() {
        return fail(format!("{path}: SELECT produced a boolean result"));
    }
    if got.vars != reference.exact.vars {
        return fail(format!(
            "{path}: projected {:?}, reference projects {:?}",
            got.vars, reference.exact.vars
        ));
    }

    if reference.windowed {
        // Window rule: exact cardinality, and every returned row must exist
        // (with multiplicity) in the un-windowed reference multiset.
        let expected = reference.expected_window_len();
        if got.len() != expected {
            return fail(format!(
                "{path}: window returned {} rows, expected clamp(total {} − offset {}, limit \
                 {:?}) = {expected}",
                got.len(),
                reference.full_len,
                reference.offset,
                reference.limit
            ));
        }
        let mut remaining = reference.full_rows.clone();
        for row in canon(got) {
            match remaining.get_mut(&row) {
                Some(n) if *n > 0 => *n -= 1,
                _ => {
                    return fail(format!(
                        "{path}: window contains a row absent from the reference's un-windowed \
                         solutions: {row:?}"
                    ))
                }
            }
        }
        return Ok(());
    }

    let got_rows = canon(got);
    let ref_rows = canon(&reference.exact);
    if got_rows != ref_rows {
        return fail(format!(
            "{path}: {} rows vs reference {} (multisets differ)",
            got_rows.len(),
            ref_rows.len()
        ));
    }
    Ok(())
}

/// Re-run the reference check against an *existing* store — the chaos
/// harness points this at a crash-recovered store with the shadow triple
/// set it must answer for. Transparency sweeps are skipped (the store's
/// config is whatever recovery produced); reference-equivalence is not.
pub fn check_store_against(
    store: &RdfStore,
    triples: &[Triple],
    queries: &[String],
) -> Result<(), Divergence> {
    for query in queries {
        let parsed = match parse_sparql(query) {
            Ok(q) => q,
            Err(e) => {
                return Err(Divergence::new("parse", format!("reference parser rejected: {e}")))
            }
        };
        let reference = Reference::build(triples, &parsed);
        let got = store.query(query).map_err(|e| {
            Divergence::new("evaluation", format!("recovered store failed {query:?}: {e}"))
        })?;
        check_against_reference("recovered store", &got, &reference)?;
    }
    Ok(())
}

/// Canonical order-insensitive encoding of a solution multiset: every term
/// N-Triples-encoded (empty string for unbound), rows sorted.
pub fn canon(solutions: &Solutions) -> Vec<Vec<String>> {
    let mut rows: Vec<Vec<String>> = solutions
        .rows
        .iter()
        .map(|row| {
            row.iter().map(|t| t.as_ref().map(|t| t.encode()).unwrap_or_default()).collect()
        })
        .collect();
    rows.sort();
    rows
}

// ---------------------------------------------------------------------------
// Update oracle
// ---------------------------------------------------------------------------

/// Check one (dataset, update request) pair differentially: the real applier
/// (`crate::update::apply_update`) must leave every layout's store holding
/// exactly the triple set a naive set-semantic reference computes, and must
/// report the same effect counts. The reference deliberately shares *no*
/// code with the applier's grounding/instantiation path — WHERE clauses are
/// evaluated by [`crate::naive`] over a plain triple list — so a bug in the
/// SQL-backed path cannot cancel out in the comparison.
///
/// Because every layout is compared against the same reference state,
/// cross-layout agreement is implied; mismatches surface as
/// `update-reference-equivalence` with the offending layout named.
pub fn check_update_case(triples: &[Triple], update_text: &str) -> Result<(), Divergence> {
    let parsed = match parse_update(update_text) {
        Ok(u) => u,
        Err(e) => {
            return Err(Divergence::new("parse", format!("update parser rejected: {e}")))
        }
    };
    let mut deduped = triples.to_vec();
    deduped.sort();
    deduped.dedup();

    let mut expected = deduped.clone();
    let (exp_ins, exp_del) = naive_apply_update(&mut expected, &parsed);
    let expected_state = canon_triples(&expected);

    for layout in LAYOUTS {
        let mut store = RdfStore::new(StoreConfig::with_layout(layout));
        if !deduped.is_empty() {
            store
                .load(&deduped)
                .map_err(|e| Divergence::new("load", format!("{layout:?}: load failed: {e}")))?;
        }
        let outcome = crate::update::apply_update(&mut store, &parsed).map_err(|e| {
            Divergence::new("update-evaluation", format!("{layout:?}: apply failed: {e}"))
        })?;
        if (outcome.inserted, outcome.deleted) != (exp_ins, exp_del) {
            return Err(Divergence::new(
                "update-reference-equivalence",
                format!(
                    "{layout:?}: applier reported +{} −{}, reference says +{exp_ins} −{exp_del}",
                    outcome.inserted, outcome.deleted
                ),
            ));
        }
        let got = dump_store(layout, &store)?;
        if got != expected_state {
            return Err(Divergence::new(
                "update-reference-equivalence",
                format!(
                    "{layout:?}: final store holds {} triples, reference holds {} \
                     (triple sets differ)",
                    got.len(),
                    expected_state.len()
                ),
            ));
        }
    }
    Ok(())
}

/// Apply `update` to a set-semantic triple list, returning `(inserted,
/// deleted)` effect counts. This is the reference semantics the real applier
/// is judged against: operations run in order, each seeing its predecessors'
/// effects; a `DeleteInsert` grounds both templates against the pre-op state,
/// then applies all deletions before any insertion; instantiations with an
/// unbound variable, a literal subject or a non-IRI predicate are skipped.
pub fn naive_apply_update(state: &mut Vec<Triple>, update: &Update) -> (u64, u64) {
    let mut inserted = 0u64;
    let mut deleted = 0u64;
    let mut remove = |state: &mut Vec<Triple>, t: &Triple| {
        if let Some(i) = state.iter().position(|x| x == t) {
            state.remove(i);
            deleted += 1;
        }
    };
    for op in &update.ops {
        match op {
            UpdateOp::InsertData(ts) => {
                for t in ts {
                    if !state.contains(t) {
                        state.push(t.clone());
                        inserted += 1;
                    }
                }
            }
            UpdateOp::DeleteData(ts) => {
                for t in ts {
                    remove(state, t);
                }
            }
            UpdateOp::DeleteInsert { delete, insert, pattern } => {
                let (dels, ins) = naive_ground(state, delete, insert, pattern);
                for t in &dels {
                    remove(state, t);
                }
                for t in ins {
                    if !state.contains(&t) {
                        state.push(t);
                        inserted += 1;
                    }
                }
            }
        }
    }
    (inserted, deleted)
}

/// Ground both templates of a `DeleteInsert` against `state` using the naive
/// evaluator. Mirrors the applier's query shape (all pattern variables
/// projected without DISTINCT; ASK when the WHERE clause is fully ground)
/// but none of its machinery.
fn naive_ground(
    state: &[Triple],
    delete: &[TriplePattern],
    insert: &[TriplePattern],
    pattern: &GroupPattern,
) -> (Vec<Triple>, Vec<Triple>) {
    let vars = Pattern::Group(pattern.clone()).variables();
    let form = if vars.is_empty() {
        QueryForm::Ask
    } else {
        QueryForm::Select { vars: SelectVars::Vars(vars), distinct: false }
    };
    let query = Query {
        form,
        pattern: pattern.clone(),
        group_by: Vec::new(),
        having: Vec::new(),
        order_by: Vec::new(),
        limit: None,
        offset: None,
    };
    let mut solutions = naive::evaluate(state, &query);
    if solutions.boolean == Some(true) && solutions.rows.is_empty() {
        solutions.rows.push(Vec::new());
    }
    let positions: HashMap<&str, usize> =
        solutions.vars.iter().enumerate().map(|(i, v)| (v.as_str(), i)).collect();
    let mut dels = Vec::new();
    let mut ins = Vec::new();
    for row in &solutions.rows {
        for (template, out) in [(delete, &mut dels), (insert, &mut ins)] {
            for tp in template {
                if let Some(t) = naive_instantiate(tp, &positions, row) {
                    out.push(t);
                }
            }
        }
    }
    (dels, ins)
}

fn naive_instantiate(
    tp: &TriplePattern,
    positions: &HashMap<&str, usize>,
    row: &[Option<Term>],
) -> Option<Triple> {
    let resolve = |p: &TermPattern| -> Option<Term> {
        match p {
            TermPattern::Term(t) => Some(t.clone()),
            TermPattern::Var(v) => {
                positions.get(v.as_str()).and_then(|&i| row.get(i).cloned().flatten())
            }
        }
    };
    let s = resolve(&tp.subject)?;
    let p = resolve(&tp.predicate)?;
    let o = resolve(&tp.object)?;
    if s.is_literal() || !p.is_iri() {
        return None;
    }
    Some(Triple::new(s, p, o))
}

/// Canonical sorted N-Triples encoding of a triple set, comparable with
/// [`dump_store`]'s output.
fn canon_triples(triples: &[Triple]) -> Vec<Vec<String>> {
    let mut rows: Vec<Vec<String>> = triples
        .iter()
        .map(|t| vec![t.subject.encode(), t.predicate.encode(), t.object.encode()])
        .collect();
    rows.sort();
    rows
}

/// The full post-update contents of a store via `SELECT ?s ?p ?o`. A store
/// that was never loaded (the update was a pure no-op on an empty dataset)
/// has no tables to scan and is, by definition, empty.
fn dump_store(layout: Layout, store: &RdfStore) -> Result<Vec<Vec<String>>, Divergence> {
    if !store.is_loaded() {
        return Ok(Vec::new());
    }
    let sols = store.query("SELECT ?s ?p ?o WHERE { ?s ?p ?o }").map_err(|e| {
        Divergence::new("update-evaluation", format!("{layout:?}: state dump failed: {e}"))
    })?;
    Ok(canon(&sols))
}

// ---------------------------------------------------------------------------
// Shrinking
// ---------------------------------------------------------------------------

/// Greedily minimize a diverging case with [`check_case`] as the predicate.
pub fn shrink(triples: &[Triple], query: &str) -> (Vec<Triple>, String) {
    shrink_with(triples, query, |t, q| check_case(t, q).is_err())
}

/// Greedily minimize `(triples, query)` while `diverges` stays true:
/// ddmin-style chunked triple removal interleaved with one-step query-AST
/// reductions (drop a pattern/filter/branch/modifier), until a fixpoint or
/// the check budget runs out. The returned pair still diverges.
pub fn shrink_with(
    triples: &[Triple],
    query: &str,
    diverges: impl Fn(&[Triple], &str) -> bool,
) -> (Vec<Triple>, String) {
    let mut triples = triples.to_vec();
    let mut query = query.to_string();
    let mut budget = 500usize;

    loop {
        let mut progress = false;

        // Triples: try dropping chunks, halving the chunk size as we fail.
        let mut chunk = triples.len().max(1);
        while chunk >= 1 && budget > 0 {
            let mut i = 0;
            while i < triples.len() && triples.len() > 1 && budget > 0 {
                let end = (i + chunk).min(triples.len());
                let mut cand = triples[..i].to_vec();
                cand.extend_from_slice(&triples[end..]);
                budget -= 1;
                if !cand.is_empty() && diverges(&cand, &query) {
                    triples = cand;
                    progress = true;
                } else {
                    i = end;
                }
            }
            if chunk == 1 {
                break;
            }
            chunk /= 2;
        }

        // Query: accept the first one-step AST reduction that still diverges.
        if budget > 0 {
            if let Ok(ast) = parse_sparql(&query) {
                for candidate in reductions(&ast) {
                    let text = to_sparql(&candidate);
                    if text == query || budget == 0 {
                        continue;
                    }
                    budget -= 1;
                    if diverges(&triples, &text) {
                        query = text;
                        progress = true;
                        break;
                    }
                }
            }
        }

        if !progress || budget == 0 {
            break;
        }
    }
    (triples, query)
}

/// All one-step reductions of a query: strictly smaller ASTs that a shrinker
/// may try. Order matters — the cheapest wins (drop modifiers before
/// patterns) so minimized repros read naturally.
fn reductions(query: &Query) -> Vec<Query> {
    let mut out = Vec::new();
    let mut push = |f: &dyn Fn(&mut Query)| {
        let mut q = query.clone();
        f(&mut q);
        out.push(q);
    };
    if query.limit.is_some() {
        push(&|q| q.limit = None);
    }
    if query.offset.is_some() {
        push(&|q| q.offset = None);
    }
    if !query.order_by.is_empty() {
        push(&|q| q.order_by.clear());
    }
    if let sparql::QueryForm::Select { distinct: true, .. } = &query.form {
        push(&|q| {
            if let sparql::QueryForm::Select { distinct, .. } = &mut q.form {
                *distinct = false;
            }
        });
    }
    // Dropping a HAVING condition is cheap and often preserves divergence.
    for i in 0..query.having.len() {
        let mut q = query.clone();
        q.having.remove(i);
        out.push(q);
    }
    // Dropping a grouping key coarsens the groups but keeps the query an
    // aggregate whenever an aggregate item or HAVING remains. Keys that are
    // also projected bare must stay grouped or the query turns invalid.
    for i in 0..query.group_by.len() {
        let g = &query.group_by[i];
        let projected_bare = match query.select_items() {
            Some(items) => items.iter().any(|it| it.expr.is_none() && &it.var == g),
            None => query.projected_variables().iter().any(|v| v == g),
        };
        if projected_bare {
            continue;
        }
        let mut q = query.clone();
        q.group_by.remove(i);
        out.push(q);
    }
    for pattern in reduce_group(&query.pattern) {
        let mut q = query.clone();
        q.pattern = pattern;
        out.push(q);
    }
    out
}

fn reduce_group(group: &GroupPattern) -> Vec<GroupPattern> {
    let mut out = Vec::new();
    for i in 0..group.filters.len() {
        let mut g = group.clone();
        g.filters.remove(i);
        out.push(g);
    }
    for i in 0..group.children.len() {
        if group.children.len() + group.filters.len() > 1 {
            let mut g = group.clone();
            g.children.remove(i);
            out.push(g);
        }
        for reduced in reduce_pattern(&group.children[i]) {
            let mut g = group.clone();
            g.children[i] = reduced;
            out.push(g);
        }
    }
    out
}

fn reduce_pattern(pattern: &Pattern) -> Vec<Pattern> {
    match pattern {
        Pattern::Triple(_) => Vec::new(),
        Pattern::Group(g) => {
            let mut out: Vec<Pattern> =
                reduce_group(g).into_iter().map(Pattern::Group).collect();
            if g.children.len() == 1 && g.filters.is_empty() {
                out.push(g.children[0].clone()); // unwrap a trivial group
            }
            out
        }
        Pattern::Union(alts) => {
            // Replacing the union with a single branch is the big win.
            let mut out: Vec<Pattern> = alts.to_vec();
            for (i, alt) in alts.iter().enumerate() {
                for reduced in reduce_pattern(alt) {
                    let mut next = alts.to_vec();
                    next[i] = reduced;
                    out.push(Pattern::Union(next));
                }
            }
            out
        }
        Pattern::Optional(inner) => {
            let mut out = vec![inner.as_ref().clone()]; // promote to required
            for reduced in reduce_pattern(inner) {
                out.push(Pattern::Optional(Box::new(reduced)));
            }
            out
        }
        // BIND carries no sub-structure worth keeping; removal is handled by
        // the child-dropping loop in `reduce_group`.
        Pattern::Bind { .. } => Vec::new(),
        Pattern::Values(vb) => {
            // Dropping a data row keeps the block well-formed and shrinks
            // the join; dropping the whole block is `reduce_group`'s job.
            let mut out = Vec::new();
            if vb.rows.len() > 1 {
                for i in 0..vb.rows.len() {
                    let mut next = vb.clone();
                    next.rows.remove(i);
                    out.push(Pattern::Values(next));
                }
            }
            out
        }
        Pattern::SubSelect(sub) => {
            // Reduce the subquery with the full query reducer, keeping only
            // shapes a subquery may take (no solution modifiers).
            reductions(sub)
                .into_iter()
                .filter(|q| q.limit.is_none() && q.offset.is_none() && q.order_by.is_empty())
                .map(|q| Pattern::SubSelect(Box::new(q)))
                .collect()
        }
    }
}

/// Greedily minimize a diverging update case with [`check_update_case`] as
/// the predicate.
pub fn shrink_update(triples: &[Triple], update: &str) -> (Vec<Triple>, String) {
    shrink_update_with(triples, update, |t, u| check_update_case(t, u).is_err())
}

/// Greedily minimize `(triples, update)` while `diverges` stays true — the
/// update-request counterpart of [`shrink_with`]. Unlike query shrinking,
/// the dataset may shrink all the way to empty: updates bootstrap stores, so
/// an empty starting dataset is a perfectly good repro.
pub fn shrink_update_with(
    triples: &[Triple],
    update: &str,
    diverges: impl Fn(&[Triple], &str) -> bool,
) -> (Vec<Triple>, String) {
    let mut triples = triples.to_vec();
    let mut update = update.to_string();
    let mut budget = 500usize;

    loop {
        let mut progress = false;

        let mut chunk = triples.len().max(1);
        while chunk >= 1 && budget > 0 {
            let mut i = 0;
            while i < triples.len() && budget > 0 {
                let end = (i + chunk).min(triples.len());
                let mut cand = triples[..i].to_vec();
                cand.extend_from_slice(&triples[end..]);
                budget -= 1;
                if diverges(&cand, &update) {
                    triples = cand;
                    progress = true;
                } else {
                    i = end;
                }
            }
            if chunk == 1 {
                break;
            }
            chunk /= 2;
        }

        // Update: accept the first one-step AST reduction that still
        // diverges, re-serialized through `to_sparql_update`.
        if budget > 0 {
            if let Ok(ast) = parse_update(&update) {
                for candidate in update_reductions(&ast) {
                    let text = to_sparql_update(&candidate);
                    if text == update || budget == 0 {
                        continue;
                    }
                    budget -= 1;
                    if diverges(&triples, &text) {
                        update = text;
                        progress = true;
                        break;
                    }
                }
            }
        }

        if !progress || budget == 0 {
            break;
        }
    }
    (triples, update)
}

/// All one-step reductions of an update request: drop a whole operation,
/// drop one triple from a DATA block, drop one template triple from a
/// `DeleteInsert` (keeping at least one across both templates, so the op
/// stays meaningful), or reduce the WHERE group the same way query
/// shrinking does.
fn update_reductions(update: &Update) -> Vec<Update> {
    let mut out = Vec::new();
    if update.ops.len() > 1 {
        for i in 0..update.ops.len() {
            let mut u = update.clone();
            u.ops.remove(i);
            out.push(u);
        }
    }
    for (i, op) in update.ops.iter().enumerate() {
        match op {
            UpdateOp::InsertData(ts) | UpdateOp::DeleteData(ts) if ts.len() > 1 => {
                for j in 0..ts.len() {
                    let mut u = update.clone();
                    if let UpdateOp::InsertData(v) | UpdateOp::DeleteData(v) = &mut u.ops[i] {
                        v.remove(j);
                    }
                    out.push(u);
                }
            }
            UpdateOp::DeleteInsert { delete, insert, pattern } => {
                if delete.len() + insert.len() > 1 {
                    for j in 0..delete.len() {
                        let mut u = update.clone();
                        if let UpdateOp::DeleteInsert { delete, .. } = &mut u.ops[i] {
                            delete.remove(j);
                        }
                        out.push(u);
                    }
                    for j in 0..insert.len() {
                        let mut u = update.clone();
                        if let UpdateOp::DeleteInsert { insert, .. } = &mut u.ops[i] {
                            insert.remove(j);
                        }
                        out.push(u);
                    }
                }
                for g in reduce_group(pattern) {
                    let mut u = update.clone();
                    if let UpdateOp::DeleteInsert { pattern, .. } = &mut u.ops[i] {
                        *pattern = g;
                    }
                    out.push(u);
                }
            }
            _ => {}
        }
    }
    out
}

// ---------------------------------------------------------------------------
// Regression corpus
// ---------------------------------------------------------------------------

const QUERY_HEADER: &str = "-- query";
const UPDATE_HEADER: &str = "-- update";
const DATA_HEADER: &str = "-- data";

/// Write a (minimized) case into `dir` as `<stem>.case`: a `# `-commented
/// preamble, the query under `-- query`, the dataset as N-Triples under
/// `-- data`. Returns the written path.
pub fn write_case(
    dir: &Path,
    stem: &str,
    triples: &[Triple],
    query: &str,
    note: &str,
) -> std::io::Result<PathBuf> {
    write_case_file(dir, &format!("{stem}.case"), QUERY_HEADER, triples, query, note)
}

/// Write a (minimized) update case into `dir` as `<stem>.ucase`: same shape
/// as [`write_case`] but with the update request under `-- update`. The
/// distinct extension keeps query replay (`check_case`) and update replay
/// (`check_update_case`) from picking up each other's files.
pub fn write_update_case(
    dir: &Path,
    stem: &str,
    triples: &[Triple],
    update: &str,
    note: &str,
) -> std::io::Result<PathBuf> {
    write_case_file(dir, &format!("{stem}.ucase"), UPDATE_HEADER, triples, update, note)
}

fn write_case_file(
    dir: &Path,
    file: &str,
    header: &str,
    triples: &[Triple],
    text: &str,
    note: &str,
) -> std::io::Result<PathBuf> {
    std::fs::create_dir_all(dir)?;
    let mut out = String::new();
    out.push_str("# db2rdf fuzz regression case (replayed by tests/fuzz_regressions.rs)\n");
    for line in note.lines() {
        out.push_str("# ");
        out.push_str(line);
        out.push('\n');
    }
    out.push_str(header);
    out.push('\n');
    out.push_str(text.trim_end());
    out.push('\n');
    out.push_str(DATA_HEADER);
    out.push('\n');
    for t in triples {
        out.push_str(&format!(
            "{} {} {} .\n",
            t.subject.encode(),
            t.predicate.encode(),
            t.object.encode()
        ));
    }
    let path = dir.join(file);
    std::fs::write(&path, out)?;
    Ok(path)
}

/// Parse a `.case` file back into its (dataset, query) pair. The file is
/// read line by line and each data line is parsed as it arrives
/// (`parse_ntriples_chunk` with the absolute line number, so errors point
/// into the file) — the N-Triples text is never buffered whole, which
/// keeps corpus replay cheap even for generated stress cases.
pub fn read_case(path: &Path) -> Result<(Vec<Triple>, String), String> {
    read_case_file(path, QUERY_HEADER)
}

/// Parse a `.ucase` file back into its (dataset, update request) pair.
pub fn read_update_case(path: &Path) -> Result<(Vec<Triple>, String), String> {
    read_case_file(path, UPDATE_HEADER)
}

fn read_case_file(path: &Path, header: &str) -> Result<(Vec<Triple>, String), String> {
    use std::io::BufRead as _;
    let file =
        std::fs::File::open(path).map_err(|e| format!("{}: {e}", path.display()))?;
    let mut text_lines: Vec<String> = Vec::new();
    let mut triples: Vec<Triple> = Vec::new();
    let mut section = 0u8; // 0 = preamble, 1 = query/update, 2 = data
    for (lineno, line) in std::io::BufReader::new(file).lines().enumerate() {
        let line = line.map_err(|e| format!("{}: {e}", path.display()))?;
        match line.trim_end() {
            h if h == header => section = 1,
            DATA_HEADER => section = 2,
            _ if line.starts_with('#') && section == 0 => {}
            _ => match section {
                1 => text_lines.push(line),
                2 => {
                    let quads = rdf::parse_ntriples_chunk(&line, lineno + 1)
                        .map_err(|e| format!("{}: bad N-Triples: {e}", path.display()))?;
                    triples.extend(quads.into_iter().map(|q| q.triple));
                }
                _ => {}
            },
        }
    }
    let text = text_lines.join("\n").trim().to_string();
    if text.is_empty() {
        return Err(format!("{}: missing `{header}` section", path.display()));
    }
    Ok((triples, text))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rdf::Term;

    fn triple(s: &str, p: &str, o: Term) -> Triple {
        Triple::new(Term::iri(s), Term::iri(p), o)
    }

    fn fixture() -> Vec<Triple> {
        vec![
            triple("http://s/1", "http://p/0", Term::iri("http://s/2")),
            triple("http://s/2", "http://p/0", Term::iri("http://s/3")),
            triple("http://s/1", "http://p/1", Term::typed_lit("7", XSD_INT)),
            triple("http://s/2", "http://p/1", Term::typed_lit("9", XSD_INT)),
            triple("http://s/3", "http://p/2", Term::lit("val1")),
            triple("http://s/3", "http://p/2", Term::lang_lit("val2", "en")),
        ]
    }

    const XSD_INT: &str = "http://www.w3.org/2001/XMLSchema#integer";

    #[test]
    fn clean_cases_pass_every_invariant() {
        let data = fixture();
        for query in [
            "SELECT ?s ?o WHERE { ?s <http://p/0> ?o }",
            "SELECT ?s WHERE { ?s <http://p/1> ?n FILTER (?n > 8) }",
            "SELECT DISTINCT ?o WHERE { ?s <http://p/2> ?o }",
            "SELECT ?s ?v WHERE { ?s <http://p/0> ?o OPTIONAL { ?o <http://p/1> ?v } }",
            "SELECT ?s WHERE { { ?s <http://p/0> ?a } UNION { ?s <http://p/1> ?b } }",
            "ASK { ?s <http://p/0> ?o . ?o <http://p/0> ?o2 }",
            "SELECT ?s ?o WHERE { ?s <http://p/0> ?o } ORDER BY ?s LIMIT 1",
            "SELECT ?s WHERE { ?s ?p ?o } LIMIT 3 OFFSET 1",
            "ASK {}",
        ] {
            check_case(&data, query).unwrap_or_else(|d| panic!("{query}: {d}"));
        }
    }

    #[test]
    fn window_rule_catches_wrong_cardinality() {
        // A malformed "engine" result is simulated by checking a query whose
        // window the reference can count: 6 triples, LIMIT 2 OFFSET 5 → 1.
        let data = fixture();
        let parsed = parse_sparql("SELECT ?s WHERE { ?s ?p ?o } LIMIT 2 OFFSET 5").unwrap();
        let reference = Reference::build(&data, &parsed);
        assert_eq!(reference.expected_window_len(), 1);
        assert_eq!(reference.full_len, 6);
    }

    #[test]
    fn shrink_minimizes_against_a_synthetic_predicate() {
        // Pretend the bug needs the <http://bad> triple plus a FILTER
        // anywhere in the query; shrink must keep exactly those.
        let mut data = fixture();
        data.push(triple("http://bad", "http://p/0", Term::iri("http://s/1")));
        let query = "SELECT DISTINCT ?s ?o WHERE { ?s <http://p/0> ?o . ?o <http://p/1> ?n \
                     FILTER (?n > 8) } ORDER BY ?s LIMIT 7";
        let diverges = |t: &[Triple], q: &str| {
            t.iter().any(|t| t.subject.encode().contains("bad")) && q.contains("FILTER")
        };
        assert!(diverges(&data, query), "fixture sanity");
        let (min_data, min_query) = shrink_with(&data, query, diverges);
        assert_eq!(min_data.len(), 1, "{min_data:?}");
        assert!(min_data[0].subject.encode().contains("bad"));
        assert!(min_query.contains("FILTER"));
        assert!(!min_query.contains("LIMIT"), "{min_query}");
        assert!(!min_query.contains("ORDER"), "{min_query}");
        assert!(!min_query.contains("DISTINCT"), "{min_query}");
        // The minimized query still parses — it must, to be a usable repro.
        parse_sparql(&min_query).unwrap();
    }

    #[test]
    fn clean_update_cases_pass() {
        let data = fixture();
        for update in [
            "INSERT DATA { <http://s/9> <http://p/0> <http://s/1> . }",
            "DELETE DATA { <http://s/1> <http://p/0> <http://s/2> . }",
            // Duplicate insert + miss delete: both must count zero effects.
            "INSERT DATA { <http://s/1> <http://p/0> <http://s/2> } ; \
             DELETE DATA { <http://s/9> <http://p/5> \"nope\" }",
            "DELETE WHERE { ?s <http://p/0> ?o }",
            "DELETE WHERE { ?s ?p ?o }",
            "DELETE { ?s <http://p/1> ?n } INSERT { ?s <http://p/3> ?n } \
             WHERE { ?s <http://p/1> ?n FILTER (?n > 8) }",
            // Literal-subject instantiation must be skipped, not inserted.
            "INSERT { ?o <http://p/4> ?s } WHERE { ?s <http://p/2> ?o }",
            // Fully ground WHERE: ASK semantics decide one-or-zero solutions.
            "INSERT { <http://s/7> <http://p/0> <http://s/8> } \
             WHERE { <http://s/1> <http://p/0> <http://s/2> }",
            "INSERT { <http://s/7> <http://p/0> <http://s/8> } \
             WHERE { <http://s/1> <http://p/0> <http://s/9> }",
            // Ops see their predecessors' effects, in order.
            "INSERT DATA { <http://s/7> <http://p/5> 3 } ; \
             DELETE WHERE { <http://s/7> <http://p/5> ?o }",
        ] {
            check_update_case(&data, update).unwrap_or_else(|d| panic!("{update}: {d}"));
        }
    }

    #[test]
    fn update_oracle_runs_on_an_empty_dataset() {
        check_update_case(&[], "INSERT DATA { <http://s/0> <http://p/0> <http://s/1> . }")
            .unwrap();
        check_update_case(&[], "DELETE WHERE { ?s ?p ?o }").unwrap();
    }

    #[test]
    fn naive_reference_counts_effects() {
        let mut state = fixture();
        let update = parse_update(
            "DELETE { ?s <http://p/0> ?o } INSERT { ?o <http://p/0> ?s } \
             WHERE { ?s <http://p/0> ?o }",
        )
        .unwrap();
        let (ins, del) = naive_apply_update(&mut state, &update);
        assert_eq!((ins, del), (2, 2), "two edges reversed");
        assert_eq!(state.len(), 6);
        assert!(state.contains(&triple("http://s/2", "http://p/0", Term::iri("http://s/1"))));
    }

    #[test]
    fn shrink_update_minimizes_against_a_synthetic_predicate() {
        let mut data = fixture();
        data.push(triple("http://bad", "http://p/0", Term::iri("http://s/1")));
        let update = "INSERT DATA { <http://s/5> <http://p/5> 1 . <http://s/6> <http://p/5> 2 } ; \
                      DELETE { ?s <http://p/0> ?o } WHERE { ?s <http://p/0> ?o }";
        let diverges = |t: &[Triple], u: &str| {
            t.iter().any(|t| t.subject.encode().contains("bad")) && u.contains("DELETE")
        };
        assert!(diverges(&data, update), "fixture sanity");
        let (min_data, min_update) = shrink_update_with(&data, update, diverges);
        assert_eq!(min_data.len(), 1, "{min_data:?}");
        assert!(min_data[0].subject.encode().contains("bad"));
        assert!(min_update.contains("DELETE"));
        assert!(!min_update.contains("INSERT DATA"), "{min_update}");
        parse_update(&min_update).unwrap();
    }

    #[test]
    fn update_corpus_round_trips() {
        let dir =
            std::env::temp_dir().join(format!("db2rdf-oracle-utest-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let data = fixture();
        let update = "INSERT DATA { <http://s/0> <http://p/0> <http://s/1> . }";
        let path = write_update_case(&dir, "u0", &data, update, "seed 7").unwrap();
        assert!(path.to_string_lossy().ends_with("u0.ucase"));
        let (got_data, got_update) = read_update_case(&path).unwrap();
        assert_eq!(got_data, data);
        assert_eq!(got_update, update);
        // A query reader must not accept an update file, and vice versa.
        assert!(read_case(&path).is_err());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn corpus_round_trips() {
        let dir = std::env::temp_dir().join(format!("db2rdf-oracle-test-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let data = fixture();
        let query = "SELECT ?s\nWHERE { ?s <http://p/0> ?o }";
        let path = write_case(&dir, "t0", &data, query, "seed 42\ninvariant: demo").unwrap();
        let (got_data, got_query) = read_case(&path).unwrap();
        assert_eq!(got_data, data);
        assert_eq!(got_query, query);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
