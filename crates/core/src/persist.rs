//! Serialization of the store's side metadata — predicate layouts,
//! statistics and the load report — into the `sys_meta` relational table,
//! so a bulk-loaded store survives a restart (`RdfStore::open`).
//!
//! Everything relational (DPH/DS/RPH/RS rows, indexes) is already covered
//! by the relstore WAL + snapshots; this module handles the in-process
//! state that lives *next to* the tables. The format is a line-based text
//! codec (TAB-separated fields, `\\`/`\t`/`\n` escaped) chosen for easy
//! inspection with SQL: `SELECT * FROM sys_meta`. Floats are stored as
//! `f64::to_bits` hex so round-trips are exact.
//!
//! Hash compositions are not serialized function-by-function: seeds are
//! fixed (see `layout::hashing`), so `(fn_count, range)` reconstructs them.

use std::collections::{HashMap, HashSet};

use crate::baseline::VerticalLayout;
use crate::layout::{HashComposition, PredMapping, SideLayout};
use crate::loader::LoadReport;
use crate::stats::{PredStat, Stats};

/// Decode failures carry a human-readable reason; callers surface them as
/// corruption (the table exists but does not parse).
pub type DecodeResult<T> = std::result::Result<T, String>;

fn esc(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '\t' => out.push_str("\\t"),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
    out
}

fn unesc(s: &str) -> DecodeResult<String> {
    let mut out = String::with_capacity(s.len());
    let mut chars = s.chars();
    while let Some(c) = chars.next() {
        if c != '\\' {
            out.push(c);
            continue;
        }
        match chars.next() {
            Some('\\') => out.push('\\'),
            Some('t') => out.push('\t'),
            Some('n') => out.push('\n'),
            other => return Err(format!("bad escape {other:?}")),
        }
    }
    Ok(out)
}

fn f64_hex(x: f64) -> String {
    format!("{:016x}", x.to_bits())
}

fn parse_f64(s: &str) -> DecodeResult<f64> {
    u64::from_str_radix(s, 16).map(f64::from_bits).map_err(|e| format!("bad f64 bits {s:?}: {e}"))
}

fn parse_int<T: std::str::FromStr>(s: &str) -> DecodeResult<T>
where
    T::Err: std::fmt::Display,
{
    s.parse().map_err(|e| format!("bad integer {s:?}: {e}"))
}

/// Split one record line into its TAB-separated raw fields.
fn fields(line: &str) -> Vec<&str> {
    line.split('\t').collect()
}

fn sorted(set: &HashSet<String>) -> Vec<&String> {
    let mut v: Vec<&String> = set.iter().collect();
    v.sort();
    v
}

// ---------------------------------------------------------------------------
// sys_dict front-coded pages
// ---------------------------------------------------------------------------

/// Encode one `sys_dict` page: consecutive dictionary entries front-coded
/// against each other as `{lcp}:{suffix_len}:{suffix}` records. The first
/// entry's lcp is always 0 (pages are self-contained), and suffix lengths
/// are explicit so no separator can collide with term content. Prefix
/// lengths stop on character boundaries, so every suffix is valid UTF-8.
pub fn encode_dict_page(terms: &[String]) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let mut prev = "";
    for t in terms {
        let lcp = crate::dict::char_lcp(prev, t);
        let suffix = &t[lcp..];
        let _ = write!(out, "{lcp}:{}:{suffix}", suffix.len());
        prev = t;
    }
    out
}

/// Decode one `sys_dict` page back into its `n` terms. Any structural
/// mismatch — bad counts, prefix lengths past the previous term, non-
/// boundary slices, trailing bytes — is corruption, never a panic.
pub fn decode_dict_page(text: &str, n: usize) -> DecodeResult<Vec<String>> {
    fn read_num(s: &str) -> DecodeResult<(usize, &str)> {
        let colon = s.find(':').ok_or("dict page: missing ':'")?;
        let v = parse_int::<usize>(&s[..colon])?;
        Ok((v, &s[colon + 1..]))
    }
    let mut out = Vec::with_capacity(n);
    let mut prev = String::new();
    let mut rest = text;
    for i in 0..n {
        let (lcp, r) = read_num(rest)?;
        let (len, r) = read_num(r)?;
        let suffix = r
            .get(..len)
            .ok_or_else(|| format!("dict page entry {i}: suffix length {len} out of range"))?;
        if !prev.is_char_boundary(lcp) || lcp > prev.len() {
            return Err(format!("dict page entry {i}: prefix length {lcp} invalid"));
        }
        prev.truncate(lcp);
        prev.push_str(suffix);
        out.push(prev.clone());
        rest = &r[len..];
    }
    if !rest.is_empty() {
        return Err(format!("dict page: {} trailing bytes", rest.len()));
    }
    Ok(out)
}

// ---------------------------------------------------------------------------
// SideLayout
// ---------------------------------------------------------------------------

pub fn encode_side(side: &SideLayout) -> String {
    let mut out = String::new();
    match &side.mapping {
        PredMapping::Hashed(h) => {
            out.push_str(&format!("hashed\t{}\t{}\n", h.fn_count(), h.range()));
        }
        PredMapping::Colored { colors, tail } => {
            out.push_str(&format!("colored\t{}\t{}\n", tail.fn_count(), tail.range()));
            let mut pairs: Vec<(&String, &usize)> = colors.iter().collect();
            pairs.sort();
            for (p, c) in pairs {
                out.push_str(&format!("color\t{}\t{c}\n", esc(p)));
            }
        }
    }
    out.push_str(&format!("ncols\t{}\n", side.ncols));
    for p in sorted(&side.multivalued) {
        out.push_str(&format!("multi\t{}\n", esc(p)));
    }
    for p in sorted(&side.spill_preds) {
        out.push_str(&format!("spill\t{}\n", esc(p)));
    }
    out
}

pub fn decode_side(text: &str) -> DecodeResult<SideLayout> {
    let mut lines = text.lines();
    let head = lines.next().ok_or("empty side layout")?;
    let hf = fields(head);
    let comp = |f: &[&str]| -> DecodeResult<HashComposition> {
        let n: usize = parse_int(f[1])?;
        let m: usize = parse_int(f[2])?;
        if n == 0 || m == 0 {
            return Err(format!("degenerate hash composition {n}x{m}"));
        }
        Ok(HashComposition::new(n, m))
    };
    let mut mapping = match hf.first() {
        Some(&"hashed") if hf.len() == 3 => PredMapping::Hashed(comp(&hf)?),
        Some(&"colored") if hf.len() == 3 => {
            PredMapping::Colored { colors: HashMap::new(), tail: comp(&hf)? }
        }
        other => return Err(format!("bad mapping header {other:?}")),
    };
    let mut ncols = None;
    let mut multivalued = HashSet::new();
    let mut spill_preds = HashSet::new();
    for line in lines {
        let f = fields(line);
        match (f.first(), f.len()) {
            (Some(&"color"), 3) => {
                if let PredMapping::Colored { colors, .. } = &mut mapping {
                    colors.insert(unesc(f[1])?, parse_int(f[2])?);
                } else {
                    return Err("color record in hashed mapping".into());
                }
            }
            (Some(&"ncols"), 2) => ncols = Some(parse_int(f[1])?),
            (Some(&"multi"), 2) => {
                multivalued.insert(unesc(f[1])?);
            }
            (Some(&"spill"), 2) => {
                spill_preds.insert(unesc(f[1])?);
            }
            other => return Err(format!("bad side layout record {other:?}")),
        }
    }
    Ok(SideLayout {
        mapping,
        ncols: ncols.ok_or("missing ncols")?,
        multivalued,
        spill_preds,
    })
}

// ---------------------------------------------------------------------------
// VerticalLayout
// ---------------------------------------------------------------------------

pub fn encode_vertical(v: &VerticalLayout) -> String {
    let mut out = String::new();
    for (pred, table) in &v.tables {
        out.push_str(&format!("{}\t{}\n", esc(pred), esc(table)));
    }
    out
}

pub fn decode_vertical(text: &str) -> DecodeResult<VerticalLayout> {
    let mut v = VerticalLayout::default();
    for line in text.lines() {
        let f = fields(line);
        if f.len() != 2 {
            return Err(format!("bad vertical record {line:?}"));
        }
        v.tables.insert(unesc(f[0])?, unesc(f[1])?);
    }
    Ok(v)
}

// ---------------------------------------------------------------------------
// Stats
// ---------------------------------------------------------------------------

pub fn encode_stats(s: &Stats) -> String {
    let mut out = format!(
        "totals\t{}\t{}\t{}\t{}\t{}\n",
        s.total_triples,
        s.distinct_subjects,
        s.distinct_objects,
        f64_hex(s.avg_per_subject),
        f64_hex(s.avg_per_object),
    );
    // Top-k records carry both the dictionary ID and the lexical form:
    // `{tag}\t{id}\t{count}\t{form}`, sorted by ID for determinism.
    let mut top = |tag: &str, map: &HashMap<i64, u64>| {
        let mut pairs: Vec<(&i64, &u64)> = map.iter().collect();
        pairs.sort();
        for (id, n) in pairs {
            let form = s.top_forms.get(id).map(String::as_str).unwrap_or("");
            out.push_str(&format!("{tag}\t{id}\t{n}\t{}\n", esc(form)));
        }
    };
    top("tsubj", &s.top_subjects);
    top("tobj", &s.top_objects);
    {
        let mut pairs: Vec<(&String, &u64)> = s.predicate_counts.iter().collect();
        pairs.sort();
        for (k, n) in pairs {
            out.push_str(&format!("pcount\t{}\t{n}\n", esc(k)));
        }
    }
    let mut pairs: Vec<(&String, &PredStat)> = s.predicate_stats.iter().collect();
    pairs.sort_by(|a, b| a.0.cmp(b.0));
    for (p, st) in pairs {
        out.push_str(&format!(
            "pstat\t{}\t{}\t{}\t{}\n",
            esc(p),
            st.count,
            st.distinct_subjects,
            st.distinct_objects
        ));
    }
    out
}

pub fn decode_stats(text: &str) -> DecodeResult<Stats> {
    let mut s = Stats::default();
    let mut saw_totals = false;
    for line in text.lines() {
        let f = fields(line);
        match (f.first(), f.len()) {
            (Some(&"totals"), 6) => {
                s.total_triples = parse_int(f[1])?;
                s.distinct_subjects = parse_int(f[2])?;
                s.distinct_objects = parse_int(f[3])?;
                s.avg_per_subject = parse_f64(f[4])?;
                s.avg_per_object = parse_f64(f[5])?;
                saw_totals = true;
            }
            (Some(&"tsubj"), 4) => {
                s.register_top_subject(parse_int(f[1])?, &unesc(f[3])?, parse_int(f[2])?);
            }
            (Some(&"tobj"), 4) => {
                s.register_top_object(parse_int(f[1])?, &unesc(f[3])?, parse_int(f[2])?);
            }
            (Some(&"pcount"), 3) => {
                s.predicate_counts.insert(unesc(f[1])?, parse_int(f[2])?);
            }
            (Some(&"pstat"), 5) => {
                s.predicate_stats.insert(
                    unesc(f[1])?,
                    PredStat {
                        count: parse_int(f[2])?,
                        distinct_subjects: parse_int(f[3])?,
                        distinct_objects: parse_int(f[4])?,
                    },
                );
            }
            other => return Err(format!("bad stats record {other:?}")),
        }
    }
    if !saw_totals {
        return Err("stats missing totals record".into());
    }
    Ok(s)
}

// ---------------------------------------------------------------------------
// LoadReport
// ---------------------------------------------------------------------------

pub fn encode_report(r: &LoadReport) -> String {
    format!(
        "{}\t{}\t{}\t{}\t{}\t{}\t{}\t{}\t{}\t{}\t{}\t{}\t{}",
        r.triples,
        r.dph_rows,
        r.rph_rows,
        r.dph_spill_rows,
        r.rph_spill_rows,
        r.dph_cols,
        r.rph_cols,
        r.predicates,
        f64_hex(r.dph_coverage),
        f64_hex(r.rph_coverage),
        f64_hex(r.dph_null_fraction),
        f64_hex(r.rph_null_fraction),
        r.storage_bytes,
    )
}

pub fn decode_report(text: &str) -> DecodeResult<LoadReport> {
    let f = fields(text.trim_end_matches('\n'));
    if f.len() != 13 {
        return Err(format!("load report has {} fields, want 13", f.len()));
    }
    Ok(LoadReport {
        triples: parse_int(f[0])?,
        dph_rows: parse_int(f[1])?,
        rph_rows: parse_int(f[2])?,
        dph_spill_rows: parse_int(f[3])?,
        rph_spill_rows: parse_int(f[4])?,
        dph_cols: parse_int(f[5])?,
        rph_cols: parse_int(f[6])?,
        predicates: parse_int(f[7])?,
        dph_coverage: parse_f64(f[8])?,
        rph_coverage: parse_f64(f[9])?,
        dph_null_fraction: parse_f64(f[10])?,
        rph_null_fraction: parse_f64(f[11])?,
        storage_bytes: parse_int(f[12])?,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn side_layout_roundtrip_hashed() {
        let side = SideLayout {
            mapping: PredMapping::Hashed(HashComposition::new(2, 37)),
            ncols: 37,
            multivalued: ["<a>".to_string(), "<with\ttab>".to_string()].into(),
            spill_preds: ["<s>".to_string()].into(),
        };
        let back = decode_side(&encode_side(&side)).unwrap();
        assert_eq!(back.ncols, 37);
        assert_eq!(back.multivalued, side.multivalued);
        assert_eq!(back.spill_preds, side.spill_preds);
        // Reconstructed composition maps predicates identically.
        for p in ["<x>", "<y>", "<z>"] {
            assert_eq!(back.candidates(p), side.candidates(p));
        }
    }

    #[test]
    fn side_layout_roundtrip_colored() {
        let mut colors = HashMap::new();
        colors.insert("<p>".to_string(), 3);
        colors.insert("<q\nnewline>".to_string(), 0);
        let side = SideLayout {
            mapping: PredMapping::Colored { colors: colors.clone(), tail: HashComposition::new(3, 8) },
            ncols: 8,
            multivalued: HashSet::new(),
            spill_preds: HashSet::new(),
        };
        let back = decode_side(&encode_side(&side)).unwrap();
        match back.mapping {
            PredMapping::Colored { colors: c, tail } => {
                assert_eq!(c, colors);
                assert_eq!(tail.range(), 8);
                assert_eq!(tail.fn_count(), 3);
            }
            _ => panic!("expected colored mapping"),
        }
    }

    #[test]
    fn stats_roundtrip_exact_floats() {
        let mut s = Stats { total_triples: 9, avg_per_subject: 1.0 / 3.0, ..Stats::default() };
        s.register_top_subject(3, "<hub\twith tab>", 7);
        s.predicate_stats.insert(
            "<p>".into(),
            PredStat { count: 5, distinct_subjects: 2, distinct_objects: 4 },
        );
        let back = decode_stats(&encode_stats(&s)).unwrap();
        assert_eq!(back.total_triples, 9);
        assert_eq!(back.avg_per_subject, s.avg_per_subject); // bit-exact
        assert_eq!(back.top_subjects.get(&3), Some(&7));
        assert_eq!(back.top_forms.get(&3).map(String::as_str), Some("<hub\twith tab>"));
        assert_eq!(back.subject_count("<hub\twith tab>"), 7.0);
        assert_eq!(back.predicate_stats.get("<p>").map(|p| p.count), Some(5));
    }

    #[test]
    fn report_roundtrip() {
        let r = LoadReport {
            triples: 21,
            dph_rows: 5,
            dph_coverage: 0.875,
            storage_bytes: 4096,
            ..LoadReport::default()
        };
        let back = decode_report(&encode_report(&r)).unwrap();
        assert_eq!(back.triples, 21);
        assert_eq!(back.dph_rows, 5);
        assert_eq!(back.dph_coverage, 0.875);
        assert_eq!(back.storage_bytes, 4096);
    }

    #[test]
    fn vertical_roundtrip() {
        let mut v = VerticalLayout::default();
        v.tables.insert("<p>".into(), "vp_0".into());
        v.tables.insert("<q>".into(), "vp_1".into());
        let back = decode_vertical(&encode_vertical(&v)).unwrap();
        assert_eq!(back.tables, v.tables);
    }

    #[test]
    fn garbage_decodes_to_errors_not_panics() {
        assert!(decode_side("").is_err());
        assert!(decode_side("nonsense\t1\t2").is_err());
        assert!(decode_side("hashed\t0\t0").is_err());
        assert!(decode_stats("totals\tnot\tenough").is_err());
        assert!(decode_report("1\t2\t3").is_err());
        assert!(decode_vertical("only-one-field").is_err());
        assert!(unesc("trailing\\").is_err());
    }
}
