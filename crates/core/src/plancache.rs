//! Sharded, epoch-invalidated LRU cache of full SPARQL planning artifacts.
//!
//! The paper's §3 optimizer (data-flow graph → flow tree → exec tree → SQL)
//! is pure given the query text, the statistics, the predicate layouts, and
//! the term dictionary — so its output can be reused across requests as
//! long as none of those inputs has moved. The serving path (`crates/
//! server`) sees the same query text thousands of times; production SPARQL
//! endpoints all amortize planning the same way.
//!
//! ## Epoch invalidation
//!
//! [`RdfStore`](crate::RdfStore) keeps a **mutation epoch**, bumped by every
//! `load`/`insert`/`delete` call. A cache entry records the epoch it was
//! planned under; a lookup under any other epoch treats the entry as stale,
//! removes it, and counts an invalidation. This is deliberately coarse: any
//! mutation can move the statistics (changing the chosen flow), the
//! predicate layouts (changing column assignments after a spill), or the
//! term dictionary (a constant that translated to `NULL` because it was
//! unknown may now have an ID) — so no cached plan survives any of them.
//! Under [`SharedStore`](crate::SharedStore) mutations hold the store's
//! write lock while they bump the epoch, and planning reads it under the
//! read lock, so a reader can never observe a torn epoch/plan pair.
//!
//! ## Concurrency & eviction
//!
//! The cache itself uses interior mutability (planning happens on the
//! `&self` query path): entries live in [`SHARD_COUNT`] shards, each behind
//! its own mutex, keyed by the hash of the normalized query text — readers
//! planning different queries contend only within a shard, and no lookup
//! ever touches the store's write lock. Each shard evicts least-recently-
//! used entries past its share of the configured capacity (small caches
//! collapse to one shard so eviction order is exact and testable).

use std::collections::hash_map::DefaultHasher;
use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use sparql::Query;

use crate::optimizer::ExecNode;

/// Everything `plan()` produces for one query text: reusing this object
/// skips parsing, optimization, star merging, and SQL generation.
#[derive(Debug)]
pub struct CachedPlan {
    /// The parsed query (form, pattern, modifiers).
    pub query: Query,
    /// Optimal-flow summary: (1-based triple id in parse order, access-
    /// method name) — what `explain` reports.
    pub flow: Vec<(usize, &'static str)>,
    /// The merged execution tree (`None` for the trivial zero-pattern
    /// plan); rendered lazily by `explain` so the query path never pays
    /// for the debug formatting.
    pub exec: Option<ExecNode>,
    /// The generated SQL; `None` for the trivial zero-pattern plan, which
    /// has a fixed answer and never touches the relational engine.
    pub sql: Option<String>,
    /// Projected variable names, in SELECT order.
    pub projected: Vec<String>,
    /// Per-column decode mode, positional with `projected`: term-domain
    /// columns resolve through the dictionary, value-domain columns
    /// (aggregates, BIND arithmetic) decode as plain numbers.
    pub projected_modes: Vec<crate::results::DecodeMode>,
}

/// Counter snapshot for `/stats` and tests.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct PlanCacheStats {
    /// Lookups that returned a current-epoch plan.
    pub hits: u64,
    /// Lookups that found nothing usable (includes invalidations).
    pub misses: u64,
    /// Entries dropped by LRU capacity pressure.
    pub evictions: u64,
    /// Entries dropped because their epoch was stale.
    pub invalidations: u64,
    /// Mutations that proved they could not change any plan (no new
    /// dictionary IDs, no layout growth) and therefore left the epoch — and
    /// every cached entry — untouched. The scoped-invalidation win counter.
    pub invalidations_avoided: u64,
    /// Entries currently cached.
    pub entries: usize,
    /// Configured total capacity.
    pub capacity: usize,
}

/// Shards used for caches of at least [`SHARD_THRESHOLD`] entries.
const SHARD_COUNT: usize = 8;

/// Below this capacity the cache uses a single shard: per-shard capacities
/// of one or two entries make LRU order depend on key hashing, which is
/// useless for small caches and untestable.
const SHARD_THRESHOLD: usize = 64;

struct Entry {
    plan: Arc<CachedPlan>,
    /// Store epoch the plan was computed under.
    epoch: u64,
    /// Shard-local recency tick; smallest = least recently used.
    last_used: u64,
}

#[derive(Default)]
struct Shard {
    entries: HashMap<Box<str>, Entry>,
    tick: u64,
}

/// The cache. Capacity is fixed at construction (`RdfStore::set_plan_cache`
/// swaps the whole cache to resize).
pub struct PlanCache {
    shards: Box<[Mutex<Shard>]>,
    capacity: usize,
    per_shard: usize,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
    invalidations: AtomicU64,
    invalidations_avoided: AtomicU64,
}

impl std::fmt::Debug for PlanCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = self.stats();
        f.debug_struct("PlanCache").field("capacity", &self.capacity).field("stats", &s).finish()
    }
}

/// Cache-key normalization. Deliberately conservative: only surrounding
/// whitespace is stripped — collapsing interior runs would conflate
/// queries that differ inside string literals (`'a b'` vs `'a  b'`).
pub fn normalize(text: &str) -> &str {
    text.trim()
}

impl PlanCache {
    /// A cache holding at most `capacity` plans (`capacity >= 1`; callers
    /// model "disabled" as the absence of a cache, not a zero capacity).
    pub fn new(capacity: usize) -> PlanCache {
        let capacity = capacity.max(1);
        let n = if capacity >= SHARD_THRESHOLD { SHARD_COUNT } else { 1 };
        PlanCache {
            shards: (0..n).map(|_| Mutex::new(Shard::default())).collect(),
            capacity,
            per_shard: capacity.div_ceil(n),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
            invalidations: AtomicU64::new(0),
            invalidations_avoided: AtomicU64::new(0),
        }
    }

    /// Record that a mutation completed without bumping the store epoch —
    /// every cached plan survived it (see `RdfStore::insert`/`delete`).
    pub fn note_invalidation_avoided(&self) {
        self.invalidations_avoided.fetch_add(1, Ordering::Relaxed);
    }

    fn shard(&self, key: &str) -> &Mutex<Shard> {
        let mut h = DefaultHasher::new();
        key.hash(&mut h);
        &self.shards[(h.finish() as usize) % self.shards.len()]
    }

    /// Look up `key` (pre-normalized) under the store's current `epoch`.
    /// A stale-epoch entry is removed and counted as both an invalidation
    /// and a miss.
    pub fn get(&self, key: &str, epoch: u64) -> Option<Arc<CachedPlan>> {
        let mut shard = self.shard(key).lock().unwrap_or_else(|e| e.into_inner());
        let shard = &mut *shard; // split field borrows (entries vs. tick)
        match shard.entries.get_mut(key) {
            Some(entry) if entry.epoch == epoch => {
                shard.tick += 1;
                entry.last_used = shard.tick;
                self.hits.fetch_add(1, Ordering::Relaxed);
                Some(entry.plan.clone())
            }
            Some(_) => {
                shard.entries.remove(key);
                self.invalidations.fetch_add(1, Ordering::Relaxed);
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
            None => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Insert (or replace) the plan for `key`, tagged with the epoch it was
    /// computed under, evicting the shard's least-recently-used entry when
    /// over capacity.
    pub fn insert(&self, key: &str, epoch: u64, plan: Arc<CachedPlan>) {
        let mut shard = self.shard(key).lock().unwrap_or_else(|e| e.into_inner());
        shard.tick += 1;
        let last_used = shard.tick;
        shard.entries.insert(key.into(), Entry { plan, epoch, last_used });
        while shard.entries.len() > self.per_shard {
            let victim = shard
                .entries
                .iter()
                .min_by_key(|(_, e)| e.last_used)
                .map(|(k, _)| k.clone())
                .expect("shard over capacity is non-empty");
            shard.entries.remove(&victim);
            self.evictions.fetch_add(1, Ordering::Relaxed);
        }
    }

    pub fn stats(&self) -> PlanCacheStats {
        PlanCacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            invalidations: self.invalidations.load(Ordering::Relaxed),
            invalidations_avoided: self.invalidations_avoided.load(Ordering::Relaxed),
            entries: self
                .shards
                .iter()
                .map(|s| s.lock().unwrap_or_else(|e| e.into_inner()).entries.len())
                .sum(),
            capacity: self.capacity,
        }
    }
}

// The server shares the cache across worker threads through `SharedStore`.
const _: fn() = || {
    fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<PlanCache>();
};

#[cfg(test)]
mod tests {
    use super::*;
    use sparql::parse_sparql;

    fn plan_for(text: &str) -> Arc<CachedPlan> {
        let query = parse_sparql(text).unwrap();
        let projected = query.projected_variables();
        let projected_modes = vec![crate::results::DecodeMode::Term; projected.len()];
        Arc::new(CachedPlan {
            query,
            flow: Vec::new(),
            exec: None,
            sql: Some(format!("-- {text}")),
            projected,
            projected_modes,
        })
    }

    const Q1: &str = "SELECT ?s WHERE { ?s <http://p> ?o }";
    const Q2: &str = "SELECT ?o WHERE { ?s <http://p> ?o }";
    const Q3: &str = "ASK { ?s <http://p> ?o }";

    #[test]
    fn hit_miss_and_epoch_invalidation() {
        let cache = PlanCache::new(16);
        assert!(cache.get(Q1, 0).is_none());
        cache.insert(Q1, 0, plan_for(Q1));
        assert!(cache.get(Q1, 0).is_some());
        // Epoch moved: the entry is stale, removed, and counted.
        assert!(cache.get(Q1, 1).is_none());
        assert!(cache.get(Q1, 1).is_none(), "stale entry was removed");
        let s = cache.stats();
        assert_eq!((s.hits, s.invalidations), (1, 1));
        assert_eq!(s.misses, 3);
        assert_eq!(s.entries, 0);
    }

    #[test]
    fn lru_eviction_order_is_exact_below_shard_threshold() {
        let cache = PlanCache::new(2); // single shard: exact LRU
        cache.insert(Q1, 0, plan_for(Q1));
        cache.insert(Q2, 0, plan_for(Q2));
        assert!(cache.get(Q1, 0).is_some()); // Q1 now most recent
        cache.insert(Q3, 0, plan_for(Q3)); // evicts Q2
        assert!(cache.get(Q2, 0).is_none(), "LRU entry evicted");
        assert!(cache.get(Q1, 0).is_some());
        assert!(cache.get(Q3, 0).is_some());
        assert_eq!(cache.stats().evictions, 1);
        assert_eq!(cache.stats().entries, 2);
    }

    #[test]
    fn normalization_trims_but_preserves_interior_whitespace() {
        assert_eq!(normalize("  SELECT * WHERE {}\n"), "SELECT * WHERE {}");
        let a = "SELECT ?s WHERE { ?s <p> 'a  b' }";
        assert_eq!(normalize(a), a, "interior runs must survive");
    }

    #[test]
    fn replacing_a_key_keeps_one_entry() {
        let cache = PlanCache::new(4);
        cache.insert(Q1, 0, plan_for(Q1));
        cache.insert(Q1, 1, plan_for(Q1));
        assert_eq!(cache.stats().entries, 1);
        assert!(cache.get(Q1, 1).is_some(), "replacement carries the new epoch");
        // A lookup under any *other* epoch treats the entry as stale and
        // removes it — even an older epoch (epochs only move forward in
        // practice, but the guard is equality, not ordering).
        assert!(cache.get(Q1, 0).is_none());
        assert_eq!(cache.stats().entries, 0);
    }
}
