//! SPARQL solution sets decoded from relational results.
//!
//! This is the single late-materialization point of the pipeline: the
//! relational layer computes entirely over dictionary IDs, and strings are
//! produced only here, when rows become `Solutions`.

use rdf::{decode_term, Term};
use relstore::{Rel, Value};

use crate::dict::Dict;

/// How a projected column's values map back to RDF terms.
///
/// Most columns live in the *term domain*: dictionary IDs (entity layout)
/// or canonical term strings (baselines), resolved through the dictionary.
/// Columns computed by aggregates or BIND arithmetic live in the *value
/// domain* (`RDF_VAL` output): an `Int` there is an actual integer, not a
/// dictionary ID, and must never be resolved — a `COUNT` of 17 decoding as
/// whatever term interned at ID 17 would be silently wrong.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DecodeMode {
    Term,
    Plain,
}

/// A set of SPARQL solutions (bag semantics, ordered when the query orders).
#[derive(Debug, Clone, PartialEq)]
pub struct Solutions {
    /// Projected variable names, in SELECT order.
    pub vars: Vec<String>,
    /// One row per solution; `None` = unbound.
    pub rows: Vec<Vec<Option<Term>>>,
    /// `Some(b)` for ASK queries.
    pub boolean: Option<bool>,
}

impl Solutions {
    pub fn from_select(vars: Vec<String>, rel: &Rel) -> Solutions {
        Solutions::from_select_dict(vars, rel, None)
    }

    /// Decode a relation, resolving integer dictionary IDs through `dict`.
    /// Without a dictionary (baseline layouts), integers decode as plain
    /// integer literals.
    pub fn from_select_dict(vars: Vec<String>, rel: &Rel, dict: Option<&Dict>) -> Solutions {
        Solutions::from_select_modes(vars, None, rel, dict)
    }

    /// Like [`Solutions::from_select_dict`] but with a per-column
    /// [`DecodeMode`] (`None` = all term-domain). `modes` is positional and
    /// must match `vars` when present.
    pub fn from_select_modes(
        vars: Vec<String>,
        modes: Option<&[DecodeMode]>,
        rel: &Rel,
        dict: Option<&Dict>,
    ) -> Solutions {
        let n = vars.len();
        let mode_of = |i: usize| {
            modes.and_then(|m| m.get(i)).copied().unwrap_or(DecodeMode::Term)
        };
        let rows = rel
            .rows
            .iter()
            .map(|r| {
                r.iter()
                    .take(n)
                    .enumerate()
                    .map(|(i, v)| decode_value(v, dict, mode_of(i)))
                    .collect()
            })
            .collect();
        Solutions { vars, rows, boolean: None }
    }

    pub fn from_ask(nonempty: bool) -> Solutions {
        Solutions { vars: Vec::new(), rows: Vec::new(), boolean: Some(nonempty) }
    }

    /// The unit solution set: exactly one row with every projected
    /// variable unbound — the result of a SELECT over a pattern with zero
    /// triple patterns (SPARQL's μ0, the join identity).
    pub fn unit(vars: Vec<String>) -> Solutions {
        let row = vec![None; vars.len()];
        Solutions { vars, rows: vec![row], boolean: None }
    }

    pub fn len(&self) -> usize {
        self.rows.len()
    }

    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// The binding of `var` in row `i`.
    pub fn get(&self, i: usize, var: &str) -> Option<&Term> {
        let col = self.vars.iter().position(|v| v == var)?;
        self.rows.get(i)?.get(col)?.as_ref()
    }

    /// Render as a simple text table (for examples and debugging).
    pub fn to_table(&self) -> String {
        let mut out = String::new();
        if let Some(b) = self.boolean {
            out.push_str(if b { "ASK → true\n" } else { "ASK → false\n" });
            return out;
        }
        out.push_str(&self.vars.join("\t"));
        out.push('\n');
        for row in &self.rows {
            let cells: Vec<String> = row
                .iter()
                .map(|t| t.as_ref().map(|t| t.encode()).unwrap_or_else(|| "∅".into()))
                .collect();
            out.push_str(&cells.join("\t"));
            out.push('\n');
        }
        out
    }
}

// -- W3C result serialization (SPARQL 1.1 Query Results JSON / TSV) ---------

/// Append `s` to `out` as a JSON string body (no surrounding quotes),
/// escaping per RFC 8259: quote, backslash, and all control characters.
fn json_escape_into(s: &str, out: &mut String) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0C}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
}

/// One RDF term as a SPARQL 1.1 Results JSON object, e.g.
/// `{"type":"uri","value":"http://a"}`.
fn term_to_json(term: &Term, out: &mut String) {
    match term {
        Term::Iri(v) => {
            out.push_str("{\"type\":\"uri\",\"value\":\"");
            json_escape_into(v, out);
            out.push_str("\"}");
        }
        Term::Blank(v) => {
            out.push_str("{\"type\":\"bnode\",\"value\":\"");
            json_escape_into(v, out);
            out.push_str("\"}");
        }
        Term::Literal { lexical, lang, datatype } => {
            out.push_str("{\"type\":\"literal\",\"value\":\"");
            json_escape_into(lexical, out);
            out.push('"');
            if let Some(l) = lang {
                out.push_str(",\"xml:lang\":\"");
                json_escape_into(l, out);
                out.push('"');
            } else if let Some(dt) = datatype {
                out.push_str(",\"datatype\":\"");
                json_escape_into(dt, out);
                out.push('"');
            }
            out.push('}');
        }
    }
}

impl Solutions {
    /// Serialize per the W3C *SPARQL 1.1 Query Results JSON Format*:
    /// `{"head":{"vars":[...]},"results":{"bindings":[...]}}` for SELECT,
    /// `{"head":{},"boolean":b}` for ASK. Unbound variables are omitted
    /// from their binding objects, as the spec requires.
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(64 + self.rows.len() * 64);
        if let Some(b) = self.boolean {
            out.push_str("{\"head\":{},\"boolean\":");
            out.push_str(if b { "true" } else { "false" });
            out.push('}');
            return out;
        }
        out.push_str("{\"head\":{\"vars\":[");
        for (i, v) in self.vars.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push('"');
            json_escape_into(v, &mut out);
            out.push('"');
        }
        out.push_str("]},\"results\":{\"bindings\":[");
        for (ri, row) in self.rows.iter().enumerate() {
            if ri > 0 {
                out.push(',');
            }
            out.push('{');
            let mut first = true;
            for (var, cell) in self.vars.iter().zip(row.iter()) {
                let Some(term) = cell else { continue };
                if !first {
                    out.push(',');
                }
                first = false;
                out.push('"');
                json_escape_into(var, &mut out);
                out.push_str("\":");
                term_to_json(term, &mut out);
            }
            out.push('}');
        }
        out.push_str("]}}");
        out
    }

    /// Serialize per the W3C *SPARQL 1.1 Query Results TSV Format*: a
    /// header line of `?`-prefixed variables, then one line per solution
    /// with terms in SPARQL (N-Triples) syntax — IRIs in angle brackets,
    /// literals quoted with `\t`/`\n`/`\r`/`\"`/`\\` escaped (so a cell
    /// never contains a raw tab or newline), blank nodes as `_:label` —
    /// and unbound variables as empty fields.
    ///
    /// The W3C CSV/TSV result format is defined for SELECT only — it has
    /// no boolean form — so ASK solutions serialize to an empty document
    /// here; the protocol layer refuses `ASK` + TSV with 406 (or steers
    /// negotiation to JSON) before ever reaching this method.
    pub fn to_tsv(&self) -> String {
        let mut out = String::with_capacity(32 + self.rows.len() * 48);
        if self.boolean.is_some() {
            return out;
        }
        for (i, v) in self.vars.iter().enumerate() {
            if i > 0 {
                out.push('\t');
            }
            out.push('?');
            out.push_str(v);
        }
        out.push('\n');
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                if i > 0 {
                    out.push('\t');
                }
                if let Some(term) = cell {
                    term.encode_into(&mut out);
                }
            }
            out.push('\n');
        }
        out
    }
}

fn decode_value(v: &Value, dict: Option<&Dict>, mode: DecodeMode) -> Option<Term> {
    match v {
        Value::Null => None,
        Value::Str(s) => decode_term(s).or_else(|| Some(Term::lit(s.to_string()))),
        Value::Int(i) => match mode {
            // Value-domain integers (aggregate/BIND outputs) are actual
            // numbers, never dictionary IDs.
            DecodeMode::Plain => Some(Term::int_lit(*i)),
            DecodeMode::Term => match dict.and_then(|d| d.resolve(*i)) {
                Some(enc) => decode_term(&enc).or_else(move || Some(Term::lit(enc))),
                None => Some(Term::int_lit(*i)),
            },
        },
        Value::Double(d) => Some(Term::double_lit(*d)),
        Value::Bool(b) => Some(Term::lit(b.to_string())),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use relstore::OutCol;

    #[test]
    fn decodes_terms_and_nulls() {
        let rel = Rel {
            cols: vec![
                OutCol { qualifier: None, name: "c_x".into() },
                OutCol { qualifier: None, name: "c_y".into() },
            ],
            rows: vec![vec![Value::str("<http://a>"), Value::Null]],
        };
        let s = Solutions::from_select(vec!["x".into(), "y".into()], &rel);
        assert_eq!(s.len(), 1);
        assert_eq!(s.get(0, "x"), Some(&Term::iri("http://a")));
        assert_eq!(s.get(0, "y"), None);
    }

    #[test]
    fn extra_hidden_columns_ignored() {
        let rel = Rel {
            cols: vec![
                OutCol { qualifier: None, name: "c_x".into() },
                OutCol { qualifier: None, name: "hidden".into() },
            ],
            rows: vec![vec![Value::str("\"v\""), Value::str("junk")]],
        };
        let s = Solutions::from_select(vec!["x".into()], &rel);
        assert_eq!(s.rows[0].len(), 1);
        assert_eq!(s.get(0, "x"), Some(&Term::lit("v")));
    }

    #[test]
    fn integer_ids_materialize_through_dictionary() {
        let mut dict = Dict::new();
        let id = dict.intern("<http://a>");
        let rel = Rel {
            cols: vec![
                OutCol { qualifier: None, name: "c_x".into() },
                OutCol { qualifier: None, name: "c_y".into() },
            ],
            rows: vec![vec![Value::Int(id), Value::Int(999)]],
        };
        let s = Solutions::from_select_dict(vec!["x".into(), "y".into()], &rel, Some(&dict));
        assert_eq!(s.get(0, "x"), Some(&Term::iri("http://a")));
        // Unresolvable integers fall back to plain integer literals.
        assert_eq!(s.get(0, "y"), Some(&Term::int_lit(999)));
    }

    #[test]
    fn plain_mode_never_resolves_through_dictionary() {
        let mut dict = Dict::new();
        let id = dict.intern("<http://a>");
        let rel = Rel {
            cols: vec![
                OutCol { qualifier: None, name: "c_x".into() },
                OutCol { qualifier: None, name: "c_n".into() },
            ],
            rows: vec![vec![Value::Int(id), Value::Int(id)]],
        };
        let s = Solutions::from_select_modes(
            vec!["x".into(), "n".into()],
            Some(&[DecodeMode::Term, DecodeMode::Plain]),
            &rel,
            Some(&dict),
        );
        assert_eq!(s.get(0, "x"), Some(&Term::iri("http://a")));
        // Same Int, but a COUNT-style column stays a plain integer.
        assert_eq!(s.get(0, "n"), Some(&Term::int_lit(id)));
    }

    #[test]
    fn ask_solutions() {
        let s = Solutions::from_ask(true);
        assert_eq!(s.boolean, Some(true));
        assert!(s.is_empty());
        assert!(s.to_table().contains("true"));
    }
}
