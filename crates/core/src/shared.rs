//! A thread-safe handle over [`RdfStore`] with snapshot-isolated reads and
//! group-committed writes.
//!
//! ## Snapshot-per-reader
//!
//! Readers never take a lock that a writer can hold: [`SharedStore::snapshot`]
//! hands out an `Arc<RdfStore>` of the last *published* state through a
//! hand-rolled atomic-pointer cell ([`SnapshotCell`]), so a long analytic
//! query runs to completion against its own frozen snapshot no matter how
//! many updates commit underneath it. Snapshots are cheap: the relational
//! tables are copy-on-write (`Arc`-per-table), the term dictionary is shared
//! behind its own `RwLock` (append-only, so grown entries never invalidate a
//! frozen snapshot's rows), and the plan cache is shared (entries are
//! epoch-tagged, so snapshot readers reuse — and warm — the same cache).
//!
//! ## Group commit
//!
//! Writers serialize behind a single mutex. An update request is parsed
//! outside the lock, queued, and then either (a) discovers a concurrent
//! leader already applied it and returns, or (b) acquires the writer lock,
//! drains the whole queue, applies every queued request — each as its own
//! WAL frame via [`crate::update::apply_update`] — and pays **one** fsync
//! for the group. Under write pressure the fsync amortizes across every
//! request that arrived while the previous group was committing; the
//! batch-size histogram in [`UpdateStats`] makes the coalescing observable.
//!
//! A group is all-or-nothing at the WAL: if any request's frame fails to
//! append, or the group fsync fails, the WAL is already truncated back to
//! the last synced boundary (see `relstore::WalWriter`), so the leader rolls
//! the in-memory state back to the group start, fails every queued request,
//! and marks the store degraded — acknowledged updates stay durable,
//! unacknowledged ones vanish atomically. A request that fails *logically*
//! (unsupported WHERE shape, budget exhaustion) rolls back alone and does
//! not poison its group.

use std::sync::atomic::{AtomicBool, AtomicPtr, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, MutexGuard};

use rdf::Triple;

use crate::error::{Result, StoreError};
use crate::loader::LoadReport;
use crate::plancache::PlanCacheStats;
use crate::results::Solutions;
use crate::store::RdfStore;
use crate::update::{apply_update, UpdateOutcome};

// ---------------------------------------------------------------------------
// SnapshotCell: a hand-rolled Arc swap (no external crates)
// ---------------------------------------------------------------------------

/// Lock-free publication cell holding an `Arc<T>`.
///
/// `load()` is wait-free in the common case and never blocks `store()`;
/// `store()` (callers must serialize it — here, the writer mutex) swaps the
/// pointer and waits only for readers *mid-load on the old epoch* before
/// releasing the old value, a window of a few instructions — never for the
/// lifetime of the returned `Arc`.
///
/// The algorithm: readers announce themselves in one of two epoch-parity
/// slots before touching the pointer, then re-validate the epoch after
/// reading it. A writer swaps the pointer, bumps the epoch, and drains the
/// *old* parity slot. A reader that passed re-validation registered before
/// the writer's drain began, so the writer cannot free the old value until
/// that reader has taken its strong reference; a reader that failed
/// re-validation never dereferences what it read and retries.
struct SnapshotCell<T> {
    ptr: AtomicPtr<T>,
    epoch: AtomicUsize,
    readers: [AtomicUsize; 2],
}

impl<T> SnapshotCell<T> {
    fn new(value: Arc<T>) -> SnapshotCell<T> {
        SnapshotCell {
            ptr: AtomicPtr::new(Arc::into_raw(value) as *mut T),
            epoch: AtomicUsize::new(0),
            readers: [AtomicUsize::new(0), AtomicUsize::new(0)],
        }
    }

    fn load(&self) -> Arc<T> {
        loop {
            let e = self.epoch.load(Ordering::SeqCst);
            let slot = &self.readers[e & 1];
            slot.fetch_add(1, Ordering::SeqCst);
            let p = self.ptr.load(Ordering::SeqCst);
            if self.epoch.load(Ordering::SeqCst) == e {
                // The epoch-`e` writer has not bumped the epoch, so it has
                // not begun draining our slot: it will observe our
                // registration and wait until we hold a strong reference.
                // `p` is therefore alive here (it is either the epoch-`e`
                // value or that writer's replacement — both unreleased).
                let arc = unsafe {
                    Arc::increment_strong_count(p);
                    Arc::from_raw(p)
                };
                slot.fetch_sub(1, Ordering::SeqCst);
                return arc;
            }
            // A writer moved the epoch mid-load: `p` may be freed any
            // moment and must not be touched. Deregister and retry.
            slot.fetch_sub(1, Ordering::SeqCst);
            std::hint::spin_loop();
        }
    }

    /// Publish a new value and release the old one. Callers must serialize
    /// stores (the writer mutex does); concurrent `load()`s are fine.
    fn store(&self, value: Arc<T>) {
        let new_ptr = Arc::into_raw(value) as *mut T;
        let old = self.ptr.swap(new_ptr, Ordering::SeqCst);
        let old_parity = self.epoch.fetch_add(1, Ordering::SeqCst) & 1;
        // Drain readers that registered against the old epoch. Parity reuse
        // is safe: a reader re-registering under epoch+2 implies this drain
        // finished long ago (stores are serialized).
        while self.readers[old_parity].load(Ordering::SeqCst) != 0 {
            std::thread::yield_now();
        }
        // No reader can reach `old` anymore: the pointer now reads
        // `new_ptr`, and every pre-swap reader has either taken its strong
        // count (drained above) or failed re-validation.
        unsafe { drop(Arc::from_raw(old)) };
    }
}

impl<T> Drop for SnapshotCell<T> {
    fn drop(&mut self) {
        unsafe { drop(Arc::from_raw(self.ptr.load(Ordering::SeqCst))) };
    }
}

// Raw-pointer field only; the pointee is managed as an Arc<T>.
unsafe impl<T: Send + Sync> Send for SnapshotCell<T> {}
unsafe impl<T: Send + Sync> Sync for SnapshotCell<T> {}

// ---------------------------------------------------------------------------
// SharedStore
// ---------------------------------------------------------------------------

/// Group-commit batch-size histogram buckets: 1, 2, 3, 4, 5–8, 9–16, 17+.
pub const BATCH_BUCKETS: usize = 7;

/// Human-readable labels for [`UpdateStats::batch_sizes`], index-aligned.
pub const BATCH_BUCKET_LABELS: [&str; BATCH_BUCKETS] = ["1", "2", "3", "4", "5-8", "9-16", "17+"];

fn batch_bucket(n: usize) -> usize {
    match n {
        0 | 1 => 0,
        2 => 1,
        3 => 2,
        4 => 3,
        5..=8 => 4,
        9..=16 => 5,
        _ => 6,
    }
}

/// Counter snapshot of the update subsystem, for `/stats` and tests.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct UpdateStats {
    /// Group commits performed (one fsync each).
    pub groups: u64,
    /// Update requests acknowledged (durable).
    pub applied: u64,
    /// Update requests that failed (logical errors and group aborts).
    pub failed: u64,
    /// Histogram of requests-per-group; see [`BATCH_BUCKET_LABELS`].
    pub batch_sizes: [u64; BATCH_BUCKETS],
}

/// One queued update request. The slot is filled exactly once — by the
/// group leader — and taken exactly once, by the submitting thread.
struct Pending {
    update: sparql::Update,
    slot: Arc<Mutex<Option<Result<UpdateOutcome>>>>,
}

struct SharedInner {
    /// The writable master store. Mutations hold this mutex; nothing on the
    /// read path ever touches it.
    writer: Mutex<RdfStore>,
    /// The last published snapshot; what every reader sees.
    snap: SnapshotCell<RdfStore>,
    /// Update requests waiting for a group leader.
    queue: Mutex<Vec<Pending>>,
    /// Mirrors `is_read_only()` of the last published state, readable
    /// without loading a snapshot (the server's admission check).
    degraded: AtomicBool,
    update_groups: AtomicU64,
    updates_applied: AtomicU64,
    updates_failed: AtomicU64,
    batch_hist: [AtomicU64; BATCH_BUCKETS],
}

impl SharedInner {
    /// Publish the writer's current state as the new reader snapshot. Must
    /// be called while holding the writer mutex (it serializes
    /// `SnapshotCell::store`).
    fn publish(&self, store: &RdfStore) {
        self.degraded.store(store.is_read_only(), Ordering::SeqCst);
        self.snap.store(Arc::new(store.snapshot_clone()));
    }
}

/// A cloneable, `Send + Sync` handle to a shared [`RdfStore`]: snapshot
/// reads, group-committed updates.
///
/// Lock poisoning is deliberately ignored (`into_inner` on the guard): a
/// panicking request cannot leave the store logically inconsistent —
/// readers hold immutable snapshots, and mutations publish only after the
/// relational batch machinery commits — so refusing all service after one
/// panic would turn a single bad request into an outage.
#[derive(Clone)]
pub struct SharedStore {
    inner: Arc<SharedInner>,
}

/// Exclusive access to the master store, published as the new reader
/// snapshot when dropped. Used by bulk paths (initial load, checkpointing,
/// streaming inserts); fine-grained mutation should go through
/// [`SharedStore::update`] to benefit from group commit.
pub struct WriteGuard<'a> {
    guard: MutexGuard<'a, RdfStore>,
    inner: &'a SharedInner,
}

impl std::ops::Deref for WriteGuard<'_> {
    type Target = RdfStore;
    fn deref(&self) -> &RdfStore {
        &self.guard
    }
}

impl std::ops::DerefMut for WriteGuard<'_> {
    fn deref_mut(&mut self) -> &mut RdfStore {
        &mut self.guard
    }
}

impl Drop for WriteGuard<'_> {
    fn drop(&mut self) {
        // Publish before the mutex is released (guard drops after this
        // body), so no later writer can race the snapshot swap.
        self.inner.publish(&self.guard);
    }
}

fn read_only_error() -> StoreError {
    StoreError::Sql(relstore::Error::ReadOnly)
}

impl SharedStore {
    pub fn new(store: RdfStore) -> SharedStore {
        let snapshot = Arc::new(store.snapshot_clone());
        let degraded = store.is_read_only();
        SharedStore {
            inner: Arc::new(SharedInner {
                writer: Mutex::new(store),
                snap: SnapshotCell::new(snapshot),
                queue: Mutex::new(Vec::new()),
                degraded: AtomicBool::new(degraded),
                update_groups: AtomicU64::new(0),
                updates_applied: AtomicU64::new(0),
                updates_failed: AtomicU64::new(0),
                batch_hist: Default::default(),
            }),
        }
    }

    /// The last published state. Holding the returned `Arc` pins that exact
    /// state for as long as the caller likes — concurrent writers publish
    /// *new* snapshots and never disturb outstanding ones.
    pub fn snapshot(&self) -> Arc<RdfStore> {
        self.inner.snap.load()
    }

    /// Exclusive (write) access to the master store; the new state is
    /// published to readers when the guard drops.
    pub fn write(&self) -> WriteGuard<'_> {
        let guard = self.inner.writer.lock().unwrap_or_else(|poisoned| poisoned.into_inner());
        WriteGuard { guard, inner: &self.inner }
    }

    /// Execute a SPARQL query against the current snapshot. Never blocks on
    /// — and is never blocked by — writers.
    pub fn query(&self, sparql: &str) -> Result<Solutions> {
        self.snapshot().query(sparql)
    }

    /// Apply a SPARQL 1.1 Update request (parsed outside any lock), group-
    /// committed with whatever concurrent requests are in flight. Returns
    /// once the request is durable (its group's fsync completed).
    pub fn update(&self, text: &str) -> Result<UpdateOutcome> {
        let update = sparql::parse_update(text)?;
        self.apply_parsed_update(update)
    }

    /// [`SharedStore::update`] for a pre-parsed request.
    pub fn apply_parsed_update(&self, update: sparql::Update) -> Result<UpdateOutcome> {
        if self.inner.degraded.load(Ordering::SeqCst) {
            return Err(read_only_error());
        }
        let slot = Arc::new(Mutex::new(None));
        self.inner
            .queue
            .lock()
            .unwrap_or_else(|p| p.into_inner())
            .push(Pending { update, slot: slot.clone() });

        let mut store = self.inner.writer.lock().unwrap_or_else(|p| p.into_inner());
        if let Some(result) = slot.lock().unwrap_or_else(|p| p.into_inner()).take() {
            // A concurrent leader drained the queue (including this
            // request) while this thread waited for the writer mutex.
            return result;
        }

        // This thread is the group leader: commit everything queued so far
        // as one group, then hand each submitter its result.
        let group: Vec<Pending> =
            std::mem::take(&mut *self.inner.queue.lock().unwrap_or_else(|p| p.into_inner()));
        debug_assert!(!group.is_empty(), "leader's own request is queued");
        let checkpoint = store.mutation_checkpoint();

        let mut results: Vec<Result<UpdateOutcome>> = Vec::with_capacity(group.len());
        let mut group_aborted = store.is_read_only();
        if !group_aborted {
            for pending in &group {
                results.push(apply_update(&mut store, &pending.update));
                if store.is_read_only() {
                    // An append failure truncated the WAL to the last
                    // synced boundary, wiping earlier requests' frames of
                    // this group too: nothing in the group is salvageable.
                    group_aborted = true;
                    break;
                }
            }
        }
        if !group_aborted && results.iter().any(|r| r.is_ok()) {
            // One fsync for the whole group — the group-commit barrier.
            group_aborted = store.db_sync_wal().is_err();
        }

        if group_aborted {
            store.rollback_mutation(checkpoint);
            self.inner.updates_failed.fetch_add(group.len() as u64, Ordering::Relaxed);
            for pending in &group {
                *pending.slot.lock().unwrap_or_else(|p| p.into_inner()) =
                    Some(Err(read_only_error()));
            }
        } else {
            let applied = results.iter().filter(|r| r.is_ok()).count() as u64;
            self.inner.update_groups.fetch_add(1, Ordering::Relaxed);
            self.inner.updates_applied.fetch_add(applied, Ordering::Relaxed);
            self.inner
                .updates_failed
                .fetch_add(group.len() as u64 - applied, Ordering::Relaxed);
            self.inner.batch_hist[batch_bucket(group.len())].fetch_add(1, Ordering::Relaxed);
            for (pending, result) in group.iter().zip(results) {
                *pending.slot.lock().unwrap_or_else(|p| p.into_inner()) = Some(result);
            }
        }
        // Publish while still holding the writer mutex (store order), then
        // let the mutex release wake the next leader.
        self.inner.publish(&store);
        drop(store);

        let result = slot
            .lock()
            .unwrap_or_else(|p| p.into_inner())
            .take()
            .expect("leader fills every slot in its group");
        result
    }

    /// Insert one triple under the write lock.
    pub fn insert(&self, triple: &Triple) -> Result<bool> {
        self.write().insert(triple)
    }

    /// Insert a batch of triples under one write lock / one snapshot
    /// publication; returns how many were actually new.
    pub fn insert_many(&self, triples: &[Triple]) -> Result<u64> {
        let mut guard = self.write();
        let mut inserted = 0;
        for t in triples {
            if guard.insert(t)? {
                inserted += 1;
            }
        }
        Ok(inserted)
    }

    /// Delete one triple under the write lock.
    pub fn delete(&self, triple: &Triple) -> Result<bool> {
        self.write().delete(triple)
    }

    /// Snapshot of the load report (cloned out so nothing is held).
    pub fn load_report(&self) -> LoadReport {
        self.snapshot().load_report().clone()
    }

    /// Plan-cache counters (`None` when caching is disabled). The cache is
    /// shared between the master store and every snapshot — entries are
    /// epoch-tagged, so snapshot readers warm the same cache that post-
    /// mutation readers hit.
    pub fn plan_cache_stats(&self) -> Option<PlanCacheStats> {
        self.snapshot().plan_cache_stats()
    }

    /// Update-subsystem counters.
    pub fn update_stats(&self) -> UpdateStats {
        let mut batch_sizes = [0u64; BATCH_BUCKETS];
        for (out, counter) in batch_sizes.iter_mut().zip(&self.inner.batch_hist) {
            *out = counter.load(Ordering::Relaxed);
        }
        UpdateStats {
            groups: self.inner.update_groups.load(Ordering::Relaxed),
            applied: self.inner.updates_applied.load(Ordering::Relaxed),
            failed: self.inner.updates_failed.load(Ordering::Relaxed),
            batch_sizes,
        }
    }

    /// True when a durable store has degraded to read-only after an I/O
    /// failure (see `RdfStore::is_read_only`). The server surfaces this in
    /// `/healthz` and `/stats` and answers mutations with 503 + Retry-After.
    pub fn is_read_only(&self) -> bool {
        self.inner.degraded.load(Ordering::SeqCst)
    }

    /// The published snapshot's mutation epoch (see `RdfStore::epoch`).
    pub fn epoch(&self) -> u64 {
        self.snapshot().epoch()
    }

    /// Effective executor worker-pool width (see `RdfStore::threads`).
    pub fn threads(&self) -> usize {
        self.snapshot().threads()
    }

    /// Term-dictionary size accounting (see `RdfStore::dict_stats`).
    pub fn dict_stats(&self) -> crate::dict::DictMemStats {
        self.snapshot().dict_stats()
    }
}

// The server hands one `SharedStore` to every worker thread; this fails to
// compile if any store component regresses to a non-thread-safe type.
const _: fn() = || {
    fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<SharedStore>();
};

#[cfg(test)]
mod tests {
    use super::*;
    use crate::store::{RdfStore, StoreConfig};
    use rdf::Term;

    fn triple(i: usize) -> Triple {
        Triple::new(
            Term::iri(format!("http://s/{i}")),
            Term::iri("http://p"),
            Term::iri(format!("http://o/{i}")),
        )
    }

    fn loaded_shared(n: usize) -> SharedStore {
        let mut store = RdfStore::new(StoreConfig::default());
        store.load(&(0..n).map(triple).collect::<Vec<_>>()).unwrap();
        SharedStore::new(store)
    }

    #[test]
    fn concurrent_readers_with_writer() {
        let shared = loaded_shared(16);
        std::thread::scope(|s| {
            let writer = shared.clone();
            s.spawn(move || {
                for i in 100..120 {
                    writer.insert(&triple(i)).unwrap();
                }
            });
            for _ in 0..4 {
                let reader = shared.clone();
                s.spawn(move || {
                    for _ in 0..25 {
                        let sols = reader
                            .query("SELECT ?s ?o WHERE { ?s <http://p> ?o }")
                            .unwrap();
                        assert!(sols.len() >= 16 && sols.len() <= 36, "len {}", sols.len());
                    }
                });
            }
        });
        assert_eq!(
            shared.query("SELECT ?s WHERE { ?s <http://p> ?o }").unwrap().len(),
            36
        );
    }

    /// The acceptance bar from the issue: a reader holding a snapshot is
    /// never blocked — and never sees a torn state — while 100+ updates
    /// group-commit underneath it.
    #[test]
    fn held_snapshot_survives_update_storm() {
        const WRITERS: usize = 4;
        const PER_WRITER: usize = 30; // 120 updates total
        let shared = loaded_shared(16);
        let held = shared.snapshot();

        std::thread::scope(|s| {
            for w in 0..WRITERS {
                let writer = shared.clone();
                s.spawn(move || {
                    for i in 0..PER_WRITER {
                        let id = 1000 + w * PER_WRITER + i;
                        let out = writer
                            .update(&format!(
                                "INSERT DATA {{ <http://s/{id}> <http://p> <http://o/{id}> }}"
                            ))
                            .unwrap();
                        assert_eq!(out, UpdateOutcome { inserted: 1, deleted: 0 });
                    }
                });
            }
            // Interleave reads on the held snapshot with the storm: every
            // one must see exactly the pre-storm 16 triples.
            for _ in 0..40 {
                let sols = held.query("SELECT ?s WHERE { ?s <http://p> ?o }").unwrap();
                assert_eq!(sols.len(), 16, "held snapshot must be frozen");
            }
        });

        // The held snapshot is *still* the old state after every update
        // committed; fresh snapshots see all of it.
        assert_eq!(held.query("SELECT ?s WHERE { ?s <http://p> ?o }").unwrap().len(), 16);
        assert_eq!(
            shared.query("SELECT ?s WHERE { ?s <http://p> ?o }").unwrap().len(),
            16 + WRITERS * PER_WRITER
        );

        let stats = shared.update_stats();
        assert_eq!(stats.applied, (WRITERS * PER_WRITER) as u64);
        assert_eq!(stats.failed, 0);
        assert!(stats.groups >= 1 && stats.groups <= stats.applied);
        assert_eq!(stats.batch_sizes.iter().sum::<u64>(), stats.groups);
    }

    #[test]
    fn update_applies_delete_insert_atomically_per_request() {
        let shared = loaded_shared(4);
        let out = shared
            .update(
                "DELETE { ?s <http://p> ?o } INSERT { ?s <http://q> ?o } \
                 WHERE { ?s <http://p> ?o }",
            )
            .unwrap();
        assert_eq!(out, UpdateOutcome { inserted: 4, deleted: 4 });
        assert_eq!(shared.query("SELECT ?s WHERE { ?s <http://p> ?o }").unwrap().len(), 0);
        assert_eq!(shared.query("SELECT ?s WHERE { ?s <http://q> ?o }").unwrap().len(), 4);
        let stats = shared.update_stats();
        assert_eq!((stats.applied, stats.failed), (1, 0));
    }

    #[test]
    fn parse_errors_touch_nothing() {
        let shared = loaded_shared(2);
        let before = shared.epoch();
        assert!(shared.update("INSERT DATA { ?v <http://p> 1 }").is_err());
        assert!(shared.update("nonsense").is_err());
        assert_eq!(shared.epoch(), before);
        assert_eq!(shared.update_stats(), UpdateStats::default());
    }

    #[test]
    fn write_guard_publishes_on_drop() {
        let shared = loaded_shared(1);
        {
            let mut guard = shared.write();
            guard.insert(&triple(7)).unwrap();
            // Not yet published: concurrent snapshots still see the old
            // state (take one through a second handle to prove it).
            let racing = shared.clone();
            assert_eq!(
                racing.snapshot().query("SELECT ?s WHERE { ?s <http://p> ?o }").unwrap().len(),
                1
            );
        }
        assert_eq!(shared.query("SELECT ?s WHERE { ?s <http://p> ?o }").unwrap().len(), 2);
    }

    #[test]
    fn insert_many_reports_only_new_triples() {
        let shared = loaded_shared(3);
        let batch: Vec<Triple> = (0..6).map(triple).collect(); // 3 dupes, 3 new
        assert_eq!(shared.insert_many(&batch).unwrap(), 3);
        assert_eq!(shared.query("SELECT ?s WHERE { ?s <http://p> ?o }").unwrap().len(), 6);
    }

    #[test]
    fn snapshot_cell_swaps_under_concurrent_loads() {
        let cell = Arc::new(SnapshotCell::new(Arc::new(0usize)));
        std::thread::scope(|s| {
            let writer_cell = cell.clone();
            s.spawn(move || {
                for v in 1..=200 {
                    writer_cell.store(Arc::new(v));
                }
            });
            for _ in 0..3 {
                let reader_cell = cell.clone();
                s.spawn(move || {
                    let mut last = 0;
                    for _ in 0..500 {
                        let v = *reader_cell.load();
                        assert!(v <= 200);
                        assert!(v >= last, "published values are monotone");
                        last = v;
                    }
                });
            }
        });
        assert_eq!(*cell.load(), 200);
    }
}
