//! A thread-safe handle over [`RdfStore`] for concurrent serving.
//!
//! `RdfStore::query` takes `&self` while every mutation takes `&mut self`,
//! so an `RwLock` maps the API directly onto reader/writer concurrency:
//! many queries run in flight at once (each relational execution may itself
//! be morsel-parallel), while `insert`/`delete`/`checkpoint` briefly
//! exclude them. This is the store handle the SPARQL Protocol server
//! (`crates/server`) shares across its worker threads.

use std::sync::{Arc, RwLock, RwLockReadGuard, RwLockWriteGuard};

use rdf::Triple;

use crate::error::Result;
use crate::loader::LoadReport;
use crate::plancache::PlanCacheStats;
use crate::results::Solutions;
use crate::store::RdfStore;

/// A cloneable, `Send + Sync` handle to a shared [`RdfStore`].
///
/// Lock poisoning is deliberately ignored (`into_inner` on the guard): a
/// panicking query cannot leave the store logically inconsistent — reads
/// never mutate, and mutations commit through the relational batch
/// machinery — so refusing all service after one panic would turn a single
/// bad request into an outage.
#[derive(Clone)]
pub struct SharedStore {
    inner: Arc<RwLock<RdfStore>>,
}

impl SharedStore {
    pub fn new(store: RdfStore) -> SharedStore {
        SharedStore { inner: Arc::new(RwLock::new(store)) }
    }

    /// Shared (read) access; many may be held concurrently.
    pub fn read(&self) -> RwLockReadGuard<'_, RdfStore> {
        self.inner.read().unwrap_or_else(|poisoned| poisoned.into_inner())
    }

    /// Exclusive (write) access; excludes all readers.
    pub fn write(&self) -> RwLockWriteGuard<'_, RdfStore> {
        self.inner.write().unwrap_or_else(|poisoned| poisoned.into_inner())
    }

    /// Execute a SPARQL query under a read lock.
    pub fn query(&self, sparql: &str) -> Result<Solutions> {
        self.read().query(sparql)
    }

    /// Insert one triple under the write lock.
    pub fn insert(&self, triple: &Triple) -> Result<bool> {
        self.write().insert(triple)
    }

    /// Delete one triple under the write lock (entity layout only).
    pub fn delete(&self, triple: &Triple) -> Result<bool> {
        self.write().delete(triple)
    }

    /// Snapshot of the load report (cloned out so no lock is held).
    pub fn load_report(&self) -> LoadReport {
        self.read().load_report().clone()
    }

    /// Plan-cache counters (`None` when caching is disabled). Concurrent
    /// server workers share hits through this handle: the cache lives
    /// inside the store and synchronizes on its own shard mutexes, so
    /// readers populate it under the *read* lock — a planning miss never
    /// starves writers.
    pub fn plan_cache_stats(&self) -> Option<PlanCacheStats> {
        self.read().plan_cache_stats()
    }

    /// True when a durable store has degraded to read-only after an I/O
    /// failure (see `RdfStore::is_read_only`). The server surfaces this in
    /// `/healthz` and `/stats` and answers mutations with 503 + Retry-After.
    pub fn is_read_only(&self) -> bool {
        self.read().is_read_only()
    }

    /// The store's current mutation epoch (see `RdfStore::epoch`).
    pub fn epoch(&self) -> u64 {
        self.read().epoch()
    }

    /// Effective executor worker-pool width (see `RdfStore::threads`).
    pub fn threads(&self) -> usize {
        self.read().threads()
    }

    /// Term-dictionary size accounting (see `RdfStore::dict_stats`).
    pub fn dict_stats(&self) -> crate::dict::DictMemStats {
        self.read().dict_stats()
    }
}

// The server hands one `SharedStore` to every worker thread; this fails to
// compile if any store component regresses to a non-thread-safe type.
const _: fn() = || {
    fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<SharedStore>();
};

#[cfg(test)]
mod tests {
    use super::*;
    use crate::store::{RdfStore, StoreConfig};
    use rdf::Term;

    fn triple(i: usize) -> Triple {
        Triple::new(
            Term::iri(format!("http://s/{i}")),
            Term::iri("http://p"),
            Term::iri(format!("http://o/{i}")),
        )
    }

    #[test]
    fn concurrent_readers_with_writer() {
        let mut store = RdfStore::new(StoreConfig::default());
        store.load(&(0..16).map(triple).collect::<Vec<_>>()).unwrap();
        let shared = SharedStore::new(store);

        std::thread::scope(|s| {
            let writer = shared.clone();
            s.spawn(move || {
                for i in 100..120 {
                    writer.insert(&triple(i)).unwrap();
                }
            });
            for _ in 0..4 {
                let reader = shared.clone();
                s.spawn(move || {
                    for _ in 0..25 {
                        let sols = reader
                            .query("SELECT ?s ?o WHERE { ?s <http://p> ?o }")
                            .unwrap();
                        assert!(sols.len() >= 16 && sols.len() <= 36, "len {}", sols.len());
                    }
                });
            }
        });
        assert_eq!(
            shared.query("SELECT ?s WHERE { ?s <http://p> ?o }").unwrap().len(),
            36
        );
    }
}
