//! Dataset statistics — the optimizer input `S` of §3.1.
//!
//! Mirrors the paper's examples: total triple count, average triples per
//! subject and per object, and top-k constants (subjects, objects,
//! predicates) with exact frequencies.

use std::collections::HashMap;

use rdf::Triple;

use crate::dict::Dict;

/// Statistics over the loaded dataset. Top-k constants are keyed by their
/// dictionary ID so the optimizer's `S` input speaks the same integer
/// vocabulary as the encoded DPH/DS tables; lexical forms are retained in
/// [`Stats::top_forms`] for reports and string-keyed estimate lookups.
#[derive(Debug, Clone, Default)]
pub struct Stats {
    pub total_triples: u64,
    pub distinct_subjects: u64,
    pub distinct_objects: u64,
    /// Mean triples per distinct subject (paper: "Avg triples per subject").
    pub avg_per_subject: f64,
    pub avg_per_object: f64,
    /// Exact counts for the k most frequent subject constants, keyed by
    /// dictionary ID.
    pub top_subjects: HashMap<i64, u64>,
    pub top_objects: HashMap<i64, u64>,
    /// Lexical form of every ID appearing in the top-k maps.
    pub top_forms: HashMap<i64, String>,
    /// Reverse index: canonical term → dictionary ID, for string-keyed
    /// estimate lookups ([`Stats::subject_count`] / [`Stats::object_count`]).
    pub top_ids: HashMap<String, i64>,
    /// Triples per predicate (kept exactly; predicate sets are small).
    pub predicate_counts: HashMap<String, u64>,
    /// Per-predicate fan-out statistics (kept exactly). The paper leaves the
    /// statistics types to the implementation (§3.1); per-predicate averages
    /// sharpen TMC for bound-variable accesses considerably.
    pub predicate_stats: HashMap<String, PredStat>,
}

/// Fan-out statistics for one predicate.
#[derive(Debug, Clone, Copy, Default)]
pub struct PredStat {
    pub count: u64,
    pub distinct_subjects: u64,
    pub distinct_objects: u64,
}

impl PredStat {
    /// Average triples per subject carrying this predicate.
    pub fn subject_fanout(&self) -> f64 {
        if self.distinct_subjects == 0 {
            1.0
        } else {
            self.count as f64 / self.distinct_subjects as f64
        }
    }

    /// Average triples per object carrying this predicate (the fan-in).
    pub fn object_fanout(&self) -> f64 {
        if self.distinct_objects == 0 {
            1.0
        } else {
            self.count as f64 / self.distinct_objects as f64
        }
    }
}

impl Stats {
    /// Collect statistics with the `top_k` most frequent subject/object
    /// constants kept exactly, keyed by a throwaway dictionary. Baseline
    /// layouts (and tests) use this; the entity layout collects through the
    /// store's shared dictionary so IDs match the loaded data.
    pub fn collect<'a>(triples: impl IntoIterator<Item = &'a Triple>, top_k: usize) -> Stats {
        Stats::collect_with_dict(triples, top_k, &mut Dict::new())
    }

    /// Collect statistics, interning the surviving top-k constants through
    /// `dict` so their IDs agree with the dictionary-encoded tables.
    pub fn collect_with_dict<'a>(
        triples: impl IntoIterator<Item = &'a Triple>,
        top_k: usize,
        dict: &mut Dict,
    ) -> Stats {
        let mut subj: HashMap<String, u64> = HashMap::new();
        let mut obj: HashMap<String, u64> = HashMap::new();
        let mut pred: HashMap<String, u64> = HashMap::new();
        let mut per_pred: HashMap<String, (std::collections::HashSet<String>, std::collections::HashSet<String>, u64)> =
            HashMap::new();
        let mut total = 0u64;
        for t in triples {
            let (s, p, o) = (t.subject.encode(), t.predicate.encode(), t.object.encode());
            *subj.entry(s.clone()).or_default() += 1;
            *obj.entry(o.clone()).or_default() += 1;
            *pred.entry(p.clone()).or_default() += 1;
            let e = per_pred.entry(p).or_default();
            e.0.insert(s);
            e.1.insert(o);
            e.2 += 1;
            total += 1;
        }
        let predicate_stats = per_pred
            .into_iter()
            .map(|(p, (ss, os, n))| {
                (
                    p,
                    PredStat {
                        count: n,
                        distinct_subjects: ss.len() as u64,
                        distinct_objects: os.len() as u64,
                    },
                )
            })
            .collect();
        let distinct_subjects = subj.len() as u64;
        let distinct_objects = obj.len() as u64;
        let avg = |n: u64, d: u64| if d == 0 { 0.0 } else { n as f64 / d as f64 };
        let mut stats = Stats {
            total_triples: total,
            distinct_subjects,
            distinct_objects,
            avg_per_subject: avg(total, distinct_subjects),
            avg_per_object: avg(total, distinct_objects),
            predicate_counts: pred,
            predicate_stats,
            ..Stats::default()
        };
        // Intern in deterministic (count-desc, then lexical) order so ID
        // assignment is reproducible run to run.
        for (term, n) in take_top(subj, top_k) {
            let id = dict.intern(&term);
            stats.register_top_subject(id, &term, n);
        }
        for (term, n) in take_top(obj, top_k) {
            let id = dict.intern(&term);
            stats.register_top_object(id, &term, n);
        }
        stats
    }

    /// Record a top-k subject constant (ID, lexical form, exact count).
    pub fn register_top_subject(&mut self, id: i64, canonical: &str, count: u64) {
        self.top_subjects.insert(id, count);
        self.top_forms.insert(id, canonical.to_string());
        self.top_ids.insert(canonical.to_string(), id);
    }

    /// Record a top-k object constant (ID, lexical form, exact count).
    pub fn register_top_object(&mut self, id: i64, canonical: &str, count: u64) {
        self.top_objects.insert(id, count);
        self.top_forms.insert(id, canonical.to_string());
        self.top_ids.insert(canonical.to_string(), id);
    }

    /// Estimated triples per *bound subject* for an access restricted to
    /// `predicate` (canonical), falling back to the global average.
    pub fn subject_fanout(&self, predicate: Option<&str>) -> f64 {
        predicate
            .and_then(|p| self.predicate_stats.get(p))
            .map(PredStat::subject_fanout)
            .unwrap_or_else(|| self.avg_per_subject.max(1.0))
    }

    /// Estimated triples per *bound object* for an access restricted to
    /// `predicate` (canonical), falling back to the global average.
    pub fn object_fanout(&self, predicate: Option<&str>) -> f64 {
        predicate
            .and_then(|p| self.predicate_stats.get(p))
            .map(PredStat::object_fanout)
            .unwrap_or_else(|| self.avg_per_object.max(1.0))
    }

    /// Estimated number of triples with this exact subject constant.
    pub fn subject_count(&self, canonical: &str) -> f64 {
        match self.top_ids.get(canonical).and_then(|id| self.top_subjects.get(id)) {
            Some(&n) => n as f64,
            None => self.avg_per_subject.max(1.0),
        }
    }

    /// Estimated number of triples with this exact object constant.
    pub fn object_count(&self, canonical: &str) -> f64 {
        match self.top_ids.get(canonical).and_then(|id| self.top_objects.get(id)) {
            Some(&n) => n as f64,
            None => self.avg_per_object.max(1.0),
        }
    }

    /// Exact number of triples with this predicate constant (0 if absent).
    pub fn predicate_count(&self, canonical: &str) -> f64 {
        self.predicate_counts.get(canonical).copied().unwrap_or(0) as f64
    }
}

fn take_top(counts: HashMap<String, u64>, k: usize) -> Vec<(String, u64)> {
    let mut v: Vec<(String, u64)> = counts.into_iter().collect();
    v.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
    v.truncate(k);
    v
}

#[cfg(test)]
mod tests {
    use super::*;
    use rdf::Term;

    fn t(s: &str, p: &str, o: &str) -> Triple {
        Triple::new(Term::iri(s), Term::iri(p), Term::iri(o))
    }

    #[test]
    fn averages_and_totals() {
        let triples = vec![t("a", "p", "x"), t("a", "q", "y"), t("b", "p", "x")];
        let s = Stats::collect(&triples, 10);
        assert_eq!(s.total_triples, 3);
        assert_eq!(s.distinct_subjects, 2);
        assert!((s.avg_per_subject - 1.5).abs() < 1e-12);
        assert_eq!(s.distinct_objects, 2);
        assert_eq!(s.predicate_count("<p>"), 2.0);
    }

    #[test]
    fn top_k_keeps_most_frequent() {
        let mut triples = Vec::new();
        for i in 0..20 {
            triples.push(t("hub", "p", &format!("o{i}")));
        }
        triples.push(t("solo", "p", "o0"));
        let s = Stats::collect(&triples, 1);
        assert_eq!(s.top_subjects.len(), 1);
        assert_eq!(s.subject_count("<hub>"), 20.0);
        // non-top subject falls back to the average
        assert!(s.subject_count("<solo>") < 20.0);
    }

    #[test]
    fn object_count_fallback_is_at_least_one() {
        let s = Stats::collect(&[], 5);
        assert_eq!(s.object_count("<missing>"), 1.0);
    }

    #[test]
    fn collect_with_dict_keys_top_constants_by_id() {
        let mut dict = Dict::new();
        let triples = vec![t("a", "p", "x"), t("a", "q", "x")];
        let s = Stats::collect_with_dict(&triples, 10, &mut dict);
        let id = dict.lookup("<a>").expect("top subject interned");
        assert_eq!(s.top_subjects.get(&id), Some(&2));
        assert_eq!(s.top_forms.get(&id).map(String::as_str), Some("<a>"));
        assert_eq!(s.top_ids.get("<a>"), Some(&id));
        assert_eq!(s.subject_count("<a>"), 2.0);
    }
}
