//! The public RDF store API: load triples, run SPARQL, inspect plans.

use rdf::Triple;
use relstore::Database;
use sparql::{parse_sparql, Query, QueryForm};

use crate::baseline::{
    insert_triple_store, insert_vertical, load_triple_store, load_vertical, TripleGen,
    VerticalGen, VerticalLayout,
};
use crate::error::{Result, StoreError};
use crate::layout::SideLayout;
use crate::loader::{bulk_load_entity, insert_entity, EntityConfig, LoadReport};
use crate::optimizer::{
    merge_exec_tree, optimize, ExecNode, FlowTree, MergeInfo, OptimizerMode, PTree,
};
use crate::results::Solutions;
use crate::stats::Stats;
use crate::translate::entity::EntityGen;
use crate::translate::functions::register_rdf_functions;
use crate::translate::{finish, gen_pattern, GenState, StarGen};

/// Which relational layout backs the store (paper §2).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Layout {
    /// The paper's entity-oriented DB2RDF schema (DPH/DS/RPH/RS).
    Entity,
    /// Single three-column triples relation.
    TripleStore,
    /// Predicate-oriented vertical partitioning (one table per predicate).
    Vertical,
}

/// Store configuration.
#[derive(Debug, Clone)]
pub struct StoreConfig {
    pub layout: Layout,
    pub entity: EntityConfig,
    pub optimizer: OptimizerMode,
    /// Top-k constants tracked exactly in the statistics.
    pub top_k: usize,
    /// Per-query evaluation budget in rows (None = unbounded); the analogue
    /// of the paper's 10-minute timeout.
    pub row_budget: Option<u64>,
    /// Worker-pool width for the relational engine's morsel-parallel
    /// operators. `None` defers to the `RELSTORE_THREADS` environment
    /// variable, then to the machine's available parallelism; `Some(1)`
    /// forces sequential execution.
    pub threads: Option<usize>,
}

impl Default for StoreConfig {
    fn default() -> Self {
        StoreConfig {
            layout: Layout::Entity,
            entity: EntityConfig::default(),
            optimizer: OptimizerMode::CostBased,
            top_k: 1000,
            row_budget: None,
            threads: None,
        }
    }
}

impl StoreConfig {
    pub fn with_layout(layout: Layout) -> StoreConfig {
        StoreConfig { layout, ..Default::default() }
    }
}

/// Everything `explain` exposes about a query's plan.
#[derive(Debug, Clone)]
pub struct Explanation {
    /// Optimal flow: (triple id per the query's parse order, method name).
    pub flow: Vec<(usize, &'static str)>,
    /// Debug rendering of the (merged) execution tree.
    pub exec_tree: String,
    /// The generated SQL.
    pub sql: String,
}

/// An RDF store over an embedded relational database — the system the paper
/// describes, with selectable layout for baseline comparisons.
pub struct RdfStore {
    cfg: StoreConfig,
    db: Database,
    stats: Stats,
    direct: Option<SideLayout>,
    reverse: Option<SideLayout>,
    vertical: Option<VerticalLayout>,
    report: LoadReport,
    loaded: bool,
}

impl RdfStore {
    pub fn new(cfg: StoreConfig) -> RdfStore {
        let mut db = Database::new();
        register_rdf_functions(&mut db);
        db.set_row_budget(cfg.row_budget);
        db.set_threads(cfg.threads);
        RdfStore {
            cfg,
            db,
            stats: Stats::default(),
            direct: None,
            reverse: None,
            vertical: None,
            report: LoadReport::default(),
            loaded: false,
        }
    }

    /// An entity-layout store with default settings.
    pub fn entity() -> RdfStore {
        RdfStore::new(StoreConfig::default())
    }

    /// Bulk load a dataset (must be called exactly once, before queries).
    pub fn load(&mut self, triples: &[Triple]) -> Result<&LoadReport> {
        if self.loaded {
            return Err(StoreError::Unsupported(
                "load() may only be called once; use insert() afterwards".into(),
            ));
        }
        self.stats = Stats::collect(triples.iter(), self.cfg.top_k);
        match self.cfg.layout {
            Layout::Entity => {
                let (d, r, report) = bulk_load_entity(&mut self.db, triples, &self.cfg.entity)?;
                self.direct = Some(d);
                self.reverse = Some(r);
                self.report = report;
            }
            Layout::TripleStore => {
                load_triple_store(&mut self.db, triples)?;
                self.report = LoadReport { triples: triples.len() as u64, ..Default::default() };
            }
            Layout::Vertical => {
                self.vertical = Some(load_vertical(&mut self.db, triples)?);
                self.report = LoadReport { triples: triples.len() as u64, ..Default::default() };
            }
        }
        self.loaded = true;
        Ok(&self.report)
    }

    /// Bulk load from N-Triples/N-Quads text (named graphs are accepted and
    /// ignored by the layout; see DESIGN.md).
    pub fn load_ntriples(&mut self, text: &str) -> Result<&LoadReport> {
        let quads = rdf::parse_ntriples(text)
            .map_err(|e| StoreError::Unsupported(format!("N-Triples: {e}")))?;
        let triples: Vec<Triple> = quads.into_iter().map(|q| q.triple).collect();
        self.load(&triples)
    }

    /// Incrementally insert one triple after the bulk load.
    pub fn insert(&mut self, triple: &Triple) -> Result<bool> {
        if !self.loaded {
            self.load(std::slice::from_ref(triple))?;
            return Ok(true);
        }
        match self.cfg.layout {
            Layout::Entity => {
                let mut d = self.direct.take().expect("loaded entity layout");
                let mut r = self.reverse.take().expect("loaded entity layout");
                let added = insert_entity(&mut self.db, &mut d, &mut r, triple, &mut self.report);
                self.direct = Some(d);
                self.reverse = Some(r);
                Ok(added?)
            }
            Layout::TripleStore => {
                insert_triple_store(&mut self.db, triple)?;
                self.report.triples += 1;
                Ok(true)
            }
            Layout::Vertical => {
                let mut v = self.vertical.take().expect("loaded vertical layout");
                let res = insert_vertical(&mut self.db, &mut v, triple);
                self.vertical = Some(v);
                res?;
                self.report.triples += 1;
                Ok(true)
            }
        }
    }

    /// Delete one triple (entity layout only — the update path the paper
    /// defers to future work). Returns true if the triple existed.
    pub fn delete(&mut self, triple: &Triple) -> Result<bool> {
        if !self.loaded {
            return Ok(false);
        }
        match self.cfg.layout {
            Layout::Entity => {
                let d = self.direct.as_ref().expect("loaded entity layout").clone();
                let r = self.reverse.as_ref().expect("loaded entity layout").clone();
                Ok(crate::loader::delete_entity(
                    &mut self.db,
                    &d,
                    &r,
                    triple,
                    &mut self.report,
                )?)
            }
            other => Err(StoreError::Unsupported(format!(
                "delete is implemented for the entity layout only (store uses {other:?})"
            ))),
        }
    }

    /// Translate a SPARQL query to SQL without executing it.
    pub fn translate(&self, sparql_text: &str) -> Result<String> {
        let (query, _, _, sql) = self.plan(sparql_text)?;
        let _ = query;
        Ok(sql)
    }

    /// Full plan details for a query.
    pub fn explain(&self, sparql_text: &str) -> Result<Explanation> {
        let (_query, flow, exec, sql) = self.plan(sparql_text)?;
        Ok(Explanation {
            flow: flow
                .order
                .iter()
                .map(|n| (n.triple + 1, n.method.name()))
                .collect(),
            exec_tree: format!("{exec:#?}"),
            sql,
        })
    }

    /// Execute a SPARQL query.
    pub fn query(&self, sparql_text: &str) -> Result<Solutions> {
        let (query, _, _, sql) = self.plan(sparql_text)?;
        let rel = self.db.query(&sql)?;
        match query.form {
            QueryForm::Ask => Ok(Solutions::from_ask(!rel.rows.is_empty())),
            QueryForm::Select { .. } => {
                Ok(Solutions::from_select(query.projected_variables(), &rel))
            }
        }
    }

    fn plan(&self, sparql_text: &str) -> Result<(Query, FlowTree, ExecNode, String)> {
        if !self.loaded {
            return Err(StoreError::Unsupported("store is empty; load data first".into()));
        }
        let query = parse_sparql(sparql_text)?;
        if query.triple_count() == 0 {
            return Err(StoreError::Unsupported("query has no triple patterns".into()));
        }
        let tree = PTree::build(&query);
        let (flow, exec) = optimize(&tree, &self.stats, self.cfg.optimizer);
        let mut state = GenState::new();
        let exec = match self.cfg.layout {
            Layout::Entity => {
                let direct = self.direct.as_ref().expect("loaded");
                let reverse = self.reverse.as_ref().expect("loaded");
                let info = MergeInfo {
                    spill_direct: &direct.spill_preds,
                    spill_reverse: &reverse.spill_preds,
                    multi_direct: &direct.multivalued,
                    multi_reverse: &reverse.multivalued,
                };
                let exec = merge_exec_tree(&tree, exec, &info);
                let backend = EntityGen { tree: &tree, direct, reverse };
                gen_pattern(&backend, &exec, &mut state)?;
                exec
            }
            Layout::TripleStore => {
                let backend = TripleGen { tree: &tree };
                gen_pattern(&backend, &exec, &mut state)?;
                exec
            }
            Layout::Vertical => {
                let layout = self.vertical.as_ref().expect("loaded");
                let backend = VerticalGen { tree: &tree, layout, max_union_tables: 500 };
                gen_pattern(&backend, &exec, &mut state)?;
                exec
            }
        };
        let sql = finish(&query, &mut state);
        Ok((query, flow, exec, sql))
    }

    pub fn statistics(&self) -> &Stats {
        &self.stats
    }

    pub fn load_report(&self) -> &LoadReport {
        &self.report
    }

    /// Direct access to the relational back-end (read-only).
    pub fn database(&self) -> &Database {
        &self.db
    }

    /// Adjust the per-query evaluation budget (the "timeout").
    pub fn set_row_budget(&mut self, budget: Option<u64>) {
        self.db.set_row_budget(budget);
    }

    /// Adjust the executor worker-pool width (see [`StoreConfig::threads`]).
    pub fn set_threads(&mut self, threads: Option<usize>) {
        self.db.set_threads(threads);
    }

    /// Append `n` all-NULL predicate/value column pairs to DPH and rewrite
    /// its rows — the §2.3 NULL-storage experiment's ALTER TABLE analogue.
    /// The new columns are invisible to the predicate mapping; only storage
    /// and scan width are affected.
    pub fn widen_dph_for_experiment(&mut self, n: usize) {
        if let Some(table) = self.db.table_mut("dph") {
            let base = table.width();
            let cols: Vec<(String, relstore::SqlType)> = (0..n)
                .flat_map(|i| {
                    [
                        (format!("xpred{}", base + i), relstore::SqlType::Text),
                        (format!("xval{}", base + i), relstore::SqlType::Text),
                    ]
                })
                .collect();
            table.widen_rewritten(cols);
        }
    }
}

/// Convenience: which generator a layout uses (exposed for tests/benches
/// that drive translation directly).
pub fn layout_name(layout: Layout) -> &'static str {
    match layout {
        Layout::Entity => "entity-oriented (DB2RDF)",
        Layout::TripleStore => "triple-store",
        Layout::Vertical => "predicate-oriented (vertical)",
    }
}

// Silence an unused-import warning when compiled without tests referencing
// the trait directly.
const _: Option<&dyn StarGen> = None;
