//! The public RDF store API: load triples, run SPARQL, inspect plans.

use std::sync::Arc;

use std::collections::HashSet;

use rdf::Triple;
use relstore::{quote_str, Database};
use sparql::{parse_sparql, Pattern, Query, QueryForm};

use crate::baseline::{
    delete_triple_store, delete_vertical, insert_triple_store, insert_vertical,
    load_triple_store, load_vertical, TripleGen, VerticalGen, VerticalLayout,
};
use crate::dict::{Dict, SharedDict};
use crate::error::{Result, StoreError};
use crate::layout::SideLayout;
use crate::loader::{bulk_load_entity, insert_entity, EntityConfig, LoadReport};
use crate::optimizer::{
    merge_exec_tree, optimize, ExecNode, MergeInfo, OptimizerMode, PTree,
};
use crate::plancache::{self, CachedPlan, PlanCache, PlanCacheStats};
use crate::results::{DecodeMode, Solutions};
use crate::stats::Stats;
use crate::translate::entity::EntityGen;
use crate::translate::functions::register_rdf_functions;
use crate::translate::{
    apply_filter, finish, gen_aggregate, gen_bind, gen_pattern, gen_select_exprs,
    gen_subquery_join, gen_values, GenState, StarGen,
};

/// Which relational layout backs the store (paper §2).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Layout {
    /// The paper's entity-oriented DB2RDF schema (DPH/DS/RPH/RS).
    Entity,
    /// Single three-column triples relation.
    TripleStore,
    /// Predicate-oriented vertical partitioning (one table per predicate).
    Vertical,
}

/// Store configuration.
#[derive(Debug, Clone)]
pub struct StoreConfig {
    pub layout: Layout,
    pub entity: EntityConfig,
    pub optimizer: OptimizerMode,
    /// Top-k constants tracked exactly in the statistics.
    pub top_k: usize,
    /// Per-query evaluation budget in rows (None = unbounded); the analogue
    /// of the paper's 10-minute timeout.
    pub row_budget: Option<u64>,
    /// Per-query wall-clock deadline (None = unbounded); checked at the same
    /// execution sites as the row budget and surfaced as a timeout.
    pub deadline: Option<std::time::Duration>,
    /// Worker-pool width for the relational engine's morsel-parallel
    /// operators. `None` defers to the `RELSTORE_THREADS` environment
    /// variable, then to the machine's available parallelism; `Some(1)`
    /// forces sequential execution.
    pub threads: Option<usize>,
    /// Capacity of the epoch-invalidated query-plan cache (entries);
    /// `0` disables caching and re-plans every query from scratch.
    pub plan_cache_entries: usize,
}

impl Default for StoreConfig {
    fn default() -> Self {
        StoreConfig {
            layout: Layout::Entity,
            entity: EntityConfig::default(),
            optimizer: OptimizerMode::CostBased,
            top_k: 1000,
            row_budget: None,
            deadline: None,
            threads: None,
            plan_cache_entries: 512,
        }
    }
}

impl StoreConfig {
    pub fn with_layout(layout: Layout) -> StoreConfig {
        StoreConfig { layout, ..Default::default() }
    }
}

/// Everything `explain` exposes about a query's plan.
#[derive(Debug, Clone)]
pub struct Explanation {
    /// Optimal flow: (triple id per the query's parse order, method name).
    pub flow: Vec<(usize, &'static str)>,
    /// Debug rendering of the (merged) execution tree.
    pub exec_tree: String,
    /// The generated SQL.
    pub sql: String,
}

/// An RDF store over an embedded relational database — the system the paper
/// describes, with selectable layout for baseline comparisons.
mod bulk;

pub use bulk::{BulkLoadOptions, BulkLoadStats};

pub struct RdfStore {
    cfg: StoreConfig,
    db: Database,
    stats: Stats,
    /// Term dictionary shared with the registered `RDF_*` scalar functions.
    /// Populated by entity-layout loads/inserts; empty for the baseline
    /// layouts (whose tables keep canonical term strings).
    dict: SharedDict,
    direct: Option<SideLayout>,
    reverse: Option<SideLayout>,
    vertical: Option<VerticalLayout>,
    report: LoadReport,
    loaded: bool,
    /// Mutation epoch: bumped whenever a mutation may have changed planning
    /// inputs — the term dictionary grew, a predicate layout moved (spill,
    /// multi-valued flip, widening), or a bulk `load`/schema experiment ran
    /// — so cached plans can never be replayed against a store whose
    /// planning inputs have moved since they were computed. Mutations that
    /// provably change none of those (deletes, duplicate inserts, inserts
    /// of already-interned terms into settled layouts) leave the epoch
    /// alone: generated SQL is data-independent, so every cached plan stays
    /// correct and the skip is counted as an avoided invalidation. A plain
    /// `u64` is enough: every mutation path takes `&mut self`, and
    /// `SharedStore` serializes mutations behind its writer lock.
    epoch: u64,
    /// Sharded LRU plan cache (interior mutability: the `&self` query path
    /// inserts into it). `None` when disabled via the config; behind `Arc`
    /// so reader snapshots share one cache with the master store.
    plan_cache: Option<Arc<PlanCache>>,
}

/// Copy-on-write backup of everything a mutation can touch, taken before a
/// multi-op update request and restored if the request fails midway — the
/// request-level all-or-nothing guarantee of the SPARQL Update applier.
/// Cheap: tables are `Arc` bumps, side metadata is small. The term
/// dictionary is deliberately *not* rolled back (it is append-only and
/// interned-but-unreferenced entries are harmless); the epoch is bumped on
/// rollback instead so no cached plan survives the partial intern.
pub(crate) struct MutationCheckpoint {
    tables: std::collections::HashMap<String, Arc<relstore::Table>>,
    direct: Option<SideLayout>,
    reverse: Option<SideLayout>,
    vertical: Option<VerticalLayout>,
    report: LoadReport,
    stats: Stats,
    loaded: bool,
}

/// The metadata table (see the `persist` module): two TEXT columns `k` and
/// `v`, one row per persisted blob — layout name, per-side layouts,
/// statistics, and the load report.
const META_TABLE: &str = "sys_meta";

/// The term-dictionary table: `(id BIGINT, term TEXT)`, strictly append-only
/// with dense IDs `1..=n`. New entries are written inside the same WAL batch
/// as the data rows that reference them (see `persist_dict`), so after any
/// crash + replay an ID stored in a data table always resolves to the string
/// it was assigned — never to a different one, never to nothing.
const DICT_TABLE: &str = "sys_dict";
/// Dictionary entries per persisted `sys_dict` page row.
const DICT_PAGE: usize = 64;

/// `sys_meta` key for the streaming bulk loader's crash protocol (see
/// `store::bulk`): set to `in-progress` in the load's first committed batch
/// and flipped to `complete` in its last. A reopen that finds any other
/// value refuses the store — the dataset on disk is a committed-but-partial
/// prefix of an interrupted bulk load.
const BULK_MARKER: &str = "bulk_load";

impl RdfStore {
    pub fn new(cfg: StoreConfig) -> RdfStore {
        RdfStore::with_database(Database::new(), cfg)
    }

    /// Open (or create) a durable store rooted at `dir`. Relational state is
    /// recovered by the back-end's snapshot + WAL replay; the store's side
    /// metadata (predicate layouts, statistics, load report) is restored
    /// from the `sys_meta` table, so a bulk-loaded dataset is queryable
    /// immediately after reopen. The configured layout must match the one
    /// the directory was created with.
    pub fn open(dir: impl AsRef<std::path::Path>, cfg: StoreConfig) -> Result<RdfStore> {
        Self::open_with_faults(dir, cfg, relstore::no_faults())
    }

    /// [`RdfStore::open`] with a fault injector over the durable file layer —
    /// the entry point of the crash-point fuzzing harness. Every WAL/snapshot
    /// read and write of this store's lifetime flows through `faults`.
    pub fn open_with_faults(
        dir: impl AsRef<std::path::Path>,
        cfg: StoreConfig,
        faults: relstore::FaultHandle,
    ) -> Result<RdfStore> {
        let db = Database::open_with_faults(dir.as_ref(), faults)?;
        let mut store = RdfStore::with_database(db, cfg);
        store.restore_meta()?;
        Ok(store)
    }

    fn with_database(mut db: Database, cfg: StoreConfig) -> RdfStore {
        let dict = SharedDict::new();
        register_rdf_functions(&mut db, &dict);
        db.set_row_budget(cfg.row_budget);
        db.set_deadline(cfg.deadline);
        db.set_threads(cfg.threads);
        let plan_cache =
            (cfg.plan_cache_entries > 0).then(|| Arc::new(PlanCache::new(cfg.plan_cache_entries)));
        RdfStore {
            cfg,
            db,
            stats: Stats::default(),
            dict,
            direct: None,
            reverse: None,
            vertical: None,
            report: LoadReport::default(),
            loaded: false,
            epoch: 0,
            plan_cache,
        }
    }

    /// An entity-layout store with default settings.
    pub fn entity() -> RdfStore {
        RdfStore::new(StoreConfig::default())
    }

    /// Checkpoint a durable store: write a snapshot of all tables and rotate
    /// the WAL, bounding reopen time. No-op guidance: call after bulk loads
    /// or large insert batches. Errors on in-memory or read-only stores are
    /// surfaced from the back-end.
    pub fn checkpoint(&mut self) -> Result<()> {
        self.db.checkpoint()?;
        Ok(())
    }

    /// Checkpoint (when durable and writable) and drop the store.
    pub fn close(self) -> Result<()> {
        self.db.close()?;
        Ok(())
    }

    // -- sys_meta persistence ------------------------------------------------

    /// Persist the store's side metadata into `sys_meta` and the term
    /// dictionary's new entries into `sys_dict`. Called inside the mutation
    /// batches so the metadata commits atomically with the data it
    /// describes. No-op for in-memory stores.
    fn persist_meta(&mut self, dict: &Dict) -> Result<()> {
        if !self.db.is_durable() || self.db.is_read_only() {
            return Ok(());
        }
        self.persist_dict(dict)?;
        self.ensure_meta_table()?;
        let layout = match self.cfg.layout {
            Layout::Entity => "entity",
            Layout::TripleStore => "triple-store",
            Layout::Vertical => "vertical",
        };
        let mut blobs: Vec<(&str, String)> = vec![
            ("layout", layout.to_string()),
            ("stats", crate::persist::encode_stats(&self.stats)),
            ("report", crate::persist::encode_report(&self.report)),
        ];
        if let Some(d) = &self.direct {
            blobs.push(("direct", crate::persist::encode_side(d)));
        }
        if let Some(r) = &self.reverse {
            blobs.push(("reverse", crate::persist::encode_side(r)));
        }
        if let Some(v) = &self.vertical {
            blobs.push(("vertical", crate::persist::encode_vertical(v)));
        }
        for (key, value) in blobs {
            self.set_meta(key, value)?;
        }
        Ok(())
    }

    /// Persist the dictionary entries not yet on disk to `sys_dict` as
    /// front-coded pages: rows of `(first_id, n, page)` where row `k` covers
    /// IDs `k*DICT_PAGE + 1 ..= min((k+1)*DICT_PAGE, len)` — only the last
    /// row may be partial. A partial tail row is rewritten in place (via
    /// WAL-logged cell updates, so the rewrite commits atomically with the
    /// data batch) and full pages are appended after it. Interned-but-
    /// rolled-back entries from a failed earlier batch are re-covered
    /// automatically because the on-disk watermark never advanced for them.
    ///
    /// Stores created before the page codec keep their 2-column
    /// `(id, term)` format; both are readable (see `restore_meta`).
    fn persist_dict(&mut self, dict: &Dict) -> Result<()> {
        if dict.is_empty() && self.db.table(DICT_TABLE).is_none() {
            return Ok(());
        }
        if let Some(t) = self.db.table(DICT_TABLE) {
            if t.width() == 2 {
                return self.persist_dict_legacy(dict);
            }
        } else {
            self.db.create_table(relstore::TableSchema::new(
                DICT_TABLE,
                vec![
                    ("first_id".into(), relstore::SqlType::Int),
                    ("n".into(), relstore::SqlType::Int),
                    ("page".into(), relstore::SqlType::Text),
                ],
            ))?;
        }
        let table_rows = self.db.table(DICT_TABLE).map(|t| t.row_count()).unwrap_or(0);
        let persisted = match table_rows {
            0 => 0,
            rows => {
                let t = self.db.table(DICT_TABLE).expect("sys_dict exists");
                let last = t.row_values(rows as u32 - 1);
                match last[1] {
                    relstore::Value::Int(n) => (rows - 1) * DICT_PAGE + n as usize,
                    ref other => {
                        return Err(StoreError::Sql(relstore::Error::Corrupt(format!(
                            "sys_dict row {} has non-integer count {other:?}",
                            rows - 1
                        ))))
                    }
                }
            }
        };
        let len = dict.len();
        if len <= persisted {
            return Ok(());
        }
        let first_dirty_row = persisted / DICT_PAGE;
        let mut terms = dict.entries_from(first_dirty_row * DICT_PAGE).map(|(_, t)| t);
        let mut appended: Vec<Vec<relstore::Value>> = Vec::new();
        for row_idx in first_dirty_row..len.div_ceil(DICT_PAGE) {
            let lo = row_idx * DICT_PAGE;
            let n = (len - lo).min(DICT_PAGE);
            let page_terms: Vec<String> = terms.by_ref().take(n).collect();
            let page = crate::persist::encode_dict_page(&page_terms);
            if row_idx < table_rows {
                self.db.update_cell(DICT_TABLE, row_idx as u32, 1, relstore::Value::Int(n as i64))?;
                self.db.update_cell(DICT_TABLE, row_idx as u32, 2, relstore::Value::str(page))?;
            } else {
                appended.push(vec![
                    relstore::Value::Int(lo as i64 + 1),
                    relstore::Value::Int(n as i64),
                    relstore::Value::str(page),
                ]);
            }
        }
        if !appended.is_empty() {
            self.db.insert_rows(DICT_TABLE, appended)?;
        }
        Ok(())
    }

    /// Append-only `(id, term)` persistence for stores created before the
    /// front-coded page codec: the watermark is simply the row count.
    fn persist_dict_legacy(&mut self, dict: &Dict) -> Result<()> {
        let watermark = self.db.table(DICT_TABLE).map(|t| t.row_count()).unwrap_or(0);
        let rows: Vec<Vec<relstore::Value>> = dict
            .entries_from(watermark)
            .map(|(id, term)| vec![relstore::Value::Int(id), relstore::Value::str(term)])
            .collect();
        if !rows.is_empty() {
            self.db.insert_rows(DICT_TABLE, rows)?;
        }
        Ok(())
    }

    fn ensure_meta_table(&mut self) -> Result<()> {
        if self.db.table(META_TABLE).is_none() {
            self.db.create_table(relstore::TableSchema::new(
                META_TABLE,
                vec![("k".into(), relstore::SqlType::Text), ("v".into(), relstore::SqlType::Text)],
            ))?;
        }
        Ok(())
    }

    /// Upsert one `sys_meta` row, skipping the write when unchanged.
    fn set_meta(&mut self, key: &str, value: String) -> Result<()> {
        let existing = self.db.table(META_TABLE).and_then(|t| {
            (0..t.row_count() as u32).find_map(|r| {
                let row = t.row_values(r);
                match (&row[0], &row[1]) {
                    (relstore::Value::Str(k), v) if k.as_ref() == key => {
                        Some((r, v.as_str().map(str::to_string)))
                    }
                    _ => None,
                }
            })
        });
        match existing {
            Some((_, Some(old))) if old == value => Ok(()),
            Some((row, _)) => {
                self.db.update_cell(META_TABLE, row, 1, relstore::Value::str(value))?;
                Ok(())
            }
            None => {
                self.db.insert_rows(
                    META_TABLE,
                    [vec![relstore::Value::str(key.to_string()), relstore::Value::str(value)]],
                )?;
                Ok(())
            }
        }
    }

    /// Read one `sys_meta` value, if the table and key exist.
    fn get_meta(&self, key: &str) -> Option<String> {
        let t = self.db.table(META_TABLE)?;
        (0..t.row_count() as u32).find_map(|r| {
            let row = t.row_values(r);
            match (&row[0], &row[1]) {
                (relstore::Value::Str(k), relstore::Value::Str(v)) if k.as_ref() == key => {
                    Some(v.to_string())
                }
                _ => None,
            }
        })
    }

    /// Restore side metadata after a durable reopen. A directory without
    /// `sys_meta` is a fresh (or never-loaded) store; a present-but-invalid
    /// blob is surfaced as corruption rather than silently ignored.
    fn restore_meta(&mut self) -> Result<()> {
        // Bulk-load crash protocol: an interrupted streaming bulk load left
        // a committed-but-partial dataset. Refuse explicitly rather than
        // serving a prefix of it (the marker precedes the layout record, so
        // this check must come first).
        if let Some(marker) = self.get_meta(BULK_MARKER) {
            if marker != "complete" {
                return Err(StoreError::Sql(relstore::Error::Corrupt(format!(
                    "bulk load interrupted (marker: {marker}); the store holds a \
                     partial dataset — delete the directory and re-run the bulk load"
                ))));
            }
        }
        let Some(layout) = self.get_meta("layout") else {
            return Ok(());
        };
        let expect = match self.cfg.layout {
            Layout::Entity => "entity",
            Layout::TripleStore => "triple-store",
            Layout::Vertical => "vertical",
        };
        if layout != expect {
            return Err(StoreError::Unsupported(format!(
                "store was created with the {layout} layout but opened as {expect}"
            )));
        }
        let corrupt = |key: &str, e: String| {
            StoreError::Sql(relstore::Error::Corrupt(format!("sys_meta {key:?}: {e}")))
        };
        // Rebuild the in-memory dictionary from sys_dict. Entries were
        // written append-only with dense IDs (front-coded pages since PR 8,
        // one `(id, term)` row per entry before); gaps or duplicates after
        // WAL replay mean corruption.
        if let Some(t) = self.db.table(DICT_TABLE) {
            let legacy = t.width() == 2;
            let mut entries: Vec<(i64, String)> = Vec::with_capacity(t.row_count());
            if legacy {
                for r in 0..t.row_count() as u32 {
                    let row = t.row_values(r);
                    match (&row[0], &row[1]) {
                        (relstore::Value::Int(id), relstore::Value::Str(term)) => {
                            entries.push((*id, term.to_string()));
                        }
                        other => {
                            return Err(corrupt("sys_dict", format!("malformed row {other:?}")));
                        }
                    }
                }
            } else {
                let mut pages: Vec<(i64, i64, String)> = Vec::with_capacity(t.row_count());
                for r in 0..t.row_count() as u32 {
                    let row = t.row_values(r);
                    match (&row[0], &row[1], &row[2]) {
                        (
                            relstore::Value::Int(first),
                            relstore::Value::Int(n),
                            relstore::Value::Str(page),
                        ) => pages.push((*first, *n, page.to_string())),
                        other => {
                            return Err(corrupt("sys_dict", format!("malformed row {other:?}")));
                        }
                    }
                }
                pages.sort_by_key(|p| p.0);
                for (first, n, page) in pages {
                    let terms = crate::persist::decode_dict_page(&page, n as usize)
                        .map_err(|e| corrupt("sys_dict", e))?;
                    for (k, term) in terms.into_iter().enumerate() {
                        entries.push((first + k as i64, term));
                    }
                }
            }
            entries.sort_by_key(|e| e.0);
            let mut dict = self.dict.write();
            for (id, term) in entries {
                dict.restore(id, &term).map_err(|e| corrupt("sys_dict", e))?;
            }
        }
        if let Some(text) = self.get_meta("stats") {
            self.stats = crate::persist::decode_stats(&text).map_err(|e| corrupt("stats", e))?;
        }
        if let Some(text) = self.get_meta("report") {
            self.report = crate::persist::decode_report(&text).map_err(|e| corrupt("report", e))?;
        }
        if let Some(text) = self.get_meta("direct") {
            self.direct = Some(crate::persist::decode_side(&text).map_err(|e| corrupt("direct", e))?);
        }
        if let Some(text) = self.get_meta("reverse") {
            self.reverse =
                Some(crate::persist::decode_side(&text).map_err(|e| corrupt("reverse", e))?);
        }
        if let Some(text) = self.get_meta("vertical") {
            self.vertical =
                Some(crate::persist::decode_vertical(&text).map_err(|e| corrupt("vertical", e))?);
        }
        // A layout record is only ever written by a completed load.
        match self.cfg.layout {
            Layout::Entity => self.loaded = self.direct.is_some() && self.reverse.is_some(),
            Layout::TripleStore => self.loaded = true,
            Layout::Vertical => self.loaded = self.vertical.is_some(),
        }
        Ok(())
    }

    /// Bulk load a dataset (must be called exactly once, before queries).
    /// On a durable store the whole load — tables, indexes, rows, and the
    /// `sys_meta` metadata — commits as one WAL transaction: a crash during
    /// load recovers to the pre-load (empty) state, never to half a dataset.
    pub fn load(&mut self, triples: &[Triple]) -> Result<&LoadReport> {
        if self.loaded {
            return Err(StoreError::Unsupported(
                "load() may only be called once; use insert() afterwards".into(),
            ));
        }
        // Bumped unconditionally (even on a later error): a failed batch
        // rolls the relational state back but may leave freshly interned
        // dictionary entries in memory, so the conservative move is to
        // invalidate every cached plan whenever a mutation was attempted.
        self.epoch += 1;
        // One write guard covers stats interning, loading, and persistence;
        // query-side readers (the RDF_* functions) only run between batches.
        let dict_arc = self.dict.clone();
        let mut dict = dict_arc.write();
        self.stats = match self.cfg.layout {
            Layout::Entity => {
                Stats::collect_with_dict(triples.iter(), self.cfg.top_k, &mut dict)
            }
            _ => Stats::collect(triples.iter(), self.cfg.top_k),
        };
        self.db.begin_batch();
        let res = (|| -> Result<()> {
            match self.cfg.layout {
                Layout::Entity => {
                    let (d, r, report) =
                        bulk_load_entity(&mut self.db, triples, &self.cfg.entity, &mut dict)?;
                    self.direct = Some(d);
                    self.reverse = Some(r);
                    self.report = report;
                }
                Layout::TripleStore => {
                    load_triple_store(&mut self.db, triples)?;
                    self.report =
                        LoadReport { triples: triples.len() as u64, ..Default::default() };
                }
                Layout::Vertical => {
                    self.vertical = Some(load_vertical(&mut self.db, triples)?);
                    self.report =
                        LoadReport { triples: triples.len() as u64, ..Default::default() };
                }
            }
            self.persist_meta(&dict)
        })();
        let committed = self.db.commit_batch();
        res?;
        committed?;
        self.loaded = true;
        Ok(&self.report)
    }

    /// Bulk load from N-Triples/N-Quads text (named graphs are accepted and
    /// ignored by the layout; see DESIGN.md).
    pub fn load_ntriples(&mut self, text: &str) -> Result<&LoadReport> {
        let quads = rdf::parse_ntriples(text)
            .map_err(|e| StoreError::Unsupported(format!("N-Triples: {e}")))?;
        let triples: Vec<Triple> = quads.into_iter().map(|q| q.triple).collect();
        self.load(&triples)
    }

    /// Incrementally insert one triple after the bulk load. On a durable
    /// store the data mutation and the `sys_meta` refresh commit as one WAL
    /// transaction.
    ///
    /// Cached plans are invalidated only when the insert changed a planning
    /// input — it interned a new dictionary ID or moved a predicate layout
    /// (spill, multi-valued flip, widening). An insert of already-known
    /// terms into settled layouts leaves the epoch (and every warm plan)
    /// untouched: generated SQL is data-independent, so stale statistics
    /// can at worst pick a slower join order, never a wrong answer.
    pub fn insert(&mut self, triple: &Triple) -> Result<bool> {
        if !self.loaded {
            self.load(std::slice::from_ref(triple))?;
            return Ok(true);
        }
        let fp_before = self.plan_fingerprint();
        let dict_arc = self.dict.clone();
        let mut dict = dict_arc.write();
        self.db.begin_batch();
        let res = (|| -> Result<bool> {
            let added = match self.cfg.layout {
                Layout::Entity => {
                    let mut d = self.direct.take().expect("loaded entity layout");
                    let mut r = self.reverse.take().expect("loaded entity layout");
                    let added = insert_entity(
                        &mut self.db,
                        &mut d,
                        &mut r,
                        triple,
                        &mut self.report,
                        &mut dict,
                    );
                    self.direct = Some(d);
                    self.reverse = Some(r);
                    added?
                }
                Layout::TripleStore => {
                    let added = insert_triple_store(&mut self.db, triple)?;
                    if added {
                        self.report.triples += 1;
                    }
                    added
                }
                Layout::Vertical => {
                    let mut v = self.vertical.take().expect("loaded vertical layout");
                    let res = insert_vertical(&mut self.db, &mut v, triple);
                    self.vertical = Some(v);
                    let added = res?;
                    if added {
                        self.report.triples += 1;
                    }
                    added
                }
            };
            if added {
                self.persist_meta(&dict)?;
            }
            Ok(added)
        })();
        drop(dict);
        let committed = self.db.commit_batch();
        // An error may have left freshly interned dictionary entries in
        // memory, so the conservative move is to invalidate on any failure;
        // on success the fingerprint decides (see the method doc).
        if res.is_err() || committed.is_err() || self.plan_fingerprint() != fp_before {
            self.epoch += 1;
        } else if let Some(cache) = &self.plan_cache {
            cache.note_invalidation_avoided();
        }
        let added = res?;
        committed?;
        Ok(added)
    }

    /// Delete one triple from any layout. Returns true if the triple
    /// existed.
    ///
    /// Deletes never invalidate cached plans: the dictionary is append-only,
    /// predicate layouts never shrink, and generated SQL is data-independent
    /// — a stale plan replayed after a delete returns exactly the surviving
    /// rows. Each successful call counts as an avoided invalidation.
    pub fn delete(&mut self, triple: &Triple) -> Result<bool> {
        if !self.loaded {
            return Ok(false);
        }
        let dict_arc = self.dict.clone();
        // Deletion never interns: a read guard suffices.
        let dict = dict_arc.read();
        self.db.begin_batch();
        let res = (|| -> Result<bool> {
            let removed = match self.cfg.layout {
                Layout::Entity => {
                    let d = self.direct.as_ref().expect("loaded entity layout").clone();
                    let r = self.reverse.as_ref().expect("loaded entity layout").clone();
                    crate::loader::delete_entity(
                        &mut self.db,
                        &d,
                        &r,
                        triple,
                        &mut self.report,
                        &dict,
                    )?
                }
                Layout::TripleStore => {
                    let removed = delete_triple_store(&mut self.db, triple)?;
                    if removed {
                        self.report.triples = self.report.triples.saturating_sub(1);
                    }
                    removed
                }
                Layout::Vertical => {
                    let v = self.vertical.as_ref().expect("loaded vertical layout");
                    let removed = delete_vertical(&mut self.db, v, triple)?;
                    if removed {
                        self.report.triples = self.report.triples.saturating_sub(1);
                    }
                    removed
                }
            };
            if removed {
                self.persist_meta(&dict)?;
            }
            Ok(removed)
        })();
        drop(dict);
        let committed = self.db.commit_batch();
        if res.is_err() || committed.is_err() {
            self.epoch += 1; // conservative, mirroring insert()
        } else if let Some(cache) = &self.plan_cache {
            cache.note_invalidation_avoided();
        }
        let removed = res?;
        committed?;
        Ok(removed)
    }

    /// The planning inputs a mutation can move, condensed to a comparable
    /// fingerprint: dictionary size (a new ID can turn a provably-empty
    /// constant into a live one) and per-side layout shape (column count,
    /// spill set, multi-valued set — each changes generated column probes),
    /// plus the vertical layout's table count (a new predicate table
    /// changes variable-predicate unions and un-empties lookups). Row data
    /// is deliberately absent: SQL generation never depends on it.
    fn plan_fingerprint(&self) -> (usize, [usize; 3], [usize; 3], usize) {
        let side = |s: &Option<SideLayout>| match s {
            Some(s) => [s.ncols, s.spill_preds.len(), s.multivalued.len()],
            None => [0; 3],
        };
        (
            self.dict.read().len(),
            side(&self.direct),
            side(&self.reverse),
            self.vertical.as_ref().map(|v| v.tables.len()).unwrap_or(0),
        )
    }

    /// Translate a SPARQL query to SQL without executing it.
    pub fn translate(&self, sparql_text: &str) -> Result<String> {
        let plan = self.plan(sparql_text)?;
        plan.sql.clone().ok_or_else(|| {
            StoreError::Unsupported(
                "query's answer is fixed by the algebra alone, so no SQL is generated".into(),
            )
        })
    }

    /// Full plan details for a query.
    pub fn explain(&self, sparql_text: &str) -> Result<Explanation> {
        let plan = self.plan(sparql_text)?;
        Ok(Explanation {
            flow: plan.flow.clone(),
            exec_tree: match &plan.exec {
                Some(exec) => format!("{exec:#?}"),
                None => "Trivial (no triple patterns)".into(),
            },
            sql: plan
                .sql
                .clone()
                .unwrap_or_else(|| "-- no SQL: query has no triple patterns".into()),
        })
    }

    /// Execute a SPARQL query.
    pub fn query(&self, sparql_text: &str) -> Result<Solutions> {
        let plan = self.plan(sparql_text)?;
        self.run_plan(&plan)
    }

    /// Execute an already-parsed query, bypassing the text-keyed plan cache
    /// — the SPARQL Update applier evaluates WHERE clauses through this (the
    /// AST came out of a parsed update request, not off the wire).
    pub(crate) fn query_parsed(&self, query: sparql::Query) -> Result<Solutions> {
        if !self.loaded {
            return Err(StoreError::Unsupported("store is empty; load data first".into()));
        }
        let plan = self.plan_parsed(query)?;
        self.run_plan(&plan)
    }

    /// Run a planned query against the relational engine and materialize
    /// solutions (the single late-materialization point: dictionary IDs
    /// become terms only here).
    fn run_plan(&self, plan: &CachedPlan) -> Result<Solutions> {
        let Some(sql) = &plan.sql else {
            // Zero triple patterns: the answer is fixed by SPARQL algebra —
            // `ASK {}` is true, a SELECT over the empty group pattern
            // yields exactly one all-unbound solution (μ0) — with the
            // query's LIMIT/OFFSET still applied.
            return Ok(trivial_solutions(plan));
        };
        let rel = self.db.query(sql)?;
        match plan.query.form {
            QueryForm::Ask => Ok(Solutions::from_ask(!rel.rows.is_empty())),
            QueryForm::Select { .. } => {
                let dict = self.dict.read();
                Ok(Solutions::from_select_modes(
                    plan.projected.clone(),
                    Some(&plan.projected_modes),
                    &rel,
                    Some(&dict),
                ))
            }
        }
    }

    /// Plan a query, going through the epoch-guarded cache when enabled:
    /// a hit skips parsing, optimization, star merging, and SQL generation
    /// entirely. Entries are keyed on the trimmed query text and tagged
    /// with the mutation epoch they were planned under; `load`/`insert`/
    /// `delete` bump the epoch, so a stale plan can never be replayed
    /// against a store whose dictionary, statistics, or layouts have moved.
    fn plan(&self, sparql_text: &str) -> Result<Arc<CachedPlan>> {
        if !self.loaded {
            return Err(StoreError::Unsupported("store is empty; load data first".into()));
        }
        let key = plancache::normalize(sparql_text);
        if let Some(cache) = &self.plan_cache {
            if let Some(plan) = cache.get(key, self.epoch) {
                return Ok(plan);
            }
        }
        let plan = Arc::new(self.plan_uncached(sparql_text)?);
        if let Some(cache) = &self.plan_cache {
            cache.insert(key, self.epoch, plan.clone());
        }
        Ok(plan)
    }

    /// The full §3 pipeline: parse → optimize → merge → generate SQL.
    fn plan_uncached(&self, sparql_text: &str) -> Result<CachedPlan> {
        self.plan_parsed(parse_sparql(sparql_text)?)
    }

    /// The §3 pipeline from an already-parsed query: optimize → merge →
    /// generate SQL.
    fn plan_parsed(&self, query: sparql::Query) -> Result<CachedPlan> {
        let projected = query.projected_variables();
        if query.is_fixed_answer() {
            // Valid SPARQL (`ASK {}`, `SELECT * WHERE {}`): nothing to
            // optimize or translate; `query()` answers it directly.
            let projected_modes = vec![DecodeMode::Term; projected.len()];
            return Ok(CachedPlan {
                query,
                flow: Vec::new(),
                exec: None,
                sql: None,
                projected,
                projected_modes,
            });
        }
        let mut state = GenState::new();
        let dict = self.dict.read();
        let (flow, exec) = self.gen_level(&query, &mut state, &dict)?;
        drop(dict);
        let sql = finish(&query, &mut state)?;
        let projected_modes = projected
            .iter()
            .map(|v| {
                if state.plain.contains(v) { DecodeMode::Plain } else { DecodeMode::Term }
            })
            .collect();
        Ok(CachedPlan { flow, exec, sql: Some(sql), projected, projected_modes, query })
    }

    /// Generate the CTE chain for one SELECT level — the outer query or one
    /// subquery body. Order of lowering (a documented deviation from strict
    /// syntactic evaluation, mirrored exactly by the naive engine): first
    /// the core pattern (triples / UNION / OPTIONAL plus the filters that
    /// don't mention extension variables), then BIND / VALUES / subqueries
    /// in syntactic order, then the deferred filters, then the aggregation
    /// or computed-projection layer. Returns the optimizer's data flow and
    /// merged execution tree for the core pattern (empty when this level
    /// has no triple patterns).
    #[allow(clippy::type_complexity)]
    fn gen_level(
        &self,
        query: &Query,
        state: &mut GenState,
        dict: &Dict,
    ) -> Result<(Vec<(usize, &'static str)>, Option<ExecNode>)> {
        reject_nested_extensions(&query.pattern)?;
        let mut core_children = Vec::new();
        for child in &query.pattern.children {
            match child {
                Pattern::Bind { .. } | Pattern::Values(_) | Pattern::SubSelect(_) => {}
                other => core_children.push(other.clone()),
            }
        }
        let core_triple_count: usize =
            core_children.iter().map(|c| c.triples().len()).sum();
        // Variables introduced by extension operators: filters mentioning
        // them cannot attach to the core chain and are applied afterwards.
        let ext_vars: HashSet<String> = query
            .pattern
            .children
            .iter()
            .flat_map(|c| match c {
                Pattern::Bind { var, .. } => vec![var.clone()],
                Pattern::Values(vb) => vb.vars.clone(),
                Pattern::SubSelect(q) => q.projected_variables(),
                _ => Vec::new(),
            })
            .collect();
        let mut core_filters = Vec::new();
        let mut deferred = Vec::new();
        for f in &query.pattern.filters {
            let mentions_ext =
                f.non_aggregated_variables().iter().any(|v| ext_vars.contains(*v));
            if mentions_ext || core_triple_count == 0 {
                deferred.push(f.clone());
            } else {
                core_filters.push(f.clone());
            }
        }

        let (flow, exec) = if core_triple_count > 0 {
            let core_query = Query {
                form: QueryForm::Ask,
                pattern: sparql::GroupPattern { children: core_children, filters: core_filters },
                group_by: Vec::new(),
                having: Vec::new(),
                order_by: Vec::new(),
                limit: None,
                offset: None,
            };
            let tree = PTree::build(&core_query);
            let (flow, exec) = optimize(&tree, &self.stats, self.cfg.optimizer);
            let exec = match self.cfg.layout {
                Layout::Entity => {
                    let direct = self.direct.as_ref().expect("loaded");
                    let reverse = self.reverse.as_ref().expect("loaded");
                    let info = MergeInfo {
                        spill_direct: &direct.spill_preds,
                        spill_reverse: &reverse.spill_preds,
                        multi_direct: &direct.multivalued,
                        multi_reverse: &reverse.multivalued,
                    };
                    let exec = merge_exec_tree(&tree, exec, &info);
                    let backend = EntityGen { tree: &tree, direct, reverse, dict };
                    gen_pattern(&backend, &exec, state)?;
                    exec
                }
                Layout::TripleStore => {
                    let backend = TripleGen { tree: &tree };
                    gen_pattern(&backend, &exec, state)?;
                    exec
                }
                Layout::Vertical => {
                    let layout = self.vertical.as_ref().expect("loaded");
                    let backend = VerticalGen { tree: &tree, layout, max_union_tables: 500 };
                    gen_pattern(&backend, &exec, state)?;
                    exec
                }
            };
            let flow = flow.order.iter().map(|n| (n.triple + 1, n.method.name())).collect();
            (flow, Some(exec))
        } else {
            (Vec::new(), None)
        };

        // Extension operators in syntactic order. A BIND expression only
        // sees variables bound by syntactically preceding group elements.
        let mut seen: HashSet<String> = HashSet::new();
        for child in &query.pattern.children {
            match child {
                Pattern::Bind { expr, var } => {
                    gen_bind(expr, var, &seen, state)?;
                    seen.insert(var.clone());
                }
                Pattern::Values(vb) => {
                    let enc = |t: &rdf::Term| -> String {
                        match self.cfg.layout {
                            // Entity columns hold dictionary IDs; a term
                            // missing from the dictionary can never match a
                            // stored one, so encode it as its (non-NULL —
                            // NULL means UNDEF) canonical string, which
                            // RDF_SAMETERM rejects against any ID.
                            Layout::Entity => match dict.lookup(&t.encode()) {
                                Some(id) => id.to_string(),
                                None => quote_str(&t.encode()),
                            },
                            _ => quote_str(&t.encode()),
                        }
                    };
                    gen_values(vb, &enc, state)?;
                    seen.extend(vb.vars.iter().cloned());
                }
                Pattern::SubSelect(sub) => {
                    gen_subquery_join(sub, state, &mut |q, st| {
                        self.gen_level(q, st, dict).map(|_| ())
                    })?;
                    seen.extend(sub.projected_variables());
                }
                other => seen.extend(other.variables()),
            }
        }
        for f in &deferred {
            apply_filter(f, state)?;
        }
        if query.is_aggregate() {
            gen_aggregate(query, state)?;
        } else if let Some(items) = query.select_items() {
            gen_select_exprs(items, state)?;
        }
        Ok((flow, exec))
    }

    pub fn statistics(&self) -> &Stats {
        &self.stats
    }

    pub fn load_report(&self) -> &LoadReport {
        &self.report
    }

    /// Direct access to the relational back-end (read-only).
    pub fn database(&self) -> &Database {
        &self.db
    }

    /// The shared term dictionary (empty for baseline layouts).
    pub fn dictionary(&self) -> &SharedDict {
        &self.dict
    }

    /// In-memory size accounting of the term dictionary (entry count, raw
    /// vs front-coded bytes) — surfaced by the server's `/stats`.
    pub fn dict_stats(&self) -> crate::dict::DictMemStats {
        self.dict.read().mem_stats()
    }

    /// Adjust the per-query evaluation budget (the "timeout").
    pub fn set_row_budget(&mut self, budget: Option<u64>) {
        self.db.set_row_budget(budget);
    }

    /// Adjust the per-query wall-clock deadline (None disables it).
    pub fn set_deadline(&mut self, deadline: Option<std::time::Duration>) {
        self.db.set_deadline(deadline);
    }

    /// True when a durable store has degraded to read-only after a WAL
    /// write failure: queries keep working, mutations are refused.
    pub fn is_read_only(&self) -> bool {
        self.db.is_read_only()
    }

    /// Bytes durably committed in the live WAL, if durable and writable.
    /// The crash-point fuzzer snapshots this after each acknowledged
    /// mutation to learn the exact frame boundaries truncation must respect.
    pub fn wal_len(&self) -> Option<u64> {
        self.db.wal_len()
    }

    /// Adjust the executor worker-pool width (see [`StoreConfig::threads`]).
    pub fn set_threads(&mut self, threads: Option<usize>) {
        self.db.set_threads(threads);
    }

    /// Effective executor worker-pool width after resolving the configured
    /// override, `RELSTORE_THREADS`, and detected parallelism.
    pub fn threads(&self) -> usize {
        self.db.threads()
    }

    /// The current mutation epoch (bumped by every `load`/`insert`/
    /// `delete`); cached plans from older epochs are never replayed.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Plan-cache counters, or `None` when the cache is disabled.
    pub fn plan_cache_stats(&self) -> Option<PlanCacheStats> {
        self.plan_cache.as_ref().map(|c| c.stats())
    }

    /// Resize (or disable, with `entries == 0`) the plan cache. The cache
    /// is rebuilt empty and its counters reset.
    pub fn set_plan_cache(&mut self, entries: usize) {
        self.cfg.plan_cache_entries = entries;
        self.plan_cache = (entries > 0).then(|| Arc::new(PlanCache::new(entries)));
    }

    /// Whether a dataset has been loaded (or built up by inserts).
    pub fn is_loaded(&self) -> bool {
        self.loaded
    }

    /// A snapshot-isolated read-only clone: tables are shared copy-on-write
    /// with the master (`Arc` bumps; the writer's next mutation of a table
    /// clones just that table), the term dictionary and plan cache are the
    /// *same* shared objects (both are append-only/epoch-guarded, so old
    /// snapshots read them safely), and the clone carries no durability
    /// state — it can serve queries but never log or sync. The building
    /// block of `SharedStore`'s snapshot-per-reader concurrency.
    pub(crate) fn snapshot_clone(&self) -> RdfStore {
        RdfStore {
            cfg: self.cfg.clone(),
            db: self.db.snapshot_clone(),
            stats: self.stats.clone(),
            dict: self.dict.clone(),
            direct: self.direct.clone(),
            reverse: self.reverse.clone(),
            vertical: self.vertical.clone(),
            report: self.report.clone(),
            loaded: self.loaded,
            epoch: self.epoch,
            plan_cache: self.plan_cache.clone(),
        }
    }

    // -- SPARQL Update applier plumbing (crate-internal) --------------------

    /// Open a nested WAL batch around a multi-op update request; see
    /// [`crate::update`].
    pub(crate) fn db_begin_batch(&mut self) {
        self.db.begin_batch();
    }

    /// Close the request batch by *appending* its frame without fsync — the
    /// group-commit leader pays one [`RdfStore::db_sync_wal`] for the whole
    /// group afterwards.
    pub(crate) fn db_commit_batch_nosync(&mut self) -> Result<()> {
        self.db.commit_batch_nosync()?;
        Ok(())
    }

    /// The group-commit barrier: fsync every frame appended since the last
    /// sync. On failure the store degrades to read-only and the unsynced
    /// frames are discarded.
    pub(crate) fn db_sync_wal(&mut self) -> Result<()> {
        self.db.sync_wal()?;
        Ok(())
    }

    /// Take a copy-on-write backup of everything a mutation can touch; see
    /// [`MutationCheckpoint`].
    pub(crate) fn mutation_checkpoint(&self) -> MutationCheckpoint {
        MutationCheckpoint {
            tables: self.db.save_tables(),
            direct: self.direct.clone(),
            reverse: self.reverse.clone(),
            vertical: self.vertical.clone(),
            report: self.report.clone(),
            stats: self.stats.clone(),
            loaded: self.loaded,
        }
    }

    /// Roll the store back to a [`MutationCheckpoint`], aborting any open
    /// batch (its buffered ops never reach the WAL). The term dictionary
    /// keeps entries interned since the checkpoint — they are append-only
    /// and unreferenced after the table restore — so the epoch is bumped to
    /// keep any plan computed against the transient state from surviving.
    pub(crate) fn rollback_mutation(&mut self, cp: MutationCheckpoint) {
        self.db.abort_batch();
        self.db.restore_tables(cp.tables);
        self.direct = cp.direct;
        self.reverse = cp.reverse;
        self.vertical = cp.vertical;
        self.report = cp.report;
        self.stats = cp.stats;
        self.loaded = cp.loaded;
        self.epoch += 1;
    }

    /// Append `n` all-NULL predicate/value column pairs to DPH and rewrite
    /// its rows — the §2.3 NULL-storage experiment's ALTER TABLE analogue.
    /// The new columns are invisible to the predicate mapping; only storage
    /// and scan width are affected.
    pub fn widen_dph_for_experiment(&mut self, n: usize) {
        self.epoch += 1; // schema change: cached plans must not survive
        if let Some(table) = self.db.table_mut("dph") {
            let base = table.width();
            let cols: Vec<(String, relstore::SqlType)> = (0..n)
                .flat_map(|i| {
                    [
                        (format!("xpred{}", base + i), relstore::SqlType::Text),
                        (format!("xval{}", base + i), relstore::SqlType::Text),
                    ]
                })
                .collect();
            table.widen_rewritten(cols);
        }
    }
}

/// Extension operators (BIND / VALUES / subqueries) are supported only at
/// the top level of a SELECT's WHERE group. Inside UNION branches,
/// OPTIONALs, or nested groups their binding scope would interact with
/// operators this translator linearizes differently, so they are rejected
/// loudly rather than silently mis-scoped. Subquery bodies are *not*
/// walked here: each body is its own level, checked when it is planned.
fn reject_nested_extensions(group: &sparql::GroupPattern) -> Result<()> {
    fn walk(p: &Pattern, top: bool) -> Result<()> {
        match p {
            Pattern::Triple(_) => Ok(()),
            Pattern::Group(g) => g.children.iter().try_for_each(|c| walk(c, false)),
            Pattern::Union(cs) => cs.iter().try_for_each(|c| walk(c, false)),
            Pattern::Optional(c) => walk(c, false),
            Pattern::Bind { var, .. } if !top => Err(StoreError::Unsupported(format!(
                "BIND (?{var}) is only supported at the top level of a SELECT's WHERE group"
            ))),
            Pattern::Values(_) if !top => Err(StoreError::Unsupported(
                "VALUES is only supported at the top level of a SELECT's WHERE group".into(),
            )),
            Pattern::SubSelect(_) if !top => Err(StoreError::Unsupported(
                "subqueries are only supported at the top level of a SELECT's WHERE group".into(),
            )),
            _ => Ok(()),
        }
    }
    group.children.iter().try_for_each(|c| walk(c, true))
}

/// The fixed answer for a query with zero triple patterns: `ASK {}` is
/// true; a SELECT over the empty group yields one all-unbound solution,
/// to which the query's OFFSET/LIMIT still apply.
fn trivial_solutions(plan: &CachedPlan) -> Solutions {
    match plan.query.form {
        QueryForm::Ask => Solutions::from_ask(true),
        QueryForm::Select { .. } => {
            let mut sols = Solutions::unit(plan.projected.clone());
            if plan.query.offset.unwrap_or(0) >= 1 {
                sols.rows.clear();
            }
            if let Some(limit) = plan.query.limit {
                sols.rows.truncate(limit as usize);
            }
            sols
        }
    }
}

/// Convenience: which generator a layout uses (exposed for tests/benches
/// that drive translation directly).
pub fn layout_name(layout: Layout) -> &'static str {
    match layout {
        Layout::Entity => "entity-oriented (DB2RDF)",
        Layout::TripleStore => "triple-store",
        Layout::Vertical => "predicate-oriented (vertical)",
    }
}

// Silence an unused-import warning when compiled without tests referencing
// the trait directly.
const _: Option<&dyn StarGen> = None;
