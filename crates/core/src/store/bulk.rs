//! Streaming, parallel bulk load of the entity layout (PR 8; ROADMAP item
//! 5 "paper-scale data on a memory budget").
//!
//! The materialized path (`RdfStore::load`) holds the whole document, a
//! `Vec<Quad>` of decoded terms, per-side `Arc<str>` grouping maps, and one
//! monolithic WAL batch — five copies of the dataset at peak. This pipeline
//! replaces all of that for large loads:
//!
//! 1. **Chunked read** — the input is consumed as line-aligned chunks
//!    ([`rdf::ChunkReader`]); the document is never resident.
//! 2. **Morsel-parallel parse** — each round hands one chunk per worker to
//!    the PR 6 [`WorkerPool`]; workers parse privately into a local
//!    distinct-term list (first-appearance order) plus term-index triples.
//! 3. **Deterministic parallel intern** — worker results are merged *in
//!    chunk order*, interning each chunk's term list sequentially. Chunk
//!    boundaries depend only on the byte stream, so the dictionary — and
//!    therefore every ID, row, and persisted byte downstream — is identical
//!    at any thread count (the PR 6 determinism contract, property-tested
//!    in `tests/bulk_load.rs`). After this stage triples are three `i64`s;
//!    all strings are gone.
//! 4. **Sorted append** — encoded triples are sorted by (entity, pred,
//!    value) per side and packed entity-run by entity-run into DPH/DS rows,
//!    inserted in bounded **segments**, each its own WAL batch. When the
//!    WAL grows past a threshold the store checkpoints between segments, so
//!    the WAL never holds the full dataset.
//!
//! ## Crash protocol
//!
//! The first batch writes a `bulk_load = in-progress` marker into
//! `sys_meta` (and persists the complete dictionary, so every ID any later
//! segment references is durable before or with its referents). The final
//! batch flips the marker to `complete` together with the layouts, stats
//! and report. Reopening a store whose marker is not `complete` — a crash
//! landed between the first and last commit — refuses explicitly with a
//! corruption error rather than serving a partial dataset; a crash before
//! the first commit recovers to an empty store. Within any single batch the
//! relstore WAL framing already guarantees all-or-nothing replay.
//!
//! Differences from the materialized path, by design: exact duplicate
//! triples are deduplicated (matching `insert`'s semantics), per-entity
//! predicate order is ascending dictionary ID rather than first-appearance,
//! and top-k statistics tie-break by ID rather than lexical form. Both
//! paths answer queries identically; byte layouts differ between them (not
//! across thread counts).

use std::collections::{HashMap, HashSet};
use std::io::Read;
use std::sync::Mutex;
use std::time::Instant;

use rdf::Triple;
use relstore::{Database, IndexKind, SqlType, TableSchema, Value, WorkerPool};

use crate::dict::{Dict, DictMemStats};
use crate::error::{Result, StoreError};
use crate::layout::{InterferenceGraph, PredMapping, SideLayout};
use crate::loader::{self, EntityConfig, LoadReport};
use crate::stats::{PredStat, Stats};

use super::{Layout, RdfStore, BULK_MARKER};

/// Tuning for the streaming bulk loader. Defaults suit a 1-core box with a
/// few GB of memory headroom; only `threads` changes results-invisible
/// behavior (and, per the determinism contract, not even stored bytes).
#[derive(Debug, Clone)]
pub struct BulkLoadOptions {
    /// Target bytes per line-aligned read chunk (the parse morsel).
    pub chunk_bytes: usize,
    /// Triples per insert segment — each segment commits as one WAL batch.
    pub segment_triples: usize,
    /// Checkpoint (snapshot + WAL rotation) once the WAL exceeds this many
    /// bytes, bounding both the WAL file and replay time.
    pub checkpoint_wal_bytes: u64,
    /// Parse/intern worker width; `None` uses the store's executor width.
    pub threads: Option<usize>,
}

impl Default for BulkLoadOptions {
    fn default() -> Self {
        BulkLoadOptions {
            chunk_bytes: rdf::DEFAULT_CHUNK_BYTES,
            segment_triples: 256 * 1024,
            checkpoint_wal_bytes: 128 << 20,
            threads: None,
        }
    }
}

/// What the bulk load did, for benchmarks and `/stats`.
#[derive(Debug, Clone, Default)]
pub struct BulkLoadStats {
    /// Triples loaded (after exact-duplicate removal).
    pub triples: u64,
    /// Data lines parsed (before deduplication).
    pub raw_triples: u64,
    pub parse_secs: f64,
    pub sort_secs: f64,
    pub insert_secs: f64,
    /// WAL batches committed for data segments.
    pub segments: u64,
    /// Mid-load checkpoints taken to bound the WAL.
    pub checkpoints: u64,
    pub dict: DictMemStats,
}

impl RdfStore {
    /// Stream-load an N-Triples/N-Quads document through the parallel bulk
    /// pipeline (see the module docs). Entity layout only; the store must
    /// be empty. Named graphs are accepted and ignored, like
    /// [`RdfStore::load_ntriples`].
    pub fn bulk_load_ntriples(
        &mut self,
        reader: impl Read,
        opts: &BulkLoadOptions,
    ) -> Result<BulkLoadStats> {
        self.bulk_check()?;
        let width = opts.threads.unwrap_or_else(|| self.threads()).max(1);
        let dict_arc = self.dict.clone();
        let mut dict = dict_arc.write();
        let t0 = Instant::now();
        let enc = parse_and_intern(reader, opts.chunk_bytes, width, &mut dict)?;
        let mut bstats = BulkLoadStats {
            raw_triples: enc.len() as u64,
            parse_secs: t0.elapsed().as_secs_f64(),
            ..BulkLoadStats::default()
        };
        self.bulk_load_encoded(enc, &mut dict, opts, &mut bstats)?;
        Ok(bstats)
    }

    /// Bulk-load from a triple iterator (e.g. a streaming generator)
    /// without materializing a `Vec<Triple>`. Terms are interned as they
    /// arrive; the sorted-append and checkpointing machinery is shared with
    /// [`RdfStore::bulk_load_ntriples`].
    pub fn bulk_load_triples(
        &mut self,
        triples: impl IntoIterator<Item = Triple>,
        opts: &BulkLoadOptions,
    ) -> Result<BulkLoadStats> {
        self.bulk_check()?;
        let dict_arc = self.dict.clone();
        let mut dict = dict_arc.write();
        let t0 = Instant::now();
        let mut enc: Vec<[i64; 3]> = Vec::new();
        let mut buf = String::new();
        for t in triples {
            let id_of = |term: &rdf::Term, buf: &mut String, dict: &mut Dict| {
                buf.clear();
                term.encode_into(buf);
                dict.intern(buf)
            };
            let s = id_of(&t.subject, &mut buf, &mut dict);
            let p = id_of(&t.predicate, &mut buf, &mut dict);
            let o = id_of(&t.object, &mut buf, &mut dict);
            enc.push([s, p, o]);
        }
        let mut bstats = BulkLoadStats {
            raw_triples: enc.len() as u64,
            parse_secs: t0.elapsed().as_secs_f64(),
            ..BulkLoadStats::default()
        };
        self.bulk_load_encoded(enc, &mut dict, opts, &mut bstats)?;
        Ok(bstats)
    }

    fn bulk_check(&self) -> Result<()> {
        if self.cfg.layout != Layout::Entity {
            return Err(StoreError::Unsupported(
                "bulk load supports the entity layout only".into(),
            ));
        }
        if self.loaded {
            return Err(StoreError::Unsupported(
                "bulk load requires an empty store; it has already been loaded".into(),
            ));
        }
        Ok(())
    }

    /// The shared tail of both bulk entry points: sort, stats, layout,
    /// segmented insert, finalize. `enc` holds dictionary-encoded triples.
    fn bulk_load_encoded(
        &mut self,
        mut enc: Vec<[i64; 3]>,
        dict: &mut Dict,
        opts: &BulkLoadOptions,
        bstats: &mut BulkLoadStats,
    ) -> Result<()> {
        // See load(): bump even if the load later fails — interned entries
        // may remain in memory, so cached plans must die either way.
        self.epoch += 1;
        let durable = self.db.is_durable() && !self.db.is_read_only();

        let t_sort = Instant::now();
        enc.sort_unstable();
        enc.dedup();
        bstats.triples = enc.len() as u64;

        // Direct pass: statistics, predicate forms, interference graph.
        let mut sb = StatsBuilder::default();
        sb.direct_pass(&enc);
        let pred_forms: HashMap<i64, String> = sb
            .pred
            .keys()
            .map(|&p| {
                let form = dict.resolve(p).expect("encoded predicate resolves");
                (p, form)
            })
            .collect();
        let (dmap, dncols, _) = side_mapping(&enc, &pred_forms, &self.cfg.entity);
        bstats.sort_secs += t_sort.elapsed().as_secs_f64();

        // Setup batch: schema + indexes for the direct side, the complete
        // dictionary, and the in-progress marker — one atomic commit, so
        // every ID later segments reference is durable no later than its
        // referents, and any crash past this point is detected on reopen.
        let t_insert = Instant::now();
        self.db.begin_batch();
        let res = (|| -> Result<()> {
            self.db.create_table(loader::phys_schema("dph", dncols))?;
            self.db.create_table(TableSchema::new(
                "ds",
                vec![("l_id".into(), SqlType::Int), ("elm".into(), SqlType::Int)],
            ))?;
            self.db.create_index("dph", "entry", IndexKind::Hash)?;
            self.db.create_index("ds", "l_id", IndexKind::Hash)?;
            if durable {
                self.persist_dict(dict)?;
                self.ensure_meta_table()?;
                self.set_meta(BULK_MARKER, "in-progress".into())?;
            }
            Ok(())
        })();
        let committed = self.db.commit_batch();
        res?;
        committed?;

        let mut next_lid = -1i64;
        let dside = insert_side_encoded(
            &mut self.db,
            &enc,
            dmap,
            dncols,
            &pred_forms,
            "dph",
            "ds",
            &mut next_lid,
            opts,
            durable,
            bstats,
        )?;
        bstats.insert_secs += t_insert.elapsed().as_secs_f64();

        // Reverse side: re-sort the same buffer by (object, pred, subject).
        let t_sort = Instant::now();
        for t in enc.iter_mut() {
            t.swap(0, 2);
        }
        enc.sort_unstable();
        sb.reverse_pass(&enc);
        let (rmap, rncols, _) = side_mapping(&enc, &pred_forms, &self.cfg.entity);
        bstats.sort_secs += t_sort.elapsed().as_secs_f64();

        let t_insert = Instant::now();
        self.db.begin_batch();
        let res = (|| -> Result<()> {
            self.db.create_table(loader::phys_schema("rph", rncols))?;
            self.db.create_table(TableSchema::new(
                "rs",
                vec![("l_id".into(), SqlType::Int), ("elm".into(), SqlType::Int)],
            ))?;
            self.db.create_index("rph", "entry", IndexKind::Hash)?;
            self.db.create_index("rs", "l_id", IndexKind::Hash)?;
            Ok(())
        })();
        let committed = self.db.commit_batch();
        res?;
        committed?;

        let rside = insert_side_encoded(
            &mut self.db,
            &enc,
            rmap,
            rncols,
            &pred_forms,
            "rph",
            "rs",
            &mut next_lid,
            opts,
            durable,
            bstats,
        )?;
        bstats.insert_secs += t_insert.elapsed().as_secs_f64();
        drop(enc);

        // Finalize: stats, report, layouts, and the completion marker — one
        // atomic commit, then a checkpoint so reopen needs no WAL replay.
        self.stats = sb.finish(self.cfg.top_k, dict, &pred_forms);
        let storage: usize = ["dph", "ds", "rph", "rs"]
            .iter()
            .map(|t| self.db.table(t).map(|t| t.storage_bytes()).unwrap_or(0))
            .sum();
        let nulls = |db: &Database, t: &str| db.table(t).map(|t| t.null_fraction()).unwrap_or(0.0);
        self.report = LoadReport {
            triples: bstats.triples,
            dph_rows: dside.rows,
            rph_rows: rside.rows,
            dph_spill_rows: dside.spill_rows,
            rph_spill_rows: rside.spill_rows,
            dph_cols: dside.layout.ncols,
            rph_cols: rside.layout.ncols,
            predicates: pred_forms.len(),
            dph_coverage: loader::ratio(dside.covered, dside.total),
            rph_coverage: loader::ratio(rside.covered, rside.total),
            dph_null_fraction: nulls(&self.db, "dph"),
            rph_null_fraction: nulls(&self.db, "rph"),
            storage_bytes: storage as u64,
        };
        self.direct = Some(dside.layout);
        self.reverse = Some(rside.layout);
        self.db.begin_batch();
        let res = (|| -> Result<()> {
            let dict_ref: &Dict = dict;
            self.persist_meta(dict_ref)?;
            if durable {
                self.set_meta(BULK_MARKER, "complete".into())?;
            }
            Ok(())
        })();
        let committed = self.db.commit_batch();
        res?;
        committed?;
        if durable {
            self.db.checkpoint()?;
            bstats.checkpoints += 1;
        }
        self.loaded = true;
        bstats.dict = dict.mem_stats();
        Ok(())
    }
}

/// A chunk parsed on a worker: distinct canonical terms in first-appearance
/// order plus triples as indices into that list. This is the unit the
/// sequential merge interns — the indirection is what makes parallel intern
/// deterministic.
struct ParsedChunk {
    terms: Vec<String>,
    triples: Vec<[u32; 3]>,
}

fn parse_chunk(chunk: &rdf::Chunk) -> std::result::Result<ParsedChunk, rdf::NTriplesError> {
    let quads = rdf::parse_ntriples_chunk(&chunk.text, chunk.first_line)?;
    let mut terms: Vec<String> = Vec::new();
    let mut local: HashMap<String, u32> = HashMap::new();
    let mut triples = Vec::with_capacity(quads.len());
    let idx_of = |s: String, terms: &mut Vec<String>, local: &mut HashMap<String, u32>| {
        match local.entry(s) {
            std::collections::hash_map::Entry::Occupied(e) => *e.get(),
            std::collections::hash_map::Entry::Vacant(v) => {
                let i = terms.len() as u32;
                terms.push(v.key().clone());
                v.insert(i);
                i
            }
        }
    };
    for q in quads {
        let t = q.triple;
        let s = idx_of(t.subject.encode(), &mut terms, &mut local);
        let p = idx_of(t.predicate.encode(), &mut terms, &mut local);
        let o = idx_of(t.object.encode(), &mut terms, &mut local);
        triples.push([s, p, o]);
    }
    Ok(ParsedChunk { terms, triples })
}

fn nt_err(e: rdf::NTriplesError) -> StoreError {
    StoreError::Unsupported(format!("N-Triples: {e}"))
}

/// Phase 1–3 of the pipeline: chunked read, parallel parse, ordered merge
/// intern. Returns dictionary-encoded triples in document order.
fn parse_and_intern(
    reader: impl Read,
    chunk_bytes: usize,
    width: usize,
    dict: &mut Dict,
) -> Result<Vec<[i64; 3]>> {
    let mut chunks = rdf::ChunkReader::new(reader, chunk_bytes);
    let pool = WorkerPool::new(width);
    let mut enc: Vec<[i64; 3]> = Vec::new();
    loop {
        let mut batch: Vec<rdf::Chunk> = Vec::with_capacity(width);
        while batch.len() < width {
            match chunks.next_chunk().map_err(nt_err)? {
                Some(c) => batch.push(c),
                None => break,
            }
        }
        if batch.is_empty() {
            break;
        }
        let slots: Vec<Mutex<Option<std::result::Result<ParsedChunk, rdf::NTriplesError>>>> =
            (0..batch.len()).map(|_| Mutex::new(None)).collect();
        let batch_ref = &batch;
        let slots_ref = &slots;
        pool.broadcast(&move |w| {
            let mut i = w;
            while i < batch_ref.len() {
                let parsed = parse_chunk(&batch_ref[i]);
                *slots_ref[i].lock().unwrap_or_else(|e| e.into_inner()) = Some(parsed);
                i += width;
            }
        });
        // Merge strictly in chunk order: the first error in document order
        // wins, and intern order never depends on worker scheduling.
        for slot in slots {
            let parsed = slot
                .into_inner()
                .unwrap_or_else(|e| e.into_inner())
                .expect("broadcast fills every slot")
                .map_err(nt_err)?;
            let ids: Vec<i64> = parsed.terms.iter().map(|t| dict.intern(t)).collect();
            for [s, p, o] in parsed.triples {
                enc.push([ids[s as usize], ids[p as usize], ids[o as usize]]);
            }
        }
    }
    Ok(enc)
}

/// Build one side's predicate mapping from the (entity, pred, value)-sorted
/// triples, sampling entity runs at the configured stride.
fn side_mapping(
    enc: &[[i64; 3]],
    pred_forms: &HashMap<i64, String>,
    cfg: &EntityConfig,
) -> (PredMapping, usize, f64) {
    let Some(stride) = loader::coloring_stride(cfg.coloring) else {
        return loader::hash_only_mapping(cfg);
    };
    let mut graph = InterferenceGraph::new();
    let mut i = 0;
    let mut run = 0usize;
    let mut counts: Vec<(&str, u64)> = Vec::new();
    while i < enc.len() {
        let e = enc[i][0];
        let mut j = i;
        while j < enc.len() && enc[j][0] == e {
            j += 1;
        }
        // Deterministic sampling: every stride-th entity (run order is
        // sorted entity-ID order here, itself deterministic). Predicates
        // are fed in ascending-ID order — the coloring is sensitive to
        // insertion order, so it must not depend on hash iteration.
        if run.is_multiple_of(stride) {
            counts.clear();
            let mut k = i;
            while k < j {
                let p = enc[k][1];
                let mut m = k;
                while m < j && enc[m][1] == p {
                    m += 1;
                }
                counts.push((pred_forms[&p].as_str(), (m - k) as u64));
                k = m;
            }
            graph.add_entity(counts.iter().copied());
        }
        run += 1;
        i = j;
    }
    loader::mapping_from_graph(&graph, cfg)
}

struct SideResult {
    layout: SideLayout,
    rows: u64,
    spill_rows: u64,
    covered: u64,
    total: u64,
}

/// Phase 4: pack (entity, pred, value)-sorted triples into hash-table rows
/// entity run by entity run and append them in bounded WAL segments.
#[allow(clippy::too_many_arguments)]
fn insert_side_encoded(
    db: &mut Database,
    enc: &[[i64; 3]],
    mapping: PredMapping,
    ncols: usize,
    pred_forms: &HashMap<i64, String>,
    primary: &str,
    secondary: &str,
    next_lid: &mut i64,
    opts: &BulkLoadOptions,
    durable: bool,
    bstats: &mut BulkLoadStats,
) -> Result<SideResult> {
    let mut layout =
        SideLayout { mapping, ncols, multivalued: HashSet::new(), spill_preds: HashSet::new() };
    // Predicate IDs covered by the coloring, for exact coverage accounting.
    let colored_ids: Option<HashSet<i64>> = match &layout.mapping {
        PredMapping::Colored { colors, .. } => Some(
            pred_forms
                .iter()
                .filter(|(_, f)| colors.contains_key(f.as_str()))
                .map(|(&id, _)| id)
                .collect(),
        ),
        PredMapping::Hashed(_) => None,
    };

    let mut prim_rows: Vec<Vec<Value>> = Vec::new();
    let mut sec_rows: Vec<Vec<Value>> = Vec::new();
    let mut seg_triples = 0usize;
    let mut result =
        SideResult { layout: SideLayout::default_like(), rows: 0, spill_rows: 0, covered: 0, total: 0 };
    let mut groups: Vec<(i64, usize, usize)> = Vec::new();

    let mut i = 0;
    while i < enc.len() {
        let entity = enc[i][0];
        let mut j = i;
        while j < enc.len() && enc[j][0] == entity {
            j += 1;
        }
        // Predicate groups within the run (already sorted by pred, value).
        groups.clear();
        let mut k = i;
        while k < j {
            let p = enc[k][1];
            let mut m = k;
            while m < j && enc[m][1] == p {
                m += 1;
            }
            groups.push((p, k, m));
            k = m;
        }

        let mut entity_rows: Vec<Vec<Value>> = vec![vec![Value::Null; 2 + 2 * ncols]];
        for &(p, lo, hi) in &groups {
            let nvals = hi - lo;
            result.total += nvals as u64;
            if colored_ids.as_ref().map(|c| c.contains(&p)).unwrap_or(true) {
                result.covered += nvals as u64;
            }
            let cell = if nvals == 1 {
                Value::Int(enc[lo][2])
            } else {
                layout.multivalued.insert(pred_forms[&p].clone());
                let lid = *next_lid;
                *next_lid -= 1;
                for t in &enc[lo..hi] {
                    sec_rows.push(vec![Value::Int(lid), Value::Int(t[2])]);
                }
                Value::Int(lid)
            };
            let candidates = layout.candidates(&pred_forms[&p]);
            let mut placed = false;
            'rows: for row in entity_rows.iter_mut() {
                for &c in &candidates {
                    if row[2 + 2 * c].is_null() {
                        row[2 + 2 * c] = Value::Int(p);
                        row[2 + 2 * c + 1] = cell.clone();
                        placed = true;
                        break 'rows;
                    }
                }
            }
            if !placed {
                // Spill: open a new row for this entity.
                let mut row = vec![Value::Null; 2 + 2 * ncols];
                let c = candidates.first().copied().unwrap_or(0);
                row[2 + 2 * c] = Value::Int(p);
                row[2 + 2 * c + 1] = cell;
                entity_rows.push(row);
            }
        }
        let spilled = entity_rows.len() > 1;
        if spilled {
            result.spill_rows += (entity_rows.len() - 1) as u64;
            for &(p, _, _) in &groups {
                layout.spill_preds.insert(pred_forms[&p].clone());
            }
        }
        for mut row in entity_rows {
            row[0] = Value::Int(entity);
            row[1] = Value::Int(spilled as i64);
            prim_rows.push(row);
            result.rows += 1;
        }

        seg_triples += j - i;
        if seg_triples >= opts.segment_triples {
            flush_segment(db, primary, secondary, &mut prim_rows, &mut sec_rows, durable, opts, bstats)?;
            seg_triples = 0;
        }
        i = j;
    }
    flush_segment(db, primary, secondary, &mut prim_rows, &mut sec_rows, durable, opts, bstats)?;
    result.layout = layout;
    Ok(result)
}

impl SideLayout {
    /// Placeholder for two-phase initialization in `insert_side_encoded`.
    fn default_like() -> SideLayout {
        SideLayout {
            mapping: PredMapping::Hashed(crate::layout::HashComposition::new(1, 1)),
            ncols: 0,
            multivalued: HashSet::new(),
            spill_preds: HashSet::new(),
        }
    }
}

/// Commit one segment as its own WAL batch, checkpointing afterwards if the
/// WAL has outgrown the configured bound.
#[allow(clippy::too_many_arguments)]
fn flush_segment(
    db: &mut Database,
    primary: &str,
    secondary: &str,
    prim_rows: &mut Vec<Vec<Value>>,
    sec_rows: &mut Vec<Vec<Value>>,
    durable: bool,
    opts: &BulkLoadOptions,
    bstats: &mut BulkLoadStats,
) -> Result<()> {
    if prim_rows.is_empty() && sec_rows.is_empty() {
        return Ok(());
    }
    db.begin_batch();
    let res = (|| -> Result<()> {
        if !prim_rows.is_empty() {
            db.insert_rows(primary, std::mem::take(prim_rows))?;
        }
        if !sec_rows.is_empty() {
            db.insert_rows(secondary, std::mem::take(sec_rows))?;
        }
        Ok(())
    })();
    let committed = db.commit_batch();
    res?;
    committed?;
    bstats.segments += 1;
    if durable {
        if let Some(wal) = db.wal_len() {
            if wal >= opts.checkpoint_wal_bytes {
                db.checkpoint()?;
                bstats.checkpoints += 1;
            }
        }
    }
    Ok(())
}

/// Statistics accumulated from the two sorted passes — no per-term hash
/// maps: distinct counts fall out of run boundaries in the sorted data.
#[derive(Default)]
struct StatsBuilder {
    total: u64,
    distinct_subjects: u64,
    distinct_objects: u64,
    /// (count, id) per distinct subject/object, for top-k selection.
    subj_counts: Vec<(u64, i64)>,
    obj_counts: Vec<(u64, i64)>,
    /// Per-predicate: (count, distinct subjects, distinct objects).
    pred: HashMap<i64, (u64, u64, u64)>,
}

impl StatsBuilder {
    /// Over triples sorted by (subject, pred, object).
    fn direct_pass(&mut self, enc: &[[i64; 3]]) {
        self.total = enc.len() as u64;
        let mut i = 0;
        while i < enc.len() {
            let s = enc[i][0];
            let mut j = i;
            while j < enc.len() && enc[j][0] == s {
                j += 1;
            }
            self.distinct_subjects += 1;
            self.subj_counts.push(((j - i) as u64, s));
            let mut k = i;
            while k < j {
                let p = enc[k][1];
                let mut m = k;
                while m < j && enc[m][1] == p {
                    m += 1;
                }
                let e = self.pred.entry(p).or_default();
                e.0 += (m - k) as u64;
                e.1 += 1;
                k = m;
            }
            i = j;
        }
    }

    /// Over the same triples re-sorted by (object, pred, subject).
    fn reverse_pass(&mut self, enc: &[[i64; 3]]) {
        let mut i = 0;
        while i < enc.len() {
            let o = enc[i][0];
            let mut j = i;
            while j < enc.len() && enc[j][0] == o {
                j += 1;
            }
            self.distinct_objects += 1;
            self.obj_counts.push(((j - i) as u64, o));
            let mut k = i;
            while k < j {
                let p = enc[k][1];
                let mut m = k;
                while m < j && enc[m][1] == p {
                    m += 1;
                }
                if let Some(e) = self.pred.get_mut(&p) {
                    e.2 += 1;
                }
                k = m;
            }
            i = j;
        }
    }

    fn finish(mut self, top_k: usize, dict: &Dict, pred_forms: &HashMap<i64, String>) -> Stats {
        let avg = |n: u64, d: u64| if d == 0 { 0.0 } else { n as f64 / d as f64 };
        let mut stats = Stats {
            total_triples: self.total,
            distinct_subjects: self.distinct_subjects,
            distinct_objects: self.distinct_objects,
            avg_per_subject: avg(self.total, self.distinct_subjects),
            avg_per_object: avg(self.total, self.distinct_objects),
            ..Stats::default()
        };
        for (&p, &(count, ds, dobj)) in &self.pred {
            let form = pred_forms[&p].clone();
            stats.predicate_counts.insert(form.clone(), count);
            stats.predicate_stats.insert(
                form,
                PredStat { count, distinct_subjects: ds, distinct_objects: dobj },
            );
        }
        // Top-k selection: count-descending, ID-ascending. Terms are
        // already interned, so unlike `Stats::collect_with_dict` this
        // assigns no IDs — ID order is a deterministic tie-break that needs
        // no lexical resolution of every candidate.
        let take_top = |v: &mut Vec<(u64, i64)>| {
            v.sort_unstable_by(|a, b| b.0.cmp(&a.0).then(a.1.cmp(&b.1)));
            v.truncate(top_k);
        };
        take_top(&mut self.subj_counts);
        take_top(&mut self.obj_counts);
        for &(count, id) in &self.subj_counts {
            let form = dict.resolve(id).expect("top subject resolves");
            stats.register_top_subject(id, &form, count);
        }
        for &(count, id) in &self.obj_counts {
            let form = dict.resolve(id).expect("top object resolves");
            stats.register_top_object(id, &form, count);
        }
        stats
    }
}
