//! Star-access SQL generation for the DB2RDF entity layout (paper Figs. 12
//! and 13): single-row DPH/RPH probes, CASE projections for predicates
//! mapped to several columns, DS/RS `LEFT OUTER JOIN` + `COALESCE` for
//! multi-valued predicates, OR-merged stars with the UNNEST value flip, and
//! OPT-merged stars with NULLable CASE projections.

use std::collections::BTreeMap;

use rdf::Term;
use sparql::TermPattern;

use crate::dict::Dict;
use crate::error::{Result, StoreError};
use crate::layout::SideLayout;
use crate::optimizer::{Method, PTree, StarNode, StarSem};
use crate::translate::{GenState, StarGen};

pub struct EntityGen<'a> {
    pub tree: &'a PTree,
    pub direct: &'a SideLayout,
    pub reverse: &'a SideLayout,
    /// Constants in the query become dictionary IDs in the emitted SQL; a
    /// term absent from the dictionary is absent from the data, so its
    /// equality condition degenerates to `FALSE`.
    pub dict: &'a Dict,
}

impl EntityGen<'_> {
    /// SQL literal for a constant term: its dictionary ID, or `NULL` when
    /// the term was never loaded (`x = NULL` is never true, so the
    /// comparison correctly matches nothing).
    fn const_sql(&self, t: &Term) -> String {
        match self.dict.lookup(&t.encode()) {
            Some(id) => id.to_string(),
            None => "NULL".to_string(),
        }
    }
}

impl StarGen for EntityGen<'_> {
    fn gen_star(&self, star: &StarNode, state: &mut GenState) -> Result<()> {
        // Scan normalizes to the direct side (an entity access with an
        // unbound entity is a scan).
        let (table, sec, layout, is_direct) = match star.method {
            Method::Acs | Method::Scan => ("dph", "ds", self.direct, true),
            Method::Aco => ("rph", "rs", self.reverse, false),
        };

        let t0 = &self.tree.triples[star.triples[0]];
        let entity_tp = if is_direct { &t0.subject } else { &t0.object };

        let name = state.fresh();
        let prior = state.last.clone();
        let mut from: Vec<String> = Vec::new();
        if let Some(p) = &prior {
            from.push(format!("{p} AS P"));
        }
        from.push(format!("{table} AS T"));
        let mut select: Vec<String> =
            if prior.is_some() { state.prior_projection("P") } else { Vec::new() };
        let mut wheres: Vec<String> = Vec::new();
        let mut joins: Vec<String> = Vec::new();
        let mut new_bound = state.bound.clone();
        // Variable → SQL expression available inside this CTE.
        let mut local: BTreeMap<String, String> = BTreeMap::new();

        match entity_tp {
            TermPattern::Term(t) => {
                wheres.push(format!("T.entry = {}", self.const_sql(t)));
            }
            TermPattern::Var(v) => {
                local.insert(v.clone(), "T.entry".to_string());
                if state.bound.contains_key(v) {
                    let cond = state.join_bound(v, "T.entry", &mut select);
                    wheres.push(cond);
                } else {
                    let col = state.col(v);
                    select.push(format!("T.entry AS {col}"));
                    new_bound.insert(v.clone(), col);
                }
            }
        }

        // OR-merge bookkeeping.
        let mut or_conds: Vec<String> = Vec::new();
        let mut or_vals: Vec<String> = Vec::new();
        let mut or_shared_var: Option<String> = None;

        for (i, &ti) in star.triples.iter().enumerate() {
            let tp = &self.tree.triples[ti];
            let required = match star.sem {
                StarSem::And => true,
                StarSem::Or => false,
                StarSem::Opt => i < star.n_required,
            };
            let other_tp = if is_direct { &tp.object } else { &tp.subject };

            match &tp.predicate {
                TermPattern::Term(p) => {
                    let pe = p.encode();
                    let cands = layout.candidates(&pe);
                    if cands.is_empty() {
                        // The predicate cannot be stored anywhere: a required
                        // access matches nothing.
                        if required {
                            wheres.push("FALSE".to_string());
                        }
                        continue;
                    }
                    let pid = self.const_sql(p);
                    let presence = cands
                        .iter()
                        .map(|c| format!("T.pred{c} = {pid}"))
                        .collect::<Vec<_>>()
                        .join(" OR ");
                    let raw = if cands.len() == 1 {
                        format!("T.val{}", cands[0])
                    } else {
                        let branches = cands
                            .iter()
                            .map(|c| format!("WHEN T.pred{c} = {pid} THEN T.val{c}"))
                            .collect::<Vec<_>>()
                            .join(" ");
                        format!("CASE {branches} ELSE NULL END")
                    };
                    // Non-required values must be NULL when the predicate is
                    // absent; a multi-column CASE already guards, and OR
                    // branches get their guard from the flip projection.
                    let guarded = if star.sem != StarSem::Or && !required && cands.len() == 1 {
                        format!("CASE WHEN {presence} THEN {raw} ELSE NULL END")
                    } else {
                        raw
                    };
                    let val = if layout.is_multivalued(&pe) {
                        let alias = format!("S{i}");
                        joins.push(format!(
                            "LEFT OUTER JOIN {sec} AS {alias} ON {guarded} = {alias}.l_id"
                        ));
                        format!("COALESCE({alias}.elm, {guarded})")
                    } else {
                        guarded
                    };

                    match star.sem {
                        StarSem::Or => {
                            // Each branch contributes a guarded flip value:
                            // the UNION ALL semantics (one row per satisfied
                            // branch) come from the UNNEST flip (Fig. 13).
                            let (extra_cond, flip_val): (Option<String>, String) = match other_tp
                            {
                                TermPattern::Term(o) => (
                                    Some(format!("{val} = {}", self.const_sql(o))),
                                    "'1'".to_string(),
                                ),
                                TermPattern::Var(v) => {
                                    if let Some(expr) = local.get(v) {
                                        // Object var coincides with the entity
                                        // var: row-level equality, marker flip.
                                        (Some(format!("{val} = {expr}")), "'1'".to_string())
                                    } else {
                                        or_shared_var = Some(v.clone());
                                        (None, val.clone())
                                    }
                                }
                            };
                            let full = match &extra_cond {
                                Some(c) => format!("{presence} AND {c}"),
                                None => presence.clone(),
                            };
                            or_conds.push(format!("({full})"));
                            or_vals
                                .push(format!("CASE WHEN {full} THEN {flip_val} ELSE NULL END"));
                        }
                        _ => {
                            if required {
                                wheres.push(format!("({presence})"));
                            }
                            match other_tp {
                                TermPattern::Term(o) => {
                                    if required {
                                        wheres.push(format!("{val} = {}", self.const_sql(o)));
                                    }
                                    // Optional triple with constant object
                                    // binds nothing: a semantic no-op.
                                }
                                TermPattern::Var(v) => {
                                    if let Some(expr) = local.get(v).cloned() {
                                        if required {
                                            wheres.push(format!("{val} = {expr}"));
                                        }
                                    } else if state.bound.contains_key(v) {
                                        if required {
                                            let cond = state.join_bound(v, &val, &mut select);
                                            wheres.push(cond);
                                        }
                                        // Optional triple on an already-bound
                                        // variable binds nothing new: no-op.
                                    } else {
                                        let col = state.col(v);
                                        select.push(format!("{val} AS {col}"));
                                        new_bound.insert(v.clone(), col);
                                        local.insert(v.clone(), val.clone());
                                    }
                                }
                            }
                        }
                    }
                }
                TermPattern::Var(pv) => {
                    // Variable predicate: single-triple star; flip every
                    // (pred, val) column pair out with UNNEST.
                    debug_assert_eq!(star.triples.len(), 1);
                    if layout.ncols == 0 {
                        return Err(StoreError::Unsupported(
                            "variable predicate over empty layout".into(),
                        ));
                    }
                    let pairs = (0..layout.ncols)
                        .map(|c| format!("(T.pred{c}, T.val{c})"))
                        .collect::<Vec<_>>()
                        .join(", ");
                    from.push(format!("UNNEST ({pairs}) AS L(p, v)"));
                    if state.bound.contains_key(pv) {
                        let cond = state.join_bound(pv, "L.p", &mut select);
                        wheres.push(cond);
                    } else {
                        let col = state.col(pv);
                        select.push(format!("L.p AS {col}"));
                        new_bound.insert(pv.clone(), col);
                        local.insert(pv.clone(), "L.p".to_string());
                    }
                    let val = if layout.multivalued.is_empty() {
                        "L.v".to_string()
                    } else {
                        joins.push(format!(
                            "LEFT OUTER JOIN {sec} AS SV ON L.v = SV.l_id"
                        ));
                        "COALESCE(SV.elm, L.v)".to_string()
                    };
                    match other_tp {
                        TermPattern::Term(o) => {
                            wheres.push(format!("{val} = {}", self.const_sql(o)));
                        }
                        TermPattern::Var(v) => {
                            if let Some(expr) = local.get(v).cloned() {
                                wheres.push(format!("{val} = {expr}"));
                            } else if state.bound.contains_key(v) {
                                let cond = state.join_bound(v, &val, &mut select);
                                wheres.push(cond);
                            } else {
                                let col = state.col(v);
                                select.push(format!("{val} AS {col}"));
                                new_bound.insert(v.clone(), col);
                                local.insert(v.clone(), val.clone());
                            }
                        }
                    }
                }
            }
        }

        if star.sem == StarSem::Or {
            if or_conds.is_empty() {
                return Err(StoreError::Unsupported("empty OR star".into()));
            }
            wheres.push(format!("({})", or_conds.join(" OR ")));
            // Project each branch value for the flip.
            for (k, v) in or_vals.iter().enumerate() {
                select.push(format!("{v} AS o_{k}"));
            }
        }

        if select.is_empty() {
            select.push("1 AS one".to_string());
        }
        let mut body = format!("SELECT {} FROM {}", select.join(", "), from.join(", "));
        for j in &joins {
            body.push(' ');
            body.push_str(j);
        }
        if !wheres.is_empty() {
            body.push_str(" WHERE ");
            body.push_str(&wheres.join(" AND "));
        }
        state.bound = new_bound;
        state.push_cte(name.clone(), body);

        // OR flip: one output row per satisfied branch (paper Fig. 13,
        // QT23 — `TABLE(T.valm, T.val0)` flipping the CASE projections).
        if star.sem == StarSem::Or {
            let flip = state.fresh();
            let mut cols: Vec<String> =
                state.bound.values().map(|c| format!("{c} AS {c}")).collect();
            let mut where_flip = String::new();
            // Without a shared variable the marker flip only multiplies rows.
            if let Some(v) = &or_shared_var {
                if let Some(col) = state.bound.get(v).cloned() {
                    // Variable already bound upstream: each satisfied
                    // branch must agree with it — null-compatibly if the
                    // upstream column may be SPARQL-unbound.
                    if state.maybe_null.remove(v) {
                        for c in cols.iter_mut() {
                            if *c == format!("{col} AS {col}") {
                                *c = format!("COALESCE({col}, L.x) AS {col}");
                            }
                        }
                        where_flip = format!(" WHERE {col} IS NULL OR L.x = {col}");
                    } else {
                        where_flip = format!(" WHERE L.x = {col}");
                    }
                } else {
                    let col = state.col(v);
                    cols.push(format!("L.x AS {col}"));
                    state.bound.insert(v.clone(), col);
                }
            }
            if cols.is_empty() {
                cols.push("L.x AS one".to_string());
            }
            let tuple =
                (0..or_vals.len()).map(|k| format!("o_{k}")).collect::<Vec<_>>().join(", ");
            let body = format!(
                "SELECT {} FROM {name}, UNNEST ({tuple}) AS L(x){where_flip}",
                cols.join(", ")
            );
            state.push_cte(flip, body);
        }
        Ok(())
    }
}
