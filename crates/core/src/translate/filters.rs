//! FILTER / value expression → SQL translation.
//!
//! Variables resolve to columns of the current CTE; terms become canonical
//! string literals; comparisons go through the `RDF_*` dialect functions so
//! SPARQL value semantics hold (numeric when both sides are numeric
//! literals). Unbound variables translate to `NULL`, which makes `BOUND`
//! and three-valued FILTER semantics fall out of SQL's own NULL handling.
//!
//! Two column domains coexist (see `DecodeMode` in `results`): *term*
//! columns hold dictionary IDs or canonical encodings, while *value*
//! columns — aggregate and BIND outputs, tracked by the `plain` set — hold
//! actual numbers/strings. Translation is fallible: anything the engine
//! cannot evaluate faithfully (full regexes, term builtins over value
//! columns) is rejected loudly instead of producing silently wrong rows.

use std::collections::{BTreeMap, HashSet};

use rdf::Term;
use relstore::quote_str;
use sparql::{AggFunc, ArithOp, CompareOp, Expression};

use crate::error::{Result, StoreError};

fn unsupported(msg: impl Into<String>) -> StoreError {
    StoreError::Unsupported(msg.into())
}

/// Translate a FILTER to a SQL boolean expression over the columns in
/// `bound` (SPARQL var → column name); `plain` marks value-domain columns.
pub fn filter_to_sql(
    expr: &Expression,
    bound: &BTreeMap<String, String>,
    plain: &HashSet<String>,
) -> Result<String> {
    bool_sql(expr, bound, plain)
}

/// Translate an ORDER BY key expression to a SQL scalar (numeric view).
pub fn filter_order_key(
    e: &Expression,
    bound: &BTreeMap<String, String>,
    plain: &HashSet<String>,
) -> Result<String> {
    num_sql(e, bound, plain)
}

/// Value-domain scalar for BIND and SELECT expressions: arithmetic stays
/// integer-preserving, term variables pass through `RDF_VAL`. Aggregate
/// calls are rejected (use [`select_expr_sql`] inside an aggregation).
pub fn value_sql(
    e: &Expression,
    bound: &BTreeMap<String, String>,
    plain: &HashSet<String>,
) -> Result<String> {
    val_sql(e, bound, plain, false)
}

/// Value-domain scalar for an aggregating SELECT item: like [`value_sql`]
/// but aggregate calls are allowed.
pub fn select_expr_sql(
    e: &Expression,
    bound: &BTreeMap<String, String>,
    plain: &HashSet<String>,
) -> Result<String> {
    val_sql(e, bound, plain, true)
}

/// HAVING condition, lowered inside the aggregation CTE: comparisons over
/// the value domain (group keys via `RDF_VAL`, aggregate calls inline),
/// combined with AND/OR/NOT.
pub fn having_sql(
    e: &Expression,
    bound: &BTreeMap<String, String>,
    plain: &HashSet<String>,
) -> Result<String> {
    match e {
        Expression::Or(a, b) => Ok(format!(
            "({} OR {})",
            having_sql(a, bound, plain)?,
            having_sql(b, bound, plain)?
        )),
        Expression::And(a, b) => Ok(format!(
            "({} AND {})",
            having_sql(a, bound, plain)?,
            having_sql(b, bound, plain)?
        )),
        Expression::Not(a) => Ok(format!("(NOT {})", having_sql(a, bound, plain)?)),
        Expression::Bound(v) => Ok(match bound.get(v) {
            Some(col) => format!("({col} IS NOT NULL)"),
            None => "FALSE".to_string(),
        }),
        Expression::Compare { op, left, right } => {
            let l = val_sql(left, bound, plain, true)?;
            let r = val_sql(right, bound, plain, true)?;
            Ok(format!("({l} {} {r})", sql_cmp_op(op)))
        }
        other => Err(unsupported(format!(
            "HAVING supports comparisons and boolean combinations only, got {other:?}"
        ))),
    }
}

fn sql_cmp_op(op: &CompareOp) -> &'static str {
    match op {
        CompareOp::Eq => "=",
        CompareOp::NotEq => "<>",
        CompareOp::Lt => "<",
        CompareOp::LtEq => "<=",
        CompareOp::Gt => ">",
        CompareOp::GtEq => ">=",
    }
}

/// Does the expression reference any value-domain variable?
fn contains_plain(e: &Expression, plain: &HashSet<String>) -> bool {
    e.variables().iter().any(|v| plain.contains(*v))
}

fn var_col(v: &str, bound: &BTreeMap<String, String>) -> String {
    bound.get(v).cloned().unwrap_or_else(|| "NULL".to_string())
}

/// SQL literal for a constant term in *value* position — the translation-
/// time mirror of the `RDF_VAL` function: integer-family literals become
/// integer literals, other numeric-typed literals become float literals,
/// everything else stays a canonical term string.
fn term_value_sql(t: &Term) -> String {
    if let Term::Literal { lexical, lang: None, datatype: Some(dt) } = t {
        if let Some(suffix) = dt.strip_prefix("http://www.w3.org/2001/XMLSchema#") {
            match suffix {
                "integer" | "int" | "long" => {
                    if let Ok(i) = lexical.trim().parse::<i64>() {
                        return i.to_string();
                    }
                }
                "double" | "decimal" | "float" => {
                    if let Some(x) = t.numeric_value() {
                        // `{:?}` keeps the decimal point (`1000.0`, not
                        // `1000`) so the literal lexes as a Double.
                        return format!("{x:?}");
                    }
                }
                _ => {}
            }
        }
    }
    quote_str(&t.encode())
}

/// Value-domain scalar (see module docs). `allow_agg` permits aggregate
/// calls — true only inside the aggregation CTE's projection and HAVING.
fn val_sql(
    e: &Expression,
    bound: &BTreeMap<String, String>,
    plain: &HashSet<String>,
    allow_agg: bool,
) -> Result<String> {
    match e {
        Expression::Var(v) if plain.contains(v) => Ok(var_col(v, bound)),
        Expression::Var(v) => Ok(match bound.get(v) {
            Some(col) => format!("RDF_VAL({col})"),
            None => "NULL".to_string(),
        }),
        Expression::Term(t) => Ok(term_value_sql(t)),
        Expression::Arith { op, left, right } => {
            let l = val_sql(left, bound, plain, allow_agg)?;
            let r = val_sql(right, bound, plain, allow_agg)?;
            Ok(match op {
                ArithOp::Add => format!("({l} + {r})"),
                ArithOp::Sub => format!("({l} - {r})"),
                ArithOp::Mul => format!("({l} * {r})"),
                // SPARQL division over integers is not integer division;
                // force the float path (1.0 * Int → Double).
                ArithOp::Div => format!("((1.0 * {l}) / {r})"),
            })
        }
        // `0 - x` instead of SQL unary minus: arithmetic maps non-numeric
        // operands to NULL (SPARQL: type error → unbound) where unary `-`
        // would abort the whole query.
        Expression::Neg(inner) => {
            Ok(format!("(0 - {})", val_sql(inner, bound, plain, allow_agg)?))
        }
        Expression::Aggregate { func, distinct, arg } => {
            if !allow_agg {
                return Err(unsupported(
                    "aggregate call outside an aggregating SELECT or HAVING",
                ));
            }
            aggregate_sql(*func, *distinct, arg.as_deref(), bound, plain)
        }
        other => Err(unsupported(format!(
            "expression not supported in value position: {other:?}"
        ))),
    }
}

/// One aggregate call. Per the W3C definitions `Sum(∅) = 0` and
/// `Avg(∅) = 0`, so both wrap in `COALESCE`; `MIN`/`MAX` over an empty (or
/// all-unbound) group stay NULL → unbound.
fn aggregate_sql(
    func: AggFunc,
    distinct: bool,
    arg: Option<&Expression>,
    bound: &BTreeMap<String, String>,
    plain: &HashSet<String>,
) -> Result<String> {
    let Some(arg) = arg else {
        // Parser guarantees `*` only on COUNT.
        return Ok("COUNT(*)".to_string());
    };
    let v = val_sql(arg, bound, plain, false)?;
    let d = if distinct { "DISTINCT " } else { "" };
    Ok(match func {
        AggFunc::Count => format!("COUNT({d}{v})"),
        AggFunc::Sum => format!("COALESCE(SUM({d}{v}), 0)"),
        AggFunc::Avg => format!("COALESCE(AVG({d}{v}), 0)"),
        AggFunc::Min => format!("MIN({d}{v})"),
        AggFunc::Max => format!("MAX({d}{v})"),
    })
}

/// A term-valued operand: canonical string column or literal. Value-domain
/// variables cannot appear here — their column holds a number, not a term.
fn term_sql(
    e: &Expression,
    bound: &BTreeMap<String, String>,
    plain: &HashSet<String>,
) -> Result<String> {
    match e {
        Expression::Var(v) if plain.contains(v) => Err(unsupported(format!(
            "computed variable ?{v} cannot be used as an RDF term in this filter"
        ))),
        Expression::Var(v) => Ok(var_col(v, bound)),
        Expression::Term(t) => Ok(quote_str(&t.encode())),
        // String-producing builtins yield plain strings; RDF_* comparison
        // functions accept those too (they fall back to plain-string
        // semantics).
        Expression::Str(inner) => Ok(format!("RDF_STR({})", term_sql(inner, bound, plain)?)),
        Expression::Lang(inner) => Ok(format!("RDF_LANG({})", term_sql(inner, bound, plain)?)),
        Expression::Datatype(inner) => {
            Ok(format!("RDF_DATATYPE({})", term_sql(inner, bound, plain)?))
        }
        // Numeric expressions used in term position surface as doubles;
        // RDF_* functions treat numeric SQL values numerically.
        other => num_sql(other, bound, plain),
    }
}

/// A numeric-valued operand.
fn num_sql(
    e: &Expression,
    bound: &BTreeMap<String, String>,
    plain: &HashSet<String>,
) -> Result<String> {
    match e {
        // A value-domain column already holds a number (or a string, which
        // numeric contexts map to NULL); RDF_NUM would mistake its integers
        // for dictionary IDs.
        Expression::Var(v) if plain.contains(v) => Ok(var_col(v, bound)),
        Expression::Var(v) => Ok(format!("RDF_NUM({})", var_col(v, bound))),
        Expression::Term(t) => Ok(match t.numeric_value() {
            Some(x) => format!("{x}"),
            None => "NULL".to_string(),
        }),
        Expression::Arith { op, left, right } => {
            let o = match op {
                ArithOp::Add => "+",
                ArithOp::Sub => "-",
                ArithOp::Mul => "*",
                ArithOp::Div => "/",
            };
            Ok(format!(
                "({} {} {})",
                num_sql(left, bound, plain)?,
                o,
                num_sql(right, bound, plain)?
            ))
        }
        Expression::Neg(inner) => Ok(format!("(- {})", num_sql(inner, bound, plain)?)),
        other => Ok(format!("RDF_NUM({})", term_sql(other, bound, plain)?)),
    }
}

fn is_numeric_shaped(e: &Expression) -> bool {
    match e {
        Expression::Arith { .. } | Expression::Neg(_) => true,
        Expression::Term(t) => t.is_literal() && t.numeric_value().is_some(),
        _ => false,
    }
}

fn is_plain_string_shaped(e: &Expression) -> bool {
    matches!(e, Expression::Str(_) | Expression::Lang(_) | Expression::Datatype(_))
}

fn bool_sql(
    e: &Expression,
    bound: &BTreeMap<String, String>,
    plain: &HashSet<String>,
) -> Result<String> {
    match e {
        Expression::Or(a, b) => Ok(format!(
            "({} OR {})",
            bool_sql(a, bound, plain)?,
            bool_sql(b, bound, plain)?
        )),
        Expression::And(a, b) => Ok(format!(
            "({} AND {})",
            bool_sql(a, bound, plain)?,
            bool_sql(b, bound, plain)?
        )),
        Expression::Not(a) => Ok(format!("(NOT {})", bool_sql(a, bound, plain)?)),
        Expression::Bound(v) => Ok(match bound.get(v) {
            Some(col) => format!("({col} IS NOT NULL)"),
            None => "FALSE".to_string(),
        }),
        Expression::Compare { op, left, right } => {
            // A value-domain operand forces the whole comparison into the
            // value domain (matching HAVING semantics).
            if contains_plain(left, plain) || contains_plain(right, plain) {
                let l = val_sql(left, bound, plain, false)?;
                let r = val_sql(right, bound, plain, false)?;
                return Ok(format!("({l} {} {r})", sql_cmp_op(op)));
            }
            let numeric = is_numeric_shaped(left) || is_numeric_shaped(right);
            if numeric {
                return Ok(format!(
                    "({} {} {})",
                    num_sql(left, bound, plain)?,
                    sql_cmp_op(op),
                    num_sql(right, bound, plain)?
                ));
            }
            if is_plain_string_shaped(left) || is_plain_string_shaped(right) {
                // Compare as plain strings: STR(?x) = "foo".
                let l = plain_sql(left, bound, plain)?;
                let r = plain_sql(right, bound, plain)?;
                return Ok(format!("({l} {} {r})", sql_cmp_op(op)));
            }
            let f = match op {
                CompareOp::Eq => "RDF_EQ",
                CompareOp::NotEq => "RDF_NE",
                CompareOp::Lt => "RDF_LT",
                CompareOp::LtEq => "RDF_LE",
                CompareOp::Gt => "RDF_GT",
                CompareOp::GtEq => "RDF_GE",
            };
            Ok(format!(
                "{f}({}, {})",
                term_sql(left, bound, plain)?,
                term_sql(right, bound, plain)?
            ))
        }
        Expression::Regex { expr, pattern, case_insensitive } => {
            // The engine implements only `^`/`$` anchors around a literal
            // needle; any other metacharacter would silently degrade to a
            // substring match, so refuse it here (satellite: fail loudly).
            if let Err(c) = super::functions::validate_regex_pattern(pattern) {
                return Err(unsupported(format!(
                    "REGEX pattern {pattern:?} uses unsupported metacharacter {c:?}; \
                     only ^/$ anchors around a literal needle are implemented"
                )));
            }
            Ok(format!(
                "RDF_REGEX({}, {}, {})",
                term_sql(expr, bound, plain)?,
                quote_str(pattern),
                i32::from(*case_insensitive)
            ))
        }
        Expression::IsIri(inner) => Ok(format!("RDF_ISIRI({})", term_sql(inner, bound, plain)?)),
        Expression::IsLiteral(inner) => {
            Ok(format!("RDF_ISLITERAL({})", term_sql(inner, bound, plain)?))
        }
        Expression::IsBlank(inner) => {
            Ok(format!("RDF_ISBLANK({})", term_sql(inner, bound, plain)?))
        }
        // A bare variable/term in boolean position: SPARQL effective boolean
        // value — approximate: non-null check.
        Expression::Var(v) => Ok(match bound.get(v) {
            Some(col) => format!("({col} IS NOT NULL)"),
            None => "FALSE".to_string(),
        }),
        Expression::Term(_) => Ok("TRUE".to_string()),
        Expression::Arith { .. } | Expression::Neg(_) => {
            Ok(format!("({} IS NOT NULL)", num_sql(e, bound, plain)?))
        }
        Expression::Str(_) | Expression::Lang(_) | Expression::Datatype(_) => {
            Ok(format!("({} IS NOT NULL)", term_sql(e, bound, plain)?))
        }
        Expression::Aggregate { .. } => {
            Err(unsupported("aggregate call is not allowed in FILTER"))
        }
    }
}

/// Plain-string-valued operand (for STR()/LANG() comparisons).
fn plain_sql(
    e: &Expression,
    bound: &BTreeMap<String, String>,
    plain: &HashSet<String>,
) -> Result<String> {
    match e {
        Expression::Term(t) => Ok(quote_str(t.lexical())),
        Expression::Var(v) if plain.contains(v) => Err(unsupported(format!(
            "computed variable ?{v} cannot be used in a string builtin"
        ))),
        Expression::Var(v) => Ok(format!("RDF_STR({})", var_col(v, bound))),
        other => term_sql(other, bound, plain),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sparql::parse_sparql;

    fn filter_of(q: &str) -> Expression {
        parse_sparql(q).unwrap().pattern.filters[0].clone()
    }

    fn bound() -> BTreeMap<String, String> {
        let mut m = BTreeMap::new();
        m.insert("a".to_string(), "c_a".to_string());
        m.insert("n".to_string(), "c_n".to_string());
        m
    }

    fn no_plain() -> HashSet<String> {
        HashSet::new()
    }

    #[test]
    fn numeric_comparison_uses_rdf_num() {
        let f = filter_of("SELECT * WHERE { ?a <http://p> ?n . FILTER(?n > 30) }");
        let sql = filter_to_sql(&f, &bound(), &no_plain()).unwrap();
        assert_eq!(sql, "(RDF_NUM(c_n) > 30)");
    }

    #[test]
    fn term_equality_uses_rdf_eq() {
        let f = filter_of("SELECT * WHERE { ?a <http://p> ?n . FILTER(?n = <http://x>) }");
        let sql = filter_to_sql(&f, &bound(), &no_plain()).unwrap();
        assert_eq!(sql, "RDF_EQ(c_n, '<http://x>')");
    }

    #[test]
    fn bound_and_logic() {
        let f = filter_of(
            "SELECT * WHERE { ?a <http://p> ?n . FILTER(bound(?n) && !bound(?z)) }",
        );
        let sql = filter_to_sql(&f, &bound(), &no_plain()).unwrap();
        assert_eq!(sql, "((c_n IS NOT NULL) AND (NOT FALSE))");
    }

    #[test]
    fn unbound_var_is_null() {
        let f = filter_of("SELECT * WHERE { ?a <http://p> ?n . FILTER(?zzz = 'x') }");
        let sql = filter_to_sql(&f, &bound(), &no_plain()).unwrap();
        assert!(sql.contains("NULL"));
    }

    #[test]
    fn regex_translation() {
        let f = filter_of("SELECT * WHERE { ?a <http://p> ?n . FILTER regex(?n, 'abc', 'i') }");
        let sql = filter_to_sql(&f, &bound(), &no_plain()).unwrap();
        assert_eq!(sql, "RDF_REGEX(c_n, 'abc', 1)");
    }

    #[test]
    fn unsupported_regex_is_rejected_not_mistranslated() {
        for pat in ["a.*b", "(x|y)", "[abc]", "a+", "a?b"] {
            let f = filter_of(&format!(
                "SELECT * WHERE {{ ?a <http://p> ?n . FILTER regex(?n, '{pat}') }}"
            ));
            let err = filter_to_sql(&f, &bound(), &no_plain()).unwrap_err();
            assert!(
                matches!(err, StoreError::Unsupported(_)),
                "pattern {pat} must be rejected, got {err:?}"
            );
        }
    }

    #[test]
    fn str_comparison_is_plain() {
        let f = filter_of("SELECT * WHERE { ?a <http://p> ?n . FILTER(str(?n) = 'x y') }");
        let sql = filter_to_sql(&f, &bound(), &no_plain()).unwrap();
        assert_eq!(sql, "(RDF_STR(c_n) = 'x y')");
    }

    #[test]
    fn arithmetic_in_comparison() {
        let f = filter_of("SELECT * WHERE { ?a <http://p> ?n . FILTER(?n * 2 >= ?a + 1) }");
        let sql = filter_to_sql(&f, &bound(), &no_plain()).unwrap();
        assert_eq!(sql, "((RDF_NUM(c_n) * 2) >= (RDF_NUM(c_a) + 1))");
    }

    #[test]
    fn plain_variable_comparison_moves_to_value_domain() {
        let f = filter_of("SELECT * WHERE { ?a <http://p> ?n . FILTER(?n > 3) }");
        let plain: HashSet<String> = ["n".to_string()].into();
        let sql = filter_to_sql(&f, &bound(), &plain).unwrap();
        assert_eq!(sql, "(c_n > 3)");
        // Term builtins over a value-domain column are refused.
        let f = filter_of("SELECT * WHERE { ?a <http://p> ?n . FILTER(isIRI(?n)) }");
        assert!(filter_to_sql(&f, &bound(), &plain).is_err());
    }

    #[test]
    fn value_sql_shapes() {
        let b = bound();
        let p = no_plain();
        let e = filter_of("SELECT * WHERE { ?a <http://p> ?n . FILTER(?n + 1) }");
        let Expression::Compare { .. } = &e else {
            // FILTER(?n + 1) parses as a bare arith expression.
            let sql = value_sql(&e, &b, &p).unwrap();
            assert_eq!(sql, "(RDF_VAL(c_n) + 1)");
            return;
        };
        unreachable!();
    }

    #[test]
    fn division_forces_float_path() {
        let f = filter_of("SELECT * WHERE { ?a <http://p> ?n . FILTER(?n / 2) }");
        let sql = value_sql(&f, &bound(), &no_plain()).unwrap();
        assert_eq!(sql, "((1.0 * RDF_VAL(c_n)) / 2)");
    }
}
