//! FILTER expression → SQL condition translation.
//!
//! Variables resolve to columns of the current CTE; terms become canonical
//! string literals; comparisons go through the `RDF_*` dialect functions so
//! SPARQL value semantics hold (numeric when both sides are numeric
//! literals). Unbound variables translate to `NULL`, which makes `BOUND`
//! and three-valued FILTER semantics fall out of SQL's own NULL handling.

use std::collections::BTreeMap;

use relstore::quote_str;
use sparql::{ArithOp, CompareOp, Expression};

/// Translate a FILTER to a SQL boolean expression over the columns in
/// `bound` (SPARQL var → column name).
pub fn filter_to_sql(expr: &Expression, bound: &BTreeMap<String, String>) -> String {
    bool_sql(expr, bound)
}

/// Translate an ORDER BY key expression to a SQL scalar (numeric view).
pub fn filter_order_key(e: &Expression, bound: &BTreeMap<String, String>) -> String {
    num_sql(e, bound)
}

fn var_col(v: &str, bound: &BTreeMap<String, String>) -> String {
    bound.get(v).cloned().unwrap_or_else(|| "NULL".to_string())
}

/// A term-valued operand: canonical string column or literal.
fn term_sql(e: &Expression, bound: &BTreeMap<String, String>) -> String {
    match e {
        Expression::Var(v) => var_col(v, bound),
        Expression::Term(t) => quote_str(&t.encode()),
        // String-producing builtins yield plain strings; RDF_* comparison
        // functions accept those too (they fall back to plain-string
        // semantics).
        Expression::Str(inner) => format!("RDF_STR({})", term_sql(inner, bound)),
        Expression::Lang(inner) => format!("RDF_LANG({})", term_sql(inner, bound)),
        Expression::Datatype(inner) => format!("RDF_DATATYPE({})", term_sql(inner, bound)),
        // Numeric expressions used in term position surface as doubles;
        // RDF_* functions treat numeric SQL values numerically.
        other => num_sql(other, bound),
    }
}

/// A numeric-valued operand.
fn num_sql(e: &Expression, bound: &BTreeMap<String, String>) -> String {
    match e {
        Expression::Var(v) => format!("RDF_NUM({})", var_col(v, bound)),
        Expression::Term(t) => match t.numeric_value() {
            Some(x) => format!("{x}"),
            None => "NULL".to_string(),
        },
        Expression::Arith { op, left, right } => {
            let o = match op {
                ArithOp::Add => "+",
                ArithOp::Sub => "-",
                ArithOp::Mul => "*",
                ArithOp::Div => "/",
            };
            format!("({} {} {})", num_sql(left, bound), o, num_sql(right, bound))
        }
        Expression::Neg(inner) => format!("(- {})", num_sql(inner, bound)),
        other => format!("RDF_NUM({})", term_sql(other, bound)),
    }
}

fn is_numeric_shaped(e: &Expression) -> bool {
    match e {
        Expression::Arith { .. } | Expression::Neg(_) => true,
        Expression::Term(t) => t.is_literal() && t.numeric_value().is_some(),
        _ => false,
    }
}

fn is_plain_string_shaped(e: &Expression) -> bool {
    matches!(e, Expression::Str(_) | Expression::Lang(_) | Expression::Datatype(_))
}

fn bool_sql(e: &Expression, bound: &BTreeMap<String, String>) -> String {
    match e {
        Expression::Or(a, b) => format!("({} OR {})", bool_sql(a, bound), bool_sql(b, bound)),
        Expression::And(a, b) => format!("({} AND {})", bool_sql(a, bound), bool_sql(b, bound)),
        Expression::Not(a) => format!("(NOT {})", bool_sql(a, bound)),
        Expression::Bound(v) => match bound.get(v) {
            Some(col) => format!("({col} IS NOT NULL)"),
            None => "FALSE".to_string(),
        },
        Expression::Compare { op, left, right } => {
            let numeric = is_numeric_shaped(left) || is_numeric_shaped(right);
            if numeric {
                let o = match op {
                    CompareOp::Eq => "=",
                    CompareOp::NotEq => "<>",
                    CompareOp::Lt => "<",
                    CompareOp::LtEq => "<=",
                    CompareOp::Gt => ">",
                    CompareOp::GtEq => ">=",
                };
                return format!("({} {} {})", num_sql(left, bound), o, num_sql(right, bound));
            }
            if is_plain_string_shaped(left) || is_plain_string_shaped(right) {
                // Compare as plain strings: STR(?x) = "foo".
                let l = plain_sql(left, bound);
                let r = plain_sql(right, bound);
                let o = match op {
                    CompareOp::Eq => "=",
                    CompareOp::NotEq => "<>",
                    CompareOp::Lt => "<",
                    CompareOp::LtEq => "<=",
                    CompareOp::Gt => ">",
                    CompareOp::GtEq => ">=",
                };
                return format!("({l} {o} {r})");
            }
            let f = match op {
                CompareOp::Eq => "RDF_EQ",
                CompareOp::NotEq => "RDF_NE",
                CompareOp::Lt => "RDF_LT",
                CompareOp::LtEq => "RDF_LE",
                CompareOp::Gt => "RDF_GT",
                CompareOp::GtEq => "RDF_GE",
            };
            format!("{f}({}, {})", term_sql(left, bound), term_sql(right, bound))
        }
        Expression::Regex { expr, pattern, case_insensitive } => format!(
            "RDF_REGEX({}, {}, {})",
            term_sql(expr, bound),
            quote_str(pattern),
            i32::from(*case_insensitive)
        ),
        Expression::IsIri(inner) => format!("RDF_ISIRI({})", term_sql(inner, bound)),
        Expression::IsLiteral(inner) => format!("RDF_ISLITERAL({})", term_sql(inner, bound)),
        Expression::IsBlank(inner) => format!("RDF_ISBLANK({})", term_sql(inner, bound)),
        // A bare variable/term in boolean position: SPARQL effective boolean
        // value — approximate: non-null check.
        Expression::Var(v) => match bound.get(v) {
            Some(col) => format!("({col} IS NOT NULL)"),
            None => "FALSE".to_string(),
        },
        Expression::Term(_) => "TRUE".to_string(),
        Expression::Arith { .. } | Expression::Neg(_) => {
            format!("({} IS NOT NULL)", num_sql(e, bound))
        }
        Expression::Str(_) | Expression::Lang(_) | Expression::Datatype(_) => {
            format!("({} IS NOT NULL)", term_sql(e, bound))
        }
    }
}

/// Plain-string-valued operand (for STR()/LANG() comparisons).
fn plain_sql(e: &Expression, bound: &BTreeMap<String, String>) -> String {
    match e {
        Expression::Term(t) if t.is_literal() => quote_str(t.lexical()),
        Expression::Term(t) => quote_str(t.lexical()),
        Expression::Var(v) => format!("RDF_STR({})", var_col(v, bound)),
        other => term_sql(other, bound),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sparql::parse_sparql;

    fn filter_of(q: &str) -> Expression {
        parse_sparql(q).unwrap().pattern.filters[0].clone()
    }

    fn bound() -> BTreeMap<String, String> {
        let mut m = BTreeMap::new();
        m.insert("a".to_string(), "c_a".to_string());
        m.insert("n".to_string(), "c_n".to_string());
        m
    }

    #[test]
    fn numeric_comparison_uses_rdf_num() {
        let f = filter_of("SELECT * WHERE { ?a <http://p> ?n . FILTER(?n > 30) }");
        let sql = filter_to_sql(&f, &bound());
        assert_eq!(sql, "(RDF_NUM(c_n) > 30)");
    }

    #[test]
    fn term_equality_uses_rdf_eq() {
        let f = filter_of("SELECT * WHERE { ?a <http://p> ?n . FILTER(?n = <http://x>) }");
        let sql = filter_to_sql(&f, &bound());
        assert_eq!(sql, "RDF_EQ(c_n, '<http://x>')");
    }

    #[test]
    fn bound_and_logic() {
        let f = filter_of(
            "SELECT * WHERE { ?a <http://p> ?n . FILTER(bound(?n) && !bound(?z)) }",
        );
        let sql = filter_to_sql(&f, &bound());
        assert_eq!(sql, "((c_n IS NOT NULL) AND (NOT FALSE))");
    }

    #[test]
    fn unbound_var_is_null() {
        let f = filter_of("SELECT * WHERE { ?a <http://p> ?n . FILTER(?zzz = 'x') }");
        let sql = filter_to_sql(&f, &bound());
        assert!(sql.contains("NULL"));
    }

    #[test]
    fn regex_translation() {
        let f = filter_of("SELECT * WHERE { ?a <http://p> ?n . FILTER regex(?n, 'abc', 'i') }");
        let sql = filter_to_sql(&f, &bound());
        assert_eq!(sql, "RDF_REGEX(c_n, 'abc', 1)");
    }

    #[test]
    fn str_comparison_is_plain() {
        let f = filter_of("SELECT * WHERE { ?a <http://p> ?n . FILTER(str(?n) = 'x y') }");
        let sql = filter_to_sql(&f, &bound());
        assert_eq!(sql, "(RDF_STR(c_n) = 'x y')");
    }

    #[test]
    fn arithmetic_in_comparison() {
        let f = filter_of("SELECT * WHERE { ?a <http://p> ?n . FILTER(?n * 2 >= ?a + 1) }");
        let sql = filter_to_sql(&f, &bound());
        assert_eq!(sql, "((RDF_NUM(c_n) * 2) >= (RDF_NUM(c_a) + 1))");
    }
}
