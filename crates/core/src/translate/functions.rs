//! RDF-aware scalar SQL functions registered on the relational back-end.
//!
//! The entity tables hold dictionary IDs (`BIGINT`), while FILTER constants
//! and the baseline layouts still use canonical term strings (`<iri>`,
//! `"lit"@en`, `"5"^^<…integer>`); FILTER evaluation needs SPARQL value
//! semantics on top of both. These functions are the dialect bridge: the
//! translator emits calls like `RDF_GT(T.val3, '"30"^^<…integer>')` and the
//! engine evaluates them here, resolving integer arguments through the
//! shared dictionary. An integer that the dictionary cannot resolve (a
//! baseline layout, or an empty dictionary) is treated as a plain number —
//! the pre-dictionary behavior.

use rdf::{decode_term, Term};
use relstore::{Database, Value};

use crate::dict::{Dict, SharedDict};

fn term_of(dict: &Dict, v: &Value) -> Option<Term> {
    match v {
        Value::Str(s) => decode_term(s),
        Value::Int(i) => dict.resolve(*i).as_deref().and_then(decode_term),
        _ => None,
    }
}

fn numeric(dict: &Dict, v: &Value) -> Option<f64> {
    match v {
        Value::Int(i) => match dict.resolve(*i) {
            Some(enc) => decode_term(&enc).and_then(|t| t.numeric_value()),
            None => Some(*i as f64),
        },
        Value::Double(d) => Some(*d),
        Value::Str(_) => term_of(dict, v).and_then(|t| t.numeric_value()),
        _ => None,
    }
}

fn lexical(dict: &Dict, v: &Value) -> Option<String> {
    match v {
        Value::Str(_) => term_of(dict, v).map(|t| t.lexical().to_string()).or_else(|| {
            // Already a plain string (e.g. output of RDF_STR).
            v.as_str().map(str::to_string)
        }),
        Value::Int(i) => match dict.resolve(*i) {
            Some(enc) => lexical_of_encoded(&enc),
            None => Some(i.to_string()),
        },
        Value::Double(d) => Some(d.to_string()),
        _ => None,
    }
}

/// Lexical form of a canonical encoding without building a [`Term`]. This
/// is the `RDF_STR` hot path for dictionary IDs (e.g. a LIKE filter over an
/// encoded column runs it once per candidate row); only encodings with
/// escapes fall back to full term parsing.
fn lexical_of_encoded(enc: &str) -> Option<String> {
    let b = enc.as_bytes();
    if b.len() >= 2 && b[0] == b'<' && b[b.len() - 1] == b'>' {
        return Some(enc[1..enc.len() - 1].to_string());
    }
    if b.len() >= 2 && b[0] == b'"' {
        // `"lex"`, `"lex"@lang` or `"lex"^^<dt>`: the closing quote is the
        // last one (lang tags and datatype IRIs cannot contain quotes).
        if let Some(q) = enc[1..].rfind('"') {
            let content = &enc[1..1 + q];
            if !content.contains('\\') {
                return Some(content.to_string());
            }
        }
    }
    decode_term(enc).map(|t| t.lexical().to_string())
}

/// SPARQL value comparison: numeric when both sides are numeric literals,
/// lexical-form string comparison otherwise.
fn sparql_cmp(dict: &Dict, a: &Value, b: &Value) -> Option<std::cmp::Ordering> {
    if a.is_null() || b.is_null() {
        return None;
    }
    if let (Some(x), Some(y)) = (numeric(dict, a), numeric(dict, b)) {
        return x.partial_cmp(&y);
    }
    let (la, lb) = (lexical(dict, a)?, lexical(dict, b)?);
    Some(la.cmp(&lb))
}

fn sparql_eq(dict: &Dict, a: &Value, b: &Value) -> Option<bool> {
    if a.is_null() || b.is_null() {
        return None;
    }
    // Equal dictionary IDs are the same term — no string materialization.
    if let (Value::Int(x), Value::Int(y)) = (a, b) {
        if x == y {
            return Some(true);
        }
    }
    // Numeric literals compare by value ("42"^^int = "42.0"^^double).
    if let (Some(ta), Some(tb)) = (term_of(dict, a), term_of(dict, b)) {
        if ta == tb {
            return Some(true);
        }
        if let (Some(x), Some(y)) = (ta.numeric_value(), tb.numeric_value()) {
            if ta.is_literal() && tb.is_literal() {
                return Some(x == y);
            }
        }
        return Some(false);
    }
    // Fall back to plain string comparison (RDF_STR outputs etc.).
    match (a.as_str(), b.as_str()) {
        (Some(x), Some(y)) => Some(x == y),
        _ => a.sql_eq(b),
    }
}

const XSD: &str = "http://www.w3.org/2001/XMLSchema#";

/// Map a term into the SPARQL *value domain* used by aggregation, BIND
/// arithmetic and HAVING: `xsd:integer` literals whose lexical form fits an
/// `i64` become `Int`, other numeric-typed literals (`double`, `decimal`,
/// `float`) become `Double`, and everything else — IRIs, blanks, plain and
/// lang-tagged literals, non-numeric typed literals — stays the canonical
/// term encoding as `Str` so term identity survives grouping.
fn val_of_term(t: &Term) -> Value {
    if let Term::Literal { lexical, lang: None, datatype: Some(dt) } = t {
        if let Some(suffix) = dt.strip_prefix(XSD) {
            match suffix {
                "integer" | "int" | "long" => {
                    if let Ok(i) = lexical.trim().parse::<i64>() {
                        return Value::Int(i);
                    }
                }
                "double" | "decimal" | "float" => {
                    if let Some(x) = t.numeric_value() {
                        return Value::Double(x);
                    }
                }
                _ => {}
            }
        }
    }
    Value::str(t.encode())
}

/// `RDF_VAL(x)`: term → value domain. Dictionary IDs are resolved first; an
/// unresolvable Int (baseline layouts) or undecodable Str passes through
/// unchanged, and Double/Bool are already plain values.
fn rdf_val(dict: &Dict, v: &Value) -> Value {
    match v {
        Value::Int(i) => match dict.resolve(*i) {
            Some(enc) => match decode_term(&enc) {
                Some(t) => val_of_term(&t),
                None => v.clone(),
            },
            None => v.clone(),
        },
        Value::Str(s) => match decode_term(s) {
            Some(t) => val_of_term(&t),
            None => v.clone(),
        },
        _ => v.clone(),
    }
}

/// `RDF_SAMETERM(a, b)`: strict RDF term identity — no numeric value
/// unification, so `"42"^^xsd:integer` ≠ `"42.0"^^xsd:double`. Used for
/// VALUES compatibility joins, where SPARQL joins on sameTerm.
fn rdf_sameterm(dict: &Dict, a: &Value, b: &Value) -> Option<bool> {
    if a.is_null() || b.is_null() {
        return None;
    }
    if let (Value::Int(x), Value::Int(y)) = (a, b) {
        return Some(x == y);
    }
    match (term_of(dict, a), term_of(dict, b)) {
        (Some(ta), Some(tb)) => Some(ta == tb),
        _ => a.sql_eq(b),
    }
}

/// Satellite check for FILTER REGEX: the engine only implements `^`/`$`
/// anchors around a literal needle (see [`regex_match`]). Any other regex
/// metacharacter in the needle would silently match as a plain substring,
/// so the translator must refuse the pattern instead of producing wrong
/// rows. Returns the offending character on rejection.
pub fn validate_regex_pattern(pattern: &str) -> Result<(), char> {
    let mut pat = pattern;
    if let Some(p) = pat.strip_prefix('^') {
        pat = p;
    }
    if let Some(p) = pat.strip_suffix('$') {
        pat = p;
    }
    match pat.chars().find(|c| ".^$*+?()[]{}|\\".contains(*c)) {
        Some(c) => Err(c),
        None => Ok(()),
    }
}

/// Tiny REGEX support: `^`/`$` anchors around a literal needle, with a
/// case-insensitive flag. Full regular expressions are out of scope (the
/// offline crate set has no regex engine); all benchmark patterns are
/// substring-shaped. Documented in DESIGN.md.
fn regex_match(text: &str, pattern: &str, ci: bool) -> bool {
    let (mut pat, mut anchored_start, mut anchored_end) = (pattern, false, false);
    if let Some(p) = pat.strip_prefix('^') {
        pat = p;
        anchored_start = true;
    }
    if let Some(p) = pat.strip_suffix('$') {
        pat = p;
        anchored_end = true;
    }
    let (t, p) = if ci { (text.to_lowercase(), pat.to_lowercase()) } else { (text.to_string(), pat.to_string()) };
    match (anchored_start, anchored_end) {
        (true, true) => t == p,
        (true, false) => t.starts_with(&p),
        (false, true) => t.ends_with(&p),
        (false, false) => t.contains(&p),
    }
}

/// Register all `RDF_*` functions on a database. Each closure holds a clone
/// of the shared dictionary and takes a read lock per call; the dictionary
/// is append-only, so concurrent query workers never see an ID remap.
pub fn register_rdf_functions(db: &mut Database, dict: &SharedDict) {
    let d = dict.clone();
    db.register_function("rdf_num", move |args| {
        Ok(match numeric(&d.read(), &args[0]) {
            Some(x) => Value::Double(x),
            None => Value::Null,
        })
    });
    let d = dict.clone();
    db.register_function("rdf_str", move |args| {
        Ok(match lexical(&d.read(), &args[0]) {
            Some(s) => Value::str(s),
            None => Value::Null,
        })
    });
    let d = dict.clone();
    db.register_function("rdf_lang", move |args| {
        Ok(match term_of(&d.read(), &args[0]) {
            Some(Term::Literal { lang: Some(l), .. }) => Value::str(l.to_string()),
            Some(Term::Literal { .. }) => Value::str(""),
            _ => Value::Null,
        })
    });
    let d = dict.clone();
    db.register_function("rdf_datatype", move |args| {
        Ok(match term_of(&d.read(), &args[0]) {
            Some(Term::Literal { datatype: Some(dt), .. }) => Value::str(dt.to_string()),
            Some(Term::Literal { lang: Some(_), .. }) => {
                Value::str("http://www.w3.org/1999/02/22-rdf-syntax-ns#langString")
            }
            Some(Term::Literal { .. }) => Value::str("http://www.w3.org/2001/XMLSchema#string"),
            _ => Value::Null,
        })
    });
    let d = dict.clone();
    db.register_function("rdf_isiri", move |args| {
        Ok(match &args[0] {
            Value::Null => Value::Null,
            v => Value::Bool(matches!(term_of(&d.read(), v), Some(Term::Iri(_)))),
        })
    });
    let d = dict.clone();
    db.register_function("rdf_isliteral", move |args| {
        Ok(match &args[0] {
            Value::Null => Value::Null,
            v => Value::Bool(matches!(term_of(&d.read(), v), Some(Term::Literal { .. }))),
        })
    });
    let d = dict.clone();
    db.register_function("rdf_isblank", move |args| {
        Ok(match &args[0] {
            Value::Null => Value::Null,
            v => Value::Bool(matches!(term_of(&d.read(), v), Some(Term::Blank(_)))),
        })
    });
    let d = dict.clone();
    db.register_function("rdf_eq", move |args| {
        Ok(sparql_eq(&d.read(), &args[0], &args[1]).map(Value::Bool).unwrap_or(Value::Null))
    });
    let d = dict.clone();
    db.register_function("rdf_ne", move |args| {
        Ok(sparql_eq(&d.read(), &args[0], &args[1])
            .map(|b| Value::Bool(!b))
            .unwrap_or(Value::Null))
    });
    for (name, pred) in [
        ("rdf_lt", std::cmp::Ordering::is_lt as fn(std::cmp::Ordering) -> bool),
        ("rdf_le", std::cmp::Ordering::is_le),
        ("rdf_gt", std::cmp::Ordering::is_gt),
        ("rdf_ge", std::cmp::Ordering::is_ge),
    ] {
        let d = dict.clone();
        db.register_function(name, move |args| {
            Ok(sparql_cmp(&d.read(), &args[0], &args[1])
                .map(|o| Value::Bool(pred(o)))
                .unwrap_or(Value::Null))
        });
    }
    let d = dict.clone();
    db.register_function("rdf_val", move |args| Ok(rdf_val(&d.read(), &args[0])));
    let d = dict.clone();
    db.register_function("rdf_sameterm", move |args| {
        Ok(rdf_sameterm(&d.read(), &args[0], &args[1]).map(Value::Bool).unwrap_or(Value::Null))
    });
    let d = dict.clone();
    db.register_function("rdf_regex", move |args| {
        let ci = matches!(args.get(2), Some(Value::Int(1)));
        Ok(match (lexical(&d.read(), &args[0]), args[1].as_str()) {
            (Some(text), Some(pat)) => Value::Bool(regex_match(&text, pat, ci)),
            _ => Value::Null,
        })
    });
    // Sort key: numeric literals order before/among each other numerically;
    // the translator emits ORDER BY RDF_NUM(c), RDF_STR(c).
}

#[cfg(test)]
mod tests {
    use super::*;

    fn db() -> Database {
        let mut db = Database::new();
        register_rdf_functions(&mut db, &SharedDict::new());
        db
    }

    #[test]
    fn rdf_num_parses_typed_and_plain() {
        let db = db();
        let r = db
            .query("SELECT RDF_NUM('\"42\"^^<http://www.w3.org/2001/XMLSchema#integer>') AS a, RDF_NUM('\"3.5\"') AS b, RDF_NUM('<http://x>') AS c")
            .unwrap();
        assert_eq!(r.rows[0][0], Value::Double(42.0));
        assert_eq!(r.rows[0][1], Value::Double(3.5));
        assert_eq!(r.rows[0][2], Value::Null);
    }

    #[test]
    fn rdf_cmp_numeric_beats_lexical() {
        let db = db();
        // Lexically "9" > "10", numerically 9 < 10.
        let r = db
            .query("SELECT RDF_LT('\"9\"^^<http://www.w3.org/2001/XMLSchema#integer>', '\"10\"^^<http://www.w3.org/2001/XMLSchema#integer>') AS x")
            .unwrap();
        assert_eq!(r.rows[0][0], Value::Bool(true));
    }

    #[test]
    fn rdf_eq_across_numeric_types() {
        let db = db();
        let r = db
            .query("SELECT RDF_EQ('\"42\"^^<http://www.w3.org/2001/XMLSchema#integer>', '\"42.0\"^^<http://www.w3.org/2001/XMLSchema#double>') AS x, RDF_EQ('<a>', '<b>') AS y")
            .unwrap();
        assert_eq!(r.rows[0][0], Value::Bool(true));
        assert_eq!(r.rows[0][1], Value::Bool(false));
    }

    #[test]
    fn rdf_str_and_lang() {
        let db = db();
        let r = db
            .query("SELECT RDF_STR('\"bonjour\"@fr') AS s, RDF_LANG('\"bonjour\"@fr') AS l, RDF_LANG('\"x\"') AS e")
            .unwrap();
        assert_eq!(r.rows[0][0], Value::str("bonjour"));
        assert_eq!(r.rows[0][1], Value::str("fr"));
        assert_eq!(r.rows[0][2], Value::str(""));
    }

    #[test]
    fn type_checks() {
        let db = db();
        let r = db
            .query("SELECT RDF_ISIRI('<a>') AS a, RDF_ISLITERAL('\"x\"') AS b, RDF_ISBLANK('_:b') AS c, RDF_ISIRI('\"x\"') AS d")
            .unwrap();
        assert_eq!(
            r.rows[0],
            vec![Value::Bool(true), Value::Bool(true), Value::Bool(true), Value::Bool(false)]
        );
    }

    #[test]
    fn regex_substring_and_anchors() {
        assert!(regex_match("Journal of Testing", "Journal", false));
        assert!(regex_match("Journal of Testing", "^Journal", false));
        assert!(!regex_match("The Journal", "^Journal", false));
        assert!(regex_match("The Journal", "Journal$", false));
        assert!(regex_match("ABC", "abc", true));
        assert!(!regex_match("ABC", "abc", false));
        assert!(regex_match("exact", "^exact$", false));
    }

    #[test]
    fn rdf_regex_via_sql() {
        let db = db();
        let r = db.query("SELECT RDF_REGEX('\"Hello World\"', 'world', 1) AS x").unwrap();
        assert_eq!(r.rows[0][0], Value::Bool(true));
    }

    #[test]
    fn null_propagation() {
        let db = db();
        let r = db
            .query("SELECT RDF_EQ(NULL, '<a>') AS a, RDF_LT(NULL, NULL) AS b, RDF_ISIRI(NULL) AS c")
            .unwrap();
        assert_eq!(r.rows[0], vec![Value::Null, Value::Null, Value::Null]);
    }

    #[test]
    fn integer_ids_resolve_through_dictionary() {
        let mut db = Database::new();
        let dict = SharedDict::new();
        let (iri, lit, num) = {
            let mut d = dict.write();
            (
                d.intern("<http://example.org/x>"),
                d.intern("\"bonjour\"@fr"),
                d.intern("\"9\"^^<http://www.w3.org/2001/XMLSchema#integer>"),
            )
        };
        register_rdf_functions(&mut db, &dict);
        let r = db
            .query(&format!(
                "SELECT RDF_ISIRI({iri}) AS a, RDF_LANG({lit}) AS b, RDF_NUM({num}) AS c, \
                 RDF_EQ({iri}, '<http://example.org/x>') AS d, \
                 RDF_LT({num}, '\"10\"^^<http://www.w3.org/2001/XMLSchema#integer>') AS e"
            ))
            .unwrap();
        assert_eq!(
            r.rows[0],
            vec![
                Value::Bool(true),
                Value::str("fr"),
                Value::Double(9.0),
                Value::Bool(true),
                Value::Bool(true),
            ]
        );
    }

    #[test]
    fn rdf_val_maps_terms_into_value_domain() {
        let db = db();
        let r = db
            .query(
                "SELECT RDF_VAL('\"42\"^^<http://www.w3.org/2001/XMLSchema#integer>') AS a, \
                 RDF_VAL('\"2.5\"^^<http://www.w3.org/2001/XMLSchema#double>') AS b, \
                 RDF_VAL('<http://x>') AS c, RDF_VAL('\"plain\"') AS d, \
                 RDF_VAL(NULL) AS e, RDF_VAL(7) AS f",
            )
            .unwrap();
        assert_eq!(r.rows[0][0], Value::Int(42));
        assert_eq!(r.rows[0][1], Value::Double(2.5));
        assert_eq!(r.rows[0][2], Value::str("<http://x>"));
        assert_eq!(r.rows[0][3], Value::str("\"plain\""));
        assert_eq!(r.rows[0][4], Value::Null);
        // Unresolvable dictionary ID (empty dict) passes through as Int.
        assert_eq!(r.rows[0][5], Value::Int(7));
    }

    #[test]
    fn rdf_sameterm_is_strict() {
        let db = db();
        let r = db
            .query(
                "SELECT RDF_SAMETERM('<a>', '<a>') AS x, \
                 RDF_SAMETERM('\"42\"^^<http://www.w3.org/2001/XMLSchema#integer>', \
                              '\"42.0\"^^<http://www.w3.org/2001/XMLSchema#double>') AS y, \
                 RDF_SAMETERM(NULL, '<a>') AS z",
            )
            .unwrap();
        assert_eq!(r.rows[0][0], Value::Bool(true));
        assert_eq!(r.rows[0][1], Value::Bool(false)); // RDF_EQ would say true
        assert_eq!(r.rows[0][2], Value::Null);
    }

    #[test]
    fn regex_validation_rejects_unsupported_metacharacters() {
        assert!(validate_regex_pattern("Journal").is_ok());
        assert!(validate_regex_pattern("^Journal$").is_ok());
        assert!(validate_regex_pattern("a b-c_d").is_ok());
        assert_eq!(validate_regex_pattern("a.*b"), Err('.'));
        assert_eq!(validate_regex_pattern("(x|y)"), Err('('));
        assert_eq!(validate_regex_pattern("a+"), Err('+'));
        assert_eq!(validate_regex_pattern("^a^b$"), Err('^'));
        assert_eq!(validate_regex_pattern("a\\d"), Err('\\'));
    }

    #[test]
    fn unresolvable_integers_stay_plain_numbers() {
        // Empty dictionary (baseline layouts): ints behave as raw numbers.
        let db = db();
        let r = db.query("SELECT RDF_NUM(7) AS a, RDF_LT(7, 10) AS b, RDF_STR(7) AS c").unwrap();
        assert_eq!(r.rows[0][0], Value::Double(7.0));
        assert_eq!(r.rows[0][1], Value::Bool(true));
        assert_eq!(r.rows[0][2], Value::str("7"));
    }
}
