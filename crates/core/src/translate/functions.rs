//! RDF-aware scalar SQL functions registered on the relational back-end.
//!
//! The storage layer holds canonical term strings (`<iri>`, `"lit"@en`,
//! `"5"^^<…integer>`); FILTER evaluation needs SPARQL value semantics on top
//! of them. These functions are the dialect bridge: the translator emits
//! calls like `RDF_GT(T.val3, '"30"^^<…integer>')` and the engine evaluates
//! them here.

use rdf::{decode_term, Term};
use relstore::{Database, Value};

fn term_of(v: &Value) -> Option<Term> {
    v.as_str().and_then(decode_term)
}

fn numeric(v: &Value) -> Option<f64> {
    match v {
        Value::Int(i) => Some(*i as f64),
        Value::Double(d) => Some(*d),
        Value::Str(_) => term_of(v).and_then(|t| t.numeric_value()),
        _ => None,
    }
}

fn lexical(v: &Value) -> Option<String> {
    match v {
        Value::Str(_) => term_of(v).map(|t| t.lexical().to_string()).or_else(|| {
            // Already a plain string (e.g. output of RDF_STR).
            v.as_str().map(str::to_string)
        }),
        Value::Int(i) => Some(i.to_string()),
        Value::Double(d) => Some(d.to_string()),
        _ => None,
    }
}

/// SPARQL value comparison: numeric when both sides are numeric literals,
/// lexical-form string comparison otherwise.
fn sparql_cmp(a: &Value, b: &Value) -> Option<std::cmp::Ordering> {
    if a.is_null() || b.is_null() {
        return None;
    }
    if let (Some(x), Some(y)) = (numeric(a), numeric(b)) {
        return x.partial_cmp(&y);
    }
    let (la, lb) = (lexical(a)?, lexical(b)?);
    Some(la.cmp(&lb))
}

fn sparql_eq(a: &Value, b: &Value) -> Option<bool> {
    if a.is_null() || b.is_null() {
        return None;
    }
    // Numeric literals compare by value ("42"^^int = "42.0"^^double).
    if let (Some(ta), Some(tb)) = (term_of(a), term_of(b)) {
        if ta == tb {
            return Some(true);
        }
        if let (Some(x), Some(y)) = (ta.numeric_value(), tb.numeric_value()) {
            if ta.is_literal() && tb.is_literal() {
                return Some(x == y);
            }
        }
        return Some(false);
    }
    // Fall back to plain string comparison (RDF_STR outputs etc.).
    match (a.as_str(), b.as_str()) {
        (Some(x), Some(y)) => Some(x == y),
        _ => a.sql_eq(b),
    }
}

/// Tiny REGEX support: `^`/`$` anchors around a literal needle, with a
/// case-insensitive flag. Full regular expressions are out of scope (the
/// offline crate set has no regex engine); all benchmark patterns are
/// substring-shaped. Documented in DESIGN.md.
fn regex_match(text: &str, pattern: &str, ci: bool) -> bool {
    let (mut pat, mut anchored_start, mut anchored_end) = (pattern, false, false);
    if let Some(p) = pat.strip_prefix('^') {
        pat = p;
        anchored_start = true;
    }
    if let Some(p) = pat.strip_suffix('$') {
        pat = p;
        anchored_end = true;
    }
    let (t, p) = if ci { (text.to_lowercase(), pat.to_lowercase()) } else { (text.to_string(), pat.to_string()) };
    match (anchored_start, anchored_end) {
        (true, true) => t == p,
        (true, false) => t.starts_with(&p),
        (false, true) => t.ends_with(&p),
        (false, false) => t.contains(&p),
    }
}

/// Register all `RDF_*` functions on a database.
pub fn register_rdf_functions(db: &mut Database) {
    db.register_function("rdf_num", |args| {
        Ok(match numeric(&args[0]) {
            Some(x) => Value::Double(x),
            None => Value::Null,
        })
    });
    db.register_function("rdf_str", |args| {
        Ok(match lexical(&args[0]) {
            Some(s) => Value::str(s),
            None => Value::Null,
        })
    });
    db.register_function("rdf_lang", |args| {
        Ok(match term_of(&args[0]) {
            Some(Term::Literal { lang: Some(l), .. }) => Value::str(l.to_string()),
            Some(Term::Literal { .. }) => Value::str(""),
            _ => Value::Null,
        })
    });
    db.register_function("rdf_datatype", |args| {
        Ok(match term_of(&args[0]) {
            Some(Term::Literal { datatype: Some(dt), .. }) => Value::str(dt.to_string()),
            Some(Term::Literal { lang: Some(_), .. }) => {
                Value::str("http://www.w3.org/1999/02/22-rdf-syntax-ns#langString")
            }
            Some(Term::Literal { .. }) => Value::str("http://www.w3.org/2001/XMLSchema#string"),
            _ => Value::Null,
        })
    });
    db.register_function("rdf_isiri", |args| {
        Ok(match &args[0] {
            Value::Null => Value::Null,
            v => Value::Bool(matches!(term_of(v), Some(Term::Iri(_)))),
        })
    });
    db.register_function("rdf_isliteral", |args| {
        Ok(match &args[0] {
            Value::Null => Value::Null,
            v => Value::Bool(matches!(term_of(v), Some(Term::Literal { .. }))),
        })
    });
    db.register_function("rdf_isblank", |args| {
        Ok(match &args[0] {
            Value::Null => Value::Null,
            v => Value::Bool(matches!(term_of(v), Some(Term::Blank(_)))),
        })
    });
    db.register_function("rdf_eq", |args| {
        Ok(sparql_eq(&args[0], &args[1]).map(Value::Bool).unwrap_or(Value::Null))
    });
    db.register_function("rdf_ne", |args| {
        Ok(sparql_eq(&args[0], &args[1]).map(|b| Value::Bool(!b)).unwrap_or(Value::Null))
    });
    for (name, pred) in [
        ("rdf_lt", std::cmp::Ordering::is_lt as fn(std::cmp::Ordering) -> bool),
        ("rdf_le", std::cmp::Ordering::is_le),
        ("rdf_gt", std::cmp::Ordering::is_gt),
        ("rdf_ge", std::cmp::Ordering::is_ge),
    ] {
        db.register_function(name, move |args| {
            Ok(sparql_cmp(&args[0], &args[1]).map(|o| Value::Bool(pred(o))).unwrap_or(Value::Null))
        });
    }
    db.register_function("rdf_regex", |args| {
        let ci = matches!(args.get(2), Some(Value::Int(1)));
        Ok(match (lexical(&args[0]), args[1].as_str()) {
            (Some(text), Some(pat)) => Value::Bool(regex_match(&text, pat, ci)),
            _ => Value::Null,
        })
    });
    // Sort key: numeric literals order before/among each other numerically;
    // the translator emits ORDER BY RDF_NUM(c), RDF_STR(c).
}

#[cfg(test)]
mod tests {
    use super::*;

    fn db() -> Database {
        let mut db = Database::new();
        register_rdf_functions(&mut db);
        db
    }

    #[test]
    fn rdf_num_parses_typed_and_plain() {
        let db = db();
        let r = db
            .query("SELECT RDF_NUM('\"42\"^^<http://www.w3.org/2001/XMLSchema#integer>') AS a, RDF_NUM('\"3.5\"') AS b, RDF_NUM('<http://x>') AS c")
            .unwrap();
        assert_eq!(r.rows[0][0], Value::Double(42.0));
        assert_eq!(r.rows[0][1], Value::Double(3.5));
        assert_eq!(r.rows[0][2], Value::Null);
    }

    #[test]
    fn rdf_cmp_numeric_beats_lexical() {
        let db = db();
        // Lexically "9" > "10", numerically 9 < 10.
        let r = db
            .query("SELECT RDF_LT('\"9\"^^<http://www.w3.org/2001/XMLSchema#integer>', '\"10\"^^<http://www.w3.org/2001/XMLSchema#integer>') AS x")
            .unwrap();
        assert_eq!(r.rows[0][0], Value::Bool(true));
    }

    #[test]
    fn rdf_eq_across_numeric_types() {
        let db = db();
        let r = db
            .query("SELECT RDF_EQ('\"42\"^^<http://www.w3.org/2001/XMLSchema#integer>', '\"42.0\"^^<http://www.w3.org/2001/XMLSchema#double>') AS x, RDF_EQ('<a>', '<b>') AS y")
            .unwrap();
        assert_eq!(r.rows[0][0], Value::Bool(true));
        assert_eq!(r.rows[0][1], Value::Bool(false));
    }

    #[test]
    fn rdf_str_and_lang() {
        let db = db();
        let r = db
            .query("SELECT RDF_STR('\"bonjour\"@fr') AS s, RDF_LANG('\"bonjour\"@fr') AS l, RDF_LANG('\"x\"') AS e")
            .unwrap();
        assert_eq!(r.rows[0][0], Value::str("bonjour"));
        assert_eq!(r.rows[0][1], Value::str("fr"));
        assert_eq!(r.rows[0][2], Value::str(""));
    }

    #[test]
    fn type_checks() {
        let db = db();
        let r = db
            .query("SELECT RDF_ISIRI('<a>') AS a, RDF_ISLITERAL('\"x\"') AS b, RDF_ISBLANK('_:b') AS c, RDF_ISIRI('\"x\"') AS d")
            .unwrap();
        assert_eq!(
            r.rows[0],
            vec![Value::Bool(true), Value::Bool(true), Value::Bool(true), Value::Bool(false)]
        );
    }

    #[test]
    fn regex_substring_and_anchors() {
        assert!(regex_match("Journal of Testing", "Journal", false));
        assert!(regex_match("Journal of Testing", "^Journal", false));
        assert!(!regex_match("The Journal", "^Journal", false));
        assert!(regex_match("The Journal", "Journal$", false));
        assert!(regex_match("ABC", "abc", true));
        assert!(!regex_match("ABC", "abc", false));
        assert!(regex_match("exact", "^exact$", false));
    }

    #[test]
    fn rdf_regex_via_sql() {
        let db = db();
        let r = db.query("SELECT RDF_REGEX('\"Hello World\"', 'world', 1) AS x").unwrap();
        assert_eq!(r.rows[0][0], Value::Bool(true));
    }

    #[test]
    fn null_propagation() {
        let db = db();
        let r = db
            .query("SELECT RDF_EQ(NULL, '<a>') AS a, RDF_LT(NULL, NULL) AS b, RDF_ISIRI(NULL) AS c")
            .unwrap();
        assert_eq!(r.rows[0], vec![Value::Null, Value::Null, Value::Null]);
    }
}
