//! SPARQL→SQL translation (paper §3.2.2).
//!
//! The execution tree is linearized into a chain of CTEs, exactly like the
//! paper's Fig. 13: every CTE threads all previously bound variables
//! through, star accesses become single `DPH`/`RPH` probes (the layout
//! backends implement [`StarGen`]), UNIONs become `UNION ALL` of per-branch
//! chains, OPTIONALs become `LEFT OUTER JOIN`s, and FILTERs attach to the
//! earliest CTE where their variables are bound.

pub mod entity;
pub mod filters;
pub mod functions;

use std::collections::{BTreeMap, HashSet};

use sparql::{Expression, Query, QueryForm};

use crate::error::{Result, StoreError};
use crate::optimizer::ExecNode;

/// Generation state: accumulated CTEs plus the variable → column map of the
/// chain head.
pub struct GenState {
    counter: usize,
    pub ctes: Vec<(String, String)>,
    /// Variables bound in the current chain head, mapped to column names.
    pub bound: BTreeMap<String, String>,
    /// Name of the current chain-head CTE.
    pub last: Option<String>,
    /// Bound variables whose column may still be SQL NULL (SPARQL-unbound):
    /// bound in only some UNION branches, or introduced by an OPTIONAL.
    /// Joins against them must be null-compatible (an unbound variable is
    /// compatible with any value) — see [`GenState::join_bound`].
    pub maybe_null: HashSet<String>,
    colnames: BTreeMap<String, String>,
    used_cols: HashSet<String>,
}

impl Default for GenState {
    fn default() -> Self {
        Self::new()
    }
}

impl GenState {
    pub fn new() -> GenState {
        GenState {
            counter: 0,
            ctes: Vec::new(),
            bound: BTreeMap::new(),
            last: None,
            maybe_null: HashSet::new(),
            colnames: BTreeMap::new(),
            used_cols: HashSet::new(),
        }
    }

    /// A fresh CTE name (`q1`, `q2`, ...).
    pub fn fresh(&mut self) -> String {
        self.counter += 1;
        format!("q{}", self.counter)
    }

    /// Stable, query-unique column name for a variable.
    pub fn col(&mut self, var: &str) -> String {
        if let Some(c) = self.colnames.get(var) {
            return c.clone();
        }
        let sanitized: String = var
            .chars()
            .map(|c| if c.is_ascii_alphanumeric() { c.to_ascii_lowercase() } else { '_' })
            .collect();
        let mut name = format!("c_{sanitized}");
        let mut i = 0;
        while self.used_cols.contains(&name) {
            i += 1;
            name = format!("c_{sanitized}_{i}");
        }
        self.used_cols.insert(name.clone());
        self.colnames.insert(var.to_string(), name.clone());
        name
    }

    pub fn push_cte(&mut self, name: String, body: String) {
        self.ctes.push((name.clone(), body));
        self.last = Some(name);
    }

    /// `P.col AS col` projections for all currently bound variables.
    pub fn prior_projection(&self, prior_alias: &str) -> Vec<String> {
        self.bound.values().map(|c| format!("{prior_alias}.{c} AS {c}")).collect()
    }

    /// Join condition tying `expr` — a non-NULL access expression in the new
    /// CTE — to bound variable `v`'s prior column (aliased `P`). A definite
    /// column gives plain equality. A maybe-NULL column gives a
    /// null-compatible join (SPARQL: an unbound variable joins anything) and
    /// re-anchors the variable's projection in `select` to `COALESCE`, so it
    /// is definitely bound from this CTE on.
    pub fn join_bound(&mut self, v: &str, expr: &str, select: &mut [String]) -> String {
        let col = self.bound[v].clone();
        if self.maybe_null.remove(v) {
            let plain = format!("P.{col} AS {col}");
            for s in select.iter_mut() {
                if *s == plain {
                    *s = format!("COALESCE(P.{col}, {expr}) AS {col}");
                }
            }
            format!("(P.{col} IS NULL OR {expr} = P.{col})")
        } else {
            format!("{expr} = P.{col}")
        }
    }
}

/// A layout backend: generates the CTE(s) for one star access.
pub trait StarGen {
    fn gen_star(&self, star: &crate::optimizer::StarNode, state: &mut GenState) -> Result<()>;
}

/// Generate the CTE chain for an execution (sub)tree.
pub fn gen_pattern(backend: &dyn StarGen, node: &ExecNode, state: &mut GenState) -> Result<()> {
    match node {
        ExecNode::Star(star) => backend.gen_star(star, state),
        ExecNode::Seq { children, filters } => {
            let mut pending: Vec<&Expression> = filters.iter().collect();
            for child in children {
                gen_pattern(backend, child, state)?;
                // Late filter application: as soon as all variables bind
                // *definitely*. A maybe-NULL variable may still be re-bound
                // by a later null-compatible join, so filtering on it now
                // would evaluate against the wrong (unbound) value.
                pending.retain(|f| {
                    let ready = f.variables().iter().all(|v| {
                        state.bound.contains_key(*v) && !state.maybe_null.contains(*v)
                    });
                    if ready {
                        apply_filter(f, state);
                    }
                    !ready
                });
            }
            // Whatever remains references unbound variables (→ NULL).
            for f in pending {
                apply_filter(f, state);
            }
            Ok(())
        }
        ExecNode::Union(branches) => gen_union(backend, branches, state),
        ExecNode::Optional(inner) => gen_optional(backend, inner, state),
    }
}

fn apply_filter(f: &Expression, state: &mut GenState) {
    let Some(last) = state.last.clone() else {
        return; // filter over an empty pattern: nothing to constrain
    };
    let cond = filters::filter_to_sql(f, &state.bound);
    let name = state.fresh();
    let body = format!("SELECT * FROM {last} WHERE {cond}");
    state.push_cte(name, body);
}

fn gen_union(backend: &dyn StarGen, branches: &[ExecNode], state: &mut GenState) -> Result<()> {
    let entry_last = state.last.clone();
    let entry_bound = state.bound.clone();
    let entry_maybe = state.maybe_null.clone();
    let mut branch_results: Vec<(String, BTreeMap<String, String>, HashSet<String>)> = Vec::new();
    for branch in branches {
        state.last = entry_last.clone();
        state.bound = entry_bound.clone();
        state.maybe_null = entry_maybe.clone();
        gen_pattern(backend, branch, state)?;
        let last = state
            .last
            .clone()
            .ok_or_else(|| StoreError::Unsupported("empty UNION branch".into()))?;
        branch_results.push((last, state.bound.clone(), state.maybe_null.clone()));
    }
    // Harmonized projection: the union of all branch variables.
    let mut all_vars: Vec<String> = Vec::new();
    for (_, bound, _) in &branch_results {
        for v in bound.keys() {
            if !all_vars.contains(v) {
                all_vars.push(v.clone());
            }
        }
    }
    let mut selects = Vec::new();
    for (last, bound, _) in &branch_results {
        let mut cols: Vec<String> = all_vars
            .iter()
            .map(|v| {
                let out = state.col(v);
                match bound.get(v) {
                    Some(c) => format!("{c} AS {out}"),
                    None => format!("NULL AS {out}"),
                }
            })
            .collect();
        if cols.is_empty() {
            // All-constant branches bind nothing; keep the row multiset.
            cols.push("1 AS one".to_string());
        }
        selects.push(format!("SELECT {} FROM {last}", cols.join(", ")));
    }
    let name = state.fresh();
    let body = selects.join(" UNION ALL ");
    state.bound = all_vars.iter().map(|v| (v.clone(), state.colnames[v].clone())).collect();
    // A variable missing from (or already maybe-NULL in) any branch may be
    // NULL in the union's output: later joins must stay null-compatible.
    state.maybe_null = entry_maybe;
    for v in &all_vars {
        if branch_results.iter().any(|(_, b, m)| !b.contains_key(v) || m.contains(v)) {
            state.maybe_null.insert(v.clone());
        }
    }
    state.push_cte(name, body);
    Ok(())
}

fn gen_optional(backend: &dyn StarGen, inner: &ExecNode, state: &mut GenState) -> Result<()> {
    let entry_last = state.last.clone();
    let entry_bound = state.bound.clone();
    let entry_maybe = state.maybe_null.clone();
    // The optional side is evaluated uncorrelated (see DESIGN.md): its head
    // access degrades to a scan when its entity is unbound.
    state.last = None;
    state.bound = BTreeMap::new();
    state.maybe_null = HashSet::new();
    gen_pattern(backend, inner, state)?;
    let opt_last = state.last.clone();
    let opt_bound = state.bound.clone();
    let opt_maybe = std::mem::replace(&mut state.maybe_null, entry_maybe);
    state.last = entry_last.clone();
    state.bound = entry_bound.clone();

    let Some(opt_last) = opt_last else {
        return Ok(()); // empty OPTIONAL: no-op
    };
    let Some(main) = entry_last else {
        // OPTIONAL at the start of a group: left-join the optional side
        // against the unit relation (one empty row, via FROM-less SELECT),
        // so a non-matching OPTIONAL still yields one all-unbound solution
        // per the W3C semantics instead of eliminating the group.
        let unit = state.fresh();
        state.push_cte(unit.clone(), "SELECT 1 AS opt_unit".to_string());
        let mut projection: Vec<String> =
            opt_bound.values().map(|c| format!("O.{c} AS {c}")).collect();
        if projection.is_empty() {
            projection.push("P.opt_unit AS opt_unit".to_string());
        }
        let name = state.fresh();
        let body = format!(
            "SELECT {} FROM {unit} AS P LEFT OUTER JOIN {opt_last} AS O ON TRUE",
            projection.join(", ")
        );
        for v in opt_bound.keys() {
            state.maybe_null.insert(v.clone());
        }
        state.bound = opt_bound;
        state.push_cte(name, body);
        return Ok(());
    };

    let shared: Vec<&String> = opt_bound.keys().filter(|v| entry_bound.contains_key(*v)).collect();
    let on = if shared.is_empty() {
        "TRUE".to_string()
    } else {
        shared
            .iter()
            .map(|v| {
                let pc = &entry_bound[*v];
                let oc = &opt_bound[*v];
                // A maybe-NULL side means the variable can be SPARQL-unbound
                // there, which is compatible with anything (W3C LeftJoin).
                let mut alts = Vec::new();
                if state.maybe_null.contains(*v) {
                    alts.push(format!("P.{pc} IS NULL"));
                }
                if opt_maybe.contains(*v) {
                    alts.push(format!("O.{oc} IS NULL"));
                }
                alts.push(format!("P.{pc} = O.{oc}"));
                if alts.len() == 1 {
                    alts.pop().unwrap()
                } else {
                    format!("({})", alts.join(" OR "))
                }
            })
            .collect::<Vec<_>>()
            .join(" AND ")
    };
    let mut projection = state.prior_projection("P");
    // Re-anchor maybe-NULL shared variables: when the prior column is
    // unbound and the optional matched, the optional supplies the value.
    for v in &shared {
        if state.maybe_null.contains(*v) {
            let pc = &entry_bound[*v];
            let oc = &opt_bound[*v];
            let plain = format!("P.{pc} AS {pc}");
            for s in projection.iter_mut() {
                if *s == plain {
                    *s = format!("COALESCE(P.{pc}, O.{oc}) AS {pc}");
                }
            }
        }
    }
    let mut new_bound = entry_bound.clone();
    for (v, c) in &opt_bound {
        if !entry_bound.contains_key(v) {
            projection.push(format!("O.{c} AS {c}"));
            new_bound.insert(v.clone(), c.clone());
            // A non-matching OPTIONAL leaves the variable NULL.
            state.maybe_null.insert(v.clone());
        }
    }
    let name = state.fresh();
    let body = format!(
        "SELECT {} FROM {main} AS P LEFT OUTER JOIN {opt_last} AS O ON {on}",
        projection.join(", ")
    );
    state.bound = new_bound;
    state.push_cte(name, body);
    Ok(())
}

/// Assemble the final SQL text for a query whose pattern chain has been
/// generated into `state`.
pub fn finish(query: &Query, state: &mut GenState) -> String {
    let mut sql = String::new();
    if !state.ctes.is_empty() {
        sql.push_str("WITH ");
        let parts: Vec<String> =
            state.ctes.iter().map(|(n, b)| format!("{n} AS ({b})")).collect();
        sql.push_str(&parts.join(",\n     "));
        sql.push('\n');
    }

    let distinct = query.is_distinct();
    match (&query.form, &state.last) {
        (QueryForm::Ask, Some(last)) => {
            sql.push_str(&format!("SELECT 1 AS ok FROM {last} LIMIT 1"));
            return sql;
        }
        (QueryForm::Ask, None) => {
            sql.push_str("SELECT 1 AS ok");
            return sql;
        }
        _ => {}
    }

    let projected = query.projected_variables();
    let mut items: Vec<String> = Vec::new();
    let mut projected_cols: HashSet<String> = HashSet::new();
    for v in &projected {
        match state.bound.get(v) {
            Some(c) => {
                items.push(format!("{c} AS {c}"));
                projected_cols.insert(c.clone());
            }
            None => {
                let c = state.col(v);
                items.push(format!("NULL AS {c}"));
                projected_cols.insert(c);
            }
        }
    }
    if items.is_empty() {
        items.push("1 AS ok".to_string());
    }

    // ORDER BY variables must appear in the projection for the engine's
    // sorter; add hidden ones unless DISTINCT forbids it.
    let mut order_items: Vec<String> = Vec::new();
    for cond in &query.order_by {
        let vars = cond.expr.variables();
        let all_available = vars.iter().all(|v| state.bound.contains_key(*v));
        if !all_available {
            continue;
        }
        let mut ok = true;
        for v in &vars {
            let c = state.bound[*v].clone();
            if !projected_cols.contains(&c) {
                if distinct {
                    ok = false; // cannot widen a DISTINCT projection
                    break;
                }
                items.push(format!("{c} AS {c}"));
                projected_cols.insert(c);
            }
        }
        if !ok {
            continue;
        }
        let dir = if cond.ascending { "" } else { " DESC" };
        match &cond.expr {
            Expression::Var(v) => {
                let c = &state.bound[v];
                // Numeric-aware ordering, then lexical tiebreak.
                order_items.push(format!("RDF_NUM({c}){dir}"));
                order_items.push(format!("RDF_STR({c}){dir}"));
            }
            e => {
                let translated = filters::filter_order_key(e, &state.bound);
                order_items.push(format!("{translated}{dir}"));
            }
        }
    }

    sql.push_str("SELECT ");
    if distinct {
        sql.push_str("DISTINCT ");
    }
    sql.push_str(&items.join(", "));
    if let Some(last) = &state.last {
        sql.push_str(&format!(" FROM {last}"));
    }
    if !order_items.is_empty() {
        sql.push_str(&format!(" ORDER BY {}", order_items.join(", ")));
    }
    if let Some(l) = query.limit {
        sql.push_str(&format!(" LIMIT {l}"));
    }
    if let Some(o) = query.offset {
        sql.push_str(&format!(" OFFSET {o}"));
    }
    sql
}
