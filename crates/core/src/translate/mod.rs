//! SPARQL→SQL translation (paper §3.2.2).
//!
//! The execution tree is linearized into a chain of CTEs, exactly like the
//! paper's Fig. 13: every CTE threads all previously bound variables
//! through, star accesses become single `DPH`/`RPH` probes (the layout
//! backends implement [`StarGen`]), UNIONs become `UNION ALL` of per-branch
//! chains, OPTIONALs become `LEFT OUTER JOIN`s, and FILTERs attach to the
//! earliest CTE where their variables are bound.

pub mod entity;
pub mod filters;
pub mod functions;

use std::collections::{BTreeMap, HashSet};

use rdf::Term;
use sparql::{Expression, Query, QueryForm, SelectItem, ValuesBlock};

use crate::error::{Result, StoreError};
use crate::optimizer::ExecNode;

/// Generation state: accumulated CTEs plus the variable → column map of the
/// chain head.
pub struct GenState {
    counter: usize,
    pub ctes: Vec<(String, String)>,
    /// Variables bound in the current chain head, mapped to column names.
    pub bound: BTreeMap<String, String>,
    /// Name of the current chain-head CTE.
    pub last: Option<String>,
    /// Bound variables whose column may still be SQL NULL (SPARQL-unbound):
    /// bound in only some UNION branches, or introduced by an OPTIONAL.
    /// Joins against them must be null-compatible (an unbound variable is
    /// compatible with any value) — see [`GenState::join_bound`].
    pub maybe_null: HashSet<String>,
    /// Variables whose column is in the *value domain* (aggregate or BIND
    /// arithmetic output — actual numbers, not dictionary IDs / canonical
    /// encodings). Drives filter lowering and result decoding.
    pub plain: HashSet<String>,
    colnames: BTreeMap<String, String>,
    used_cols: HashSet<String>,
}

impl Default for GenState {
    fn default() -> Self {
        Self::new()
    }
}

impl GenState {
    pub fn new() -> GenState {
        GenState {
            counter: 0,
            ctes: Vec::new(),
            bound: BTreeMap::new(),
            last: None,
            maybe_null: HashSet::new(),
            plain: HashSet::new(),
            colnames: BTreeMap::new(),
            used_cols: HashSet::new(),
        }
    }

    /// A fresh CTE name (`q1`, `q2`, ...).
    pub fn fresh(&mut self) -> String {
        self.counter += 1;
        format!("q{}", self.counter)
    }

    /// Stable, query-unique column name for a variable.
    pub fn col(&mut self, var: &str) -> String {
        if let Some(c) = self.colnames.get(var) {
            return c.clone();
        }
        let sanitized: String = var
            .chars()
            .map(|c| if c.is_ascii_alphanumeric() { c.to_ascii_lowercase() } else { '_' })
            .collect();
        let mut name = format!("c_{sanitized}");
        let mut i = 0;
        while self.used_cols.contains(&name) {
            i += 1;
            name = format!("c_{sanitized}_{i}");
        }
        self.used_cols.insert(name.clone());
        self.colnames.insert(var.to_string(), name.clone());
        name
    }

    pub fn push_cte(&mut self, name: String, body: String) {
        self.ctes.push((name.clone(), body));
        self.last = Some(name);
    }

    /// `P.col AS col` projections for all currently bound variables.
    pub fn prior_projection(&self, prior_alias: &str) -> Vec<String> {
        self.bound.values().map(|c| format!("{prior_alias}.{c} AS {c}")).collect()
    }

    /// Join condition tying `expr` — a non-NULL access expression in the new
    /// CTE — to bound variable `v`'s prior column (aliased `P`). A definite
    /// column gives plain equality. A maybe-NULL column gives a
    /// null-compatible join (SPARQL: an unbound variable joins anything) and
    /// re-anchors the variable's projection in `select` to `COALESCE`, so it
    /// is definitely bound from this CTE on.
    pub fn join_bound(&mut self, v: &str, expr: &str, select: &mut [String]) -> String {
        let col = self.bound[v].clone();
        if self.maybe_null.remove(v) {
            let plain = format!("P.{col} AS {col}");
            for s in select.iter_mut() {
                if *s == plain {
                    *s = format!("COALESCE(P.{col}, {expr}) AS {col}");
                }
            }
            format!("(P.{col} IS NULL OR {expr} = P.{col})")
        } else {
            format!("{expr} = P.{col}")
        }
    }
}

/// A layout backend: generates the CTE(s) for one star access.
pub trait StarGen {
    fn gen_star(&self, star: &crate::optimizer::StarNode, state: &mut GenState) -> Result<()>;
}

/// Generate the CTE chain for an execution (sub)tree.
pub fn gen_pattern(backend: &dyn StarGen, node: &ExecNode, state: &mut GenState) -> Result<()> {
    match node {
        ExecNode::Star(star) => backend.gen_star(star, state),
        ExecNode::Seq { children, filters } => {
            let mut pending: Vec<&Expression> = filters.iter().collect();
            for child in children {
                gen_pattern(backend, child, state)?;
                // Late filter application: as soon as all variables bind
                // *definitely*. A maybe-NULL variable may still be re-bound
                // by a later null-compatible join, so filtering on it now
                // would evaluate against the wrong (unbound) value.
                let mut still_pending = Vec::new();
                for f in pending {
                    let ready = f.variables().iter().all(|v| {
                        state.bound.contains_key(*v) && !state.maybe_null.contains(*v)
                    });
                    if ready {
                        apply_filter(f, state)?;
                    } else {
                        still_pending.push(f);
                    }
                }
                pending = still_pending;
            }
            // Whatever remains references unbound variables (→ NULL).
            for f in pending {
                apply_filter(f, state)?;
            }
            Ok(())
        }
        ExecNode::Union(branches) => gen_union(backend, branches, state),
        ExecNode::Optional(inner) => gen_optional(backend, inner, state),
    }
}

pub(crate) fn apply_filter(f: &Expression, state: &mut GenState) -> Result<()> {
    let Some(last) = state.last.clone() else {
        return Ok(()); // filter over an empty pattern: nothing to constrain
    };
    let cond = filters::filter_to_sql(f, &state.bound, &state.plain)?;
    let name = state.fresh();
    let body = format!("SELECT * FROM {last} WHERE {cond}");
    state.push_cte(name, body);
    Ok(())
}

fn gen_union(backend: &dyn StarGen, branches: &[ExecNode], state: &mut GenState) -> Result<()> {
    let entry_last = state.last.clone();
    let entry_bound = state.bound.clone();
    let entry_maybe = state.maybe_null.clone();
    let mut branch_results: Vec<(String, BTreeMap<String, String>, HashSet<String>)> = Vec::new();
    for branch in branches {
        state.last = entry_last.clone();
        state.bound = entry_bound.clone();
        state.maybe_null = entry_maybe.clone();
        gen_pattern(backend, branch, state)?;
        let last = state
            .last
            .clone()
            .ok_or_else(|| StoreError::Unsupported("empty UNION branch".into()))?;
        branch_results.push((last, state.bound.clone(), state.maybe_null.clone()));
    }
    // Harmonized projection: the union of all branch variables.
    let mut all_vars: Vec<String> = Vec::new();
    for (_, bound, _) in &branch_results {
        for v in bound.keys() {
            if !all_vars.contains(v) {
                all_vars.push(v.clone());
            }
        }
    }
    let mut selects = Vec::new();
    for (last, bound, _) in &branch_results {
        let mut cols: Vec<String> = all_vars
            .iter()
            .map(|v| {
                let out = state.col(v);
                match bound.get(v) {
                    Some(c) => format!("{c} AS {out}"),
                    None => format!("NULL AS {out}"),
                }
            })
            .collect();
        if cols.is_empty() {
            // All-constant branches bind nothing; keep the row multiset.
            cols.push("1 AS one".to_string());
        }
        selects.push(format!("SELECT {} FROM {last}", cols.join(", ")));
    }
    let name = state.fresh();
    let body = selects.join(" UNION ALL ");
    state.bound = all_vars.iter().map(|v| (v.clone(), state.colnames[v].clone())).collect();
    // A variable missing from (or already maybe-NULL in) any branch may be
    // NULL in the union's output: later joins must stay null-compatible.
    state.maybe_null = entry_maybe;
    for v in &all_vars {
        if branch_results.iter().any(|(_, b, m)| !b.contains_key(v) || m.contains(v)) {
            state.maybe_null.insert(v.clone());
        }
    }
    state.push_cte(name, body);
    Ok(())
}

fn gen_optional(backend: &dyn StarGen, inner: &ExecNode, state: &mut GenState) -> Result<()> {
    let entry_last = state.last.clone();
    let entry_bound = state.bound.clone();
    let entry_maybe = state.maybe_null.clone();
    // The optional side is evaluated uncorrelated (see DESIGN.md): its head
    // access degrades to a scan when its entity is unbound.
    state.last = None;
    state.bound = BTreeMap::new();
    state.maybe_null = HashSet::new();
    gen_pattern(backend, inner, state)?;
    let opt_last = state.last.clone();
    let opt_bound = state.bound.clone();
    let opt_maybe = std::mem::replace(&mut state.maybe_null, entry_maybe);
    state.last = entry_last.clone();
    state.bound = entry_bound.clone();

    let Some(opt_last) = opt_last else {
        return Ok(()); // empty OPTIONAL: no-op
    };
    let Some(main) = entry_last else {
        // OPTIONAL at the start of a group: left-join the optional side
        // against the unit relation (one empty row, via FROM-less SELECT),
        // so a non-matching OPTIONAL still yields one all-unbound solution
        // per the W3C semantics instead of eliminating the group.
        let unit = state.fresh();
        state.push_cte(unit.clone(), "SELECT 1 AS opt_unit".to_string());
        let mut projection: Vec<String> =
            opt_bound.values().map(|c| format!("O.{c} AS {c}")).collect();
        if projection.is_empty() {
            projection.push("P.opt_unit AS opt_unit".to_string());
        }
        let name = state.fresh();
        let body = format!(
            "SELECT {} FROM {unit} AS P LEFT OUTER JOIN {opt_last} AS O ON TRUE",
            projection.join(", ")
        );
        for v in opt_bound.keys() {
            state.maybe_null.insert(v.clone());
        }
        state.bound = opt_bound;
        state.push_cte(name, body);
        return Ok(());
    };

    let shared: Vec<&String> = opt_bound.keys().filter(|v| entry_bound.contains_key(*v)).collect();
    let on = if shared.is_empty() {
        "TRUE".to_string()
    } else {
        shared
            .iter()
            .map(|v| {
                let pc = &entry_bound[*v];
                let oc = &opt_bound[*v];
                // A maybe-NULL side means the variable can be SPARQL-unbound
                // there, which is compatible with anything (W3C LeftJoin).
                let mut alts = Vec::new();
                if state.maybe_null.contains(*v) {
                    alts.push(format!("P.{pc} IS NULL"));
                }
                if opt_maybe.contains(*v) {
                    alts.push(format!("O.{oc} IS NULL"));
                }
                alts.push(format!("P.{pc} = O.{oc}"));
                if alts.len() == 1 {
                    alts.pop().unwrap()
                } else {
                    format!("({})", alts.join(" OR "))
                }
            })
            .collect::<Vec<_>>()
            .join(" AND ")
    };
    let mut projection = state.prior_projection("P");
    // Re-anchor maybe-NULL shared variables: when the prior column is
    // unbound and the optional matched, the optional supplies the value.
    for v in &shared {
        if state.maybe_null.contains(*v) {
            let pc = &entry_bound[*v];
            let oc = &opt_bound[*v];
            let plain = format!("P.{pc} AS {pc}");
            for s in projection.iter_mut() {
                if *s == plain {
                    *s = format!("COALESCE(P.{pc}, O.{oc}) AS {pc}");
                }
            }
        }
    }
    let mut new_bound = entry_bound.clone();
    for (v, c) in &opt_bound {
        if !entry_bound.contains_key(v) {
            projection.push(format!("O.{c} AS {c}"));
            new_bound.insert(v.clone(), c.clone());
            // A non-matching OPTIONAL leaves the variable NULL.
            state.maybe_null.insert(v.clone());
        }
    }
    let name = state.fresh();
    let body = format!(
        "SELECT {} FROM {main} AS P LEFT OUTER JOIN {opt_last} AS O ON {on}",
        projection.join(", ")
    );
    state.bound = new_bound;
    state.push_cte(name, body);
    Ok(())
}

/// Assemble the final SQL text for a query whose pattern chain has been
/// generated into `state`.
pub fn finish(query: &Query, state: &mut GenState) -> Result<String> {
    let mut sql = String::new();
    if !state.ctes.is_empty() {
        sql.push_str("WITH ");
        let parts: Vec<String> =
            state.ctes.iter().map(|(n, b)| format!("{n} AS ({b})")).collect();
        sql.push_str(&parts.join(",\n     "));
        sql.push('\n');
    }

    let distinct = query.is_distinct();
    match (&query.form, &state.last) {
        (QueryForm::Ask, Some(last)) => {
            sql.push_str(&format!("SELECT 1 AS ok FROM {last} LIMIT 1"));
            return Ok(sql);
        }
        (QueryForm::Ask, None) => {
            sql.push_str("SELECT 1 AS ok");
            return Ok(sql);
        }
        _ => {}
    }

    let projected = query.projected_variables();
    let mut items: Vec<String> = Vec::new();
    let mut projected_cols: HashSet<String> = HashSet::new();
    for v in &projected {
        match state.bound.get(v) {
            Some(c) => {
                items.push(format!("{c} AS {c}"));
                projected_cols.insert(c.clone());
            }
            None => {
                let c = state.col(v);
                items.push(format!("NULL AS {c}"));
                projected_cols.insert(c);
            }
        }
    }
    if items.is_empty() {
        items.push("1 AS ok".to_string());
    }

    // ORDER BY variables must appear in the projection for the engine's
    // sorter; add hidden ones unless DISTINCT forbids it.
    let mut order_items: Vec<String> = Vec::new();
    for cond in &query.order_by {
        let vars = cond.expr.variables();
        let all_available = vars.iter().all(|v| state.bound.contains_key(*v));
        if !all_available {
            continue;
        }
        let mut ok = true;
        for v in &vars {
            let c = state.bound[*v].clone();
            if !projected_cols.contains(&c) {
                if distinct {
                    ok = false; // cannot widen a DISTINCT projection
                    break;
                }
                items.push(format!("{c} AS {c}"));
                projected_cols.insert(c);
            }
        }
        if !ok {
            continue;
        }
        let dir = if cond.ascending { "" } else { " DESC" };
        match &cond.expr {
            // A value-domain column sorts directly by the engine's total
            // order; RDF_NUM would misread its integers as dictionary IDs.
            Expression::Var(v) if state.plain.contains(v) => {
                let c = &state.bound[v];
                order_items.push(format!("{c}{dir}"));
            }
            Expression::Var(v) => {
                let c = &state.bound[v];
                // Numeric-aware ordering, then lexical tiebreak.
                order_items.push(format!("RDF_NUM({c}){dir}"));
                order_items.push(format!("RDF_STR({c}){dir}"));
            }
            e => {
                let translated = filters::filter_order_key(e, &state.bound, &state.plain)?;
                order_items.push(format!("{translated}{dir}"));
            }
        }
    }

    sql.push_str("SELECT ");
    if distinct {
        sql.push_str("DISTINCT ");
    }
    sql.push_str(&items.join(", "));
    if let Some(last) = &state.last {
        sql.push_str(&format!(" FROM {last}"));
    }
    if !order_items.is_empty() {
        sql.push_str(&format!(" ORDER BY {}", order_items.join(", ")));
    }
    if let Some(l) = query.limit {
        sql.push_str(&format!(" LIMIT {l}"));
    }
    if let Some(o) = query.offset {
        sql.push_str(&format!(" OFFSET {o}"));
    }
    Ok(sql)
}

fn unsupported(msg: impl Into<String>) -> StoreError {
    StoreError::Unsupported(msg.into())
}

/// Lower `BIND(expr AS ?var)` as one extension CTE. `visible` is the set of
/// variables bound by *syntactically preceding* siblings: the W3C scopes a
/// BIND expression to the group elements before it, while this pipeline
/// evaluates the whole basic pattern first, so references to later-bound
/// variables must still read as unbound here.
pub fn gen_bind(
    expr: &Expression,
    var: &str,
    visible: &HashSet<String>,
    state: &mut GenState,
) -> Result<()> {
    if state.bound.contains_key(var) {
        return Err(unsupported(format!(
            "BIND target ?{var} is already bound elsewhere in the group"
        )));
    }
    let vis_bound: BTreeMap<String, String> = state
        .bound
        .iter()
        .filter(|(v, _)| visible.contains(*v))
        .map(|(v, c)| (v.clone(), c.clone()))
        .collect();
    let col = state.col(var);
    // A bare-variable copy keeps the source's domain; everything else is a
    // computed value-domain column.
    let (val, is_plain, maybe) = match expr {
        Expression::Var(src) if vis_bound.contains_key(src) => (
            vis_bound[src].clone(),
            state.plain.contains(src),
            state.maybe_null.contains(src),
        ),
        Expression::Var(_) => ("NULL".to_string(), false, true),
        Expression::Term(_) => (filters::value_sql(expr, &vis_bound, &state.plain)?, true, false),
        _ => (filters::value_sql(expr, &vis_bound, &state.plain)?, true, true),
    };
    let body = match &state.last {
        Some(last) => format!("SELECT *, {val} AS {col} FROM {last}"),
        // No chain yet: the unit solution μ0 extended with the binding.
        None => format!("SELECT {val} AS {col}"),
    };
    let name = state.fresh();
    state.bound.insert(var.to_string(), col);
    if is_plain {
        state.plain.insert(var.to_string());
    }
    if maybe {
        state.maybe_null.insert(var.to_string());
    }
    state.push_cte(name, body);
    Ok(())
}

/// Lower an inline `VALUES` block: a data CTE (one SELECT per row, UNION
/// ALL) joined against the current chain with sameTerm compatibility —
/// `UNDEF` cells and unbound chain columns are compatible with anything.
/// `enc` renders one constant term as a SQL literal in the layout's column
/// domain (dictionary ID or canonical string).
pub fn gen_values(
    vb: &ValuesBlock,
    enc: &dyn Fn(&Term) -> String,
    state: &mut GenState,
) -> Result<()> {
    if vb.vars.is_empty() {
        return Err(unsupported("VALUES with no variables"));
    }
    let entry_last = state.last.clone();
    let cols: Vec<String> = vb.vars.iter().map(|v| state.col(v)).collect();
    // Which VALUES variables have at least one UNDEF cell?
    let undef: HashSet<&str> = vb
        .vars
        .iter()
        .enumerate()
        .filter(|(i, _)| vb.rows.iter().any(|r| r.get(*i).is_none_or(Option::is_none)))
        .map(|(_, v)| v.as_str())
        .collect();
    let vbody = if vb.rows.is_empty() {
        let items: Vec<String> = cols.iter().map(|c| format!("NULL AS {c}")).collect();
        format!("SELECT {} WHERE FALSE", items.join(", "))
    } else {
        let selects: Vec<String> = vb
            .rows
            .iter()
            .map(|row| {
                let items: Vec<String> = row
                    .iter()
                    .zip(&cols)
                    .map(|(cell, c)| match cell {
                        Some(t) => format!("{} AS {c}", enc(t)),
                        None => format!("NULL AS {c}"),
                    })
                    .collect();
                format!("SELECT {}", items.join(", "))
            })
            .collect();
        selects.join(" UNION ALL ")
    };
    let vname = state.fresh();
    state.push_cte(vname.clone(), vbody);

    let Some(main) = entry_last else {
        // VALUES opens the chain: its data CTE is the chain head.
        for (v, c) in vb.vars.iter().zip(&cols) {
            state.bound.insert(v.clone(), c.clone());
            if undef.contains(v.as_str()) {
                state.maybe_null.insert(v.clone());
            }
        }
        return Ok(());
    };

    let mut projection = state.prior_projection("P");
    let mut conds: Vec<String> = Vec::new();
    for (v, c) in vb.vars.iter().zip(&cols) {
        match state.bound.get(v).cloned() {
            Some(pc) => {
                if state.plain.contains(v) {
                    return Err(unsupported(format!(
                        "VALUES variable ?{v} is already bound to a computed value"
                    )));
                }
                let mut alts = vec![format!("V.{c} IS NULL")];
                if state.maybe_null.contains(v) {
                    alts.push(format!("P.{pc} IS NULL"));
                    // Re-anchor: an unbound chain column takes the VALUES
                    // term; afterwards it is NULL only if both sides were.
                    let plain_proj = format!("P.{pc} AS {pc}");
                    for s in projection.iter_mut() {
                        if *s == plain_proj {
                            *s = format!("COALESCE(P.{pc}, V.{c}) AS {pc}");
                        }
                    }
                    if !undef.contains(v.as_str()) {
                        state.maybe_null.remove(v);
                    }
                }
                alts.push(format!("RDF_SAMETERM(P.{pc}, V.{c})"));
                conds.push(format!("({})", alts.join(" OR ")));
            }
            None => {
                projection.push(format!("V.{c} AS {c}"));
                state.bound.insert(v.clone(), c.clone());
                if undef.contains(v.as_str()) {
                    state.maybe_null.insert(v.clone());
                }
            }
        }
    }
    if projection.is_empty() {
        projection.push("1 AS one".to_string());
    }
    let name = state.fresh();
    let mut body = format!("SELECT {} FROM {main} AS P, {vname} AS V", projection.join(", "));
    if !conds.is_empty() {
        body.push_str(&format!(" WHERE {}", conds.join(" AND ")));
    }
    state.push_cte(name, body);
    Ok(())
}

/// Lower a nested `{ SELECT ... }`: generate the subquery's chain in an
/// isolated scope (via `gen_inner`, which runs the full per-level pipeline
/// including the subquery's own aggregation), restrict it to its projected
/// variables, then join it with the enclosing chain on the shared ones.
pub fn gen_subquery_join(
    sub: &Query,
    state: &mut GenState,
    gen_inner: &mut dyn FnMut(&Query, &mut GenState) -> Result<()>,
) -> Result<()> {
    if sub.limit.is_some() || sub.offset.is_some() || !sub.order_by.is_empty() {
        return Err(unsupported(
            "subquery solution modifiers (ORDER BY / LIMIT / OFFSET) are not supported",
        ));
    }
    if matches!(sub.form, QueryForm::Ask) {
        return Err(unsupported("ASK cannot appear as a subquery"));
    }
    let entry_last = state.last.clone();
    let entry_bound = std::mem::take(&mut state.bound);
    let entry_maybe = std::mem::take(&mut state.maybe_null);
    let entry_plain = std::mem::take(&mut state.plain);
    state.last = None;
    gen_inner(sub, state)?;

    // Restriction CTE: only the projected variables escape the subquery.
    let projected = sub.projected_variables();
    let sub_last = state.last.clone();
    let mut proj_items = Vec::new();
    let mut sub_cols: Vec<(String, String)> = Vec::new();
    let mut sub_maybe: HashSet<String> = HashSet::new();
    let mut sub_plain: HashSet<String> = HashSet::new();
    for v in &projected {
        let c = state.col(v);
        match state.bound.get(v) {
            Some(cc) => {
                proj_items.push(format!("{cc} AS {c}"));
                if state.maybe_null.contains(v) {
                    sub_maybe.insert(v.clone());
                }
                if state.plain.contains(v) {
                    sub_plain.insert(v.clone());
                }
            }
            None => {
                proj_items.push(format!("NULL AS {c}"));
                sub_maybe.insert(v.clone());
            }
        }
        sub_cols.push((v.clone(), c));
    }
    let distinct = if sub.is_distinct() { "DISTINCT " } else { "" };
    let rbody = match &sub_last {
        Some(l) => format!("SELECT {distinct}{} FROM {l}", proj_items.join(", ")),
        // Subquery over the empty pattern: one all-unbound solution.
        None => format!("SELECT {}", proj_items.join(", ")),
    };
    let rname = state.fresh();
    state.push_cte(rname.clone(), rbody);

    state.bound = entry_bound;
    state.maybe_null = entry_maybe;
    state.plain = entry_plain;
    state.last = entry_last.clone();

    let Some(main) = entry_last else {
        // The subquery opens the chain.
        state.last = Some(rname);
        for (v, c) in sub_cols {
            if sub_maybe.contains(&v) {
                state.maybe_null.insert(v.clone());
            }
            if sub_plain.contains(&v) {
                state.plain.insert(v.clone());
            }
            state.bound.insert(v, c);
        }
        return Ok(());
    };

    let mut projection = state.prior_projection("P");
    let mut conds: Vec<String> = Vec::new();
    for (v, c) in sub_cols {
        match state.bound.get(&v).cloned() {
            Some(pc) => {
                if state.plain.contains(&v) || sub_plain.contains(&v) {
                    return Err(unsupported(format!(
                        "subquery shares computed variable ?{v} with the outer pattern"
                    )));
                }
                let mut alts = Vec::new();
                if state.maybe_null.contains(&v) {
                    alts.push(format!("P.{pc} IS NULL"));
                    let plain_proj = format!("P.{pc} AS {pc}");
                    for s in projection.iter_mut() {
                        if *s == plain_proj {
                            *s = format!("COALESCE(P.{pc}, S.{c}) AS {pc}");
                        }
                    }
                    if !sub_maybe.contains(&v) {
                        state.maybe_null.remove(&v);
                    }
                }
                if sub_maybe.contains(&v) {
                    alts.push(format!("S.{c} IS NULL"));
                }
                alts.push(format!("P.{pc} = S.{c}"));
                conds.push(if alts.len() == 1 {
                    alts.pop().unwrap()
                } else {
                    format!("({})", alts.join(" OR "))
                });
            }
            None => {
                projection.push(format!("S.{c} AS {c}"));
                if sub_maybe.contains(&v) {
                    state.maybe_null.insert(v.clone());
                }
                if sub_plain.contains(&v) {
                    state.plain.insert(v.clone());
                }
                state.bound.insert(v, c);
            }
        }
    }
    if projection.is_empty() {
        projection.push("1 AS one".to_string());
    }
    let name = state.fresh();
    let mut body = format!("SELECT {} FROM {main} AS P, {rname} AS S", projection.join(", "));
    if !conds.is_empty() {
        body.push_str(&format!(" WHERE {}", conds.join(" AND ")));
    }
    state.push_cte(name, body);
    Ok(())
}

/// Lower computed `(expr AS ?v)` projection items of a *non-aggregating*
/// SELECT: each becomes a BIND-style extension CTE, in projection order.
pub fn gen_select_exprs(items: &[SelectItem], state: &mut GenState) -> Result<()> {
    for item in items {
        let Some(expr) = &item.expr else { continue };
        let visible: HashSet<String> = state.bound.keys().cloned().collect();
        gen_bind(expr, &item.var, &visible, state)?;
    }
    Ok(())
}

/// Lower the aggregation layer (GROUP BY / aggregates / HAVING) as one CTE
/// over the pattern chain. Afterwards the chain's bound variables are
/// exactly the grouping keys plus the projected items — everything else is
/// out of scope, per the SPARQL grouped-query semantics.
pub fn gen_aggregate(query: &Query, state: &mut GenState) -> Result<()> {
    let item_list: Vec<(Option<&Expression>, String)> = match query.select_items() {
        Some(items) => items.iter().map(|i| (i.expr.as_ref(), i.var.clone())).collect(),
        None => query.projected_variables().into_iter().map(|v| (None, v)).collect(),
    };
    let mut sel: Vec<String> = Vec::new();
    let mut gcols: Vec<String> = Vec::new();
    let mut new_bound: BTreeMap<String, String> = BTreeMap::new();
    let mut new_maybe: HashSet<String> = HashSet::new();
    let mut new_plain: HashSet<String> = HashSet::new();
    for g in &query.group_by {
        let c = state.col(g);
        match state.bound.get(g) {
            Some(cc) => {
                sel.push(format!("{cc} AS {cc}"));
                gcols.push(cc.clone());
                if state.maybe_null.contains(g) {
                    new_maybe.insert(g.clone());
                }
                if state.plain.contains(g) {
                    new_plain.insert(g.clone());
                }
            }
            None => {
                // Grouping by an unbound variable: a single NULL key. It
                // still needs a GROUP BY entry — with every key constant the
                // clause would otherwise vanish and turn the query into a
                // global aggregate, which yields a phantom unit row when the
                // input is empty (GROUP BY must yield zero groups there).
                sel.push(format!("NULL AS {c}"));
                gcols.push("NULL".to_string());
                new_maybe.insert(g.clone());
            }
        }
        new_bound.insert(g.clone(), c);
    }
    for (expr, var) in &item_list {
        match expr {
            None => {
                // Plain projected variable: the parser guarantees it is a
                // grouping key, so its column is already in the list.
                if !query.group_by.iter().any(|g| g == var) {
                    return Err(unsupported(format!(
                        "projected variable ?{var} is not grouped"
                    )));
                }
            }
            Some(Expression::Var(src)) => {
                // `(?src AS ?var)` — a renamed grouping key; keeps the
                // source's domain.
                let c = state.col(var);
                match state.bound.get(src) {
                    Some(sc) => {
                        sel.push(format!("{sc} AS {c}"));
                        if state.maybe_null.contains(src) {
                            new_maybe.insert(var.clone());
                        }
                        if state.plain.contains(src) {
                            new_plain.insert(var.clone());
                        }
                    }
                    None => {
                        sel.push(format!("NULL AS {c}"));
                        new_maybe.insert(var.clone());
                    }
                }
                new_bound.insert(var.clone(), c);
            }
            Some(e) => {
                let c = state.col(var);
                let sql = filters::select_expr_sql(e, &state.bound, &state.plain)?;
                sel.push(format!("{sql} AS {c}"));
                new_bound.insert(var.clone(), c);
                new_plain.insert(var.clone());
                // MIN/MAX over an all-unbound group (and arithmetic over
                // aggregate outputs) can be NULL.
                new_maybe.insert(var.clone());
            }
        }
    }
    let mut having_parts = Vec::new();
    for h in &query.having {
        having_parts.push(filters::having_sql(h, &state.bound, &state.plain)?);
    }
    let mut body = match &state.last {
        Some(last) => format!("SELECT {} FROM {last}", sel.join(", ")),
        // Aggregation over the unit solution μ0 (e.g. `SELECT (COUNT(*) AS
        // ?n) WHERE {}` → one row, count 1).
        None => format!("SELECT {}", sel.join(", ")),
    };
    if !gcols.is_empty() {
        body.push_str(&format!(" GROUP BY {}", gcols.join(", ")));
    }
    if !having_parts.is_empty() {
        body.push_str(&format!(" HAVING {}", having_parts.join(" AND ")));
    }
    let name = state.fresh();
    state.bound = new_bound;
    state.maybe_null = new_maybe;
    state.plain = new_plain;
    state.push_cte(name, body);
    Ok(())
}
