//! SPARQL 1.1 Update applier.
//!
//! An update request (`INSERT DATA` / `DELETE DATA` / `DELETE/INSERT ...
//! WHERE`, `;`-separated) is applied to the store as **one WAL frame**:
//! every operation's row mutations batch into a single frame appended via
//! `commit_batch_nosync`, so crash recovery replays requests all-or-nothing
//! — a half-applied `DELETE/INSERT` can never become visible. The fsync for
//! the frame is *not* paid here: the group-commit leader in
//! [`crate::shared`] syncs once per group of concurrent requests.
//!
//! Request semantics follow the W3C Update spec for the supported subset:
//!
//! * Operations apply in request order; each sees the effects of the ones
//!   before it.
//! * A `DELETE/INSERT` evaluates its WHERE clause once, against the state
//!   the operation starts from, projecting every pattern variable; the
//!   delete template is instantiated per solution and applied first, then
//!   the insert template.
//! * Template instantiations that leave a variable unbound, or that would
//!   produce invalid RDF (a literal subject, a non-IRI predicate), are
//!   skipped per the spec, not errors.
//! * Counting is effect-based: `inserted`/`deleted` report triples that
//!   actually changed the graph (RDF graphs are sets — re-inserting an
//!   existing triple or deleting an absent one moves nothing).
//!
//! A request that fails midway (an unsupported WHERE shape, a budget
//! error) is rolled back wholesale via [`RdfStore`]'s copy-on-write
//! mutation checkpoint: the store's tables, side metadata, and the open
//! batch are restored, so the failed request mutates nothing — in memory
//! or on disk.

use std::collections::HashMap;

use rdf::{Term, Triple};
use sparql::{GroupPattern, Pattern, Query, QueryForm, SelectVars, TriplePattern, Update, UpdateOp};

use crate::error::Result;
use crate::store::RdfStore;

/// Effect summary of one applied update request.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct UpdateOutcome {
    /// Triples actually added to the graph.
    pub inserted: u64,
    /// Triples actually removed from the graph.
    pub deleted: u64,
}

/// Apply one parsed update request as a single WAL frame (appended, not
/// synced — the caller owns the group-commit barrier). On error the store
/// is rolled back to its state before the request.
pub fn apply_update(store: &mut RdfStore, update: &Update) -> Result<UpdateOutcome> {
    let checkpoint = store.mutation_checkpoint();
    store.db_begin_batch();
    match apply_ops(store, update).and_then(|out| {
        store.db_commit_batch_nosync()?;
        Ok(out)
    }) {
        Ok(out) => Ok(out),
        Err(e) => {
            store.rollback_mutation(checkpoint);
            Err(e)
        }
    }
}

fn apply_ops(store: &mut RdfStore, update: &Update) -> Result<UpdateOutcome> {
    let mut out = UpdateOutcome::default();
    for op in &update.ops {
        match op {
            UpdateOp::InsertData(triples) => {
                for t in triples {
                    if store.insert(t)? {
                        out.inserted += 1;
                    }
                }
            }
            UpdateOp::DeleteData(triples) => {
                for t in triples {
                    if store.delete(t)? {
                        out.deleted += 1;
                    }
                }
            }
            UpdateOp::DeleteInsert { delete, insert, pattern } => {
                let (deletions, insertions) = ground(store, delete, insert, pattern)?;
                for t in &deletions {
                    if store.delete(t)? {
                        out.deleted += 1;
                    }
                }
                for t in &insertions {
                    if store.insert(t)? {
                        out.inserted += 1;
                    }
                }
            }
        }
    }
    Ok(out)
}

/// Evaluate a `DELETE/INSERT` operation's WHERE clause against the current
/// state and instantiate both templates per solution. Pure read: nothing is
/// mutated here, so a WHERE evaluation error aborts the request before it
/// touches the store.
fn ground(
    store: &RdfStore,
    delete: &[TriplePattern],
    insert: &[TriplePattern],
    pattern: &GroupPattern,
) -> Result<(Vec<Triple>, Vec<Triple>)> {
    // An empty store has no solutions (and cannot be queried): both
    // templates instantiate to nothing.
    if !store.is_loaded() {
        return Ok((Vec::new(), Vec::new()));
    }
    let vars = Pattern::Group(pattern.clone()).variables();
    // A fully ground WHERE clause has no projection; ASK decides whether it
    // yields the one empty solution or none.
    let form = if vars.is_empty() {
        QueryForm::Ask
    } else {
        QueryForm::Select { vars: SelectVars::Vars(vars), distinct: false }
    };
    let query = Query {
        form,
        pattern: pattern.clone(),
        group_by: Vec::new(),
        having: Vec::new(),
        order_by: Vec::new(),
        limit: None,
        offset: None,
    };
    let mut solutions = store.query_parsed(query)?;
    if solutions.boolean == Some(true) && solutions.rows.is_empty() {
        solutions.rows.push(Vec::new());
    }
    let positions: HashMap<&str, usize> =
        solutions.vars.iter().enumerate().map(|(i, v)| (v.as_str(), i)).collect();
    let mut deletions = Vec::new();
    let mut insertions = Vec::new();
    for row in &solutions.rows {
        instantiate(delete, &positions, row, &mut deletions);
        instantiate(insert, &positions, row, &mut insertions);
    }
    Ok((deletions, insertions))
}

/// Instantiate a template against one solution. Per the W3C spec,
/// instantiations with an unbound variable or an invalid term-in-position
/// (literal subject, non-IRI predicate) are skipped silently.
fn instantiate(
    template: &[TriplePattern],
    positions: &HashMap<&str, usize>,
    row: &[Option<Term>],
    out: &mut Vec<Triple>,
) {
    for tp in template {
        let resolve = |p: &sparql::TermPattern| -> Option<Term> {
            match p {
                sparql::TermPattern::Term(t) => Some(t.clone()),
                sparql::TermPattern::Var(v) => {
                    positions.get(v.as_str()).and_then(|&i| row.get(i).cloned().flatten())
                }
            }
        };
        let (Some(s), Some(p), Some(o)) =
            (resolve(&tp.subject), resolve(&tp.predicate), resolve(&tp.object))
        else {
            continue;
        };
        if s.is_literal() || !p.is_iri() {
            continue;
        }
        out.push(Triple::new(s, p, o));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::store::{Layout, StoreConfig};
    use sparql::parse_update;

    fn t(s: &str, p: &str, o: &str) -> Triple {
        Triple::new(Term::iri(s), Term::iri(p), Term::iri(o))
    }

    fn store_with(layout: Layout, triples: &[Triple]) -> RdfStore {
        let mut store = RdfStore::new(StoreConfig::with_layout(layout));
        store.load(triples).unwrap();
        store
    }

    fn apply(store: &mut RdfStore, text: &str) -> UpdateOutcome {
        let update = parse_update(text).unwrap();
        apply_update(store, &update).unwrap()
    }

    fn all_triples(store: &RdfStore) -> usize {
        store.query("SELECT * WHERE { ?s ?p ?o }").unwrap().len()
    }

    const LAYOUTS: [Layout; 3] = [Layout::Entity, Layout::TripleStore, Layout::Vertical];

    #[test]
    fn insert_data_counts_only_new_triples() {
        for layout in LAYOUTS {
            let mut store = store_with(layout, &[t("http://s/1", "http://p/1", "http://o/1")]);
            let out = apply(
                &mut store,
                "INSERT DATA { <http://s/1> <http://p/1> <http://o/1> . \
                               <http://s/2> <http://p/1> <http://o/2> }",
            );
            assert_eq!(out, UpdateOutcome { inserted: 1, deleted: 0 }, "{layout:?}");
            assert_eq!(all_triples(&store), 2, "{layout:?}");
        }
    }

    #[test]
    fn delete_data_is_effect_based() {
        for layout in LAYOUTS {
            let mut store = store_with(
                layout,
                &[
                    t("http://s/1", "http://p/1", "http://o/1"),
                    t("http://s/2", "http://p/1", "http://o/2"),
                ],
            );
            let out = apply(
                &mut store,
                "DELETE DATA { <http://s/1> <http://p/1> <http://o/1> . \
                               <http://s/9> <http://p/1> <http://o/9> }",
            );
            assert_eq!(out, UpdateOutcome { inserted: 0, deleted: 1 }, "{layout:?}");
            assert_eq!(all_triples(&store), 1, "{layout:?}");
        }
    }

    #[test]
    fn delete_insert_where_rewrites_matching_triples() {
        for layout in LAYOUTS {
            let mut store = store_with(
                layout,
                &[
                    t("http://s/1", "http://p/old", "http://o/1"),
                    t("http://s/2", "http://p/old", "http://o/2"),
                    t("http://s/3", "http://p/other", "http://o/3"),
                ],
            );
            let out = apply(
                &mut store,
                "DELETE { ?s <http://p/old> ?o } INSERT { ?s <http://p/new> ?o } \
                 WHERE { ?s <http://p/old> ?o }",
            );
            assert_eq!(out, UpdateOutcome { inserted: 2, deleted: 2 }, "{layout:?}");
            let renamed = store
                .query("SELECT ?s WHERE { ?s <http://p/new> ?o }")
                .unwrap();
            assert_eq!(renamed.len(), 2, "{layout:?}");
            let old = store.query("SELECT ?s WHERE { ?s <http://p/old> ?o }").unwrap();
            assert_eq!(old.len(), 0, "{layout:?}");
        }
    }

    #[test]
    fn delete_where_shorthand_removes_matches() {
        for layout in LAYOUTS {
            let mut store = store_with(
                layout,
                &[
                    t("http://s/1", "http://p/1", "http://o/1"),
                    t("http://s/2", "http://p/2", "http://o/2"),
                ],
            );
            let out = apply(&mut store, "DELETE WHERE { ?s <http://p/1> ?o }");
            assert_eq!(out, UpdateOutcome { inserted: 0, deleted: 1 }, "{layout:?}");
            assert_eq!(all_triples(&store), 1, "{layout:?}");
        }
    }

    #[test]
    fn operations_apply_in_order() {
        for layout in LAYOUTS {
            let mut store = store_with(layout, &[t("http://s/1", "http://p/1", "http://o/1")]);
            // The second op deletes what the first op just inserted.
            let out = apply(
                &mut store,
                "INSERT DATA { <http://s/2> <http://p/1> <http://o/2> } ; \
                 DELETE WHERE { ?s <http://p/1> ?o }",
            );
            assert_eq!(out, UpdateOutcome { inserted: 1, deleted: 2 }, "{layout:?}");
            assert_eq!(all_triples(&store), 0, "{layout:?}");
        }
    }

    #[test]
    fn unbound_and_invalid_instantiations_are_skipped() {
        for layout in LAYOUTS {
            let mut store = store_with(
                layout,
                &[
                    t("http://s/1", "http://p/1", "http://o/1"),
                    Triple::new(
                        Term::iri("http://s/2"),
                        Term::iri("http://p/1"),
                        Term::lit("a literal"),
                    ),
                ],
            );
            // ?v is only bound via OPTIONAL; ?o can be a literal, which is
            // invalid in subject position — both instantiations skip.
            let out = apply(
                &mut store,
                "INSERT { ?o <http://p/rev> ?s . ?s <http://p/opt> ?v } \
                 WHERE { ?s <http://p/1> ?o OPTIONAL { ?s <http://p/none> ?v } }",
            );
            assert_eq!(out, UpdateOutcome { inserted: 1, deleted: 0 }, "{layout:?}");
        }
    }

    #[test]
    fn failed_request_rolls_back_completely() {
        let mut store = store_with(
            Layout::Vertical,
            &(0..600)
                .map(|i| t(&format!("http://s/{i}"), &format!("http://p/{i}"), "http://o"))
                .collect::<Vec<_>>(),
        );
        let before = store.load_report().triples;
        // First op applies, second op's WHERE uses a variable predicate over
        // more vertical tables than the translator allows — the whole
        // request must roll back, including the first op.
        let update = parse_update(
            "INSERT DATA { <http://s/new> <http://p/0> <http://o/new> } ; \
             DELETE { ?s ?p ?o } WHERE { ?s ?p ?o }",
        )
        .unwrap();
        let err = apply_update(&mut store, &update);
        assert!(err.is_err());
        assert_eq!(store.load_report().triples, before, "first op must not survive");
        assert_eq!(
            store.query("SELECT ?o WHERE { <http://s/new> <http://p/0> ?o }").unwrap().len(),
            0,
            "rolled-back insert must be invisible"
        );
        // The store still works after a rollback.
        let out = apply(&mut store, "INSERT DATA { <http://s/new> <http://p/0> <http://o/new> }");
        assert_eq!(out.inserted, 1);
    }

    #[test]
    fn updates_on_an_empty_store_bootstrap_it() {
        for layout in LAYOUTS {
            let mut store = RdfStore::new(StoreConfig::with_layout(layout));
            // DELETE/INSERT WHERE on the empty store is a no-op, not an error.
            let out = apply(&mut store, "DELETE { ?s ?p ?o } WHERE { ?s ?p ?o }");
            assert_eq!(out, UpdateOutcome::default(), "{layout:?}");
            let out = apply(
                &mut store,
                "INSERT DATA { <http://s/1> <http://p/1> <http://o/1> . \
                               <http://s/2> <http://p/1> <http://o/2> }",
            );
            assert_eq!(out, UpdateOutcome { inserted: 2, deleted: 0 }, "{layout:?}");
            assert_eq!(all_triples(&store), 2, "{layout:?}");
        }
    }
}
