//! The streaming parallel bulk loader (`store::bulk`): differential
//! equivalence against the materialized path, byte-identical determinism
//! across thread counts, reopen durability, and the crash protocol under
//! PR 2 fault injection.

use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};

use db2rdf::{BulkLoadOptions, Layout, RdfStore, StoreConfig};
use rdf::{write_ntriples, Quad, Term, Triple};

static DIR_SEQ: AtomicUsize = AtomicUsize::new(0);

fn fresh_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "db2rdf-bulk-{}-{}-{name}",
        std::process::id(),
        DIR_SEQ.fetch_add(1, Ordering::SeqCst)
    ));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// A deterministic dataset with the paper's shape hazards: multi-valued
/// predicates, shared objects, literal and IRI values, skewed predicate
/// frequencies. No duplicate triples (the materialized path keeps them,
/// the bulk path dedups — the differential test needs distinct input).
fn dataset(entities: usize) -> Vec<Triple> {
    let mut out = Vec::new();
    let mut seen = std::collections::HashSet::new();
    let mut state = 0x9e3779b97f4a7c15u64;
    let mut rng = move || {
        state = state.wrapping_add(0x9e3779b97f4a7c15);
        let mut z = state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
        z ^ (z >> 31)
    };
    let industries = ["Software", "Internet", "Hardware", "Retail"];
    for e in 0..entities {
        let s = format!("http://x.test/e{e}");
        let mut push = |p: &str, o: Term, out: &mut Vec<Triple>| {
            let t = Triple::new(Term::iri(s.as_str()), Term::iri(format!("http://x.test/{p}")), o);
            if seen.insert(format!("{t:?}")) {
                out.push(t);
            }
        };
        push("born", Term::lit(format!("{}", 1850 + rng() % 150)), &mut out);
        // Multi-valued with shared objects: 1–3 industries per entity.
        for k in 0..(1 + rng() as usize % 3) {
            let i = (rng() as usize + k) % industries.len();
            push("industry", Term::lit(industries[i]), &mut out);
        }
        if rng() % 3 == 0 {
            let target = rng() as usize % entities;
            push("knows", Term::iri(format!("http://x.test/e{target}")), &mut out);
        }
        if rng() % 7 == 0 {
            push("home", Term::lit("Palo Alto"), &mut out);
        }
    }
    out
}

fn to_ntriples(triples: &[Triple]) -> String {
    let quads: Vec<Quad> = triples.iter().map(|t| Quad { triple: t.clone(), graph: None }).collect();
    write_ntriples(&quads)
}

const QUERIES: &[&str] = &[
    "SELECT ?s WHERE { ?s <http://x.test/home> 'Palo Alto' }",
    "SELECT ?s ?o WHERE { ?s <http://x.test/industry> ?o }",
    "SELECT ?a ?b WHERE { ?a <http://x.test/knows> ?b . ?b <http://x.test/industry> 'Software' }",
    "ASK { ?s <http://x.test/born> '1900' }",
];

fn answers(store: &RdfStore, q: &str) -> Vec<String> {
    let sols = store.query(q).unwrap();
    let mut rows: Vec<String> = Vec::new();
    for i in 0..sols.len() {
        let mut cells: Vec<String> = Vec::new();
        for var in ["s", "o", "a", "b"] {
            if let Some(term) = sols.get(i, var) {
                cells.push(format!("{var}={term:?}"));
            }
        }
        rows.push(cells.join(" "));
    }
    rows.sort();
    rows
}

#[test]
fn bulk_matches_materialized_load() {
    let data = dataset(200);
    let mut reference = RdfStore::entity();
    reference.load(&data).unwrap();

    let mut bulk = RdfStore::entity();
    let nt = to_ntriples(&data);
    let stats = bulk
        .bulk_load_ntriples(nt.as_bytes(), &BulkLoadOptions::default())
        .unwrap();
    assert_eq!(stats.triples, data.len() as u64);
    assert_eq!(stats.raw_triples, data.len() as u64);

    for q in QUERIES {
        assert_eq!(answers(&bulk, q), answers(&reference, q), "query diverged: {q}");
    }
    // Statistics agree on the aggregate counters the optimizer keys on.
    let (bs, rs) = (bulk.statistics(), reference.statistics());
    assert_eq!(bs.total_triples, rs.total_triples);
    assert_eq!(bs.distinct_subjects, rs.distinct_subjects);
    assert_eq!(bs.distinct_objects, rs.distinct_objects);
    assert_eq!(
        bs.predicate_count("<http://x.test/industry>"),
        rs.predicate_count("<http://x.test/industry>")
    );
    assert_eq!(bulk.load_report().triples, reference.load_report().triples);
    assert_eq!(bulk.load_report().predicates, reference.load_report().predicates);
}

#[test]
fn bulk_load_triples_matches_ntriples_path() {
    let data = dataset(120);
    let mut via_text = RdfStore::entity();
    via_text
        .bulk_load_ntriples(to_ntriples(&data).as_bytes(), &BulkLoadOptions::default())
        .unwrap();
    let mut via_iter = RdfStore::entity();
    via_iter.bulk_load_triples(data.clone(), &BulkLoadOptions::default()).unwrap();
    for q in QUERIES {
        assert_eq!(answers(&via_iter, q), answers(&via_text, q), "query diverged: {q}");
    }
}

/// The determinism contract: the same bytes produce a byte-identical store —
/// same dictionary, same rows in every table, same stats — at any worker
/// width. Small chunks force many morsels per round so interleaving would
/// show if merge order ever depended on scheduling.
#[test]
fn bulk_load_is_byte_identical_across_thread_counts() {
    let nt = to_ntriples(&dataset(150));
    let fingerprint = |threads: usize| -> Vec<String> {
        let mut store = RdfStore::entity();
        let opts = BulkLoadOptions {
            chunk_bytes: 512,
            segment_triples: 64,
            threads: Some(threads),
            ..BulkLoadOptions::default()
        };
        store.bulk_load_ntriples(nt.as_bytes(), &opts).unwrap();
        let mut fp: Vec<String> = Vec::new();
        let dict = store.dictionary().read();
        for (id, term) in dict.entries_from(0) {
            fp.push(format!("dict {id} {term}"));
        }
        drop(dict);
        for table in ["dph", "ds", "rph", "rs"] {
            let t = store.database().table(table).unwrap();
            for r in 0..t.row_count() as u32 {
                fp.push(format!("{table} {:?}", t.row_values(r)));
            }
        }
        fp.push(format!("report {:?}", store.load_report()));
        fp
    };
    let one = fingerprint(1);
    assert_eq!(fingerprint(2), one, "threads=2 diverged from threads=1");
    assert_eq!(fingerprint(4), one, "threads=4 diverged from threads=1");
}

#[test]
fn bulk_load_survives_reopen() {
    let dir = fresh_dir("reopen");
    let data = dataset(100);
    let expected;
    let expected_report;
    {
        let mut store = RdfStore::open(&dir, StoreConfig::default()).unwrap();
        let opts = BulkLoadOptions { segment_triples: 32, ..BulkLoadOptions::default() };
        let stats = store.bulk_load_ntriples(to_ntriples(&data).as_bytes(), &opts).unwrap();
        assert!(stats.segments >= 2, "expected multiple segments, got {}", stats.segments);
        assert!(stats.checkpoints >= 1, "final checkpoint must run");
        expected = answers(&store, QUERIES[1]);
        expected_report = store.load_report().clone();
        drop(store); // no close(): reopen exercises snapshot + WAL replay
    }
    let store = RdfStore::open(&dir, StoreConfig::default()).unwrap();
    assert_eq!(answers(&store, QUERIES[1]), expected);
    assert_eq!(store.load_report().triples, expected_report.triples);
    assert_eq!(store.load_report().dph_rows, expected_report.dph_rows);
    // Incremental writes still work on the restored store.
    let mut store = store;
    assert!(store
        .insert(&Triple::new(
            Term::iri("http://x.test/e0"),
            Term::iri("http://x.test/home"),
            Term::lit("Armonk"),
        ))
        .unwrap());
}

/// Crash protocol under PR 2 fault injection: fail the Nth durable write
/// mid-load for every N until loads stop failing. Whatever prefix the WAL
/// keeps, reopening must land in exactly one of three states — empty
/// (marker never committed), an explicit "bulk load interrupted" refusal,
/// or the complete dataset. Partial data must never be served.
#[test]
fn interrupted_bulk_load_refuses_or_recovers_cleanly() {
    let data = dataset(60);
    let nt = to_ntriples(&data);
    let opts = BulkLoadOptions { segment_triples: 24, ..BulkLoadOptions::default() };
    let full = {
        let mut store = RdfStore::entity();
        store.bulk_load_ntriples(nt.as_bytes(), &opts).unwrap();
        answers(&store, QUERIES[1])
    };

    let mut refused = 0;
    let mut empty = 0;
    let mut complete = 0;
    let mut n = 0;
    loop {
        let dir = fresh_dir(&format!("fault-{n}"));
        let faults = relstore::ScriptedFaults::new().fail_write(n).into_handle();
        let mut store =
            RdfStore::open_with_faults(&dir, StoreConfig::default(), faults).unwrap();
        let load = store.bulk_load_ntriples(nt.as_bytes(), &opts);
        let failed = load.is_err();
        drop(store);

        match RdfStore::open(&dir, StoreConfig::default()) {
            Err(e) => {
                let msg = e.to_string();
                assert!(
                    msg.contains("bulk load interrupted"),
                    "write-fault {n}: unexpected reopen error: {msg}"
                );
                refused += 1;
            }
            Ok(store) => {
                if store.query(QUERIES[1]).is_ok() {
                    assert_eq!(
                        answers(&store, QUERIES[1]),
                        full,
                        "write-fault {n}: reopened with partial data"
                    );
                    complete += 1;
                } else {
                    empty += 1;
                }
            }
        }
        let _ = std::fs::remove_dir_all(&dir);
        if !failed {
            // The fault index is past every write the load performs.
            break;
        }
        n += 1;
        assert!(n < 10_000, "fault sweep did not converge");
    }
    assert!(refused > 0, "no fault point exercised the in-progress refusal");
    assert!(empty > 0, "no fault point recovered to the empty store");
    assert!(complete >= 1, "the past-the-end fault point must load fully");
}

#[test]
fn bulk_load_rejects_wrong_layout_and_double_load() {
    let mut store = RdfStore::new(StoreConfig::with_layout(Layout::Vertical));
    let err = store
        .bulk_load_ntriples(&b"<a> <b> <c> .\n"[..], &BulkLoadOptions::default())
        .unwrap_err();
    assert!(err.to_string().contains("entity layout"), "got: {err}");

    let mut store = RdfStore::entity();
    store.load(&dataset(5)).unwrap();
    let err = store
        .bulk_load_ntriples(&b"<a> <b> <c> .\n"[..], &BulkLoadOptions::default())
        .unwrap_err();
    assert!(err.to_string().contains("empty store"), "got: {err}");
}

#[test]
fn bulk_load_reports_parse_error_with_absolute_line() {
    let mut nt = to_ntriples(&dataset(40));
    let line = nt.lines().count() + 1;
    nt.push_str("this is not a triple\n");
    let mut store = RdfStore::entity();
    let opts = BulkLoadOptions { chunk_bytes: 256, ..BulkLoadOptions::default() };
    let err = store.bulk_load_ntriples(nt.as_bytes(), &opts).unwrap_err();
    let msg = err.to_string();
    assert!(msg.contains(&format!("line {line}")), "expected line {line} in: {msg}");
}

#[test]
fn bulk_load_dedups_exact_duplicates() {
    let nt = "<a> <p> <b> .\n<a> <p> <b> .\n<a> <p> <c> .\n";
    let mut store = RdfStore::entity();
    let stats = store.bulk_load_ntriples(nt.as_bytes(), &BulkLoadOptions::default()).unwrap();
    assert_eq!(stats.raw_triples, 3);
    assert_eq!(stats.triples, 2);
    let sols = store.query("SELECT ?o WHERE { <a> <p> ?o }").unwrap();
    assert_eq!(sols.len(), 2);
}
