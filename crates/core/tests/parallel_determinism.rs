//! Property test for the executor's determinism contract: every query —
//! randomized over the fixture vocabulary plus handcrafted heavy shapes —
//! produces byte-identical `Solutions` at threads ∈ {1, 2, 4, 8} on all
//! three layouts, and a row-budget abort mid-query is equally deterministic
//! (the budget trips iff total charged rows exceed it, which is a sum and
//! therefore independent of morsel interleaving).

use db2rdf::{Layout, RdfStore, StoreConfig};
use rdf::{Term, Triple};

const SUBJECTS: usize = 5000; // > MORSEL_ROWS (4096) rows per table, even entity-layout

fn triple(s: &str, p: &str, o: &str) -> Triple {
    Triple::new(Term::iri(s), Term::iri(p), Term::iri(o))
}

/// ~15k triples: a `knows` ring with stride 7 (so 2-hop joins fan out), a
/// 13-way `member` partition, and one literal per subject. Big enough that
/// scans, partitioned hash-join builds and dedupe all split into multiple
/// morsels in every layout.
fn dataset() -> Vec<Triple> {
    let mut out = Vec::with_capacity(3 * SUBJECTS);
    for i in 0..SUBJECTS {
        out.push(triple(
            &format!("http://s/{i}"),
            "http://p/knows",
            &format!("http://s/{}", (i * 7 + 1) % SUBJECTS),
        ));
        out.push(triple(&format!("http://s/{i}"), "http://p/member", &format!("http://d/{}", i % 13)));
        out.push(Triple::new(
            Term::iri(format!("http://s/{i}")),
            Term::iri("http://p/name"),
            Term::lit(format!("name {}", i % 100)),
        ));
    }
    out
}

fn loaded_store(layout: Layout) -> RdfStore {
    let mut store = RdfStore::new(StoreConfig::with_layout(layout));
    store.load(&dataset()).unwrap();
    store
}

/// Queries chosen to drive every parallel code path: multi-morsel scans,
/// partitioned hash-join builds (> 4096 build rows), DISTINCT dedupe,
/// OPTIONAL null-extension, UNION dedupe, and ORDER BY + LIMIT.
const HEAVY: &[&str] = &[
    // 2-hop join: both factors are the full 5000-row knows table, so the
    // build side crosses the partitioned-build threshold.
    "SELECT ?a ?c WHERE { ?a <http://p/knows> ?b . ?b <http://p/knows> ?c } LIMIT 400",
    // 3-hop with ORDER BY: join output order feeds a stable sort.
    "SELECT ?a ?d WHERE { ?a <http://p/knows> ?b . ?b <http://p/knows> ?c . \
     ?c <http://p/knows> ?d } ORDER BY ?a LIMIT 200",
    // DISTINCT over a many-duplicate projection (100 distinct names).
    "SELECT DISTINCT ?n WHERE { ?s <http://p/name> ?n }",
    // DISTINCT without ORDER BY: first-occurrence order must be invariant.
    "SELECT DISTINCT ?g WHERE { ?s <http://p/member> ?g }",
    // OPTIONAL: every subject matches, but the join is still a left-outer
    // plan over two multi-morsel scans.
    "SELECT ?s ?n WHERE { ?s <http://p/member> <http://d/3> \
     OPTIONAL { ?s <http://p/name> ?n } } ORDER BY ?s",
    // UNION with dedupe across branches.
    "SELECT ?s WHERE { { ?s <http://p/member> <http://d/1> } UNION \
     { ?s <http://p/member> <http://d/2> } }",
    // Join + FILTER residual.
    "SELECT ?a ?b WHERE { ?a <http://p/knows> ?b . ?b <http://p/member> <http://d/5> \
     FILTER (?a != ?b) } ORDER BY ?b LIMIT 300",
    // ASK through the full pipeline.
    "ASK { ?a <http://p/knows> ?b . ?b <http://p/knows> ?a }",
];

/// SplitMix64 — the workspace's offline stand-in for a property-testing
/// crate's generator.
struct Rng(u64);
impl Rng {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
    fn below(&mut self, n: u64) -> u64 {
        self.next() % n
    }
}

/// Random 1–3-pattern SELECT/ASK over the fixture vocabulary. Every
/// pattern shares a variable with the one before it (chain through the
/// object, or star on the same subject after a constant object), so joins
/// stay connected: with 5000 subjects an accidental cross product would
/// materialize 25M rows, which tests machine endurance rather than
/// determinism. The predicates are all functional per subject, so every
/// connected shape is bounded by the 5000-row scans it starts from.
fn random_query(rng: &mut Rng) -> String {
    let preds = ["http://p/knows", "http://p/member", "http://p/name"];
    let n = 1 + rng.below(3);
    let mut patterns = Vec::new();
    // Pivot variable the next pattern must reuse as its subject.
    let mut pivot = "?v0".to_string();
    for t in 0..n {
        let p = preds[rng.below(preds.len() as u64) as usize];
        // A constant object keeps the pivot (star shape); a variable object
        // becomes the new pivot (chain shape).
        let obj_const = t + 1 < n && rng.below(4) == 0;
        let subj = if t == 0 && !obj_const && rng.below(6) == 0 {
            format!("<http://s/{}>", rng.below(SUBJECTS as u64 + 10))
        } else {
            pivot.clone()
        };
        let obj = if obj_const {
            match p {
                "http://p/member" => format!("<http://d/{}>", rng.below(15)),
                _ => format!("<http://s/{}>", rng.below(SUBJECTS as u64 + 10)),
            }
        } else {
            let v = format!("?o{t}");
            pivot = v.clone();
            v
        };
        patterns.push(format!("{subj} <{p}> {obj}"));
    }
    let body = patterns.join(" . ");
    match rng.below(4) {
        0 => format!("ASK {{ {body} }}"),
        1 => format!("SELECT DISTINCT * WHERE {{ {body} }} LIMIT 500"),
        2 => format!("SELECT * WHERE {{ {body} }} LIMIT {}", 1 + rng.below(400)),
        _ => format!("SELECT * WHERE {{ {body} }} LIMIT 1000"),
    }
}

#[test]
fn solutions_are_byte_identical_at_every_thread_count() {
    for layout in [Layout::Entity, Layout::TripleStore, Layout::Vertical] {
        // One store per layout, re-queried at each width: DPH column
        // assignment is deterministic within a store, so only the executor's
        // thread count varies between passes.
        let mut store = loaded_store(layout);
        let mut rng = Rng(0xDE7E_2212 ^ layout as u64);
        let mut corpus: Vec<String> = HEAVY.iter().map(|q| q.to_string()).collect();
        corpus.extend((0..40).map(|_| random_query(&mut rng)));

        store.set_threads(Some(1));
        let baseline: Vec<_> = corpus
            .iter()
            .map(|q| store.query(q).unwrap_or_else(|e| panic!("{layout:?} baseline {q}: {e}")))
            .collect();

        for threads in [2usize, 4, 8] {
            store.set_threads(Some(threads));
            for (q, expected) in corpus.iter().zip(&baseline) {
                let got = store
                    .query(q)
                    .unwrap_or_else(|e| panic!("{layout:?} threads={threads} {q}: {e}"));
                assert_eq!(&got, expected, "{layout:?} threads={threads}: rows drifted for {q}");
                assert_eq!(
                    got.to_json(),
                    expected.to_json(),
                    "{layout:?} threads={threads}: serialized bytes drifted for {q}"
                );
            }
        }
    }
}

/// A row-budget abort mid-query must be just as deterministic as success:
/// whether the budget trips depends only on the total rows charged (a sum,
/// invariant under morsel interleaving), so every thread count agrees on
/// Ok-vs-Err — and on the value when Ok.
#[test]
fn row_budget_abort_is_thread_count_invariant() {
    for layout in [Layout::Entity, Layout::TripleStore, Layout::Vertical] {
        let mut store = loaded_store(layout);
        // Tight enough that the 2-hop join and full scans trip mid-query,
        // loose enough that small selective queries still succeed.
        store.set_row_budget(Some(6000));
        let queries = [
            "SELECT ?a ?c WHERE { ?a <http://p/knows> ?b . ?b <http://p/knows> ?c }",
            "SELECT DISTINCT ?n WHERE { ?s <http://p/name> ?n }",
            "SELECT ?o WHERE { <http://s/17> <http://p/knows> ?o }",
            "ASK { ?s <http://p/member> <http://d/99> }",
        ];

        store.set_threads(Some(1));
        let baseline: Vec<_> = queries.iter().map(|q| store.query(q)).collect();
        assert!(
            baseline.iter().any(|r| r.is_err()),
            "{layout:?}: fixture sanity — some query must trip the budget"
        );
        assert!(
            baseline.iter().any(|r| r.is_ok()),
            "{layout:?}: fixture sanity — some query must fit the budget"
        );

        for threads in [2usize, 4, 8] {
            store.set_threads(Some(threads));
            for (q, expected) in queries.iter().zip(&baseline) {
                let got = store.query(q);
                match (&got, expected) {
                    (Ok(g), Ok(e)) => {
                        assert_eq!(g, e, "{layout:?} threads={threads}: {q}")
                    }
                    (Err(g), Err(e)) => {
                        assert_eq!(g.is_timeout(), e.is_timeout(), "{layout:?} threads={threads}: {q}");
                        assert!(g.is_timeout(), "{layout:?} threads={threads}: wrong error for {q}: {g}");
                    }
                    _ => panic!(
                        "{layout:?} threads={threads}: Ok/Err flipped for {q}: \
                         got {got:?} vs baseline {expected:?}"
                    ),
                }
            }
        }
    }
}
