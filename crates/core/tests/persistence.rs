//! Store-level durability: a bulk-loaded DB2RDF dataset — all four tables,
//! spill state, multi-valued lids, statistics, and the load report — must
//! survive a restart, for every layout, with and without checkpoints.

use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};

use db2rdf::{Layout, RdfStore, StoreConfig};
use rdf::{Term, Triple};

static DIR_SEQ: AtomicUsize = AtomicUsize::new(0);

fn fresh_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "db2rdf-persist-{}-{}-{name}",
        std::process::id(),
        DIR_SEQ.fetch_add(1, Ordering::SeqCst)
    ));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn t(s: &str, p: &str, o: &str) -> Triple {
    Triple::new(Term::iri(s), Term::iri(p), Term::lit(o))
}

/// The paper's Fig. 1(a) sample: multi-valued predicates (industry), shared
/// objects (Google, IBM) and enough predicates to exercise the coloring.
fn sample() -> Vec<Triple> {
    vec![
        t("Flint", "born", "1850"),
        t("Flint", "died", "1934"),
        t("Flint", "founder", "IBM"),
        t("Page", "born", "1973"),
        t("Page", "founder", "Google"),
        t("Page", "board", "Google"),
        t("Page", "home", "Palo Alto"),
        t("Android", "developer", "Google"),
        t("Android", "version", "4.1"),
        t("Google", "industry", "Software"),
        t("Google", "industry", "Internet"),
        t("IBM", "industry", "Software"),
        t("IBM", "industry", "Hardware"),
        t("IBM", "employees", "433362"),
    ]
}

const Q_FOUNDER: &str = "SELECT ?who WHERE { ?who <founder> ?what }";
const Q_INDUSTRY: &str = "SELECT ?co WHERE { ?co <industry> 'Software' }";

fn answers(store: &RdfStore, q: &str) -> Vec<String> {
    let sols = store.query(q).unwrap();
    let mut rows: Vec<String> = Vec::new();
    for i in 0..sols.len() {
        let mut cells: Vec<String> = Vec::new();
        for var in ["who", "what", "co", "x"] {
            if let Some(term) = sols.get(i, var) {
                cells.push(format!("{var}={term:?}"));
            }
        }
        rows.push(cells.join(" "));
    }
    rows.sort();
    rows
}

#[test]
fn entity_layout_survives_crash_without_checkpoint() {
    let dir = fresh_dir("entity-crash");
    let cfg = StoreConfig::default();
    let expected_founder;
    let expected_industry;
    let expected_report;
    {
        let mut store = RdfStore::open(&dir, cfg.clone()).unwrap();
        store.load(&sample()).unwrap();
        expected_founder = answers(&store, Q_FOUNDER);
        expected_industry = answers(&store, Q_INDUSTRY);
        expected_report = store.load_report().clone();
        drop(store); // crash: no close(), recovery replays the WAL
    }
    let store = RdfStore::open(&dir, cfg).unwrap();
    assert_eq!(answers(&store, Q_FOUNDER), expected_founder);
    assert_eq!(answers(&store, Q_INDUSTRY), expected_industry);
    let report = store.load_report();
    assert_eq!(report.triples, expected_report.triples);
    assert_eq!(report.dph_rows, expected_report.dph_rows);
    assert_eq!(report.dph_cols, expected_report.dph_cols);
    // Statistics drive the optimizer; they must round-trip bit-exactly.
    let stats = store.statistics();
    assert_eq!(stats.total_triples, 14);
    assert_eq!(stats.predicate_count("<industry>"), 4.0);
}

#[test]
fn entity_layout_survives_close_and_checkpoint() {
    let dir = fresh_dir("entity-ckpt");
    let cfg = StoreConfig::default();
    let expected;
    {
        let mut store = RdfStore::open(&dir, cfg.clone()).unwrap();
        store.load(&sample()).unwrap();
        store.checkpoint().unwrap();
        expected = answers(&store, Q_INDUSTRY);
        store.close().unwrap();
    }
    let store = RdfStore::open(&dir, cfg).unwrap();
    assert_eq!(answers(&store, Q_INDUSTRY), expected);
}

#[test]
fn incremental_inserts_and_deletes_survive_crash() {
    let dir = fresh_dir("entity-incr");
    let cfg = StoreConfig::default();
    let expected;
    {
        let mut store = RdfStore::open(&dir, cfg.clone()).unwrap();
        store.load(&sample()).unwrap();
        // Promotion to multi-valued goes through update_cell — the WAL op
        // the incremental path exercises beyond plain inserts.
        assert!(store.insert(&t("Page", "founder", "Alphabet")).unwrap());
        assert!(store.insert(&t("Bell", "founder", "AT&T")).unwrap());
        assert!(!store.insert(&t("Bell", "founder", "AT&T")).unwrap());
        assert!(store.delete(&t("Flint", "founder", "IBM")).unwrap());
        expected = answers(&store, Q_FOUNDER);
        drop(store);
    }
    let mut store = RdfStore::open(&dir, cfg).unwrap();
    assert_eq!(answers(&store, Q_FOUNDER), expected);
    assert_eq!(store.load_report().triples, 15); // 14 + 2 - 1
    // The restored layout still knows founder is multi-valued: inserting a
    // third founder for Page must extend the same DS list, not corrupt it.
    assert!(store.insert(&t("Page", "founder", "OtherCo")).unwrap());
    let sols = store.query("SELECT ?x WHERE { <Page> <founder> ?x }").unwrap();
    assert_eq!(sols.len(), 3);
}

#[test]
fn triple_store_layout_survives_crash() {
    let dir = fresh_dir("triples-crash");
    let cfg = StoreConfig::with_layout(Layout::TripleStore);
    let expected;
    {
        let mut store = RdfStore::open(&dir, cfg.clone()).unwrap();
        store.load(&sample()).unwrap();
        store.insert(&t("Bell", "founder", "AT&T")).unwrap();
        expected = answers(&store, Q_FOUNDER);
        drop(store);
    }
    let store = RdfStore::open(&dir, cfg).unwrap();
    assert_eq!(answers(&store, Q_FOUNDER), expected);
}

#[test]
fn vertical_layout_survives_crash() {
    let dir = fresh_dir("vertical-crash");
    let cfg = StoreConfig::with_layout(Layout::Vertical);
    let expected;
    {
        let mut store = RdfStore::open(&dir, cfg.clone()).unwrap();
        store.load(&sample()).unwrap();
        expected = answers(&store, Q_INDUSTRY);
        drop(store);
    }
    let mut store = RdfStore::open(&dir, cfg).unwrap();
    assert_eq!(answers(&store, Q_INDUSTRY), expected);
    // The predicate→table map was restored: inserting a known predicate
    // reuses its table instead of trying to re-create it.
    store.insert(&t("NewCo", "industry", "Software")).unwrap();
    let sols = store.query(Q_INDUSTRY).unwrap();
    assert_eq!(sols.len(), 3);
}

#[test]
fn fresh_directory_is_an_empty_store() {
    let dir = fresh_dir("fresh");
    let store = RdfStore::open(&dir, StoreConfig::default()).unwrap();
    assert!(store.query(Q_FOUNDER).is_err(), "unloaded store must refuse queries");
    drop(store);
    // Reopening the still-empty directory works too.
    let mut store = RdfStore::open(&dir, StoreConfig::default()).unwrap();
    store.load(&sample()).unwrap();
    assert_eq!(answers(&store, Q_FOUNDER).len(), 2);
}

#[test]
fn layout_mismatch_is_rejected() {
    let dir = fresh_dir("mismatch");
    {
        let mut store = RdfStore::open(&dir, StoreConfig::default()).unwrap();
        store.load(&sample()).unwrap();
    }
    let err = match RdfStore::open(&dir, StoreConfig::with_layout(Layout::Vertical)) {
        Ok(_) => panic!("layout mismatch must be rejected"),
        Err(e) => e,
    };
    assert!(err.to_string().contains("layout"), "got: {err}");
}

/// Dictionary/data atomicity: truncate the WAL at *every* byte offset and
/// reopen. Whatever prefix survives, the store must recover to exactly one
/// committed state (empty, loaded, or loaded+insert), and every positive
/// integer ID stored in the entity tables must resolve through the restored
/// dictionary to the same string it meant before the crash. This is the
/// recovery invariant of the dictionary encoding: because `sys_dict` rows
/// commit in the same WAL batch as the data that references them, no
/// truncation point can yield an ID that is unresolvable or remapped.
#[test]
fn dictionary_and_data_commit_atomically_under_wal_truncation() {
    let dir = fresh_dir("dict-torn");
    let after_load;
    let after_insert;
    let reference: std::collections::HashMap<i64, String>;
    {
        let mut store = RdfStore::open(&dir, StoreConfig::default()).unwrap();
        store.load(&sample()).unwrap();
        after_load = answers(&store, Q_FOUNDER);
        // The insert interns a brand-new entity, predicate target and value
        // in a second WAL batch, so truncation points fall both between and
        // inside dictionary-extending batches.
        assert!(store.insert(&t("Bell", "founder", "AT&T")).unwrap());
        after_insert = answers(&store, Q_FOUNDER);
        let dict = store.dictionary().read();
        reference = dict.entries_from(0).map(|(id, term)| (id, term.to_string())).collect();
        drop(dict);
        drop(store); // crash: no close()
    }
    let wal = std::fs::read(dir.join("wal.0")).unwrap();
    assert!(wal.len() > 100, "WAL unexpectedly small: {} bytes", wal.len());

    let scratch = fresh_dir("dict-torn-scratch");
    for cut in 0..=wal.len() {
        let _ = std::fs::remove_dir_all(&scratch);
        std::fs::create_dir_all(&scratch).unwrap();
        std::fs::write(scratch.join("wal.0"), &wal[..cut]).unwrap();
        let store = RdfStore::open(&scratch, StoreConfig::default())
            .unwrap_or_else(|e| panic!("open failed at cut {cut}/{}: {e}", wal.len()));

        // 1. The store is in exactly one committed prefix state.
        if store.query(Q_FOUNDER).is_ok() {
            let got = answers(&store, Q_FOUNDER);
            assert!(
                got == after_load || got == after_insert,
                "cut {cut}: recovered to an uncommitted state {got:?}"
            );
        }

        // 2. Every positive ID in the entity tables resolves through the
        //    restored dictionary to its pre-crash string.
        let dict = store.dictionary().read();
        for table in ["dph", "ds", "rph", "rs"] {
            let Some(tbl) = store.database().table(table) else { continue };
            for rid in 0..tbl.row_count() as u32 {
                for v in tbl.row_values(rid) {
                    if let relstore::Value::Int(id) = v {
                        if id > 0 {
                            let resolved = dict.resolve(id).unwrap_or_else(|| {
                                panic!("cut {cut}: {table} holds unresolvable id {id}")
                            });
                            assert_eq!(
                                Some(resolved.as_str()),
                                reference.get(&id).map(String::as_str),
                                "cut {cut}: id {id} remapped after recovery"
                            );
                        }
                    }
                }
            }
        }
    }
}

#[test]
fn crash_mid_load_recovers_to_empty() {
    // The bulk load commits as one WAL transaction; a WAL that only carries
    // part of it (torn tail) must recover to the pre-load state.
    let dir = fresh_dir("torn-load");
    {
        let mut store = RdfStore::open(&dir, StoreConfig::default()).unwrap();
        store.load(&sample()).unwrap();
        drop(store);
    }
    // Tear the tail of the load's single frame.
    let wal = dir.join("wal.0");
    let bytes = std::fs::read(&wal).unwrap();
    std::fs::write(&wal, &bytes[..bytes.len() - 7]).unwrap();
    let store = RdfStore::open(&dir, StoreConfig::default()).unwrap();
    assert!(store.query(Q_FOUNDER).is_err(), "half-loaded store must read as empty");
}
