//! The epoch-invalidated plan cache, end to end: hit/miss/invalidation
//! counters through the public store API, correctness across mutations
//! (a cached plan must never replay against a store whose dictionary or
//! statistics have moved), cold-vs-warm SQL equivalence as a property
//! test over generated queries, a writer racing cached readers through
//! `SharedStore`, and the zero-triple-pattern trivial plans.

use db2rdf::{Layout, RdfStore, SharedStore, StoreConfig};
use rdf::{Term, Triple};

fn triple(s: &str, p: &str, o: &str) -> Triple {
    Triple::new(Term::iri(s), Term::iri(p), Term::iri(o))
}

/// A small fixed dataset: 10 subjects × 3 predicates.
fn dataset() -> Vec<Triple> {
    let mut out = Vec::new();
    for i in 0..10 {
        out.push(triple(&format!("http://s/{i}"), "http://p/knows", &format!("http://s/{}", (i + 1) % 10)));
        out.push(triple(&format!("http://s/{i}"), "http://p/member", &format!("http://d/{}", i % 3)));
        out.push(Triple::new(
            Term::iri(format!("http://s/{i}")),
            Term::iri("http://p/name"),
            Term::lit(format!("name {i}")),
        ));
    }
    out
}

fn loaded_store(cfg: StoreConfig) -> RdfStore {
    let mut store = RdfStore::new(cfg);
    store.load(&dataset()).unwrap();
    store
}

const Q_KNOWS: &str = "SELECT ?s ?o WHERE { ?s <http://p/knows> ?o }";

#[test]
fn warm_queries_hit_the_cache() {
    let store = loaded_store(StoreConfig::default());
    assert_eq!(store.query(Q_KNOWS).unwrap().len(), 10);
    assert_eq!(store.query(Q_KNOWS).unwrap().len(), 10);
    assert_eq!(store.query(&format!("  {Q_KNOWS}\n")).unwrap().len(), 10, "normalized key");
    let s = store.plan_cache_stats().expect("cache enabled by default");
    assert_eq!(s.hits, 2, "{s:?}");
    assert_eq!(s.misses, 1, "{s:?}");
    assert_eq!(s.entries, 1, "{s:?}");
    assert_eq!(s.invalidations, 0, "{s:?}");
}

/// Scoped invalidation: the epoch — and with it every cached plan — moves
/// only when a mutation could actually change a plan. Loads and inserts
/// that mint dictionary IDs bump it; duplicate inserts and deletes (dict is
/// append-only, layouts never shrink, generated SQL is data-independent)
/// must not.
#[test]
fn epoch_moves_only_when_plans_could_change() {
    let mut store = RdfStore::new(StoreConfig::default());
    let e0 = store.epoch();
    store.load(&dataset()).unwrap();
    let e1 = store.epoch();
    assert!(e1 > e0, "load always invalidates");

    // New term: the constant <http://fresh/x> gets a dictionary ID a stale
    // plan would still translate to NULL.
    store.insert(&triple("http://s/0", "http://p/knows", "http://fresh/x")).unwrap();
    let e2 = store.epoch();
    assert!(e2 > e1, "dictionary growth invalidates");

    // Duplicate insert: nothing changes anywhere.
    assert!(!store.insert(&triple("http://s/0", "http://p/knows", "http://fresh/x")).unwrap());
    assert_eq!(store.epoch(), e2, "no-op insert must not invalidate");

    // Deletes never invalidate: no dictionary entry or layout column is
    // ever reclaimed, so every cached plan replays correctly.
    assert!(store.delete(&triple("http://s/0", "http://p/knows", "http://fresh/x")).unwrap());
    assert_eq!(store.epoch(), e2, "delete must not invalidate");
    assert!(!store.delete(&triple("http://no/such", "http://p/knows", "http://no/where")).unwrap());
    assert_eq!(store.epoch(), e2, "no-op delete must not invalidate");

    let s = store.plan_cache_stats().unwrap();
    assert_eq!(s.invalidations_avoided, 3, "{s:?}");
}

/// The acceptance-criterion scenario: an insert between two identical
/// queries must invalidate the cached plan. The query's constant is
/// unknown at first planning (it translates to NULL), so a stale replay
/// could never find the row the insert creates — only a fresh plan that
/// resolves the newly minted dictionary ID can.
#[test]
fn insert_between_identical_queries_invalidates() {
    let mut store = loaded_store(StoreConfig::default());
    let q = "SELECT ?s WHERE { ?s <http://p/knows> <http://fresh/target> }";
    assert_eq!(store.query(q).unwrap().len(), 0);
    assert_eq!(store.query(q).unwrap().len(), 0, "second run is a cache hit");
    let before = store.plan_cache_stats().unwrap();
    assert_eq!(before.hits, 1, "{before:?}");

    store.insert(&triple("http://s/3", "http://p/knows", "http://fresh/target")).unwrap();
    let sols = store.query(q).unwrap();
    assert_eq!(sols.len(), 1, "stale plan would still see NULL for the constant");
    assert_eq!(sols.get(0, "s"), Some(&Term::iri("http://s/3")));

    let after = store.plan_cache_stats().unwrap();
    assert_eq!(after.invalidations, before.invalidations + 1, "{after:?}");
    // And the refreshed plan is itself cached again.
    assert_eq!(store.query(q).unwrap().len(), 1);
    assert_eq!(store.plan_cache_stats().unwrap().hits, before.hits + 1);
}

/// The scoped-invalidation satellite's acceptance scenario: a mutation that
/// provably cannot change any plan — a delete, or a duplicate insert —
/// leaves the warm cache intact, and the surviving plan still answers
/// correctly because the generated SQL is data-independent.
#[test]
fn warm_hits_survive_deletes_and_noop_inserts() {
    let mut store = loaded_store(StoreConfig::default());
    let q = "SELECT ?o WHERE { <http://s/0> <http://p/knows> ?o }";
    assert_eq!(store.query(q).unwrap().len(), 1); // miss: plan + cache
    assert_eq!(store.query(q).unwrap().len(), 1); // warm hit
    let before = store.plan_cache_stats().unwrap();
    assert_eq!((before.hits, before.invalidations), (1, 0), "{before:?}");

    // A duplicate insert and a real delete: neither may flush the cache.
    assert!(!store.insert(&triple("http://s/0", "http://p/knows", "http://s/1")).unwrap());
    assert!(store.delete(&triple("http://s/0", "http://p/knows", "http://s/1")).unwrap());

    // The surviving plan replays against the mutated data — correctly.
    assert_eq!(store.query(q).unwrap().len(), 0, "delete is visible through the cached plan");

    let after = store.plan_cache_stats().unwrap();
    assert_eq!(after.hits, before.hits + 1, "warm hit survived the mutations: {after:?}");
    assert_eq!(after.invalidations, 0, "{after:?}");
    assert_eq!(after.invalidations_avoided, 2, "{after:?}");
    assert_eq!(after.entries, before.entries, "{after:?}");
}

#[test]
fn disabling_and_resizing_the_cache() {
    let mut store = loaded_store(StoreConfig { plan_cache_entries: 0, ..Default::default() });
    assert!(store.plan_cache_stats().is_none());
    assert_eq!(store.query(Q_KNOWS).unwrap().len(), 10, "uncached queries still work");

    store.set_plan_cache(2); // below the shard threshold: exact LRU
    for q in [
        "SELECT ?s WHERE { ?s <http://p/knows> ?o }",
        "SELECT ?s WHERE { ?s <http://p/member> ?o }",
        "SELECT ?s WHERE { ?s <http://p/name> ?o }",
    ] {
        store.query(q).unwrap();
    }
    let s = store.plan_cache_stats().unwrap();
    assert_eq!(s.entries, 2, "{s:?}");
    assert_eq!(s.evictions, 1, "{s:?}");
    assert_eq!(s.capacity, 2, "{s:?}");
}

// -- property test: cached and cold plans emit byte-identical SQL ----------

/// SplitMix64 — the workspace's offline stand-in for a property-testing
/// crate's generator.
struct Rng(u64);
impl Rng {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
    fn below(&mut self, n: u64) -> u64 {
        self.next() % n
    }
}

/// Generate a random SELECT/ASK over the fixture vocabulary: 1–3 triple
/// patterns mixing variables with known and unknown constants, optional
/// DISTINCT/LIMIT — plus the analytic forms (aggregate projections with
/// GROUP BY/HAVING, BIND, inline VALUES, subqueries), so the cold-vs-warm
/// byte-identity property covers the whole translatable surface.
fn random_query(rng: &mut Rng) -> String {
    let preds = ["http://p/knows", "http://p/member", "http://p/name"];
    let n = 1 + rng.below(3);
    let mut patterns = Vec::new();
    for t in 0..n {
        let p = preds[rng.below(preds.len() as u64) as usize];
        let subj = match rng.below(3) {
            0 => format!("?v{}", rng.below(n)),
            1 => format!("<http://s/{}>", rng.below(12)), // 10/11 may be unknown
            _ => format!("?v{t}"),
        };
        let obj = match rng.below(3) {
            0 => format!("?w{}", rng.below(n)),
            1 => format!("<http://s/{}>", rng.below(12)),
            _ => format!("?w{t}"),
        };
        patterns.push(format!("{subj} <{p}> {obj}"));
    }
    let body = patterns.join(" . ");
    match rng.below(9) {
        0 => format!("ASK {{ {body} }}"),
        1 => format!("SELECT DISTINCT * WHERE {{ {body} }}"),
        2 => format!("SELECT * WHERE {{ {body} }} LIMIT {}", 1 + rng.below(20)),
        3 => format!("SELECT ?v0 (COUNT(?w0) AS ?n) WHERE {{ {body} }} GROUP BY ?v0"),
        4 => format!(
            "SELECT (SUM(?w0) AS ?t) WHERE {{ {body} }} HAVING(COUNT(*) > {})",
            rng.below(4)
        ),
        5 => format!("SELECT * WHERE {{ {body} BIND(?w0 + {} AS ?b) }}", 1 + rng.below(5)),
        6 => format!(
            "SELECT * WHERE {{ {body} VALUES ?v0 {{ <http://s/{}> <http://s/{}> }} }}",
            rng.below(12),
            rng.below(12)
        ),
        7 => format!(
            "SELECT * WHERE {{ {body} {{ SELECT ?v0 WHERE {{ ?v0 <http://p/knows> ?sq }} }} }}"
        ),
        _ => format!("SELECT * WHERE {{ {body} }}"),
    }
}

#[test]
fn cached_and_cold_plans_emit_byte_identical_sql() {
    for layout in [Layout::Entity, Layout::TripleStore, Layout::Vertical] {
        // One store, three passes over the same corpus: column assignment
        // inside a store is deterministic, but two separately loaded
        // stores may hash predicates to different DPH columns — so cold
        // and warm plans must come from the same instance.
        let mut store = loaded_store(StoreConfig {
            plan_cache_entries: 0,
            ..StoreConfig::with_layout(layout)
        });
        let mut rng = Rng(0xD82_5DF ^ layout as u64);
        let corpus: Vec<String> = (0..60).map(|_| random_query(&mut rng)).collect();
        let cold: Vec<String> = corpus
            .iter()
            .map(|q| store.translate(q).unwrap_or_else(|e| panic!("{q}: {e}")))
            .collect();
        store.set_plan_cache(corpus.len());
        for (q, cold_sql) in corpus.iter().zip(&cold) {
            let miss = store.translate(q).expect("warm miss");
            let hit = store.translate(q).expect("warm hit");
            assert_eq!(cold_sql, &miss, "cold vs first warm differ for {q}");
            assert_eq!(miss, hit, "cache hit returned different SQL for {q}");
        }
        let s = store.plan_cache_stats().unwrap();
        assert!(s.hits >= 60, "{s:?}");
    }
}

/// Queries that differ only in an analytic clause — HAVING present or not,
/// different VALUES rows, a different BIND expression — must occupy
/// distinct cache entries and keep returning their own results when warm.
/// (The cache is keyed on normalized query text; this pins that the
/// normalization never collapses distinct analytic forms.)
#[test]
fn analytic_clauses_key_the_cache_distinctly() {
    let store = loaded_store(StoreConfig::default());
    // membership: d/0 has 4 subjects, d/1 and d/2 have 3 each.
    let variants: [(&str, usize); 6] = [
        ("SELECT ?d (COUNT(?s) AS ?n) WHERE { ?s <http://p/member> ?d } GROUP BY ?d", 3),
        (
            "SELECT ?d (COUNT(?s) AS ?n) WHERE { ?s <http://p/member> ?d } GROUP BY ?d \
             HAVING(COUNT(?s) > 3)",
            1,
        ),
        ("SELECT ?s WHERE { ?s <http://p/member> ?d . VALUES ?d { <http://d/0> } }", 4),
        (
            "SELECT ?s WHERE { ?s <http://p/member> ?d . VALUES ?d { <http://d/0> <http://d/1> } }",
            7,
        ),
        ("SELECT ?s ?b WHERE { ?s <http://p/member> ?d . BIND(1 AS ?b) }", 10),
        ("SELECT ?s ?b WHERE { ?s <http://p/member> ?d . BIND(2 AS ?b) }", 10),
    ];
    for (q, rows) in &variants {
        assert_eq!(store.query(q).unwrap().len(), *rows, "cold: {q}");
    }
    for (q, rows) in &variants {
        assert_eq!(store.query(q).unwrap().len(), *rows, "warm: {q}");
    }
    let s = store.plan_cache_stats().unwrap();
    assert_eq!(s.entries, variants.len(), "one entry per distinct form: {s:?}");
    assert_eq!(s.hits, variants.len() as u64, "{s:?}");
    assert_eq!(s.misses, variants.len() as u64, "{s:?}");

    // And the warm BIND plans still produce their own constants.
    let b1 = store.query(variants[4].0).unwrap();
    let b2 = store.query(variants[5].0).unwrap();
    assert_eq!(b1.get(0, "b"), Some(&Term::int_lit(1)));
    assert_eq!(b2.get(0, "b"), Some(&Term::int_lit(2)));
}

// -- concurrency: a writer races cached readers through SharedStore --------

/// Readers repeatedly evaluate queries whose constants the writer mints
/// *during* the race. Invariants: a query may lag (0 rows before the
/// insert commits) but a returned row must bind exactly the subject the
/// writer inserted (a stale plan could only produce 0 rows — or garbage if
/// an ID were ever remapped); after the writer joins, every query must see
/// its row, proving no stale plan outlived the epoch bumps.
#[test]
fn shared_store_writer_races_cached_readers() {
    const TARGETS: usize = 16;
    let shared = SharedStore::new(loaded_store(StoreConfig::default()));
    let query_for = |i: usize| {
        format!("SELECT ?s WHERE {{ ?s <http://p/knows> <http://race/{i}> }}")
    };

    // Prime the cache with every query while its constant is unknown.
    for i in 0..TARGETS {
        assert_eq!(shared.query(&query_for(i)).unwrap().len(), 0);
    }

    std::thread::scope(|scope| {
        let writer = shared.clone();
        scope.spawn(move || {
            for i in 0..TARGETS {
                writer
                    .insert(&triple(
                        &format!("http://writer/{i}"),
                        "http://p/knows",
                        &format!("http://race/{i}"),
                    ))
                    .unwrap();
            }
        });
        for r in 0..4 {
            let reader = shared.clone();
            scope.spawn(move || {
                for k in 0..60 {
                    let i = (r + k) % TARGETS;
                    let sols = reader.query(&query_for(i)).unwrap();
                    assert!(sols.len() <= 1, "query {i} returned {} rows", sols.len());
                    if sols.len() == 1 {
                        assert_eq!(
                            sols.get(0, "s"),
                            Some(&Term::iri(format!("http://writer/{i}"))),
                            "row for query {i} bound a foreign subject"
                        );
                    }
                }
            });
        }
    });

    // Quiescent: every plan cached under a pre-insert epoch must have been
    // invalidated, so every query now resolves its freshly minted ID.
    for i in 0..TARGETS {
        let sols = shared.query(&query_for(i)).unwrap();
        assert_eq!(sols.len(), 1, "query {i} still served by a stale plan");
        assert_eq!(sols.get(0, "s"), Some(&Term::iri(format!("http://writer/{i}"))));
    }
    let stats = shared.plan_cache_stats().unwrap();
    assert!(stats.invalidations >= TARGETS as u64, "{stats:?}");
}

// -- zero-triple-pattern queries -------------------------------------------

#[test]
fn empty_group_patterns_have_fixed_answers() {
    let store = loaded_store(StoreConfig::default());

    let ask = store.query("ASK {}").unwrap();
    assert_eq!(ask.boolean, Some(true));

    let all = store.query("SELECT * WHERE {}").unwrap();
    assert_eq!(all.len(), 1, "the unit solution μ0");
    assert!(all.vars.is_empty());

    let named = store.query("SELECT ?x WHERE { }").unwrap();
    assert_eq!(named.len(), 1);
    assert_eq!(named.vars, vec!["x".to_string()]);
    assert_eq!(named.get(0, "x"), None, "projected variable is unbound");

    // Solution modifiers still apply to the unit row.
    assert_eq!(store.query("SELECT * WHERE {} LIMIT 0").unwrap().len(), 0);
    assert_eq!(store.query("SELECT * WHERE {} OFFSET 1").unwrap().len(), 0);
    assert_eq!(store.query("SELECT * WHERE {} LIMIT 5").unwrap().len(), 1);

    // There is no SQL to show for a fixed answer; translate says so
    // instead of pretending the query is invalid.
    let err = store.translate("ASK {}").unwrap_err();
    assert!(err.to_string().contains("fixed by the algebra"), "{err}");
    let explain = store.explain("ASK {}").unwrap();
    assert!(explain.exec_tree.contains("Trivial"), "{}", explain.exec_tree);
}
