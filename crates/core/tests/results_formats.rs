//! W3C conformance tests for the SPARQL 1.1 Results serializers
//! (`Solutions::to_json` / `Solutions::to_tsv`): escaping of quotes,
//! newlines and unicode, typed and language-tagged literals, blank-node
//! labels, unbound variables, and empty result sets.

use db2rdf::Solutions;
use rdf::Term;

/// Build a Solutions value directly (the serializers are pure functions of
/// the decoded rows; the end-to-end path is covered by the server tests).
fn sols(vars: &[&str], rows: Vec<Vec<Option<Term>>>) -> Solutions {
    Solutions { vars: vars.iter().map(|v| v.to_string()).collect(), rows, boolean: None }
}

#[test]
fn json_select_shape() {
    let s = sols(
        &["x", "y"],
        vec![vec![Some(Term::iri("http://example.org/a")), Some(Term::lit("hello"))]],
    );
    assert_eq!(
        s.to_json(),
        "{\"head\":{\"vars\":[\"x\",\"y\"]},\"results\":{\"bindings\":[\
         {\"x\":{\"type\":\"uri\",\"value\":\"http://example.org/a\"},\
         \"y\":{\"type\":\"literal\",\"value\":\"hello\"}}]}}"
    );
}

#[test]
fn json_ask_shape() {
    assert_eq!(Solutions::from_ask(true).to_json(), "{\"head\":{},\"boolean\":true}");
    assert_eq!(Solutions::from_ask(false).to_json(), "{\"head\":{},\"boolean\":false}");
}

#[test]
fn json_empty_result_set() {
    let s = sols(&["x"], vec![]);
    assert_eq!(
        s.to_json(),
        "{\"head\":{\"vars\":[\"x\"]},\"results\":{\"bindings\":[]}}"
    );
}

#[test]
fn json_escapes_quotes_newlines_controls() {
    let s = sols(&["v"], vec![vec![Some(Term::lit("a\"b\\c\nd\re\tf\u{01}g"))]]);
    let json = s.to_json();
    assert!(
        json.contains("\"value\":\"a\\\"b\\\\c\\nd\\re\\tf\\u0001g\""),
        "escaped literal missing: {json}"
    );
    // The serialized text must itself contain no raw control characters.
    assert!(!json.chars().any(|c| (c as u32) < 0x20), "raw control char in {json}");
}

#[test]
fn json_unicode_passes_through() {
    // Non-ASCII needs no escaping in JSON — UTF-8 bytes pass through.
    let s = sols(&["v"], vec![vec![Some(Term::lit("héllo wörld → 日本語"))]]);
    assert!(s.to_json().contains("\"value\":\"héllo wörld → 日本語\""));
}

#[test]
fn json_typed_and_lang_literals() {
    let s = sols(
        &["a", "b"],
        vec![vec![
            Some(Term::typed_lit("42", "http://www.w3.org/2001/XMLSchema#integer")),
            Some(Term::lang_lit("chat", "fr")),
        ]],
    );
    let json = s.to_json();
    assert!(json.contains(
        "{\"type\":\"literal\",\"value\":\"42\",\
         \"datatype\":\"http://www.w3.org/2001/XMLSchema#integer\"}"
    ));
    assert!(json.contains("{\"type\":\"literal\",\"value\":\"chat\",\"xml:lang\":\"fr\"}"));
}

#[test]
fn json_blank_nodes_and_unbound() {
    let s = sols(
        &["x", "y"],
        vec![
            vec![Some(Term::blank("b0")), None],
            vec![None, Some(Term::blank("node42"))],
        ],
    );
    let json = s.to_json();
    // Unbound variables are omitted from their binding objects.
    assert!(json.contains("[{\"x\":{\"type\":\"bnode\",\"value\":\"b0\"}},"));
    assert!(json.contains("{\"y\":{\"type\":\"bnode\",\"value\":\"node42\"}}]"));
}

#[test]
fn tsv_select_shape() {
    let s = sols(
        &["x", "name"],
        vec![
            vec![Some(Term::iri("http://example.org/a")), Some(Term::lit("Alice"))],
            vec![Some(Term::blank("b1")), None],
        ],
    );
    assert_eq!(
        s.to_tsv(),
        "?x\t?name\n<http://example.org/a>\t\"Alice\"\n_:b1\t\n"
    );
}

#[test]
fn tsv_empty_result_set_keeps_header() {
    assert_eq!(sols(&["x", "y"], vec![]).to_tsv(), "?x\t?y\n");
}

#[test]
fn tsv_escapes_tabs_newlines_quotes() {
    let s = sols(&["v"], vec![vec![Some(Term::lit("col1\tcol2\nline2 \"q\""))]]);
    let tsv = s.to_tsv();
    // Exactly header + one data line; the embedded tab/newline are escaped.
    assert_eq!(tsv, "?v\n\"col1\\tcol2\\nline2 \\\"q\\\"\"\n");
    assert_eq!(tsv.lines().count(), 2);
}

#[test]
fn tsv_typed_and_lang_literals() {
    let s = sols(
        &["a", "b"],
        vec![vec![
            Some(Term::typed_lit("3.5", "http://www.w3.org/2001/XMLSchema#double")),
            Some(Term::lang_lit("hallo", "de")),
        ]],
    );
    assert_eq!(
        s.to_tsv(),
        "?a\t?b\n\"3.5\"^^<http://www.w3.org/2001/XMLSchema#double>\t\"hallo\"@de\n"
    );
}

#[test]
fn tsv_unicode_preserved() {
    let s = sols(&["v"], vec![vec![Some(Term::lit("héllo 日本語"))]]);
    assert_eq!(s.to_tsv(), "?v\n\"héllo 日本語\"\n");
}

#[test]
fn tsv_ask_serializes_to_nothing() {
    // The W3C CSV/TSV result format covers SELECT only — no boolean form.
    // The protocol layer answers ASK + TSV with 406 (or steers to JSON);
    // this serializer never invents a non-standard bare-boolean line.
    assert_eq!(Solutions::from_ask(true).to_tsv(), "");
    assert_eq!(Solutions::from_ask(false).to_tsv(), "");
}

#[test]
fn unit_solution_set_shapes() {
    // μ0: one row, all projected variables unbound.
    let s = Solutions::unit(vec!["x".into(), "y".into()]);
    assert_eq!(s.len(), 1);
    assert_eq!(s.to_json(), "{\"head\":{\"vars\":[\"x\",\"y\"]},\"results\":{\"bindings\":[{}]}}");
    assert_eq!(s.to_tsv(), "?x\t?y\n\t\n");
    // SELECT * over an empty pattern projects no variables at all.
    let s = Solutions::unit(Vec::new());
    assert_eq!(s.len(), 1);
    assert_eq!(s.to_json(), "{\"head\":{\"vars\":[]},\"results\":{\"bindings\":[{}]}}");
}

#[test]
fn end_to_end_through_store() {
    let mut store = db2rdf::RdfStore::entity();
    store
        .load(&[
            rdf::Triple::new(
                Term::iri("http://e/s"),
                Term::iri("http://e/p"),
                Term::lang_lit("Grüße\n\"quoted\"", "de"),
            ),
            rdf::Triple::new(Term::iri("http://e/s2"), Term::iri("http://e/p"), Term::int_lit(7)),
        ])
        .unwrap();
    let sols = store.query("SELECT ?s ?o WHERE { ?s <http://e/p> ?o }").unwrap();
    let json = sols.to_json();
    assert!(json.contains("\"xml:lang\":\"de\""), "{json}");
    assert!(json.contains("Grüße\\n\\\"quoted\\\""), "{json}");
    assert!(
        json.contains("\"datatype\":\"http://www.w3.org/2001/XMLSchema#integer\""),
        "{json}"
    );
    let tsv = sols.to_tsv();
    assert_eq!(tsv.lines().count(), 3, "{tsv}");
    assert!(tsv.contains("\"Grüße\\n\\\"quoted\\\"\"@de"), "{tsv}");
}
