//! End-to-end store tests: load the paper's Fig. 1(a) sample into all three
//! layouts and verify identical SPARQL answers, including the paper's
//! running example (Fig. 6a), star queries, UNION/OPTIONAL/FILTER, multi-
//! valued predicates, variable predicates, and solution modifiers.

use db2rdf::{Layout, RdfStore, StoreConfig};
use rdf::{Term, Triple};

fn t(s: &str, p: &str, o: &str) -> Triple {
    Triple::new(Term::iri(s), Term::iri(p), Term::iri(o))
}

fn tl(s: &str, p: &str, o: &str) -> Triple {
    Triple::new(Term::iri(s), Term::iri(p), Term::lit(o))
}

/// The paper's Fig. 1(a) DBpedia sample (plus revenue/developer edges so the
/// running example has matches).
fn sample() -> Vec<Triple> {
    vec![
        tl("Flint", "born", "1850"),
        tl("Flint", "died", "1934"),
        t("Flint", "founder", "IBM"),
        tl("Page", "born", "1973"),
        t("Page", "founder", "Google"),
        t("Page", "board", "Google"),
        tl("Page", "home", "Palo Alto"),
        t("Android", "developer", "Google"),
        tl("Android", "version", "4.1"),
        tl("Android", "kernel", "Linux"),
        tl("Android", "preceded", "4.0"),
        tl("Android", "graphics", "OpenGL"),
        tl("Google", "industry", "Software"),
        tl("Google", "industry", "Internet"),
        tl("Google", "employees", "54604"),
        tl("Google", "HQ", "Mountain View"),
        tl("IBM", "industry", "Software"),
        tl("IBM", "industry", "Hardware"),
        tl("IBM", "industry", "Services"),
        tl("IBM", "employees", "433362"),
        tl("IBM", "HQ", "Armonk"),
        t("Watson", "developer", "IBM"),
        tl("Google", "revenue", "37905"),
        tl("IBM", "revenue", "106916"),
    ]
}

fn all_stores() -> Vec<(&'static str, RdfStore)> {
    [Layout::Entity, Layout::TripleStore, Layout::Vertical]
        .into_iter()
        .map(|l| {
            let mut s = RdfStore::new(StoreConfig::with_layout(l));
            s.load(&sample()).unwrap();
            (db2rdf::layout_name(l), s)
        })
        .collect()
}

/// Sorted multiset of solution rows, for cross-layout comparison.
fn canon(s: &db2rdf::Solutions) -> Vec<Vec<String>> {
    let mut rows: Vec<Vec<String>> = s
        .rows
        .iter()
        .map(|r| {
            r.iter().map(|t| t.as_ref().map(|t| t.encode()).unwrap_or_default()).collect()
        })
        .collect();
    rows.sort();
    rows
}

fn assert_all_layouts(query: &str, expected_len: usize) {
    let stores = all_stores();
    let reference = stores[0].1.query(query).unwrap_or_else(|e| {
        panic!("entity layout failed on {query}: {e}");
    });
    assert_eq!(reference.len(), expected_len, "entity layout count for {query}");
    for (name, store) in &stores[1..] {
        let sols = store.query(query).unwrap_or_else(|e| {
            panic!("{name} failed on {query}: {e}");
        });
        assert_eq!(canon(&sols), canon(&reference), "{name} disagrees on {query}");
    }
}

#[test]
fn single_triple_constant_object() {
    assert_all_layouts("SELECT ?x WHERE { ?x <founder> <IBM> }", 1);
}

#[test]
fn subject_star_query() {
    assert_all_layouts(
        "SELECT ?s ?v ?k WHERE { ?s <version> ?v . ?s <kernel> ?k . ?s <graphics> 'OpenGL' }",
        1,
    );
}

#[test]
fn multivalued_predicate_expands() {
    // IBM has 3 industries, Google 2.
    assert_all_layouts("SELECT ?i WHERE { <IBM> <industry> ?i }", 3);
    assert_all_layouts("SELECT ?c ?i WHERE { ?c <industry> ?i }", 5);
}

#[test]
fn reverse_star_on_object() {
    // Who is connected to Google? founder, board, developer.
    assert_all_layouts("SELECT ?x WHERE { ?x <founder> <Google> }", 1);
    assert_all_layouts(
        "SELECT ?x ?y WHERE { ?x <founder> ?c . ?y <developer> ?c }",
        2, // (Page,Android) via Google and (Flint,Watson) via IBM
    );
}

#[test]
fn union_query() {
    assert_all_layouts(
        "SELECT ?x ?y WHERE { { ?x <founder> ?y } UNION { ?x <board> ?y } }",
        3,
    );
}

#[test]
fn optional_query() {
    // All founders, optionally their birth year; Flint and Page both have it.
    assert_all_layouts(
        "SELECT ?x ?b WHERE { ?x <founder> ?c . OPTIONAL { ?x <born> ?b } }",
        2,
    );
    // Optional that never matches keeps rows with unbound ?z.
    let (_, store) = all_stores().remove(0);
    let sols = store
        .query("SELECT ?x ?z WHERE { ?x <founder> ?c . OPTIONAL { ?x <nonexistent> ?z } }")
        .unwrap();
    assert_eq!(sols.len(), 2);
    assert!(sols.rows.iter().all(|r| r[1].is_none()));
}

#[test]
fn running_example_from_figure_6() {
    // People who founded or sit on the board of a Software company; the
    // products it developed, its revenue, optionally employees.
    let q = "SELECT ?x ?y ?z ?n ?m WHERE {
        ?x <home> 'Palo Alto' .
        { ?x <founder> ?y } UNION { ?x <board> ?y }
        { ?y <industry> 'Software' .
          ?z <developer> ?y .
          ?y <revenue> ?n .
          OPTIONAL { ?y <employees> ?m } }
      }";
    // Page founded Google and is on its board → 2 rows (Android developed).
    assert_all_layouts(q, 2);
    let (_, store) = all_stores().remove(0);
    let sols = store.query(q).unwrap();
    assert_eq!(sols.get(0, "x"), Some(&Term::iri("Page")));
    assert_eq!(sols.get(0, "z"), Some(&Term::iri("Android")));
    assert_eq!(sols.get(0, "m"), Some(&Term::lit("54604")));
}

#[test]
fn filter_numeric_comparison() {
    assert_all_layouts(
        "SELECT ?c WHERE { ?c <employees> ?e . FILTER(?e > 100000) }",
        1,
    );
    assert_all_layouts(
        "SELECT ?c WHERE { ?c <employees> ?e . FILTER(?e > 100000 || ?e < 60000) }",
        2,
    );
}

#[test]
fn filter_regex_and_str() {
    assert_all_layouts(
        "SELECT ?c WHERE { ?c <HQ> ?h . FILTER regex(?h, 'view', 'i') }",
        1,
    );
    assert_all_layouts(
        "SELECT ?c WHERE { ?c <HQ> ?h . FILTER(str(?h) = 'Armonk') }",
        1,
    );
}

#[test]
fn filter_bound_after_optional() {
    // Companies with revenue but *no* employee count: none in the sample.
    assert_all_layouts(
        "SELECT ?c WHERE { ?c <revenue> ?r . OPTIONAL { ?c <employees> ?e } FILTER(!bound(?e)) }",
        0,
    );
}

#[test]
fn variable_predicate() {
    assert_all_layouts("SELECT ?p ?o WHERE { <Flint> ?p ?o }", 3);
    assert_all_layouts("SELECT ?p WHERE { <Page> ?p <Google> }", 2);
}

#[test]
fn ask_queries() {
    let (_, store) = all_stores().remove(0);
    assert_eq!(store.query("ASK { <Page> <home> 'Palo Alto' }").unwrap().boolean, Some(true));
    assert_eq!(store.query("ASK { <Page> <home> 'Armonk' }").unwrap().boolean, Some(false));
}

#[test]
fn distinct_order_limit() {
    let (_, store) = all_stores().remove(0);
    let sols = store
        .query("SELECT DISTINCT ?i WHERE { ?c <industry> ?i } ORDER BY ?i LIMIT 3")
        .unwrap();
    assert_eq!(sols.len(), 3);
    let vals: Vec<String> =
        sols.rows.iter().map(|r| r[0].as_ref().unwrap().lexical().to_string()).collect();
    assert_eq!(vals, vec!["Hardware", "Internet", "Services"]);
}

#[test]
fn order_by_numeric() {
    let (_, store) = all_stores().remove(0);
    let sols = store
        .query("SELECT ?c ?e WHERE { ?c <employees> ?e } ORDER BY DESC(?e)")
        .unwrap();
    assert_eq!(sols.get(0, "c"), Some(&Term::iri("IBM")));
}

#[test]
fn incremental_insert_visible_to_queries() {
    for layout in [Layout::Entity, Layout::TripleStore, Layout::Vertical] {
        let mut store = RdfStore::new(StoreConfig::with_layout(layout));
        store.load(&sample()).unwrap();
        store.insert(&t("Bell", "founder", "ATT")).unwrap();
        store.insert(&tl("Bell", "born", "1847")).unwrap();
        let sols = store
            .query("SELECT ?b WHERE { ?x <founder> <ATT> . ?x <born> ?b }")
            .unwrap();
        assert_eq!(sols.len(), 1, "layout {layout:?}");
        assert_eq!(sols.get(0, "b"), Some(&Term::lit("1847")));
    }
}

#[test]
fn explain_exposes_flow_and_sql() {
    let (_, store) = all_stores().remove(0);
    let e = store
        .explain("SELECT ?x WHERE { ?x <industry> 'Software' . ?x <employees> ?e }")
        .unwrap();
    assert_eq!(e.flow.len(), 2);
    assert!(e.sql.to_uppercase().contains("WITH"));
    assert!(e.sql.contains("rph") || e.sql.contains("dph"));
}

#[test]
fn translate_entity_star_uses_single_access() {
    // Fig. 2(b): a pure subject star is one DPH probe, no self-joins.
    let (_, store) = all_stores().remove(0);
    let sql = store
        .translate("SELECT ?s WHERE { ?s <version> ?v . ?s <kernel> ?k }")
        .unwrap();
    let dph_count = sql.matches("dph AS T").count();
    assert_eq!(dph_count, 1, "expected one DPH access, got SQL:\n{sql}");
}

#[test]
fn empty_result_for_unknown_constants() {
    assert_all_layouts("SELECT ?x WHERE { ?x <founder> <Nokia> }", 0);
    assert_all_layouts("SELECT ?x WHERE { ?x <neverSeen> ?o }", 0);
}

#[test]
fn join_across_star_shapes() {
    // subject star joined to reverse access through shared company.
    assert_all_layouts(
        "SELECT ?p ?hq WHERE { ?p <founder> ?c . ?c <HQ> ?hq . ?c <industry> 'Software' }",
        2,
    );
}

#[test]
fn cartesian_product_of_disconnected_patterns() {
    // 2 founders × 2 developers = 4 rows.
    assert_all_layouts(
        "SELECT ?a ?b WHERE { ?a <founder> ?x . ?b <developer> ?y }",
        4,
    );
}

#[test]
fn nested_optional_group() {
    // Multi-triple OPTIONAL group (not star-mergeable).
    assert_all_layouts(
        "SELECT ?x ?v WHERE { ?x <developer> ?c . OPTIONAL { ?x <version> ?v . ?x <kernel> 'Linux' } }",
        2,
    );
}

#[test]
fn duplicate_insert_is_idempotent_in_entity_layout() {
    let mut store = RdfStore::entity();
    store.load(&sample()).unwrap();
    assert!(!store.insert(&tl("Page", "home", "Palo Alto")).unwrap());
    let sols = store.query("SELECT ?h WHERE { <Page> <home> ?h }").unwrap();
    assert_eq!(sols.len(), 1);
}
