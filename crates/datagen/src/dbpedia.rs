//! DBpedia-like dataset: the paper's hardest layout case. Degrees follow
//! power laws (avg out-degree ≈ 14, in-degree ≈ 5, §2.3), the predicate
//! inventory is huge (DBpedia 3.7 has 53,976 predicates — scaled down but
//! still far beyond any sensible column count), and predicates cluster by
//! entity type with a long tail of rare, type-crossing predicates that make
//! full coloring infeasible — exercising the `c(D⊗P,m) ⊕ h(m)` fallback.
//!
//! The DQ workload mirrors the DBpedia SPARQL benchmark's template classes:
//! entity lookups, subject stars, reverse (in-link) queries, variable-
//! predicate probes, UNIONs and OPTIONAL/FILTER templates.

use crate::rng::SplitMix64;
use rdf::{Term, Triple};

use crate::BenchQuery;

pub const NS: &str = "http://dbpedia.bench/";
pub const RDF_TYPE: &str = "http://www.w3.org/1999/02/22-rdf-syntax-ns#type";

fn pred(i: usize) -> Term {
    Term::iri(format!("{NS}p/{i}"))
}

fn entity(i: usize) -> Term {
    Term::iri(format!("{NS}r/{i}"))
}

/// Zipf-ish sample in `[0, n)`: rank r with probability ∝ 1/(r+1).
fn zipf(rng: &mut SplitMix64, n: usize) -> usize {
    // Inverse-CDF on harmonic weights, cheap approximation.
    let h: f64 = (n as f64).ln() + 0.5772;
    let u: f64 = rng.gen_f64() * h;
    (u.exp() - 1.0).min((n - 1) as f64) as usize
}

/// Generate `n_entities` entities over `n_predicates` predicates
/// (~14 triples per entity, per the paper's reported DBpedia out-degree).
pub fn generate(n_entities: usize, n_predicates: usize, seed: u64) -> Vec<Triple> {
    stream(n_entities, n_predicates, seed).collect()
}

/// Stream the exact dataset `generate` returns — same seed, same bytes —
/// buffering one entity (~14 triples) at a time.
pub fn stream(n_entities: usize, n_predicates: usize, seed: u64) -> DbpediaStream {
    let mut rng = SplitMix64::seed_from_u64(seed);
    let n_types = (n_predicates / 12).clamp(4, 300);
    // Each type owns a pool of ~20 predicates drawn with skew; the tail of
    // rare predicates is shared across types (interference explosion).
    let type_pools: Vec<Vec<usize>> = (0..n_types)
        .map(|_| {
            let mut pool: Vec<usize> = (0..20).map(|_| zipf(&mut rng, n_predicates)).collect();
            pool.sort_unstable();
            pool.dedup();
            pool
        })
        .collect();
    DbpediaStream {
        rng,
        type_pools,
        n_entities,
        n_predicates,
        next: 0,
        buf: Vec::new().into_iter(),
    }
}

pub struct DbpediaStream {
    rng: SplitMix64,
    type_pools: Vec<Vec<usize>>,
    n_entities: usize,
    n_predicates: usize,
    next: usize,
    buf: std::vec::IntoIter<Triple>,
}

impl Iterator for DbpediaStream {
    type Item = Triple;

    fn next(&mut self) -> Option<Triple> {
        loop {
            if let Some(t) = self.buf.next() {
                return Some(t);
            }
            if self.next >= self.n_entities {
                return None;
            }
            let mut triples = Vec::with_capacity(16);
            entity_triples(
                &mut self.rng,
                &self.type_pools,
                self.n_entities,
                self.n_predicates,
                self.next,
                &mut triples,
            );
            self.next += 1;
            self.buf = triples.into_iter();
        }
    }
}

/// Emit one entity's triples (the per-chunk unit of the stream).
fn entity_triples(
    rng: &mut SplitMix64,
    type_pools: &[Vec<usize>],
    n_entities: usize,
    n_predicates: usize,
    e: usize,
    triples: &mut Vec<Triple>,
) {
    let n_types = type_pools.len();
    {
        let subject = entity(e);
        let ty = zipf(rng, n_types);
        triples.push(Triple::new(
            subject.clone(),
            Term::iri(RDF_TYPE),
            Term::iri(format!("{NS}ontology/Type{ty}")),
        ));
        triples.push(Triple::new(
            subject.clone(),
            Term::iri(format!("{NS}label")),
            Term::lit(format!("Entity {e}")),
        ));
        // Out-degree: power-law around a mean of ~14.
        let extra = 2 + zipf(rng, 40);
        let pool = &type_pools[ty];
        for _ in 0..extra {
            let p = if rng.gen_ratio(4, 5) {
                pool[rng.gen_range(0..pool.len())]
            } else {
                zipf(rng, n_predicates)
            };
            // Objects: popular entities get most in-links (power law);
            // a third of values are literals.
            let object = if rng.gen_ratio(1, 3) {
                Term::lit(format!("value {}", rng.gen_range(0..5000)))
            } else {
                entity(zipf(rng, n_entities))
            };
            triples.push(Triple::new(subject.clone(), pred(p), object));
        }
    }
}

/// DQ1–DQ20: DBpedia-benchmark-style templates.
pub fn queries() -> Vec<BenchQuery> {
    let ns = NS;
    let ty = RDF_TYPE;
    let mut out = Vec::new();
    // Entity description lookups (the most common DBpedia log template).
    for (i, e) in [0usize, 1, 5, 17].iter().enumerate() {
        out.push(BenchQuery::new(
            format!("DQ{}", i + 1),
            format!("SELECT ?p ?o WHERE {{ <{ns}r/{e}> ?p ?o }}"),
        ));
    }
    // Reverse lookups: who links to a popular entity.
    for (i, e) in [0usize, 2, 9].iter().enumerate() {
        out.push(BenchQuery::new(
            format!("DQ{}", i + 5),
            format!("SELECT ?s ?p WHERE {{ ?s ?p <{ns}r/{e}> }}"),
        ));
    }
    // Type + label stars.
    for (i, t) in [0usize, 1, 2].iter().enumerate() {
        out.push(BenchQuery::new(
            format!("DQ{}", i + 8),
            format!(
                "SELECT ?s ?l WHERE {{ ?s <{ty}> <{ns}ontology/Type{t}> . ?s <{ns}label> ?l }}"
            ),
        ));
    }
    // Subject stars over popular predicates.
    for (i, (p1, p2)) in [(0usize, 1usize), (0, 2), (1, 3)].iter().enumerate() {
        out.push(BenchQuery::new(
            format!("DQ{}", i + 11),
            format!(
                "SELECT ?s ?a ?b WHERE {{ ?s <{ns}p/{p1}> ?a . ?s <{ns}p/{p2}> ?b }}"
            ),
        ));
    }
    // UNION template.
    out.push(BenchQuery::new(
        "DQ14",
        format!(
            "SELECT ?s WHERE {{ {{ ?s <{ns}p/0> <{ns}r/0> }} UNION {{ ?s <{ns}p/1> <{ns}r/0> }} }}"
        ),
    ));
    // OPTIONAL template.
    out.push(BenchQuery::new(
        "DQ15",
        format!(
            "SELECT ?s ?l ?x WHERE {{ ?s <{ty}> <{ns}ontology/Type0> . \
             ?s <{ns}label> ?l . OPTIONAL {{ ?s <{ns}p/0> ?x }} }}"
        ),
    ));
    // FILTER templates.
    out.push(BenchQuery::new(
        "DQ16",
        format!(
            "SELECT ?s ?l WHERE {{ ?s <{ns}label> ?l . FILTER regex(?l, 'Entity 1', 'i') }} LIMIT 100"
        ),
    ));
    out.push(BenchQuery::new(
        "DQ17",
        format!(
            "SELECT ?s ?o WHERE {{ ?s <{ns}p/2> ?o . FILTER isLiteral(?o) }} LIMIT 1000"
        ),
    ));
    // Two-hop join.
    out.push(BenchQuery::new(
        "DQ18",
        format!(
            "SELECT ?a ?b WHERE {{ ?a <{ns}p/0> ?b . ?b <{ns}p/0> <{ns}r/0> }}"
        ),
    ));
    // Chain with type anchor.
    out.push(BenchQuery::new(
        "DQ19",
        format!(
            "SELECT ?a ?c WHERE {{ ?a <{ty}> <{ns}ontology/Type1> . \
             ?a <{ns}p/1> ?c . ?c <{ty}> <{ns}ontology/Type0> }}"
        ),
    ));
    // DISTINCT + ORDER template.
    out.push(BenchQuery::new(
        "DQ20",
        format!(
            "SELECT DISTINCT ?t WHERE {{ ?s <{ty}> ?t }} ORDER BY ?t LIMIT 50"
        ),
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn degrees_are_power_law_like() {
        let triples = generate(3000, 400, 1);
        let mut out: std::collections::HashMap<String, usize> = std::collections::HashMap::new();
        for t in &triples {
            *out.entry(t.subject.encode()).or_default() += 1;
        }
        let max = *out.values().max().unwrap();
        let avg = triples.len() as f64 / out.len() as f64;
        assert!(avg > 5.0 && avg < 25.0, "avg out-degree {avg}");
        assert!(max as f64 > avg * 2.0, "skew expected: max {max}, avg {avg}");
    }

    #[test]
    fn many_predicates_used() {
        let triples = generate(5000, 1000, 2);
        let preds: std::collections::HashSet<String> =
            triples.iter().map(|t| t.predicate.encode()).collect();
        assert!(preds.len() > 300, "only {} predicates", preds.len());
    }

    #[test]
    fn twenty_queries() {
        let qs = queries();
        assert_eq!(qs.len(), 20);
        assert_eq!(qs.first().unwrap().name, "DQ1");
        assert_eq!(qs.last().unwrap().name, "DQ20");
    }

    #[test]
    fn stream_is_identical_to_generate() {
        let streamed: Vec<Triple> = stream(400, 600, 9).collect();
        assert_eq!(streamed, generate(400, 600, 9));
    }
}
