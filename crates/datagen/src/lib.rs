//! Seeded synthetic dataset generators and query workloads reproducing the
//! structural properties of the paper's four evaluation datasets (§4) and
//! the §2.1 micro-benchmark. Everything is deterministic given the seed, so
//! benchmark runs are repeatable.
//!
//! | module    | stands in for              | key properties preserved |
//! |-----------|----------------------------|--------------------------|
//! | `micro`   | §2.1 micro-benchmark       | Table 1 predicate-set mix, SV/MV split, Q1–Q10 |
//! | `lubm`    | LUBM                       | 18 predicates, university schema, LQ workload with inference expansion |
//! | `sp2b`    | SP²Bench                   | DBLP shape, ~30 predicates, SQ1–SQ17 analogues |
//! | `dbpedia` | DBpedia 3.7                | power-law degrees, thousands of predicates, DQ templates |
//! | `prbench` | PRBench (tool integration) | 51 predicates, cross-tool links, huge UNION queries |

pub mod dbpedia;
pub mod lubm;
pub mod micro;
pub mod prbench;
pub mod queryfuzz;
pub mod rng;
pub mod sp2b;

use rdf::Triple;

/// A named benchmark query.
#[derive(Debug, Clone)]
pub struct BenchQuery {
    /// Paper-style identifier (`Q1`, `LQ6`, `SQ4`, `DQ12`, `PQ26`).
    pub name: String,
    pub sparql: String,
}

impl BenchQuery {
    pub fn new(name: impl Into<String>, sparql: impl Into<String>) -> BenchQuery {
        BenchQuery { name: name.into(), sparql: sparql.into() }
    }
}

/// A generated dataset plus its query workload.
pub struct Benchmark {
    pub name: &'static str,
    pub triples: Vec<Triple>,
    pub queries: Vec<BenchQuery>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_generators_are_deterministic() {
        assert_eq!(micro::generate(1000, 42), micro::generate(1000, 42));
        assert_eq!(lubm::generate(1, 7), lubm::generate(1, 7));
        assert_eq!(sp2b::generate(500, 7), sp2b::generate(500, 7));
        assert_eq!(dbpedia::generate(500, 50, 7), dbpedia::generate(500, 50, 7));
        assert_eq!(prbench::generate(200, 7), prbench::generate(200, 7));
    }

    #[test]
    fn different_seeds_differ() {
        assert_ne!(micro::generate(1000, 1), micro::generate(1000, 2));
    }
}
