//! LUBM-like university dataset (18 predicates, the schema of Guo et al.)
//! and the 12-query workload the paper evaluates (LQ1–LQ10, LQ13, LQ14),
//! with OWL subclass inference compiled away by UNION expansion exactly as
//! the paper describes (§4.1).

use crate::rng::SplitMix64;
use rdf::{Term, Triple};

use crate::BenchQuery;

pub const NS: &str = "http://lubm.bench/";
pub const RDF_TYPE: &str = "http://www.w3.org/1999/02/22-rdf-syntax-ns#type";

fn p(local: &str) -> Term {
    Term::iri(format!("{NS}{local}"))
}

fn class(local: &str) -> Term {
    Term::iri(format!("{NS}{local}"))
}

fn rdf_type() -> Term {
    Term::iri(RDF_TYPE)
}

struct Gen {
    triples: Vec<Triple>,
    rng: SplitMix64,
}

impl Gen {
    fn emit(&mut self, s: &Term, pred: &str, o: Term) {
        self.triples.push(Triple::new(s.clone(), p(pred), o));
    }

    fn typ(&mut self, s: &Term, c: &str) {
        self.triples.push(Triple::new(s.clone(), rdf_type(), class(c)));
    }
}

const DEPTS_PER_UNIV: usize = 6;
const FULL_PROF: usize = 5;
const ASSOC_PROF: usize = 6;
const ASSIST_PROF: usize = 5;
const LECTURERS: usize = 3;
const COURSES: usize = 12;
const GRAD_COURSES: usize = 6;
const UG_STUDENTS: usize = 60;
const GRAD_STUDENTS: usize = 15;
const PUBLICATIONS: usize = 10;
const GROUPS: usize = 5;

/// Generate `universities` universities (~10k triples each).
pub fn generate(universities: usize, seed: u64) -> Vec<Triple> {
    stream(universities, seed).collect()
}

/// Stream the exact dataset `generate` returns — same seed, same bytes —
/// buffering one university (~10k triples) at a time instead of the whole
/// corpus. This is what the bulk-load benchmarks feed to
/// `RdfStore::bulk_load_triples` at scales where `generate` would not fit.
pub fn stream(universities: usize, seed: u64) -> LubmStream {
    LubmStream {
        g: Gen { triples: Vec::new(), rng: SplitMix64::seed_from_u64(seed) },
        universities,
        next_univ: 0,
        buf: Vec::new().into_iter(),
    }
}

pub struct LubmStream {
    g: Gen,
    universities: usize,
    next_univ: usize,
    buf: std::vec::IntoIter<Triple>,
}

impl Iterator for LubmStream {
    type Item = Triple;

    fn next(&mut self) -> Option<Triple> {
        loop {
            if let Some(t) = self.buf.next() {
                return Some(t);
            }
            if self.next_univ >= self.universities {
                return None;
            }
            university(&mut self.g, self.universities, self.next_univ);
            self.next_univ += 1;
            self.buf = std::mem::take(&mut self.g.triples).into_iter();
        }
    }
}

fn univ_iri(u: usize) -> Term {
    Term::iri(format!("{NS}University{u}"))
}

/// Emit one university into `g.triples` (the per-chunk unit of the stream).
fn university(g: &mut Gen, universities: usize, u: usize) {
    {
        let univ = univ_iri(u);
        g.typ(&univ, "University");
        g.emit(&univ, "name", Term::lit(format!("University {u}")));
        for d in 0..DEPTS_PER_UNIV {
            let dept = Term::iri(format!("{NS}Department{d}.University{u}"));
            g.typ(&dept, "Department");
            g.emit(&dept, "subOrganizationOf", univ.clone());
            g.emit(&dept, "name", Term::lit(format!("Department {d}")));
            for r in 0..GROUPS {
                let grp = Term::iri(format!("{NS}ResearchGroup{r}.D{d}.U{u}"));
                g.typ(&grp, "ResearchGroup");
                g.emit(&grp, "subOrganizationOf", dept.clone());
            }
            // Courses.
            let mut courses = Vec::new();
            for c in 0..COURSES + GRAD_COURSES {
                let kind = if c < COURSES { "Course" } else { "GraduateCourse" };
                let iri = Term::iri(format!("{NS}{kind}{c}.D{d}.U{u}"));
                g.typ(&iri, kind);
                g.emit(&iri, "name", Term::lit(format!("{kind} {c}")));
                courses.push(iri);
            }
            // Faculty.
            let mut faculty = Vec::new();
            let kinds = [
                ("FullProfessor", FULL_PROF),
                ("AssociateProfessor", ASSOC_PROF),
                ("AssistantProfessor", ASSIST_PROF),
                ("Lecturer", LECTURERS),
            ];
            for (kind, count) in kinds {
                for i in 0..count {
                    let prof = Term::iri(format!("{NS}{kind}{i}.D{d}.U{u}"));
                    g.typ(&prof, kind);
                    g.emit(&prof, "worksFor", dept.clone());
                    g.emit(&prof, "name", Term::lit(format!("{kind} {i} D{d} U{u}")));
                    g.emit(
                        &prof,
                        "emailAddress",
                        Term::lit(format!("{kind}{i}@d{d}.u{u}.edu")),
                    );
                    g.emit(&prof, "telephone", Term::lit(format!("555-{u:03}-{d}{i:02}")));
                    let deg = g.rng.gen_range(0..universities.max(1));
                    g.emit(&prof, "undergraduateDegreeFrom", univ_iri(deg));
                    let deg = g.rng.gen_range(0..universities.max(1));
                    g.emit(&prof, "mastersDegreeFrom", univ_iri(deg));
                    let deg = g.rng.gen_range(0..universities.max(1));
                    g.emit(&prof, "doctoralDegreeFrom", univ_iri(deg));
                    let ri = g.rng.gen_range(0..30);
                    g.emit(&prof, "researchInterest", Term::lit(format!("Research{ri}")));
                    if kind != "Lecturer" {
                        let n = g.rng.gen_range(1..3usize);
                        for _ in 0..n {
                            let c = g.rng.gen_range(0..courses.len());
                            g.emit(&prof, "teacherOf", courses[c].clone());
                        }
                    }
                    faculty.push(prof);
                }
            }
            // Head of department: the first full professor.
            g.emit(&faculty[0], "headOf", dept.clone());
            // Students.
            for i in 0..UG_STUDENTS {
                let s = Term::iri(format!("{NS}UndergraduateStudent{i}.D{d}.U{u}"));
                g.typ(&s, "UndergraduateStudent");
                g.emit(&s, "memberOf", dept.clone());
                g.emit(&s, "name", Term::lit(format!("UG {i} D{d} U{u}")));
                g.emit(&s, "emailAddress", Term::lit(format!("ug{i}@d{d}.u{u}.edu")));
                for _ in 0..g.rng.gen_range(2..5usize) {
                    let c = g.rng.gen_range(0..COURSES);
                    g.emit(&s, "takesCourse", courses[c].clone());
                }
                if g.rng.gen_ratio(1, 5) {
                    let f = g.rng.gen_range(0..faculty.len());
                    g.emit(&s, "advisor", faculty[f].clone());
                }
            }
            for i in 0..GRAD_STUDENTS {
                let s = Term::iri(format!("{NS}GraduateStudent{i}.D{d}.U{u}"));
                g.typ(&s, "GraduateStudent");
                g.emit(&s, "memberOf", dept.clone());
                g.emit(&s, "name", Term::lit(format!("Grad {i} D{d} U{u}")));
                g.emit(&s, "emailAddress", Term::lit(format!("grad{i}@d{d}.u{u}.edu")));
                g.emit(&s, "telephone", Term::lit(format!("555-{u:03}-9{i:02}")));
                let deg = g.rng.gen_range(0..universities.max(1));
                g.emit(&s, "undergraduateDegreeFrom", univ_iri(deg));
                for _ in 0..g.rng.gen_range(1..4usize) {
                    let c = g.rng.gen_range(COURSES..courses.len());
                    g.emit(&s, "takesCourse", courses[c].clone());
                }
                let f = g.rng.gen_range(0..faculty.len());
                g.emit(&s, "advisor", faculty[f].clone());
                if g.rng.gen_ratio(1, 4) {
                    let c = g.rng.gen_range(0..COURSES);
                    g.emit(&s, "teachingAssistantOf", courses[c].clone());
                }
                if g.rng.gen_ratio(1, 5) {
                    let r = g.rng.gen_range(0..GROUPS);
                    g.emit(
                        &s,
                        "researchAssistantOf",
                        Term::iri(format!("{NS}ResearchGroup{r}.D{d}.U{u}")),
                    );
                }
            }
            // Publications.
            for i in 0..PUBLICATIONS {
                let pb = Term::iri(format!("{NS}Publication{i}.D{d}.U{u}"));
                g.typ(&pb, "Publication");
                g.emit(&pb, "name", Term::lit(format!("Publication {i} D{d} U{u}")));
                let f = g.rng.gen_range(0..faculty.len());
                g.emit(&pb, "publicationAuthor", faculty[f].clone());
                if g.rng.gen_ratio(1, 2) {
                    let s = g.rng.gen_range(0..GRAD_STUDENTS);
                    g.emit(
                        &pb,
                        "publicationAuthor",
                        Term::iri(format!("{NS}GraduateStudent{s}.D{d}.U{u}")),
                    );
                }
            }
        }
    }
}

fn type_union(var: &str, classes: &[&str]) -> String {
    let alts: Vec<String> = classes
        .iter()
        .map(|c| format!("{{ ?{var} <{RDF_TYPE}> <{NS}{c}> }}"))
        .collect();
    alts.join(" UNION ")
}

const STUDENTS: &[&str] = &["UndergraduateStudent", "GraduateStudent"];
const PROFESSORS: &[&str] = &["FullProfessor", "AssociateProfessor", "AssistantProfessor"];

/// The 12 LUBM queries the paper runs, inference-expanded.
pub fn queries() -> Vec<BenchQuery> {
    let ns = NS;
    let ty = RDF_TYPE;
    vec![
        BenchQuery::new(
            "LQ1",
            format!(
                "SELECT ?x WHERE {{ ?x <{ty}> <{ns}GraduateStudent> . \
                 ?x <{ns}takesCourse> <{ns}GraduateCourse13.D0.U0> }}"
            ),
        ),
        BenchQuery::new(
            "LQ2",
            format!(
                "SELECT ?x ?y ?z WHERE {{ ?x <{ty}> <{ns}GraduateStudent> . \
                 ?y <{ty}> <{ns}University> . ?z <{ty}> <{ns}Department> . \
                 ?x <{ns}memberOf> ?z . ?z <{ns}subOrganizationOf> ?y . \
                 ?x <{ns}undergraduateDegreeFrom> ?y }}"
            ),
        ),
        BenchQuery::new(
            "LQ3",
            format!(
                "SELECT ?x WHERE {{ ?x <{ty}> <{ns}Publication> . \
                 ?x <{ns}publicationAuthor> <{ns}FullProfessor0.D0.U0> }}"
            ),
        ),
        BenchQuery::new(
            "LQ4",
            format!(
                "SELECT ?x ?n ?e ?t WHERE {{ {} . ?x <{ns}worksFor> <{ns}Department0.University0> . \
                 ?x <{ns}name> ?n . ?x <{ns}emailAddress> ?e . ?x <{ns}telephone> ?t }}",
                type_union("x", PROFESSORS)
            ),
        ),
        BenchQuery::new(
            "LQ5",
            format!(
                "SELECT ?x WHERE {{ {{ ?x <{ns}memberOf> <{ns}Department0.University0> }} UNION \
                 {{ ?x <{ns}worksFor> <{ns}Department0.University0> }} }}"
            ),
        ),
        BenchQuery::new("LQ6", format!("SELECT ?x WHERE {{ {} }}", type_union("x", STUDENTS))),
        BenchQuery::new(
            "LQ7",
            format!(
                "SELECT ?x ?y WHERE {{ {} . ?x <{ns}takesCourse> ?y . \
                 <{ns}AssociateProfessor0.D0.U0> <{ns}teacherOf> ?y }}",
                type_union("x", STUDENTS)
            ),
        ),
        BenchQuery::new(
            "LQ8",
            format!(
                "SELECT ?x ?y ?z WHERE {{ {} . ?x <{ns}memberOf> ?y . \
                 ?y <{ns}subOrganizationOf> <{ns}University0> . ?x <{ns}emailAddress> ?z }}",
                type_union("x", STUDENTS)
            ),
        ),
        BenchQuery::new(
            "LQ9",
            format!(
                "SELECT ?x ?y ?z WHERE {{ {} . ?x <{ns}advisor> ?y . \
                 ?y <{ns}teacherOf> ?z . ?x <{ns}takesCourse> ?z }}",
                type_union("x", STUDENTS)
            ),
        ),
        BenchQuery::new(
            "LQ10",
            format!(
                "SELECT ?x WHERE {{ {} . ?x <{ns}takesCourse> <{ns}GraduateCourse12.D0.U0> }}",
                type_union("x", STUDENTS)
            ),
        ),
        BenchQuery::new(
            "LQ13",
            format!(
                "SELECT ?x WHERE {{ {{ ?x <{ns}undergraduateDegreeFrom> <{ns}University0> }} UNION \
                 {{ ?x <{ns}mastersDegreeFrom> <{ns}University0> }} UNION \
                 {{ ?x <{ns}doctoralDegreeFrom> <{ns}University0> }} }}"
            ),
        ),
        BenchQuery::new(
            "LQ14",
            format!("SELECT ?x WHERE {{ ?x <{ty}> <{ns}UndergraduateStudent> }}"),
        ),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn predicate_inventory_is_lubm_sized() {
        let triples = generate(1, 1);
        let preds: std::collections::HashSet<String> =
            triples.iter().map(|t| t.predicate.encode()).collect();
        // 17 domain predicates + rdf:type = 18, matching LUBM (Table 4).
        assert_eq!(preds.len(), 18, "{preds:?}");
    }

    #[test]
    fn volume_scales_with_universities() {
        let one = generate(1, 1).len();
        let two = generate(2, 1).len();
        assert!(one > 5_000, "one university = {one} triples");
        assert!(two > one + 5_000);
    }

    #[test]
    fn out_degree_average_is_lubm_like() {
        // Paper: LUBM average out-degree ≈ 6.
        let triples = generate(1, 1);
        let subjects: std::collections::HashSet<String> =
            triples.iter().map(|t| t.subject.encode()).collect();
        let avg = triples.len() as f64 / subjects.len() as f64;
        assert!((3.0..9.0).contains(&avg), "avg out-degree {avg}");
    }

    #[test]
    fn twelve_queries() {
        assert_eq!(queries().len(), 12);
    }

    #[test]
    fn stream_is_identical_to_generate() {
        let streamed: Vec<Triple> = stream(2, 7).collect();
        assert_eq!(streamed, generate(2, 7));
    }
}
