//! The §2.1 micro-benchmark (Tables 1 & 2, Figs. 2 & 3, and the §3.3
//! optimizer experiment of Fig. 14).
//!
//! Subjects are partitioned into the six predicate-set groups of Table 1:
//!
//! | group | predicate set                         | frequency |
//! |-------|---------------------------------------|-----------|
//! | 0     | SV1–SV4, MV1–MV4                      | .01       |
//! | 1     | SV1 SV2 SV3, MV1 MV2 MV3              | .24       |
//! | 2     | SV1 SV3 SV4, MV1 MV3 MV4              | .25       |
//! | 3     | SV2 SV3 SV4, MV2 MV3 MV4              | .25       |
//! | 4     | SV1 SV2 SV4, MV1 MV2 MV4              | .24       |
//! | 5     | SV5 SV6 SV7 SV8                       | .01       |
//!
//! SV predicates are single-valued, MV predicates carry three values each.
//! For the Fig. 14 optimizer experiment, SV1 takes the constant object `O1`
//! for 75% of its subjects and SV2 takes `O2` for 1%.

use crate::rng::SplitMix64;
use rdf::{Term, Triple};

use crate::BenchQuery;

pub const NS: &str = "http://micro.bench/";

fn iri(local: &str) -> Term {
    Term::iri(format!("{NS}{local}"))
}

/// Table 1 group definitions: (single-valued preds, multi-valued preds,
/// cumulative frequency weight out of 100).
const GROUPS: &[(&[&str], &[&str], u32)] = &[
    (&["SV1", "SV2", "SV3", "SV4"], &["MV1", "MV2", "MV3", "MV4"], 1),
    (&["SV1", "SV2", "SV3"], &["MV1", "MV2", "MV3"], 24),
    (&["SV1", "SV3", "SV4"], &["MV1", "MV3", "MV4"], 25),
    (&["SV2", "SV3", "SV4"], &["MV2", "MV3", "MV4"], 25),
    (&["SV1", "SV2", "SV4"], &["MV1", "MV2", "MV4"], 24),
    (&["SV5", "SV6", "SV7", "SV8"], &[], 1),
];

/// Generate the micro-benchmark dataset with `n_subjects` subjects
/// (~12 triples per subject; the paper's 1M-triple set corresponds to
/// `n_subjects ≈ 84_000`).
pub fn generate(n_subjects: usize, seed: u64) -> Vec<Triple> {
    let mut rng = SplitMix64::seed_from_u64(seed);
    let mut triples = Vec::with_capacity(n_subjects * 12);
    for i in 0..n_subjects {
        // Deterministic group assignment preserving the Table 1 ratios.
        let slot = (i as u64 * 100 / n_subjects.max(1) as u64) as u32;
        let mut acc = 0;
        let mut group = GROUPS.len() - 1;
        for (gi, (_, _, w)) in GROUPS.iter().enumerate() {
            acc += *w;
            if slot < acc {
                group = gi;
                break;
            }
        }
        let (svs, mvs, _) = GROUPS[group];
        let subject = iri(&format!("s{i}"));
        for &p in svs {
            let obj = match p {
                // Fig. 14 constants: O1 with frequency .75 on SV1, O2 with
                // frequency .01 on SV2.
                "SV1" if rng.gen_ratio(3, 4) => Term::lit("O1"),
                "SV2" if rng.gen_ratio(1, 100) => Term::lit("O2"),
                _ => Term::lit(format!("{}_v{}", p, rng.gen_range(0..50_000))),
            };
            triples.push(Triple::new(subject.clone(), iri(p), obj));
        }
        for &p in mvs {
            for k in 0..3 {
                triples.push(Triple::new(
                    subject.clone(),
                    iri(p),
                    Term::lit(format!("{}_m{}_{}", p, rng.gen_range(0..50_000), k)),
                ));
            }
        }
    }
    triples
}

fn star(preds: &[&str]) -> String {
    let pats: Vec<String> = preds
        .iter()
        .enumerate()
        .map(|(i, p)| format!("?s <{NS}{p}> ?o{i} ."))
        .collect();
    format!("SELECT ?s WHERE {{ {} }}", pats.join(" "))
}

/// The Table 2 star queries Q1–Q10.
pub fn queries() -> Vec<BenchQuery> {
    vec![
        BenchQuery::new("Q1", star(&["SV1", "SV2", "SV3", "SV4"])),
        BenchQuery::new("Q2", star(&["MV1", "MV2", "MV3", "MV4"])),
        BenchQuery::new("Q3", star(&["SV1", "MV1", "MV2", "MV3", "MV4"])),
        BenchQuery::new("Q4", star(&["SV1", "SV2", "MV1", "MV2", "MV3", "MV4"])),
        BenchQuery::new("Q5", star(&["SV1", "SV2", "SV3", "MV1", "MV2", "MV3", "MV4"])),
        BenchQuery::new("Q6", star(&["SV1", "SV2", "SV3", "SV4", "MV1", "MV2", "MV3", "MV4"])),
        BenchQuery::new("Q7", star(&["SV5"])),
        BenchQuery::new("Q8", star(&["SV5", "SV6"])),
        BenchQuery::new("Q9", star(&["SV5", "SV6", "SV7"])),
        BenchQuery::new("Q10", star(&["SV5", "SV6", "SV7", "SV8"])),
    ]
}

/// The Fig. 14 two-triple query: data can flow from O1 (frequent) to O2
/// (rare) or the other way round; the optimizer should anchor at O2.
pub fn fig14_query() -> BenchQuery {
    BenchQuery::new(
        "F14",
        format!("SELECT ?s WHERE {{ ?s <{NS}SV1> 'O1' . ?s <{NS}SV2> 'O2' }}"),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_ratios_roughly_match_table1() {
        let triples = generate(10_000, 1);
        // Count subjects having SV4 and SV1 together with all four MVs
        // (group 0 only) ≈ 1%.
        let mut by_subject: std::collections::HashMap<&Term, Vec<&Term>> =
            std::collections::HashMap::new();
        for t in &triples {
            by_subject.entry(&t.subject).or_default().push(&t.predicate);
        }
        assert_eq!(by_subject.len(), 10_000);
        let sv = |p: &str| Term::iri(format!("{NS}{p}"));
        let g0 = by_subject
            .values()
            .filter(|ps| {
                ["SV1", "SV2", "SV3", "SV4"].iter().all(|p| ps.contains(&&sv(p)))
            })
            .count();
        assert!((80..=120).contains(&g0), "group0 count {g0}");
        let g5 = by_subject.values().filter(|ps| ps.contains(&&sv("SV5"))).count();
        assert!((80..=120).contains(&g5), "group5 count {g5}");
    }

    #[test]
    fn multivalued_preds_have_three_values() {
        let triples = generate(1000, 1);
        let mv1 = Term::iri(format!("{NS}MV1"));
        let mut per_subject: std::collections::HashMap<&Term, usize> =
            std::collections::HashMap::new();
        for t in triples.iter().filter(|t| t.predicate == mv1) {
            *per_subject.entry(&t.subject).or_default() += 1;
        }
        assert!(per_subject.values().all(|&n| n == 3));
    }

    #[test]
    fn queries_parse() {
        for q in queries().iter().chain([fig14_query()].iter()) {
            sparql_check(&q.sparql);
        }
    }

    fn sparql_check(q: &str) {
        // datagen doesn't depend on the sparql crate; a cheap sanity check.
        assert!(q.contains("SELECT"));
        assert!(q.contains(NS));
    }

    #[test]
    fn triple_volume_close_to_twelve_per_subject() {
        let triples = generate(5000, 3);
        let per = triples.len() as f64 / 5000.0;
        assert!((11.0..13.0).contains(&per), "avg {per}");
    }
}
