//! PRBench-like tool-integration dataset (§4: 60M triples, 51 predicates,
//! artifacts from different software-lifecycle tools cross-linked through an
//! integration layer, organized in >1M named graphs).
//!
//! Artifacts: bug reports, requirements, test cases/results, change sets,
//! builds, work items and reviews, each with a tool-specific attribute star
//! and cross-tool link edges. The original is a quad dataset; graphs do not
//! affect the DB2RDF layout, so the generator emits triples (see DESIGN.md).
//! The workload reproduces the paper's mix: fast anchored lookups (PQ1),
//! heavy cross-tool joins (PQ10, PQ26–PQ28 — including a UNION of 100
//! conjunctive queries), and medium star/OPTIONAL queries (PQ14–17, PQ24,
//! PQ29).

use crate::rng::SplitMix64;
use rdf::{Term, Triple};

use crate::BenchQuery;

pub const NS: &str = "http://prbench.bench/";
pub const RDF_TYPE: &str = "http://www.w3.org/1999/02/22-rdf-syntax-ns#type";

fn p(local: &str) -> Term {
    Term::iri(format!("{NS}{local}"))
}

struct Gen {
    triples: Vec<Triple>,
    rng: SplitMix64,
}

impl Gen {
    fn emit(&mut self, s: &Term, pred: &str, o: Term) {
        self.triples.push(Triple::new(s.clone(), p(pred), o));
    }

    fn typ(&mut self, s: &Term, c: &str) {
        self.triples.push(Triple::new(s.clone(), Term::iri(RDF_TYPE), p(c)));
    }

    fn lit(&mut self, s: &Term, pred: &str, v: String) {
        self.emit(s, pred, Term::lit(v));
    }
}

const SEVERITIES: &[&str] = &["critical", "major", "minor", "trivial"];
const STATUSES: &[&str] = &["open", "in-progress", "resolved", "closed"];
const VERDICTS: &[&str] = &["pass", "fail", "error", "skipped"];

/// Generate roughly `n_bugs`-scaled artifacts (~10 triples each across all
/// artifact kinds; total ≈ `n_bugs * 30` triples).
pub fn generate(n_bugs: usize, seed: u64) -> Vec<Triple> {
    let mut g = Gen { triples: Vec::new(), rng: SplitMix64::seed_from_u64(seed) };
    let n_reqs = (n_bugs * 2 / 3).max(1);
    let n_tests = (n_bugs / 2).max(1);
    let n_changes = n_bugs.max(1);
    let n_builds = (n_bugs / 10).max(1);
    let n_people = (n_bugs / 5).max(2);

    let person = |i: usize| Term::iri(format!("{NS}person/{i}"));
    let bug = |i: usize| Term::iri(format!("{NS}bug/{i}"));
    let req = |i: usize| Term::iri(format!("{NS}req/{i}"));
    let test = |i: usize| Term::iri(format!("{NS}test/{i}"));
    let change = |i: usize| Term::iri(format!("{NS}change/{i}"));
    let build = |i: usize| Term::iri(format!("{NS}build/{i}"));

    for i in 0..n_reqs {
        let r = req(i);
        g.typ(&r, "Requirement");
        g.lit(&r, "title", format!("Requirement {i}"));
        g.lit(&r, "created", format!("2012-{:02}-01", i % 12 + 1));
        g.lit(&r, "reqText", format!("The system shall do thing {i}"));
        g.lit(&r, "reqPriority", format!("P{}", i % 4 + 1));
        let s = g.rng.gen_range(0..n_people);
        g.emit(&r, "stakeholder", person(s));
        g.lit(&r, "category", format!("Cat{}", i % 9));
        g.lit(&r, "risk", format!("{}", i % 5));
        if i > 0 && g.rng.gen_ratio(1, 4) {
            let parent = g.rng.gen_range(0..i);
            g.emit(&r, "parentReq", req(parent));
        }
        let a = g.rng.gen_range(0..n_people);
        g.emit(&r, "approvedBy", person(a));
    }

    for i in 0..n_bugs {
        let b = bug(i);
        g.typ(&b, "BugReport");
        g.lit(&b, "title", format!("Bug {i}: something broke"));
        g.lit(&b, "created", format!("2012-{:02}-{:02}", i % 12 + 1, i % 28 + 1));
        let sev = zipf4(&mut g.rng);
        g.lit(&b, "severity", SEVERITIES[sev].to_string());
        g.lit(&b, "priority", format!("P{}", i % 5 + 1));
        let st = g.rng.gen_range(0..STATUSES.len());
        g.lit(&b, "status", STATUSES[st].to_string());
        let r = g.rng.gen_range(0..n_people);
        g.emit(&b, "reporter", person(r));
        if g.rng.gen_ratio(3, 4) {
            let a = g.rng.gen_range(0..n_people);
            g.emit(&b, "assignee", person(a));
        }
        g.lit(&b, "component", format!("component-{}", i % 25));
        g.lit(&b, "version", format!("v{}.{}", i % 4, i % 10));
        if g.rng.gen_ratio(1, 2) {
            g.lit(&b, "resolution", "fixed".to_string());
        }
        if g.rng.gen_ratio(1, 20) && i > 0 {
            let d = g.rng.gen_range(0..i);
            g.emit(&b, "duplicateOf", bug(d));
        }
        if g.rng.gen_ratio(2, 3) {
            let r = g.rng.gen_range(0..n_reqs);
            g.emit(&b, "affectsRequirement", req(r));
        }
    }

    for i in 0..n_tests {
        let t = test(i);
        g.typ(&t, "TestCase");
        g.lit(&t, "title", format!("Test case {i}"));
        g.lit(&t, "testSteps", format!("do step {i}"));
        g.lit(&t, "expectedResult", format!("result {i}"));
        g.lit(&t, "automationStatus", if i % 3 == 0 { "manual" } else { "automated" }.into());
        let o = g.rng.gen_range(0..n_people);
        g.emit(&t, "testOwner", person(o));
        let r = g.rng.gen_range(0..n_reqs);
        g.emit(&t, "verifiesRequirement", req(r));
        g.lit(&t, "testSuite", format!("suite-{}", i % 12));
        // Test results.
        for run in 0..g.rng.gen_range(1..4usize) {
            let tr = Term::iri(format!("{NS}result/{i}_{run}"));
            g.typ(&tr, "TestResult");
            let vd = zipf4(&mut g.rng);
            g.lit(&tr, "verdict", VERDICTS[vd].to_string());
            let e = g.rng.gen_range(0..n_people);
            g.emit(&tr, "executedBy", person(e));
            let et = g.rng.gen_range(1..500);
            g.lit(&tr, "executionTime", format!("{et}"));
            let bd = g.rng.gen_range(0..n_builds);
            g.emit(&tr, "onBuild", build(bd));
            g.emit(&tr, "forTestCase", t.clone());
            if g.rng.gen_ratio(1, 5) {
                g.lit(&tr, "failureMessage", format!("assertion failed at line {run}"));
            }
        }
    }

    for i in 0..n_changes {
        let c = change(i);
        g.typ(&c, "ChangeSet");
        let a = g.rng.gen_range(0..n_people);
        g.emit(&c, "author", person(a));
        g.lit(&c, "committed", format!("2012-{:02}-{:02}", i % 12 + 1, i % 28 + 1));
        g.lit(&c, "message", format!("fix for issue {i}"));
        if g.rng.gen_ratio(2, 3) {
            let b = g.rng.gen_range(0..n_bugs);
            g.emit(&c, "fixesBug", bug(b));
        } else {
            let r = g.rng.gen_range(0..n_reqs);
            g.emit(&c, "implementsRequirement", req(r));
        }
        let fc = g.rng.gen_range(1..40);
        g.lit(&c, "filesChanged", format!("{fc}"));
        if g.rng.gen_ratio(1, 2) {
            let rv = Term::iri(format!("{NS}review/{i}"));
            g.typ(&rv, "Review");
            let r = g.rng.gen_range(0..n_people);
            g.emit(&rv, "reviewer", person(r));
            let verdict = if g.rng.gen_ratio(4, 5) { "approved" } else { "rejected" };
            g.lit(&rv, "reviewVerdict", verdict.into());
            g.lit(&rv, "reviewComment", format!("looks good {i}"));
            g.emit(&rv, "ofChange", c.clone());
        }
    }

    for i in 0..n_builds {
        let b = build(i);
        g.typ(&b, "BuildResult");
        g.lit(&b, "buildStatus", if i % 7 == 0 { "failed" } else { "ok" }.into());
        let bt = g.rng.gen_range(60..3600);
        g.lit(&b, "buildTime", format!("{bt}"));
        g.lit(&b, "buildLabel", format!("build-2012.{i}"));
        g.lit(&b, "onBranch", format!("branch-{}", i % 5));
        for _ in 0..g.rng.gen_range(1..6usize) {
            let c = g.rng.gen_range(0..n_changes);
            g.emit(&b, "includesChange", change(c));
        }
    }

    // Work items tracking bugs.
    for i in 0..n_bugs / 2 {
        let w = Term::iri(format!("{NS}work/{i}"));
        g.typ(&w, "WorkItem");
        let st = g.rng.gen_range(0..STATUSES.len());
        g.lit(&w, "wiState", STATUSES[st].to_string());
        let o = g.rng.gen_range(0..n_people);
        g.emit(&w, "wiOwner", person(o));
        let est = g.rng.gen_range(1..13);
        g.lit(&w, "estimate", format!("{est}"));
        let tb = g.rng.gen_range(0..n_bugs);
        g.emit(&w, "tracksBug", bug(tb));
    }

    // People.
    for i in 0..n_people {
        let pe = person(i);
        g.typ(&pe, "Person");
        g.lit(&pe, "title", format!("Engineer {i}"));
    }

    g.triples
}

/// Skewed pick over 4 ranks: 50/25/15/10.
fn zipf4(rng: &mut SplitMix64) -> usize {
    match rng.gen_range(0..100u32) {
        0..=49 => 0,
        50..=74 => 1,
        75..=89 => 2,
        _ => 3,
    }
}

/// PQ1–PQ29.
pub fn queries() -> Vec<BenchQuery> {
    let ns = NS;
    let ty = RDF_TYPE;
    let mut out = Vec::new();

    // PQ1: the paper's optimizer poster child — a selective anchored lookup.
    out.push(BenchQuery::new(
        "PQ1",
        format!(
            "SELECT ?b ?t WHERE {{ ?b <{ty}> <{ns}BugReport> . \
             ?b <{ns}component> 'component-3' . ?b <{ns}severity> 'critical' . \
             ?b <{ns}title> ?t }}"
        ),
    ));
    // PQ2–PQ9: per-tool star lookups and small joins.
    out.push(BenchQuery::new(
        "PQ2",
        format!(
            "SELECT ?r ?txt WHERE {{ ?r <{ty}> <{ns}Requirement> . \
             ?r <{ns}reqPriority> 'P1' . ?r <{ns}reqText> ?txt }}"
        ),
    ));
    out.push(BenchQuery::new(
        "PQ3",
        format!(
            "SELECT ?t ?o WHERE {{ ?t <{ns}testSuite> 'suite-4' . ?t <{ns}testOwner> ?o }}"
        ),
    ));
    out.push(BenchQuery::new(
        "PQ4",
        format!(
            "SELECT ?c ?m WHERE {{ ?c <{ns}fixesBug> <{ns}bug/1> . ?c <{ns}message> ?m }}"
        ),
    ));
    out.push(BenchQuery::new(
        "PQ5",
        format!("SELECT ?p ?o WHERE {{ <{ns}bug/0> ?p ?o }}"),
    ));
    out.push(BenchQuery::new(
        "PQ6",
        format!(
            "SELECT ?b WHERE {{ ?b <{ns}severity> 'critical' . ?b <{ns}status> 'open' }}"
        ),
    ));
    out.push(BenchQuery::new(
        "PQ7",
        format!(
            "SELECT ?rv ?c WHERE {{ ?rv <{ns}reviewVerdict> 'rejected' . ?rv <{ns}ofChange> ?c }}"
        ),
    ));
    out.push(BenchQuery::new(
        "PQ8",
        format!(
            "SELECT ?b ?label WHERE {{ ?b <{ns}buildStatus> 'failed' . ?b <{ns}buildLabel> ?label }}"
        ),
    ));
    out.push(BenchQuery::new(
        "PQ9",
        format!(
            "ASK {{ ?b <{ns}severity> 'critical' . ?b <{ns}duplicateOf> ?d }}"
        ),
    ));
    // PQ10: the paper's 3ms-vs-27s cross-tool traceability join.
    out.push(BenchQuery::new(
        "PQ10",
        format!(
            "SELECT ?req ?bug ?chg ?bld WHERE {{ \
             ?req <{ns}reqPriority> 'P1' . \
             ?bug <{ns}affectsRequirement> ?req . ?bug <{ns}severity> 'critical' . \
             ?chg <{ns}fixesBug> ?bug . \
             ?bld <{ns}includesChange> ?chg . ?bld <{ns}buildStatus> 'failed' }}"
        ),
    ));
    // PQ11–PQ13: reverse traversals.
    out.push(BenchQuery::new(
        "PQ11",
        format!("SELECT ?s ?p WHERE {{ ?s ?p <{ns}person/0> }}"),
    ));
    out.push(BenchQuery::new(
        "PQ12",
        format!(
            "SELECT ?t WHERE {{ ?t <{ns}verifiesRequirement> <{ns}req/0> }}"
        ),
    ));
    out.push(BenchQuery::new(
        "PQ13",
        format!(
            "SELECT ?w ?b WHERE {{ ?w <{ns}tracksBug> ?b . ?b <{ns}status> 'closed' }}"
        ),
    ));
    // PQ14–PQ17: medium star + OPTIONAL queries (paper Fig. 18).
    out.push(BenchQuery::new(
        "PQ14",
        format!(
            "SELECT ?b ?sev ?st ?as WHERE {{ ?b <{ty}> <{ns}BugReport> . \
             ?b <{ns}severity> ?sev . ?b <{ns}status> ?st . \
             OPTIONAL {{ ?b <{ns}assignee> ?as }} }}"
        ),
    ));
    out.push(BenchQuery::new(
        "PQ15",
        format!(
            "SELECT ?t ?v ?msg WHERE {{ ?t <{ns}verdict> ?v . \
             OPTIONAL {{ ?t <{ns}failureMessage> ?msg }} FILTER(str(?v) = 'fail') }}"
        ),
    ));
    out.push(BenchQuery::new(
        "PQ16",
        format!(
            "SELECT ?r ?cat ?bug WHERE {{ ?r <{ns}category> ?cat . \
             OPTIONAL {{ ?bug <{ns}affectsRequirement> ?r }} }}"
        ),
    ));
    out.push(BenchQuery::new(
        "PQ17",
        format!(
            "SELECT ?c ?rv WHERE {{ ?c <{ty}> <{ns}ChangeSet> . ?c <{ns}filesChanged> ?f . \
             OPTIONAL {{ ?rv <{ns}ofChange> ?c }} FILTER(?f > 30) }}"
        ),
    ));
    // PQ18–PQ23: mixed shapes.
    out.push(BenchQuery::new(
        "PQ18",
        format!(
            "SELECT DISTINCT ?comp WHERE {{ ?b <{ns}component> ?comp . \
             ?b <{ns}severity> 'critical' }} ORDER BY ?comp"
        ),
    ));
    out.push(BenchQuery::new(
        "PQ19",
        format!(
            "SELECT ?p ?b WHERE {{ ?b <{ns}assignee> ?p . ?b <{ns}reporter> ?p }}"
        ),
    ));
    out.push(BenchQuery::new(
        "PQ20",
        format!(
            "SELECT ?b1 ?b2 WHERE {{ ?b1 <{ns}duplicateOf> ?b2 . ?b2 <{ns}status> 'open' }}"
        ),
    ));
    out.push(BenchQuery::new(
        "PQ21",
        format!(
            "SELECT ?res ?tc ?req WHERE {{ ?res <{ns}verdict> 'fail' . \
             ?res <{ns}forTestCase> ?tc . ?tc <{ns}verifiesRequirement> ?req }}"
        ),
    ));
    out.push(BenchQuery::new(
        "PQ22",
        format!(
            "SELECT ?person ?n WHERE {{ {{ ?c <{ns}author> ?person }} UNION \
             {{ ?rv <{ns}reviewer> ?person }} . ?person <{ns}title> ?n }}"
        ),
    ));
    out.push(BenchQuery::new(
        "PQ23",
        format!(
            "SELECT ?b WHERE {{ ?b <{ns}created> ?d . FILTER regex(?d, '^2012-01') }}"
        ),
    ));
    // PQ24: medium multi-tool join (Fig. 18 family).
    out.push(BenchQuery::new(
        "PQ24",
        format!(
            "SELECT ?req ?test ?res WHERE {{ ?test <{ns}verifiesRequirement> ?req . \
             ?res <{ns}forTestCase> ?test . ?res <{ns}verdict> 'pass' . \
             OPTIONAL {{ ?req <{ns}parentReq> ?parent }} }}"
        ),
    ));
    out.push(BenchQuery::new(
        "PQ25",
        format!(
            "SELECT ?a ?n WHERE {{ ?c <{ns}author> ?a . ?a <{ns}title> ?n . \
             ?c <{ns}implementsRequirement> ?r . ?r <{ns}reqPriority> 'P2' }}"
        ),
    ));
    // PQ26–PQ28: the giant UNIONs (the paper mentions a SPARQL union of 100
    // conjunctive queries).
    for (qi, n_branches) in [(26usize, 100usize), (27, 60), (28, 40)] {
        let mut branches = Vec::new();
        for k in 0..n_branches {
            let comp = k % 25;
            let sev = SEVERITIES[k % SEVERITIES.len()];
            branches.push(format!(
                "{{ ?x <{ns}component> 'component-{comp}' . ?x <{ns}severity> '{sev}' }}"
            ));
        }
        out.push(BenchQuery::new(
            format!("PQ{qi}"),
            format!("SELECT ?x WHERE {{ {} }}", branches.join(" UNION ")),
        ));
    }
    // PQ29: medium chained query with modifiers.
    out.push(BenchQuery::new(
        "PQ29",
        format!(
            "SELECT DISTINCT ?owner WHERE {{ ?t <{ns}testOwner> ?owner . \
             ?res <{ns}forTestCase> ?t . ?res <{ns}verdict> 'error' }} ORDER BY ?owner LIMIT 20"
        ),
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn predicate_inventory_is_prbench_sized() {
        let triples = generate(300, 1);
        let preds: std::collections::HashSet<String> =
            triples.iter().map(|t| t.predicate.encode()).collect();
        // Paper: 51 predicates. Our schema lands in the same range.
        assert!((40..=60).contains(&preds.len()), "{} predicates", preds.len());
    }

    #[test]
    fn twenty_nine_queries_and_the_giant_union() {
        let qs = queries();
        assert_eq!(qs.len(), 29);
        let pq26 = qs.iter().find(|q| q.name == "PQ26").unwrap();
        assert_eq!(pq26.sparql.matches("UNION").count(), 99);
    }

    #[test]
    fn cross_tool_links_exist() {
        let triples = generate(200, 3);
        let has = |p: &str| triples.iter().any(|t| t.predicate.encode().contains(p));
        assert!(has("fixesBug"));
        assert!(has("verifiesRequirement"));
        assert!(has("includesChange"));
        assert!(has("tracksBug"));
    }
}
