//! Seeded grammar-based SPARQL fuzzing cases for the differential oracle.
//!
//! `gen_case(seed)` deterministically produces a small dataset plus one
//! query drawn from the grammar the workspace's `sparql` parser actually
//! accepts: connected BGPs (pivot-variable chaining, so no accidental cross
//! products), constant and variable predicates, repeated variables,
//! OPTIONAL blocks, UNION branches with shared variables, group-scoped
//! FILTERs over the full builtin surface (comparisons, arithmetic, BOUND,
//! REGEX, STR/LANG, isIRI/isLITERAL, &&/||/!), DISTINCT, ORDER BY and
//! LIMIT/OFFSET windows — plus the analytic surface: BIND, inline VALUES
//! (with UNDEF), subqueries (plain, DISTINCT and aggregating), aggregate
//! projections (COUNT/SUM/AVG/MIN/MAX, COUNT(*), DISTINCT-in-aggregate),
//! GROUP BY and HAVING, and deferred value-domain FILTERs over extension
//! variables. The generator stays inside the translator's supported
//! envelope on purpose: the oracle treats an `Unsupported` error as a
//! divergence, so anything it emits must translate. Two deliberate
//! restrictions keep results bit-deterministic across thread widths: the
//! vocabulary has no xsd:double literals (integer sums are exact in f64
//! regardless of morsel merge order) and subqueries carry no solution
//! modifiers (the translator rejects them anyway).
//!
//! The vocabulary is a small closed world — 9 subjects, 6 predicates,
//! string/lang/integer literals — plus a few deliberately out-of-vocabulary
//! terms, so generated queries land on non-empty and empty results alike.
//! Everything is a pure function of the seed: the same `u64` yields the
//! same (dataset, query) pair on every run, which is what lets
//! `scripts/verify.sh --fuzz` pin its corpus in CI.
//!
//! `gen_update_case(seed)` does the same for SPARQL 1.1 Update requests:
//! a deduplicated dataset plus 1–3 `;`-chained operations (INSERT DATA,
//! DELETE DATA, DELETE WHERE, DELETE/INSERT ... WHERE) over the same closed
//! vocabulary, for differential checking against a naive set-semantic
//! reference in `db2rdf::oracle`.

use rdf::{Term, Triple};

use crate::rng::SplitMix64;

/// One generated differential-oracle case.
#[derive(Debug, Clone)]
pub struct FuzzCase {
    pub seed: u64,
    pub triples: Vec<Triple>,
    pub query: String,
}

/// One generated update-oracle case: a starting dataset plus a SPARQL 1.1
/// Update request (possibly several `;`-chained operations) to run over it.
#[derive(Debug, Clone)]
pub struct UpdateFuzzCase {
    pub seed: u64,
    pub triples: Vec<Triple>,
    pub update: String,
}

const SUBJECTS: u64 = 9;
const PREDICATES: u64 = 6;
const STR_VALS: u64 = 5;
const INT_VALS: i64 = 16;

/// Deterministically generate dataset + query for `seed`.
pub fn gen_case(seed: u64) -> FuzzCase {
    let mut rng = SplitMix64::seed_from_u64(seed ^ 0xF022_AB1E_0DD5_EED5);
    let triples = gen_dataset(&mut rng);
    let query = gen_query(&mut rng);
    FuzzCase { seed, triples, query }
}

/// Deterministically generate dataset + update request for `seed`.
///
/// The dataset is deduplicated (RDF stores are set-semantic, and the update
/// oracle counts effects), and the update draws from the grammar
/// `sparql::parse_update` accepts: INSERT DATA / DELETE DATA with ground
/// vocabulary triples, DELETE WHERE shorthand over a single pattern, and
/// DELETE/INSERT ... WHERE with templates mixing WHERE-bound variables and
/// constants — including deliberately type-broken templates (a literal in
/// subject position via an object-bound variable) that exercise the
/// skip-invalid-instantiation rule.
pub fn gen_update_case(seed: u64) -> UpdateFuzzCase {
    let mut rng = SplitMix64::seed_from_u64(seed ^ 0x0DD5_EED5_F0F0_CAFE);
    let mut triples = gen_dataset(&mut rng);
    triples.sort();
    triples.dedup();
    let update = gen_update(&mut rng);
    UpdateFuzzCase { seed, triples, update }
}

/// 1–3 update operations joined with `;`, each drawn over the closed
/// vocabulary so deletes hit existing triples often enough to matter.
pub fn gen_update(rng: &mut SplitMix64) -> String {
    let n = rng.gen_range(1..4usize);
    (0..n).map(|_| gen_update_op(rng)).collect::<Vec<_>>().join(" ; ")
}

fn gen_update_op(rng: &mut SplitMix64) -> String {
    match rng.gen_range(0..6u32) {
        0 | 1 => format!("INSERT DATA {{ {}}}", gen_ground_block(rng)),
        2 => format!("DELETE DATA {{ {}}}", gen_ground_block(rng)),
        3 => {
            // DELETE WHERE shorthand: the pattern doubles as the template.
            let subject = if rng.gen_ratio(1, 3) { gen_subject_const(rng) } else { "?s".into() };
            let predicate = if rng.gen_ratio(1, 4) {
                "?p".to_string()
            } else {
                format!("<http://p/{}>", rng.gen_range(0..PREDICATES))
            };
            let object = if rng.gen_ratio(1, 2) { "?o".into() } else { gen_object_const(rng) };
            format!("DELETE WHERE {{ {subject} {predicate} {object} }}")
        }
        _ => gen_delete_insert(rng),
    }
}

/// 1–4 ground triples for an INSERT DATA / DELETE DATA block. Drawn from the
/// same vocabulary as `gen_dataset` (plus the out-of-vocabulary terms), so
/// inserts frequently duplicate existing triples and deletes frequently hit.
fn gen_ground_block(rng: &mut SplitMix64) -> String {
    let n = rng.gen_range(1..5usize);
    let mut out = String::new();
    for _ in 0..n {
        let s = gen_subject_const(rng);
        let p = if rng.gen_ratio(1, 10) {
            "<http://p/99>".to_string()
        } else {
            format!("<http://p/{}>", rng.gen_range(0..PREDICATES))
        };
        let o = gen_object_const(rng);
        out.push_str(&format!("{s} {p} {o} . "));
    }
    out
}

/// DELETE/INSERT ... WHERE with a connected 1–2 pattern WHERE clause
/// (occasionally plus a FILTER) and templates that mix the WHERE-bound
/// variables with constants.
fn gen_delete_insert(rng: &mut SplitMix64) -> String {
    let mut vars: Vec<String> = Vec::new();
    let mut counter = 0usize;
    let mut body = gen_bgp(rng, &mut vars, &mut counter, 2);
    if rng.gen_ratio(1, 4) {
        let expr = gen_filter(rng, &vars, &[]);
        body.push_str(&format!("FILTER ({expr}) "));
    }
    let delete = if rng.gen_ratio(1, 6) { String::new() } else { gen_template(rng, &vars) };
    let insert = if !delete.is_empty() && rng.gen_ratio(1, 4) {
        String::new()
    } else {
        gen_template(rng, &vars)
    };
    let mut op = String::new();
    if !delete.is_empty() {
        op.push_str(&format!("DELETE {{ {delete}}} "));
    }
    if !insert.is_empty() {
        op.push_str(&format!("INSERT {{ {insert}}} "));
    }
    op.push_str(&format!("WHERE {{ {body}}}"));
    op
}

/// A 1–2 triple template over `vars` and constants. Variables can land in
/// any position — including literal-valued variables in subject position —
/// which the applier must skip rather than mis-insert.
fn gen_template(rng: &mut SplitMix64, vars: &[String]) -> String {
    let pick = |rng: &mut SplitMix64| format!("?{}", vars[rng.gen_range(0..vars.len())]);
    let n = rng.gen_range(1..3usize);
    let mut out = String::new();
    for _ in 0..n {
        let s = if !vars.is_empty() && rng.gen_ratio(2, 3) {
            pick(rng)
        } else {
            gen_subject_const(rng)
        };
        let p = if !vars.is_empty() && rng.gen_ratio(1, 6) {
            pick(rng)
        } else if rng.gen_ratio(1, 10) {
            "<http://p/99>".to_string()
        } else {
            format!("<http://p/{}>", rng.gen_range(0..PREDICATES))
        };
        let o = if !vars.is_empty() && rng.gen_ratio(1, 2) {
            pick(rng)
        } else {
            gen_object_const(rng)
        };
        out.push_str(&format!("{s} {p} {o} . "));
    }
    out
}

/// 1–40 triples over the closed vocabulary. Objects mix IRIs (for chained
/// joins), typed integers (for numeric filters), plain literals and
/// language-tagged literals (for STR/LANG/REGEX filters).
pub fn gen_dataset(rng: &mut SplitMix64) -> Vec<Triple> {
    let n = rng.gen_range(1..41usize);
    (0..n)
        .map(|_| {
            let s = Term::iri(format!("http://s/{}", rng.gen_range(0..SUBJECTS)));
            let p = Term::iri(format!("http://p/{}", rng.gen_range(0..PREDICATES)));
            let o = match rng.gen_range(0..10u32) {
                0..=2 => Term::iri(format!("http://s/{}", rng.gen_range(0..SUBJECTS))),
                3..=5 => Term::typed_lit(
                    rng.gen_range(0..INT_VALS).to_string(),
                    "http://www.w3.org/2001/XMLSchema#integer",
                ),
                6..=7 => Term::lit(format!("val{}", rng.gen_range(0..STR_VALS))),
                8 => Term::lang_lit(format!("val{}", rng.gen_range(0..STR_VALS)), "en"),
                _ => Term::lang_lit(format!("val{}", rng.gen_range(0..STR_VALS)), "fr"),
            };
            Triple::new(s, p, o)
        })
        .collect()
}

/// Generate one query over the same vocabulary `gen_dataset` draws from.
pub fn gen_query(rng: &mut SplitMix64) -> String {
    let mut vars: Vec<String> = Vec::new(); // bound by required patterns
    let mut opt_vars: Vec<String> = Vec::new(); // bound only inside OPTIONAL
    let mut counter = 0usize;

    let mut body = if rng.gen_ratio(1, 40) {
        String::new() // the empty-group edge the protocol once mishandled
    } else if rng.gen_ratio(1, 4) {
        // UNION: two branches that share the starting pivot ?v0, so the
        // branches join on a common variable when projected together.
        let left = gen_bgp(rng, &mut vars, &mut counter, 2);
        counter = 1; // reset so the right branch also starts from ?v0
        let right = gen_bgp(rng, &mut vars, &mut counter, 2);
        vars.sort();
        vars.dedup();
        format!("{{ {left}}} UNION {{ {right}}} ")
    } else {
        gen_bgp(rng, &mut vars, &mut counter, 4)
    };

    if !vars.is_empty() && rng.gen_ratio(1, 3) {
        body.push_str(&gen_optional(rng, &vars, &mut opt_vars, &mut counter));
    }
    if !(vars.is_empty() && opt_vars.is_empty()) && rng.gen_ratio(2, 5) {
        let expr = gen_filter(rng, &vars, &opt_vars);
        body.push_str(&format!("FILTER ({expr}) "));
    }

    // Top-level extensions (the only placement the translator accepts).
    // `plain_vars` tracks value-domain variables (BIND targets, aggregating
    // subquery aliases) — they must never be shared join variables with a
    // VALUES block or another subquery, and filters over them compare
    // numerically.
    let mut plain_vars: Vec<String> = Vec::new();
    if rng.gen_ratio(1, 5) {
        body.push_str(&gen_values_block(rng, &vars, &opt_vars, &mut counter));
    }
    if rng.gen_ratio(1, 6) {
        body.push_str(&gen_subquery(rng, &vars, &mut plain_vars, &mut counter));
    }
    if rng.gen_ratio(1, 4) {
        body.push_str(&gen_bind(rng, &vars, &opt_vars, &mut plain_vars, &mut counter));
    }
    // A deferred FILTER over a value-domain variable: always numeric.
    if !plain_vars.is_empty() && rng.gen_ratio(1, 2) {
        let v = &plain_vars[rng.gen_range(0..plain_vars.len())];
        let op = ["<", "<=", ">", ">=", "=", "!="][rng.gen_range(0..6usize)];
        body.push_str(&format!("FILTER (?{v} {op} {}) ", rng.gen_range(0..2 * INT_VALS)));
    }

    let mut all_vars: Vec<String> =
        vars.iter().chain(opt_vars.iter()).chain(plain_vars.iter()).cloned().collect();
    all_vars.sort();
    all_vars.dedup();

    // Aggregate projection replaces the plain SELECT (and its modifiers:
    // GROUP BY brings its own projection/ordering rules).
    if !all_vars.is_empty() && rng.gen_ratio(1, 4) {
        return gen_aggregate_query(rng, &body, &all_vars, &mut counter);
    }

    let mut query = if rng.gen_ratio(1, 5) {
        format!("ASK {{ {body}}}")
    } else {
        let distinct = if rng.gen_ratio(1, 3) { "DISTINCT " } else { "" };
        let projection = if all_vars.is_empty() || rng.gen_ratio(1, 2) {
            "*".to_string()
        } else if rng.gen_ratio(1, 5) {
            // Computed select expression beside a bare variable.
            let v = &all_vars[rng.gen_range(0..all_vars.len())];
            let w = &all_vars[rng.gen_range(0..all_vars.len())];
            let op = if rng.gen_ratio(1, 2) { "+" } else { "*" };
            let e = format!("e{counter}");
            format!("?{v} ((?{w} {op} {}) AS ?{e})", rng.gen_range(1..4i64))
        } else {
            let keep = rng.gen_range(1..all_vars.len() + 1usize);
            all_vars.iter().take(keep).map(|v| format!("?{v}")).collect::<Vec<_>>().join(" ")
        };
        format!("SELECT {distinct}{projection} WHERE {{ {body}}}")
    };

    if query.starts_with("SELECT") && !all_vars.is_empty() && rng.gen_ratio(1, 5) {
        let key = &all_vars[rng.gen_range(0..all_vars.len())];
        let dir = ["?", "ASC(?", "DESC(?"][rng.gen_range(0..3usize)];
        let close = if dir == "?" { "" } else { ")" };
        query.push_str(&format!(" ORDER BY {dir}{key}{close}"));
    }
    if rng.gen_ratio(1, 4) {
        query.push_str(&format!(" LIMIT {}", rng.gen_range(1..21u32)));
        if rng.gen_ratio(1, 2) {
            query.push_str(&format!(" OFFSET {}", rng.gen_range(0..11u32)));
        }
    }
    query
}

/// A connected BGP of 1..=`max_patterns` triple patterns: each pattern
/// either chains off the current pivot variable (object becomes the new
/// pivot) or stars on it (constant object). Registers every variable it
/// binds into `vars`.
fn gen_bgp(
    rng: &mut SplitMix64,
    vars: &mut Vec<String>,
    counter: &mut usize,
    max_patterns: usize,
) -> String {
    let n = rng.gen_range(1..max_patterns + 1);
    let mut out = String::new();
    let pivot_name = format!("v{}", *counter);
    *counter += 1;
    push_unique(vars, &pivot_name);
    let mut pivot = pivot_name;
    for t in 0..n {
        // Subject: the pivot, or (first pattern only) sometimes a constant.
        let subject = if t == 0 && rng.gen_ratio(1, 6) {
            gen_subject_const(rng)
        } else {
            format!("?{pivot}")
        };
        // Predicate: mostly constant, occasionally a variable (drives the
        // entity layout's RPH/RS union paths) or out-of-vocabulary.
        let predicate = if rng.gen_ratio(1, 10) {
            let v = format!("p{}", *counter);
            *counter += 1;
            push_unique(vars, &v);
            format!("?{v}")
        } else if rng.gen_ratio(1, 12) {
            "<http://p/99>".to_string()
        } else {
            format!("<http://p/{}>", rng.gen_range(0..PREDICATES))
        };
        // Object: fresh variable (new pivot), repeated variable, or constant.
        let object = if rng.gen_ratio(1, 2) {
            let v = format!("v{}", *counter);
            *counter += 1;
            push_unique(vars, &v);
            pivot = v.clone();
            format!("?{v}")
        } else if !vars.is_empty() && rng.gen_ratio(1, 6) {
            format!("?{}", vars[rng.gen_range(0..vars.len())])
        } else {
            gen_object_const(rng)
        };
        out.push_str(&format!("{subject} {predicate} {object} . "));
    }
    out
}

/// An inline VALUES block: one or two variables (existing term-domain
/// variables join, fresh ones extend), 1–3 rows from the vocabulary with
/// occasional UNDEF cells and out-of-vocabulary terms (which the entity
/// layout must treat as matching nothing, not as a missing dictionary id).
fn gen_values_block(
    rng: &mut SplitMix64,
    vars: &[String],
    opt_vars: &[String],
    counter: &mut usize,
) -> String {
    let pick_var = |rng: &mut SplitMix64, counter: &mut usize| -> String {
        let pool: Vec<&String> = vars.iter().chain(opt_vars.iter()).collect();
        if !pool.is_empty() && rng.gen_ratio(2, 3) {
            pool[rng.gen_range(0..pool.len())].clone()
        } else {
            let u = format!("u{}", *counter);
            *counter += 1;
            u
        }
    };
    let cell = |rng: &mut SplitMix64| -> String {
        if rng.gen_ratio(1, 4) {
            "UNDEF".to_string()
        } else {
            gen_object_const(rng)
        }
    };
    let rows = rng.gen_range(1..4usize);
    if rng.gen_ratio(1, 3) {
        let a = pick_var(rng, counter);
        let mut b = pick_var(rng, counter);
        if b == a {
            b = format!("u{}", *counter);
            *counter += 1;
        }
        let data: Vec<String> =
            (0..rows).map(|_| format!("({} {})", cell(rng), cell(rng))).collect();
        format!("VALUES (?{a} ?{b}) {{ {} }} ", data.join(" "))
    } else {
        let v = pick_var(rng, counter);
        let data: Vec<String> = (0..rows).map(|_| cell(rng)).collect();
        format!("VALUES ?{v} {{ {} }} ", data.join(" "))
    }
}

/// A BIND over the already-bound variables (or a constant when none are
/// visible): always numeric-valued, so downstream filters compare cleanly
/// in the value domain. Occasionally a bare variable copy, which keeps the
/// source's domain.
fn gen_bind(
    rng: &mut SplitMix64,
    vars: &[String],
    opt_vars: &[String],
    plain_vars: &mut Vec<String>,
    counter: &mut usize,
) -> String {
    let b = format!("b{}", *counter);
    *counter += 1;
    let pool: Vec<&String> = vars.iter().chain(opt_vars.iter()).collect();
    // A bare copy of a term variable is NOT value-domain, so it stays out
    // of `plain_vars`; every computed shape is value-domain.
    let expr = if pool.is_empty() || rng.gen_ratio(1, 6) {
        plain_vars.push(b.clone());
        format!("{}", rng.gen_range(0..INT_VALS))
    } else if rng.gen_ratio(1, 6) {
        format!("?{}", pool[rng.gen_range(0..pool.len())])
    } else {
        plain_vars.push(b.clone());
        let v = pool[rng.gen_range(0..pool.len())];
        let op = if rng.gen_ratio(1, 2) { "+" } else { "*" };
        format!("?{v} {op} {}", rng.gen_range(1..4i64))
    };
    format!("BIND({expr} AS ?{b}) ")
}

/// A top-level subquery sharing the outer pivot `?v0` when it exists:
/// plain or DISTINCT projection, or a grouped aggregate whose alias joins
/// the outer query as a fresh value-domain variable. Subqueries carry no
/// solution modifiers (the translator rejects them).
fn gen_subquery(
    rng: &mut SplitMix64,
    vars: &[String],
    plain_vars: &mut Vec<String>,
    counter: &mut usize,
) -> String {
    let pivot = if vars.iter().any(|v| v == "v0") {
        "v0".to_string()
    } else {
        let v = format!("u{}", *counter);
        *counter += 1;
        v
    };
    let q = format!("q{}", *counter);
    *counter += 1;
    let p = format!("<http://p/{}>", rng.gen_range(0..PREDICATES));
    match rng.gen_range(0..4u32) {
        0 => format!("{{ SELECT ?{pivot} WHERE {{ ?{pivot} {p} ?{q} }} }} "),
        1 => format!("{{ SELECT DISTINCT ?{pivot} WHERE {{ ?{pivot} {p} ?{q} }} }} "),
        2 => {
            let a = format!("a{}", *counter);
            *counter += 1;
            plain_vars.push(a.clone());
            let agg = ["COUNT", "SUM", "MAX", "MIN"][rng.gen_range(0..4usize)];
            format!(
                "{{ SELECT ?{pivot} ({agg}(?{q}) AS ?{a}) WHERE {{ ?{pivot} {p} ?{q} }} \
                 GROUP BY ?{pivot} }} "
            )
        }
        _ => {
            // Global aggregate: one row, no shared variable with the outer
            // query — a pure scalar extension.
            let a = format!("a{}", *counter);
            *counter += 1;
            plain_vars.push(a.clone());
            let inner = format!("in{}", *counter);
            *counter += 1;
            format!("{{ SELECT (COUNT(?{inner}) AS ?{a}) WHERE {{ ?{inner} {p} ?{q} }} }} ")
        }
    }
}

/// One aggregate call over the bound variables.
fn gen_aggregate_call(rng: &mut SplitMix64, all_vars: &[String]) -> String {
    let v = &all_vars[rng.gen_range(0..all_vars.len())];
    match rng.gen_range(0..9u32) {
        0 => "COUNT(*)".to_string(),
        1 => format!("COUNT(?{v})"),
        2 => format!("COUNT(DISTINCT ?{v})"),
        3 => format!("SUM(?{v})"),
        4 => format!("SUM(DISTINCT ?{v})"),
        5 => format!("AVG(?{v})"),
        6 => format!("MIN(?{v})"),
        7 => format!("MAX(?{v})"),
        _ => format!("SUM(?{v} + {})", rng.gen_range(1..4i64)),
    }
}

/// An aggregate query over `body`: 0–2 grouping keys (0 keys = a global
/// aggregate, which yields exactly one row even over empty input), 1–2
/// aggregate items, optional HAVING over an aggregate call, ORDER BY only
/// over projected items (the parser enforces nothing else is visible).
fn gen_aggregate_query(
    rng: &mut SplitMix64,
    body: &str,
    all_vars: &[String],
    counter: &mut usize,
) -> String {
    let nkeys = rng.gen_range(0..3usize).min(all_vars.len());
    let mut keys: Vec<String> = Vec::new();
    while keys.len() < nkeys {
        let v = all_vars[rng.gen_range(0..all_vars.len())].clone();
        if !keys.contains(&v) {
            keys.push(v);
        }
    }
    let mut items: Vec<String> = keys.iter().map(|k| format!("?{k}")).collect();
    let mut projected: Vec<String> = keys.clone();
    for _ in 0..rng.gen_range(1..3usize) {
        let alias = format!("a{}", *counter);
        *counter += 1;
        items.push(format!("({} AS ?{alias})", gen_aggregate_call(rng, all_vars)));
        projected.push(alias);
    }
    let mut query = format!("SELECT {} WHERE {{ {body}}}", items.join(" "));
    if !keys.is_empty() {
        let ks: Vec<String> = keys.iter().map(|k| format!("?{k}")).collect();
        query.push_str(&format!(" GROUP BY {}", ks.join(" ")));
    }
    if rng.gen_ratio(1, 3) {
        let op = ["<", "<=", ">", ">=", "=", "!="][rng.gen_range(0..6usize)];
        query.push_str(&format!(
            " HAVING({} {op} {})",
            gen_aggregate_call(rng, all_vars),
            rng.gen_range(0..INT_VALS)
        ));
    }
    if rng.gen_ratio(1, 4) {
        let key = &projected[rng.gen_range(0..projected.len())];
        let dir = ["?", "ASC(?", "DESC(?"][rng.gen_range(0..3usize)];
        let close = if dir == "?" { "" } else { ")" };
        query.push_str(&format!(" ORDER BY {dir}{key}{close}"));
    }
    if rng.gen_ratio(1, 5) {
        query.push_str(&format!(" LIMIT {}", rng.gen_range(1..11u32)));
    }
    query
}

fn gen_optional(
    rng: &mut SplitMix64,
    vars: &[String],
    opt_vars: &mut Vec<String>,
    counter: &mut usize,
) -> String {
    let anchor = &vars[rng.gen_range(0..vars.len())];
    let w = format!("w{}", *counter);
    *counter += 1;
    push_unique(opt_vars, &w);
    let p = format!("<http://p/{}>", rng.gen_range(0..PREDICATES));
    if rng.gen_ratio(1, 3) {
        // Two-pattern OPTIONAL chained through the optional variable.
        let w2 = format!("w{}", *counter);
        *counter += 1;
        push_unique(opt_vars, &w2);
        let p2 = format!("<http://p/{}>", rng.gen_range(0..PREDICATES));
        format!("OPTIONAL {{ ?{anchor} {p} ?{w} . ?{w} {p2} ?{w2} }} ")
    } else {
        format!("OPTIONAL {{ ?{anchor} {p} ?{w} }} ")
    }
}

fn gen_subject_const(rng: &mut SplitMix64) -> String {
    if rng.gen_ratio(1, 8) {
        "<http://s/99>".to_string() // out of vocabulary: empty scan
    } else {
        format!("<http://s/{}>", rng.gen_range(0..SUBJECTS))
    }
}

fn gen_object_const(rng: &mut SplitMix64) -> String {
    match rng.gen_range(0..8u32) {
        0..=2 => format!("<http://s/{}>", rng.gen_range(0..SUBJECTS)),
        3..=4 => format!("{}", rng.gen_range(0..INT_VALS)),
        5 => format!("\"val{}\"", rng.gen_range(0..STR_VALS)),
        6 => format!("\"val{}\"@en", rng.gen_range(0..STR_VALS)),
        _ => "\"nope\"".to_string(), // out of vocabulary
    }
}

/// A FILTER constraint over the bound variables: one or two leaf predicates
/// combined with &&, || or !.
fn gen_filter(rng: &mut SplitMix64, vars: &[String], opt_vars: &[String]) -> String {
    let leaf = gen_filter_leaf(rng, vars, opt_vars);
    if rng.gen_ratio(1, 3) {
        let other = gen_filter_leaf(rng, vars, opt_vars);
        let op = if rng.gen_ratio(1, 2) { "&&" } else { "||" };
        format!("({leaf}) {op} ({other})")
    } else if rng.gen_ratio(1, 6) {
        format!("!({leaf})")
    } else {
        leaf
    }
}

fn gen_filter_leaf(rng: &mut SplitMix64, vars: &[String], opt_vars: &[String]) -> String {
    let pick = |rng: &mut SplitMix64, pool: &[String], fallback: &[String]| -> String {
        let pool = if pool.is_empty() { fallback } else { pool };
        pool[rng.gen_range(0..pool.len())].clone()
    };
    let v = pick(rng, vars, opt_vars);
    match rng.gen_range(0..9u32) {
        0 => {
            // Numeric comparison (numeric-shaped on the constant side).
            let op = ["<", "<=", ">", ">=", "=", "!="][rng.gen_range(0..6usize)];
            format!("?{v} {op} {}", rng.gen_range(0..INT_VALS))
        }
        1 => {
            // Arithmetic keeps the comparison numeric-shaped. Division is
            // deliberately excluded: SQL and SPARQL disagree on x/0.
            let op = if rng.gen_ratio(1, 2) { "+" } else { "*" };
            format!("(?{v} {op} {}) > {}", rng.gen_range(1..4i64), rng.gen_range(0..INT_VALS))
        }
        2 => {
            let eq = if rng.gen_ratio(2, 3) { "=" } else { "!=" };
            format!("?{v} {eq} \"val{}\"", rng.gen_range(0..STR_VALS))
        }
        3 => {
            let eq = if rng.gen_ratio(2, 3) { "=" } else { "!=" };
            format!("?{v} {eq} <http://s/{}>", rng.gen_range(0..SUBJECTS))
        }
        4 => {
            let w = pick(rng, vars, opt_vars);
            let eq = if rng.gen_ratio(1, 2) { "=" } else { "!=" };
            format!("?{v} {eq} ?{w}")
        }
        5 => {
            // BOUND prefers an OPTIONAL variable, where it can be false.
            let w = pick(rng, opt_vars, vars);
            if rng.gen_ratio(1, 3) {
                format!("!BOUND(?{w})")
            } else {
                format!("BOUND(?{w})")
            }
        }
        6 => {
            let f = if rng.gen_ratio(1, 2) { "isIRI" } else { "isLITERAL" };
            format!("{f}(?{v})")
        }
        7 => {
            let pat = ["val", "^val", "2$", "^http", "al"][rng.gen_range(0..5usize)];
            let flags = if rng.gen_ratio(1, 3) { ", \"i\"" } else { "" };
            format!("REGEX(STR(?{v}), \"{pat}\"{flags})")
        }
        _ => {
            let lang = if rng.gen_ratio(1, 2) { "en" } else { "fr" };
            format!("LANG(?{v}) = \"{lang}\"")
        }
    }
}

fn push_unique(vars: &mut Vec<String>, v: &str) {
    if !vars.iter().any(|x| x == v) {
        vars.push(v.to_string());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cases_are_deterministic_per_seed() {
        for seed in [0u64, 1, 42, 0xDEAD_BEEF] {
            let a = gen_case(seed);
            let b = gen_case(seed);
            assert_eq!(a.triples, b.triples);
            assert_eq!(a.query, b.query);
        }
        assert_ne!(gen_case(1).query, gen_case(2).query);
    }

    #[test]
    fn update_cases_are_deterministic_and_deduplicated() {
        for seed in [0u64, 1, 42, 0xDEAD_BEEF] {
            let a = gen_update_case(seed);
            let b = gen_update_case(seed);
            assert_eq!(a.triples, b.triples);
            assert_eq!(a.update, b.update);
            let mut dedup = a.triples.clone();
            dedup.sort();
            dedup.dedup();
            assert_eq!(a.triples, dedup, "dataset must be set-semantic");
        }
        assert_ne!(gen_update_case(1).update, gen_update_case(2).update);
    }

    #[test]
    fn update_cases_cover_every_operation_kind() {
        let mut insert_data = 0;
        let mut delete_data = 0;
        let mut delete_where = 0;
        let mut delete_insert = 0;
        for seed in 0..200u64 {
            let u = gen_update_case(seed).update;
            if u.contains("INSERT DATA") {
                insert_data += 1;
            }
            if u.contains("DELETE DATA") {
                delete_data += 1;
            }
            if u.contains("DELETE WHERE") {
                delete_where += 1;
            }
            if u.contains("WHERE") && (u.contains("INSERT {") || u.contains("DELETE {")) {
                delete_insert += 1;
            }
        }
        assert!(insert_data > 0 && delete_data > 0 && delete_where > 0 && delete_insert > 0);
    }

    #[test]
    fn generated_datasets_are_nonempty_and_in_vocabulary() {
        for seed in 0..50u64 {
            let case = gen_case(seed);
            assert!(!case.triples.is_empty());
            for t in &case.triples {
                assert!(t.subject.encode().starts_with("<http://s/"));
                assert!(t.predicate.encode().starts_with("<http://p/"));
            }
        }
    }
}
