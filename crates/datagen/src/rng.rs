//! Seedable, dependency-free PRNG for the dataset generators.
//!
//! The generators only need a deterministic stream with a `rand`-like
//! surface (`gen_range`, `gen_ratio`); statistical quality beyond that is
//! irrelevant, so SplitMix64 (Steele et al., "Fast Splittable Pseudorandom
//! Number Generators", OOPSLA'14) is plenty: one 64-bit state word, passes
//! BigCrush, and — crucially for the offline build — no external crate.

use std::ops::Range;

/// A SplitMix64 generator. API mirrors the subset of `rand::Rng` the
/// generators used, so porting call sites is a type swap.
#[derive(Debug, Clone)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Seed the generator (same spelling as `rand::SeedableRng`).
    pub fn seed_from_u64(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// Next raw 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform float in `[0, 1)` (53 random mantissa bits).
    pub fn gen_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform integer in `[range.start, range.end)`. Panics on an empty
    /// range, matching `rand::Rng::gen_range`.
    pub fn gen_range<T: RangeInt>(&mut self, range: Range<T>) -> T {
        let lo = range.start.to_u64_repr();
        let hi = range.end.to_u64_repr();
        assert!(lo < hi, "gen_range called with an empty range");
        T::from_u64_repr(lo + self.gen_below(hi - lo))
    }

    /// `true` with probability `numerator / denominator`.
    pub fn gen_ratio(&mut self, numerator: u32, denominator: u32) -> bool {
        assert!(numerator <= denominator && denominator > 0);
        self.gen_below(denominator as u64) < numerator as u64
    }

    /// `true` with probability `p`.
    pub fn gen_bool(&mut self, p: f64) -> bool {
        self.gen_f64() < p
    }

    /// Uniform value in `[0, bound)` via Lemire-style widening multiply with
    /// rejection, so small bounds carry no modulo bias.
    fn gen_below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        loop {
            let x = self.next_u64();
            let m = (x as u128) * (bound as u128);
            let low = m as u64;
            if low >= bound || low >= bound.wrapping_neg() % bound {
                return (m >> 64) as u64;
            }
        }
    }
}

/// Integer types usable with [`SplitMix64::gen_range`]. Signed types map
/// through an offset so the full domain works.
pub trait RangeInt: Copy {
    fn to_u64_repr(self) -> u64;
    fn from_u64_repr(v: u64) -> Self;
}

macro_rules! unsigned_range_int {
    ($($t:ty),*) => {$(
        impl RangeInt for $t {
            fn to_u64_repr(self) -> u64 {
                self as u64
            }
            fn from_u64_repr(v: u64) -> Self {
                v as $t
            }
        }
    )*};
}

macro_rules! signed_range_int {
    ($($t:ty => $u:ty),*) => {$(
        impl RangeInt for $t {
            fn to_u64_repr(self) -> u64 {
                (self as $u ^ (1 << (<$u>::BITS - 1))) as u64
            }
            fn from_u64_repr(v: u64) -> Self {
                (v as $u ^ (1 << (<$u>::BITS - 1))) as $t
            }
        }
    )*};
}

unsigned_range_int!(u8, u16, u32, u64, usize);
signed_range_int!(i8 => u8, i16 => u16, i32 => u32, i64 => u64, isize => usize);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = SplitMix64::seed_from_u64(7);
        let mut b = SplitMix64::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = SplitMix64::seed_from_u64(8);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = SplitMix64::seed_from_u64(1);
        for _ in 0..10_000 {
            let v = rng.gen_range(3..17usize);
            assert!((3..17).contains(&v));
            let s = rng.gen_range(-5..5i32);
            assert!((-5..5).contains(&s));
            let w = rng.gen_range(0..2u32);
            assert!(w < 2);
        }
    }

    #[test]
    fn gen_range_covers_all_values() {
        let mut rng = SplitMix64::seed_from_u64(2);
        let mut seen = [false; 8];
        for _ in 0..1_000 {
            seen[rng.gen_range(0..8usize)] = true;
        }
        assert!(seen.iter().all(|&b| b));
    }

    #[test]
    fn gen_ratio_roughly_matches() {
        let mut rng = SplitMix64::seed_from_u64(3);
        let hits = (0..100_000).filter(|_| rng.gen_ratio(1, 4)).count();
        assert!((20_000..30_000).contains(&hits), "{hits}");
    }

    #[test]
    fn gen_f64_unit_interval() {
        let mut rng = SplitMix64::seed_from_u64(4);
        for _ in 0..10_000 {
            let f = rng.gen_f64();
            assert!((0.0..1.0).contains(&f));
        }
    }
}
