//! SP²Bench-like DBLP-shaped dataset and the 17-query workload (SQ1–SQ17)
//! the paper evaluates. The generator reproduces the structural features
//! SP²Bench models: journals and proceedings per year, documents with wide
//! attribute stars, a shared author pool (low in-degree ≈ 2, per the
//! paper's §2.3 discussion), citations, and `rdfs:seeAlso`/homepage noise.
//! SQ4 keeps its defining property: a near-cross-product over the whole
//! dataset that times every system out at scale.

use crate::rng::SplitMix64;
use rdf::{Term, Triple};

use crate::BenchQuery;

pub const NS: &str = "http://sp2b.bench/";
pub const RDF_TYPE: &str = "http://www.w3.org/1999/02/22-rdf-syntax-ns#type";

fn p(local: &str) -> Term {
    Term::iri(format!("{NS}{local}"))
}

struct Gen {
    triples: Vec<Triple>,
    rng: SplitMix64,
}

impl Gen {
    fn emit(&mut self, s: &Term, pred: &str, o: Term) {
        self.triples.push(Triple::new(s.clone(), p(pred), o));
    }

    fn typ(&mut self, s: &Term, c: &str) {
        self.triples.push(Triple::new(s.clone(), Term::iri(RDF_TYPE), p(c)));
    }
}

/// Generate a dataset with roughly `n_documents` documents (~12 triples per
/// document including authors and venues).
pub fn generate(n_documents: usize, seed: u64) -> Vec<Triple> {
    stream(n_documents, seed).collect()
}

/// Stream the exact dataset `generate` returns — same seed, same bytes —
/// buffering the author/venue preamble and then one document at a time.
/// The stream keeps the document IRI list (needed for citations); that is
/// O(documents) small handles, not O(triples) materialized data.
pub fn stream(n_documents: usize, seed: u64) -> Sp2bStream {
    let n_persons = (n_documents / 3).max(4);
    let n_years = 30usize;
    Sp2bStream {
        g: Gen { triples: Vec::new(), rng: SplitMix64::seed_from_u64(seed) },
        persons: (0..n_persons).map(|i| Term::iri(format!("{NS}Person{i}"))).collect(),
        journals: (0..n_years).map(|y| Term::iri(format!("{NS}Journal{y}"))).collect(),
        procs: (0..n_years).map(|y| Term::iri(format!("{NS}Proceedings{y}"))).collect(),
        docs: Vec::with_capacity(n_documents),
        n_documents,
        started: false,
        buf: Vec::new().into_iter(),
    }
}

pub struct Sp2bStream {
    g: Gen,
    persons: Vec<Term>,
    journals: Vec<Term>,
    procs: Vec<Term>,
    docs: Vec<Term>,
    n_documents: usize,
    started: bool,
    buf: std::vec::IntoIter<Triple>,
}

impl Iterator for Sp2bStream {
    type Item = Triple;

    fn next(&mut self) -> Option<Triple> {
        loop {
            if let Some(t) = self.buf.next() {
                return Some(t);
            }
            if !self.started {
                self.started = true;
                preamble(&mut self.g, &self.persons, &self.journals, &self.procs);
            } else if self.docs.len() < self.n_documents {
                document(
                    &mut self.g,
                    &self.persons,
                    &self.journals,
                    &self.procs,
                    &mut self.docs,
                );
            } else {
                return None;
            }
            self.buf = std::mem::take(&mut self.g.triples).into_iter();
        }
    }
}

/// Author pool and venues — everything documents reference.
fn preamble(g: &mut Gen, persons: &[Term], journals: &[Term], procs: &[Term]) {
    for (i, person) in persons.iter().enumerate() {
        g.typ(person, "Person");
        g.emit(person, "name", Term::lit(format!("Author {i}")));
        if g.rng.gen_ratio(1, 4) {
            g.emit(person, "homepage", Term::iri(format!("http://people.example/{i}")));
        }
        if g.rng.gen_ratio(1, 6) {
            g.emit(person, "mbox", Term::lit(format!("author{i}@example.org")));
        }
        if g.rng.gen_ratio(1, 10) {
            g.emit(person, "affiliation", Term::lit(format!("Institute {}", i % 17)));
        }
    }

    // Venues: one journal volume and one proceedings per year.
    for (y, j) in journals.iter().enumerate() {
        g.typ(j, "Journal");
        g.emit(j, "title", Term::lit(format!("Journal 1 ({})", 1950 + y)));
        g.emit(j, "issued", Term::int_lit(1950 + y as i64));
    }
    for (y, pr) in procs.iter().enumerate() {
        g.typ(pr, "Proceedings");
        g.emit(pr, "title", Term::lit(format!("Proceedings {}", 1950 + y)));
        g.emit(pr, "issued", Term::int_lit(1950 + y as i64));
        g.emit(pr, "isbn", Term::lit(format!("978-0-000-{y:05}-0")));
        let e = g.rng.gen_range(0..persons.len());
        g.emit(pr, "editor", persons[e].clone());
    }
}

/// Emit document `docs.len()` (the per-chunk unit of the stream).
fn document(
    g: &mut Gen,
    persons: &[Term],
    journals: &[Term],
    procs: &[Term],
    docs: &mut Vec<Term>,
) {
    let n_years = journals.len();
    let i = docs.len();
    {
        // Document 0 is always an Article so the workload's constant-anchor
        // queries (SQ8, SQ12) have a stable target.
        let roll = if i == 0 { 0 } else { g.rng.gen_range(0..100u32) };
        let year = g.rng.gen_range(0..n_years);
        let (kind, doc) = if roll < 55 {
            ("Article", Term::iri(format!("{NS}Article{i}")))
        } else if roll < 85 {
            ("Inproceedings", Term::iri(format!("{NS}Inproceedings{i}")))
        } else if roll < 93 {
            ("Book", Term::iri(format!("{NS}Book{i}")))
        } else {
            ("Www", Term::iri(format!("{NS}Www{i}")))
        };
        g.typ(&doc, kind);
        g.emit(&doc, "title", Term::lit(format!("Title of document {i}")));
        g.emit(&doc, "issued", Term::int_lit(1950 + year as i64));
        let n_auth = g.rng.gen_range(1..4usize);
        for _ in 0..n_auth {
            let a = g.rng.gen_range(0..persons.len());
            g.emit(&doc, "creator", persons[a].clone());
        }
        match kind {
            "Article" => {
                g.emit(&doc, "journal", journals[year].clone());
                g.emit(&doc, "pages", Term::lit(format!("{}-{}", i % 400, i % 400 + 12)));
                g.emit(&doc, "volume", Term::int_lit((year + 1) as i64));
                g.emit(&doc, "number", Term::int_lit((i % 6) as i64 + 1));
                if g.rng.gen_ratio(1, 10) {
                    g.emit(&doc, "month", Term::int_lit((i % 12) as i64 + 1));
                }
                if g.rng.gen_ratio(1, 2) {
                    g.emit(&doc, "abstract", Term::lit(format!("Abstract text {i}")));
                }
                if g.rng.gen_ratio(1, 8) {
                    g.emit(&doc, "note", Term::lit(format!("note {i}")));
                }
            }
            "Inproceedings" => {
                g.emit(&doc, "partOf", procs[year].clone());
                g.emit(&doc, "pages", Term::lit(format!("{}-{}", i % 400, i % 400 + 8)));
                g.emit(&doc, "booktitle", Term::lit(format!("Proc. {}", 1950 + year)));
                if g.rng.gen_ratio(1, 3) {
                    g.emit(&doc, "seeAlso", Term::iri(format!("http://conf.example/{i}")));
                }
                if g.rng.gen_ratio(1, 6) {
                    g.emit(&doc, "cdrom", Term::lit(format!("cd{i}")));
                }
            }
            "Book" => {
                g.emit(&doc, "isbn", Term::lit(format!("978-1-000-{i:05}-7")));
                g.emit(&doc, "publisher", Term::lit(format!("Publisher {}", i % 9)));
                if g.rng.gen_ratio(1, 4) {
                    g.emit(&doc, "chapter", Term::int_lit((i % 20) as i64 + 1));
                }
            }
            _ => {
                g.emit(&doc, "seeAlso", Term::iri(format!("http://web.example/{i}")));
                g.emit(&doc, "format", Term::lit("text/html".to_string()));
                if g.rng.gen_ratio(1, 5) {
                    g.emit(&doc, "language", Term::lit("en".to_string()));
                }
            }
        }
        // Rare cross-type attributes thicken the predicate tail (the real
        // SP²Bench vocabulary has 78 predicates; see DESIGN.md on scaling).
        if g.rng.gen_ratio(1, 12) {
            g.emit(&doc, "rights", Term::lit(format!("© {}", 1950 + year)));
        }
        if g.rng.gen_ratio(1, 15) {
            g.emit(&doc, "source", Term::iri(format!("http://src.example/{i}")));
        }
        // Citations to earlier documents.
        if !docs.is_empty() && g.rng.gen_ratio(2, 3) {
            for _ in 0..g.rng.gen_range(1..4usize) {
                let c = g.rng.gen_range(0..docs.len());
                g.emit(&doc, "cites", docs[c].clone());
            }
        }
        docs.push(doc);
    }
}

/// SQ1–SQ17 (SP²Bench shapes adapted to the generator's vocabulary).
pub fn queries() -> Vec<BenchQuery> {
    let ns = NS;
    let ty = RDF_TYPE;
    vec![
        // Q1: year of a given journal — tiny lookup.
        BenchQuery::new(
            "SQ1",
            format!(
                "SELECT ?yr WHERE {{ ?j <{ty}> <{ns}Journal> . \
                 ?j <{ns}title> 'Journal 1 (1955)' . ?j <{ns}issued> ?yr }}"
            ),
        ),
        // Q2: wide star over Inproceedings with OPTIONAL abstract, ordered.
        BenchQuery::new(
            "SQ2",
            format!(
                "SELECT ?inproc ?title ?yr ?page ?venue WHERE {{ \
                 ?inproc <{ty}> <{ns}Inproceedings> . \
                 ?inproc <{ns}title> ?title . ?inproc <{ns}issued> ?yr . \
                 ?inproc <{ns}pages> ?page . ?inproc <{ns}partOf> ?venue . \
                 OPTIONAL {{ ?inproc <{ns}abstract> ?abs }} }} ORDER BY ?yr LIMIT 1000"
            ),
        ),
        // Q3a/b/c: articles having a given (increasingly rare) property.
        BenchQuery::new(
            "SQ3",
            format!(
                "SELECT ?a WHERE {{ ?a <{ty}> <{ns}Article> . ?a <{ns}pages> ?v }}"
            ),
        ),
        // Q4: the killer — author pairs sharing a journal (near cross
        // product of the dataset).
        BenchQuery::new(
            "SQ4",
            format!(
                "SELECT DISTINCT ?n1 ?n2 WHERE {{ \
                 ?a1 <{ty}> <{ns}Article> . ?a2 <{ty}> <{ns}Article> . \
                 ?a1 <{ns}journal> ?j . ?a2 <{ns}journal> ?j . \
                 ?a1 <{ns}creator> ?p1 . ?p1 <{ns}name> ?n1 . \
                 ?a2 <{ns}creator> ?p2 . ?p2 <{ns}name> ?n2 . FILTER (?n1 < ?n2) }}"
            ),
        ),
        // Q5: persons publishing both journal articles and inproceedings.
        BenchQuery::new(
            "SQ5",
            format!(
                "SELECT DISTINCT ?person ?name WHERE {{ \
                 ?a <{ty}> <{ns}Article> . ?a <{ns}creator> ?person . \
                 ?b <{ty}> <{ns}Inproceedings> . ?b <{ns}creator> ?person . \
                 ?person <{ns}name> ?name }}"
            ),
        ),
        // Q6: documents per year with authors, optional homepage.
        BenchQuery::new(
            "SQ6",
            format!(
                "SELECT ?yr ?doc ?author WHERE {{ \
                 ?doc <{ns}issued> ?yr . ?doc <{ns}creator> ?author . \
                 OPTIONAL {{ ?author <{ns}homepage> ?hp }} FILTER (?yr >= 1975) }}"
            ),
        ),
        // Q7: documents cited at least once which also carry seeAlso.
        BenchQuery::new(
            "SQ7",
            format!(
                "SELECT DISTINCT ?doc WHERE {{ \
                 ?citer <{ns}cites> ?doc . ?doc <{ns}seeAlso> ?url }}"
            ),
        ),
        // Q8: co-authors of authors of a specific early article.
        BenchQuery::new(
            "SQ8",
            format!(
                "SELECT DISTINCT ?co WHERE {{ \
                 <{ns}Article0> <{ns}creator> ?p . ?other <{ns}creator> ?p . \
                 ?other <{ns}creator> ?co }}"
            ),
        ),
        // Q9: all predicates around persons (variable predicates, UNION).
        BenchQuery::new(
            "SQ9",
            format!(
                "SELECT DISTINCT ?pred WHERE {{ \
                 {{ ?subj ?pred <{ns}Person3> }} UNION {{ <{ns}Person3> ?pred ?obj }} }}"
            ),
        ),
        // Q10: everything pointing at a given person (reverse var-pred).
        BenchQuery::new(
            "SQ10",
            format!("SELECT ?subj ?pred WHERE {{ ?subj ?pred <{ns}Person5> }}"),
        ),
        // Q11: seeAlso with ORDER/LIMIT/OFFSET.
        BenchQuery::new(
            "SQ11",
            format!(
                "SELECT ?ee WHERE {{ ?pub <{ns}seeAlso> ?ee }} ORDER BY ?ee LIMIT 10 OFFSET 5"
            ),
        ),
        // Q12: ASK variant of Q8.
        BenchQuery::new(
            "SQ12",
            format!(
                "ASK {{ <{ns}Article0> <{ns}creator> ?p . ?other <{ns}creator> ?p }}"
            ),
        ),
        // Selectivity variants (the b/c versions of SP²Bench).
        BenchQuery::new(
            "SQ13",
            format!("SELECT ?a WHERE {{ ?a <{ty}> <{ns}Article> . ?a <{ns}month> ?v }}"),
        ),
        BenchQuery::new(
            "SQ14",
            format!("SELECT ?b WHERE {{ ?b <{ty}> <{ns}Book> . ?b <{ns}isbn> ?i }}"),
        ),
        BenchQuery::new(
            "SQ15",
            format!(
                "SELECT ?doc ?yr WHERE {{ ?doc <{ns}issued> ?yr . FILTER (?yr = 1960) }}"
            ),
        ),
        BenchQuery::new(
            "SQ16",
            format!(
                "SELECT ?e ?name WHERE {{ ?proc <{ty}> <{ns}Proceedings> . \
                 ?proc <{ns}editor> ?e . ?e <{ns}name> ?name }}"
            ),
        ),
        BenchQuery::new(
            "SQ17",
            format!(
                "ASK {{ ?j <{ty}> <{ns}Journal> . ?j <{ns}title> 'Journal 1 (1950)' }}"
            ),
        ),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn average_in_degree_is_low() {
        // Paper §2.3: SP2B average in-degree ≈ 2.
        let triples = generate(2000, 1);
        let objects: std::collections::HashSet<String> =
            triples.iter().map(|t| t.object.encode()).collect();
        let avg = triples.len() as f64 / objects.len() as f64;
        assert!((1.0..4.5).contains(&avg), "avg in-degree {avg}");
    }

    #[test]
    fn predicate_inventory() {
        let triples = generate(2000, 1);
        let preds: std::collections::HashSet<String> =
            triples.iter().map(|t| t.predicate.encode()).collect();
        assert!(preds.len() >= 25, "{}", preds.len());
    }

    #[test]
    fn seventeen_queries() {
        assert_eq!(queries().len(), 17);
    }

    #[test]
    fn stream_is_identical_to_generate() {
        let streamed: Vec<Triple> = stream(300, 5).collect();
        assert_eq!(streamed, generate(300, 5));
    }

    #[test]
    fn documents_have_stars() {
        let triples = generate(500, 2);
        let a0 = Term::iri(format!("{NS}Article0"));
        let star: Vec<&Triple> = triples.iter().filter(|t| t.subject == a0).collect();
        // Article0 may or may not exist (type roll); find any article.
        if star.is_empty() {
            let any_article = triples
                .iter()
                .find(|t| t.predicate.encode().contains("journal"))
                .map(|t| t.subject.clone())
                .unwrap();
            let star: Vec<&Triple> =
                triples.iter().filter(|t| t.subject == any_article).collect();
            assert!(star.len() >= 4);
        } else {
            assert!(star.len() >= 4);
        }
    }
}
