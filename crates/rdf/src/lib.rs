//! RDF data model for the DB2RDF reproduction.
//!
//! Provides [`Term`] (IRIs, blank nodes, literals with optional language tag
//! or datatype), [`Triple`]/[`Quad`], a canonical single-string encoding used
//! as the storage representation inside the relational back-end, and an
//! N-Triples / N-Quads line parser and serializer.
//!
//! The canonical encoding is N-Triples-shaped: `<iri>`, `_:label`,
//! `"lexical"`, `"lexical"@lang`, `"lexical"^^<datatype>`. Because the
//! encodings of the three term kinds are prefix-distinguishable (`<`, `_`,
//! `"`), a single `TEXT` column can hold any term without ambiguity, which is
//! what the DB2RDF schema relies on.

mod ntriples;
mod term;
mod triple;

pub use ntriples::{
    parse_ntriples, parse_ntriples_chunk, parse_ntriples_line, parse_ntriples_read,
    write_ntriples, Chunk, ChunkReader, NTriplesError, NtStream, DEFAULT_CHUNK_BYTES,
};
pub use term::{decode_term, Term};
pub use triple::{Quad, Triple};
