//! Line-oriented N-Triples / N-Quads parser and serializer.
//!
//! Supports the subset needed by the benchmark pipeline: IRIs, blank nodes,
//! plain / language-tagged / typed literals, comments, and an optional graph
//! term per line (N-Quads).
//!
//! Two entry points: [`parse_ntriples`] parses an in-memory string, while
//! [`NtStream`] / [`ChunkReader`] stream from any [`std::io::Read`] in
//! line-aligned chunks so arbitrarily large documents never have to be
//! resident at once. [`ChunkReader`] is also the fan-out unit for the
//! parallel bulk loader: chunk boundaries depend only on the byte stream
//! (target size + newline positions), never on thread count, which is what
//! makes chunk-parallel parsing deterministic.

use std::fmt::Write as _;
use std::io::Read;

use crate::term::decode_term;
#[cfg(test)]
use crate::term::Term;
use crate::triple::{Quad, Triple};

/// Error raised while parsing N-Triples input.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NTriplesError {
    /// 1-based line number of the offending line.
    pub line: usize,
    pub message: String,
}

impl std::fmt::Display for NTriplesError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "N-Triples parse error at line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for NTriplesError {}

/// Parse one N-Triples/N-Quads line. Returns `Ok(None)` for blank lines and
/// comments.
pub fn parse_ntriples_line(line: &str) -> Result<Option<Quad>, String> {
    let trimmed = line.trim();
    if trimmed.is_empty() || trimmed.starts_with('#') {
        return Ok(None);
    }
    let body = trimmed
        .strip_suffix('.')
        .ok_or_else(|| "line does not end with '.'".to_string())?
        .trim_end();
    let mut terms = Vec::with_capacity(4);
    let mut rest = body;
    while !rest.is_empty() {
        let (term_str, remainder) = split_term(rest)?;
        let term = decode_term(term_str).ok_or_else(|| format!("malformed term {term_str:?}"))?;
        terms.push(term);
        rest = remainder.trim_start();
    }
    match terms.len() {
        3 => {
            let mut it = terms.into_iter();
            Ok(Some(Quad::new(
                Triple::new(it.next().unwrap(), it.next().unwrap(), it.next().unwrap()),
                None,
            )))
        }
        4 => {
            let mut it = terms.into_iter();
            let t = Triple::new(it.next().unwrap(), it.next().unwrap(), it.next().unwrap());
            Ok(Some(Quad::new(t, Some(it.next().unwrap()))))
        }
        n => Err(format!("expected 3 or 4 terms, found {n}")),
    }
}

/// Split the leading term off `s`, returning `(term, rest)`.
fn split_term(s: &str) -> Result<(&str, &str), String> {
    let bytes = s.as_bytes();
    match bytes[0] {
        b'<' => {
            let end = s.find('>').ok_or("unterminated IRI")?;
            Ok((&s[..=end], &s[end + 1..]))
        }
        b'_' => {
            let end = s
                .char_indices()
                .find(|&(i, c)| i >= 2 && c.is_whitespace())
                .map(|(i, _)| i)
                .unwrap_or(s.len());
            Ok((&s[..end], &s[end..]))
        }
        b'"' => {
            // Closing quote honouring escapes, then optional @lang or ^^<dt>.
            let inner = &bytes[1..];
            let mut i = 0;
            let mut close = None;
            while i < inner.len() {
                match inner[i] {
                    b'\\' => i += 2,
                    b'"' => {
                        close = Some(i + 1); // index in `s` of closing quote
                        break;
                    }
                    _ => i += 1,
                }
            }
            let close = close.ok_or("unterminated literal")?;
            let mut end = close + 1;
            if s[end..].starts_with('@') {
                let tail = &s[end + 1..];
                let len = tail
                    .char_indices()
                    .find(|&(_, c)| c.is_whitespace())
                    .map(|(i, _)| i)
                    .unwrap_or(tail.len());
                end += 1 + len;
            } else if s[end..].starts_with("^^<") {
                let tail = &s[end..];
                let gt = tail.find('>').ok_or("unterminated datatype IRI")?;
                end += gt + 1;
            }
            Ok((&s[..end], &s[end..]))
        }
        _ => Err(format!("unexpected term start {:?}", char_prefix(s, 10))),
    }
}

/// At most `max_bytes` of `s`, cut at a character boundary — slicing at a raw
/// byte offset would panic mid-way through a multi-byte UTF-8 sequence.
fn char_prefix(s: &str, max_bytes: usize) -> &str {
    if s.len() <= max_bytes {
        return s;
    }
    let mut end = max_bytes;
    while !s.is_char_boundary(end) {
        end -= 1;
    }
    &s[..end]
}

/// Parse a whole N-Triples/N-Quads document.
pub fn parse_ntriples(input: &str) -> Result<Vec<Quad>, NTriplesError> {
    let mut out = Vec::new();
    for (idx, line) in input.lines().enumerate() {
        match parse_ntriples_line(line) {
            Ok(Some(q)) => out.push(q),
            Ok(None) => {}
            Err(message) => return Err(NTriplesError { line: idx + 1, message }),
        }
    }
    Ok(out)
}

/// Parse a chunk of whole lines whose first line is line `first_line` of the
/// enclosing document. This is [`parse_ntriples`] with a line-number offset:
/// the piece the parallel bulk loader hands to each worker so errors still
/// point at the absolute input line.
pub fn parse_ntriples_chunk(input: &str, first_line: usize) -> Result<Vec<Quad>, NTriplesError> {
    let mut out = Vec::new();
    for (idx, line) in input.lines().enumerate() {
        match parse_ntriples_line(line) {
            Ok(Some(q)) => out.push(q),
            Ok(None) => {}
            Err(message) => return Err(NTriplesError { line: first_line + idx, message }),
        }
    }
    Ok(out)
}

/// Default line-aligned chunk size for streaming reads (1 MiB).
pub const DEFAULT_CHUNK_BYTES: usize = 1 << 20;

/// A line-aligned slice of the input document.
#[derive(Debug)]
pub struct Chunk {
    /// Whole lines (the final line may lack a trailing newline at EOF).
    pub text: String,
    /// 1-based document line number of the chunk's first line.
    pub first_line: usize,
}

/// Reads an N-Triples document as a sequence of line-aligned chunks of
/// roughly `target` bytes. Only one chunk (plus the read-ahead remainder of
/// the next) is ever buffered, so memory stays O(chunk), not O(file). A
/// single line longer than `target` is returned as an oversized chunk rather
/// than split mid-line.
pub struct ChunkReader<R> {
    inner: R,
    carry: Vec<u8>,
    next_line: usize,
    target: usize,
    eof: bool,
}

impl<R: Read> ChunkReader<R> {
    pub fn new(inner: R, target: usize) -> ChunkReader<R> {
        ChunkReader { inner, carry: Vec::new(), next_line: 1, target: target.max(1), eof: false }
    }

    /// The next line-aligned chunk, or `None` at end of input. I/O and
    /// UTF-8 failures surface as [`NTriplesError`] at the current line.
    pub fn next_chunk(&mut self) -> Result<Option<Chunk>, NTriplesError> {
        loop {
            if self.carry.len() >= self.target {
                if let Some(cut) = self.carry.iter().rposition(|&b| b == b'\n') {
                    return self.emit(cut + 1).map(Some);
                }
                // One line longer than the target: keep reading to its end.
            }
            if self.eof {
                if self.carry.is_empty() {
                    return Ok(None);
                }
                let len = self.carry.len();
                return self.emit(len).map(Some);
            }
            let mut buf = [0u8; 64 * 1024];
            match self.inner.read(&mut buf) {
                Ok(0) => self.eof = true,
                Ok(n) => self.carry.extend_from_slice(&buf[..n]),
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
                Err(e) => {
                    return Err(NTriplesError {
                        line: self.next_line,
                        message: format!("I/O error: {e}"),
                    })
                }
            }
        }
    }

    fn emit(&mut self, upto: usize) -> Result<Chunk, NTriplesError> {
        let rest = self.carry.split_off(upto);
        let bytes = std::mem::replace(&mut self.carry, rest);
        let first_line = self.next_line;
        let text = String::from_utf8(bytes).map_err(|e| {
            let lines_before =
                e.as_bytes()[..e.utf8_error().valid_up_to()].iter().filter(|&&b| b == b'\n').count();
            NTriplesError {
                line: first_line + lines_before,
                message: "input is not valid UTF-8".into(),
            }
        })?;
        self.next_line += text.bytes().filter(|&b| b == b'\n').count();
        Ok(Chunk { text, first_line })
    }
}

/// Streaming quad iterator over any [`Read`]: yields `Result<Quad, _>` per
/// data line without ever materializing the document. Fuses after the first
/// error.
pub struct NtStream<R> {
    chunks: ChunkReader<R>,
    text: String,
    pos: usize,
    line: usize,
    done: bool,
}

impl<R: Read> NtStream<R> {
    pub fn new(inner: R) -> NtStream<R> {
        NtStream::with_chunk_size(inner, DEFAULT_CHUNK_BYTES)
    }

    pub fn with_chunk_size(inner: R, chunk_bytes: usize) -> NtStream<R> {
        NtStream {
            chunks: ChunkReader::new(inner, chunk_bytes),
            text: String::new(),
            pos: 0,
            line: 0,
            done: false,
        }
    }
}

impl<R: Read> Iterator for NtStream<R> {
    type Item = Result<Quad, NTriplesError>;

    fn next(&mut self) -> Option<Self::Item> {
        if self.done {
            return None;
        }
        loop {
            if self.pos >= self.text.len() {
                match self.chunks.next_chunk() {
                    Ok(Some(chunk)) => {
                        self.text = chunk.text;
                        self.pos = 0;
                        self.line = chunk.first_line - 1;
                        continue;
                    }
                    Ok(None) => {
                        self.done = true;
                        return None;
                    }
                    Err(e) => {
                        self.done = true;
                        return Some(Err(e));
                    }
                }
            }
            let rest = &self.text[self.pos..];
            let (line_str, consumed) = match rest.find('\n') {
                Some(i) => (&rest[..i], i + 1),
                None => (rest, rest.len()),
            };
            self.pos += consumed;
            self.line += 1;
            match parse_ntriples_line(line_str) {
                Ok(Some(q)) => return Some(Ok(q)),
                Ok(None) => {}
                Err(message) => {
                    self.done = true;
                    return Some(Err(NTriplesError { line: self.line, message }));
                }
            }
        }
    }
}

/// Parse a whole document from a reader via the streaming path. Same result
/// as `parse_ntriples(&std::fs::read_to_string(..)?)` without holding the
/// text.
pub fn parse_ntriples_read(reader: impl Read) -> Result<Vec<Quad>, NTriplesError> {
    NtStream::new(reader).collect()
}

/// Serialize quads as an N-Triples/N-Quads document.
pub fn write_ntriples<'a>(quads: impl IntoIterator<Item = &'a Quad>) -> String {
    let mut out = String::new();
    for q in quads {
        let _ = writeln!(out, "{q}");
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_simple_triple() {
        let q = parse_ntriples_line("<s> <p> <o> .").unwrap().unwrap();
        assert_eq!(q.triple.subject, Term::iri("s"));
        assert_eq!(q.triple.predicate, Term::iri("p"));
        assert_eq!(q.triple.object, Term::iri("o"));
        assert!(q.graph.is_none());
    }

    #[test]
    fn parses_quad() {
        let q = parse_ntriples_line("<s> <p> \"v\" <g> .").unwrap().unwrap();
        assert_eq!(q.graph, Some(Term::iri("g")));
    }

    #[test]
    fn parses_literals_with_spaces_and_escapes() {
        let q = parse_ntriples_line(r#"<s> <p> "a b \"c\" d" ."#).unwrap().unwrap();
        assert_eq!(q.triple.object, Term::lit("a b \"c\" d"));
    }

    #[test]
    fn parses_lang_and_typed_literals() {
        let q = parse_ntriples_line(r#"<s> <p> "hi"@en ."#).unwrap().unwrap();
        assert_eq!(q.triple.object, Term::lang_lit("hi", "en"));
        let q = parse_ntriples_line(r#"<s> <p> "5"^^<http://www.w3.org/2001/XMLSchema#integer> ."#)
            .unwrap()
            .unwrap();
        assert_eq!(q.triple.object, Term::int_lit(5));
    }

    #[test]
    fn skips_comments_and_blanks() {
        let doc = "# comment\n\n<s> <p> <o> .\n";
        assert_eq!(parse_ntriples(doc).unwrap().len(), 1);
    }

    #[test]
    fn error_carries_line_number() {
        let doc = "<s> <p> <o> .\nnot a triple\n";
        let err = parse_ntriples(doc).unwrap_err();
        assert_eq!(err.line, 2);
    }

    #[test]
    fn blank_nodes_parse() {
        let q = parse_ntriples_line("_:a <p> _:b .").unwrap().unwrap();
        assert_eq!(q.triple.subject, Term::blank("a"));
        assert_eq!(q.triple.object, Term::blank("b"));
    }

    #[test]
    fn chunk_reader_is_line_aligned_and_numbered() {
        let doc = "<s1> <p> <o> .\n# comment\n<s2> <p> <o> .\n<s3> <p> <o> .\n";
        for target in [1, 8, 16, 64, 4096] {
            let mut chunks = ChunkReader::new(doc.as_bytes(), target);
            let mut rebuilt = String::new();
            let mut expect_line = 1;
            while let Some(chunk) = chunks.next_chunk().unwrap() {
                assert!(chunk.text.ends_with('\n'), "chunk not line-aligned: {:?}", chunk.text);
                assert_eq!(chunk.first_line, expect_line);
                expect_line += chunk.text.bytes().filter(|&b| b == b'\n').count();
                rebuilt.push_str(&chunk.text);
            }
            assert_eq!(rebuilt, doc, "target {target}");
        }
    }

    #[test]
    fn chunk_reader_keeps_oversized_line_whole() {
        let long = format!("<s> <p> \"{}\" .\n<t> <p> <o> .", "x".repeat(500));
        let mut chunks = ChunkReader::new(long.as_bytes(), 16);
        let first = chunks.next_chunk().unwrap().unwrap();
        assert!(first.text.len() > 500);
        let second = chunks.next_chunk().unwrap().unwrap();
        assert_eq!(second.first_line, 2);
        assert!(chunks.next_chunk().unwrap().is_none());
    }

    #[test]
    fn stream_matches_whole_document_parse() {
        let doc = "# header\n<s1> <p> \"a b\" .\n\n<s2> <p> <o> <g> .\n_:b <p> \"x\"@en .";
        let whole = parse_ntriples(doc).unwrap();
        for chunk_bytes in [1, 7, 32, 1024] {
            let streamed: Vec<Quad> = NtStream::with_chunk_size(doc.as_bytes(), chunk_bytes)
                .collect::<Result<_, _>>()
                .unwrap();
            assert_eq!(streamed, whole, "chunk_bytes {chunk_bytes}");
        }
        assert_eq!(parse_ntriples_read(doc.as_bytes()).unwrap(), whole);
    }

    #[test]
    fn stream_error_carries_absolute_line_and_fuses() {
        let doc = "<s> <p> <o> .\n<s2> <p> <o2> .\nbogus line\n<s3> <p> <o3> .\n";
        let mut stream = NtStream::with_chunk_size(doc.as_bytes(), 4);
        assert!(stream.next().unwrap().is_ok());
        assert!(stream.next().unwrap().is_ok());
        let err = stream.next().unwrap().unwrap_err();
        assert_eq!(err.line, 3);
        assert!(stream.next().is_none(), "stream must fuse after an error");
    }

    #[test]
    fn stream_reports_invalid_utf8() {
        let mut bytes = b"<s> <p> <o> .\n".to_vec();
        bytes.extend_from_slice(&[0xff, 0xfe, b'\n']);
        let err: Result<Vec<Quad>, _> =
            NtStream::with_chunk_size(&bytes[..], 4).collect::<Result<_, _>>();
        let err = err.unwrap_err();
        assert_eq!(err.line, 2);
        assert!(err.message.contains("UTF-8"));
    }

    #[test]
    fn chunk_parse_offsets_error_lines() {
        let err = parse_ntriples_chunk("<s> <p> <o> .\nnope\n", 41).unwrap_err();
        assert_eq!(err.line, 42);
    }

    #[test]
    fn document_roundtrip() {
        let quads = vec![
            Quad::from(Triple::new(Term::iri("s"), Term::iri("p"), Term::lit("o1 with space"))),
            Quad::new(
                Triple::new(Term::blank("x"), Term::iri("p"), Term::lang_lit("v", "de")),
                Some(Term::iri("g")),
            ),
        ];
        let doc = write_ntriples(&quads);
        assert_eq!(parse_ntriples(&doc).unwrap(), quads);
    }
}
