//! Line-oriented N-Triples / N-Quads parser and serializer.
//!
//! Supports the subset needed by the benchmark pipeline: IRIs, blank nodes,
//! plain / language-tagged / typed literals, comments, and an optional graph
//! term per line (N-Quads).

use std::fmt::Write as _;

use crate::term::decode_term;
#[cfg(test)]
use crate::term::Term;
use crate::triple::{Quad, Triple};

/// Error raised while parsing N-Triples input.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NTriplesError {
    /// 1-based line number of the offending line.
    pub line: usize,
    pub message: String,
}

impl std::fmt::Display for NTriplesError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "N-Triples parse error at line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for NTriplesError {}

/// Parse one N-Triples/N-Quads line. Returns `Ok(None)` for blank lines and
/// comments.
pub fn parse_ntriples_line(line: &str) -> Result<Option<Quad>, String> {
    let trimmed = line.trim();
    if trimmed.is_empty() || trimmed.starts_with('#') {
        return Ok(None);
    }
    let body = trimmed
        .strip_suffix('.')
        .ok_or_else(|| "line does not end with '.'".to_string())?
        .trim_end();
    let mut terms = Vec::with_capacity(4);
    let mut rest = body;
    while !rest.is_empty() {
        let (term_str, remainder) = split_term(rest)?;
        let term = decode_term(term_str).ok_or_else(|| format!("malformed term {term_str:?}"))?;
        terms.push(term);
        rest = remainder.trim_start();
    }
    match terms.len() {
        3 => {
            let mut it = terms.into_iter();
            Ok(Some(Quad::new(
                Triple::new(it.next().unwrap(), it.next().unwrap(), it.next().unwrap()),
                None,
            )))
        }
        4 => {
            let mut it = terms.into_iter();
            let t = Triple::new(it.next().unwrap(), it.next().unwrap(), it.next().unwrap());
            Ok(Some(Quad::new(t, Some(it.next().unwrap()))))
        }
        n => Err(format!("expected 3 or 4 terms, found {n}")),
    }
}

/// Split the leading term off `s`, returning `(term, rest)`.
fn split_term(s: &str) -> Result<(&str, &str), String> {
    let bytes = s.as_bytes();
    match bytes[0] {
        b'<' => {
            let end = s.find('>').ok_or("unterminated IRI")?;
            Ok((&s[..=end], &s[end + 1..]))
        }
        b'_' => {
            let end = s
                .char_indices()
                .find(|&(i, c)| i >= 2 && c.is_whitespace())
                .map(|(i, _)| i)
                .unwrap_or(s.len());
            Ok((&s[..end], &s[end..]))
        }
        b'"' => {
            // Closing quote honouring escapes, then optional @lang or ^^<dt>.
            let inner = &bytes[1..];
            let mut i = 0;
            let mut close = None;
            while i < inner.len() {
                match inner[i] {
                    b'\\' => i += 2,
                    b'"' => {
                        close = Some(i + 1); // index in `s` of closing quote
                        break;
                    }
                    _ => i += 1,
                }
            }
            let close = close.ok_or("unterminated literal")?;
            let mut end = close + 1;
            if s[end..].starts_with('@') {
                let tail = &s[end + 1..];
                let len = tail
                    .char_indices()
                    .find(|&(_, c)| c.is_whitespace())
                    .map(|(i, _)| i)
                    .unwrap_or(tail.len());
                end += 1 + len;
            } else if s[end..].starts_with("^^<") {
                let tail = &s[end..];
                let gt = tail.find('>').ok_or("unterminated datatype IRI")?;
                end += gt + 1;
            }
            Ok((&s[..end], &s[end..]))
        }
        _ => Err(format!("unexpected term start {:?}", char_prefix(s, 10))),
    }
}

/// At most `max_bytes` of `s`, cut at a character boundary — slicing at a raw
/// byte offset would panic mid-way through a multi-byte UTF-8 sequence.
fn char_prefix(s: &str, max_bytes: usize) -> &str {
    if s.len() <= max_bytes {
        return s;
    }
    let mut end = max_bytes;
    while !s.is_char_boundary(end) {
        end -= 1;
    }
    &s[..end]
}

/// Parse a whole N-Triples/N-Quads document.
pub fn parse_ntriples(input: &str) -> Result<Vec<Quad>, NTriplesError> {
    let mut out = Vec::new();
    for (idx, line) in input.lines().enumerate() {
        match parse_ntriples_line(line) {
            Ok(Some(q)) => out.push(q),
            Ok(None) => {}
            Err(message) => return Err(NTriplesError { line: idx + 1, message }),
        }
    }
    Ok(out)
}

/// Serialize quads as an N-Triples/N-Quads document.
pub fn write_ntriples<'a>(quads: impl IntoIterator<Item = &'a Quad>) -> String {
    let mut out = String::new();
    for q in quads {
        let _ = writeln!(out, "{q}");
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_simple_triple() {
        let q = parse_ntriples_line("<s> <p> <o> .").unwrap().unwrap();
        assert_eq!(q.triple.subject, Term::iri("s"));
        assert_eq!(q.triple.predicate, Term::iri("p"));
        assert_eq!(q.triple.object, Term::iri("o"));
        assert!(q.graph.is_none());
    }

    #[test]
    fn parses_quad() {
        let q = parse_ntriples_line("<s> <p> \"v\" <g> .").unwrap().unwrap();
        assert_eq!(q.graph, Some(Term::iri("g")));
    }

    #[test]
    fn parses_literals_with_spaces_and_escapes() {
        let q = parse_ntriples_line(r#"<s> <p> "a b \"c\" d" ."#).unwrap().unwrap();
        assert_eq!(q.triple.object, Term::lit("a b \"c\" d"));
    }

    #[test]
    fn parses_lang_and_typed_literals() {
        let q = parse_ntriples_line(r#"<s> <p> "hi"@en ."#).unwrap().unwrap();
        assert_eq!(q.triple.object, Term::lang_lit("hi", "en"));
        let q = parse_ntriples_line(r#"<s> <p> "5"^^<http://www.w3.org/2001/XMLSchema#integer> ."#)
            .unwrap()
            .unwrap();
        assert_eq!(q.triple.object, Term::int_lit(5));
    }

    #[test]
    fn skips_comments_and_blanks() {
        let doc = "# comment\n\n<s> <p> <o> .\n";
        assert_eq!(parse_ntriples(doc).unwrap().len(), 1);
    }

    #[test]
    fn error_carries_line_number() {
        let doc = "<s> <p> <o> .\nnot a triple\n";
        let err = parse_ntriples(doc).unwrap_err();
        assert_eq!(err.line, 2);
    }

    #[test]
    fn blank_nodes_parse() {
        let q = parse_ntriples_line("_:a <p> _:b .").unwrap().unwrap();
        assert_eq!(q.triple.subject, Term::blank("a"));
        assert_eq!(q.triple.object, Term::blank("b"));
    }

    #[test]
    fn document_roundtrip() {
        let quads = vec![
            Quad::from(Triple::new(Term::iri("s"), Term::iri("p"), Term::lit("o1 with space"))),
            Quad::new(
                Triple::new(Term::blank("x"), Term::iri("p"), Term::lang_lit("v", "de")),
                Some(Term::iri("g")),
            ),
        ];
        let doc = write_ntriples(&quads);
        assert_eq!(parse_ntriples(&doc).unwrap(), quads);
    }
}
