use std::fmt;
use std::sync::Arc;

/// An RDF term: IRI, blank node, or literal.
///
/// Strings are reference-counted so that terms can be cloned freely while
/// loading large graphs (a triple shares its subject with the dictionary,
/// the statistics collector, and the storage row without copying bytes).
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Term {
    /// An IRI reference, stored without the surrounding angle brackets.
    Iri(Arc<str>),
    /// A blank node, stored without the `_:` prefix.
    Blank(Arc<str>),
    /// A literal with optional language tag or datatype IRI.
    ///
    /// `lang` and `datatype` are mutually exclusive per RDF 1.0 (a
    /// language-tagged literal has implicit datatype `rdf:langString`).
    Literal {
        lexical: Arc<str>,
        lang: Option<Arc<str>>,
        datatype: Option<Arc<str>>,
    },
}

impl Term {
    /// Build an IRI term.
    pub fn iri(value: impl Into<Arc<str>>) -> Self {
        Term::Iri(value.into())
    }

    /// Build a blank node term from its label (no `_:` prefix).
    pub fn blank(label: impl Into<Arc<str>>) -> Self {
        Term::Blank(label.into())
    }

    /// Build a plain literal.
    pub fn lit(value: impl Into<Arc<str>>) -> Self {
        Term::Literal { lexical: value.into(), lang: None, datatype: None }
    }

    /// Build a language-tagged literal.
    pub fn lang_lit(value: impl Into<Arc<str>>, lang: impl Into<Arc<str>>) -> Self {
        Term::Literal { lexical: value.into(), lang: Some(lang.into()), datatype: None }
    }

    /// Build a typed literal.
    pub fn typed_lit(value: impl Into<Arc<str>>, datatype: impl Into<Arc<str>>) -> Self {
        Term::Literal { lexical: value.into(), lang: None, datatype: Some(datatype.into()) }
    }

    /// Build an `xsd:integer` literal.
    pub fn int_lit(value: i64) -> Self {
        Term::typed_lit(value.to_string(), "http://www.w3.org/2001/XMLSchema#integer")
    }

    /// Build an `xsd:double` literal.
    pub fn double_lit(value: f64) -> Self {
        Term::typed_lit(value.to_string(), "http://www.w3.org/2001/XMLSchema#double")
    }

    pub fn is_iri(&self) -> bool {
        matches!(self, Term::Iri(_))
    }

    pub fn is_blank(&self) -> bool {
        matches!(self, Term::Blank(_))
    }

    pub fn is_literal(&self) -> bool {
        matches!(self, Term::Literal { .. })
    }

    /// The lexical payload of the term (IRI text, blank label, or literal
    /// lexical form) without any syntactic decoration.
    pub fn lexical(&self) -> &str {
        match self {
            Term::Iri(v) | Term::Blank(v) => v,
            Term::Literal { lexical, .. } => lexical,
        }
    }

    /// Numeric value of a literal, when its lexical form parses as a number.
    ///
    /// Used by FILTER evaluation: typed and plain literals compare
    /// numerically when both sides are numbers (see DESIGN.md §4).
    pub fn numeric_value(&self) -> Option<f64> {
        match self {
            Term::Literal { lexical, .. } => lexical.trim().parse::<f64>().ok(),
            _ => None,
        }
    }

    /// Canonical single-string encoding (see crate docs). This is the exact
    /// representation stored in the relational `TEXT` columns.
    pub fn encode(&self) -> String {
        let mut out = String::new();
        self.encode_into(&mut out);
        out
    }

    /// Append the canonical encoding to `out` without an intermediate
    /// allocation.
    pub fn encode_into(&self, out: &mut String) {
        match self {
            Term::Iri(v) => {
                out.push('<');
                out.push_str(v);
                out.push('>');
            }
            Term::Blank(v) => {
                out.push_str("_:");
                out.push_str(v);
            }
            Term::Literal { lexical, lang, datatype } => {
                out.push('"');
                escape_into(lexical, out);
                out.push('"');
                if let Some(l) = lang {
                    out.push('@');
                    out.push_str(l);
                } else if let Some(dt) = datatype {
                    out.push_str("^^<");
                    out.push_str(dt);
                    out.push('>');
                }
            }
        }
    }
}

impl fmt::Display for Term {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.encode())
    }
}

fn escape_into(s: &str, out: &mut String) {
    for c in s.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            _ => out.push(c),
        }
    }
}

fn unescape(s: &str) -> Option<String> {
    let mut out = String::with_capacity(s.len());
    let mut chars = s.chars();
    while let Some(c) = chars.next() {
        if c == '\\' {
            match chars.next()? {
                '\\' => out.push('\\'),
                '"' => out.push('"'),
                'n' => out.push('\n'),
                'r' => out.push('\r'),
                't' => out.push('\t'),
                'u' => {
                    let hex: String = (&mut chars).take(4).collect();
                    if hex.len() != 4 {
                        return None;
                    }
                    let cp = u32::from_str_radix(&hex, 16).ok()?;
                    out.push(char::from_u32(cp)?);
                }
                _ => return None,
            }
        } else {
            out.push(c);
        }
    }
    Some(out)
}

/// Decode a canonical term string produced by [`Term::encode`].
///
/// Returns `None` on malformed input. This is the inverse used when
/// materializing SPARQL solutions from relational rows.
pub fn decode_term(s: &str) -> Option<Term> {
    let bytes = s.as_bytes();
    match bytes.first()? {
        b'<' => {
            if !s.ends_with('>') || s.len() < 2 {
                return None;
            }
            Some(Term::iri(&s[1..s.len() - 1]))
        }
        b'_' => {
            let label = s.strip_prefix("_:")?;
            if label.is_empty() {
                return None;
            }
            Some(Term::blank(label))
        }
        b'"' => {
            // Find the closing quote, honouring backslash escapes.
            let mut end = None;
            let inner = &bytes[1..];
            let mut i = 0;
            while i < inner.len() {
                match inner[i] {
                    b'\\' => i += 2,
                    b'"' => {
                        end = Some(i);
                        break;
                    }
                    _ => i += 1,
                }
            }
            let end = end?;
            let lexical = unescape(std::str::from_utf8(&inner[..end]).ok()?)?;
            let rest = std::str::from_utf8(&inner[end + 1..]).ok()?;
            if rest.is_empty() {
                Some(Term::lit(lexical))
            } else if let Some(lang) = rest.strip_prefix('@') {
                if lang.is_empty() {
                    return None;
                }
                Some(Term::lang_lit(lexical, lang))
            } else if let Some(dt) = rest.strip_prefix("^^<") {
                let dt = dt.strip_suffix('>')?;
                Some(Term::typed_lit(lexical, dt))
            } else {
                None
            }
        }
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn iri_roundtrip() {
        let t = Term::iri("http://example.org/a");
        assert_eq!(t.encode(), "<http://example.org/a>");
        assert_eq!(decode_term(&t.encode()), Some(t));
    }

    #[test]
    fn blank_roundtrip() {
        let t = Term::blank("b42");
        assert_eq!(t.encode(), "_:b42");
        assert_eq!(decode_term(&t.encode()), Some(t));
    }

    #[test]
    fn plain_literal_roundtrip() {
        let t = Term::lit("hello world");
        assert_eq!(t.encode(), "\"hello world\"");
        assert_eq!(decode_term(&t.encode()), Some(t));
    }

    #[test]
    fn lang_literal_roundtrip() {
        let t = Term::lang_lit("bonjour", "fr");
        assert_eq!(t.encode(), "\"bonjour\"@fr");
        assert_eq!(decode_term(&t.encode()), Some(t));
    }

    #[test]
    fn typed_literal_roundtrip() {
        let t = Term::int_lit(42);
        assert_eq!(t.encode(), "\"42\"^^<http://www.w3.org/2001/XMLSchema#integer>");
        assert_eq!(decode_term(&t.encode()), Some(t));
    }

    #[test]
    fn literal_with_escapes_roundtrip() {
        let t = Term::lit("line1\nline2 \"quoted\" back\\slash\ttab");
        assert_eq!(decode_term(&t.encode()), Some(t));
    }

    #[test]
    fn literal_iri_distinct_encodings() {
        // A literal whose content looks like an IRI must not collide.
        let lit = Term::lit("<http://example.org/a>");
        let iri = Term::iri("http://example.org/a");
        assert_ne!(lit.encode(), iri.encode());
    }

    #[test]
    fn decode_rejects_malformed() {
        for bad in ["", "<unclosed", "_:", "\"unclosed", "\"x\"@", "\"x\"^^nope", "plain"] {
            assert_eq!(decode_term(bad), None, "should reject {bad:?}");
        }
    }

    #[test]
    fn numeric_value() {
        assert_eq!(Term::int_lit(7).numeric_value(), Some(7.0));
        assert_eq!(Term::lit("3.5").numeric_value(), Some(3.5));
        assert_eq!(Term::lit("abc").numeric_value(), None);
        assert_eq!(Term::iri("http://x").numeric_value(), None);
    }

    #[test]
    fn unicode_escape_decodes() {
        assert_eq!(decode_term("\"\\u0041\""), Some(Term::lit("A")));
    }
}
