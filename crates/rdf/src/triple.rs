use std::fmt;

use crate::term::Term;

/// An RDF triple (subject, predicate, object).
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Triple {
    pub subject: Term,
    pub predicate: Term,
    pub object: Term,
}

impl Triple {
    pub fn new(subject: Term, predicate: Term, object: Term) -> Self {
        Triple { subject, predicate, object }
    }
}

impl fmt::Display for Triple {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} {} {} .", self.subject, self.predicate, self.object)
    }
}

/// An RDF quad: a triple plus an optional named graph.
///
/// The DB2RDF layout itself is graph-agnostic (see DESIGN.md); quads exist so
/// that quad datasets such as PRBench can be loaded without loss.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Quad {
    pub triple: Triple,
    pub graph: Option<Term>,
}

impl Quad {
    pub fn new(triple: Triple, graph: Option<Term>) -> Self {
        Quad { triple, graph }
    }
}

impl From<Triple> for Quad {
    fn from(triple: Triple) -> Self {
        Quad { triple, graph: None }
    }
}

impl fmt::Display for Quad {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.graph {
            Some(g) => write!(
                f,
                "{} {} {} {} .",
                self.triple.subject, self.triple.predicate, self.triple.object, g
            ),
            None => self.triple.fmt(f),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn triple_display() {
        let t = Triple::new(Term::iri("s"), Term::iri("p"), Term::lit("o"));
        assert_eq!(t.to_string(), "<s> <p> \"o\" .");
    }

    #[test]
    fn quad_display_with_graph() {
        let q = Quad::new(
            Triple::new(Term::iri("s"), Term::iri("p"), Term::iri("o")),
            Some(Term::iri("g")),
        );
        assert_eq!(q.to_string(), "<s> <p> <o> <g> .");
    }

    #[test]
    fn quad_from_triple_has_no_graph() {
        let q: Quad = Triple::new(Term::iri("s"), Term::iri("p"), Term::iri("o")).into();
        assert_eq!(q.graph, None);
    }
}
