//! Robustness of the N-Triples parser against malformed input: a seeded
//! corpus of truncated, garbled, and adversarial lines. The parser must
//! always return `Err` with the right line number — and never panic,
//! whatever bytes it is fed.

use rdf::{parse_ntriples, parse_ntriples_line, write_ntriples, Quad, Term, Triple};

/// Seeded SplitMix64, so the fuzz corpus is identical on every run.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e3779b97f4a7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
        z ^ (z >> 31)
    }

    fn below(&mut self, n: usize) -> usize {
        (self.next() % n as u64) as usize
    }
}

fn valid_lines() -> Vec<String> {
    let quads = vec![
        Quad::from(Triple::new(Term::iri("s"), Term::iri("p"), Term::iri("o"))),
        Quad::from(Triple::new(Term::iri("s"), Term::iri("p"), Term::lit("plain value"))),
        Quad::from(Triple::new(Term::iri("s"), Term::iri("p"), Term::lit("esc \"q\" \\ done"))),
        Quad::from(Triple::new(Term::blank("b1"), Term::iri("p"), Term::lang_lit("hallo", "de"))),
        Quad::from(Triple::new(Term::iri("s"), Term::iri("p"), Term::int_lit(42))),
        Quad::from(Triple::new(Term::iri("s"), Term::iri("naïve-predicate"), Term::lit("héllo wörld ünïcode"))),
        Quad::new(
            Triple::new(Term::iri("s"), Term::iri("p"), Term::iri("o")),
            Some(Term::iri("graph")),
        ),
    ];
    write_ntriples(&quads).lines().map(str::to_string).collect()
}

#[test]
fn every_truncation_of_every_valid_line_errs_or_parses_without_panic() {
    for line in valid_lines() {
        for cut in 0..line.len() {
            // Cut at every byte, patching mid-character cuts lossily — the
            // parser must survive replacement characters too.
            let truncated = String::from_utf8_lossy(&line.as_bytes()[..cut]).into_owned();
            // Must not panic; truncations that stay well-formed (e.g. cut
            // inside a trailing comment or whitespace) may legally parse.
            let _ = parse_ntriples_line(&truncated);
        }
    }
}

#[test]
fn truncated_lines_report_the_right_line_number() {
    let lines = valid_lines();
    for (i, victim) in lines.iter().enumerate() {
        // Truncate one line mid-term (drop the final " ." and a few bytes
        // more) inside an otherwise valid document.
        let cut = victim.len().saturating_sub(5).max(1);
        let broken = String::from_utf8_lossy(&victim.as_bytes()[..cut]).into_owned();
        let mut doc_lines = lines.clone();
        doc_lines[i] = broken;
        let doc = doc_lines.join("\n");
        let err = parse_ntriples(&doc).expect_err("truncated line must fail the document");
        assert_eq!(err.line, i + 1, "wrong line number for victim {i}: {err}");
        assert!(!err.message.is_empty());
    }
}

#[test]
fn garbled_bytes_never_panic() {
    let mut rng = Rng(0x2013_5eed);
    let lines = valid_lines();
    for round in 0..2000 {
        let base = &lines[round % lines.len()];
        let mut bytes = base.as_bytes().to_vec();
        // 1-4 random byte mutations: flip, overwrite, delete, or insert.
        for _ in 0..(1 + rng.below(4)) {
            if bytes.is_empty() {
                break;
            }
            let pos = rng.below(bytes.len());
            match rng.below(4) {
                0 => bytes[pos] ^= 1 << rng.below(8),
                1 => bytes[pos] = rng.next() as u8,
                2 => {
                    bytes.remove(pos);
                }
                _ => bytes.insert(pos, rng.next() as u8),
            }
        }
        let garbled = String::from_utf8_lossy(&bytes).into_owned();
        let _ = parse_ntriples_line(&garbled); // must not panic
        let _ = parse_ntriples(&garbled); // document path must not panic either
    }
}

#[test]
fn adversarial_fixed_cases_err_with_messages() {
    let cases = [
        "no dot here",
        "<s> <p> <o>",            // missing terminator
        "<s> <p> .",              // two terms
        "<s> <p> <o> <g> <x> .",  // five terms
        "<unterminated <p> <o> .",
        "<s> <p> \"open literal .",
        "<s> <p> \"lit\"^^<unterminated .",
        "<s> <p> \"v\"@ .",       // empty language tag parses as term? must not panic
        "\u{e9}\u{e9}\u{e9}\u{e9}\u{e9}\u{e9} <p> <o> .", // multi-byte at the error site
        "\"\\",                   // trailing escape
        "_: .",
        "<s> <p> \"tail\"junk .",
    ];
    for (i, case) in cases.iter().enumerate() {
        // A few cases stay parseable; the requirement is no panic.
        if let Err(msg) = parse_ntriples_line(case) {
            assert!(!msg.is_empty(), "case {i} produced an empty message");
        }
        let err = parse_ntriples(&format!("<a> <b> <c> .\n{case}")).err();
        if let Some(e) = err {
            assert_eq!(e.line, 2, "case {i}: wrong line number");
        }
    }
}

#[test]
fn multibyte_error_prefix_does_not_split_characters() {
    // 10 bytes would land mid-é; the error message must truncate at a char
    // boundary instead of panicking.
    let line = "éééééééééééééééé <p> <o> .";
    let err = parse_ntriples_line(line).expect_err("line cannot start with a bare literal");
    assert!(err.contains("unexpected term start"));
}
