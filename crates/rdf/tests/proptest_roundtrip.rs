//! Property tests: term canonical encoding and N-Triples serialization are
//! lossless for arbitrary content, including pathological escapes.

use proptest::prelude::*;
use rdf::{decode_term, parse_ntriples, write_ntriples, Quad, Term, Triple};

fn arb_iri_text() -> impl Strategy<Value = String> {
    // IRI text must not contain '>' (our encoder does not escape inside IRIs,
    // matching N-Triples, where '>' is illegal in IRIREF).
    "[a-zA-Z0-9:/#_.~%-]{1,40}"
}

fn arb_term() -> impl Strategy<Value = Term> {
    prop_oneof![
        arb_iri_text().prop_map(Term::iri),
        "[a-zA-Z][a-zA-Z0-9]{0,10}".prop_map(Term::blank),
        any::<String>().prop_map(Term::lit),
        (any::<String>(), "[a-z]{2}(-[a-z0-9]{1,8})?").prop_map(|(v, l)| Term::lang_lit(v, l)),
        (any::<String>(), arb_iri_text()).prop_map(|(v, d)| Term::typed_lit(v, d)),
    ]
}

proptest! {
    #[test]
    fn term_encode_decode_roundtrip(t in arb_term()) {
        let encoded = t.encode();
        prop_assert_eq!(decode_term(&encoded), Some(t));
    }

    #[test]
    fn distinct_terms_have_distinct_encodings(a in arb_term(), b in arb_term()) {
        if a != b {
            prop_assert_ne!(a.encode(), b.encode());
        }
    }

    #[test]
    fn ntriples_document_roundtrip(
        triples in proptest::collection::vec(
            (arb_term(), arb_iri_text().prop_map(Term::iri), arb_term()),
            0..20,
        )
    ) {
        // Subjects/objects: literals with newlines are escaped by the writer,
        // so any term is safe on a single line.
        let quads: Vec<Quad> = triples
            .into_iter()
            .map(|(s, p, o)| Quad::from(Triple::new(s, p, o)))
            .collect();
        let doc = write_ntriples(&quads);
        prop_assert_eq!(parse_ntriples(&doc).unwrap(), quads);
    }
}
