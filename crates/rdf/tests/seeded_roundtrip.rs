//! Property tests: term canonical encoding and N-Triples serialization are
//! lossless for arbitrary content, including pathological escapes.
//!
//! Written as deterministic seeded-loop property tests (a fixed-seed
//! SplitMix64 drives the generators) so the suite needs no external
//! dependency and every run exercises exactly the same cases.

use rdf::{decode_term, parse_ntriples, write_ntriples, Quad, Term, Triple};

/// Minimal SplitMix64 — local copy so the test crate stays dependency-free.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn below(&mut self, bound: usize) -> usize {
        (self.next() % bound as u64) as usize
    }

    fn pick<'a, T>(&mut self, items: &'a [T]) -> &'a T {
        &items[self.below(items.len())]
    }

    fn string_from(&mut self, charset: &[char], min: usize, max: usize) -> String {
        let len = min + self.below(max - min + 1);
        (0..len).map(|_| *self.pick(charset)).collect()
    }
}

const IRI_CHARS: &[char] = &[
    'a', 'b', 'z', 'A', 'Z', '0', '9', ':', '/', '#', '_', '.', '~', '%', '-',
];

/// Literal content stresses every escape path: quotes, backslashes, control
/// characters, newlines, tabs, and non-ASCII.
const LIT_CHARS: &[char] = &[
    'a', 'x', ' ', '"', '\\', '\n', '\r', '\t', '\u{0}', '\u{7f}', 'é', '→', '𝔘', '<', '>',
];

const LANG_CHARS: &[char] = &['a', 'b', 'c', 'd', 'e', 'f'];

fn arb_iri_text(rng: &mut Rng) -> String {
    rng.string_from(IRI_CHARS, 1, 40)
}

fn arb_term(rng: &mut Rng) -> Term {
    match rng.below(5) {
        0 => Term::iri(arb_iri_text(rng)),
        1 => {
            let mut s = rng.string_from(&['a', 'b', 'X', 'Y'], 1, 1);
            s.push_str(&rng.string_from(&['a', 'z', 'A', '0', '9'], 0, 10));
            Term::blank(s)
        }
        2 => Term::lit(rng.string_from(LIT_CHARS, 0, 24)),
        3 => {
            let value = rng.string_from(LIT_CHARS, 0, 24);
            let mut lang = rng.string_from(LANG_CHARS, 2, 2);
            if rng.below(2) == 0 {
                lang.push('-');
                lang.push_str(&rng.string_from(LANG_CHARS, 1, 8));
            }
            Term::lang_lit(value, lang)
        }
        _ => {
            let value = rng.string_from(LIT_CHARS, 0, 24);
            Term::typed_lit(value, arb_iri_text(rng))
        }
    }
}

#[test]
fn term_encode_decode_roundtrip() {
    let mut rng = Rng(0xA11C_E5ED);
    for case in 0..2_000 {
        let t = arb_term(&mut rng);
        let encoded = t.encode();
        assert_eq!(decode_term(&encoded), Some(t.clone()), "case {case}: {encoded:?}");
    }
}

#[test]
fn distinct_terms_have_distinct_encodings() {
    let mut rng = Rng(0xBEEF);
    for case in 0..2_000 {
        let a = arb_term(&mut rng);
        let b = arb_term(&mut rng);
        if a != b {
            assert_ne!(a.encode(), b.encode(), "case {case}");
        }
    }
}

#[test]
fn ntriples_document_roundtrip() {
    let mut rng = Rng(0x5EED);
    for case in 0..400 {
        // Subjects/objects: literals with newlines are escaped by the writer,
        // so any term is safe on a single line.
        let n = rng.below(20);
        let quads: Vec<Quad> = (0..n)
            .map(|_| {
                let s = arb_term(&mut rng);
                let p = Term::iri(arb_iri_text(&mut rng));
                let o = arb_term(&mut rng);
                Quad::from(Triple::new(s, p, o))
            })
            .collect();
        let doc = write_ntriples(&quads);
        assert_eq!(parse_ntriples(&doc).unwrap(), quads, "case {case}:\n{doc}");
    }
}
