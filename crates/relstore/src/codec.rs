//! Binary encoding primitives shared by the WAL and snapshot formats.
//!
//! Everything on disk is little-endian and length-prefixed; there is no
//! alignment and no varint cleverness — the durability layer favours a
//! format a hex dump can be read against over saving a few bytes. A
//! CRC32 (IEEE 802.3, the zlib/PNG polynomial) guards every WAL frame and
//! every snapshot payload, so torn or flipped bytes are detected instead
//! of deserialized.

use crate::error::{Error, Result};
use crate::table::{IndexKind, TableSchema};
use crate::value::{SqlType, Value};

// ---------------------------------------------------------------------------
// CRC32 (IEEE), table-driven
// ---------------------------------------------------------------------------

const fn crc32_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 { 0xedb8_8320 ^ (c >> 1) } else { c >> 1 };
            k += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
}

static CRC_TABLE: [u32; 256] = crc32_table();

/// CRC32 (IEEE) of `bytes`.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut c = 0xffff_ffffu32;
    for &b in bytes {
        c = CRC_TABLE[((c ^ b as u32) & 0xff) as usize] ^ (c >> 8);
    }
    c ^ 0xffff_ffff
}

// ---------------------------------------------------------------------------
// Encoding
// ---------------------------------------------------------------------------

pub fn put_u8(buf: &mut Vec<u8>, v: u8) {
    buf.push(v);
}

pub fn put_u32(buf: &mut Vec<u8>, v: u32) {
    buf.extend_from_slice(&v.to_le_bytes());
}

pub fn put_u64(buf: &mut Vec<u8>, v: u64) {
    buf.extend_from_slice(&v.to_le_bytes());
}

pub fn put_i64(buf: &mut Vec<u8>, v: i64) {
    buf.extend_from_slice(&v.to_le_bytes());
}

pub fn put_str(buf: &mut Vec<u8>, s: &str) {
    put_u32(buf, s.len() as u32);
    buf.extend_from_slice(s.as_bytes());
}

pub fn put_value(buf: &mut Vec<u8>, v: &Value) {
    match v {
        Value::Null => put_u8(buf, 0),
        Value::Bool(b) => {
            put_u8(buf, 1);
            put_u8(buf, *b as u8);
        }
        Value::Int(i) => {
            put_u8(buf, 2);
            put_i64(buf, *i);
        }
        Value::Double(d) => {
            put_u8(buf, 3);
            put_u64(buf, d.to_bits());
        }
        Value::Str(s) => {
            put_u8(buf, 4);
            put_str(buf, s);
        }
    }
}

fn sql_type_tag(t: SqlType) -> u8 {
    match t {
        SqlType::Bool => 0,
        SqlType::Int => 1,
        SqlType::Double => 2,
        SqlType::Text => 3,
    }
}

pub fn put_schema(buf: &mut Vec<u8>, schema: &TableSchema) {
    put_str(buf, &schema.name);
    put_u32(buf, schema.columns.len() as u32);
    for c in &schema.columns {
        put_str(buf, &c.name);
        put_u8(buf, sql_type_tag(c.ty));
    }
}

pub fn put_index_kind(buf: &mut Vec<u8>, kind: IndexKind) {
    put_u8(buf, match kind {
        IndexKind::Hash => 0,
        IndexKind::BTree => 1,
    });
}

// ---------------------------------------------------------------------------
// Decoding
// ---------------------------------------------------------------------------

/// Cursor over an on-disk byte buffer; every `take_*` fails with
/// [`Error::Corrupt`] instead of panicking when the buffer is short.
pub struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    pub fn new(buf: &'a [u8]) -> Self {
        Reader { buf, pos: 0 }
    }

    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8]> {
        if self.remaining() < n {
            return Err(Error::Corrupt(format!(
                "short read: wanted {n} bytes, {} left",
                self.remaining()
            )));
        }
        let out = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(out)
    }

    pub fn take_u8(&mut self) -> Result<u8> {
        Ok(self.take(1)?[0])
    }

    pub fn take_u32(&mut self) -> Result<u32> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    pub fn take_u64(&mut self) -> Result<u64> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    pub fn take_i64(&mut self) -> Result<i64> {
        Ok(i64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    pub fn take_str(&mut self) -> Result<String> {
        let len = self.take_u32()? as usize;
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec())
            .map_err(|_| Error::Corrupt("string is not valid UTF-8".into()))
    }

    pub fn take_value(&mut self) -> Result<Value> {
        Ok(match self.take_u8()? {
            0 => Value::Null,
            1 => Value::Bool(self.take_u8()? != 0),
            2 => Value::Int(self.take_i64()?),
            3 => Value::Double(f64::from_bits(self.take_u64()?)),
            4 => Value::str(self.take_str()?),
            t => return Err(Error::Corrupt(format!("unknown value tag {t}"))),
        })
    }

    pub fn take_schema(&mut self) -> Result<TableSchema> {
        let name = self.take_str()?;
        let ncols = self.take_u32()? as usize;
        let mut columns = Vec::with_capacity(ncols.min(1 << 16));
        for _ in 0..ncols {
            let cname = self.take_str()?;
            let ty = match self.take_u8()? {
                0 => SqlType::Bool,
                1 => SqlType::Int,
                2 => SqlType::Double,
                3 => SqlType::Text,
                t => return Err(Error::Corrupt(format!("unknown type tag {t}"))),
            };
            columns.push((cname, ty));
        }
        Ok(TableSchema::new(name, columns))
    }

    pub fn take_index_kind(&mut self) -> Result<IndexKind> {
        match self.take_u8()? {
            0 => Ok(IndexKind::Hash),
            1 => Ok(IndexKind::BTree),
            t => Err(Error::Corrupt(format!("unknown index kind {t}"))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crc32_known_vectors() {
        // Standard check value for the IEEE polynomial.
        assert_eq!(crc32(b"123456789"), 0xcbf4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn value_roundtrip() {
        let vals = vec![
            Value::Null,
            Value::Bool(true),
            Value::Int(-42),
            Value::Double(2.5),
            Value::str("héllo\nworld"),
        ];
        let mut buf = Vec::new();
        for v in &vals {
            put_value(&mut buf, v);
        }
        let mut r = Reader::new(&buf);
        for v in &vals {
            assert_eq!(&r.take_value().unwrap(), v);
        }
        assert_eq!(r.remaining(), 0);
    }

    #[test]
    fn schema_roundtrip() {
        let schema = TableSchema::new(
            "t",
            vec![("a".into(), SqlType::Int), ("b".into(), SqlType::Text)],
        );
        let mut buf = Vec::new();
        put_schema(&mut buf, &schema);
        let got = Reader::new(&buf).take_schema().unwrap();
        assert_eq!(got, schema);
    }

    #[test]
    fn short_buffer_is_corrupt_not_panic() {
        let mut buf = Vec::new();
        put_str(&mut buf, "abcdef");
        buf.truncate(6); // length prefix promises more bytes than exist
        assert!(matches!(Reader::new(&buf).take_str(), Err(Error::Corrupt(_))));
    }
}
