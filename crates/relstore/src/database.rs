//! The database facade: a named collection of tables plus SQL entry points,
//! with optional crash-safe durability (WAL + snapshot checkpoints).

use std::collections::HashMap;
use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::time::Duration;

use crate::error::{exec_err, plan_err, Error, Result};
use crate::exec::{compile, exec_query, ExecCtx, PhaseTimings, Rel, Scope};
use crate::io::{no_faults, FaultHandle};
use crate::snapshot::{load_snapshot, write_snapshot, SnapshotTable};
use crate::sql::ast::Stmt;
use crate::sql::parser::parse_statement;
use crate::table::{IndexKind, Table, TableSchema};
use crate::value::{SqlType, Value};
use crate::wal::{self, WalOp, WalWriter};

/// A registered scalar SQL function.
pub type ScalarFn = Arc<dyn Fn(&[Value]) -> Result<Value> + Send + Sync>;

/// Outcome of [`Database::execute`].
#[derive(Debug, Clone, PartialEq)]
pub enum ExecOutcome {
    /// DDL statement completed.
    Done,
    /// Number of rows inserted.
    Inserted(usize),
    /// Query result.
    Rows(Rel),
}

/// Durability state for a database opened on a directory.
///
/// The directory holds generation-numbered pairs `snapshot.<g>` / `wal.<g>`.
/// The live state is: the newest *valid* snapshot plus the committed prefix
/// of its same-generation WAL. A checkpoint writes `snapshot.<g+1>`
/// atomically, starts the empty `wal.<g+1>`, and prunes generations older
/// than `g` — so one full previous generation always survives as a fallback
/// if the newest snapshot is damaged.
struct Durability {
    dir: PathBuf,
    gen: u64,
    /// `None` after the WAL file could not be opened for append (recovery
    /// still succeeded from the readable prefix) — the read-only degrade.
    wal: Option<WalWriter>,
    faults: FaultHandle,
    /// Buffered encoded ops + op count while a batch is open.
    batch: Option<(Vec<u8>, u32)>,
    /// Batches nest (the store batches around the loader's own batches);
    /// the single WAL frame is written when the outermost batch commits.
    batch_depth: usize,
    read_only: bool,
}

/// An in-memory relational database with a SQL interface and optional
/// write-ahead-logged persistence.
///
/// This is the substrate standing in for IBM DB2 in the paper's architecture
/// (see DESIGN.md §2): the RDF store above it emits SQL text, which is parsed,
/// planned and executed here. [`Database::new`] is purely in-memory;
/// [`Database::open`] binds the database to a directory so that every
/// committed mutation survives a crash (DESIGN.md §4.6).
pub struct Database {
    /// Tables are held behind `Arc` for copy-on-write snapshots
    /// ([`Database::snapshot_clone`]): a snapshot shares every table, and
    /// the writer's next mutation of a table clones just that table via
    /// `Arc::make_mut` — readers of old snapshots are never disturbed.
    tables: HashMap<String, Arc<Table>>,
    functions: HashMap<String, ScalarFn>,
    row_budget: Option<u64>,
    deadline: Option<Duration>,
    threads: Option<usize>,
    durability: Option<Durability>,
}

impl Default for Database {
    fn default() -> Self {
        Self::new()
    }
}

impl Database {
    pub fn new() -> Self {
        let mut db = Database {
            tables: HashMap::new(),
            functions: HashMap::new(),
            row_budget: None,
            deadline: None,
            threads: None,
            durability: None,
        };
        db.register_builtins();
        db
    }

    // -----------------------------------------------------------------------
    // Durability: open / checkpoint / close
    // -----------------------------------------------------------------------

    /// Open (or create) a durable database on `dir`.
    ///
    /// Recovery loads the newest valid snapshot generation and replays the
    /// committed prefix of its WAL, truncating any torn tail (a short frame,
    /// a bad CRC, or an undecodable payload). If the newest snapshot is
    /// damaged, the previous generation is used instead. If the WAL cannot
    /// be reopened for appending, the database still opens but degrades to
    /// read-only mode ([`Database::is_read_only`]).
    pub fn open(dir: impl AsRef<Path>) -> Result<Database> {
        Self::open_with_faults(dir, no_faults())
    }

    /// [`Database::open`] with a fault injector over the file layer — the
    /// entry point of the crash-recovery test harness.
    pub fn open_with_faults(dir: impl AsRef<Path>, faults: FaultHandle) -> Result<Database> {
        let dir = dir.as_ref().to_path_buf();
        std::fs::create_dir_all(&dir)?;

        // Newest valid snapshot wins; fall back one generation if damaged.
        let snap_gens = list_generations(&dir, "snapshot")?;
        let mut base: Option<(u64, Vec<SnapshotTable>)> = None;
        for &g in &snap_gens {
            match load_snapshot(&dir.join(format!("snapshot.{g}")), &faults) {
                Ok(tables) => {
                    base = Some((g, tables));
                    break;
                }
                Err(_) => continue, // damaged snapshot: try the previous one
            }
        }
        let (gen, tables) = match base {
            Some(x) => x,
            None if snap_gens.is_empty() => {
                // No checkpoint was ever taken: the base state is empty and
                // the WAL (if any) carries everything.
                let g = list_generations(&dir, "wal")?.first().copied().unwrap_or(0);
                (g, Vec::new())
            }
            None => {
                return Err(Error::Corrupt(
                    "every snapshot generation failed validation".into(),
                ))
            }
        };

        let mut db = Database::new();
        for st in tables {
            db.restore_table(st)?;
        }
        let wal_path = dir.join(format!("wal.{gen}"));
        let recovery = wal::recover(&wal_path, &faults)?;
        for txn in recovery.txns {
            for op in txn {
                db.apply_op(op)
                    .map_err(|e| Error::Corrupt(format!("WAL replay failed: {e}")))?;
            }
        }
        // Reopen the WAL for appending, truncating the torn tail. Failure
        // here (injected fsync error, permissions) degrades to read-only.
        let (wal_writer, read_only) =
            match WalWriter::open(&wal_path, recovery.valid_len, faults.clone()) {
                Ok(w) => (Some(w), false),
                Err(_) => (None, true),
            };
        db.durability = Some(Durability {
            dir,
            gen,
            wal: wal_writer,
            faults,
            batch: None,
            batch_depth: 0,
            read_only,
        });
        Ok(db)
    }

    /// True when the database is bound to a directory (opened via
    /// [`Database::open`]).
    pub fn is_durable(&self) -> bool {
        self.durability.is_some()
    }

    /// True when the durability layer degraded to read-only mode (the WAL
    /// became unwritable). Reads keep working; mutations return
    /// [`Error::ReadOnly`].
    pub fn is_read_only(&self) -> bool {
        self.durability.as_ref().is_some_and(|d| d.read_only)
    }

    /// The directory backing this database, if durable.
    pub fn path(&self) -> Option<&Path> {
        self.durability.as_ref().map(|d| d.dir.as_path())
    }

    /// Bytes durably committed in the live WAL (including the magic), if the
    /// database is durable and writable. The crash-point fuzzer records this
    /// after every acknowledged mutation to know the exact frame boundaries
    /// a truncated log must recover to.
    pub fn wal_len(&self) -> Option<u64> {
        self.durability.as_ref().and_then(|d| d.wal.as_ref()).map(|w| w.len())
    }

    /// Current snapshot/WAL generation number, if durable.
    pub fn generation(&self) -> Option<u64> {
        self.durability.as_ref().map(|d| d.gen)
    }

    /// Write a full binary snapshot of the current state and rotate to a
    /// fresh WAL generation. After a checkpoint, recovery no longer replays
    /// the old log; generations older than the previous one are pruned.
    /// No-op for in-memory databases.
    pub fn checkpoint(&mut self) -> Result<()> {
        let Some(d) = &self.durability else {
            return Ok(());
        };
        if d.read_only {
            return Err(Error::ReadOnly);
        }
        if d.batch_depth > 0 {
            return exec_err("checkpoint inside an open batch");
        }
        let new_gen = d.gen + 1;
        let snap_path = d.dir.join(format!("snapshot.{new_gen}"));
        let wal_path = d.dir.join(format!("wal.{new_gen}"));
        let mut tables: Vec<&Table> = self.tables.values().map(Arc::as_ref).collect();
        tables.sort_by(|a, b| a.schema.name.cmp(&b.schema.name));
        write_snapshot(&tables, &snap_path, &d.faults)?;
        let writer = match WalWriter::open(&wal_path, 0, d.faults.clone()) {
            Ok(w) => w,
            Err(e) => {
                // The new snapshot must not become the recovery base while
                // commits keep landing in the old WAL: undo it, or degrade.
                let _ = std::fs::remove_file(&snap_path);
                if snap_path.exists() {
                    self.durability.as_mut().unwrap().read_only = true;
                }
                return Err(Error::Io(e.to_string()));
            }
        };
        let d = self.durability.as_mut().unwrap();
        d.gen = new_gen;
        d.wal = Some(writer);
        prune_generations(&d.dir, new_gen);
        Ok(())
    }

    /// Checkpoint and release the database. Read-only databases close
    /// without writing.
    pub fn close(mut self) -> Result<()> {
        if self.is_durable() && !self.is_read_only() {
            self.checkpoint()?;
        }
        Ok(())
    }

    /// Start a batched WAL transaction: subsequent mutations buffer their
    /// log records and commit as a single durable frame at
    /// [`Database::commit_batch`]. Batches nest; the frame is written when
    /// the outermost batch commits. No-op on in-memory databases.
    pub fn begin_batch(&mut self) {
        if let Some(d) = &mut self.durability {
            if d.batch_depth == 0 {
                d.batch = Some((Vec::new(), 0));
            }
            d.batch_depth += 1;
        }
    }

    /// Commit the current batch level; at the outermost level the buffered
    /// ops are written and fsynced as one WAL frame. A write failure
    /// degrades the database to read-only and surfaces as an error.
    pub fn commit_batch(&mut self) -> Result<()> {
        let Some(d) = &mut self.durability else {
            return Ok(());
        };
        if d.batch_depth == 0 {
            return Ok(());
        }
        d.batch_depth -= 1;
        if d.batch_depth > 0 {
            return Ok(());
        }
        let (ops, nops) = d.batch.take().unwrap_or_default();
        if nops == 0 {
            return Ok(());
        }
        let payload = wal::frame_payload(nops, &ops);
        let res = match &mut d.wal {
            Some(w) => w.commit(&payload).map_err(|e| Error::Io(e.to_string())),
            None => Err(Error::ReadOnly),
        };
        if res.is_err() {
            d.read_only = true;
        }
        res
    }

    /// Like [`Database::commit_batch`], but the frame is only *appended* to
    /// the WAL — it becomes durable at the next [`Database::sync_wal`]. The
    /// group-commit path writes one frame per update request through this,
    /// then pays a single fsync for the whole group. An append failure
    /// degrades to read-only (and the unsynced tail is discarded by the
    /// writer, so nothing half-appended can be replayed).
    pub fn commit_batch_nosync(&mut self) -> Result<()> {
        let Some(d) = &mut self.durability else {
            return Ok(());
        };
        if d.batch_depth == 0 {
            return Ok(());
        }
        d.batch_depth -= 1;
        if d.batch_depth > 0 {
            return Ok(());
        }
        let (ops, nops) = d.batch.take().unwrap_or_default();
        if nops == 0 {
            return Ok(());
        }
        let payload = wal::frame_payload(nops, &ops);
        let res = match &mut d.wal {
            Some(w) => w.append(&payload).map_err(|e| Error::Io(e.to_string())),
            None => Err(Error::ReadOnly),
        };
        if res.is_err() {
            d.read_only = true;
        }
        res
    }

    /// Fsync every frame appended by [`Database::commit_batch_nosync`]
    /// since the last sync — the group-commit barrier. On failure the
    /// unsynced frames are discarded and the database degrades to
    /// read-only: the group's updates were never acknowledged and must not
    /// survive a restart. No-op for in-memory databases.
    pub fn sync_wal(&mut self) -> Result<()> {
        let Some(d) = &mut self.durability else {
            return Ok(());
        };
        let res = match &mut d.wal {
            Some(w) => w.sync().map_err(|e| Error::Io(e.to_string())),
            None => Err(Error::ReadOnly),
        };
        if res.is_err() {
            d.read_only = true;
        }
        res
    }

    /// Copy-on-write backup of the current table set (`Arc` bumps only).
    /// Together with [`Database::restore_tables`] this gives a multi-op
    /// mutation logical all-or-nothing semantics: save before the first op,
    /// restore on failure — unmodified tables were never cloned.
    pub fn save_tables(&self) -> HashMap<String, Arc<Table>> {
        self.tables.clone()
    }

    /// Restore a backup taken by [`Database::save_tables`], discarding every
    /// in-memory mutation since.
    pub fn restore_tables(&mut self, saved: HashMap<String, Arc<Table>>) {
        self.tables = saved;
    }

    /// Abandon the open batch (all nesting levels): the buffered ops are
    /// dropped and never reach the WAL. Pairs with
    /// [`Database::restore_tables`] when a multi-op mutation fails midway —
    /// memory is rolled back, so the log must forget the ops too.
    pub fn abort_batch(&mut self) {
        if let Some(d) = &mut self.durability {
            d.batch = None;
            d.batch_depth = 0;
        }
    }

    /// A cheap immutable clone for snapshot-isolated readers: every table
    /// is shared copy-on-write (an `Arc` bump here; the writer's next
    /// mutation of a table clones just that table via `Arc::make_mut`),
    /// scalar functions are shared, and the clone carries no durability
    /// state — it can serve queries but never log, sync, or checkpoint.
    pub fn snapshot_clone(&self) -> Database {
        Database {
            tables: self.tables.clone(),
            functions: self.functions.clone(),
            row_budget: self.row_budget,
            deadline: self.deadline,
            threads: self.threads,
            durability: None,
        }
    }

    /// Refuse mutations on a read-only (degraded) durable database.
    fn check_writable(&self) -> Result<()> {
        if self.is_read_only() {
            return Err(Error::ReadOnly);
        }
        Ok(())
    }

    /// Append one encoded op to the WAL: buffered if a batch is open,
    /// otherwise committed immediately as a single-op frame.
    fn log_op(&mut self, ops: Vec<u8>) -> Result<()> {
        let Some(d) = &mut self.durability else {
            return Ok(());
        };
        if let Some((buf, n)) = &mut d.batch {
            buf.extend_from_slice(&ops);
            *n += 1;
            return Ok(());
        }
        let payload = wal::frame_payload(1, &ops);
        let res = match &mut d.wal {
            Some(w) => w.commit(&payload).map_err(|e| Error::Io(e.to_string())),
            None => Err(Error::ReadOnly),
        };
        if res.is_err() {
            d.read_only = true;
        }
        res
    }

    /// Apply a recovered WAL op to the in-memory state (no re-logging).
    fn apply_op(&mut self, op: WalOp) -> Result<()> {
        match op {
            WalOp::CreateTable(schema) => {
                let name = schema.name.clone();
                if self.tables.contains_key(&name) {
                    return plan_err(format!("table {name:?} already exists"));
                }
                self.tables.insert(name, Arc::new(Table::new(schema)));
                Ok(())
            }
            WalOp::CreateIndex { table, column, kind } => {
                let t = self
                    .tables
                    .get_mut(&table)
                    .ok_or_else(|| Error::Plan(format!("unknown table {table:?}")))?;
                Arc::make_mut(t).create_index(&column, kind)
            }
            WalOp::InsertRows { table, rows } => {
                let t = self
                    .tables
                    .get_mut(&table)
                    .ok_or_else(|| Error::Plan(format!("unknown table {table:?}")))?;
                let t = Arc::make_mut(t);
                for row in rows {
                    t.insert(&row)?;
                }
                Ok(())
            }
            WalOp::UpdateCell { table, row_id, col, value } => {
                let t = self
                    .tables
                    .get_mut(&table)
                    .ok_or_else(|| Error::Plan(format!("unknown table {table:?}")))?;
                Arc::make_mut(t).update_cell(row_id, col as usize, value)
            }
            WalOp::DeleteRow { table, row_id } => {
                let t = self
                    .tables
                    .get_mut(&table)
                    .ok_or_else(|| Error::Plan(format!("unknown table {table:?}")))?;
                Arc::make_mut(t).delete_row(row_id).map(|_| ())
            }
        }
    }

    /// Rebuild one table from a decoded snapshot.
    fn restore_table(&mut self, st: SnapshotTable) -> Result<()> {
        let mut t = Table::new(st.schema);
        for row in &st.rows {
            t.insert(row)?;
        }
        for (col, kind) in st.indexes {
            t.create_index(&col, kind)?;
        }
        let name = t.schema.name.clone();
        self.tables.insert(name, Arc::new(t));
        Ok(())
    }

    // -----------------------------------------------------------------------
    // Query limits
    // -----------------------------------------------------------------------

    /// Set the per-query evaluation budget in produced/visited rows. `None`
    /// disables the guard. Stands in for the paper's 10-minute query timeout.
    pub fn set_row_budget(&mut self, budget: Option<u64>) {
        self.row_budget = budget;
    }

    pub fn row_budget(&self) -> Option<u64> {
        self.row_budget
    }

    /// Set a wall-clock deadline per query. The executor checks it at the
    /// same sites as the row budget and fails with [`Error::Timeout`] —
    /// the literal analogue of the paper's 10-minute query timeout (the row
    /// budget is the deterministic stand-in). `None` disables it.
    pub fn set_deadline(&mut self, deadline: Option<Duration>) {
        self.deadline = deadline;
    }

    pub fn deadline(&self) -> Option<Duration> {
        self.deadline
    }

    /// Pin the executor worker-pool width. `None` (the default) defers to
    /// the `RELSTORE_THREADS` environment variable, then to
    /// [`std::thread::available_parallelism`]. `Some(1)` forces fully
    /// sequential execution; `Some(0)` is clamped to 1 with a warning at
    /// resolution time (see [`resolve_threads`]).
    pub fn set_threads(&mut self, threads: Option<usize>) {
        self.threads = threads;
    }

    /// Effective worker-pool width for morsel-parallel query operators.
    /// Invalid settings warn (once per process) instead of silently
    /// degrading to sequential execution.
    pub fn threads(&self) -> usize {
        let env = std::env::var("RELSTORE_THREADS").ok();
        let available = std::thread::available_parallelism().map(usize::from).unwrap_or(1);
        let (threads, warning) = resolve_threads(self.threads, env.as_deref(), available);
        if let Some(w) = warning {
            static WARNED: std::sync::Once = std::sync::Once::new();
            WARNED.call_once(|| eprintln!("relstore: {w}"));
        }
        threads
    }

    /// Register (or replace) a scalar SQL function, e.g. RDF-aware helpers.
    pub fn register_function(
        &mut self,
        name: &str,
        f: impl Fn(&[Value]) -> Result<Value> + Send + Sync + 'static,
    ) {
        self.functions.insert(name.to_ascii_lowercase(), Arc::new(f));
    }

    pub fn scalar_function(&self, name: &str) -> Option<ScalarFn> {
        self.functions.get(&name.to_ascii_lowercase()).cloned()
    }

    pub fn table(&self, name: &str) -> Option<&Table> {
        self.tables.get(&name.to_ascii_lowercase()).map(Arc::as_ref)
    }

    /// Direct mutable access to a table. **Bypasses the WAL**: on a durable
    /// database, mutations made through this handle are not logged and will
    /// not survive a restart (they do enter the next snapshot). Durable
    /// callers should use [`Database::insert_rows`] /
    /// [`Database::update_cell`] instead.
    pub fn table_mut(&mut self, name: &str) -> Option<&mut Table> {
        self.tables.get_mut(&name.to_ascii_lowercase()).map(Arc::make_mut)
    }

    pub fn table_names(&self) -> Vec<&str> {
        let mut names: Vec<&str> = self.tables.keys().map(String::as_str).collect();
        names.sort_unstable();
        names
    }

    /// Programmatic DDL, used by bulk loaders to avoid SQL round-trips.
    pub fn create_table(&mut self, schema: TableSchema) -> Result<()> {
        self.check_writable()?;
        let name = schema.name.clone();
        if self.tables.contains_key(&name) {
            return plan_err(format!("table {name:?} already exists"));
        }
        // Write-ahead: the op reaches the log before memory changes, so a
        // failed autocommit leaves the in-memory state untouched.
        if self.is_durable() {
            let mut ops = Vec::new();
            wal::encode_create_table(&mut ops, &schema);
            self.log_op(ops)?;
        }
        self.tables.insert(name, Arc::new(Table::new(schema)));
        Ok(())
    }

    pub fn create_index(&mut self, table: &str, column: &str, kind: IndexKind) -> Result<()> {
        self.check_writable()?;
        let key = table.to_ascii_lowercase();
        let col = column.to_ascii_lowercase();
        let t = self
            .tables
            .get(&key)
            .ok_or_else(|| Error::Plan(format!("unknown table {table:?}")))?;
        // Pre-validate so the in-memory apply after logging cannot fail.
        if t.schema.column_index(&col).is_none() {
            return plan_err(format!("no column {column} in table {table}"));
        }
        if self.is_durable() {
            let mut ops = Vec::new();
            wal::encode_create_index(&mut ops, &key, &col, kind);
            self.log_op(ops)?;
        }
        let t = self
            .tables
            .get_mut(&key)
            .ok_or_else(|| Error::Plan(format!("unknown table {table:?}")))?;
        Arc::make_mut(t).create_index(&col, kind)
    }

    /// Programmatic bulk insert, maintaining indexes. On a durable database
    /// the rows are validated up front and logged as one WAL record.
    pub fn insert_rows(
        &mut self,
        table: &str,
        rows: impl IntoIterator<Item = Vec<Value>>,
    ) -> Result<usize> {
        let key = table.to_ascii_lowercase();
        if !self.is_durable() {
            let t = self
                .tables
                .get_mut(&key)
                .ok_or_else(|| Error::Plan(format!("unknown table {table:?}")))?;
            let t = Arc::make_mut(t);
            let mut n = 0;
            for row in rows {
                t.insert(&row)?;
                n += 1;
            }
            return Ok(n);
        }
        self.check_writable()?;
        let rows: Vec<Vec<Value>> = rows.into_iter().collect();
        let width = self
            .tables
            .get(&key)
            .ok_or_else(|| Error::Plan(format!("unknown table {table:?}")))?
            .width();
        // Validate arity up front, then write-ahead: the WAL record lands
        // before memory changes, so neither side can diverge from the other.
        for row in &rows {
            if row.len() != width {
                return plan_err(format!(
                    "table {key}: insert arity {} != column count {width}",
                    row.len()
                ));
            }
        }
        if rows.is_empty() {
            return Ok(0);
        }
        let mut ops = Vec::new();
        wal::encode_insert_rows(&mut ops, &key, width, &rows);
        self.log_op(ops)?;
        let t = self
            .tables
            .get_mut(&key)
            .ok_or_else(|| Error::Plan(format!("unknown table {table:?}")))?;
        let t = Arc::make_mut(t);
        for row in &rows {
            t.insert(row)?;
        }
        Ok(rows.len())
    }

    /// Overwrite one cell of an existing row, maintaining indexes and the
    /// WAL. The durable counterpart of [`Table::update_cell`].
    pub fn update_cell(
        &mut self,
        table: &str,
        row_id: u32,
        col: usize,
        value: Value,
    ) -> Result<()> {
        self.check_writable()?;
        let key = table.to_ascii_lowercase();
        let t = self
            .tables
            .get(&key)
            .ok_or_else(|| Error::Plan(format!("unknown table {table:?}")))?;
        // Pre-validate row and column bounds so the apply after logging
        // cannot fail (write-ahead ordering, see `create_table`).
        if (row_id as usize) >= t.row_count() {
            return plan_err(format!("row {row_id} out of range in table {key}"));
        }
        if col >= t.width() {
            return plan_err(format!("column {col} out of range in table {key}"));
        }
        if self.is_durable() {
            let mut ops = Vec::new();
            wal::encode_update_cell(&mut ops, &key, row_id, col as u32, &value);
            self.log_op(ops)?;
        }
        let t = self
            .tables
            .get_mut(&key)
            .ok_or_else(|| Error::Plan(format!("unknown table {table:?}")))?;
        Arc::make_mut(t).update_cell(row_id, col, value)
    }

    /// Remove one row by id, maintaining indexes and the WAL. Inherits
    /// [`Table::delete_row`]'s `swap_remove` semantics: the last row moves
    /// into the vacated id, so callers must re-probe indexes between
    /// deletes instead of batch-resolving row ids up front.
    pub fn delete_row(&mut self, table: &str, row_id: u32) -> Result<()> {
        self.check_writable()?;
        let key = table.to_ascii_lowercase();
        let t = self
            .tables
            .get(&key)
            .ok_or_else(|| Error::Plan(format!("unknown table {table:?}")))?;
        // Pre-validate bounds so the apply after logging cannot fail
        // (write-ahead ordering, see `create_table`).
        if (row_id as usize) >= t.row_count() {
            return plan_err(format!("row {row_id} out of range in table {key}"));
        }
        if self.is_durable() {
            let mut ops = Vec::new();
            wal::encode_delete_row(&mut ops, &key, row_id);
            self.log_op(ops)?;
        }
        let t = self.tables.get_mut(&key).unwrap();
        Arc::make_mut(t).delete_row(row_id).map(|_| ())
    }

    /// Execute any SQL statement.
    pub fn execute(&mut self, sql: &str) -> Result<ExecOutcome> {
        match parse_statement(sql)? {
            Stmt::CreateTable { name, columns } => {
                self.create_table(TableSchema::new(name, columns))?;
                Ok(ExecOutcome::Done)
            }
            Stmt::CreateIndex { table, column, btree } => {
                self.create_index(
                    &table,
                    &column,
                    if btree { IndexKind::BTree } else { IndexKind::Hash },
                )?;
                Ok(ExecOutcome::Done)
            }
            Stmt::Insert { table, columns, rows } => {
                let n = self.execute_insert(&table, columns.as_deref(), &rows)?;
                Ok(ExecOutcome::Inserted(n))
            }
            Stmt::Query(q) => {
                let ctx = ExecCtx::new(self);
                Ok(ExecOutcome::Rows(exec_query(&q, &ctx)?))
            }
        }
    }

    /// Execute a read-only query.
    pub fn query(&self, sql: &str) -> Result<Rel> {
        match parse_statement(sql)? {
            Stmt::Query(q) => {
                let ctx = ExecCtx::new(self);
                exec_query(&q, &ctx)
            }
            _ => plan_err("expected a query"),
        }
    }

    /// Execute a read-only query, additionally reporting per-phase
    /// wall-clock timings (scan / join build / probe / aggregation) so
    /// benchmark regressions are attributable to a specific operator phase.
    pub fn query_traced(&self, sql: &str) -> Result<(Rel, PhaseTimings)> {
        match parse_statement(sql)? {
            Stmt::Query(q) => {
                let ctx = ExecCtx::with_tracing(self, true);
                let rel = exec_query(&q, &ctx)?;
                let timings = ctx.phase_timings().expect("tracing was enabled");
                Ok((rel, timings))
            }
            _ => plan_err("expected a query"),
        }
    }

    fn execute_insert(
        &mut self,
        table: &str,
        columns: Option<&[String]>,
        rows: &[Vec<crate::sql::ast::Expr>],
    ) -> Result<usize> {
        let empty_scope = Scope::default();
        let t = self
            .tables
            .get(&table.to_ascii_lowercase())
            .ok_or_else(|| Error::Plan(format!("unknown table {table:?}")))?;
        let width = t.width();
        // Map provided columns to schema positions.
        let positions: Vec<usize> = match columns {
            Some(cols) => cols
                .iter()
                .map(|c| {
                    t.schema
                        .column_index(c)
                        .ok_or_else(|| Error::Plan(format!("unknown column {c:?}")))
                })
                .collect::<Result<_>>()?,
            None => (0..width).collect(),
        };
        let mut dense_rows = Vec::with_capacity(rows.len());
        for row in rows {
            if row.len() != positions.len() {
                return plan_err(format!(
                    "INSERT arity {} does not match column list {}",
                    row.len(),
                    positions.len()
                ));
            }
            let mut dense = vec![Value::Null; width];
            for (expr, &pos) in row.iter().zip(&positions) {
                let cexpr = compile(expr, &empty_scope, self)?;
                let no_row: &[Value] = &[];
                dense[pos] = cexpr.eval(no_row)?;
            }
            dense_rows.push(dense);
        }
        self.insert_rows(table, dense_rows)
    }

    fn register_builtins(&mut self) {
        self.register_function("coalesce", |args| {
            for a in args {
                if !a.is_null() {
                    return Ok(a.clone());
                }
            }
            Ok(Value::Null)
        });
        self.register_function("lower", |args| {
            unary_str(args, "lower", |s| Value::str(s.to_lowercase()))
        });
        self.register_function("upper", |args| {
            unary_str(args, "upper", |s| Value::str(s.to_uppercase()))
        });
        self.register_function("length", |args| {
            unary_str(args, "length", |s| Value::Int(s.chars().count() as i64))
        });
        self.register_function("abs", |args| {
            expect_arity(args, 1, "abs")?;
            Ok(match &args[0] {
                Value::Null => Value::Null,
                Value::Int(i) => Value::Int(i.abs()),
                Value::Double(d) => Value::Double(d.abs()),
                other => return exec_err(format!("abs: expected number, got {}", other.type_name())),
            })
        });
        self.register_function("substr", |args| {
            if args.len() < 2 || args.len() > 3 {
                return exec_err("substr expects 2 or 3 arguments");
            }
            let (Some(s), Some(start)) = (args[0].as_str(), args[1].as_f64()) else {
                return Ok(Value::Null);
            };
            let chars: Vec<char> = s.chars().collect();
            // SQL substr is 1-based.
            let start = (start as i64 - 1).max(0) as usize;
            let len = match args.get(2) {
                Some(v) => match v.as_f64() {
                    Some(l) => l.max(0.0) as usize,
                    None => return Ok(Value::Null),
                },
                None => chars.len().saturating_sub(start),
            };
            let out: String = chars.iter().skip(start).take(len).collect();
            Ok(Value::str(out))
        });
        self.register_function("replace", |args| {
            expect_arity(args, 3, "replace")?;
            match (args[0].as_str(), args[1].as_str(), args[2].as_str()) {
                (Some(s), Some(from), Some(to)) => Ok(Value::str(s.replace(from, to))),
                _ => Ok(Value::Null),
            }
        });
    }
}

/// Generation numbers for `<prefix>.<gen>` files in `dir`, newest first.
fn list_generations(dir: &Path, prefix: &str) -> Result<Vec<u64>> {
    let mut gens = Vec::new();
    for entry in std::fs::read_dir(dir)? {
        let entry = entry?;
        let name = entry.file_name();
        let Some(name) = name.to_str() else { continue };
        let Some(suffix) = name.strip_prefix(prefix).and_then(|s| s.strip_prefix('.')) else {
            continue;
        };
        if let Ok(g) = suffix.parse::<u64>() {
            gens.push(g);
        }
    }
    gens.sort_unstable_by(|a, b| b.cmp(a));
    Ok(gens)
}

/// Best-effort removal of snapshot/WAL generations older than `current - 1`
/// (one full fallback generation is kept).
fn prune_generations(dir: &Path, current: u64) {
    for prefix in ["snapshot", "wal"] {
        if let Ok(gens) = list_generations(dir, prefix) {
            for g in gens {
                if g + 1 < current {
                    let _ = std::fs::remove_file(dir.join(format!("{prefix}.{g}")));
                }
            }
        }
    }
}

fn expect_arity(args: &[Value], n: usize, name: &str) -> Result<()> {
    if args.len() != n {
        exec_err(format!("{name} expects {n} argument(s), got {}", args.len()))
    } else {
        Ok(())
    }
}

fn unary_str(args: &[Value], name: &str, f: impl Fn(&str) -> Value) -> Result<Value> {
    expect_arity(args, 1, name)?;
    Ok(match args[0].as_str() {
        Some(s) => f(s),
        None => Value::Null,
    })
}

/// Convenience constructor for tests and examples.
pub fn table_schema(name: &str, cols: &[(&str, SqlType)]) -> TableSchema {
    TableSchema::new(name, cols.iter().map(|(n, t)| (n.to_string(), *t)).collect())
}

/// Resolve the effective worker-pool width from (in priority order) the
/// explicit [`Database::set_threads`] setting, the `RELSTORE_THREADS`
/// environment variable, and the machine's available parallelism. Returns
/// the width plus an optional warning for settings that could not be
/// honored. Pure, so the policy is unit-testable without touching process
/// environment.
///
/// Zero and unparseable values used to degrade *silently* — zero fell back
/// to sequential execution and garbage env values were ignored — which made
/// "parallelism is off because of a typo" indistinguishable from
/// "parallelism was never configured". Both now warn: zero clamps to 1
/// (sequential, but said out loud), garbage falls through to the detected
/// core count.
pub fn resolve_threads(
    explicit: Option<usize>,
    env: Option<&str>,
    available: usize,
) -> (usize, Option<String>) {
    let available = available.max(1);
    if let Some(t) = explicit {
        return match t {
            0 => (1, Some("configured thread count 0 clamped to 1 (sequential)".into())),
            t => (t, None),
        };
    }
    match env {
        Some(raw) => match raw.trim().parse::<usize>() {
            Ok(0) => (
                1,
                Some(format!("RELSTORE_THREADS={raw:?} clamped to 1 (sequential)")),
            ),
            Ok(t) => (t, None),
            Err(_) => (
                available,
                Some(format!(
                    "RELSTORE_THREADS={raw:?} is not a valid thread count; \
                     using detected parallelism ({available})"
                )),
            ),
        },
        None => (available, None),
    }
}

#[cfg(test)]
mod tests {
    use super::resolve_threads;

    #[test]
    fn explicit_setting_wins_over_env_and_detection() {
        assert_eq!(resolve_threads(Some(6), Some("2"), 8), (6, None));
        assert_eq!(resolve_threads(Some(1), None, 8), (1, None));
    }

    #[test]
    fn explicit_zero_clamps_to_one_with_warning() {
        let (t, warn) = resolve_threads(Some(0), None, 8);
        assert_eq!(t, 1);
        assert!(warn.is_some());
    }

    #[test]
    fn env_parses_with_whitespace_tolerance() {
        assert_eq!(resolve_threads(None, Some(" 4 "), 8), (4, None));
    }

    #[test]
    fn env_zero_clamps_to_one_with_warning() {
        let (t, warn) = resolve_threads(None, Some("0"), 8);
        assert_eq!(t, 1);
        assert!(warn.unwrap().contains("clamped"));
    }

    #[test]
    fn env_garbage_warns_and_uses_detected_parallelism() {
        for garbage in ["lots", "-3", "2.5", ""] {
            let (t, warn) = resolve_threads(None, Some(garbage), 8);
            assert_eq!(t, 8, "garbage {garbage:?} must not silently serialize");
            assert!(warn.unwrap().contains("RELSTORE_THREADS"));
        }
    }

    #[test]
    fn unset_env_uses_detected_parallelism_silently() {
        assert_eq!(resolve_threads(None, None, 8), (8, None));
        // A pathological detection result of 0 still yields a working width.
        assert_eq!(resolve_threads(None, None, 0), (1, None));
    }
}
