//! The database facade: a named collection of tables plus SQL entry points.

use std::collections::HashMap;
use std::sync::Arc;

use crate::error::{exec_err, plan_err, Error, Result};
use crate::exec::{compile, exec_query, ExecCtx, Rel, Scope};
use crate::sql::ast::Stmt;
use crate::sql::parser::parse_statement;
use crate::table::{IndexKind, Table, TableSchema};
use crate::value::{SqlType, Value};

/// A registered scalar SQL function.
pub type ScalarFn = Arc<dyn Fn(&[Value]) -> Result<Value> + Send + Sync>;

/// Outcome of [`Database::execute`].
#[derive(Debug, Clone, PartialEq)]
pub enum ExecOutcome {
    /// DDL statement completed.
    Done,
    /// Number of rows inserted.
    Inserted(usize),
    /// Query result.
    Rows(Rel),
}

/// An in-memory relational database with a SQL interface.
///
/// This is the substrate standing in for IBM DB2 in the paper's architecture
/// (see DESIGN.md §2): the RDF store above it emits SQL text, which is parsed,
/// planned and executed here.
pub struct Database {
    tables: HashMap<String, Table>,
    functions: HashMap<String, ScalarFn>,
    row_budget: Option<u64>,
    threads: Option<usize>,
}

impl Default for Database {
    fn default() -> Self {
        Self::new()
    }
}

impl Database {
    pub fn new() -> Self {
        let mut db = Database {
            tables: HashMap::new(),
            functions: HashMap::new(),
            row_budget: None,
            threads: None,
        };
        db.register_builtins();
        db
    }

    /// Set the per-query evaluation budget in produced/visited rows. `None`
    /// disables the guard. Stands in for the paper's 10-minute query timeout.
    pub fn set_row_budget(&mut self, budget: Option<u64>) {
        self.row_budget = budget;
    }

    pub fn row_budget(&self) -> Option<u64> {
        self.row_budget
    }

    /// Pin the executor worker-pool width. `None` (the default) defers to
    /// the `RELSTORE_THREADS` environment variable, then to
    /// [`std::thread::available_parallelism`]. `Some(1)` forces fully
    /// sequential execution.
    pub fn set_threads(&mut self, threads: Option<usize>) {
        self.threads = threads.map(|t| t.max(1));
    }

    /// Effective worker-pool width for morsel-parallel query operators.
    pub fn threads(&self) -> usize {
        if let Some(t) = self.threads {
            return t;
        }
        if let Some(t) = std::env::var("RELSTORE_THREADS")
            .ok()
            .and_then(|v| v.trim().parse::<usize>().ok())
            .filter(|&t| t >= 1)
        {
            return t;
        }
        std::thread::available_parallelism().map(usize::from).unwrap_or(1)
    }

    /// Register (or replace) a scalar SQL function, e.g. RDF-aware helpers.
    pub fn register_function(
        &mut self,
        name: &str,
        f: impl Fn(&[Value]) -> Result<Value> + Send + Sync + 'static,
    ) {
        self.functions.insert(name.to_ascii_lowercase(), Arc::new(f));
    }

    pub fn scalar_function(&self, name: &str) -> Option<ScalarFn> {
        self.functions.get(&name.to_ascii_lowercase()).cloned()
    }

    pub fn table(&self, name: &str) -> Option<&Table> {
        self.tables.get(&name.to_ascii_lowercase())
    }

    pub fn table_mut(&mut self, name: &str) -> Option<&mut Table> {
        self.tables.get_mut(&name.to_ascii_lowercase())
    }

    pub fn table_names(&self) -> Vec<&str> {
        let mut names: Vec<&str> = self.tables.keys().map(String::as_str).collect();
        names.sort_unstable();
        names
    }

    /// Programmatic DDL, used by bulk loaders to avoid SQL round-trips.
    pub fn create_table(&mut self, schema: TableSchema) -> Result<()> {
        let name = schema.name.clone();
        if self.tables.contains_key(&name) {
            return plan_err(format!("table {name:?} already exists"));
        }
        self.tables.insert(name, Table::new(schema));
        Ok(())
    }

    pub fn create_index(&mut self, table: &str, column: &str, kind: IndexKind) -> Result<()> {
        let t = self
            .tables
            .get_mut(&table.to_ascii_lowercase())
            .ok_or_else(|| Error::Plan(format!("unknown table {table:?}")))?;
        t.create_index(column, kind)
    }

    /// Programmatic bulk insert, maintaining indexes.
    pub fn insert_rows(
        &mut self,
        table: &str,
        rows: impl IntoIterator<Item = Vec<Value>>,
    ) -> Result<usize> {
        let t = self
            .tables
            .get_mut(&table.to_ascii_lowercase())
            .ok_or_else(|| Error::Plan(format!("unknown table {table:?}")))?;
        let mut n = 0;
        for row in rows {
            t.insert(&row)?;
            n += 1;
        }
        Ok(n)
    }

    /// Execute any SQL statement.
    pub fn execute(&mut self, sql: &str) -> Result<ExecOutcome> {
        match parse_statement(sql)? {
            Stmt::CreateTable { name, columns } => {
                self.create_table(TableSchema::new(name, columns))?;
                Ok(ExecOutcome::Done)
            }
            Stmt::CreateIndex { table, column, btree } => {
                self.create_index(
                    &table,
                    &column,
                    if btree { IndexKind::BTree } else { IndexKind::Hash },
                )?;
                Ok(ExecOutcome::Done)
            }
            Stmt::Insert { table, columns, rows } => {
                let n = self.execute_insert(&table, columns.as_deref(), &rows)?;
                Ok(ExecOutcome::Inserted(n))
            }
            Stmt::Query(q) => {
                let ctx = ExecCtx::new(self);
                Ok(ExecOutcome::Rows(exec_query(&q, &ctx)?))
            }
        }
    }

    /// Execute a read-only query.
    pub fn query(&self, sql: &str) -> Result<Rel> {
        match parse_statement(sql)? {
            Stmt::Query(q) => {
                let ctx = ExecCtx::new(self);
                exec_query(&q, &ctx)
            }
            _ => plan_err("expected a query"),
        }
    }

    fn execute_insert(
        &mut self,
        table: &str,
        columns: Option<&[String]>,
        rows: &[Vec<crate::sql::ast::Expr>],
    ) -> Result<usize> {
        let empty_scope = Scope::default();
        let t = self
            .tables
            .get(&table.to_ascii_lowercase())
            .ok_or_else(|| Error::Plan(format!("unknown table {table:?}")))?;
        let width = t.width();
        // Map provided columns to schema positions.
        let positions: Vec<usize> = match columns {
            Some(cols) => cols
                .iter()
                .map(|c| {
                    t.schema
                        .column_index(c)
                        .ok_or_else(|| Error::Plan(format!("unknown column {c:?}")))
                })
                .collect::<Result<_>>()?,
            None => (0..width).collect(),
        };
        let mut dense_rows = Vec::with_capacity(rows.len());
        for row in rows {
            if row.len() != positions.len() {
                return plan_err(format!(
                    "INSERT arity {} does not match column list {}",
                    row.len(),
                    positions.len()
                ));
            }
            let mut dense = vec![Value::Null; width];
            for (expr, &pos) in row.iter().zip(&positions) {
                let cexpr = compile(expr, &empty_scope, self)?;
                let no_row: &[Value] = &[];
                dense[pos] = cexpr.eval(no_row)?;
            }
            dense_rows.push(dense);
        }
        self.insert_rows(table, dense_rows)
    }

    fn register_builtins(&mut self) {
        self.register_function("coalesce", |args| {
            for a in args {
                if !a.is_null() {
                    return Ok(a.clone());
                }
            }
            Ok(Value::Null)
        });
        self.register_function("lower", |args| {
            unary_str(args, "lower", |s| Value::str(s.to_lowercase()))
        });
        self.register_function("upper", |args| {
            unary_str(args, "upper", |s| Value::str(s.to_uppercase()))
        });
        self.register_function("length", |args| {
            unary_str(args, "length", |s| Value::Int(s.chars().count() as i64))
        });
        self.register_function("abs", |args| {
            expect_arity(args, 1, "abs")?;
            Ok(match &args[0] {
                Value::Null => Value::Null,
                Value::Int(i) => Value::Int(i.abs()),
                Value::Double(d) => Value::Double(d.abs()),
                other => return exec_err(format!("abs: expected number, got {}", other.type_name())),
            })
        });
        self.register_function("substr", |args| {
            if args.len() < 2 || args.len() > 3 {
                return exec_err("substr expects 2 or 3 arguments");
            }
            let (Some(s), Some(start)) = (args[0].as_str(), args[1].as_f64()) else {
                return Ok(Value::Null);
            };
            let chars: Vec<char> = s.chars().collect();
            // SQL substr is 1-based.
            let start = (start as i64 - 1).max(0) as usize;
            let len = match args.get(2) {
                Some(v) => match v.as_f64() {
                    Some(l) => l.max(0.0) as usize,
                    None => return Ok(Value::Null),
                },
                None => chars.len().saturating_sub(start),
            };
            let out: String = chars.iter().skip(start).take(len).collect();
            Ok(Value::str(out))
        });
        self.register_function("replace", |args| {
            expect_arity(args, 3, "replace")?;
            match (args[0].as_str(), args[1].as_str(), args[2].as_str()) {
                (Some(s), Some(from), Some(to)) => Ok(Value::str(s.replace(from, to))),
                _ => Ok(Value::Null),
            }
        });
    }
}

fn expect_arity(args: &[Value], n: usize, name: &str) -> Result<()> {
    if args.len() != n {
        exec_err(format!("{name} expects {n} argument(s), got {}", args.len()))
    } else {
        Ok(())
    }
}

fn unary_str(args: &[Value], name: &str, f: impl Fn(&str) -> Value) -> Result<Value> {
    expect_arity(args, 1, name)?;
    Ok(match args[0].as_str() {
        Some(s) => f(s),
        None => Value::Null,
    })
}

/// Convenience constructor for tests and examples.
pub fn table_schema(name: &str, cols: &[(&str, SqlType)]) -> TableSchema {
    TableSchema::new(name, cols.iter().map(|(n, t)| (n.to_string(), *t)).collect())
}
