use std::fmt;

/// Errors produced by SQL parsing, planning or execution.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Error {
    /// Lexer/parser error, with a short description and byte offset.
    Parse { message: String, offset: usize },
    /// Name resolution or semantic analysis error.
    Plan(String),
    /// Runtime evaluation error.
    Exec(String),
    /// The per-query evaluation budget was exceeded (stands in for the
    /// paper's 10-minute query timeout).
    LimitExceeded,
    /// The wall-clock query deadline set via [`crate::Database::set_deadline`]
    /// expired.
    Timeout,
    /// Durability-layer I/O failure (WAL append, snapshot write, fsync).
    Io(String),
    /// On-disk state failed validation (bad magic, CRC mismatch that cannot
    /// be recovered by truncation, unknown record tag).
    Corrupt(String),
    /// The store degraded to read-only mode after its write-ahead log became
    /// unwritable; reads still succeed, mutations are refused.
    ReadOnly,
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::Parse { message, offset } => {
                write!(f, "SQL parse error at byte {offset}: {message}")
            }
            Error::Plan(m) => write!(f, "SQL planning error: {m}"),
            Error::Exec(m) => write!(f, "SQL execution error: {m}"),
            Error::LimitExceeded => write!(f, "evaluation budget exceeded"),
            Error::Timeout => write!(f, "query deadline exceeded"),
            Error::Io(m) => write!(f, "durability I/O error: {m}"),
            Error::Corrupt(m) => write!(f, "corrupt on-disk state: {m}"),
            Error::ReadOnly => {
                f.write_str("store is read-only (write-ahead log is unwritable)")
            }
        }
    }
}

impl std::error::Error for Error {}

impl From<std::io::Error> for Error {
    fn from(e: std::io::Error) -> Self {
        Error::Io(e.to_string())
    }
}

pub type Result<T> = std::result::Result<T, Error>;

pub(crate) fn plan_err<T>(msg: impl Into<String>) -> Result<T> {
    Err(Error::Plan(msg.into()))
}

pub(crate) fn exec_err<T>(msg: impl Into<String>) -> Result<T> {
    Err(Error::Exec(msg.into()))
}
