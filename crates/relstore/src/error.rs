use std::fmt;

/// Errors produced by SQL parsing, planning or execution.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Error {
    /// Lexer/parser error, with a short description and byte offset.
    Parse { message: String, offset: usize },
    /// Name resolution or semantic analysis error.
    Plan(String),
    /// Runtime evaluation error.
    Exec(String),
    /// The per-query evaluation budget was exceeded (stands in for the
    /// paper's 10-minute query timeout).
    LimitExceeded,
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::Parse { message, offset } => {
                write!(f, "SQL parse error at byte {offset}: {message}")
            }
            Error::Plan(m) => write!(f, "SQL planning error: {m}"),
            Error::Exec(m) => write!(f, "SQL execution error: {m}"),
            Error::LimitExceeded => write!(f, "evaluation budget exceeded"),
        }
    }
}

impl std::error::Error for Error {}

pub type Result<T> = std::result::Result<T, Error>;

pub(crate) fn plan_err<T>(msg: impl Into<String>) -> Result<T> {
    Err(Error::Plan(msg.into()))
}

pub(crate) fn exec_err<T>(msg: impl Into<String>) -> Result<T> {
    Err(Error::Exec(msg.into()))
}
